package phideep_test

import (
	"fmt"

	"phideep"
)

// Example trains a small Sparse Autoencoder on synthetic digits with the
// fully-optimized simulated Xeon Phi and reports whether the reconstruction
// error fell — the minimal end-to-end use of the library.
func Example() {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric(), phideep.WithWorkers(1))
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 42)

	ae, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{
		Visible: 64, Hidden: 16, Lambda: 1e-5,
	}, 20, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs: 5, LR: 0.8, Prefetch: true,
	}}
	res, err := trainer.Run(ae, phideep.NewDigits(8, 200, 7, 0.03))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("steps:", res.Steps)
	fmt.Println("learned:", res.FinalLoss < res.FirstLoss)
	// Output:
	// steps: 50
	// learned: true
}

// ExampleOptLevel replays the same paper-scale workload at the bottom and
// top of the Table I optimization ladder on a timing-only device; the
// floats are never computed, only the simulated clock runs.
func ExampleOptLevel() {
	timeAt := func(lvl phideep.OptLevel) float64 {
		mach := phideep.NewMachine(phideep.XeonPhi5110P())
		ctx := phideep.NewContext(mach.Dev, lvl, 0, 1)
		ae, _ := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{
			Visible: 1024, Hidden: 4096,
		}, 1000, 1)
		tr := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
			Iterations: 100, LR: 0.1, Prefetch: true,
		}}
		res, _ := tr.Run(ae, geometryOnly{dim: 1024, n: 100000})
		return res.SimSeconds
	}
	speedup := timeAt(phideep.Baseline) / timeAt(phideep.Improved)
	fmt.Println("full ladder speedup > 100x:", speedup > 100)
	// Output:
	// full ladder speedup > 100x: true
}

// geometryOnly is a Source for timing-only runs: only Dim/Len matter.
type geometryOnly struct{ dim, n int }

func (s geometryOnly) Dim() int                                { return s.dim }
func (s geometryOnly) Len() int                                { return s.n }
func (s geometryOnly) Chunk(start, n int, dst *phideep.Matrix) {}

// ExampleBoldDriver shows the adaptive learning-rate controller of the
// paper's §III discussion: it grows the rate on improvement and cuts it on
// worsening.
func ExampleBoldDriver() {
	b := phideep.NewBoldDriver(0.1)
	b.Observe(1.0) // baseline
	b.Observe(0.8) // improved → grow 5%
	fmt.Printf("after improvement: %.3f\n", b.LR())
	b.Observe(2.0) // worsened → halve
	fmt.Printf("after worsening:   %.4f\n", b.LR())
	// Output:
	// after improvement: 0.105
	// after worsening:   0.0525
}
