package phideep_test

import (
	"fmt"

	"phideep"
)

// Example trains a small Sparse Autoencoder on synthetic digits with the
// fully-optimized simulated Xeon Phi and reports whether the reconstruction
// error fell — the minimal end-to-end use of the library.
func Example() {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric(), phideep.WithWorkers(1))
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 42)

	ae, err := phideep.BuildAutoencoder(ctx, phideep.AutoencoderConfig{
		Visible: 64, Hidden: 16, Lambda: 1e-5, Batch: 20, Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs: 5, LR: 0.8, Prefetch: true,
	}}
	res, err := trainer.Run(ae, phideep.NewDigits(8, 200, 7, 0.03))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("steps:", res.Steps)
	fmt.Println("learned:", res.FinalLoss < res.FirstLoss)
	// Output:
	// steps: 50
	// learned: true
}

// ExampleOptLevel replays the same paper-scale workload at the bottom and
// top of the Table I optimization ladder on a timing-only device; the
// floats are never computed, only the simulated clock runs.
func ExampleOptLevel() {
	timeAt := func(lvl phideep.OptLevel) float64 {
		mach := phideep.NewMachine(phideep.XeonPhi5110P())
		ctx := phideep.NewContext(mach.Dev, lvl, 0, 1)
		ae, _ := phideep.BuildAutoencoder(ctx, phideep.AutoencoderConfig{
			Visible: 1024, Hidden: 4096, Batch: 1000, Seed: 1,
		})
		tr := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
			Iterations: 100, LR: 0.1, Prefetch: true,
		}}
		res, _ := tr.Run(ae, geometryOnly{dim: 1024, n: 100000})
		return res.SimSeconds
	}
	speedup := timeAt(phideep.Baseline) / timeAt(phideep.Improved)
	fmt.Println("full ladder speedup > 100x:", speedup > 100)
	// Output:
	// full ladder speedup > 100x: true
}

// geometryOnly is a Source for timing-only runs: only Dim/Len matter.
type geometryOnly struct{ dim, n int }

func (s geometryOnly) Dim() int                                { return s.dim }
func (s geometryOnly) Len() int                                { return s.n }
func (s geometryOnly) Chunk(start, n int, dst *phideep.Matrix) {}

// ExampleBuildConvnet trains the small im2col convnet classifier on labeled
// synthetic digits, then serves the trained weights through the coalescing
// inference server — the full supervised train-then-serve path.
func ExampleBuildConvnet() {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric(), phideep.WithWorkers(1))
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 42)

	cfg := phideep.ConvnetConfig{
		Side: 8, Filters1: 3, Kernel1: 3, Filters2: 4, Kernel2: 3,
		Pool: 2, Classes: 10, Lambda: 1e-5, Batch: 16, Seed: 1,
	}
	model, err := phideep.BuildConvnet(ctx, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs: 3, LR: 0.5, Prefetch: true,
	}}
	digits := phideep.NewDigits(8, 256, 7, 0.03)
	res, err := trainer.RunLabeled(model, digits)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("learned:", res.FinalLoss < res.FirstLoss)

	// Serve the trained weights; each request is one flattened 8x8 image.
	srv, err := phideep.NewServer(phideep.ServeConvnet(cfg, model.Download()), phideep.ServeConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer srv.Close()
	x := phideep.NewMatrix(1, cfg.InputDim())
	digits.Chunk(0, 1, x)
	probs, err := srv.Predict(x.RowView(0))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	fmt.Printf("served classes: %d (probabilities sum to %.0f)\n", len(probs), sum)
	// Output:
	// learned: true
	// served classes: 10 (probabilities sum to 1)
}

// ExampleBoldDriver shows the adaptive learning-rate controller of the
// paper's §III discussion: it grows the rate on improvement and cuts it on
// worsening.
func ExampleBoldDriver() {
	b := phideep.NewBoldDriver(0.1)
	b.Observe(1.0) // baseline
	b.Observe(0.8) // improved → grow 5%
	fmt.Printf("after improvement: %.3f\n", b.LR())
	b.Observe(2.0) // worsened → halve
	fmt.Printf("after worsening:   %.4f\n", b.LR())
	// Output:
	// after improvement: 0.105
	// after worsening:   0.0525
}
