// Package phideep is a Go reproduction of "Training Large Scale Deep Neural
// Networks on the Intel Xeon Phi Many-core Coprocessor" (Jin, Wang, Gu,
// Yuan, Huang — IPDPSW 2014): parallel unsupervised pre-training of Sparse
// Autoencoders and Restricted Boltzmann Machines on a simulated Intel Xeon
// Phi 5110P, with the paper's full optimization ladder (sequential baseline
// → OpenMP-style loop parallelism → MKL-grade blocked/vectorized kernels →
// fused regions with dependency-graph scheduling), its chunked PCIe
// streaming pipeline with a prefetching loading thread, and its complete
// evaluation harness (Figs. 7–10, Table I).
//
// The package is a facade over the implementation packages in internal/;
// it exposes everything a downstream user needs:
//
//   - Platforms: XeonPhi5110P, XeonE5620Core/Full/Dual, MatlabR2012a — cost
//     models with simulated clocks. NewMachine binds one to a Device that
//     either really computes ("numeric") or only accounts time.
//   - Models: BuildAutoencoder (Eqs. 1–6), BuildRBM (Eqs. 7–13), BuildMLP
//     and BuildConvnet (im2col-lowered conv/pool layers, DESIGN.md §12),
//     resident on a device, trainable at any OptLevel.
//   - Training: Trainer runs Algorithm 1 (chunk streaming + minibatch SGD);
//     PretrainAutoencoders / PretrainDBN run the greedy layer-wise stacking
//     of Fig. 1.
//   - Data: synthetic handwritten-digit images and natural-image patches,
//     streamed by index (Digits, NaturalPatches), plus InMemory and Null
//     sources.
//   - Batch optimizers: CG and LBFGS over host-side reference models.
//
// A minimal numeric session:
//
//	m := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
//	defer m.Close()
//	ctx := phideep.NewContext(m.Dev, phideep.Improved, 0, 42)
//	ae, err := phideep.BuildAutoencoder(ctx, phideep.AutoencoderConfig{
//		Visible: 64, Hidden: 25, Lambda: 1e-4, Beta: 3, Rho: 0.05,
//		Batch: 100, Seed: 1,
//	})
//	...
//	trainer := &phideep.Trainer{Dev: m.Dev, Cfg: phideep.TrainConfig{
//		Epochs: 10, LR: 0.5, Prefetch: true,
//	}}
//	res, err := trainer.Run(ae, phideep.NewDigits(8, 10000, 7, 0.05))
//	fmt.Println(res.SimSeconds, res.FinalLoss)
//
// Trained models answer online traffic through the serving layer: wrap the
// parameters with ServeAutoencoder / ServeRBM / ServeMLP / ServeConvnet
// (or load a PHCK checkpoint), then NewServer coalesces concurrent
// requests into micro-batches on device-bound workers. See internal/serve
// and cmd/phiserve.
package phideep

import (
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/cluster"
	"phideep/internal/convnet"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/feed"
	"phideep/internal/hybrid"
	"phideep/internal/kernels"
	"phideep/internal/mlp"
	"phideep/internal/opt"
	"phideep/internal/parallel"
	"phideep/internal/rbm"
	"phideep/internal/rng"
	"phideep/internal/serve"
	"phideep/internal/sim"
	"phideep/internal/stack"
	"phideep/internal/tensor"
	"phideep/internal/tune"
)

// Re-exported core types. These are aliases, so values flow freely between
// the facade and the internal packages.
type (
	// Arch is a simulated platform description (cores, vector width,
	// bandwidths, synchronization and transfer costs).
	Arch = sim.Arch
	// Device is a simulated execution platform with device memory, a
	// compute engine and a PCIe transfer engine.
	Device = device.Device
	// Buffer is a matrix resident in device global memory.
	Buffer = device.Buffer
	// Context is an execution configuration (optimization level, core
	// count, vectorization, fusion) bound to a device.
	Context = blas.Context
	// OptLevel is a step of the paper's Table I optimization ladder.
	OptLevel = core.OptLevel
	// Trainer runs the paper's Algorithm 1 on a device.
	Trainer = core.Trainer
	// TrainConfig parameterizes a Trainer run.
	TrainConfig = core.TrainConfig
	// TrainResult summarizes a training run (simulated seconds, losses,
	// device stats).
	TrainResult = core.Result
	// Trainable is any model the Trainer can drive.
	Trainable = core.Trainable
	// LabeledTrainable is a model the Trainer can drive supervised
	// (Trainer.RunLabeled): one StepLabeled per minibatch with one-hot
	// targets staged alongside the examples.
	LabeledTrainable = core.LabeledTrainable
	// LabeledSource is a Source whose examples carry integer class labels.
	//
	// Deprecated: use Labeled; this alias remains for existing callers.
	LabeledSource = core.LabeledSource
	// DeviceStats is a snapshot of device activity counters.
	DeviceStats = device.Stats
	// FaultConfig parameterizes the device's injectable PCIe fault model
	// (failure rate, transient/permanent split, retry budget, backoff).
	FaultConfig = device.FaultConfig
	// TransferError reports a transfer abandoned by the fault model.
	TransferError = device.TransferError
	// Checkpointer is implemented by models that can serialize their
	// resumable training state (the Autoencoder and RBM both do).
	Checkpointer = core.Checkpointer
	// Checkpoint is the decoded form of a PHCK checkpoint file: training
	// cursor plus the model state blob.
	Checkpoint = core.Checkpoint

	// Autoencoder is the paper's Sparse Autoencoder resident on a device.
	Autoencoder = autoencoder.Model
	// AutoencoderConfig holds its geometry and Eq. 4–5 hyperparameters.
	AutoencoderConfig = autoencoder.Config
	// AutoencoderParams is the host-side parameter set.
	AutoencoderParams = autoencoder.Params

	// RBM is the paper's Restricted Boltzmann Machine resident on a device.
	RBM = rbm.Model
	// RBMConfig holds its geometry and CD options.
	RBMConfig = rbm.Config
	// RBMParams is the host-side parameter set.
	RBMParams = rbm.Params

	// Source streams training examples by index.
	Source = data.Source
	// Labeled is a Source whose examples carry integer class labels
	// (Digits implements it) — the canonical name for what the trainer
	// historically called core.LabeledSource.
	Labeled = data.Labeled
	// ChunkPlan is the validated chunk geometry shared by the trainer, the
	// cluster, and the feed: batch size, chunk size, source length.
	ChunkPlan = data.ChunkPlan
	// PlanRequest parameterizes PlanChunks, including the auto-sizing
	// inputs (buffer depth, per-example width, free device bytes).
	PlanRequest = data.PlanRequest
	// InMemory serves examples from a matrix.
	InMemory = data.InMemory
	// Digits generates handwritten-digit-like images.
	Digits = data.Digits
	// NaturalPatches generates patches from synthetic natural images.
	NaturalPatches = data.NaturalPatches
	// Shuffled re-permutes any Source per epoch (deterministic per seed).
	Shuffled = data.Shuffled

	// Feed is the streaming data plane: a dataset server handing sharded
	// chunk leases to training, cluster, and serving consumers (DESIGN.md
	// §15).
	Feed = feed.Feed
	// FeedConfig parameterizes a Feed (chunk plan, horizon, window,
	// backpressure bound, ledger).
	FeedConfig = feed.Config
	// FeedConsumer is one subscribed consumer's lease cursor.
	FeedConsumer = feed.Consumer
	// FeedLease names one leased chunk (global sequence, shard, rows).
	FeedLease = feed.Lease
	// FeedStats is a Feed's protocol counter snapshot.
	FeedStats = feed.Stats
	// FeedEvent is one ledger entry of a Feed run with FeedConfig.Ledger.
	FeedEvent = feed.Event

	// Matrix is a dense row-major float64 matrix.
	Matrix = tensor.Matrix
	// Vector is a dense float64 vector.
	Vector = tensor.Vector
	// RNG is the deterministic generator used across the library.
	RNG = rng.RNG

	// MLP is a deep sigmoid classifier with a softmax head — the network
	// that supervised fine-tuning trains after pre-training.
	MLP = mlp.Model
	// MLPConfig holds its geometry and hyperparameters.
	MLPConfig = mlp.Config
	// MLPParams is the host-side parameter set.
	MLPParams = mlp.Params

	// Convnet is the LeNet-style convolutional classifier resident on a
	// device: conv → pool → conv → pool → softmax, lowered via im2col onto
	// the packed GEMM (DESIGN.md §12).
	Convnet = convnet.Model
	// ConvnetConfig holds its geometry and hyperparameters.
	ConvnetConfig = convnet.Config
	// ConvnetParams is the host-side parameter set.
	ConvnetParams = convnet.Params

	// StackConfig describes a deep stack for greedy layer-wise
	// pre-training (Fig. 1).
	StackConfig = stack.Config
	// StackResult records a pre-training run.
	StackResult = stack.Result

	// HybridAE trains one Sparse Autoencoder data-parallel across a host
	// and a coprocessor (the §VI future-work experiment).
	HybridAE = hybrid.AE
	// HybridAEConfig parameterizes the hybrid pair.
	HybridAEConfig = hybrid.AEConfig

	// Cluster simulates data-parallel training with parameter averaging
	// across N nodes over a modeled interconnect (the distributed
	// alternative of the paper's §I/§III framing).
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes it; Interconnect models the network.
	ClusterConfig = cluster.Config
	Interconnect  = cluster.Interconnect
	// ClusterFaultPlan injects deterministic per-node crashes, straggler
	// stalls and rejoin events into a cluster run; ClusterNodeFault
	// scripts one such event exactly.
	ClusterFaultPlan = cluster.FaultPlan
	ClusterNodeFault = cluster.NodeFault
	// ClusterPolicy selects the straggler mitigation at sync barriers;
	// ClusterReport is the degradation ledger of a finished run.
	ClusterPolicy = cluster.Policy
	ClusterReport = cluster.Report

	// TuneCandidate is one execution configuration for the auto-tuner;
	// TuneResult its ranked outcome; TuneWorkload anything the tuner can
	// evaluate — TuneAEWorkload, TuneMLPWorkload and TuneConvWorkload are
	// the stock implementations for the three model families.
	TuneCandidate    = tune.Candidate
	TuneResult       = tune.Result
	TuneWorkload     = tune.Workload
	TuneAEWorkload   = tune.AEWorkload
	TuneMLPWorkload  = tune.MLPWorkload
	TuneConvWorkload = tune.ConvWorkload
	// TunePredictor is the calibrated performance model built by
	// TuneCalibrate: an analytical cost model fit from short probe runs
	// that predicts full-run epoch time for any candidate without
	// simulating it.
	TunePredictor = tune.Predictor

	// Server coalesces concurrent single-example inference requests into
	// micro-batches executed on device-bound workers — the online serving
	// layer over a trained model. Create with NewServer.
	Server = serve.Server
	// ServeConfig parameterizes a Server: platform, OptLevel, worker
	// count, micro-batching window (MaxBatch/MaxWait) and admission
	// control (QueueDepth/Policy).
	ServeConfig = serve.Config
	// ServeModel is an immutable (copy-on-load) snapshot of trained
	// parameters ready to serve; build one with ServeAutoencoder,
	// ServeRBM, ServeMLP or the *FromCheckpoint loaders.
	ServeModel = serve.Model
	// ServePolicy selects the full-queue behavior (ServeBlock, ServeShed,
	// ServeDegrade).
	ServePolicy = serve.Policy
	// ServeOp identifies a serving operation (encode, reconstruct,
	// predict).
	ServeOp = serve.Op
	// Precision selects the numeric width of the serving forward path
	// (PrecisionF64, PrecisionF32).
	Precision = serve.Precision
	// BatcherStats is a point-in-time snapshot of the micro-batcher,
	// returned by (*Server).Stats.
	BatcherStats = serve.BatcherStats
	// ServeHealth is the server's availability state machine (healthy →
	// degraded → draining → down), returned by (*Server).Health and
	// surfaced in BatcherStats and phiserve's /healthz.
	ServeHealth = serve.Health
	// WorkerFaultError is the typed completion a request receives when
	// its worker hit a worker-fatal fault (permanent device transfer
	// fault, retry exhaustion, or a recovered panic) and no healthy
	// replica could salvage the batch.
	WorkerFaultError = serve.WorkerFaultError

	// AdaptiveLR is a loss-driven learning-rate controller for
	// TrainConfig.Adaptive; BoldDriver is the classic implementation.
	AdaptiveLR = opt.AdaptiveLR
	BoldDriver = opt.BoldDriver

	// Objective is a cost/gradient callback for the batch optimizers.
	Objective = opt.Objective
	// CGConfig parameterizes Conjugate Gradient; LBFGSConfig parameterizes
	// limited-memory BFGS; OptResult summarizes either.
	CGConfig    = opt.CGConfig
	LBFGSConfig = opt.LBFGSConfig
	OptResult   = opt.Result
)

// The optimization ladder of Table I.
const (
	// Baseline is the un-optimized sequential algorithm.
	Baseline = core.Baseline
	// OpenMP parallelizes all loops across the cores.
	OpenMP = core.OpenMP
	// OpenMPMKL adds MKL-grade blocked, vectorized matrix kernels.
	OpenMPMKL = core.OpenMPMKL
	// Improved adds loop fusion and Fig. 6 dependency-graph scheduling.
	Improved = core.Improved
)

// Admission-control policies for a full serving queue
// (ServeConfig.Policy).
const (
	// ServeBlock parks callers until queue space frees (backpressure).
	ServeBlock = serve.Block
	// ServeShed rejects new requests with ErrOverloaded, never dropping
	// admitted work.
	ServeShed = serve.Shed
	// ServeDegrade answers inline from the scalar host reference path.
	ServeDegrade = serve.Degrade
)

// Serving numeric widths (ServeConfig.Precision).
const (
	// PrecisionF64 serves on the float64 device path, exactly as trained.
	PrecisionF64 = serve.F64
	// PrecisionF32 serves from float32 weight snapshots on the packed f32
	// host kernels — double the SIMD lanes, half the memory traffic, with
	// answers within float32 rounding of the f64 path. Training is always
	// float64; only the forward serving pass narrows.
	PrecisionF32 = serve.F32
)

// Serving availability states (ServeHealth).
const (
	// ServeHealthy: every configured worker slot is live.
	ServeHealthy = serve.Healthy
	// ServeDegraded: at least one worker slot retired after exhausting
	// its restart budget; survivors keep serving.
	ServeDegraded = serve.Degraded
	// ServeDraining: admission is closed while in-flight work completes.
	ServeDraining = serve.Draining
	// ServeDown: no live worker replica remains; requests fail fast.
	ServeDown = serve.Down
)

// ErrOverloaded is returned by serving calls under ServeShed when the
// admission queue is full.
var ErrOverloaded = serve.ErrOverloaded

// ErrServerClosed is returned by serving calls made after (*Server).Close.
var ErrServerClosed = serve.ErrClosed

// ErrDeadline is returned by serving calls whose per-request deadline
// (ServeConfig.RequestTimeout or a ctx deadline) expired before a worker
// answered; the late batch result is discarded safely.
var ErrDeadline = serve.ErrDeadline

// ErrServerDown is returned by serving calls once every worker slot has
// retired under injected faults; the server fails fast rather than
// queueing forever.
var ErrServerDown = serve.ErrDown

// Cluster straggler policies (ClusterConfig.Policy).
const (
	// WaitAll waits for every participant each round (the synchronous
	// baseline; numerics never change).
	WaitAll = cluster.WaitAll
	// TimeoutDrop drops laggards that miss the round deadline.
	TimeoutDrop = cluster.TimeoutDrop
	// BackupNode races a hot spare against each laggard.
	BackupNode = cluster.BackupNode
)

// Platform constructors.
var (
	// XeonPhi5110P is the paper's coprocessor (60 cores, 512-bit VPU).
	XeonPhi5110P = sim.XeonPhi5110P
	// XeonE5620Core is one host CPU core — the Figs. 7–9 comparator.
	XeonE5620Core = sim.XeonE5620Core
	// XeonE5620Full is the whole 4-core host chip.
	XeonE5620Full = sim.XeonE5620Full
	// XeonE5620Dual is a dual-socket host — the abstract's "Intel Xeon
	// CPU" comparator (7–10×).
	XeonE5620Dual = sim.XeonE5620Dual
	// MatlabR2012a is the Fig. 10 baseline.
	MatlabR2012a = sim.MatlabR2012a
	// TeslaK20X is a 2013-era GPU comparator (the §III positioning).
	TeslaK20X = sim.TeslaK20X
)

// Machine bundles a device with the worker pool that executes its numeric
// kernels. Close releases the pool.
type Machine struct {
	Dev  *Device
	pool *parallel.Pool
}

// MachineOption configures NewMachine. Options compose left to right:
//
//	phideep.NewMachine(arch)                                         // timing-only
//	phideep.NewMachine(arch, phideep.WithNumeric())                  // numeric
//	phideep.NewMachine(arch, phideep.WithNumeric(), phideep.WithWorkers(8))
type MachineOption func(*machineOptions)

type machineOptions struct {
	numeric bool
	workers int
}

// WithNumeric makes the machine really execute kernels (alongside the
// simulated timing) instead of only accounting time.
func WithNumeric() MachineOption {
	return func(o *machineOptions) { o.numeric = true }
}

// WithTimingOnly makes the machine only account simulated time — the
// default; the option exists to state it explicitly.
func WithTimingOnly() MachineOption {
	return func(o *machineOptions) { o.numeric = false }
}

// WithWorkers sets the host worker pool size for numeric parallel kernels
// (0 = GOMAXPROCS). It has no effect on a timing-only machine.
func WithWorkers(n int) MachineOption {
	return func(o *machineOptions) { o.workers = n }
}

// NewMachine creates a device for the given platform. By default the
// machine is timing-only (it accounts simulated seconds without computing);
// pass WithNumeric to execute kernels for real, and WithWorkers to size the
// kernel pool.
func NewMachine(arch *Arch, opts ...MachineOption) *Machine {
	var o machineOptions
	for _, opt := range opts {
		opt(&o)
	}
	var pool *parallel.Pool
	if o.numeric {
		pool = parallel.NewPool(o.workers)
	}
	return &Machine{Dev: device.New(arch, o.numeric, pool), pool: pool}
}

// NewMachineAt creates a device with the pre-option positional arguments.
//
// Deprecated: use NewMachine with WithNumeric and WithWorkers options.
func NewMachineAt(arch *Arch, numeric bool, workers int) *Machine {
	opts := []MachineOption{WithWorkers(workers)}
	if numeric {
		opts = append(opts, WithNumeric())
	}
	return NewMachine(arch, opts...)
}

// Close stops the machine's worker pool. The device must not execute
// numeric kernels afterwards.
func (m *Machine) Close() {
	if m.pool != nil {
		m.pool.Close()
	}
}

// NewContext builds an execution context for the given ladder level on the
// device. cores limits the physical cores (0 = all). The context seeds the
// sampling RNG with seed, so runs are reproducible.
func NewContext(dev *Device, lvl OptLevel, cores int, seed uint64) *Context {
	return core.NewContext(dev, lvl, cores, seed)
}

// BuildAutoencoder allocates a Sparse Autoencoder on the context's device
// for cfg.Batch examples, initialized from cfg.Seed.
func BuildAutoencoder(ctx *Context, cfg AutoencoderConfig) (*Autoencoder, error) {
	return autoencoder.Build(ctx, cfg)
}

// NewAutoencoder allocates a Sparse Autoencoder for the given batch size on
// the context's device, initialized from seed.
//
// Deprecated: use BuildAutoencoder with AutoencoderConfig.Batch and
// AutoencoderConfig.Seed set.
func NewAutoencoder(ctx *Context, cfg AutoencoderConfig, batch int, seed uint64) (*Autoencoder, error) {
	cfg.Batch, cfg.Seed = batch, seed
	return autoencoder.Build(ctx, cfg)
}

// BuildRBM allocates a Restricted Boltzmann Machine on the context's
// device for cfg.Batch examples, initialized from cfg.Seed.
func BuildRBM(ctx *Context, cfg RBMConfig) (*RBM, error) {
	return rbm.Build(ctx, cfg)
}

// NewRBM allocates a Restricted Boltzmann Machine for the given batch size
// on the context's device, initialized from seed.
//
// Deprecated: use BuildRBM with RBMConfig.Batch and RBMConfig.Seed set.
func NewRBM(ctx *Context, cfg RBMConfig, batch int, seed uint64) (*RBM, error) {
	cfg.Batch, cfg.Seed = batch, seed
	return rbm.Build(ctx, cfg)
}

// BuildMLP allocates a deep softmax classifier on the context's device for
// cfg.Batch examples, initialized from cfg.Seed. Use (*MLP).InitFromStack
// to warm-start its hidden layers from a pre-trained stack.
func BuildMLP(ctx *Context, cfg MLPConfig) (*MLP, error) {
	return mlp.Build(ctx, cfg)
}

// NewMLP allocates a deep softmax classifier for supervised fine-tuning.
//
// Deprecated: use BuildMLP with MLPConfig.Batch and MLPConfig.Seed set.
func NewMLP(ctx *Context, cfg MLPConfig, batch int, seed uint64) (*MLP, error) {
	cfg.Batch, cfg.Seed = batch, seed
	return mlp.Build(ctx, cfg)
}

// NewAutoencoderInference allocates a forward-only Sparse Autoencoder for
// up to batch examples: Encode/Reconstruct work (and allocate no gradient
// buffers), the training entry points panic. p supplies the weights (nil
// initializes from cfg.Seed).
func NewAutoencoderInference(ctx *Context, cfg AutoencoderConfig, batch int, p *AutoencoderParams) (*Autoencoder, error) {
	return autoencoder.NewInference(ctx, cfg, batch, p)
}

// NewRBMInference allocates a forward-only RBM (deterministic mean-field
// Encode/Reconstruct, no gradient or chain workspace).
func NewRBMInference(ctx *Context, cfg RBMConfig, batch int, p *RBMParams) (*RBM, error) {
	return rbm.NewInference(ctx, cfg, batch, p)
}

// NewMLPInference allocates a forward-only classifier (batched Infer, no
// gradient workspace).
func NewMLPInference(ctx *Context, cfg MLPConfig, batch int, p *MLPParams) (*MLP, error) {
	return mlp.NewInference(ctx, cfg, batch, p)
}

// BuildConvnet allocates a convolutional classifier on the context's
// device for cfg.Batch examples, initialized from cfg.Seed. Train it
// supervised with (*Trainer).RunLabeled on a LabeledSource such as Digits.
func BuildConvnet(ctx *Context, cfg ConvnetConfig) (*Convnet, error) {
	return convnet.Build(ctx, cfg)
}

// NewConvnetInference allocates a forward-only convnet (batched Infer, no
// gradient workspace). p supplies the weights (nil initializes from
// cfg.Seed).
func NewConvnetInference(ctx *Context, cfg ConvnetConfig, batch int, p *ConvnetParams) (*Convnet, error) {
	return convnet.NewInference(ctx, cfg, batch, p)
}

// OneHot fills dst (len(labels)×classes) with one-hot target rows.
func OneHot(labels []int, dst *Matrix) { kernels.OneHot(labels, dst) }

// BuildHybridAE builds a host+coprocessor data-parallel Sparse Autoencoder
// pair (§VI future work), both replicas initialized from cfg.Seed. phiCtx
// must be bound to a device with a PCIe link.
func BuildHybridAE(phiCtx, hostCtx *Context, cfg HybridAEConfig) (*HybridAE, error) {
	return hybrid.BuildAE(phiCtx, hostCtx, cfg)
}

// NewHybridAE builds a host+coprocessor data-parallel Sparse Autoencoder
// pair.
//
// Deprecated: use BuildHybridAE with HybridAEConfig.Seed set.
func NewHybridAE(phiCtx, hostCtx *Context, cfg HybridAEConfig, seed uint64) (*HybridAE, error) {
	cfg.Seed = seed
	return hybrid.BuildAE(phiCtx, hostCtx, cfg)
}

// TuneDefaultCandidates enumerates the standard tuning grid for a
// platform: optimization level × cores × threads/core × fusion.
func TuneDefaultCandidates(arch *Arch) []TuneCandidate { return tune.DefaultCandidates(arch) }

// TuneCrossBatches expands a candidate grid with the given micro-batch
// sizes, so the predictor can rank batching against kernel knobs jointly.
// See `phiserve -tune-seed` for the serving-side use.
func TuneCrossBatches(cands []TuneCandidate, batches []int) []TuneCandidate {
	return tune.CrossBatches(cands, batches)
}

// TuneEffectiveIters returns the iteration count candidate c should run
// for so that every candidate trains on the same number of examples
// (batch-overriding candidates get proportionally fewer updates).
func TuneEffectiveIters(w TuneWorkload, c TuneCandidate) int {
	return tune.EffectiveIters(w, c)
}

// TuneCalibrate fits the calibrated performance predictor for a workload
// from short probe runs against the simulator; the result predicts any
// grid candidate's full-run epoch time without simulating it.
func TuneCalibrate(w TuneWorkload, cands []TuneCandidate) (*TunePredictor, error) {
	return tune.Calibrate(w, cands)
}

// TunePrunedSearch is the predictor-guided search: calibrate on short
// probes, rank the grid by predicted epoch time, then spend full simulated
// evaluations only on the predicted top k. See `phibench -tune` for the
// CLI demonstration.
func TunePrunedSearch(w TuneWorkload, cands []TuneCandidate, topK int) (*TuneResult, *TunePredictor, error) {
	return tune.PrunedSearch(w, cands, topK)
}

// ServeOption adjusts a ServeConfig in NewServer. Options compose left to
// right after the explicit config, so they win over its field values:
//
//	phideep.NewServer(m, cfg, phideep.WithPrecision(phideep.PrecisionF32))
type ServeOption func(*ServeConfig)

// WithPrecision selects the numeric width of the serving forward path
// (ServeConfig.Precision): PrecisionF64 replays the training path on the
// simulated device, PrecisionF32 runs the reduced-precision host kernels.
func WithPrecision(p Precision) ServeOption {
	return func(c *ServeConfig) { c.Precision = p }
}

// WithAdaptive enables the online batching controller
// (ServeConfig.Adaptive): the effective flush size and deadline are
// retuned from the live flush stream, with MaxBatch/MaxWait as hard
// ceilings. See `phiserve -adaptive`.
func WithAdaptive() ServeOption {
	return func(c *ServeConfig) { c.Adaptive = true }
}

// WithFaults arms the deterministic PCIe fault model on every f64
// serving worker's device (ServeConfig.Faults): each worker draws from
// its own stream derived from fc.Seed, so chaos runs replay exactly. See
// `phiserve -fault-rate`.
func WithFaults(fc FaultConfig) ServeOption {
	return func(c *ServeConfig) { c.Faults = fc }
}

// WithRequestTimeout sets the per-request deadline
// (ServeConfig.RequestTimeout): expired requests fail with ErrDeadline
// instead of ever hanging, and their late batch results are discarded.
func WithRequestTimeout(d time.Duration) ServeOption {
	return func(c *ServeConfig) { c.RequestTimeout = d }
}

// NewServer builds an online inference server over a ServeModel: Workers
// device-bound replicas behind a dynamic micro-batcher with admission
// control. See ServeConfig for the knobs and cmd/phiserve for the HTTP
// front-end.
func NewServer(m *ServeModel, cfg ServeConfig, opts ...ServeOption) (*Server, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return serve.New(m, cfg)
}

// ServeAutoencoder snapshots autoencoder parameters for serving (Encode
// and Reconstruct). p is deep-copied at load (copy-on-load), so the source
// may keep training; nil initializes fresh parameters from cfg.Seed.
func ServeAutoencoder(cfg AutoencoderConfig, p *AutoencoderParams) *ServeModel {
	return serve.Autoencoder(cfg, p)
}

// ServeRBM snapshots RBM parameters for serving (Encode and mean-field
// Reconstruct). p is deep-copied; nil initializes from cfg.Seed.
func ServeRBM(cfg RBMConfig, p *RBMParams) *ServeModel {
	return serve.RBM(cfg, p)
}

// ServeMLP snapshots classifier parameters for serving (Predict). p is
// deep-copied; nil initializes from cfg.Seed.
func ServeMLP(cfg MLPConfig, p *MLPParams) *ServeModel {
	return serve.MLP(cfg, p)
}

// ServeConvnet snapshots convnet parameters for serving (Predict). p is
// deep-copied; nil initializes from cfg.Seed.
func ServeConvnet(cfg ConvnetConfig, p *ConvnetParams) *ServeModel {
	return serve.Convnet(cfg, p)
}

// ServeAutoencoderCheckpoint loads autoencoder parameters from a PHCK
// checkpoint (written by Trainer or phitrain -export) for serving. cfg
// must describe the geometry the checkpoint was trained with.
func ServeAutoencoderCheckpoint(cfg AutoencoderConfig, path string) (*ServeModel, error) {
	return serve.AutoencoderFromCheckpoint(cfg, path)
}

// ServeRBMCheckpoint loads RBM parameters from a PHCK checkpoint for
// serving.
func ServeRBMCheckpoint(cfg RBMConfig, path string) (*ServeModel, error) {
	return serve.RBMFromCheckpoint(cfg, path)
}

// ServeMLPCheckpoint loads classifier parameters from a PHCK checkpoint
// for serving.
func ServeMLPCheckpoint(cfg MLPConfig, path string) (*ServeModel, error) {
	return serve.MLPFromCheckpoint(cfg, path)
}

// ServeConvnetCheckpoint loads convnet parameters from a PHCK checkpoint
// (written by phitrain -model convnet -export) for serving.
func ServeConvnetCheckpoint(cfg ConvnetConfig, path string) (*ServeModel, error) {
	return serve.ConvnetFromCheckpoint(cfg, path)
}

// NewCluster builds an N-node parameter-averaging cluster of the given
// platform at the given optimization level.
func NewCluster(arch *Arch, lvl OptLevel, cfg ClusterConfig, numeric bool, seed uint64) (*Cluster, error) {
	return cluster.New(arch, lvl, cfg, numeric, seed)
}

// GigabitEthernet and TenGigabitEthernet are stock interconnect models for
// ClusterConfig.Net.
func GigabitEthernet() Interconnect    { return cluster.GigabitEthernet() }
func TenGigabitEthernet() Interconnect { return cluster.TenGigabitEthernet() }

// NewDigits returns a deterministic stream of n stroke-rendered digit
// images of side×side pixels with the given additive noise.
func NewDigits(side, n int, seed uint64, noise float64) *Digits {
	return data.NewDigits(side, n, seed, noise)
}

// NewNaturalPatches returns a deterministic stream of n patchSide×patchSide
// patches from synthetic natural images, rescaled to [0.1, 0.9].
func NewNaturalPatches(patchSide, n int, seed uint64) *NaturalPatches {
	return data.NewNaturalPatches(patchSide, n, seed)
}

// NewShuffled wraps any Source with a deterministic per-epoch permutation.
func NewShuffled(base Source, seed uint64) *Shuffled {
	return data.NewShuffled(base, seed)
}

// PlanNoMemLimit marks a PlanRequest whose auto-sizing is not constrained
// by device staging memory.
const PlanNoMemLimit = data.NoMemLimit

// PlanChunks validates and auto-sizes a chunk geometry — the same
// computation the Trainer historically ran inline, now shared with the
// cluster and the feed.
func PlanChunks(req PlanRequest) (ChunkPlan, error) {
	return data.PlanChunks(req)
}

// NewFeed builds a dataset server over src with the given protocol
// configuration; consumers subscribe before the first lease seals the
// shard count.
func NewFeed(src Source, cfg FeedConfig) (*Feed, error) {
	return feed.New(src, cfg)
}

// NewLabeledFeed is NewFeed for a labeled source: label chunks (one-hot or
// class indices) ride the same lease protocol.
func NewLabeledFeed(src Labeled, cfg FeedConfig) (*Feed, error) {
	return feed.NewLabeled(src, cfg)
}

// ErrFeedExhausted and ErrFeedWindowFull are the feed protocol's sentinel
// errors: the horizon is spent; the consumer holds its full lease window.
var (
	ErrFeedExhausted  = feed.ErrExhausted
	ErrFeedWindowFull = feed.ErrWindowFull
)

// PretrainAutoencoders greedily pre-trains one Sparse Autoencoder per
// adjacent layer pair of cfg.Sizes (the Fig. 1 stacking), streaming src.
func PretrainAutoencoders(ctx *Context, trainCfg TrainConfig, cfg StackConfig, src Source, seed uint64) (*StackResult, error) {
	return stack.PretrainAutoencoders(ctx, trainCfg, cfg, src, seed)
}

// PretrainDBN greedily pre-trains one RBM per adjacent layer pair of
// cfg.Sizes, yielding a Deep Belief Network.
func PretrainDBN(ctx *Context, trainCfg TrainConfig, cfg StackConfig, src Source, seed uint64) (*StackResult, error) {
	return stack.PretrainDBN(ctx, trainCfg, cfg, src, seed)
}

// CG minimizes obj from theta (updated in place) with nonlinear Conjugate
// Gradient — one of the batch methods the paper discusses as the
// parallelism-friendly alternative to online SGD.
func CG(obj Objective, theta Vector, cfg CGConfig) OptResult {
	return opt.CG(obj, theta, cfg)
}

// LBFGS minimizes obj from theta (updated in place) with limited-memory
// BFGS.
func LBFGS(obj Objective, theta Vector, cfg LBFGSConfig) OptResult {
	return opt.LBFGS(obj, theta, cfg)
}

// WriteCheckpoint atomically writes a PHCK checkpoint file (temp file,
// fsync, rename), as the Trainer does for its periodic checkpoints.
func WriteCheckpoint(path string, c *Checkpoint) error { return core.WriteCheckpoint(path, c) }

// ReadCheckpoint reads and validates a PHCK checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) { return core.ReadCheckpoint(path) }

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// NewVector allocates a zeroed length-n vector.
func NewVector(n int) Vector { return tensor.NewVector(n) }

// NewRNG returns a deterministic random generator seeded with seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewBoldDriver returns the classic adaptive learning-rate controller
// (grow 5% on improvement, halve on worsening) starting at lr; assign it to
// TrainConfig.Adaptive. All parameter types (AutoencoderParams, RBMParams,
// MLPParams) also expose Save/Load for checkpointing trained models.
func NewBoldDriver(lr float64) *BoldDriver { return opt.NewBoldDriver(lr) }

// NewAutoencoderParams returns host-side Sparse Autoencoder parameters with
// the conventional initialization — the starting point for the batch
// optimizers and for Upload onto a device model.
func NewAutoencoderParams(cfg AutoencoderConfig, seed uint64) *AutoencoderParams {
	return autoencoder.NewParams(cfg, seed)
}

// NewRBMParams returns host-side RBM parameters with the conventional
// initialization.
func NewRBMParams(cfg RBMConfig, seed uint64) *RBMParams {
	return rbm.NewParams(cfg, seed)
}

// NewConvnetParams returns host-side convnet parameters with the
// conventional initialization.
func NewConvnetParams(cfg ConvnetConfig, seed uint64) *ConvnetParams {
	return convnet.NewParams(cfg, seed)
}

// AutoencoderObjective adapts the host reference Sparse Autoencoder on the
// fixed dataset x (one example per row) to the flat-vector Objective form
// that CG and LBFGS consume. Evaluating the objective writes theta back
// into p, so p holds the optimized parameters afterwards.
func AutoencoderObjective(cfg AutoencoderConfig, p *AutoencoderParams, x *Matrix) (Objective, Vector) {
	obj, theta := autoencoder.Objective(cfg, p, x)
	return Objective(obj), theta
}

// AutoencoderCost evaluates the Eq. 5 objective of the host reference model
// on x, without computing a gradient.
func AutoencoderCost(cfg AutoencoderConfig, p *AutoencoderParams, x *Matrix) float64 {
	return autoencoder.CostGrad(cfg, p, x, nil)
}
