// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V) from the simulated platforms, one target per exhibit:
//
//	go test -bench=. -benchmem
//
// Each benchmark drives the same runners as cmd/phibench and reports the
// headline simulated quantity as a custom metric (sim-seconds or speedup),
// so the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed
// from the bench output. The Ablation* targets cover the design choices
// DESIGN.md calls out; the Kernel*/Scheduling targets are real wall-clock
// microbenchmarks of the numeric kernels.
package phideep_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"phideep"
	"phideep/internal/experiments"
	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// simSeconds extracts the float value of a table cell like "97.5 s",
// "55.9 ms" or "16.4x".
func simSeconds(cell string) float64 {
	cell = strings.TrimSpace(cell)
	mult := 1.0
	switch {
	case strings.HasSuffix(cell, " ms"):
		cell, mult = strings.TrimSuffix(cell, " ms"), 1e-3
	case strings.HasSuffix(cell, " µs"):
		cell, mult = strings.TrimSuffix(cell, " µs"), 1e-6
	case strings.HasSuffix(cell, " s"):
		cell = strings.TrimSuffix(cell, " s")
	case strings.HasSuffix(cell, "x"):
		cell = strings.TrimSuffix(cell, "x")
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v * mult
}

// benchTable runs a table generator b.N times and reports metrics extracted
// from named cells of the last run.
func benchTable(b *testing.B, run func() *experiments.Table, metrics map[string][2]int) {
	b.Helper()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = run()
	}
	b.StopTimer()
	for name, rc := range metrics {
		b.ReportMetric(simSeconds(t.Rows[rc[0]][rc[1]]), name)
	}
	if testing.Verbose() {
		b.Log("\n" + t.String())
	}
}

// BenchmarkFig7NetworkSizeAutoencoder regenerates Fig. 7(a): the
// network-size sweep for the Sparse Autoencoder. Metrics: simulated seconds
// on the Phi for the smallest and largest networks and the largest-network
// speedup over one CPU core.
func BenchmarkFig7NetworkSizeAutoencoder(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.Fig7(experiments.AE) },
		map[string][2]int{
			"phi-small-s":   {0, 2},
			"phi-large-s":   {3, 2},
			"speedup-large": {3, 3},
		})
}

// BenchmarkFig7NetworkSizeRBM regenerates Fig. 7(b) for the RBM.
func BenchmarkFig7NetworkSizeRBM(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.Fig7(experiments.RBM) },
		map[string][2]int{
			"phi-small-s":   {0, 2},
			"phi-large-s":   {3, 2},
			"speedup-large": {3, 3},
		})
}

// BenchmarkFig8DatasetSizeAutoencoder regenerates Fig. 8(a): dataset-size
// sweep, Autoencoder.
func BenchmarkFig8DatasetSizeAutoencoder(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.Fig8(experiments.AE) },
		map[string][2]int{
			"phi-100k-s": {0, 2},
			"phi-1M-s":   {4, 2},
			"cpu-1M-s":   {4, 1},
		})
}

// BenchmarkFig8DatasetSizeRBM regenerates Fig. 8(b) for the RBM.
func BenchmarkFig8DatasetSizeRBM(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.Fig8(experiments.RBM) },
		map[string][2]int{
			"phi-100k-s": {0, 2},
			"phi-1M-s":   {4, 2},
		})
}

// BenchmarkFig9BatchSizeAutoencoder regenerates Fig. 9(a): batch-size
// sweep, Autoencoder. The paper's claim — Phi time drops by roughly two
// thirds from batch 200 to 10 000 — is the phi-drop metric (≈3 or more).
func BenchmarkFig9BatchSizeAutoencoder(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig9(experiments.AE)
	}
	b.StopTimer()
	small := simSeconds(t.Rows[0][2])
	large := simSeconds(t.Rows[5][2])
	b.ReportMetric(small, "phi-batch200-s")
	b.ReportMetric(large, "phi-batch10000-s")
	b.ReportMetric(small/large, "phi-drop")
	if testing.Verbose() {
		b.Log("\n" + t.String())
	}
}

// BenchmarkFig9BatchSizeRBM regenerates Fig. 9(b) for the RBM.
func BenchmarkFig9BatchSizeRBM(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig9(experiments.RBM)
	}
	b.StopTimer()
	small := simSeconds(t.Rows[0][2])
	large := simSeconds(t.Rows[5][2])
	b.ReportMetric(small/large, "phi-drop")
	if testing.Verbose() {
		b.Log("\n" + t.String())
	}
}

// BenchmarkFig10Matlab regenerates Fig. 10: Matlab on the host CPU versus
// the Phi (paper: ≈16×; the speedup metric is the smallest, paper-scale
// network).
func BenchmarkFig10Matlab(b *testing.B) {
	benchTable(b, experiments.Fig10,
		map[string][2]int{
			"speedup-576x1024":  {0, 3},
			"speedup-1024x4096": {1, 3},
		})
}

// BenchmarkTable1OptimizationSteps regenerates Table I: the optimization
// ladder at 60 and 30 cores. Paper: 16042 s → 892 s → 97 s → 53 s and
// speedups 302× / 197×.
func BenchmarkTable1OptimizationSteps(b *testing.B) {
	benchTable(b, experiments.Table1,
		map[string][2]int{
			"baseline60-s": {0, 1},
			"openmp60-s":   {1, 1},
			"mkl60-s":      {2, 1},
			"improved60-s": {3, 1},
			"improved30-s": {3, 2},
			"speedup60":    {4, 1},
			"speedup30":    {4, 2},
		})
}

// BenchmarkFig5TransferOverlap regenerates the §IV.A loading-thread
// measurement (transfers ≈17% of unoverlapped time; hidden with prefetch).
func BenchmarkFig5TransferOverlap(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig5Overlap()
	}
	b.StopTimer()
	sync := simSeconds(t.Rows[0][1])
	pre := simSeconds(t.Rows[1][1])
	b.ReportMetric(sync, "sync-s")
	b.ReportMetric(pre, "prefetch-s")
	b.ReportMetric((sync-pre)/sync*100, "saved-pct")
	if testing.Verbose() {
		b.Log("\n" + t.String())
	}
}

// --- Ablations (design choices from DESIGN.md) ---

func BenchmarkAblationVectorization(b *testing.B) {
	benchTable(b, experiments.AblationVectorization,
		map[string][2]int{"scalar-slowdown": {1, 2}})
}

func BenchmarkAblationLoopFusion(b *testing.B) {
	benchTable(b, experiments.AblationLoopFusion,
		map[string][2]int{"unfused-slowdown": {1, 2}})
}

func BenchmarkAblationPrefetch(b *testing.B) {
	benchTable(b, experiments.AblationPrefetch,
		map[string][2]int{"sync-slowdown": {1, 2}})
}

func BenchmarkAblationRBMDependencyGraph(b *testing.B) {
	benchTable(b, experiments.AblationRBMDependencyGraph,
		map[string][2]int{"serial-slowdown": {1, 2}})
}

func BenchmarkAblationThreadsPerCore(b *testing.B) {
	benchTable(b, experiments.AblationThreadsPerCore,
		map[string][2]int{
			"tpc1-s": {0, 2},
			"tpc2-s": {1, 2},
			"tpc4-s": {3, 2},
		})
}

func BenchmarkAblationCoreScaling(b *testing.B) {
	benchTable(b, experiments.AblationCoreCount,
		map[string][2]int{"speedup-60core": {5, 2}})
}

func BenchmarkAblationHostComparison(b *testing.B) {
	benchTable(b, experiments.AblationHostComparison,
		map[string][2]int{
			"vs-1core":  {0, 2},
			"vs-dual":   {2, 2},
			"vs-matlab": {3, 2},
		})
}

// BenchmarkFutureWorkHybrid regenerates the §VI hybrid host+Phi prediction:
// gain on small models, loss on large ones.
func BenchmarkFutureWorkHybrid(b *testing.B) {
	benchTable(b, experiments.HybridCrossover,
		map[string][2]int{
			"gain-small": {0, 3},
			"gain-large": {3, 3},
		})
}

// BenchmarkFutureWorkAutoTune regenerates the §VI thread-balance tuner.
func BenchmarkFutureWorkAutoTune(b *testing.B) {
	benchTable(b, experiments.AutoTune,
		map[string][2]int{"gain-batch200": {1, 4}})
}

// BenchmarkSGDVsBatchMethods regenerates the §III trade-off study: batch
// methods are device-friendly but spend far more simulated time per update.
func BenchmarkSGDVsBatchMethods(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.BatchMethods()
	}
	b.StopTimer()
	b.ReportMetric(simSeconds(t.Rows[0][4]), "sgd-s")
	b.ReportMetric(simSeconds(t.Rows[1][4]), "lbfgs-s")
	if testing.Verbose() {
		b.Log("\n" + t.String())
	}
}

// BenchmarkClusterVsPhi regenerates the positioning study: one coprocessor
// against a commodity parameter-averaging cluster.
func BenchmarkClusterVsPhi(b *testing.B) {
	benchTable(b, experiments.ClusterVsPhi,
		map[string][2]int{
			"cluster16-s": {3, 1},
			"phi-s":       {4, 1},
		})
}

// --- Numeric kernel microbenchmarks (real wall clock) ---

// BenchmarkKernelGemm measures the real Go GEMM at each optimization level
// on a 128×256×128 multiply — the ladder the cost model abstracts.
func BenchmarkKernelGemm(b *testing.B) {
	r := rng.New(1)
	a := tensor.NewMatrix(128, 256).Randomize(r, -1, 1)
	bm := tensor.NewMatrix(256, 128).Randomize(r, -1, 1)
	c := tensor.NewMatrix(128, 128)
	pool := parallel.NewPool(0)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		b.Run(lvl.String(), func(b *testing.B) {
			b.SetBytes(128 * 256 * 128 * 2 * 8 / 1e0)
			for i := 0; i < b.N; i++ {
				kernels.Gemm(pool, lvl, false, false, 1, a, bm, 0, c)
			}
			reportGflops(b, 128, 256, 128)
		})
	}
}

// reportGflops attaches achieved GEMM throughput (2·m·k·n flops per call)
// to a benchmark, so `go test -bench Kernel` output feeds the wall-clock
// tables in EXPERIMENTS.md directly.
func reportGflops(b *testing.B, m, k, n int) {
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		flops := 2 * float64(m) * float64(k) * float64(n) * float64(b.N)
		b.ReportMetric(flops/sec/1e9, "GFLOP/s")
	}
}

// BenchmarkKernelGemm512 measures the real GEMM ladder on a square
// 512×512×512 multiply — large enough that the packed path's cache
// blocking and register tiling dominate, and the headline case for the
// packed micro-kernel speedup tracked in EXPERIMENTS.md.
func BenchmarkKernelGemm512(b *testing.B) {
	r := rng.New(2)
	a := tensor.NewMatrix(512, 512).Randomize(r, -1, 1)
	bm := tensor.NewMatrix(512, 512).Randomize(r, -1, 1)
	c := tensor.NewMatrix(512, 512)
	pool := parallel.NewPool(0)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.Gemm(pool, lvl, false, false, 1, a, bm, 0, c)
			}
			reportGflops(b, 512, 512, 512)
		})
	}
}

// BenchmarkKernelGemm512F32 measures the float32 GEMM ladder on the same
// 512×512×512 multiply as BenchmarkKernelGemm512. The headline comparison
// for EXPERIMENTS.md: the blocked f32 path should clear 1.5× the f64
// GFLOP/s — eight lanes per FMA instead of four, half the pack traffic.
func BenchmarkKernelGemm512F32(b *testing.B) {
	r := rng.New(2)
	a := tensor.NewMatrix(512, 512).Randomize(r, -1, 1).To32()
	bm := tensor.NewMatrix(512, 512).Randomize(r, -1, 1).To32()
	c := tensor.NewMatrix32(512, 512)
	pool := parallel.NewPool(0)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.Gemm32(pool, lvl, false, false, 1, a, bm, 0, c)
			}
			reportGflops(b, 512, 512, 512)
		})
	}
}

// BenchmarkKernelConvIm2col measures the im2col-lowered convolution forward
// (lowering + packed GEMM) at each optimization level on a LeNet-scale
// layer: batch 32 of 16×16×6 maps, 12 filters of 5×5, stride 1, same pad —
// the conv workload DESIGN.md §12 lowers onto the GEMM ladder. GFLOP/s
// counts the GEMM flops only (2·M·K·N with M=batch·outHW, K=KH·KW·C, N=F);
// the lowering overhead shows up as the gap to BenchmarkKernelGemm at the
// same level.
func BenchmarkKernelConvIm2col(b *testing.B) {
	s := kernels.ConvShape{C: 6, H: 16, W: 16, F: 12, KH: 5, KW: 5, Stride: 1, Pad: 2}
	const batch = 32
	r := rng.New(4)
	x := tensor.NewMatrix(batch, s.InDim()).Randomize(r, 0, 1)
	w := tensor.NewMatrix(s.ColK(), s.F).Randomize(r, -0.1, 0.1)
	m := batch * s.OutH() * s.OutW()
	cols := tensor.NewMatrix(m, s.ColK())
	y := tensor.NewMatrix(m, s.F)
	pool := parallel.NewPool(0)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.Im2col(pool, lvl, s, batch, x, cols)
				kernels.Gemm(pool, lvl, false, false, 1, cols, w, 0, y)
			}
			reportGflops(b, m, s.ColK(), s.F)
		})
	}
}

// BenchmarkConvnetTrainingStep measures one real numeric convnet SGD step
// (16×16 inputs, 6/12-filter conv stack, batch 32) end to end on the
// simulated Phi through the public API — the supervised counterpart of
// BenchmarkNumericTrainingStep, and the per-step number behind the
// EXPERIMENTS.md convnet epoch-time table.
func BenchmarkConvnetTrainingStep(b *testing.B) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	b.Cleanup(mach.Close)
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 1)
	cfg := phideep.ConvnetConfig{
		Side: 16, Filters1: 6, Kernel1: 5, Filters2: 12, Kernel2: 3,
		Pool: 2, Classes: 10, Lambda: 1e-4, Batch: 32, Seed: 2,
	}
	m, err := phideep.BuildConvnet(ctx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(6)
	x := tensor.NewMatrix(32, cfg.InputDim()).Randomize(r, 0, 1)
	y := tensor.NewMatrix(32, cfg.Classes)
	for i := 0; i < 32; i++ {
		y.RowView(i)[r.Intn(cfg.Classes)] = 1
	}
	dx := mach.Dev.MustAlloc(32, cfg.InputDim())
	dy := mach.Dev.MustAlloc(32, cfg.Classes)
	mach.Dev.CopyIn(dx, x, 0)
	mach.Dev.CopyIn(dy, y, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepLabeled(dx, dy, 0.1)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(32*float64(b.N)/sec, "examples/s")
	}
}

// BenchmarkServeEncode measures served Encode throughput through the full
// micro-batching stack at each precision (examples/s), with enough
// concurrent clients to keep the batcher coalescing. The f64/f32 ratio is
// the serving-side view of the reduced-precision speedup.
func BenchmarkServeEncode(b *testing.B) {
	for _, prec := range []phideep.Precision{phideep.PrecisionF64, phideep.PrecisionF32} {
		b.Run(prec.String(), func(b *testing.B) {
			m := phideep.ServeAutoencoder(phideep.AutoencoderConfig{Visible: 256, Hidden: 64, Seed: 1}, nil)
			srv, err := phideep.NewServer(m, phideep.ServeConfig{
				Level: phideep.Improved, Workers: 2,
				MaxBatch: 32, MaxWait: 200 * time.Microsecond,
			}, phideep.WithPrecision(prec))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(srv.Close)
			x := make([]float64, 256)
			r := rng.New(7)
			for j := range x {
				x[j] = r.Float64()
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := srv.Encode(x); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "examples/s")
			}
		})
	}
}

// BenchmarkKernelGemvTrans measures the transposed Gemv (y = Aᵀx), the
// path parallelized with per-worker partial vectors.
func BenchmarkKernelGemvTrans(b *testing.B) {
	r := rng.New(3)
	a := tensor.NewMatrix(1024, 512).Randomize(r, -1, 1)
	x := tensor.NewVector(1024).Randomize(r, -1, 1)
	y := tensor.NewVector(512)
	pool := parallel.NewPool(0)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernels.Gemv(pool, lvl, true, 1, a, x, 0, y)
			}
		})
	}
}

// BenchmarkSchedulingStaticVsDynamic measures the real parallel-for
// schedules on a uniform elementwise body (static should win — the paper's
// granularity discussion).
func BenchmarkSchedulingStaticVsDynamic(b *testing.B) {
	pool := parallel.NewPool(0)
	defer pool.Close()
	x := make([]float64, 1<<16)
	for _, sched := range []parallel.Schedule{parallel.Static, parallel.Dynamic} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.For(len(x), sched, 1024, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						x[j] = x[j]*0.5 + 1
					}
				})
			}
		})
	}
}

// BenchmarkNumericTrainingStep measures one real numeric Autoencoder SGD
// step (64→25, batch 32) end to end on the simulated Phi, through the
// public API.
func BenchmarkNumericTrainingStep(b *testing.B) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	b.Cleanup(mach.Close)
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 1)
	m, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{
		Visible: 64, Hidden: 25, Lambda: 1e-4, Beta: 3, Rho: 0.05,
	}, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewMatrix(32, 64).Randomize(rng.New(5), 0.1, 0.9)
	dx := mach.Dev.MustAlloc(32, 64)
	mach.Dev.CopyIn(dx, x, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(dx, 0.1)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(32*float64(b.N)/sec, "examples/s")
	}
}
