// Tests of the public API facade: everything a downstream user touches,
// exercised end to end through the module root only.
package phideep_test

import (
	"bytes"
	"math"
	"testing"

	"phideep"
)

func TestEndToEndNumericTraining(t *testing.T) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 42)
	ae, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{
		Visible: 64, Hidden: 16, Lambda: 1e-5,
	}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs: 10, LR: 0.8, Prefetch: true,
	}}
	res, err := trainer.Run(ae, phideep.NewDigits(8, 200, 7, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalLoss < res.FirstLoss) {
		t.Fatalf("did not learn: %g → %g", res.FirstLoss, res.FinalLoss)
	}
	if res.SimSeconds <= 0 || res.Device.Ops == 0 {
		t.Fatal("no simulated activity recorded")
	}
}

func TestLadderComparisonThroughFacade(t *testing.T) {
	timeAt := func(lvl phideep.OptLevel) float64 {
		mach := phideep.NewMachine(phideep.XeonPhi5110P())
		ctx := phideep.NewContext(mach.Dev, lvl, 0, 1)
		ae, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{Visible: 1024, Hidden: 512}, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{Iterations: 5, LR: 0.1, Prefetch: true}}
		res, err := tr.Run(ae, nullSrc{1024, 10000})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimSeconds
	}
	if !(timeAt(phideep.Improved) < timeAt(phideep.OpenMP) && timeAt(phideep.OpenMP) < timeAt(phideep.Baseline)) {
		t.Fatal("optimization ladder not monotone through the facade")
	}
}

type nullSrc struct{ d, n int }

func (s nullSrc) Dim() int                                { return s.d }
func (s nullSrc) Len() int                                { return s.n }
func (s nullSrc) Chunk(start, n int, dst *phideep.Matrix) {}

func TestDBNAndCheckpointRoundTrip(t *testing.T) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.OpenMPMKL, 0, 5)
	cfg := phideep.StackConfig{
		Sizes: []int{64, 24, 8}, Batch: 20, LR: 0.3,
		RBM: phideep.RBMConfig{SampleHidden: true},
	}
	res, err := phideep.PretrainDBN(ctx,
		phideep.TrainConfig{Epochs: 2, LR: 0.3, Prefetch: true},
		cfg, phideep.NewDigits(8, 100, 3, 0), 9)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint the first RBM and restore it into a fresh parameter set.
	var buf bytes.Buffer
	if err := res.Layers[0].RBM.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := phideep.NewRBMParams(phideep.RBMConfig{Visible: 64, Hidden: 24}, 99)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	v := phideep.NewVector(64)
	for i := range v {
		v[i] = float64(i % 2)
	}
	if math.Abs(restored.FreeEnergy(v)-res.Layers[0].RBM.FreeEnergy(v)) > 1e-12 {
		t.Fatal("restored RBM differs from the trained one")
	}
}

func TestMLPFineTuningThroughFacade(t *testing.T) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 11)
	m, err := phideep.NewMLP(ctx, phideep.MLPConfig{Sizes: []int{64, 16, 10}, Momentum: 0.5}, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	digits := phideep.NewDigits(8, 25, 13, 0.02)
	x := phideep.NewMatrix(25, 64)
	digits.Chunk(0, 25, x)
	labels := make([]int, 25)
	for i := range labels {
		labels[i] = digits.Label(i)
	}
	y := phideep.NewMatrix(25, 10)
	phideep.OneHot(labels, y)
	dx, dy := mach.Dev.MustAlloc(25, 64), mach.Dev.MustAlloc(25, 10)
	mach.Dev.CopyIn(dx, x, 0)
	mach.Dev.CopyIn(dy, y, 0)
	first := m.StepLabeled(dx, dy, 0.3)
	var last float64
	for i := 0; i < 150; i++ {
		last = m.StepLabeled(dx, dy, 0.3)
	}
	if !(last < first) {
		t.Fatalf("fine-tuning did not learn: %g → %g", first, last)
	}
	if acc := m.Accuracy(dx, dy); acc < 0.8 {
		t.Fatalf("training accuracy %g", acc)
	}
}

func TestBatchOptimizersThroughFacade(t *testing.T) {
	cfg := phideep.AutoencoderConfig{Visible: 9, Hidden: 4, Lambda: 1e-5}
	patches := phideep.NewNaturalPatches(3, 40, 3)
	x := phideep.NewMatrix(40, 9)
	patches.Chunk(0, 40, x)
	p := phideep.NewAutoencoderParams(cfg, 2)
	obj, theta := phideep.AutoencoderObjective(cfg, p, x)
	start := phideep.AutoencoderCost(cfg, p, x)
	res := phideep.LBFGS(obj, theta, phideep.LBFGSConfig{MaxIter: 30})
	if !(res.Cost < start) {
		t.Fatalf("L-BFGS made no progress: %g → %g", start, res.Cost)
	}
	p2 := phideep.NewAutoencoderParams(cfg, 2)
	obj2, theta2 := phideep.AutoencoderObjective(cfg, p2, x)
	res2 := phideep.CG(obj2, theta2, phideep.CGConfig{MaxIter: 30})
	if !(res2.Cost < start) {
		t.Fatalf("CG made no progress: %g → %g", start, res2.Cost)
	}
}

func TestHybridThroughFacade(t *testing.T) {
	phiMach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	hostMach := phideep.NewMachine(phideep.XeonE5620Dual(), phideep.WithNumeric())
	defer phiMach.Close()
	defer hostMach.Close()
	phiCtx := phideep.NewContext(phiMach.Dev, phideep.Improved, 0, 1)
	hostCtx := phideep.NewContext(hostMach.Dev, phideep.OpenMPMKL, 0, 2)
	h, err := phideep.NewHybridAE(phiCtx, hostCtx, phideep.HybridAEConfig{
		Model: phideep.AutoencoderConfig{Visible: 64, Hidden: 8},
		Batch: 10,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Free()
	x := phideep.NewMatrix(10, 64)
	src := phideep.NewDigits(8, 10, 5, 0)
	src.Chunk(0, 10, x)
	first := h.Step(x, 0.5)
	var last float64
	for i := 0; i < 100; i++ {
		last = h.Step(x, 0.5)
	}
	if !(last < first) {
		t.Fatalf("hybrid did not learn: %g → %g", first, last)
	}
	if h.SimSeconds() <= 0 {
		t.Fatal("no synchronized simulated time")
	}
}

func TestTunerThroughFacade(t *testing.T) {
	w := phideep.TuneAEWorkload{
		Arch:            phideep.XeonPhi5110P(),
		Model:           phideep.AutoencoderConfig{Visible: 256, Hidden: 512},
		Batch:           500,
		Iterations:      5,
		DatasetExamples: 10000,
	}
	res, err := w.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.SimSeconds <= 0 || len(res.All) == 0 {
		t.Fatalf("empty tuning result: %+v", res)
	}
}

func TestAdaptiveLRThroughFacade(t *testing.T) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 8)
	ae, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{Visible: 64, Hidden: 12}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs: 5, Adaptive: phideep.NewBoldDriver(0.1), Prefetch: true,
	}}
	res, err := tr.Run(ae, phideep.NewDigits(8, 100, 7, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalLoss < res.FirstLoss) {
		t.Fatalf("adaptive run did not learn: %g → %g", res.FirstLoss, res.FinalLoss)
	}
}

func TestDeviceTraceThroughFacade(t *testing.T) {
	mach := phideep.NewMachine(phideep.XeonPhi5110P())
	mach.Dev.EnableTrace(100)
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 1)
	ae, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{Visible: 32, Hidden: 8}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	dx := mach.Dev.MustAlloc(10, 32)
	mach.Dev.CopyIn(dx, nil, 0)
	ae.Step(dx, 0.1)
	events, _ := mach.Dev.Trace()
	if len(events) == 0 {
		t.Fatal("no trace events through the facade")
	}
	var sb bytes.Buffer
	if err := mach.Dev.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}
