module phideep

go 1.22
