#!/bin/sh
# CI gate: formatting, vet, build, doc coverage, full test suite, then
# race-check the packages that share mutable state across goroutines
# (packed GEMM panels, pool fork/join, device queues, metrics registry).
# Run from the repo root.
set -eux

# gofmt must be a no-op everywhere.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Every package must carry a package comment (godoc coverage guard).
undocumented=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/... ./cmd/...)
if [ -n "$undocumented" ]; then
    echo "missing package comment in:" >&2
    echo "$undocumented" >&2
    exit 1
fi

# vet covers the deprecated facade wrappers (NewMachineAt, NewAutoencoder,
# ...) too: they must stay warning-free until their removal.
go vet ./...
go build ./...
go test ./...
# The pure-Go micro-kernel fallbacks (f64 and f32) must stay correct on
# their own: re-run the kernel suite — and the convnet built on the
# lowered GEMM — with the assembly path compiled out. The tuner rides
# along: its workload evaluations and predictor calibration run the full
# training stack, so they must hold on the fallback kernels too. data and
# feed join because the feed-backed trainer bit-identity tests must hold
# on the fallback kernels as well.
go test -tags noasm ./internal/kernels/... ./internal/convnet/... ./internal/tune/... ./internal/data/... ./internal/feed/...
# core and stack carry the fault-injection, checkpoint/resume and chunk
# prefetch tests, which overlap the loading goroutine with training; the
# cluster package rides along for its checkpoint-handoff paths; serve is
# the micro-batcher + worker pool; convnet runs its conv kernels across
# varying pool sizes (the bit-determinism-across-workers tests).
# tune joins the race set for its leak-free candidate-evaluation guarantee
# (device audits on every error path) and the adaptive controller's
# lock-protected knob updates. data and feed join for the concurrent
# source readers and the lease/commit protocol's shared cursor state
# (many consumers leasing/committing against one feed).
go test -race ./internal/kernels/... ./internal/parallel/... ./internal/device/... ./internal/metrics/... ./internal/core/... ./internal/stack/... ./internal/cluster/... ./internal/serve/... ./internal/convnet/... ./internal/tune/... ./internal/data/... ./internal/feed/...
# Determinism spot-check: the crash/rejoin/resync scenario must produce the
# identical ledger on back-to-back runs (fault injection is seeded, never
# wall-clock dependent).
go test -run TestClusterRecovery -count=2 ./internal/cluster/
# Serving chaos gate: the fault-injected serving suite (transient storms,
# permanent replica loss, fail-fast at zero workers) must hold under the
# race detector, and twice in a row — the injected fault streams are
# seeded, so outcomes and fault ledgers must replay identically.
go test -race -run 'TestChaos' -count=2 ./internal/serve/
# Serving smoke: the closed-loop load generator must sustain concurrent
# clients against the in-process server and print a latency report.
go run ./cmd/phiserve -model ae -visible 64 -hidden 16 -loadgen -clients 8 -duration 2s
# Adaptive-batching smoke: same load with the online controller on and a
# deliberately oversized window (clients < max-batch) — the report must
# include the "adaptive:" line showing the controller engaged.
go run ./cmd/phiserve -model ae -visible 64 -hidden 16 -loadgen -clients 8 \
    -max-batch 16 -max-wait 10ms -duration 2s -adaptive | grep "adaptive:"
# Degradation smoke: loadgen against a fault-injected server (transient +
# permanent faults, seeded; restart budget high enough that the supervisor
# rebuilds through the permanent losses). Every outcome must be typed —
# the report's "health:" line proves the server stayed up and counting.
go run ./cmd/phiserve -model ae -visible 64 -hidden 16 -loadgen -clients 8 \
    -duration 2s -fault-rate 0.05 -fault-permanent 0.2 -fault-seed 7 \
    -workers 2 -max-restarts 100 | grep "health:"
# Shared-feed cluster smoke: every node streams from one dataset feed
# (lease/commit protocol) under fault injection — the "feed:" line proves
# the lease ledger balanced (leases == commits) across crash/rejoin.
go run ./cmd/phisim -nodes 3 -cluster-steps 20 -feed -numeric \
    -global-batch 24 -visible 32 -hidden 8 \
    -node-fault-rate 0.1 -node-rejoin-after 3 | grep "feed:"
# Convnet train-then-serve smoke: train on labeled digits, export a PHCK
# checkpoint, and serve /predict from it through the load generator (the
# geometry flags must match between the two commands).
ckpt=$(mktemp -u /tmp/ci-convnet-XXXXXX.phck)
go run ./cmd/phitrain -model convnet -data digits -side 8 -examples 256 \
    -batch 16 -epochs 1 -classes 10 -filters1 3 -kernel1 3 -filters2 4 \
    -kernel2 3 -export "$ckpt"
go run ./cmd/phiserve -model convnet -side 8 -classes 10 -filters1 3 \
    -kernel1 3 -filters2 4 -kernel2 3 -checkpoint "$ckpt" \
    -loadgen -clients 4 -duration 2s
rm -f "$ckpt"
