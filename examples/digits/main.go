// Digits: greedy layer-wise pre-training of a deep stacked Autoencoder
// (Fig. 1 of the paper) on synthetic handwritten digits, followed by a
// nearest-centroid evaluation showing that the learned deep code separates
// digit classes far better than raw pixels.
//
//	go run ./examples/digits
package main

import (
	"fmt"
	"log"
	"math"

	"phideep"
)

const (
	side     = 16
	examples = 4000
	batch    = 100
)

func main() {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 9)

	digits := phideep.NewDigits(side, examples, 3, 0.03)

	// A 256-128-64 stack: two unsupervised trainings, each feeding the
	// next layer's inputs (exactly the paper's Fig. 1 protocol).
	cfg := phideep.StackConfig{
		Sizes:  []int{side * side, 128, 64},
		Lambda: 1e-5, Beta: 0.1, Rho: 0.1,
		Batch: batch, LR: 1.0,
	}
	tc := phideep.TrainConfig{Epochs: 10, LR: 1.0, Prefetch: true}
	res, err := phideep.PretrainAutoencoders(ctx, tc, cfg, digits, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Stacked Autoencoder pre-training (256-128-64) on simulated Xeon Phi")
	for i, l := range res.Layers {
		fmt.Printf("  layer %d (%d -> %d): reconstruction %.4f -> %.4f\n",
			i, l.Visible, l.Hidden, l.Train.FirstLoss, l.Train.FinalLoss)
	}
	fmt.Printf("  total simulated time: %.2f s\n", res.SimSeconds)

	// Evaluate: encode a held-out set through the stack and classify by
	// nearest class centroid, against the same classifier on raw pixels.
	test := phideep.NewDigits(side, 1000, 77, 0.03)
	raw := phideep.NewMatrix(test.Len(), test.Dim())
	test.Chunk(0, test.Len(), raw)
	labels := make([]int, test.Len())
	for i := range labels {
		labels[i] = test.Label(i)
	}

	encoded := encodeStack(res, raw)
	accRaw := centroidAccuracy(raw, labels)
	accDeep := centroidAccuracy(encoded, labels)
	fmt.Printf("nearest-centroid accuracy on 1000 held-out digits:\n")
	fmt.Printf("  raw pixels (%d dims):   %.1f%%\n", raw.Cols, 100*accRaw)
	fmt.Printf("  deep code  (%d dims):   %.1f%%\n", encoded.Cols, 100*accDeep)
	fmt.Printf("  the unsupervised %d-dim code keeps %.0f%% of the raw-pixel accuracy at %.0fx compression\n",
		encoded.Cols, 100*accDeep/accRaw, float64(raw.Cols)/float64(encoded.Cols))
}

// encodeStack feeds every row of x through the trained encoder stack.
func encodeStack(res *phideep.StackResult, x *phideep.Matrix) *phideep.Matrix {
	cur := x
	for _, layer := range res.Layers {
		next := phideep.NewMatrix(cur.Rows, layer.Hidden)
		for i := 0; i < cur.Rows; i++ {
			layer.AE.Encode(cur.RowView(i), next.RowView(i))
		}
		cur = next
	}
	return cur
}

// centroidAccuracy fits per-class centroids on the first half of the rows
// and classifies the second half by nearest centroid.
func centroidAccuracy(x *phideep.Matrix, labels []int) float64 {
	half := x.Rows / 2
	var centroids [10]phideep.Vector
	var counts [10]int
	for c := range centroids {
		centroids[c] = phideep.NewVector(x.Cols)
	}
	for i := 0; i < half; i++ {
		c := labels[i]
		counts[c]++
		row := x.RowView(i)
		for j, v := range row {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] > 0 {
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	correct := 0
	for i := half; i < x.Rows; i++ {
		row := x.RowView(i)
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			d := 0.0
			for j, v := range row {
				diff := v - centroids[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows-half)
}
