// Features: learn sparse features from natural-image patches — the classic
// sparse-autoencoder workload the paper's datasets come from — two ways:
//
//  1. minibatch SGD on the simulated Xeon Phi (the paper's method), and
//  2. batch L-BFGS on the host reference implementation (the
//     easier-to-parallelize alternative the paper's §III discusses),
//
// then render the strongest learned receptive fields as ASCII and report
// which optimizer reached the lower objective per gradient evaluation.
//
//	go run ./examples/features
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"phideep"
)

const (
	patchSide = 8
	visible   = patchSide * patchSide
	hidden    = 25
	examples  = 4000
	batch     = 200
)

func main() {
	cfg := phideep.AutoencoderConfig{
		Visible: visible, Hidden: hidden,
		Lambda: 1e-4, Beta: 3, Rho: 0.05,
	}
	patches := phideep.NewNaturalPatches(patchSide, examples, 31)

	// --- Method 1: the paper's minibatch SGD on the simulated Phi.
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 17)
	ae, err := phideep.NewAutoencoder(ctx, cfg, batch, 3)
	if err != nil {
		log.Fatal(err)
	}
	trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs: 15, LR: 1.0, Prefetch: true,
	}}
	res, err := trainer.Run(ae, patches)
	if err != nil {
		log.Fatal(err)
	}
	sgdParams := ae.Download()
	fmt.Printf("SGD on simulated Xeon Phi: %d updates, loss %.4f -> %.4f, %.2f simulated s\n",
		res.Steps, res.FirstLoss, res.FinalLoss, res.SimSeconds)

	// --- Method 2: batch L-BFGS on the host reference model.
	x := phideep.NewMatrix(examples, visible)
	patches.Chunk(0, examples, x)
	p := phideep.NewAutoencoderParams(cfg, 3)
	obj, theta := phideep.AutoencoderObjective(cfg, p, x)
	start := phideep.AutoencoderCost(cfg, p, x)
	opt := phideep.LBFGS(obj, theta, phideep.LBFGSConfig{MaxIter: 40})
	fmt.Printf("L-BFGS on host reference:  %d iterations (%d evaluations), cost %.4f -> %.4f\n",
		opt.Iterations, opt.Evaluations, start, opt.Cost)

	// --- Render the strongest receptive fields learned by L-BFGS.
	fmt.Println("\nstrongest learned receptive fields (L-BFGS weights, ASCII):")
	renderFields(p.W1, 5)

	// Sanity: both methods should produce sparse codes near ρ.
	fmt.Printf("\nmean hidden activation (target ρ = %.2f): SGD %.3f, L-BFGS %.3f\n",
		cfg.Rho, meanActivation(cfg, sgdParams, x), meanActivation(cfg, p, x))
}

// renderFields prints the top-k hidden units' input weights as ASCII
// patches, strongest first.
func renderFields(w1 *phideep.Matrix, k int) {
	type unit struct {
		j    int
		norm float64
	}
	units := make([]unit, w1.Cols)
	for j := range units {
		s := 0.0
		for i := 0; i < w1.Rows; i++ {
			v := w1.At(i, j)
			s += v * v
		}
		units[j] = unit{j, math.Sqrt(s)}
	}
	sort.Slice(units, func(a, b int) bool { return units[a].norm > units[b].norm })
	shades := []byte(" .:-=+*#%@")
	for rank := 0; rank < k && rank < len(units); rank++ {
		j := units[rank].j
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < w1.Rows; i++ {
			v := w1.At(i, j)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		fmt.Printf("unit %d (|w| = %.3f):\n", j, units[rank].norm)
		for y := 0; y < patchSide; y++ {
			line := make([]byte, patchSide)
			for x := 0; x < patchSide; x++ {
				v := (w1.At(y*patchSide+x, j) - lo) / span
				idx := int(v * float64(len(shades)-1))
				line[x] = shades[idx]
			}
			fmt.Printf("  %s\n", line)
		}
	}
}

// meanActivation computes the average hidden activation of the model on x.
func meanActivation(cfg phideep.AutoencoderConfig, p *phideep.AutoencoderParams, x *phideep.Matrix) float64 {
	total := 0.0
	for i := 0; i < x.Rows; i++ {
		row := x.RowView(i)
		for j := 0; j < cfg.Hidden; j++ {
			s := p.B1[j]
			for k, xv := range row {
				s += xv * p.W1.At(k, j)
			}
			total += 1 / (1 + math.Exp(-s))
		}
	}
	return total / float64(x.Rows*cfg.Hidden)
}
