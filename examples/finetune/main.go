// Finetune: the full pipeline the paper's pre-training exists for.
//
//  1. Pre-train a stacked Autoencoder on *unlabeled* digits (Fig. 1).
//  2. Fine-tune a deep softmax classifier initialized from the stack on a
//     small *labeled* subset.
//  3. Compare against the same network fine-tuned from random
//     initialization.
//
// With scarce labels, unsupervised pre-training should give the classifier
// a head start — the classic Hinton & Salakhutdinov result that motivates
// the whole paper.
//
//	go run ./examples/finetune
package main

import (
	"fmt"
	"log"

	"phideep"
)

const (
	side      = 16
	dim       = side * side
	unlabeled = 4000 // pre-training set (no labels used)
	labeled   = 300  // scarce labeled set
	testSize  = 1000
	batch     = 50
	classes   = 10
	ftEpochs  = 60
	ftLR      = 0.4
	hidden1   = 128
	hidden2   = 64
)

func main() {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 33)

	// 1. Unsupervised pre-training on plentiful unlabeled digits.
	pretrainSrc := phideep.NewDigits(side, unlabeled, 3, 0.03)
	stackCfg := phideep.StackConfig{
		Sizes:  []int{dim, hidden1, hidden2},
		Lambda: 1e-5, Beta: 0.1, Rho: 0.1,
		Batch: 100, LR: 1.0,
	}
	pre, err := phideep.PretrainAutoencoders(ctx,
		phideep.TrainConfig{Epochs: 8, LR: 1.0, Prefetch: true},
		stackCfg, pretrainSrc, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-trained %d layers on %d unlabeled digits (%.1f simulated s)\n",
		len(pre.Layers), unlabeled, pre.SimSeconds)

	// Labeled data: a small training split and a held-out test split.
	trainX, trainY := labeledSet(7001, labeled)
	testX, testY := labeledSet(9001, testSize)

	cfg := phideep.MLPConfig{
		Sizes:    []int{dim, hidden1, hidden2, classes},
		Lambda:   1e-4,
		Momentum: 0.9,
	}

	// 2./3. Fine-tune from the pre-trained stack and from scratch.
	accPre := finetune(mach, cfg, pre, trainX, trainY, testX, testY)
	accRnd := finetune(mach, cfg, nil, trainX, trainY, testX, testY)

	fmt.Printf("\ntest accuracy after fine-tuning on only %d labeled digits:\n", labeled)
	fmt.Printf("  random initialization:      %.1f%%\n", 100*accRnd)
	fmt.Printf("  pre-trained initialization: %.1f%%\n", 100*accPre)
	if accPre > accRnd {
		fmt.Printf("  unsupervised pre-training is worth %+.1f points here\n", 100*(accPre-accRnd))
	} else {
		fmt.Println("  (pre-training did not help on this draw)")
	}
}

// labeledSet renders n labeled digit images.
func labeledSet(seed uint64, n int) (*phideep.Matrix, *phideep.Matrix) {
	src := phideep.NewDigits(side, n, seed, 0.03)
	x := phideep.NewMatrix(n, dim)
	src.Chunk(0, n, x)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = src.Label(i)
	}
	y := phideep.NewMatrix(n, classes)
	phideep.OneHot(labels, y)
	return x, y
}

// finetune trains the classifier (warm-started from pre when non-nil) on
// the labeled set and returns held-out accuracy.
func finetune(mach *phideep.Machine, cfg phideep.MLPConfig, pre *phideep.StackResult,
	trainX, trainY, testX, testY *phideep.Matrix) float64 {

	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 55)
	m, err := phideep.NewMLP(ctx, cfg, batch, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Free()
	if pre != nil {
		if err := m.InitFromStack(pre); err != nil {
			log.Fatal(err)
		}
	}

	dev := mach.Dev
	dx := dev.MustAlloc(batch, dim)
	dy := dev.MustAlloc(batch, classes)
	defer dev.Free(dx)
	defer dev.Free(dy)

	n := trainX.Rows
	for epoch := 0; epoch < ftEpochs; epoch++ {
		for start := 0; start+batch <= n; start += batch {
			dev.CopyIn(dx, trainX.RowsView(start, start+batch).Contiguous(), 0)
			dev.CopyIn(dy, trainY.RowsView(start, start+batch).Contiguous(), 0)
			m.StepLabeled(dx, dy, ftLR)
		}
	}

	// Held-out accuracy, batch by batch.
	correct, total := 0.0, 0
	for start := 0; start+batch <= testX.Rows; start += batch {
		dev.CopyIn(dx, testX.RowsView(start, start+batch).Contiguous(), 0)
		dev.CopyIn(dy, testY.RowsView(start, start+batch).Contiguous(), 0)
		correct += m.Accuracy(dx, dy) * batch
		total += batch
	}
	return correct / float64(total)
}
