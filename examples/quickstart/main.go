// Quickstart: train one Sparse Autoencoder on synthetic handwritten digits
// on the simulated Xeon Phi, numerically (real math + simulated clock), and
// print the learning curve, the simulated time, and what the same run would
// have cost at the un-optimized Baseline level.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"phideep"
)

func main() {
	// A numeric machine really computes; the Phi clock is simulated.
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()

	// Fully-optimized execution (MKL-grade kernels + fusion + Fig. 6
	// scheduling) on all 60 cores.
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 42)

	// 16×16 digit images, 8000 examples; a 256→64 sparse autoencoder.
	const side, examples, batch = 16, 8000, 100
	ae, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{
		Visible: side * side,
		Hidden:  64,
		Lambda:  1e-4, // L2 weight decay (Eq. 4)
		Beta:    0.5,  // sparsity penalty weight (Eq. 5)
		Rho:     0.05, // target mean activation
	}, batch, 1)
	if err != nil {
		log.Fatal(err)
	}

	trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: phideep.TrainConfig{
		Epochs:   5,
		LR:       0.5,
		Prefetch: true, // Fig. 5 loading thread
	}}
	res, err := trainer.Run(ae, phideep.NewDigits(side, examples, 7, 0.05))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Sparse Autoencoder 256 -> 64 on simulated Xeon Phi 5110P")
	for i, l := range res.EpochLoss {
		fmt.Printf("  epoch %d: reconstruction error %.4f\n", i+1, l)
	}
	fmt.Printf("  %d updates over %d examples in %.3f simulated seconds\n",
		res.Steps, res.Examples, res.SimSeconds)
	fmt.Printf("  device: %d kernel launches, %.3g modeled flops, transfers busy %.3f s\n",
		res.Device.Ops, res.Device.Flops, res.Device.TransferBusy)

	// Part two: a paper-scale workload (1024×4096, batch 1000, 100 k
	// examples), timing-only — the device charges simulated time without
	// touching the floats, so this models in milliseconds what the Phi
	// would spend minutes on. Comparing the fully-optimized run against
	// the un-optimized sequential baseline reproduces the Table I gap.
	fmt.Println()
	fmt.Println("Paper-scale workload 1024 -> 4096, batch 1000, 100k examples (timing-only):")
	var times [2]float64
	for i, lvl := range []phideep.OptLevel{phideep.Improved, phideep.Baseline} {
		m2 := phideep.NewMachine(phideep.XeonPhi5110P())
		ctx2 := phideep.NewContext(m2.Dev, lvl, 0, 42)
		big, err := phideep.NewAutoencoder(ctx2, phideep.AutoencoderConfig{
			Visible: 1024, Hidden: 4096, Lambda: 1e-4, Beta: 0.1, Rho: 0.05,
		}, 1000, 1)
		if err != nil {
			log.Fatal(err)
		}
		tr2 := &phideep.Trainer{Dev: m2.Dev, Cfg: phideep.TrainConfig{Epochs: 1, LR: 0.1, Prefetch: true}}
		r2, err := tr2.Run(big, timingSource{dim: 1024, n: 100000})
		if err != nil {
			log.Fatal(err)
		}
		times[i] = r2.SimSeconds
		name := "fully optimized (Improved OpenMP+MKL)"
		if lvl == phideep.Baseline {
			name = "un-optimized sequential baseline"
		}
		fmt.Printf("  %-40s %10.1f simulated seconds\n", name, r2.SimSeconds)
	}
	fmt.Printf("  full optimization ladder speedup: %.0fx\n", times[1]/times[0])
}

// timingSource is a geometry-only Source for timing runs: on a timing-only
// device the example values are never read.
type timingSource struct{ dim, n int }

func (s timingSource) Dim() int                                { return s.dim }
func (s timingSource) Len() int                                { return s.n }
func (s timingSource) Chunk(start, n int, dst *phideep.Matrix) {}
