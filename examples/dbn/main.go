// DBN: pre-train a Deep Belief Network — a stack of Restricted Boltzmann
// Machines trained with CD-1 (Eqs. 7–13) — on binarized synthetic digits,
// and verify with the exact free energy that the first RBM learned to
// prefer real digit images over noise.
//
//	go run ./examples/dbn
package main

import (
	"fmt"
	"log"

	"phideep"
)

const (
	side     = 12
	examples = 3000
	batch    = 100
)

// binaryDigits binarizes the stroke-rendered digit images at 0.5, giving
// the binary visible units the RBM energy function assumes.
type binaryDigits struct{ *phideep.Digits }

func (b binaryDigits) Chunk(start, n int, dst *phideep.Matrix) {
	b.Digits.Chunk(start, n, dst)
	dst.Apply(func(v float64) float64 {
		if v > 0.5 {
			return 1
		}
		return 0
	})
}

func main() {
	mach := phideep.NewMachine(phideep.XeonPhi5110P(), phideep.WithNumeric())
	defer mach.Close()
	ctx := phideep.NewContext(mach.Dev, phideep.Improved, 0, 21)

	src := binaryDigits{phideep.NewDigits(side, examples, 5, 0)}

	cfg := phideep.StackConfig{
		Sizes: []int{side * side, 100, 36},
		Batch: batch,
		LR:    0.2,
		RBM:   phideep.RBMConfig{SampleHidden: true},
	}
	tc := phideep.TrainConfig{Epochs: 8, LR: 0.2, Prefetch: true}
	res, err := phideep.PretrainDBN(ctx, tc, cfg, src, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Deep Belief Network pre-training (144-100-36 RBM stack) on simulated Xeon Phi")
	for i, l := range res.Layers {
		fmt.Printf("  RBM %d (%d -> %d): reconstruction error %.4f -> %.4f\n",
			i, l.Visible, l.Hidden, l.Train.FirstLoss, l.Train.FinalLoss)
	}
	fmt.Printf("  total simulated time: %.2f s\n", res.SimSeconds)

	// A trained RBM should assign lower free energy (= higher probability)
	// to held-out digit images than to random noise of the same density.
	first := res.Layers[0].RBM
	heldOut := binaryDigits{phideep.NewDigits(side, 200, 99, 0)}
	x := phideep.NewMatrix(200, side*side)
	heldOut.Chunk(0, 200, x)

	meanOn := x.Mean()
	r := phideep.NewRNG(123)
	fDigits, fNoise := 0.0, 0.0
	noise := phideep.NewVector(side * side)
	for i := 0; i < 200; i++ {
		fDigits += first.FreeEnergy(phideep.Vector(x.RowView(i)))
		for j := range noise {
			noise[j] = r.Bernoulli(meanOn)
		}
		fNoise += first.FreeEnergy(noise)
	}
	fDigits /= 200
	fNoise /= 200
	fmt.Printf("mean free energy, first RBM (lower = more probable):\n")
	fmt.Printf("  held-out digits:        %10.2f\n", fDigits)
	fmt.Printf("  density-matched noise:  %10.2f\n", fNoise)
	fmt.Printf("  margin: %.2f nats in favor of real digit structure\n", fNoise-fDigits)
}
