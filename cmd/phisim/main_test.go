package main

import "testing"

func TestParseShape(t *testing.T) {
	m, k, n, err := parseShape("1000x1024x4096")
	if err != nil || m != 1000 || k != 1024 || n != 4096 {
		t.Fatalf("parseShape: %d %d %d %v", m, k, n, err)
	}
	if _, _, _, err := parseShape("10X20X30"); err != nil {
		t.Fatalf("case-insensitive parse failed: %v", err)
	}
	for _, bad := range []string{"", "10x20", "10x20x30x40", "ax20x30", "0x20x30", "-1x2x3"} {
		if _, _, _, err := parseShape(bad); err == nil {
			t.Errorf("parseShape(%q) should fail", bad)
		}
	}
}
