// Command phisim inspects the simulated platforms: peak rates, bandwidths,
// synchronization costs, transfer times, and modeled kernel times for a
// given GEMM shape at every optimization level. With -nodes it instead
// simulates an N-node commodity cluster training an autoencoder with
// parameter averaging over a modeled interconnect, optionally under
// deterministic fault injection (crashes, stragglers, permanent losses),
// and reports the degradation ledger.
//
// Examples:
//
//	phisim                      # describe every platform
//	phisim -gemm 1000x1024x4096 # model that multiply on every platform
//	phisim -nodes 8 -visible 1024 -hidden 4096 -cluster-steps 50
//	phisim -nodes 8 -node-fault-rate 0.01 -policy drop -report -
//	phisim -nodes 4 -numeric -cluster-steps 200 -node-fault-rate 0.005 \
//	       -node-fault-permanent 0.25 -report degraded.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"phideep/internal/core"
	"phideep/internal/sim"
)

func main() {
	gemm := flag.String("gemm", "", "model a GEMM of shape MxKxN at every level (e.g. 1000x1024x4096)")
	var cf clusterFlags
	registerClusterFlags(&cf)
	flag.Parse()

	if cf.nodes != 0 {
		if err := runCluster(cf, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "phisim:", err)
			os.Exit(1)
		}
		return
	}

	archs := []*sim.Arch{
		sim.XeonPhi5110P(),
		sim.XeonE5620Core(),
		sim.XeonE5620Full(),
		sim.XeonE5620Dual(),
		sim.MatlabR2012a(),
		sim.TeslaK20X(),
	}
	for _, a := range archs {
		describe(a)
		if *gemm != "" {
			m, k, n, err := parseShape(*gemm)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phisim:", err)
				os.Exit(2)
			}
			modelGemm(a, m, k, n)
		}
		fmt.Println()
	}
}

func describe(a *sim.Arch) {
	fmt.Printf("%s\n", a.Name)
	fmt.Printf("  cores: %d x %d threads @ %.3f GHz\n", a.Cores, a.ThreadsPerCore, a.ClockHz/1e9)
	fmt.Printf("  scalar peak:  %8.1f GFLOP/s (all cores, full issue)\n", a.ScalarPeak(a.Cores, a.ThreadsPerCore)/1e9)
	fmt.Printf("  vector peak:  %8.1f GFLOP/s (%d-wide DP, FMA x%d)\n", a.VectorPeak(a.Cores, a.ThreadsPerCore)/1e9, a.VectorDoubles, a.FMAFactor)
	fmt.Printf("  memory bandwidth: %.0f GB/s aggregate, %.0f GB/s per core\n", a.MemBW/1e9, a.PerCoreMemBW/1e9)
	fmt.Printf("  parallel-region cost: %.2f ms at %d threads\n", a.SyncCost(a.Cores*a.ThreadsPerCore)*1e3, a.Cores*a.ThreadsPerCore)
	if a.PCIeBW > 0 {
		fmt.Printf("  PCIe: %.1f GB/s effective goodput, %.0f us latency; global memory %d GB\n",
			a.PCIeBW/1e9, a.PCIeLatency*1e6, a.GlobalMemBytes>>30)
		fmt.Printf("  10000x4096 chunk transfer: %.3f s\n", a.TransferTime(10000*4096*8))
	}
	if a.PerOpOverhead > 0 {
		fmt.Printf("  per-operation dispatch overhead: %.0f us\n", a.PerOpOverhead*1e6)
	}
}

func modelGemm(a *sim.Arch, m, k, n int) {
	fmt.Printf("  GEMM %dx%dx%d (%.3g flops):\n", m, k, n, 2*float64(m)*float64(k)*float64(n))
	for _, lvl := range core.OptLevels {
		kl := lvl.KernelLevel()
		op := sim.Op{Kind: sim.OpGemm, M: m, K: k, N: n, Level: kl, Vector: lvl >= core.OpenMPMKL}
		t := a.OpTime(op)
		fmt.Printf("    %-22s %12.6f s  (%8.1f GFLOP/s)\n", lvl.String(), t, op.Flops()/t/1e9)
	}
}

func parseShape(s string) (m, k, n int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -gemm shape %q, want MxKxN", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		dims[i], err = strconv.Atoi(strings.TrimSpace(p))
		if err != nil || dims[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("bad -gemm dimension %q", p)
		}
	}
	return dims[0], dims[1], dims[2], nil
}
