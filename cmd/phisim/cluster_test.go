package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phideep/internal/cluster"
)

// quickClusterFlags returns a tiny timing-only cluster run.
func quickClusterFlags() clusterFlags {
	return clusterFlags{
		nodes: 3, steps: 10, globalBatch: 12, syncEvery: 2,
		visible: 12, hidden: 6, nodeArch: "cpu8", net: "gbe",
		policy: "waitall", lr: 0.5, seed: 1, faultSeed: 1, crashFrac: 0.5,
	}
}

func TestRunClusterCleanAndNumeric(t *testing.T) {
	var out bytes.Buffer
	if err := runCluster(quickClusterFlags(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "steps=10 syncs=5") {
		t.Fatalf("summary missing bookkeeping: %s", out.String())
	}
	f := quickClusterFlags()
	f.numeric = true
	out.Reset()
	if err := runCluster(f, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loss: first=") {
		t.Fatalf("numeric summary missing losses: %s", out.String())
	}
}

func TestRunClusterFaultyWritesReport(t *testing.T) {
	f := quickClusterFlags()
	f.steps = 30
	f.faultRate = 0.05
	f.policy = "drop"
	f.report = filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	if err := runCluster(f, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "faults:") || !strings.Contains(out.String(), "membership:") {
		t.Fatalf("faulty summary missing degradation lines: %s", out.String())
	}
	data, err := os.ReadFile(f.report)
	if err != nil {
		t.Fatal(err)
	}
	var rep cluster.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Nodes != 3 || rep.Steps != 30 || rep.Policy != "drop" || len(rep.PerNode) != 3 {
		t.Fatalf("report content off: %+v", rep)
	}
}

func TestRunClusterReportToStdout(t *testing.T) {
	f := quickClusterFlags()
	f.report = "-"
	var out bytes.Buffer
	if err := runCluster(f, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"per_node"`) {
		t.Fatalf("stdout report missing JSON: %s", out.String())
	}
}

func TestClusterFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*clusterFlags)
		want string
	}{
		{"fault rate", func(f *clusterFlags) { f.faultRate = 1.5 }, "bad -node-fault-* flags"},
		{"crash frac", func(f *clusterFlags) { f.faultRate = 0.1; f.crashFrac = 2 }, "permanent fraction"},
		{"permanent frac", func(f *clusterFlags) { f.faultRate = 0.1; f.permanentFrac = -1 }, "permanent fraction"},
		{"stall factor", func(f *clusterFlags) { f.faultRate = 0.1; f.stallFactor = 0.5 }, "stall factor"},
		{"policy", func(f *clusterFlags) { f.policy = "bogus" }, "policy"},
		{"net", func(f *clusterFlags) { f.net = "infiniband" }, "-net"},
		{"steps", func(f *clusterFlags) { f.steps = 0 }, "-cluster-steps"},
		{"arch", func(f *clusterFlags) { f.nodeArch = "phi" }, "-node-arch"},
		{"nodes", func(f *clusterFlags) { f.nodes = -2 }, "node"},
		{"batch", func(f *clusterFlags) { f.globalBatch = 7 }, "divide"},
		{"timeout", func(f *clusterFlags) { f.dropTimeout = -1 }, "timeout"},
	}
	for _, c := range cases {
		f := quickClusterFlags()
		c.mut(&f)
		var out bytes.Buffer
		err := runCluster(f, &out)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

// TestRunClusterFeed smoke-tests the -feed mode in both timing-only and
// numeric runs: the summary gains the feed protocol line and the JSON
// report carries the counters.
func TestRunClusterFeed(t *testing.T) {
	f := quickClusterFlags()
	f.feed = true
	var out bytes.Buffer
	if err := runCluster(f, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "feed: 3 consumers over 3 shards") {
		t.Fatalf("summary missing feed line: %s", out.String())
	}

	f.numeric = true
	f.faultRate = 0.1
	f.report = filepath.Join(t.TempDir(), "rep.json")
	out.Reset()
	if err := runCluster(f, &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f.report)
	if err != nil {
		t.Fatal(err)
	}
	var rep cluster.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Feed == nil || rep.Feed.Leases == 0 || rep.Feed.Commits != rep.Feed.Leases {
		t.Fatalf("report feed stats: %+v", rep.Feed)
	}
}

// TestRunClusterFeedBatchValidation rejects a batch that does not shard.
func TestRunClusterFeedBatchValidation(t *testing.T) {
	f := quickClusterFlags()
	f.feed = true
	f.globalBatch = 10 // not divisible by 3 nodes
	var out bytes.Buffer
	if err := runCluster(f, &out); err == nil || !strings.Contains(err.Error(), "split") {
		t.Fatalf("want split error, got %v", err)
	}
}
