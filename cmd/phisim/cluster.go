package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"phideep/internal/autoencoder"
	"phideep/internal/cluster"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/feed"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// clusterFlags is the -nodes mode's command line: a degraded-cluster
// training run over the modeled interconnect, with deterministic fault
// injection and a JSON degradation report.
type clusterFlags struct {
	nodes       int
	steps       int
	feed        bool
	globalBatch int
	syncEvery   int
	visible     int
	hidden      int
	nodeArch    string
	net         string
	numeric     bool
	policy      string
	lr          float64
	seed        uint64

	faultRate     float64
	crashFrac     float64
	permanentFrac float64
	rejoinAfter   int
	stallFactor   float64
	stallSteps    int
	faultSeed     uint64

	dropTimeout float64
	hbTimeout   float64
	report      string
}

// registerClusterFlags declares the -nodes mode flags on the default set.
func registerClusterFlags(f *clusterFlags) {
	flag.IntVar(&f.nodes, "nodes", 0, "simulate an N-node commodity cluster instead of describing platforms")
	flag.IntVar(&f.steps, "cluster-steps", 100, "global training steps to run")
	flag.BoolVar(&f.feed, "feed", false, "stream every node from one shared dataset feed (lease/commit protocol) instead of per-node index math")
	flag.IntVar(&f.globalBatch, "global-batch", 0, "combined minibatch split across the nodes (default 100 per node)")
	flag.IntVar(&f.syncEvery, "sync-every", 1, "local steps between parameter-averaging rounds")
	flag.IntVar(&f.visible, "visible", 256, "autoencoder input units")
	flag.IntVar(&f.hidden, "hidden", 64, "autoencoder hidden units")
	flag.StringVar(&f.nodeArch, "node-arch", "cpu8", "per-node hardware: cpu1 | cpu4 | cpu8")
	flag.StringVar(&f.net, "net", "gbe", "interconnect: gbe | 10gbe")
	flag.BoolVar(&f.numeric, "numeric", false, "really compute on every replica (vs. timing-only)")
	flag.StringVar(&f.policy, "policy", "waitall", "straggler policy: waitall | drop | backup")
	flag.Float64Var(&f.lr, "lr", 0.5, "learning rate")
	flag.Uint64Var(&f.seed, "seed", 1, "model/data RNG seed")

	flag.Float64Var(&f.faultRate, "node-fault-rate", 0, "per-node per-step fault probability [0,1) — 0 disables injection")
	flag.Float64Var(&f.crashFrac, "node-fault-crash", 0.5, "fraction of faults that are crashes (rest are stalls) [0,1]")
	flag.Float64Var(&f.permanentFrac, "node-fault-permanent", 0, "fraction of crashes that are permanent node losses [0,1]")
	flag.IntVar(&f.rejoinAfter, "node-rejoin-after", 0, "steps a crashed node stays down before rejoining (0 = default 8)")
	flag.Float64Var(&f.stallFactor, "straggler-factor", 0, "step-time multiplier for straggler stalls (0 = default 4)")
	flag.IntVar(&f.stallSteps, "straggler-steps", 0, "consecutive steps a stall lasts (0 = default 1)")
	flag.Uint64Var(&f.faultSeed, "fault-seed", 1, "seed of the per-node fault streams")

	flag.Float64Var(&f.dropTimeout, "drop-timeout", 0, "simulated seconds past the fastest node before drop/backup act (0 = 2x mean step)")
	flag.Float64Var(&f.hbTimeout, "heartbeat-timeout", 0, "failure-detector patience in simulated seconds (0 = 3x mean step)")
	flag.StringVar(&f.report, "report", "", "write the JSON degradation report to this file (\"-\" = stdout)")
}

// pickNodeArch maps the -node-arch flag to a host platform (cluster nodes
// are commodity CPU boxes; the coprocessor is the thing they are compared
// against, not a member).
func pickNodeArch(name string) (*sim.Arch, error) {
	switch name {
	case "cpu1":
		return sim.XeonE5620Core(), nil
	case "cpu4":
		return sim.XeonE5620Full(), nil
	case "cpu8":
		return sim.XeonE5620Dual(), nil
	}
	return nil, fmt.Errorf("unknown -node-arch %q (want cpu1 | cpu4 | cpu8)", name)
}

// clusterConfig validates the flags at startup — sharing the fault-range
// validator with phitrain's -fault-* flags — and assembles the run config.
func clusterConfig(f clusterFlags) (cluster.Config, error) {
	var cfg cluster.Config
	if err := (device.FaultConfig{Rate: f.faultRate, PermanentFrac: f.crashFrac}).Validate(); err != nil {
		return cfg, fmt.Errorf("bad -node-fault-* flags: %w", err)
	}
	policy, err := cluster.ParsePolicy(f.policy)
	if err != nil {
		return cfg, err
	}
	var net cluster.Interconnect
	switch f.net {
	case "gbe":
		net = cluster.GigabitEthernet()
	case "10gbe":
		net = cluster.TenGigabitEthernet()
	default:
		return cfg, fmt.Errorf("unknown -net %q (want gbe | 10gbe)", f.net)
	}
	if f.steps <= 0 {
		return cfg, fmt.Errorf("-cluster-steps must be positive, got %d", f.steps)
	}
	batch := f.globalBatch
	if batch == 0 {
		batch = 100 * f.nodes
	}
	cfg = cluster.Config{
		Model:            autoencoder.Config{Visible: f.visible, Hidden: f.hidden, Lambda: 1e-4},
		Nodes:            f.nodes,
		GlobalBatch:      batch,
		SyncEvery:        f.syncEvery,
		Net:              net,
		Policy:           policy,
		DropTimeout:      f.dropTimeout,
		HeartbeatTimeout: f.hbTimeout,
	}
	if f.faultRate > 0 {
		cfg.Faults = &cluster.FaultPlan{
			Rate:          f.faultRate,
			CrashFrac:     f.crashFrac,
			PermanentFrac: f.permanentFrac,
			RejoinAfter:   f.rejoinAfter,
			StallFactor:   f.stallFactor,
			StallSteps:    f.stallSteps,
			Seed:          f.faultSeed,
		}
	}
	return cfg, nil
}

// runCluster executes the -nodes mode: build the cluster, train for the
// requested steps under the fault plan, print the degradation summary, and
// optionally write the JSON report.
func runCluster(f clusterFlags, out io.Writer) error {
	cfg, err := clusterConfig(f)
	if err != nil {
		return err
	}
	arch, err := pickNodeArch(f.nodeArch)
	if err != nil {
		return err
	}
	var x *tensor.Matrix
	if f.numeric {
		x = lowRankBatch(rng.New(f.seed+100), cfg.GlobalBatch, f.visible)
	}
	if f.feed {
		// One shared dataset server; every node subscribes as a distinct
		// consumer. With SourceLen = GlobalBatch the lease walk covers the
		// exact rows the index math used to slice, so -feed changes the
		// data plane, not the numerics.
		if cfg.Nodes < 1 || cfg.GlobalBatch%cfg.Nodes != 0 {
			return fmt.Errorf("-feed: global batch %d does not split across %d nodes", cfg.GlobalBatch, cfg.Nodes)
		}
		perNode := cfg.GlobalBatch / cfg.Nodes
		p, err := data.PlanChunks(data.PlanRequest{SourceLen: cfg.GlobalBatch, Batch: perNode, ChunkExamples: perNode})
		if err != nil {
			return fmt.Errorf("-feed: %w", err)
		}
		var src data.Source = data.Null{D: f.visible, N: cfg.GlobalBatch}
		if f.numeric {
			src = data.InMemory{X: x}
		}
		fd, err := feed.New(src, feed.Config{Plan: p})
		if err != nil {
			return fmt.Errorf("-feed: %w", err)
		}
		cfg.Feed = fd
	}
	cl, err := cluster.New(arch, core.OpenMPMKL, cfg, f.numeric, f.seed)
	if err != nil {
		return err
	}
	defer cl.Free()
	first, last := 0.0, 0.0
	for i := 0; i < f.steps; i++ {
		l := cl.Step(x, f.lr)
		if i == 0 {
			first = l
		}
		last = l
	}

	rep := cl.Report()
	fmt.Fprintf(out, "cluster: %d x %s over %s, policy %s, sync every %d\n",
		f.nodes, arch.Name, f.net, rep.Policy, cfg.SyncEvery)
	fmt.Fprintf(out, "  steps=%d syncs=%d simulated time: %.3f s\n", rep.Steps, rep.Syncs, rep.SimSeconds)
	if f.numeric {
		fmt.Fprintf(out, "  loss: first=%.5f final=%.5f\n", first, last)
	}
	if cfg.Faults != nil {
		fmt.Fprintf(out, "  faults: %d crashes (%d permanent), %d stalls, %d drops, %d backup runs\n",
			rep.Crashes, rep.PermanentLosses, rep.Stalls, rep.Drops, rep.BackupRuns)
		fmt.Fprintf(out, "  recovery: %d detections, %d rejoins, %d resyncs, %d checkpoints\n",
			rep.Detections, rep.Rejoins, rep.Resyncs, rep.Checkpoints)
		fmt.Fprintf(out, "  membership: %d/%d nodes live at end\n", rep.LiveNodes, rep.Nodes)
	}
	if rep.Feed != nil {
		fmt.Fprintf(out, "  feed: %d consumers over %d shards; %d leases, %d commits, %d stalls, %d seeks\n",
			rep.Feed.Consumers, rep.Feed.Shards, rep.Feed.Leases, rep.Feed.Commits, rep.Feed.Stalls, rep.Feed.Seeks)
	}
	if f.report != "" {
		if err := writeClusterReport(f.report, rep, out); err != nil {
			return err
		}
	}
	return nil
}

// writeClusterReport marshals the degradation ledger as indented JSON.
func writeClusterReport(path string, rep cluster.Report, out io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = out.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// lowRankBatch synthesizes a rank-2 sigmoid dataset — structured enough
// that the replicas' reconstruction loss visibly falls.
func lowRankBatch(r *rng.RNG, n, dim int) *tensor.Matrix {
	u := tensor.NewMatrix(n, 2).Randomize(r, -2, 2)
	v := tensor.NewMatrix(2, dim).Randomize(r, -2, 2)
	x := tensor.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			s := u.At(i, 0)*v.At(0, j) + u.At(i, 1)*v.At(1, j)
			x.Set(i, j, 1/(1+math.Exp(-s)))
		}
	}
	return x
}
