package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"phideep"
	"phideep/internal/metrics"
)

// jsonFloat marshals NaN and ±Inf as null so run reports from model-only
// devices (whose loss fields are NaN by contract) stay valid JSON.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func toJSONFloats(vs []float64) []jsonFloat {
	if vs == nil {
		return nil
	}
	out := make([]jsonFloat, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// runReport is the -metrics JSON document: the training outcome (simulated
// and wall clocks side by side) plus the full metrics registry snapshot,
// which carries the GEMM call/flop totals and the asm-vs-fallback path
// counts. Single-model runs fill the top-level result fields; stacked runs
// fill Layers.
type runReport struct {
	Model   string `json:"model"`
	Data    string `json:"data"`
	Arch    string `json:"arch"`
	Level   string `json:"level"`
	Numeric bool   `json:"numeric"`

	Steps            int           `json:"steps"`
	Examples         int           `json:"examples"`
	Chunks           int           `json:"chunks,omitempty"`
	SimSeconds       float64       `json:"sim_seconds"`
	WallSeconds      float64       `json:"wall_seconds"`
	ExamplesPerSec   float64       `json:"examples_per_sec"`
	EpochWallSeconds []float64     `json:"epoch_wall_seconds,omitempty"`
	EpochLoss        []jsonFloat   `json:"epoch_loss,omitempty"`
	FirstLoss        jsonFloat     `json:"first_loss"`
	FinalLoss        jsonFloat     `json:"final_loss"`
	Layers           []layerReport `json:"layers,omitempty"`

	Metrics metrics.Snapshot `json:"metrics"`
}

// layerReport summarizes one layer of a stacked pre-training run.
type layerReport struct {
	Visible          int         `json:"visible"`
	Hidden           int         `json:"hidden"`
	Steps            int         `json:"steps"`
	WallSeconds      float64     `json:"wall_seconds"`
	ExamplesPerSec   float64     `json:"examples_per_sec"`
	EpochWallSeconds []float64   `json:"epoch_wall_seconds,omitempty"`
	FirstLoss        jsonFloat   `json:"first_loss"`
	FinalLoss        jsonFloat   `json:"final_loss"`
	EpochLoss        []jsonFloat `json:"epoch_loss,omitempty"`
}

// fillResult copies a single-model training result into the report.
func (r *runReport) fillResult(res *phideep.TrainResult) {
	r.Steps = res.Steps
	r.Examples = res.Examples
	r.Chunks = res.Chunks
	r.SimSeconds = res.SimSeconds
	r.WallSeconds = res.WallSeconds
	r.ExamplesPerSec = res.ExamplesPerSec
	r.EpochWallSeconds = res.EpochWallSeconds
	r.EpochLoss = toJSONFloats(res.EpochLoss)
	r.FirstLoss = jsonFloat(res.FirstLoss)
	r.FinalLoss = jsonFloat(res.FinalLoss)
}

// fillStack copies a stacked pre-training result into the report,
// aggregating the per-layer wall clocks into run totals.
func (r *runReport) fillStack(res *phideep.StackResult) {
	r.SimSeconds = res.SimSeconds
	for _, l := range res.Layers {
		lr := layerReport{
			Visible: l.Visible, Hidden: l.Hidden,
			FirstLoss: jsonFloat(l.Train.FirstLoss),
			FinalLoss: jsonFloat(l.Train.FinalLoss),
			EpochLoss: toJSONFloats(l.Train.EpochLoss),
		}
		lr.Steps = l.Train.Steps
		lr.WallSeconds = l.Train.WallSeconds
		lr.ExamplesPerSec = l.Train.ExamplesPerSec
		lr.EpochWallSeconds = l.Train.EpochWallSeconds
		r.Layers = append(r.Layers, lr)
		r.Steps += l.Train.Steps
		r.Examples += l.Train.Examples
		r.Chunks += l.Train.Chunks
		r.WallSeconds += l.Train.WallSeconds
	}
	if r.WallSeconds > 0 {
		r.ExamplesPerSec = float64(r.Examples) / r.WallSeconds
	}
}

// writeReport snapshots the metrics registry into the report and writes it
// as indented JSON to path.
func writeReport(path string, r *runReport) error {
	r.Metrics = metrics.Default().Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing run report: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("writing run report: %w", err)
	}
	return nil
}

// printSummary prints the end-of-run metrics table (the human-readable
// counterpart of the JSON report) to stdout.
func printSummary() {
	fmt.Println("\n== metrics (wall clock vs simulated; see DESIGN.md \"Observability\") ==")
	if err := metrics.Default().Snapshot().WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "phitrain: summary:", err)
	}
}
