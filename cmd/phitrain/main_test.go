package main

import (
	"os"
	"strings"
	"testing"
)

// runArgs invokes the tool's core with small workloads.
func runQuick(t *testing.T, model, dataKind string, sizes string, numeric bool) error {
	t.Helper()
	return run(model, dataKind, 8, 0, 8, sizes, 200, 20, 2, 0,
		0.5, 1e-4, 0.1, 0.05, "improved", "phi", 0, numeric, true, 1, "", options{})
}

// runQuick2 is runQuick with explicit options, for the flag-validation
// cases. A bad -fault-* combination must fail before any work is done.
func runQuick2(t *testing.T, opts options) error {
	t.Helper()
	return run("ae", "digits", 8, 0, 8, "", 200, 20, 1, 0,
		0.5, 1e-4, 0.1, 0.05, "improved", "phi", 0, true, true, 1, "", opts)
}

func TestValidFaultFlagsStillRun(t *testing.T) {
	// A legal fault configuration passes validation and the run completes
	// (the rate is tiny so retries almost surely absorb every fault).
	if err := runQuick2(t, options{faultRate: 0.001, faultSeed: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllModelKinds(t *testing.T) {
	for _, m := range []string{"ae", "rbm"} {
		if err := runQuick(t, m, "digits", "", true); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	for _, m := range []string{"stack", "dbn"} {
		if err := runQuick(t, m, "digits", "64,16,8", true); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestRunTimingOnly(t *testing.T) {
	if err := runQuick(t, "ae", "null", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunNaturalData(t *testing.T) {
	if err := runQuick(t, "ae", "natural", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"bad model", runQuick(t, "bogus", "digits", "", true), "unknown model"},
		{"bad data", runQuick(t, "ae", "bogus", "", true), "unknown data"},
		{"bad sizes", run("stack", "digits", 8, 0, 8, "a,b", 100, 10, 1, 0, 0.5, 0, 0, 0, "improved", "phi", 0, true, true, 1, "", options{}), "bad -sizes"},
		{"bad level", run("ae", "digits", 8, 0, 8, "", 100, 10, 1, 0, 0.5, 0, 0, 0, "warp", "phi", 0, true, true, 1, "", options{}), "unknown level"},
		{"bad arch", run("ae", "digits", 8, 0, 8, "", 100, 10, 1, 0, 0.5, 0, 0, 0, "improved", "gpu", 0, true, true, 1, "", options{}), "unknown arch"},
		{"fault rate high", runQuick2(t, options{faultRate: 1.0}), "bad -fault-* flags"},
		{"fault rate negative", runQuick2(t, options{faultRate: -0.5}), "fault rate"},
		{"fault permanent", runQuick2(t, options{faultRate: 0.1, faultPermanent: 1.5}), "permanent fraction"},
		{"fault retries", runQuick2(t, options{faultRate: 0.1, faultRetries: -3}), "retry"},
	}
	for _, c := range cases {
		if c.err == nil || !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, c.err, c.want)
		}
	}
}

func TestPickHelpers(t *testing.T) {
	for _, name := range []string{"phi", "cpu1", "cpu4", "cpu8", "matlab"} {
		if a, err := pickArch(name); err != nil || a == nil {
			t.Errorf("pickArch(%q): %v", name, err)
		}
	}
	for _, name := range []string{"baseline", "openmp", "mkl", "improved"} {
		if _, err := pickLevel(name); err != nil {
			t.Errorf("pickLevel(%q): %v", name, err)
		}
	}
	sizes, err := parseSizes("10, 20,30", 0, 0)
	if err != nil || len(sizes) != 3 || sizes[2] != 30 {
		t.Errorf("parseSizes: %v %v", sizes, err)
	}
	sizes, err = parseSizes("", 7, 3)
	if err != nil || len(sizes) != 2 || sizes[0] != 7 || sizes[1] != 3 {
		t.Errorf("parseSizes default: %v %v", sizes, err)
	}
	// Mismatched visible/side for image data must fail.
	if err := run("ae", "digits", 8, 100, 8, "", 200, 20, 1, 0, 0.5, 0, 0, 0, "improved", "phi", 0, true, true, 1, "", options{}); err == nil {
		t.Error("visible != side^2 must fail for digits")
	}
}

func TestRunWritesTrace(t *testing.T) {
	traceFile := t.TempDir() + "/trace.json"
	if err := run("ae", "digits", 8, 0, 8, "", 200, 20, 1, 0,
		0.5, 1e-4, 0.1, 0.05, "improved", "phi", 0, true, true, 1, traceFile, options{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gemm") || !strings.Contains(string(data), "copy-in") {
		t.Fatalf("trace missing expected events: %.120s", data)
	}
}

func TestRunVariantFlags(t *testing.T) {
	opts := options{momentum: 0.5, corruption: 0.1, tied: true, shuffle: true, adaptive: true}
	if err := run("ae", "digits", 8, 0, 8, "", 200, 20, 2, 0,
		0.5, 1e-4, 0.1, 0.05, "improved", "phi", 0, true, true, 1, "", opts); err != nil {
		t.Fatal(err)
	}
	gopts := options{gaussian: true, momentum: 0.3}
	if err := run("rbm", "natural", 8, 0, 8, "", 200, 20, 2, 0,
		0.01, 0, 0, 0, "improved", "phi", 0, true, true, 1, "", gopts); err != nil {
		t.Fatal(err)
	}
	if err := run("dbn", "digits", 8, 0, 8, "64,16", 200, 20, 2, 0,
		0.2, 0, 0, 0, "improved", "phi", 0, true, true, 1, "", gopts); err != nil {
		t.Fatal(err)
	}
}

// TestRunFeed smoke-tests -feed on the single-model kinds and pins the
// rejection for layer-wise pre-training.
func TestRunFeed(t *testing.T) {
	if err := runQuick2(t, options{feed: true}); err != nil {
		t.Fatal(err)
	}
	// Labeled path: convnet leases one-hot label chunks off the same feed.
	if err := run("convnet", "digits", 8, 0, 8, "", 200, 20, 1, 0,
		0.5, 1e-4, 0.1, 0.05, "improved", "phi", 0, true, true, 1, "",
		options{feed: true, filters1: 3, kernel1: 3, filters2: 4, kernel2: 3, pool: 2, classes: 10}); err != nil {
		t.Fatal(err)
	}
	err := run("stack", "digits", 8, 0, 8, "64,16", 200, 20, 1, 0,
		0.5, 1e-4, 0.1, 0.05, "improved", "phi", 0, true, true, 1, "", options{feed: true})
	if err == nil || !strings.Contains(err.Error(), "-feed supports") {
		t.Fatalf("stack with -feed: %v", err)
	}
}
