// Command phitrain trains a Sparse Autoencoder, an RBM, a small im2col
// convnet, or a greedy stack of AEs/RBMs on a simulated platform, streaming
// a synthetic dataset through the paper's chunked loading pipeline.
//
// Examples:
//
//	phitrain -model ae -data digits -side 16 -hidden 64 -epochs 5
//	phitrain -model rbm -data digits -side 16 -hidden 100 -epochs 3
//	phitrain -model convnet -data digits -side 16 -classes 10 -epochs 5 \
//	         -export convnet.phck                          # then phiserve
//	phitrain -model stack -sizes 256,64,16 -data natural -side 16
//	phitrain -model ae -numeric=false -visible 1024 -hidden 4096 \
//	         -examples 1000000 -batch 1000 -epochs 1     # timing only
//	phitrain -model ae -epochs 5 -metrics report.json -stats
//	phitrain -model ae -epochs 50 -pprof localhost:6060  # live profiling
//
// With -numeric (the default) the run really computes on the host while the
// simulated Xeon Phi clock is accounted; with -numeric=false only the clock
// runs, which permits paper-scale geometries on any machine.
//
// Observability: -metrics writes a JSON run report (per-epoch wall time,
// examples/sec, GEMM counts and FLOPs, asm-vs-fallback micro-kernel path
// counts, simulated-vs-real engine seconds); -stats prints the same
// registry as an aligned end-of-run table; -pprof serves net/http/pprof
// for live CPU/heap profiling; -trace writes the *simulated* device
// timeline for chrome://tracing. DESIGN.md's "Observability" section
// explains how the wall-clock metrics and the simulated traces relate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"phideep"
	"phideep/internal/metrics"
)

func main() {
	var (
		modelKind = flag.String("model", "ae", "ae | rbm | convnet | stack (stacked autoencoders) | dbn (stacked RBMs)")
		dataKind  = flag.String("data", "digits", "digits | natural | null")
		side      = flag.Int("side", 16, "image/patch side length (dim = side^2) for synthetic data")
		visible   = flag.Int("visible", 0, "input units (default side^2)")
		hidden    = flag.Int("hidden", 64, "hidden units (ae/rbm)")
		sizes     = flag.String("sizes", "", "comma-separated layer sizes for stack/dbn, input first")
		examples  = flag.Int("examples", 10000, "dataset size")
		batch     = flag.Int("batch", 100, "minibatch size")
		epochs    = flag.Int("epochs", 3, "training epochs (exclusive with -iters)")
		iters     = flag.Int("iters", 0, "training iterations (exclusive with -epochs)")
		lr        = flag.Float64("lr", 0.5, "learning rate")
		lambda    = flag.Float64("lambda", 1e-4, "L2 weight penalty")
		beta      = flag.Float64("beta", 0.1, "sparsity penalty weight (ae)")
		rho       = flag.Float64("rho", 0.05, "sparsity target (ae)")
		level     = flag.String("level", "improved", "baseline | openmp | mkl | improved")
		arch      = flag.String("arch", "phi", "phi | cpu1 | cpu4 | cpu8 | matlab")
		cores     = flag.Int("cores", 0, "physical core limit (0 = all)")
		numeric   = flag.Bool("numeric", true, "really compute (vs. timing-only)")
		prefetch  = flag.Bool("prefetch", true, "loading-thread prefetch (Fig. 5)")
		useFeed   = flag.Bool("feed", false, "stream chunks through the dataset-server feed (lease/commit protocol) instead of direct index math (ae/rbm/convnet)")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		trace     = flag.String("trace", "", "write a Chrome trace-viewer JSON of the simulated device activity to this file")
		momentum  = flag.Float64("momentum", 0, "classical momentum coefficient [0,1)")
		corrupt   = flag.Float64("corruption", 0, "denoising input-corruption probability (ae/stack)")
		tied      = flag.Bool("tied", false, "tie decoder weights to the encoder (ae/stack)")
		gaussian  = flag.Bool("gaussian", false, "Gaussian visible units (rbm/dbn) for real-valued data")
		shuffle   = flag.Bool("shuffle", false, "reshuffle the dataset every epoch")
		adaptive  = flag.Bool("adaptive", false, "bold-driver adaptive learning rate (numeric runs)")
		metricsTo = flag.String("metrics", "", "write a JSON run report (wall-clock timings, throughput, kernel counters) to this file")
		stats     = flag.Bool("stats", false, "print the metrics registry as a table at the end of the run")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		checkpoint = flag.String("checkpoint", "", "periodically write crash-consistent training checkpoints to this file (for stack/dbn: the base of per-layer files)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "checkpoint cadence in chunks")
		resume     = flag.String("resume", "", "resume training from this checkpoint file (starts fresh if the file does not exist)")
		export     = flag.String("export", "", "write the final trained model as a PHCK checkpoint to this file (ae/rbm; works without -checkpoint; phiserve loads it)")

		filters1 = flag.Int("filters1", 6, "convnet: first conv layer filter count")
		kernel1  = flag.Int("kernel1", 5, "convnet: first conv kernel side (odd)")
		filters2 = flag.Int("filters2", 12, "convnet: second conv layer filter count")
		kernel2  = flag.Int("kernel2", 3, "convnet: second conv kernel side (odd)")
		poolSz   = flag.Int("pool", 2, "convnet: max-pooling window/stride (applied twice)")
		classes  = flag.Int("classes", 10, "convnet: output classes")

		faultRate    = flag.Float64("fault-rate", 0, "per-attempt PCIe transfer fault probability [0,1) — 0 disables the fault model")
		faultSeed    = flag.Uint64("fault-seed", 1, "seed of the deterministic fault stream")
		faultPerm    = flag.Float64("fault-permanent", 0, "fraction of faults that are permanent (non-retryable) [0,1]")
		faultRetries = flag.Int("fault-retries", 0, "retry budget per transfer (0 = default 4)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "phitrain: pprof:", err)
			}
		}()
	}
	opts := options{momentum: *momentum, corruption: *corrupt, tied: *tied,
		gaussian: *gaussian, shuffle: *shuffle, adaptive: *adaptive, feed: *useFeed,
		filters1: *filters1, kernel1: *kernel1, filters2: *filters2,
		kernel2: *kernel2, pool: *poolSz, classes: *classes,
		metricsPath: *metricsTo, stats: *stats,
		checkpoint: *checkpoint, checkpointEvery: *ckptEvery, resume: *resume, export: *export,
		faultRate: *faultRate, faultSeed: *faultSeed,
		faultPermanent: *faultPerm, faultRetries: *faultRetries}
	if err := run(*modelKind, *dataKind, *side, *visible, *hidden, *sizes, *examples, *batch,
		*epochs, *iters, *lr, *lambda, *beta, *rho, *level, *arch, *cores, *numeric, *prefetch, *seed, *trace, opts); err != nil {
		fmt.Fprintln(os.Stderr, "phitrain:", err)
		os.Exit(1)
	}
}

func pickArch(name string) (*phideep.Arch, error) {
	switch name {
	case "phi":
		return phideep.XeonPhi5110P(), nil
	case "cpu1":
		return phideep.XeonE5620Core(), nil
	case "cpu4":
		return phideep.XeonE5620Full(), nil
	case "cpu8":
		return phideep.XeonE5620Dual(), nil
	case "matlab":
		return phideep.MatlabR2012a(), nil
	default:
		return nil, fmt.Errorf("unknown arch %q", name)
	}
}

func pickLevel(name string) (phideep.OptLevel, error) {
	switch name {
	case "baseline":
		return phideep.Baseline, nil
	case "openmp":
		return phideep.OpenMP, nil
	case "mkl":
		return phideep.OpenMPMKL, nil
	case "improved":
		return phideep.Improved, nil
	default:
		return 0, fmt.Errorf("unknown level %q", name)
	}
}

func pickData(kind string, side, dim, n int, seed uint64, numeric bool) (phideep.Source, error) {
	if !numeric {
		return nullSource{dim, n}, nil
	}
	switch kind {
	case "digits":
		if side*side != dim {
			return nil, fmt.Errorf("digits: visible %d is not side^2 (%d)", dim, side*side)
		}
		return phideep.NewDigits(side, n, seed, 0.05), nil
	case "natural":
		if side*side != dim {
			return nil, fmt.Errorf("natural: visible %d is not side^2 (%d)", dim, side*side)
		}
		return phideep.NewNaturalPatches(side, n, seed), nil
	case "null":
		return nullSource{dim, n}, nil
	default:
		return nil, fmt.Errorf("unknown data kind %q", kind)
	}
}

// nullSource mirrors the internal timing-only source through the public
// Source interface.
type nullSource struct{ d, n int }

func (s nullSource) Dim() int                                { return s.d }
func (s nullSource) Len() int                                { return s.n }
func (s nullSource) Chunk(start, n int, dst *phideep.Matrix) {}

// Label satisfies LabeledSource so timing-only convnet runs work; the
// trainer never reads labels on a timing-only device.
func (s nullSource) Label(idx int) int { return 0 }

// options bundles the model-variant, fault-tolerance and observability
// switches.
type options struct {
	momentum, corruption float64
	tied                 bool
	gaussian             bool
	shuffle              bool
	adaptive             bool
	feed                 bool // -feed: lease chunks from a dataset-server feed

	// convnet geometry (-model convnet)
	filters1, kernel1 int
	filters2, kernel2 int
	pool, classes     int

	metricsPath string // -metrics: JSON run-report destination
	stats       bool   // -stats: print the registry table at exit

	checkpoint      string // -checkpoint: crash-consistent snapshot file (stack: base path)
	checkpointEvery int    // -checkpoint-every: cadence in chunks
	resume          string // -resume: checkpoint to restart from (lenient if missing)
	export          string // -export: final-model PHCK file, written after training succeeds

	faultRate      float64 // -fault-rate: per-attempt transfer fault probability
	faultSeed      uint64  // -fault-seed: fault-stream seed
	faultPermanent float64 // -fault-permanent: permanent fraction of faults
	faultRetries   int     // -fault-retries: retry budget (0 = default)
}

func run(modelKind, dataKind string, side, visible, hidden int, sizesFlag string,
	examples, batch, epochs, iters int, lr, lambda, beta, rho float64,
	levelName, archName string, cores int, numeric, prefetch bool, seed uint64, traceFile string, opts options) error {

	if visible == 0 {
		visible = side * side
	}
	if err := validateFaultOpts(opts); err != nil {
		return err
	}
	if opts.metricsPath != "" || opts.stats {
		metrics.SetEnabled(true)
	}
	archDesc, err := pickArch(archName)
	if err != nil {
		return err
	}
	lvl, err := pickLevel(levelName)
	if err != nil {
		return err
	}
	var machOpts []phideep.MachineOption
	if numeric {
		machOpts = append(machOpts, phideep.WithNumeric())
	}
	mach := phideep.NewMachine(archDesc, machOpts...)
	defer mach.Close()
	if traceFile != "" {
		mach.Dev.EnableTrace(1 << 20)
		defer func() {
			f, err := os.Create(traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phitrain: trace:", err)
				return
			}
			defer f.Close()
			if err := mach.Dev.WriteChromeTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, "phitrain: trace:", err)
			}
		}()
	}
	ctx := phideep.NewContext(mach.Dev, lvl, cores, seed)

	tc := phideep.TrainConfig{Epochs: epochs, Iterations: iters, LR: lr, Prefetch: prefetch}
	if iters > 0 {
		tc.Epochs = 0
	}
	tc.CheckpointPath = opts.checkpoint
	tc.CheckpointEvery = opts.checkpointEvery
	if opts.resume != "" {
		if _, err := os.Stat(opts.resume); err == nil {
			tc.ResumePath = opts.resume
		} else {
			// Lenient resume: a missing checkpoint means "first run" —
			// start fresh rather than failing, so the same command line
			// works before and after an interruption.
			fmt.Fprintf(os.Stderr, "phitrain: no checkpoint at %s, starting fresh\n", opts.resume)
		}
	}
	if opts.adaptive {
		startLR := lr
		if startLR <= 0 {
			startLR = 0.1
		}
		tc.Adaptive = phideep.NewBoldDriver(startLR)
	}

	src, err := pickData(dataKind, side, visible, examples, seed, numeric)
	if err != nil {
		return err
	}
	if opts.shuffle {
		src = phideep.NewShuffled(src, seed+100)
	}

	var fd *phideep.Feed
	if opts.feed {
		if modelKind == "stack" || modelKind == "dbn" {
			// Greedy layer-wise pre-training streams each layer from the
			// previous layer's encodings, not from one fixed source.
			return fmt.Errorf("-feed supports single-model runs (ae/rbm/convnet), not %q", modelKind)
		}
		if fd, err = buildFeed(src, batch); err != nil {
			return err
		}
		consumer, err := fd.Subscribe("phitrain")
		if err != nil {
			return err
		}
		tc.Feed = consumer
	}

	switch modelKind {
	case "ae", "rbm":
		var model phideep.Trainable
		if modelKind == "ae" {
			m, err := phideep.NewAutoencoder(ctx, phideep.AutoencoderConfig{
				Visible: visible, Hidden: hidden, Lambda: lambda, Beta: beta, Rho: rho,
				Momentum: opts.momentum, Corruption: opts.corruption, Tied: opts.tied,
			}, batch, seed)
			if err != nil {
				return err
			}
			model = m
		} else {
			m, err := phideep.NewRBM(ctx, phideep.RBMConfig{
				Visible: visible, Hidden: hidden, SampleHidden: true,
				GaussianVisible: opts.gaussian, Momentum: opts.momentum,
			}, batch, seed)
			if err != nil {
				return err
			}
			model = m
		}
		// Faults go live only after the initial parameter upload, so a
		// harsh -fault-rate exercises the training loop's retry and
		// degradation paths rather than aborting model construction.
		if err := enableFaults(mach.Dev, opts); err != nil {
			return err
		}
		trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: tc}
		res, err := trainer.Run(model, src)
		if err != nil {
			return err
		}
		fmt.Printf("%s %dx%d on %s [%s]\n", modelKind, visible, hidden, archDesc.Name, lvl)
		printResult(res, numeric)
		printFeedStats(fd)
		if opts.export != "" {
			if err := exportModel(opts.export, model, res); err != nil {
				return err
			}
			fmt.Printf("  exported final model: %s\n", opts.export)
		}
		if opts.metricsPath != "" {
			rep := &runReport{Model: modelKind, Data: dataKind, Arch: archName, Level: levelName, Numeric: numeric}
			rep.fillResult(res)
			if err := writeReport(opts.metricsPath, rep); err != nil {
				return err
			}
		}
		if opts.stats {
			printSummary()
		}
		return nil

	case "convnet":
		if opts.shuffle {
			// Shuffled wraps only the unlabeled Source surface, so labels
			// would desynchronize from their images.
			return fmt.Errorf("-shuffle is not supported with -model convnet")
		}
		lsrc, ok := src.(phideep.LabeledSource)
		if !ok {
			return fmt.Errorf("convnet needs labeled data: -data digits (or null for timing-only), not %q", dataKind)
		}
		ccfg := phideep.ConvnetConfig{
			Side: side, Filters1: opts.filters1, Kernel1: opts.kernel1,
			Filters2: opts.filters2, Kernel2: opts.kernel2,
			Pool: opts.pool, Classes: opts.classes,
			Lambda: lambda, Momentum: opts.momentum, Batch: batch, Seed: seed,
		}
		model, err := phideep.BuildConvnet(ctx, ccfg)
		if err != nil {
			return err
		}
		if err := enableFaults(mach.Dev, opts); err != nil {
			return err
		}
		trainer := &phideep.Trainer{Dev: mach.Dev, Cfg: tc}
		res, err := trainer.RunLabeled(model, lsrc)
		if err != nil {
			return err
		}
		fmt.Printf("convnet %dx%d c%d/k%d c%d/k%d p%d -> %d classes on %s [%s]\n",
			side, side, opts.filters1, opts.kernel1, opts.filters2, opts.kernel2,
			opts.pool, opts.classes, archDesc.Name, lvl)
		printResult(res, numeric)
		printFeedStats(fd)
		if opts.export != "" {
			if err := exportModel(opts.export, model, res); err != nil {
				return err
			}
			fmt.Printf("  exported final model: %s\n", opts.export)
		}
		if opts.metricsPath != "" {
			rep := &runReport{Model: modelKind, Data: dataKind, Arch: archName, Level: levelName, Numeric: numeric}
			rep.fillResult(res)
			if err := writeReport(opts.metricsPath, rep); err != nil {
				return err
			}
		}
		if opts.stats {
			printSummary()
		}
		return nil

	case "stack", "dbn":
		if opts.export != "" {
			return fmt.Errorf("-export supports single-layer models (ae/rbm); use -checkpoint for per-layer %s snapshots", modelKind)
		}
		layerSizes, err := parseSizes(sizesFlag, visible, hidden)
		if err != nil {
			return err
		}
		scfg := phideep.StackConfig{
			Sizes: layerSizes, Lambda: lambda, Beta: beta, Rho: rho, Batch: batch, LR: lr,
			Momentum: opts.momentum, Corruption: opts.corruption, Tied: opts.tied,
		}
		if err := enableFaults(mach.Dev, opts); err != nil {
			return err
		}
		var res *phideep.StackResult
		if modelKind == "stack" {
			res, err = phideep.PretrainAutoencoders(ctx, tc, scfg, src, seed)
		} else {
			scfg.RBM.SampleHidden = true
			scfg.RBM.GaussianVisible = opts.gaussian
			res, err = phideep.PretrainDBN(ctx, tc, scfg, src, seed)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s %v on %s [%s]\n", modelKind, layerSizes, archDesc.Name, lvl)
		for i, l := range res.Layers {
			if l.Restored {
				fmt.Printf("  layer %d (%d -> %d): restored from checkpoint\n", i, l.Visible, l.Hidden)
				continue
			}
			fmt.Printf("  layer %d (%d -> %d): steps=%d firstLoss=%.5f finalLoss=%.5f wall=%.3fs\n",
				i, l.Visible, l.Hidden, l.Train.Steps, l.Train.FirstLoss, l.Train.FinalLoss, l.Train.WallSeconds)
		}
		fmt.Printf("  total simulated time: %.3f s\n", res.SimSeconds)
		if opts.metricsPath != "" {
			rep := &runReport{Model: modelKind, Data: dataKind, Arch: archName, Level: levelName, Numeric: numeric}
			rep.fillStack(res)
			if err := writeReport(opts.metricsPath, rep); err != nil {
				return err
			}
		}
		if opts.stats {
			printSummary()
		}
		return nil

	default:
		return fmt.Errorf("unknown model %q", modelKind)
	}
}

// buildFeed wraps src in a single-consumer dataset feed with the trainer's
// default chunk geometry (32 batches per chunk, clamped to the source).
// The trainer adopts the feed's plan, so the -feed run walks exactly the
// chunks the direct path would have.
func buildFeed(src phideep.Source, batch int) (*phideep.Feed, error) {
	plan, err := phideep.PlanChunks(phideep.PlanRequest{
		SourceLen:      src.Len(),
		Batch:          batch,
		ExampleDoubles: src.Dim(),
		FreeBytes:      phideep.PlanNoMemLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("-feed: %w", err)
	}
	fcfg := phideep.FeedConfig{Plan: plan}
	if l, ok := src.(phideep.Labeled); ok {
		return phideep.NewLabeledFeed(l, fcfg)
	}
	return phideep.NewFeed(src, fcfg)
}

// printFeedStats reports the feed protocol counters of a -feed run.
func printFeedStats(fd *phideep.Feed) {
	if fd == nil {
		return
	}
	s := fd.Stats()
	fmt.Printf("  feed: %d leases, %d commits (%d skipped), %d stalls, %d seeks, peak window %d\n",
		s.Leases, s.Commits, s.Skips, s.Stalls, s.Seeks, s.MaxOutstanding)
}

// exportModel writes the trained model as a final PHCK checkpoint — the
// same container the periodic -checkpoint snapshots use, so phiserve (and
// -resume) can load it — without requiring checkpointing during the run.
// It accepts any model family (Trainable or LabeledTrainable) that can
// serialize itself.
func exportModel(path string, model any, res *phideep.TrainResult) error {
	ck, ok := model.(phideep.Checkpointer)
	if !ok {
		return fmt.Errorf("-export: %T cannot serialize its state", model)
	}
	var blob bytes.Buffer
	if err := ck.SaveState(&blob); err != nil {
		return fmt.Errorf("-export: %w", err)
	}
	c := &phideep.Checkpoint{
		Step:      res.Steps,
		Chunk:     res.Chunks,
		Examples:  res.Examples,
		Skipped:   res.SkippedChunks,
		FirstLoss: res.FirstLoss,
		Model:     blob.Bytes(),
	}
	if err := phideep.WriteCheckpoint(path, c); err != nil {
		return fmt.Errorf("-export: %w", err)
	}
	return nil
}

// validateFaultOpts rejects malformed -fault-* flags at startup, before any
// machine is built or data generated, with the same range validator the
// device applies internally (and that phisim's -node-fault-* flags share) —
// a bad flag fails in milliseconds with a clear message instead of deep
// inside a long run.
func validateFaultOpts(opts options) error {
	cfg := phideep.FaultConfig{
		Rate:          opts.faultRate,
		PermanentFrac: opts.faultPermanent,
		MaxRetries:    opts.faultRetries,
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("bad -fault-* flags: %w", err)
	}
	return nil
}

// enableFaults arms the device's PCIe fault model when -fault-rate is
// positive; zero values fall through to the model's defaults.
func enableFaults(dev *phideep.Device, opts options) error {
	if opts.faultRate <= 0 {
		return nil
	}
	return dev.EnableFaults(phideep.FaultConfig{
		Rate:          opts.faultRate,
		PermanentFrac: opts.faultPermanent,
		Seed:          opts.faultSeed,
		MaxRetries:    opts.faultRetries,
	})
}

func parseSizes(s string, visible, hidden int) ([]int, error) {
	if s == "" {
		return []int{visible, hidden}, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -sizes entry %q", p)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

func printResult(res *phideep.TrainResult, numeric bool) {
	fmt.Printf("  steps=%d examples=%d chunks=%d\n", res.Steps, res.Examples, res.Chunks)
	if numeric {
		fmt.Printf("  loss: first=%.5f final=%.5f\n", res.FirstLoss, res.FinalLoss)
		for i, l := range res.EpochLoss {
			fmt.Printf("  epoch %d: %.5f\n", i+1, l)
		}
	}
	fmt.Printf("  wall time: %.3f s (%.0f examples/s)\n", res.WallSeconds, res.ExamplesPerSec)
	fmt.Printf("  simulated time: %.3f s (compute %.3f s, transfers %.3f s busy, %d kernel launches)\n",
		res.SimSeconds, res.Device.ComputeBusy, res.Device.TransferBusy, res.Device.Ops)
	fmt.Printf("  modeled flops: %.3g, PCIe bytes: %d, peak device memory: %d MB\n",
		res.Device.Flops, res.Device.BytesMoved, res.Device.PeakAllocated>>20)
	if res.Resumed {
		fmt.Println("  resumed from checkpoint")
	}
	if res.Checkpoints > 0 {
		fmt.Printf("  checkpoints written: %d\n", res.Checkpoints)
	}
	if d := res.Device; d.FaultsTransient+d.FaultsPermanent > 0 {
		fmt.Printf("  transfer faults: %d transient, %d permanent; %d retries, %.3f s backoff; %d transfers failed, %d chunks skipped\n",
			d.FaultsTransient, d.FaultsPermanent, d.Retries, d.BackoffSeconds, d.FailedTransfers, res.SkippedChunks)
	}
}
