// Command datagen materializes the synthetic datasets (digit images,
// natural-image patches) to disk for inspection or external use — or, with
// -serve, exposes one as a dataset server speaking the feed's HTTP
// lease/commit API (DESIGN.md §15), so out-of-process consumers can stream
// the same sharded chunks the in-process trainer and cluster lease.
//
// Formats: csv (one example per row), pgm (one P2 image per example, only
// sensible for small counts).
//
// Examples:
//
//	datagen -kind digits -side 16 -n 100 -format csv -out digits.csv
//	datagen -kind natural -side 12 -n 8 -format pgm -out patches/
//	datagen -kind digits -side 16 -n 10000 -batch 100 -serve localhost:7077
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"phideep"
	"phideep/internal/data"
	"phideep/internal/feed"
	"phideep/internal/tensor"
)

func main() {
	var (
		kind   = flag.String("kind", "digits", "digits | natural")
		side   = flag.Int("side", 16, "image/patch side length")
		n      = flag.Int("n", 100, "number of examples")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "csv", "csv | pgm")
		out    = flag.String("out", "", "output file (csv) or directory (pgm); default stdout/CWD")
		labels = flag.Bool("labels", false, "append the digit label as the last CSV column (digits only)")

		serve = flag.String("serve", "", "serve the dataset over the feed's HTTP lease API on this address instead of writing files")
		batch = flag.Int("batch", 10, "feed minibatch size (with -serve)")
		chunk = flag.Int("chunk", 0, "feed chunk size in examples, a multiple of -batch (0 = auto; with -serve)")
	)
	flag.Parse()
	if *serve != "" {
		h, err := feedHandler(*kind, *side, *n, *seed, *batch, *chunk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("datagen: serving %s (%d examples) over the feed lease API on %s\n", *kind, *n, *serve)
		if err := http.ListenAndServe(*serve, h); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*kind, *side, *n, *seed, *format, *out, *labels); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// feedHandler builds the -serve mode's HTTP handler: the synthetic source
// wrapped in a dataset feed, exposed through the same lease/commit wire
// protocol in-process consumers use (feed.Handler).
func feedHandler(kind string, side, n int, seed uint64, batch, chunk int) (http.Handler, error) {
	plan, err := data.PlanChunks(data.PlanRequest{
		SourceLen:      n,
		Batch:          batch,
		ChunkExamples:  chunk,
		ExampleDoubles: side * side,
		FreeBytes:      data.NoMemLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("-serve: %w", err)
	}
	fcfg := feed.Config{Plan: plan}
	var f *feed.Feed
	switch kind {
	case "digits":
		f, err = feed.NewLabeled(data.NewDigits(side, n, seed, 0.05), fcfg)
	case "natural":
		f, err = feed.New(data.NewNaturalPatches(side, n, seed), fcfg)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("-serve: %w", err)
	}
	return feed.Handler(f), nil
}

func run(kind string, side, n int, seed uint64, format, out string, labels bool) error {
	var (
		src    phideep.Source
		digits *data.Digits
	)
	switch kind {
	case "digits":
		digits = data.NewDigits(side, n, seed, 0.05)
		src = digits
	case "natural":
		src = data.NewNaturalPatches(side, n, seed)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if labels && digits == nil {
		return fmt.Errorf("-labels is only meaningful with -kind digits")
	}

	m := tensor.NewMatrix(n, src.Dim())
	src.Chunk(0, n, m)

	switch format {
	case "csv":
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriter(w)
		defer bw.Flush()
		for i := 0; i < n; i++ {
			row := m.RowView(i)
			for j, v := range row {
				if j > 0 {
					fmt.Fprint(bw, ",")
				}
				fmt.Fprintf(bw, "%.6g", v)
			}
			if labels {
				fmt.Fprintf(bw, ",%d", digits.Label(i))
			}
			fmt.Fprintln(bw)
		}
		return nil

	case "pgm":
		dir := out
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			name := filepath.Join(dir, fmt.Sprintf("%s_%04d.pgm", kind, i))
			if err := writePGM(name, m.RowView(i), side); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d PGM files to %s\n", n, dir)
		return nil

	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// writePGM writes a side×side grayscale image (values in [0, 1]) as ASCII
// PGM.
func writePGM(name string, pixels []float64, side int) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P2\n%d %d\n255\n", side, side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := pixels[y*side+x]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			if x > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%d", int(v*255+0.5))
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
