package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCSVWithLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "digits.csv")
	if err := run("digits", 8, 5, 1, "csv", out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
	// 64 pixels + 1 label column.
	if cols := strings.Count(lines[0], ",") + 1; cols != 65 {
		t.Fatalf("got %d columns", cols)
	}
	label := lines[0][strings.LastIndex(lines[0], ",")+1:]
	if len(label) != 1 || label[0] < '0' || label[0] > '9' {
		t.Fatalf("bad label %q", label)
	}
}

func TestRunPGM(t *testing.T) {
	dir := t.TempDir()
	if err := run("natural", 8, 3, 2, "pgm", dir, false); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "natural_*.pgm"))
	if err != nil || len(files) != 3 {
		t.Fatalf("got %d pgm files (%v)", len(files), err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "P2\n8 8\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:20])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 8, 1, 1, "csv", "", false); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("bad kind: %v", err)
	}
	if err := run("digits", 8, 1, 1, "bogus", "", false); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("bad format: %v", err)
	}
	if err := run("natural", 8, 1, 1, "csv", filepath.Join(t.TempDir(), "x.csv"), true); err == nil || !strings.Contains(err.Error(), "labels") {
		t.Errorf("labels on natural: %v", err)
	}
}

func TestWritePGMClampsValues(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "t.pgm")
	if err := writePGM(name, []float64{-1, 0, 0.5, 2}, 2); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(name)
	s := strings.TrimSpace(string(data))
	if !strings.HasSuffix(s, "0 0\n128 255") && !strings.Contains(s, "255") {
		t.Fatalf("clamping wrong:\n%s", s)
	}
}

// TestServeFeedProtocol drives the -serve mode's handler through one full
// lease cycle over the wire: subscribe, lease, fetch the chunk payload
// (with labels), commit, and read the stats back.
func TestServeFeedProtocol(t *testing.T) {
	h, err := feedHandler("digits", 8, 40, 1, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(path string, body string, v any) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var sub struct {
		Shard int `json:"shard"`
	}
	if code := post("/subscribe", `{"name":"remote"}`, &sub); code != 200 {
		t.Fatalf("subscribe: %d", code)
	}
	var lease struct {
		Seq   int `json:"seq"`
		Start int `json:"start"`
		N     int `json:"n"`
	}
	if code := post("/lease", fmt.Sprintf(`{"shard":%d}`, sub.Shard), &lease); code != 200 {
		t.Fatalf("lease: %d", code)
	}
	if lease.N != 20 || lease.Seq != 0 {
		t.Fatalf("lease %+v", lease)
	}

	resp, err := http.Get(fmt.Sprintf("%s/chunk?shard=%d&seq=%d", srv.URL, sub.Shard, lease.Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chunk struct {
		Rows   [][]float64 `json:"rows"`
		Labels []int       `json:"labels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chunk); err != nil {
		t.Fatal(err)
	}
	if len(chunk.Rows) != 20 || len(chunk.Rows[0]) != 64 || len(chunk.Labels) != 20 {
		t.Fatalf("chunk: %d rows x %d, %d labels", len(chunk.Rows), len(chunk.Rows[0]), len(chunk.Labels))
	}

	if code := post("/commit", fmt.Sprintf(`{"shard":%d,"seq":%d,"at":1}`, sub.Shard, lease.Seq), nil); code != 200 {
		t.Fatalf("commit: %d", code)
	}
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		Leases  int `json:"leases"`
		Commits int `json:"commits"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Leases != 1 || stats.Commits != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestServeFeedValidation rejects a bad serve geometry up front.
func TestServeFeedValidation(t *testing.T) {
	if _, err := feedHandler("digits", 8, 5, 1, 10, 0); err == nil {
		t.Fatal("5 examples cannot hold a 10-example batch")
	}
	if _, err := feedHandler("bogus", 8, 40, 1, 10, 0); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("bad kind: %v", err)
	}
}
