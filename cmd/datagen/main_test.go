package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCSVWithLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "digits.csv")
	if err := run("digits", 8, 5, 1, "csv", out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
	// 64 pixels + 1 label column.
	if cols := strings.Count(lines[0], ",") + 1; cols != 65 {
		t.Fatalf("got %d columns", cols)
	}
	label := lines[0][strings.LastIndex(lines[0], ",")+1:]
	if len(label) != 1 || label[0] < '0' || label[0] > '9' {
		t.Fatalf("bad label %q", label)
	}
}

func TestRunPGM(t *testing.T) {
	dir := t.TempDir()
	if err := run("natural", 8, 3, 2, "pgm", dir, false); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "natural_*.pgm"))
	if err != nil || len(files) != 3 {
		t.Fatalf("got %d pgm files (%v)", len(files), err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "P2\n8 8\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:20])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 8, 1, 1, "csv", "", false); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("bad kind: %v", err)
	}
	if err := run("digits", 8, 1, 1, "bogus", "", false); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("bad format: %v", err)
	}
	if err := run("natural", 8, 1, 1, "csv", filepath.Join(t.TempDir(), "x.csv"), true); err == nil || !strings.Contains(err.Error(), "labels") {
		t.Errorf("labels on natural: %v", err)
	}
}

func TestWritePGMClampsValues(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "t.pgm")
	if err := writePGM(name, []float64{-1, 0, 0.5, 2}, 2); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(name)
	s := strings.TrimSpace(string(data))
	if !strings.HasSuffix(s, "0 0\n128 255") && !strings.Contains(s, "255") {
		t.Fatalf("clamping wrong:\n%s", s)
	}
}
