// Command phibench regenerates the tables and figures of the paper's
// evaluation section on the simulated platforms, plus the ablations
// documented in DESIGN.md.
//
// Usage:
//
//	phibench -exp all            # everything (default)
//	phibench -exp table1         # one experiment
//	phibench -exp fig7-ae,fig9-rbm
//	phibench -list               # show experiment ids
//	phibench -exp fig10 -csv     # machine-readable output
//	phibench -exp table1 -metrics run.json   # + wall-clock counter snapshot
//	phibench -exp all -pprof localhost:6060  # live profiling while it runs
//
// The experiment tables report *simulated* seconds on the modeled
// platforms; -metrics captures, in addition, the real host-side cost of
// producing them (GEMM calls/FLOPs, asm-vs-fallback path counts, wall
// seconds per engine) as a JSON registry snapshot. -stats prints the same
// snapshot as a table. See DESIGN.md's "Observability" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"phideep/internal/experiments"
	"phideep/internal/metrics"
)

// registry maps experiment ids to their runners, in the order DESIGN.md's
// per-experiment index lists them.
var registry = []struct {
	id   string
	desc string
	run  func() *experiments.Table
}{
	{"fig7-ae", "network-size sweep, Sparse Autoencoder (Fig. 7a)", func() *experiments.Table { return experiments.Fig7(experiments.AE) }},
	{"fig7-rbm", "network-size sweep, RBM (Fig. 7b)", func() *experiments.Table { return experiments.Fig7(experiments.RBM) }},
	{"fig8-ae", "dataset-size sweep, Sparse Autoencoder (Fig. 8a)", func() *experiments.Table { return experiments.Fig8(experiments.AE) }},
	{"fig8-rbm", "dataset-size sweep, RBM (Fig. 8b)", func() *experiments.Table { return experiments.Fig8(experiments.RBM) }},
	{"fig9-ae", "batch-size sweep, Sparse Autoencoder (Fig. 9a)", func() *experiments.Table { return experiments.Fig9(experiments.AE) }},
	{"fig9-rbm", "batch-size sweep, RBM (Fig. 9b)", func() *experiments.Table { return experiments.Fig9(experiments.RBM) }},
	{"fig10", "Matlab vs Xeon Phi (Fig. 10)", experiments.Fig10},
	{"table1", "optimization ladder, 60/30 cores (Table I)", experiments.Table1},
	{"fig5-overlap", "loading-thread transfer overlap (Fig. 5, §IV.A)", experiments.Fig5Overlap},
	{"abl-vector", "ablation: VPU vectorization", experiments.AblationVectorization},
	{"abl-fusion", "ablation: loop fusion granularity", experiments.AblationLoopFusion},
	{"abl-prefetch", "ablation: prefetch pipeline", experiments.AblationPrefetch},
	{"abl-fig6", "ablation: RBM dependency-graph scheduling", experiments.AblationRBMDependencyGraph},
	{"abl-threads", "ablation: hardware threads per core", experiments.AblationThreadsPerCore},
	{"abl-cores", "ablation: core-count scaling", experiments.AblationCoreCount},
	{"abl-hosts", "platform comparison (abstract's 7-10x, Fig. 10's 16x)", experiments.AblationHostComparison},
	{"fw-hybrid", "future work: hybrid Xeon+Phi data parallelism (§VI)", experiments.HybridCrossover},
	{"fw-autotune", "future work: automatic thread/core balance (§VI)", experiments.AutoTune},
	{"fw-predictor", "future work: calibrated predictor vs full simulation", experiments.AutoTunePredictor},
	{"sgd-vs-batch", "§III study: online SGD vs L-BFGS/CG on the Phi", experiments.BatchMethods},
	{"cluster-vs-phi", "positioning: one Phi vs a commodity cluster (§I/§III)", experiments.ClusterVsPhi},
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write each experiment as <id>.csv into this directory")
	metricsTo := flag.String("metrics", "", "write a JSON metrics snapshot (wall-clock counters across all experiments run) to this file")
	stats := flag.Bool("stats", false, "print the metrics registry as a table at the end")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	tuneMode := flag.Bool("tune", false, "run the calibrated-predictor autotuning demo (probe-run calibration, predicted-vs-simulated ranking, pruned search) and exit")
	flag.Parse()

	if *tuneMode {
		if err := runTune(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "phibench:", err)
			os.Exit(1)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "phibench: pprof:", err)
			}
		}()
	}
	if *metricsTo != "" || *stats {
		metrics.SetEnabled(true)
	}

	if *list {
		for _, e := range registry {
			fmt.Printf("%-14s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	all := *exp == "all"
	if !all {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range registry {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "phibench: unknown experiment id(s): %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	ran := 0
	for _, e := range registry {
		if !all && !want[e.id] {
			continue
		}
		t := e.run()
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		if *outDir != "" {
			if err := writeCSVFile(*outDir, e.id, t); err != nil {
				fmt.Fprintln(os.Stderr, "phibench:", err)
				os.Exit(1)
			}
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "phibench: nothing to run (use -list)")
		os.Exit(2)
	}
	if *metricsTo != "" {
		if err := writeSnapshot(*metricsTo); err != nil {
			fmt.Fprintln(os.Stderr, "phibench:", err)
			os.Exit(1)
		}
	}
	if *stats {
		fmt.Println("== metrics (wall clock vs simulated; see DESIGN.md \"Observability\") ==")
		if err := metrics.Default().Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "phibench:", err)
		}
	}
}

// writeSnapshot dumps the metrics registry as indented JSON to path.
func writeSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(metrics.Default().Snapshot()); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}

// writeCSVFile writes one experiment's table as <dir>/<id>.csv.
func writeCSVFile(dir, id string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	t.WriteCSV(f)
	return nil
}
