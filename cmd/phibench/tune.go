package main

import (
	"fmt"
	"io"

	"phideep/internal/autoencoder"
	"phideep/internal/sim"
	"phideep/internal/tune"
)

// runTune is the -tune mode: calibrate the performance predictor from
// short probe runs, rank the default grid by predicted epoch time, spend
// full simulated evaluations only on the predicted top k, and print the
// predicted-vs-simulated ranking next to the exhaustive-search answer so
// the pruning quality is visible at a glance.
func runTune(w io.Writer) error {
	wl := tune.AEWorkload{
		Arch: sim.XeonPhi5110P(), Model: autoencoder.Config{Visible: 256, Hidden: 1024},
		Batch: 250, Iterations: 100, DatasetExamples: 2000,
	}
	cands := tune.DefaultCandidates(wl.Arch)
	const topK = 8

	res, p, err := tune.PrunedSearch(wl, cands, topK)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "phibench -tune: AE %dx%d, batch %d, %d iterations on %s\n",
		wl.Model.Visible, wl.Model.Hidden, wl.Batch, wl.Iterations, wl.Arch.Name)
	fmt.Fprintf(w, "calibration: %d probe runs (%d fit equations) over a %d-candidate grid\n",
		p.CalibrationRuns, p.CalibrationEquations, len(cands))
	fmt.Fprint(w, "coefficients:")
	for i, c := range p.Coefficients() {
		fmt.Fprintf(w, " %s=%.3f", tune.FeatureNames[i], c)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "\npredicted top %d (fully simulated for verification):\n", topK)
	fmt.Fprintf(w, "  %-4s %-45s %12s %12s %8s\n", "rank", "candidate", "predicted", "simulated", "error")
	for i, s := range res.All {
		relE := (s.Predicted - s.SimSeconds) / s.SimSeconds
		fmt.Fprintf(w, "  %-4d %-45s %11.4gs %11.4gs %+7.1f%%\n",
			i+1, s.Candidate.String(), s.Predicted, s.SimSeconds, 100*relE)
	}
	fmt.Fprintf(w, "pruned: %d of %d candidates never fully simulated\n", res.Pruned, len(cands))

	exhaustive, err := tune.GridSearch(tune.WorkloadObjective(wl), cands)
	if err != nil {
		return err
	}
	agree := "agrees with the pruned search"
	if exhaustive.Best.Candidate != res.Best.Candidate {
		agree = fmt.Sprintf("DISAGREES with the pruned pick (%v)", res.Best.Candidate)
	}
	fmt.Fprintf(w, "exhaustive best: %v (%.4g s) — %s\n",
		exhaustive.Best.Candidate, exhaustive.Best.SimSeconds, agree)
	return nil
}
