package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phideep/internal/experiments"
)

// TestRegistryIntegrity: ids unique and well formed, every runner wired.
func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry {
		if e.id == "" || e.desc == "" {
			t.Errorf("entry %+v incomplete", e.id)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.run == nil {
			t.Errorf("experiment %q has no runner", e.id)
		}
	}
	// Every exhibit of the paper's evaluation must be present.
	for _, want := range []string{
		"fig7-ae", "fig7-rbm", "fig8-ae", "fig8-rbm", "fig9-ae", "fig9-rbm",
		"fig10", "table1", "fig5-overlap",
	} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

// TestEveryRunnerProducesAWellFormedTable runs each registered experiment
// once and validates the table structure. This doubles as an end-to-end
// smoke test of the whole harness.
func TestEveryRunnerProducesAWellFormedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	for _, e := range registry {
		tab := e.run()
		if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Errorf("%s: malformed table %+v", e.id, tab)
			continue
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row %d has %d cells for %d columns", e.id, i, len(row), len(tab.Columns))
			}
		}
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	out := registryTable()
	if err := writeCSVFile(dir, "x", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a,b") {
		t.Fatalf("csv content: %s", data)
	}
}

// registryTable builds a tiny table without running an experiment.
func registryTable() *experiments.Table {
	tb := &experiments.Table{Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2")
	return tb
}
