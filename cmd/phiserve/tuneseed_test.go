package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"phideep"
)

// TestTuneSeedBatcher runs the real pruned search on a small model and
// checks the derived knobs are sane: the batch comes from the searched
// grid and the wait lands inside the clamp.
func TestTuneSeedBatcher(t *testing.T) {
	o := &serveOptions{modelKind: "ae", visible: 12, hidden: 5, seed: 3}
	batch, wait, err := tuneSeedBatcher(o, phideep.XeonE5620Core())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range tuneSeedBatches {
		if batch == b {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded batch %d not in the searched grid %v", batch, tuneSeedBatches)
	}
	if wait < tuneSeedMinWait || wait > tuneSeedMaxWait {
		t.Fatalf("seeded wait %v outside [%v, %v]", wait, tuneSeedMinWait, tuneSeedMaxWait)
	}
}

// TestApplyTuneSeed checks precedence: seeded values fill only the knobs
// the user left at their defaults, and a fully pinned batcher skips the
// search entirely.
func TestApplyTuneSeed(t *testing.T) {
	var log bytes.Buffer
	o := &serveOptions{
		modelKind: "ae", visible: 12, hidden: 5, seed: 3,
		maxBatch: 16, maxWait: time.Millisecond,
		maxBatchSet: true, // user pinned -max-batch; -max-wait stays seedable
	}
	if err := applyTuneSeed(&log, o, phideep.XeonE5620Core()); err != nil {
		t.Fatal(err)
	}
	if o.maxBatch != 16 {
		t.Fatalf("explicit -max-batch overridden to %d", o.maxBatch)
	}
	if o.maxWait == time.Millisecond {
		t.Fatalf("-max-wait not seeded (still %v)", o.maxWait)
	}
	if o.maxWait < tuneSeedMinWait || o.maxWait > tuneSeedMaxWait {
		t.Fatalf("seeded wait %v outside clamp", o.maxWait)
	}
	if !strings.Contains(log.String(), "tune-seed pick") {
		t.Fatalf("missing pick line: %q", log.String())
	}

	log.Reset()
	o2 := &serveOptions{
		modelKind: "ae", visible: 12, hidden: 5,
		maxBatch: 8, maxWait: time.Millisecond,
		maxBatchSet: true, maxWaitSet: true,
	}
	if err := applyTuneSeed(&log, o2, phideep.XeonE5620Core()); err != nil {
		t.Fatal(err)
	}
	if o2.maxBatch != 8 || o2.maxWait != time.Millisecond {
		t.Fatalf("pinned knobs changed: batch=%d wait=%v", o2.maxBatch, o2.maxWait)
	}
	if !strings.Contains(log.String(), "skipped") {
		t.Fatalf("missing skip line: %q", log.String())
	}
}
