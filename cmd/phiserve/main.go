// Command phiserve serves a trained phideep model over HTTP, coalescing
// concurrent single-example requests into micro-batches on a pool of
// device-bound workers (see internal/serve and DESIGN.md §10).
//
// Serve a checkpoint written by phitrain -export:
//
//	phitrain -model ae -side 16 -hidden 64 -epochs 3 -export model.phck
//	phiserve -model ae -visible 256 -hidden 64 -checkpoint model.phck -addr localhost:8080
//
//	curl -s localhost:8080/encode -d '{"input":[0.1, ...]}'   # 256 values
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /encode, /reconstruct (autoencoder, RBM) and /predict
// (MLP, convnet) take {"input":[...]} and answer {"output":[...]}; GET
// /metrics returns the batcher stats plus the metrics registry snapshot;
// GET /healthz reports the served model.
//
// Convnet checkpoints carry no geometry, so the -side/-filters*/-kernel*/
// -pool/-classes flags must repeat the training geometry:
//
//	phitrain -model convnet -side 16 -epochs 5 -export cnn.phck
//	phiserve -model convnet -side 16 -checkpoint cnn.phck
//
// Overload responses follow the admission policy (-policy): block applies
// backpressure, shed answers 429, degrade falls back to the scalar host
// path inline.
//
// -precision f32 serves from float32 weight snapshots on the packed SIMD
// host kernels instead of the simulated f64 device — lower latency, answers
// within float32 rounding of the f64 path (training always stays f64).
//
// The built-in closed-loop load generator drives the same Server in
// process and prints a throughput/latency report instead of listening:
//
//	phiserve -model ae -visible 256 -hidden 64 -loadgen -clients 16 -duration 5s
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"phideep"
	"phideep/internal/metrics"
)

func main() {
	var (
		model    = flag.String("model", "ae", "ae | rbm | mlp | convnet")
		ckpt     = flag.String("checkpoint", "", "PHCK checkpoint to serve (phitrain -export / -checkpoint); fresh seeded weights if empty")
		visible  = flag.Int("visible", 256, "input units (ae/rbm)")
		hidden   = flag.Int("hidden", 64, "hidden units (ae/rbm)")
		sizes    = flag.String("sizes", "", "comma-separated MLP layer sizes, input first (e.g. 256,64,10)")
		tied     = flag.Bool("tied", false, "decoder weights tied to the encoder (ae; must match training)")
		gaussian = flag.Bool("gaussian", false, "Gaussian visible units (rbm; must match training)")

		side     = flag.Int("side", 16, "convnet: input image side (must match training)")
		filters1 = flag.Int("filters1", 6, "convnet: first conv layer filter count (must match training)")
		kernel1  = flag.Int("kernel1", 5, "convnet: first conv kernel side (must match training)")
		filters2 = flag.Int("filters2", 12, "convnet: second conv layer filter count (must match training)")
		kernel2  = flag.Int("kernel2", 3, "convnet: second conv kernel side (must match training)")
		poolSz   = flag.Int("pool", 2, "convnet: max-pooling window/stride (must match training)")
		classes  = flag.Int("classes", 10, "convnet: output classes (must match training)")

		level    = flag.String("level", "improved", "baseline | openmp | mkl | improved")
		arch     = flag.String("arch", "phi", "phi | cpu1 | cpu4 | cpu8 | matlab")
		cores    = flag.Int("cores", 0, "physical core limit per worker device (0 = all)")
		workers  = flag.Int("workers", 2, "device-bound serving workers")
		pool     = flag.Int("pool-workers", 0, "Go pool size behind each device's parallel kernels (0 = run inline)")
		maxBatch = flag.Int("max-batch", 16, "micro-batch coalescing limit")
		maxWait  = flag.Duration("max-wait", time.Millisecond, "micro-batch flush deadline")
		adaptive = flag.Bool("adaptive", false, "enable the online batching controller (max-batch/max-wait become ceilings; adjustments visible as serve.tune.* metrics)")
		queue    = flag.Int("queue-depth", 0, "admission bound on queued requests (0 = 4x max-batch)")
		policy   = flag.String("policy", "block", "full-queue policy: block | shed | degrade")
		prec     = flag.String("precision", "f64", "forward-path numeric width: f64 (device path) | f32 (packed SIMD host kernels)")
		seed     = flag.Uint64("seed", 1, "worker RNG seed (and fresh-weights seed without -checkpoint)")
		collect  = flag.Bool("collect", true, "enable the internal metrics registry (feeds /metrics)")

		addr     = flag.String("addr", "localhost:8080", "HTTP listen address")
		loadgen  = flag.Bool("loadgen", false, "run the built-in closed-loop load generator and exit (no HTTP)")
		clients  = flag.Int("clients", 8, "loadgen: concurrent closed-loop clients")
		duration = flag.Duration("duration", 5*time.Second, "loadgen: run length")
		op       = flag.String("op", "", "loadgen: operation (encode | reconstruct | predict; default: first the model supports)")
	)
	flag.Parse()

	metrics.SetEnabled(*collect)
	conv := phideep.ConvnetConfig{
		Side: *side, Filters1: *filters1, Kernel1: *kernel1,
		Filters2: *filters2, Kernel2: *kernel2, Pool: *poolSz, Classes: *classes,
	}
	if err := run(*model, *ckpt, *visible, *hidden, *sizes, *tied, *gaussian, conv,
		*level, *arch, *cores, *workers, *pool, *maxBatch, *maxWait, *adaptive, *queue, *policy, *prec, *seed,
		*addr, *loadgen, *clients, *duration, *op); err != nil {
		fmt.Fprintln(os.Stderr, "phiserve:", err)
		os.Exit(1)
	}
}

func run(modelKind, ckpt string, visible, hidden int, sizesFlag string, tied, gaussian bool,
	conv phideep.ConvnetConfig,
	levelName, archName string, cores, workers, pool, maxBatch int, maxWait time.Duration,
	adaptive bool, queue int, policyName, precName string, seed uint64,
	addr string, loadgen bool, clients int, duration time.Duration, opName string) error {

	m, err := buildModel(modelKind, ckpt, visible, hidden, sizesFlag, tied, gaussian, conv, seed)
	if err != nil {
		return err
	}
	lvl, err := pickLevel(levelName)
	if err != nil {
		return err
	}
	archDesc, err := pickArch(archName)
	if err != nil {
		return err
	}
	pol, err := pickPolicy(policyName)
	if err != nil {
		return err
	}
	prec, err := pickPrecision(precName)
	if err != nil {
		return err
	}
	cfg := phideep.ServeConfig{
		Arch: archDesc, Level: lvl, Cores: cores,
		Workers: workers, PoolWorkers: pool,
		MaxBatch: maxBatch, MaxWait: maxWait, Adaptive: adaptive,
		QueueDepth: queue, Policy: pol, Seed: seed,
	}
	srv, err := phideep.NewServer(m, cfg, phideep.WithPrecision(prec))
	if err != nil {
		return err
	}
	defer srv.Close()

	if loadgen {
		return runLoadgen(os.Stdout, srv, opName, clients, duration, maxWait, policyName, seed)
	}

	mode := "static"
	if adaptive {
		mode = "adaptive"
	}
	fmt.Printf("phiserve: %s model (%d inputs) on %s [%s], %d workers, batch<=%d wait<=%v (%s) policy=%s precision=%s\n",
		m.Kind(), m.InputDim(), archDesc.Name, lvl, workers, maxBatch, maxWait, mode, pol, prec)
	fmt.Printf("phiserve: listening on http://%s\n", addr)
	return http.ListenAndServe(addr, newMux(srv, time.Now()))
}

// buildModel snapshots the parameters to serve: loaded from a PHCK
// checkpoint when -checkpoint is set, else freshly seeded (useful for
// latency experiments, where the weights' values are irrelevant).
func buildModel(kind, ckpt string, visible, hidden int, sizesFlag string, tied, gaussian bool, conv phideep.ConvnetConfig, seed uint64) (*phideep.ServeModel, error) {
	switch kind {
	case "ae":
		cfg := phideep.AutoencoderConfig{Visible: visible, Hidden: hidden, Tied: tied, Seed: seed}
		if ckpt != "" {
			return phideep.ServeAutoencoderCheckpoint(cfg, ckpt)
		}
		return phideep.ServeAutoencoder(cfg, nil), nil
	case "rbm":
		cfg := phideep.RBMConfig{Visible: visible, Hidden: hidden, GaussianVisible: gaussian, Seed: seed}
		if ckpt != "" {
			return phideep.ServeRBMCheckpoint(cfg, ckpt)
		}
		return phideep.ServeRBM(cfg, nil), nil
	case "mlp":
		layers, err := parseSizes(sizesFlag)
		if err != nil {
			return nil, err
		}
		cfg := phideep.MLPConfig{Sizes: layers, Seed: seed}
		if ckpt != "" {
			return phideep.ServeMLPCheckpoint(cfg, ckpt)
		}
		return phideep.ServeMLP(cfg, nil), nil
	case "convnet":
		conv.Seed = seed
		if err := conv.Validate(); err != nil {
			return nil, err
		}
		if ckpt != "" {
			return phideep.ServeConvnetCheckpoint(conv, ckpt)
		}
		return phideep.ServeConvnet(conv, nil), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want ae, rbm, mlp or convnet)", kind)
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, errors.New("mlp requires -sizes (e.g. -sizes 256,64,10)")
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -sizes entry %q: %w", p, err)
		}
		sizes[i] = n
	}
	return sizes, nil
}

func pickLevel(name string) (phideep.OptLevel, error) {
	switch name {
	case "baseline":
		return phideep.Baseline, nil
	case "openmp":
		return phideep.OpenMP, nil
	case "mkl":
		return phideep.OpenMPMKL, nil
	case "improved":
		return phideep.Improved, nil
	default:
		return 0, fmt.Errorf("unknown level %q", name)
	}
}

func pickArch(name string) (*phideep.Arch, error) {
	switch name {
	case "phi":
		return phideep.XeonPhi5110P(), nil
	case "cpu1":
		return phideep.XeonE5620Core(), nil
	case "cpu4":
		return phideep.XeonE5620Full(), nil
	case "cpu8":
		return phideep.XeonE5620Dual(), nil
	case "matlab":
		return phideep.MatlabR2012a(), nil
	default:
		return nil, fmt.Errorf("unknown arch %q", name)
	}
}

func pickPolicy(name string) (phideep.ServePolicy, error) {
	switch name {
	case "block":
		return phideep.ServeBlock, nil
	case "shed":
		return phideep.ServeShed, nil
	case "degrade":
		return phideep.ServeDegrade, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want block, shed or degrade)", name)
	}
}

func pickPrecision(name string) (phideep.Precision, error) {
	switch name {
	case "f64":
		return phideep.PrecisionF64, nil
	case "f32":
		return phideep.PrecisionF32, nil
	default:
		return 0, fmt.Errorf("unknown precision %q (want f64 or f32)", name)
	}
}

// newMux wires the serving endpoints. Split from run so the httptest suite
// can drive the exact production handler chain.
func newMux(srv *phideep.Server, start time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/encode", inferHandler(srv.Encode, false))
	mux.HandleFunc("/reconstruct", inferHandler(srv.Reconstruct, false))
	mux.HandleFunc("/predict", inferHandler(srv.Predict, true))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"batcher":  srv.Stats(),
			"registry": metrics.Default().Snapshot(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m := srv.Model()
		ops := make([]string, 0, 2)
		for _, op := range m.Ops() {
			ops = append(ops, op.String())
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"model":          m.Kind(),
			"input_dim":      m.InputDim(),
			"ops":            ops,
			"uptime_seconds": time.Since(start).Seconds(),
		})
	})
	return mux
}

type inferRequest struct {
	Input []float64 `json:"input"`
}

type inferResponse struct {
	Output []float64 `json:"output"`
	// Class is the argmax of Output, reported by /predict only.
	Class *int `json:"class,omitempty"`
}

// inferHandler adapts one Server method to the POST {"input":[...]} →
// {"output":[...]} JSON protocol. Admission failures map to HTTP status:
// shed → 429 Too Many Requests, closed → 503 Service Unavailable, bad
// input → 400.
func inferHandler(call func([]float64) ([]float64, error), classify bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
			return
		}
		var req inferRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		out, err := call(req.Input)
		if err != nil {
			writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
			return
		}
		resp := inferResponse{Output: out}
		if classify {
			c := argmax(out)
			resp.Class = &c
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, phideep.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, phideep.ErrServerClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
