// Command phiserve serves a trained phideep model over HTTP, coalescing
// concurrent single-example requests into micro-batches on a pool of
// device-bound workers (see internal/serve and DESIGN.md §10, §14).
//
// Serve a checkpoint written by phitrain -export:
//
//	phitrain -model ae -side 16 -hidden 64 -epochs 3 -export model.phck
//	phiserve -model ae -visible 256 -hidden 64 -checkpoint model.phck -addr localhost:8080
//
//	curl -s localhost:8080/encode -d '{"input":[0.1, ...]}'   # 256 values
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /encode, /reconstruct (autoencoder, RBM) and /predict
// (MLP, convnet) take {"input":[...]} and answer {"output":[...]}; GET
// /metrics returns the batcher stats plus the metrics registry snapshot;
// GET /healthz is the readiness probe — it reports the availability state
// machine ("healthy", "degraded", "draining", "down") with worker and
// restart counts, answering 200 while the server can take traffic (healthy
// or degraded) and 503 once it cannot (draining or down).
//
// Convnet checkpoints carry no geometry, so the -side/-filters*/-kernel*/
// -pool/-classes flags must repeat the training geometry:
//
//	phitrain -model convnet -side 16 -epochs 5 -export cnn.phck
//	phiserve -model convnet -side 16 -checkpoint cnn.phck
//
// Overload responses follow the admission policy (-policy): block applies
// backpressure, shed answers 429, degrade falls back to the scalar host
// path inline. -request-timeout bounds every request's queue+service time;
// expired requests answer 504.
//
// -precision f32 serves from float32 weight snapshots on the packed SIMD
// host kernels instead of the simulated f64 device — lower latency, answers
// within float32 rounding of the f64 path (training always stays f64).
//
// Robustness knobs (DESIGN.md §14): -fault-rate arms the deterministic
// PCIe fault injector on every worker device (with -fault-permanent and
// -fault-seed shaping the streams), -max-restarts caps worker rebuilds
// before a slot retires, and SIGINT/SIGTERM triggers a graceful drain
// bounded by -drain-timeout instead of killing in-flight requests.
//
// -tune-seed runs the calibrated performance predictor (DESIGN.md §13)
// over the batch-crossed candidate grid before serving and seeds the
// micro-batcher defaults from its pick: -max-batch defaults to the
// fastest candidate's batch size and -max-wait to its per-batch simulated
// time. Explicitly set flags always win over the seeded values.
//
// The built-in closed-loop load generator drives the same Server in
// process and prints a throughput/latency report instead of listening:
//
//	phiserve -model ae -visible 256 -hidden 64 -loadgen -clients 16 -duration 5s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"phideep"
	"phideep/internal/metrics"
)

// serveOptions carries every CLI knob through run and its helpers; one
// field per flag, in flag-declaration order.
type serveOptions struct {
	modelKind string
	ckpt      string
	visible   int
	hidden    int
	sizes     string
	tied      bool
	gaussian  bool
	conv      phideep.ConvnetConfig

	levelName string
	archName  string
	cores     int
	workers   int
	pool      int
	maxBatch  int
	maxWait   time.Duration
	adaptive  bool
	queue     int
	policy    string
	precision string
	seed      uint64

	faultRate      float64
	faultPermanent float64
	faultSeed      uint64
	maxRestarts    int
	requestTimeout time.Duration
	drainTimeout   time.Duration

	// tuneSeed runs the predictor search before serving; maxBatchSet and
	// maxWaitSet record whether the user pinned the knobs explicitly (set
	// flags always beat seeded defaults).
	tuneSeed    bool
	maxBatchSet bool
	maxWaitSet  bool

	addr     string
	loadgen  bool
	clients  int
	duration time.Duration
	op       string
}

func main() {
	var o serveOptions
	flag.StringVar(&o.modelKind, "model", "ae", "ae | rbm | mlp | convnet")
	flag.StringVar(&o.ckpt, "checkpoint", "", "PHCK checkpoint to serve (phitrain -export / -checkpoint); fresh seeded weights if empty")
	flag.IntVar(&o.visible, "visible", 256, "input units (ae/rbm)")
	flag.IntVar(&o.hidden, "hidden", 64, "hidden units (ae/rbm)")
	flag.StringVar(&o.sizes, "sizes", "", "comma-separated MLP layer sizes, input first (e.g. 256,64,10)")
	flag.BoolVar(&o.tied, "tied", false, "decoder weights tied to the encoder (ae; must match training)")
	flag.BoolVar(&o.gaussian, "gaussian", false, "Gaussian visible units (rbm; must match training)")

	flag.IntVar(&o.conv.Side, "side", 16, "convnet: input image side (must match training)")
	flag.IntVar(&o.conv.Filters1, "filters1", 6, "convnet: first conv layer filter count (must match training)")
	flag.IntVar(&o.conv.Kernel1, "kernel1", 5, "convnet: first conv kernel side (must match training)")
	flag.IntVar(&o.conv.Filters2, "filters2", 12, "convnet: second conv layer filter count (must match training)")
	flag.IntVar(&o.conv.Kernel2, "kernel2", 3, "convnet: second conv kernel side (must match training)")
	flag.IntVar(&o.conv.Pool, "pool", 2, "convnet: max-pooling window/stride (must match training)")
	flag.IntVar(&o.conv.Classes, "classes", 10, "convnet: output classes (must match training)")

	flag.StringVar(&o.levelName, "level", "improved", "baseline | openmp | mkl | improved")
	flag.StringVar(&o.archName, "arch", "phi", "phi | cpu1 | cpu4 | cpu8 | matlab")
	flag.IntVar(&o.cores, "cores", 0, "physical core limit per worker device (0 = all)")
	flag.IntVar(&o.workers, "workers", 2, "device-bound serving workers")
	flag.IntVar(&o.pool, "pool-workers", 0, "Go pool size behind each device's parallel kernels (0 = run inline)")
	flag.IntVar(&o.maxBatch, "max-batch", 16, "micro-batch coalescing limit")
	flag.DurationVar(&o.maxWait, "max-wait", time.Millisecond, "micro-batch flush deadline")
	flag.BoolVar(&o.adaptive, "adaptive", false, "enable the online batching controller (max-batch/max-wait become ceilings; adjustments visible as serve.tune.* metrics)")
	flag.IntVar(&o.queue, "queue-depth", 0, "admission bound on queued requests (0 = 4x max-batch)")
	flag.StringVar(&o.policy, "policy", "block", "full-queue policy: block | shed | degrade")
	flag.StringVar(&o.precision, "precision", "f64", "forward-path numeric width: f64 (device path) | f32 (packed SIMD host kernels)")
	flag.Uint64Var(&o.seed, "seed", 1, "worker RNG seed (and fresh-weights seed without -checkpoint)")
	collect := flag.Bool("collect", true, "enable the internal metrics registry (feeds /metrics)")

	flag.Float64Var(&o.faultRate, "fault-rate", 0, "per-transfer device fault probability (0 = injector off)")
	flag.Float64Var(&o.faultPermanent, "fault-permanent", 0, "fraction of injected faults that are permanent (replica loss)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault injector base seed (per-worker streams derive from it)")
	flag.IntVar(&o.maxRestarts, "max-restarts", 0, "worker rebuild budget before a slot retires (0 = default 3, -1 = retire on first fault)")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 0, "per-request deadline across queueing and service (0 = none)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 5*time.Second, "graceful drain bound on SIGINT/SIGTERM (0 = wait forever)")
	flag.BoolVar(&o.tuneSeed, "tune-seed", false, "seed max-batch/max-wait defaults from the calibrated predictor's pruned search before serving")

	flag.StringVar(&o.addr, "addr", "localhost:8080", "HTTP listen address")
	flag.BoolVar(&o.loadgen, "loadgen", false, "run the built-in closed-loop load generator and exit (no HTTP)")
	flag.IntVar(&o.clients, "clients", 8, "loadgen: concurrent closed-loop clients")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "loadgen: run length")
	flag.StringVar(&o.op, "op", "", "loadgen: operation (encode | reconstruct | predict; default: first the model supports)")
	flag.Parse()

	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "max-batch":
			o.maxBatchSet = true
		case "max-wait":
			o.maxWaitSet = true
		}
	})
	metrics.SetEnabled(*collect)
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "phiserve:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o serveOptions) error {
	m, err := buildModel(o)
	if err != nil {
		return err
	}
	lvl, err := pickLevel(o.levelName)
	if err != nil {
		return err
	}
	archDesc, err := pickArch(o.archName)
	if err != nil {
		return err
	}
	pol, err := pickPolicy(o.policy)
	if err != nil {
		return err
	}
	prec, err := pickPrecision(o.precision)
	if err != nil {
		return err
	}
	if o.tuneSeed {
		if err := applyTuneSeed(w, &o, archDesc); err != nil {
			return err
		}
	}
	cfg := phideep.ServeConfig{
		Arch: archDesc, Level: lvl, Cores: o.cores,
		Workers: o.workers, PoolWorkers: o.pool,
		MaxBatch: o.maxBatch, MaxWait: o.maxWait, Adaptive: o.adaptive,
		QueueDepth: o.queue, Policy: pol, Seed: o.seed,
		MaxRestarts: o.maxRestarts, RequestTimeout: o.requestTimeout,
	}
	if o.faultRate > 0 {
		fc := phideep.FaultConfig{Rate: o.faultRate, PermanentFrac: o.faultPermanent, Seed: o.faultSeed}
		if err := fc.Validate(); err != nil {
			return err
		}
		cfg.Faults = fc
	}
	srv, err := phideep.NewServer(m, cfg, phideep.WithPrecision(prec))
	if err != nil {
		return err
	}
	defer srv.Close()

	if o.loadgen {
		return runLoadgen(w, srv, o.op, o.clients, o.duration, o.maxWait, o.policy, o.seed)
	}

	mode := "static"
	if o.adaptive {
		mode = "adaptive"
	}
	fmt.Fprintf(w, "phiserve: %s model (%d inputs) on %s [%s], %d workers, batch<=%d wait<=%v (%s) policy=%s precision=%s\n",
		m.Kind(), m.InputDim(), archDesc.Name, lvl, o.workers, o.maxBatch, o.maxWait, mode, pol, prec)
	if o.faultRate > 0 {
		fmt.Fprintf(w, "phiserve: fault injection armed: rate=%g permanent=%g seed=%d max-restarts=%d\n",
			o.faultRate, o.faultPermanent, o.faultSeed, o.maxRestarts)
	}
	fmt.Fprintf(w, "phiserve: listening on http://%s\n", o.addr)

	hs := &http.Server{Addr: o.addr, Handler: newMux(srv, time.Now())}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(w, "phiserve: caught %v, draining (timeout %v)\n", sig, o.drainTimeout)
		return drainAndShutdown(w, srv, hs, o.drainTimeout)
	}
}

// drainAndShutdown is the graceful exit path: the batcher drains first
// (admission flips to draining — /healthz answers 503 — queued batches
// flush, and in-flight requests finish inside the timeout), then the HTTP
// listener shuts down. Split from run's signal plumbing so the httptest
// suite can drive it directly.
func drainAndShutdown(w io.Writer, srv *phideep.Server, hs *http.Server, timeout time.Duration) error {
	derr := srv.Drain(timeout)
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	serr := hs.Shutdown(ctx)
	st := srv.Stats()
	fmt.Fprintf(w, "phiserve: drained: %d of %d requests completed, health=%s\n",
		st.Completed, st.Requests, st.Health)
	if derr != nil {
		return derr
	}
	return serr
}

// buildModel snapshots the parameters to serve: loaded from a PHCK
// checkpoint when -checkpoint is set, else freshly seeded (useful for
// latency experiments, where the weights' values are irrelevant).
func buildModel(o serveOptions) (*phideep.ServeModel, error) {
	switch o.modelKind {
	case "ae":
		cfg := phideep.AutoencoderConfig{Visible: o.visible, Hidden: o.hidden, Tied: o.tied, Seed: o.seed}
		if o.ckpt != "" {
			return phideep.ServeAutoencoderCheckpoint(cfg, o.ckpt)
		}
		return phideep.ServeAutoencoder(cfg, nil), nil
	case "rbm":
		cfg := phideep.RBMConfig{Visible: o.visible, Hidden: o.hidden, GaussianVisible: o.gaussian, Seed: o.seed}
		if o.ckpt != "" {
			return phideep.ServeRBMCheckpoint(cfg, o.ckpt)
		}
		return phideep.ServeRBM(cfg, nil), nil
	case "mlp":
		layers, err := parseSizes(o.sizes)
		if err != nil {
			return nil, err
		}
		cfg := phideep.MLPConfig{Sizes: layers, Seed: o.seed}
		if o.ckpt != "" {
			return phideep.ServeMLPCheckpoint(cfg, o.ckpt)
		}
		return phideep.ServeMLP(cfg, nil), nil
	case "convnet":
		conv := o.conv
		conv.Seed = o.seed
		if err := conv.Validate(); err != nil {
			return nil, err
		}
		if o.ckpt != "" {
			return phideep.ServeConvnetCheckpoint(conv, o.ckpt)
		}
		return phideep.ServeConvnet(conv, nil), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want ae, rbm, mlp or convnet)", o.modelKind)
	}
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, errors.New("mlp requires -sizes (e.g. -sizes 256,64,10)")
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -sizes entry %q: %w", p, err)
		}
		sizes[i] = n
	}
	return sizes, nil
}

func pickLevel(name string) (phideep.OptLevel, error) {
	switch name {
	case "baseline":
		return phideep.Baseline, nil
	case "openmp":
		return phideep.OpenMP, nil
	case "mkl":
		return phideep.OpenMPMKL, nil
	case "improved":
		return phideep.Improved, nil
	default:
		return 0, fmt.Errorf("unknown level %q", name)
	}
}

func pickArch(name string) (*phideep.Arch, error) {
	switch name {
	case "phi":
		return phideep.XeonPhi5110P(), nil
	case "cpu1":
		return phideep.XeonE5620Core(), nil
	case "cpu4":
		return phideep.XeonE5620Full(), nil
	case "cpu8":
		return phideep.XeonE5620Dual(), nil
	case "matlab":
		return phideep.MatlabR2012a(), nil
	default:
		return nil, fmt.Errorf("unknown arch %q", name)
	}
}

func pickPolicy(name string) (phideep.ServePolicy, error) {
	switch name {
	case "block":
		return phideep.ServeBlock, nil
	case "shed":
		return phideep.ServeShed, nil
	case "degrade":
		return phideep.ServeDegrade, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want block, shed or degrade)", name)
	}
}

func pickPrecision(name string) (phideep.Precision, error) {
	switch name {
	case "f64":
		return phideep.PrecisionF64, nil
	case "f32":
		return phideep.PrecisionF32, nil
	default:
		return 0, fmt.Errorf("unknown precision %q (want f64 or f32)", name)
	}
}

// newMux wires the serving endpoints. Split from run so the httptest suite
// can drive the exact production handler chain.
func newMux(srv *phideep.Server, start time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/encode", inferHandler(srv.Encode, false))
	mux.HandleFunc("/reconstruct", inferHandler(srv.Reconstruct, false))
	mux.HandleFunc("/predict", inferHandler(srv.Predict, true))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"batcher":  srv.Stats(),
			"registry": metrics.Default().Snapshot(),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m := srv.Model()
		st := srv.Stats()
		ops := make([]string, 0, 2)
		for _, op := range m.Ops() {
			ops = append(ops, op.String())
		}
		// Readiness: healthy and degraded still take traffic; draining and
		// down must be pulled from rotation.
		code := http.StatusOK
		if st.Health == phideep.ServeDraining.String() || st.Health == phideep.ServeDown.String() {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{
			"status":             st.Health,
			"model":              m.Kind(),
			"input_dim":          m.InputDim(),
			"ops":                ops,
			"workers_live":       st.WorkersLive,
			"workers_configured": st.WorkersConfigured,
			"restarts":           st.Restarts,
			"retired":            st.Retired,
			"uptime_seconds":     time.Since(start).Seconds(),
		})
	})
	return mux
}

type inferRequest struct {
	Input []float64 `json:"input"`
}

type inferResponse struct {
	Output []float64 `json:"output"`
	// Class is the argmax of Output, reported by /predict only.
	Class *int `json:"class,omitempty"`
}

// inferHandler adapts one Server method to the POST {"input":[...]} →
// {"output":[...]} JSON protocol. Admission failures map to HTTP status:
// shed → 429 Too Many Requests, closed/down → 503 Service Unavailable,
// deadline → 504 Gateway Timeout, worker fault → 500, bad input → 400.
func inferHandler(call func([]float64) ([]float64, error), classify bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
			return
		}
		var req inferRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		out, err := call(req.Input)
		if err != nil {
			writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
			return
		}
		resp := inferResponse{Output: out}
		if classify {
			c := argmax(out)
			resp.Class = &c
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func statusFor(err error) int {
	var wf *phideep.WorkerFaultError
	switch {
	case errors.Is(err, phideep.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, phideep.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, phideep.ErrServerDown), errors.Is(err, phideep.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &wf):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
