package main

import (
	"fmt"
	"io"
	"time"

	"phideep"
)

// The -tune-seed search axes: the platform's default kernel grid crossed
// with serving-plausible micro-batch sizes, pruned to a handful of full
// simulated evaluations. Small probe sizing keeps the pre-serve search in
// the seconds range; the predictor generalizes from there (DESIGN.md §13).
var tuneSeedBatches = []int{4, 8, 16, 32, 64}

const (
	tuneSeedTopK     = 6
	tuneSeedIters    = 24
	tuneSeedExamples = 512
)

// Bounds on the seeded flush deadline: one simulated batch time, clamped
// so a heavyweight model cannot seed a multi-second stall nor a tiny one
// a busy-loop deadline.
const (
	tuneSeedMinWait = 100 * time.Microsecond
	tuneSeedMaxWait = 20 * time.Millisecond
)

// applyTuneSeed runs the predictor-guided pruned search for the served
// model and writes the pick into the batcher knobs the user left at their
// defaults: MaxBatch from the fastest candidate's batch size, MaxWait from
// its per-batch simulated time. Explicit -max-batch/-max-wait always win.
func applyTuneSeed(w io.Writer, o *serveOptions, arch *phideep.Arch) error {
	if o.maxBatchSet && o.maxWaitSet {
		fmt.Fprintln(w, "phiserve: -tune-seed skipped: both -max-batch and -max-wait set explicitly")
		return nil
	}
	batch, wait, err := tuneSeedBatcher(o, arch)
	if err != nil {
		return fmt.Errorf("tune-seed: %w", err)
	}
	if !o.maxBatchSet {
		o.maxBatch = batch
	}
	if !o.maxWaitSet {
		o.maxWait = wait
	}
	fmt.Fprintf(w, "phiserve: tune-seed pick: batch %d, per-batch %v -> batch<=%d wait<=%v\n",
		batch, wait, o.maxBatch, o.maxWait)
	return nil
}

// tuneSeedBatcher maps the served model onto a training workload the
// calibrated predictor understands, runs the pruned search over the
// batch-crossed grid, and derives the batcher seeds from the winner. The
// forward pass dominates both training and serving cost per example, so
// the training-time ranking transfers to the micro-batcher.
func tuneSeedBatcher(o *serveOptions, arch *phideep.Arch) (int, time.Duration, error) {
	wl, err := tuneSeedWorkload(o, arch)
	if err != nil {
		return 0, 0, err
	}
	cands := phideep.TuneCrossBatches(phideep.TuneDefaultCandidates(arch), tuneSeedBatches)
	res, _, err := phideep.TunePrunedSearch(wl, cands, tuneSeedTopK)
	if err != nil {
		return 0, 0, err
	}
	best := res.Best
	batch := best.Batch
	if batch == 0 {
		batch = wl.DefaultBatch()
	}
	iters := phideep.TuneEffectiveIters(wl, best.Candidate)
	wait := time.Duration(best.SimSeconds / float64(iters) * float64(time.Second))
	if wait < tuneSeedMinWait {
		wait = tuneSeedMinWait
	}
	if wait > tuneSeedMaxWait {
		wait = tuneSeedMaxWait
	}
	return batch, wait, nil
}

// tuneSeedWorkload builds the stand-in training workload for the served
// model kind. The RBM shares the AE encoder's GEMM shapes, so the AE
// workload stands in for both.
func tuneSeedWorkload(o *serveOptions, arch *phideep.Arch) (phideep.TuneWorkload, error) {
	switch o.modelKind {
	case "ae", "rbm":
		return phideep.TuneAEWorkload{
			Arch:  arch,
			Model: phideep.AutoencoderConfig{Visible: o.visible, Hidden: o.hidden, Tied: o.tied},
			Batch: tuneSeedBatches[len(tuneSeedBatches)/2], Iterations: tuneSeedIters,
			DatasetExamples: tuneSeedExamples, Seed: o.seed,
		}, nil
	case "mlp":
		layers, err := parseSizes(o.sizes)
		if err != nil {
			return nil, err
		}
		return phideep.TuneMLPWorkload{
			Arch:  arch,
			Model: phideep.MLPConfig{Sizes: layers},
			Batch: tuneSeedBatches[len(tuneSeedBatches)/2], Iterations: tuneSeedIters,
			DatasetExamples: tuneSeedExamples, Seed: o.seed,
		}, nil
	case "convnet":
		conv := o.conv
		conv.Seed = o.seed
		if err := conv.Validate(); err != nil {
			return nil, err
		}
		return phideep.TuneConvWorkload{
			Arch: arch, Model: conv,
			Batch: tuneSeedBatches[len(tuneSeedBatches)/2], Iterations: tuneSeedIters,
			DatasetExamples: tuneSeedExamples, Seed: o.seed,
		}, nil
	default:
		return nil, fmt.Errorf("unknown model %q", o.modelKind)
	}
}
