package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"phideep"
)

// runLoadgen drives the in-process Server with `clients` closed-loop
// clients (each issues its next request the moment the previous one is
// answered) for `duration`, then prints a throughput and latency report.
// Closed-loop load is the natural probe for a micro-batcher: concurrency
// directly bounds the coalescing the batcher can achieve, so sweeping
// -clients against -max-wait maps the latency/throughput trade-off (see
// EXPERIMENTS.md). Under -fault-rate the report also separates the typed
// failure classes (deadline, worker fault, server down) and prints the
// health line, so a chaos run's degradation is visible at a glance.
func runLoadgen(w io.Writer, srv *phideep.Server, opName string, clients int, duration time.Duration, maxWait time.Duration, policyName string, seed uint64) error {
	if clients <= 0 {
		return fmt.Errorf("loadgen: need at least one client, got %d", clients)
	}
	call, opName, err := pickOp(srv, opName)
	if err != nil {
		return err
	}
	dim := srv.Model().InputDim()

	type clientResult struct {
		lats      []time.Duration
		sheds     int
		deadlines int
		faults    int
		down      int
		errs      int
	}
	results := make([]clientResult, clients)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(i)))
			x := make([]float64, dim)
			res := &results[i]
			for time.Now().Before(deadline) {
				// Perturb one coordinate per request: distinct inputs
				// without paying dim work per iteration.
				x[rng.Intn(dim)] = rng.Float64()
				t0 := time.Now()
				_, err := call(x)
				var wf *phideep.WorkerFaultError
				switch {
				case err == nil:
					res.lats = append(res.lats, time.Since(t0))
				case errors.Is(err, phideep.ErrOverloaded):
					res.sheds++
				case errors.Is(err, phideep.ErrDeadline):
					res.deadlines++
				case errors.Is(err, phideep.ErrServerDown):
					// Down is terminal (every replica retired): keep the
					// observation and stop instead of spinning on it.
					res.down++
					return
				case errors.As(err, &wf):
					res.faults++
				default:
					res.errs++
				}
			}
		}(i)
	}
	wg.Wait()

	var all []time.Duration
	sheds, deadlines, faults, down, errs := 0, 0, 0, 0, 0
	for _, r := range results {
		all = append(all, r.lats...)
		sheds += r.sheds
		deadlines += r.deadlines
		faults += r.faults
		down += r.down
		errs += r.errs
	}
	st := srv.Stats()
	if len(all) == 0 {
		return fmt.Errorf("loadgen: no request completed (%d shed, %d deadline, %d faulted, %d down, %d failed; health=%s)",
			sheds, deadlines, faults, down, errs, st.Health)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}

	fmt.Fprintf(w, "phiserve loadgen: op=%s clients=%d duration=%v max-wait=%v policy=%s precision=%s\n",
		opName, clients, duration, maxWait, policyName, st.Precision)
	fmt.Fprintf(w, "  requests: %d ok, %d shed, %d deadline, %d faulted, %d down, %d failed (%.1f req/s)\n",
		len(all), sheds, deadlines, faults, down, errs, float64(len(all))/duration.Seconds())
	fmt.Fprintf(w, "  latency:  mean=%v p50=%v p90=%v p99=%v max=%v\n",
		(sum / time.Duration(len(all))).Round(time.Microsecond),
		pct(all, 50).Round(time.Microsecond), pct(all, 90).Round(time.Microsecond),
		pct(all, 99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	fmt.Fprintf(w, "  overload: %d sheds, %d degrades (server-side admission counters)\n",
		st.Sheds, st.Degrades)
	fmt.Fprintf(w, "  batcher:  %d batches, avg size %.2f (%d full, %d deadline flushes)\n",
		st.Batches, st.AvgBatchSize, st.FlushFull, st.FlushDeadline)
	fmt.Fprintf(w, "  health:   %s (%d/%d workers live), %d fault batches, %d retries, %d redispatches, %d restarts, %d retired\n",
		st.Health, st.WorkersLive, st.WorkersConfigured,
		st.FaultBatches, st.FaultRetries, st.Redispatches, st.Restarts, st.Retired)
	if st.Adaptive {
		fmt.Fprintf(w, "  adaptive: %d adjustments, effective batch<=%d wait<=%v\n",
			st.Adjustments, st.CurMaxBatch, st.CurMaxWait)
	}
	return nil
}

// pickOp resolves the loadgen operation: the named one, or the model's
// first supported operation when -op is empty.
func pickOp(srv *phideep.Server, name string) (func([]float64) ([]float64, error), string, error) {
	if name == "" {
		ops := srv.Model().Ops()
		if len(ops) == 0 {
			return nil, "", fmt.Errorf("loadgen: model supports no operations")
		}
		name = ops[0].String()
	}
	switch name {
	case "encode":
		return srv.Encode, name, nil
	case "reconstruct":
		return srv.Reconstruct, name, nil
	case "predict":
		return srv.Predict, name, nil
	default:
		return nil, "", fmt.Errorf("loadgen: unknown op %q (want encode, reconstruct or predict)", name)
	}
}

// pct returns the p-th percentile of sorted latencies (nearest-rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}
