package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"phideep"
	"phideep/internal/autoencoder"
	"phideep/internal/mlp"
)

// newAEServer builds a small autoencoder server at Baseline (whose device
// path is bit-identical to the host reference) plus the host params for
// comparison, and returns an httptest server over the production mux.
func newAEServer(t *testing.T) (*httptest.Server, *autoencoder.Params) {
	t.Helper()
	cfg := phideep.AutoencoderConfig{Visible: 12, Hidden: 5, Seed: 7}
	p := autoencoder.NewParams(cfg, cfg.Seed)
	srv, err := phideep.NewServer(phideep.ServeAutoencoder(cfg, p), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(newMux(srv, time.Now()))
	t.Cleanup(ts.Close)
	return ts, p
}

func postInfer(t *testing.T, url string, input []float64) (*http.Response, inferResponse) {
	t.Helper()
	body, err := json.Marshal(inferRequest{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out inferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestEncodeEndpoint(t *testing.T) {
	ts, p := newAEServer(t)
	x := make([]float64, 12)
	for i := range x {
		x[i] = 0.1 * float64(i)
	}
	resp, got := postInfer(t, ts.URL+"/encode", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := make([]float64, 5)
	p.Encode(x, want)
	if len(got.Output) != len(want) {
		t.Fatalf("output length %d, want %d", len(got.Output), len(want))
	}
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v (bitwise at Baseline)", i, got.Output[i], want[i])
		}
	}
	if got.Class != nil {
		t.Fatalf("encode response has class %d; classes belong to /predict", *got.Class)
	}
}

func TestReconstructEndpoint(t *testing.T) {
	ts, p := newAEServer(t)
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i%3) * 0.25
	}
	resp, got := postInfer(t, ts.URL+"/reconstruct", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := make([]float64, 12)
	p.Reconstruct(x, want, false)
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v", i, got.Output[i], want[i])
		}
	}
}

func TestPredictEndpoint(t *testing.T) {
	cfg := phideep.MLPConfig{Sizes: []int{8, 6, 4}, Seed: 3}
	p := mlp.NewParams(cfg, cfg.Seed)
	srv, err := phideep.NewServer(phideep.ServeMLP(cfg, p), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv, time.Now()))
	defer ts.Close()

	x := []float64{0.9, 0.1, 0.4, 0.2, 0.8, 0.3, 0.6, 0.5}
	resp, got := postInfer(t, ts.URL+"/predict", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := p.PredictProbs(cfg, x)
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("probs[%d] = %v, want %v", i, got.Output[i], want[i])
		}
	}
	var sum float64
	for _, v := range got.Output {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if got.Class == nil || *got.Class != argmax(want) {
		t.Fatalf("class = %v, want %d", got.Class, argmax(want))
	}

	// The MLP server must reject autoencoder operations.
	resp, _ = postInfer(t, ts.URL+"/encode", x)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("encode on mlp: status %d, want 400", resp.StatusCode)
	}
}

func TestEndpointErrors(t *testing.T) {
	ts, _ := newAEServer(t)

	// Unsupported op for the model.
	resp, _ := postInfer(t, ts.URL+"/predict", make([]float64, 12))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("predict on ae: status %d, want 400", resp.StatusCode)
	}
	// Wrong input dimension.
	resp, _ = postInfer(t, ts.URL+"/encode", make([]float64, 3))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input: status %d, want 400", resp.StatusCode)
	}
	// Malformed body.
	r, err := http.Post(ts.URL+"/encode", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", r.StatusCode)
	}
	// Wrong method.
	r, err = http.Get(ts.URL + "/encode")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", r.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newAEServer(t)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	var h struct {
		Status            string   `json:"status"`
		Model             string   `json:"model"`
		InputDim          int      `json:"input_dim"`
		Ops               []string `json:"ops"`
		WorkersLive       int      `json:"workers_live"`
		WorkersConfigured int      `json:"workers_configured"`
	}
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "healthy" || h.Model != "autoencoder" || h.InputDim != 12 {
		t.Fatalf("healthz = %+v", h)
	}
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %v, want encode+reconstruct", h.Ops)
	}
	if h.WorkersLive != h.WorkersConfigured || h.WorkersLive < 1 {
		t.Fatalf("healthz workers = %d/%d, want all live", h.WorkersLive, h.WorkersConfigured)
	}
}

// TestHealthzDraining checks the readiness flip: a draining server must
// answer 503 so a load balancer pulls it from rotation before shutdown.
func TestHealthzDraining(t *testing.T) {
	cfg := phideep.AutoencoderConfig{Visible: 12, Hidden: 5, Seed: 7}
	srv, err := phideep.NewServer(phideep.ServeAutoencoder(cfg, nil), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(newMux(srv, time.Now()))
	t.Cleanup(ts.Close)

	if err := srv.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", r.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("status = %q, want draining", h.Status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newAEServer(t)
	// Generate one served request so the batcher counters are non-zero.
	resp, _ := postInfer(t, ts.URL+"/encode", make([]float64, 12))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	var m struct {
		Batcher phideep.BatcherStats `json:"batcher"`
	}
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Batcher.Requests < 1 || m.Batcher.Completed < 1 {
		t.Fatalf("batcher stats = %+v, want at least one completed request", m.Batcher)
	}
}

func TestStatusFor(t *testing.T) {
	if got := statusFor(phideep.ErrOverloaded); got != http.StatusTooManyRequests {
		t.Fatalf("overloaded -> %d, want 429", got)
	}
	if got := statusFor(phideep.ErrServerClosed); got != http.StatusServiceUnavailable {
		t.Fatalf("closed -> %d, want 503", got)
	}
	if got := statusFor(phideep.ErrServerDown); got != http.StatusServiceUnavailable {
		t.Fatalf("down -> %d, want 503", got)
	}
	if got := statusFor(phideep.ErrDeadline); got != http.StatusGatewayTimeout {
		t.Fatalf("deadline -> %d, want 504", got)
	}
	wf := &phideep.WorkerFaultError{Worker: 1, Restarts: 3, Cause: errors.New("boom")}
	if got := statusFor(fmt.Errorf("request: %w", wf)); got != http.StatusInternalServerError {
		t.Fatalf("worker fault -> %d, want 500", got)
	}
}

// TestDrainAndShutdown exercises the graceful exit end to end at the
// httptest level: queued requests complete with correct answers, the
// batcher reports draining, and post-drain calls are refused.
func TestDrainAndShutdown(t *testing.T) {
	cfg := phideep.AutoencoderConfig{Visible: 12, Hidden: 5, Seed: 7}
	p := autoencoder.NewParams(cfg, cfg.Seed)
	srv, err := phideep.NewServer(phideep.ServeAutoencoder(cfg, p), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(newMux(srv, time.Now()))
	t.Cleanup(ts.Close)

	// Two requests park in the queue: MaxBatch 4 never fills and the hour
	// deadline never fires, so only the drain can flush them.
	x := make([]float64, 12)
	for i := range x {
		x[i] = 0.05 * float64(i)
	}
	type reply struct {
		status int
		out    []float64
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, got := postInfer(t, ts.URL+"/encode", x)
			replies <- reply{resp.StatusCode, got.Output}
		}()
	}
	waitFor(t, func() bool { return srv.Stats().QueueDepth == 2 })

	var log bytes.Buffer
	if err := drainAndShutdown(&log, srv, ts.Config, 5*time.Second); err != nil {
		t.Fatalf("drainAndShutdown: %v", err)
	}

	want := make([]float64, 5)
	p.Encode(x, want)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("queued request: status %d after drain, want 200", r.status)
		}
		for j := range want {
			if r.out[j] != want[j] {
				t.Fatalf("drained output[%d] = %v, want %v", j, r.out[j], want[j])
			}
		}
	}
	st := srv.Stats()
	if st.Health != "draining" || st.Completed != 2 || st.QueueDepth != 0 {
		t.Fatalf("post-drain stats: health=%s completed=%d queued=%d", st.Health, st.Completed, st.QueueDepth)
	}
	if _, err := srv.Encode(x); err != phideep.ErrServerClosed {
		t.Fatalf("post-drain Encode: %v, want ErrServerClosed", err)
	}
	if !bytes.Contains(log.Bytes(), []byte("drained")) {
		t.Fatalf("drain log missing summary: %q", log.String())
	}
}

// waitFor polls cond at microsecond granularity with a 5s cap.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestLoadgenFaultReport runs the in-process load generator against a
// fault-injected server and checks the report carries the health line and
// no request falls outside the typed outcome classes.
func TestLoadgenFaultReport(t *testing.T) {
	cfg := phideep.AutoencoderConfig{Visible: 12, Hidden: 5, Seed: 7}
	srv, err := phideep.NewServer(phideep.ServeAutoencoder(cfg, nil), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: 200 * time.Microsecond,
		Faults: phideep.FaultConfig{Rate: 0.05, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	if err := runLoadgen(&out, srv, "", 4, 300*time.Millisecond, 200*time.Microsecond, "block", 1); err != nil {
		t.Fatalf("runLoadgen: %v", err)
	}
	report := out.String()
	for _, want := range []string{"health:", "fault batches", "0 failed"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("loadgen report missing %q:\n%s", want, report)
		}
	}
}

func TestHealthzAfterCheckpointExport(t *testing.T) {
	// Round-trip the phitrain -export container: write params through the
	// serve loader path and confirm the served model answers.
	cfg := phideep.AutoencoderConfig{Visible: 6, Hidden: 3, Seed: 11}
	p := autoencoder.NewParams(cfg, cfg.Seed)
	var blob bytes.Buffer
	if err := p.Save(&blob); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.phck"
	if err := phideep.WriteCheckpoint(path, &phideep.Checkpoint{Step: 42, Model: blob.Bytes()}); err != nil {
		t.Fatal(err)
	}
	m, err := phideep.ServeAutoencoderCheckpoint(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := phideep.NewServer(m, phideep.ServeConfig{Level: phideep.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv, time.Now()))
	defer ts.Close()

	x := []float64{0.2, 0.4, 0.6, 0.8, 1, 0}
	resp, got := postInfer(t, ts.URL+"/encode", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := make([]float64, 3)
	p.Encode(x, want)
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v", i, got.Output[i], want[i])
		}
	}
}
