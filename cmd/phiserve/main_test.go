package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"phideep"
	"phideep/internal/autoencoder"
	"phideep/internal/mlp"
)

// newAEServer builds a small autoencoder server at Baseline (whose device
// path is bit-identical to the host reference) plus the host params for
// comparison, and returns an httptest server over the production mux.
func newAEServer(t *testing.T) (*httptest.Server, *autoencoder.Params) {
	t.Helper()
	cfg := phideep.AutoencoderConfig{Visible: 12, Hidden: 5, Seed: 7}
	p := autoencoder.NewParams(cfg, cfg.Seed)
	srv, err := phideep.NewServer(phideep.ServeAutoencoder(cfg, p), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(newMux(srv, time.Now()))
	t.Cleanup(ts.Close)
	return ts, p
}

func postInfer(t *testing.T, url string, input []float64) (*http.Response, inferResponse) {
	t.Helper()
	body, err := json.Marshal(inferRequest{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out inferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestEncodeEndpoint(t *testing.T) {
	ts, p := newAEServer(t)
	x := make([]float64, 12)
	for i := range x {
		x[i] = 0.1 * float64(i)
	}
	resp, got := postInfer(t, ts.URL+"/encode", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := make([]float64, 5)
	p.Encode(x, want)
	if len(got.Output) != len(want) {
		t.Fatalf("output length %d, want %d", len(got.Output), len(want))
	}
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v (bitwise at Baseline)", i, got.Output[i], want[i])
		}
	}
	if got.Class != nil {
		t.Fatalf("encode response has class %d; classes belong to /predict", *got.Class)
	}
}

func TestReconstructEndpoint(t *testing.T) {
	ts, p := newAEServer(t)
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i%3) * 0.25
	}
	resp, got := postInfer(t, ts.URL+"/reconstruct", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := make([]float64, 12)
	p.Reconstruct(x, want, false)
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v", i, got.Output[i], want[i])
		}
	}
}

func TestPredictEndpoint(t *testing.T) {
	cfg := phideep.MLPConfig{Sizes: []int{8, 6, 4}, Seed: 3}
	p := mlp.NewParams(cfg, cfg.Seed)
	srv, err := phideep.NewServer(phideep.ServeMLP(cfg, p), phideep.ServeConfig{
		Level: phideep.Baseline, MaxBatch: 4, MaxWait: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv, time.Now()))
	defer ts.Close()

	x := []float64{0.9, 0.1, 0.4, 0.2, 0.8, 0.3, 0.6, 0.5}
	resp, got := postInfer(t, ts.URL+"/predict", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := p.PredictProbs(cfg, x)
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("probs[%d] = %v, want %v", i, got.Output[i], want[i])
		}
	}
	var sum float64
	for _, v := range got.Output {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if got.Class == nil || *got.Class != argmax(want) {
		t.Fatalf("class = %v, want %d", got.Class, argmax(want))
	}

	// The MLP server must reject autoencoder operations.
	resp, _ = postInfer(t, ts.URL+"/encode", x)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("encode on mlp: status %d, want 400", resp.StatusCode)
	}
}

func TestEndpointErrors(t *testing.T) {
	ts, _ := newAEServer(t)

	// Unsupported op for the model.
	resp, _ := postInfer(t, ts.URL+"/predict", make([]float64, 12))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("predict on ae: status %d, want 400", resp.StatusCode)
	}
	// Wrong input dimension.
	resp, _ = postInfer(t, ts.URL+"/encode", make([]float64, 3))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input: status %d, want 400", resp.StatusCode)
	}
	// Malformed body.
	r, err := http.Post(ts.URL+"/encode", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", r.StatusCode)
	}
	// Wrong method.
	r, err = http.Get(ts.URL + "/encode")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", r.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newAEServer(t)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	var h struct {
		Status   string   `json:"status"`
		Model    string   `json:"model"`
		InputDim int      `json:"input_dim"`
		Ops      []string `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Model != "autoencoder" || h.InputDim != 12 {
		t.Fatalf("healthz = %+v", h)
	}
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %v, want encode+reconstruct", h.Ops)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newAEServer(t)
	// Generate one served request so the batcher counters are non-zero.
	resp, _ := postInfer(t, ts.URL+"/encode", make([]float64, 12))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	var m struct {
		Batcher phideep.BatcherStats `json:"batcher"`
	}
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Batcher.Requests < 1 || m.Batcher.Completed < 1 {
		t.Fatalf("batcher stats = %+v, want at least one completed request", m.Batcher)
	}
}

func TestStatusFor(t *testing.T) {
	if got := statusFor(phideep.ErrOverloaded); got != http.StatusTooManyRequests {
		t.Fatalf("overloaded -> %d, want 429", got)
	}
	if got := statusFor(phideep.ErrServerClosed); got != http.StatusServiceUnavailable {
		t.Fatalf("closed -> %d, want 503", got)
	}
}

func TestHealthzAfterCheckpointExport(t *testing.T) {
	// Round-trip the phitrain -export container: write params through the
	// serve loader path and confirm the served model answers.
	cfg := phideep.AutoencoderConfig{Visible: 6, Hidden: 3, Seed: 11}
	p := autoencoder.NewParams(cfg, cfg.Seed)
	var blob bytes.Buffer
	if err := p.Save(&blob); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.phck"
	if err := phideep.WriteCheckpoint(path, &phideep.Checkpoint{Step: 42, Model: blob.Bytes()}); err != nil {
		t.Fatal(err)
	}
	m, err := phideep.ServeAutoencoderCheckpoint(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := phideep.NewServer(m, phideep.ServeConfig{Level: phideep.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(newMux(srv, time.Now()))
	defer ts.Close()

	x := []float64{0.2, 0.4, 0.6, 0.8, 1, 0}
	resp, got := postInfer(t, ts.URL+"/encode", x)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := make([]float64, 3)
	p.Encode(x, want)
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v", i, got.Output[i], want[i])
		}
	}
}
