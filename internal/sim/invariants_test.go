package sim

import (
	"testing"
	"testing/quick"

	"phideep/internal/kernels"
)

// TestOpTimePositiveAndFinite property-checks the cost model across random
// op descriptors on every platform: simulated times are always positive and
// finite, and more cores never make a parallel op slower.
func TestOpTimePositiveAndFinite(t *testing.T) {
	archs := []*Arch{XeonPhi5110P(), XeonE5620Core(), XeonE5620Full(), XeonE5620Dual(), MatlabR2012a(), TeslaK20X()}
	f := func(archIdx uint8, kindRaw, lvlRaw uint8, m, k, n uint16, elems uint32, vector bool) bool {
		a := archs[int(archIdx)%len(archs)]
		op := Op{
			Kind:   OpKind(int(kindRaw) % 4),
			M:      int(m)%2048 + 1,
			K:      int(k)%2048 + 1,
			N:      int(n)%2048 + 1,
			Elems:  int(elems)%1_000_000 + 1,
			Level:  kernels.Levels[int(lvlRaw)%len(kernels.Levels)],
			Vector: vector,
		}
		tm := a.OpTime(op)
		if !(tm > 0) || tm != tm /* NaN */ {
			return false
		}
		if op.Level.IsParallel() && a.Cores >= 2 {
			half := op
			half.Cores = a.Cores / 2
			fullT := a.OpTime(op)
			halfT := a.OpTime(half)
			// Allow equality (bandwidth-saturated regimes) but halving
			// the cores must never speed a compute/memory-bound op by
			// more than the sync-cost difference.
			slack := a.SyncCost(op.Cores*a.ThreadsPerCore) + a.SyncCost(half.Cores*a.ThreadsPerCore) + 1e-12
			if halfT+slack < fullT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTransferTimeMonotone property-checks the PCIe model.
func TestTransferTimeMonotone(t *testing.T) {
	phi := XeonPhi5110P()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return phi.TransferTime(x) <= phi.TransferTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSyncCostMonotoneInThreads property-checks the fork/join model.
func TestSyncCostMonotoneInThreads(t *testing.T) {
	for _, a := range []*Arch{XeonPhi5110P(), XeonE5620Dual(), TeslaK20X()} {
		prev := 0.0
		for threads := 1; threads <= 256; threads *= 2 {
			c := a.SyncCost(threads)
			if c < prev {
				t.Fatalf("%s: sync cost fell from %g to %g at %d threads", a.Name, prev, c, threads)
			}
			prev = c
		}
	}
}
