package sim

import (
	"math"
	"testing"
	"testing/quick"

	"phideep/internal/kernels"
)

func TestClockMonotone(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(0)
	if c.Now() != 1.5 {
		t.Fatalf("Now %g", c.Now())
	}
	c.AdvanceTo(1.0) // earlier: no-op
	if c.Now() != 1.5 {
		t.Fatal("AdvanceTo went backwards")
	}
	c.AdvanceTo(2.0)
	if c.Now() != 2.0 {
		t.Fatal("AdvanceTo failed")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance should panic")
		}
	}()
	c.Advance(-1)
}

func TestTimelineScheduling(t *testing.T) {
	tl := Timeline{Name: "test"}
	s, e := tl.Schedule(0, 2)
	if s != 0 || e != 2 {
		t.Fatalf("first item [%g, %g)", s, e)
	}
	// Ready before engine free: starts when engine frees.
	s, e = tl.Schedule(1, 3)
	if s != 2 || e != 5 {
		t.Fatalf("second item [%g, %g)", s, e)
	}
	// Ready after engine free: idle gap.
	s, e = tl.Schedule(10, 1)
	if s != 10 || e != 11 {
		t.Fatalf("third item [%g, %g)", s, e)
	}
	if tl.BusyTotal() != 6 {
		t.Fatalf("busy total %g", tl.BusyTotal())
	}
	if tl.BusyUntil() != 11 {
		t.Fatalf("busy until %g", tl.BusyUntil())
	}
	if tl.Items() != 3 {
		t.Fatalf("items %d", tl.Items())
	}
	tl.Reset()
	if tl.BusyUntil() != 0 || tl.BusyTotal() != 0 || tl.Items() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTimelineScheduleGroup(t *testing.T) {
	tl := Timeline{Name: "g"}
	tl.Schedule(0, 5)
	// Three concurrent items: end = free(5) + max(duration, ready-shift).
	end := tl.ScheduleGroup([]float64{0, 0, 7}, []float64{1, 3, 1})
	if end != 8 { // item 3 ready at 7, runs 1 → ends 8 (> 5+3)
		t.Fatalf("group end %g", end)
	}
	if tl.BusyTotal() != 5+1+3+1 {
		t.Fatalf("group busy total %g", tl.BusyTotal())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched group lengths should panic")
		}
	}()
	tl.ScheduleGroup([]float64{0}, []float64{1, 2})
}

func TestTimelineStallAccounting(t *testing.T) {
	tl := Timeline{Name: "transfer"}
	tl.Schedule(0, 2)
	tl.Stall(3) // retry backoff: engine blocked but not busy
	s, e := tl.Schedule(0, 1)
	if s != 5 || e != 6 {
		t.Fatalf("post-stall item [%g, %g), want [5, 6)", s, e)
	}
	if tl.StallTotal() != 3 {
		t.Fatalf("stall total %g", tl.StallTotal())
	}
	if tl.BusyTotal() != 3 { // 2 + 1; the stall is not busy time
		t.Fatalf("busy total %g", tl.BusyTotal())
	}
	tl.Reset()
	if tl.StallTotal() != 0 {
		t.Fatal("Reset must clear the stall total")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative stall should panic")
		}
	}()
	tl.Stall(-1)
}

func TestTimelineNegativeDurationPanics(t *testing.T) {
	tl := Timeline{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tl.Schedule(0, -1)
}

func TestOpTimeLadderOrderingGemm(t *testing.T) {
	phi := XeonPhi5110P()
	op := func(lvl kernels.Level, vector bool) Op {
		return Op{Kind: OpGemm, M: 1000, K: 1024, N: 4096, Level: lvl, Vector: vector}
	}
	tNaive := phi.OpTime(op(kernels.Naive, false))
	tPar := phi.OpTime(op(kernels.Parallel, false))
	tMKL := phi.OpTime(op(kernels.ParallelBlocked, true))
	if !(tNaive > tPar && tPar > tMKL) {
		t.Fatalf("ladder not monotone: naive=%g parallel=%g mkl=%g", tNaive, tPar, tMKL)
	}
	// The full ladder spans two-plus orders of magnitude, as in Table I.
	if tNaive/tMKL < 50 {
		t.Fatalf("naive/mkl ratio only %g", tNaive/tMKL)
	}
}

func TestOpTimeMonotoneInWork(t *testing.T) {
	phi := XeonPhi5110P()
	f := func(scale uint8) bool {
		k := int(scale)%64 + 1
		small := phi.OpTime(Op{Kind: OpGemm, M: 100, K: 64 * k, N: 256, Level: kernels.ParallelBlocked, Vector: true})
		big := phi.OpTime(Op{Kind: OpGemm, M: 200, K: 64 * k, N: 256, Level: kernels.ParallelBlocked, Vector: true})
		return big > small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFewerCoresSlower(t *testing.T) {
	phi := XeonPhi5110P()
	op60 := Op{Kind: OpGemm, M: 10000, K: 1024, N: 512, Level: kernels.ParallelBlocked, Vector: true, Cores: 60}
	op30 := op60
	op30.Cores = 30
	t60, t30 := phi.OpTime(op60), phi.OpTime(op30)
	if t30 <= t60 {
		t.Fatalf("30 cores (%g) not slower than 60 (%g)", t30, t60)
	}
	// Sub-linear scaling (sync + ramp): doubling cores buys < 2x.
	if t30/t60 >= 2 {
		t.Fatalf("core scaling superlinear: %g", t30/t60)
	}
}

func TestSyncCostChargedOnceWhenFused(t *testing.T) {
	phi := XeonPhi5110P()
	op := Op{Kind: OpElem, Elems: 1000, FlopsPerElem: 1, Level: kernels.Parallel}
	fused := op
	fused.Fused = true
	if phi.OpTime(op)-phi.OpTime(fused) <= 0 {
		t.Fatal("fused op not cheaper")
	}
	diff := phi.OpTime(op) - phi.OpTime(fused)
	want := phi.SyncCost(60 * 4)
	if math.Abs(diff-want) > 1e-12 {
		t.Fatalf("fusion saving %g, want sync cost %g", diff, want)
	}
}

func TestSequentialLevelsUseOneCore(t *testing.T) {
	phi := XeonPhi5110P()
	op := Op{Kind: OpGemm, M: 100, K: 100, N: 100, Level: kernels.Naive, Cores: 60}
	// Cores request must be ignored for sequential levels.
	same := Op{Kind: OpGemm, M: 100, K: 100, N: 100, Level: kernels.Naive, Cores: 1}
	if phi.OpTime(op) != phi.OpTime(same) {
		t.Fatal("sequential level affected by core count")
	}
	if phi.SyncCost(1) != 0 {
		t.Fatal("single-thread sync cost must be zero")
	}
}

func TestTransferTime(t *testing.T) {
	phi := XeonPhi5110P()
	small := phi.TransferTime(8)
	if small < phi.PCIeLatency {
		t.Fatal("latency not charged")
	}
	gb := int64(1) << 30
	big := phi.TransferTime(gb)
	wantBW := float64(gb) / phi.PCIeBW
	if big < wantBW || big > wantBW+2*phi.PCIeLatency {
		t.Fatalf("1 GiB transfer %g, bandwidth component %g", big, wantBW)
	}
	host := XeonE5620Core()
	if host.TransferTime(gb) != 0 {
		t.Fatal("host arch must not charge PCIe time")
	}
}

func TestPaperTransferCalibration(t *testing.T) {
	// §IV.A measures 13 s of transfer against 68 s of training for
	// 10,000×4096-sample chunks, i.e. transfers are ≈16% of the
	// unoverlapped total. With the calibrated effective goodput, one
	// 327 MB chunk should take a few hundred milliseconds — large enough
	// to matter (double-digit share) and small enough to hide behind a
	// chunk's compute.
	phi := XeonPhi5110P()
	chunk := phi.TransferTime(10000 * 4096 * 8)
	if chunk < 0.1 || chunk > 1.0 {
		t.Fatalf("chunk transfer %g s outside plausible range", chunk)
	}
}

func TestMatlabOverheadCharged(t *testing.T) {
	matlab := MatlabR2012a()
	host := XeonE5620Full()
	op := Op{Kind: OpElem, Elems: 10, FlopsPerElem: 1, Level: kernels.ParallelBlocked, Vector: true}
	if matlab.OpTime(op)-host.OpTime(op) < matlab.PerOpOverhead/2 {
		t.Fatal("Matlab per-op overhead not visible on small ops")
	}
}

func TestIssueUtilSingleThreadPenaltyOnPhi(t *testing.T) {
	phi := XeonPhi5110P()
	// The in-order Phi core needs 2 threads to fill its pipeline.
	one := phi.ScalarPeak(1, 1)
	two := phi.ScalarPeak(1, 2)
	if math.Abs(two/one-2) > 1e-9 {
		t.Fatalf("expected 2x issue penalty, got %g", two/one)
	}
	xeon := XeonE5620Core()
	if xeon.ScalarPeak(1, 1) != xeon.ClockHz*xeon.ScalarFPC {
		t.Fatal("out-of-order Xeon core should not be issue-penalized")
	}
}

func TestVectorPeaks(t *testing.T) {
	phi := XeonPhi5110P()
	peak := phi.VectorPeak(60, 4)
	// 60 cores × 1.053 GHz × 8 lanes × 2 (FMA) ≈ 1.01 TFLOP/s.
	if peak < 0.95e12 || peak > 1.1e12 {
		t.Fatalf("Phi DP peak %g", peak)
	}
	xeon := XeonE5620Full()
	if xeon.VectorPeak(4, 2) > 0.1e12 {
		t.Fatal("Xeon peak implausibly high")
	}
}

func TestOpFlopsAndBytes(t *testing.T) {
	g := Op{Kind: OpGemm, M: 2, K: 3, N: 4, Level: kernels.Naive}
	if g.Flops() != 2*2*3*4 {
		t.Fatalf("gemm flops %g", g.Flops())
	}
	e := Op{Kind: OpElem, Elems: 10, FlopsPerElem: 3, BytesPerElem: 24}
	if e.Flops() != 30 || e.Bytes() != 240 {
		t.Fatalf("elem flops %g bytes %g", e.Flops(), e.Bytes())
	}
	// Defaults.
	d := Op{Kind: OpElem, Elems: 10}
	if d.Flops() != 10 || d.Bytes() != 160 {
		t.Fatalf("elem defaults flops %g bytes %g", d.Flops(), d.Bytes())
	}
	// Naive gemm charges more traffic than blocked.
	naive := Op{Kind: OpGemm, M: 10, K: 10, N: 10, Level: kernels.Naive}
	blocked := Op{Kind: OpGemm, M: 10, K: 10, N: 10, Level: kernels.ParallelBlocked}
	if naive.Bytes() <= blocked.Bytes() {
		t.Fatal("naive reuse model wrong")
	}
}

func TestGemmEffRampGrowsWithSize(t *testing.T) {
	phi := XeonPhi5110P()
	smallOp := Op{Kind: OpGemm, M: 200, K: 1024, N: 4096, Level: kernels.ParallelBlocked, Vector: true}
	bigOp := Op{Kind: OpGemm, M: 10000, K: 1024, N: 4096, Level: kernels.ParallelBlocked, Vector: true}
	smallRate := phi.GemmRate(smallOp)
	bigRate := phi.GemmRate(bigOp)
	if bigRate <= smallRate {
		t.Fatalf("efficiency ramp missing: small %g big %g", smallRate, bigRate)
	}
	// Big multiplies approach the calibrated asymptote.
	asym := phi.GemmEffVector * phi.VectorPeak(60, 4)
	if bigRate < 0.8*asym {
		t.Fatalf("big rate %g below 80%% of asymptote %g", bigRate, asym)
	}
}

func TestOpKindAndArchStrings(t *testing.T) {
	for _, k := range []OpKind{OpGemm, OpElem, OpReduce, OpSample} {
		if k.String() == "" {
			t.Fatal("empty OpKind name")
		}
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("unknown kind formatting")
	}
	for _, a := range []*Arch{XeonPhi5110P(), XeonE5620Core(), XeonE5620Full(), MatlabR2012a()} {
		if a.Name == "" {
			t.Fatal("unnamed arch")
		}
	}
}
