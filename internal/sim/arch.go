// Package sim models the execution time of phideep kernels on the machines
// of the paper: the Intel Xeon Phi 5110P coprocessor, a single Intel Xeon
// E5620 core, the full E5620 host chip, and the paper's Matlab baseline.
//
// The model is a roofline with three extra terms the paper's findings hinge
// on: (1) a fork/join synchronization cost per parallel region, so that
// fine-grained loops lose to synchronization (§IV.B.2 and the "Improved
// OpenMP+MKL" Table I row); (2) a GEMM efficiency that ramps with problem
// size, so small networks do not benefit from the coprocessor (Fig. 7's
// "difference is small when the network size is small"); and (3) a PCIe
// transfer cost with latency + bandwidth, so the loading-thread overlap of
// Fig. 5 matters (§IV.A's "13 s transfer vs 68 s compute").
//
// Constants are calibrated so the Table I ladder reproduces the paper's
// 16042 s → 892 s → 97 s → 53 s (60 cores) and ≈197× (30 cores) shape; see
// DESIGN.md §6 and the calibration tests in this package.
package sim

// Arch describes one execution platform. All rates are double precision.
type Arch struct {
	Name string

	// Cores is the number of physical cores; ThreadsPerCore the hardware
	// threads each can run (4 on the Phi, 2 with Hyper-Threading on the
	// Xeon).
	Cores          int
	ThreadsPerCore int

	// ClockHz is the core frequency.
	ClockHz float64

	// VectorDoubles is the SIMD width in float64 lanes (8 for the Phi's
	// 512-bit VPU, 2 for the Xeon's 128-bit SSE).
	VectorDoubles int
	// FMAFactor is 2 when a fused (or dual-ported) multiply-add retires
	// both flops per lane per cycle, else 1.
	FMAFactor int

	// ScalarFPC is the scalar flops/cycle/core achieved with a fully fed
	// pipeline.
	ScalarFPC float64
	// MinThreadsFullIssue is the hardware threads per core needed to keep
	// the pipeline full (2 on the in-order Phi; 1 on the out-of-order
	// Xeon). Fewer threads scale issue proportionally — this is why the
	// paper's Table I baseline, a single Phi thread, is so slow.
	MinThreadsFullIssue int

	// MemBW is aggregate memory bandwidth in bytes/s; PerCoreMemBW caps
	// what one core can draw.
	MemBW        float64
	PerCoreMemBW float64

	// GemmEffVector is the asymptotic fraction of vector peak the
	// blocked+vectorized GEMM ("MKL") reaches; GemmWorkHalf is the flop
	// count at which half of that efficiency is reached (the ramp that
	// penalizes small networks).
	GemmEffVector float64
	GemmWorkHalf  float64

	// SyncBase/SyncPerThread/SyncQuad give the fork/join cost of one
	// parallel region in seconds: SyncBase + SyncPerThread×T + SyncQuad×T².
	// On the Phi the constant term dominates: it models the offload
	// runtime's parallel-region launch/teardown, which is what the paper's
	// loop-combining step ("Improved OpenMP+MKL") amortizes. Calibrated
	// against Table I's MKL→Improved gap at both core counts.
	SyncBase      float64
	SyncPerThread float64
	SyncQuad      float64

	// PCIeBW/PCIeLatency describe host↔device transfers. Zero bandwidth
	// means the arch is the host itself (no offload).
	PCIeBW      float64
	PCIeLatency float64

	// PerOpOverhead is charged once per kernel call regardless of size —
	// the interpreter/dispatch overhead of the Matlab baseline. Zero for
	// compiled platforms.
	PerOpOverhead float64

	// GlobalMemBytes is the device memory capacity (8 GB on the 5110P),
	// enforced by the device allocator.
	GlobalMemBytes int64
}

// VectorFPC returns the peak vector flops/cycle/core.
func (a *Arch) VectorFPC() float64 {
	return float64(a.VectorDoubles * a.FMAFactor)
}

// ScalarPeak returns the aggregate scalar peak in flops/s for the given
// core and threads-per-core usage.
func (a *Arch) ScalarPeak(cores, threadsPerCore int) float64 {
	return float64(cores) * a.ClockHz * a.ScalarFPC * a.issueUtil(threadsPerCore)
}

// VectorPeak returns the aggregate vector peak in flops/s.
func (a *Arch) VectorPeak(cores, threadsPerCore int) float64 {
	return float64(cores) * a.ClockHz * a.VectorFPC() * a.issueUtil(threadsPerCore)
}

func (a *Arch) issueUtil(threadsPerCore int) float64 {
	if threadsPerCore <= 0 {
		threadsPerCore = a.ThreadsPerCore
	}
	if threadsPerCore >= a.MinThreadsFullIssue {
		return 1
	}
	return float64(threadsPerCore) / float64(a.MinThreadsFullIssue)
}

// bandwidth returns the memory bandwidth available to the given core count.
func (a *Arch) bandwidth(cores int) float64 {
	bw := float64(cores) * a.PerCoreMemBW
	if bw > a.MemBW {
		bw = a.MemBW
	}
	return bw
}

// Bandwidth returns the memory bandwidth available to the given core count
// (per-core draw capped by the aggregate). Exposed for performance models
// built on top of the simulator, such as internal/tune's calibrated
// predictor.
func (a *Arch) Bandwidth(cores int) float64 { return a.bandwidth(cores) }

// SyncCost returns the fork/join cost of one parallel region across the
// given number of software threads.
func (a *Arch) SyncCost(threads int) float64 {
	if threads <= 1 {
		return 0
	}
	t := float64(threads)
	return a.SyncBase + a.SyncPerThread*t + a.SyncQuad*t*t
}

// TransferTime returns the time to move n bytes across PCIe. It returns 0
// for archs without a PCIe link (host platforms).
func (a *Arch) TransferTime(bytes int64) float64 {
	if a.PCIeBW <= 0 {
		return 0
	}
	return a.PCIeLatency + float64(bytes)/a.PCIeBW
}

// XeonPhi5110P returns the paper's coprocessor: 60 cores at 1.053 GHz, four
// hardware threads per in-order core, a 512-bit VPU (8 doubles, FMA), 8 GB
// of GDDR5 at 320 GB/s. PCIeBW is the *effective* host→device goodput of
// the loading pipeline (staging + offload transfer), not the raw link rate:
// the paper measures 13 s for a 10,000×4096 chunk stream against 68 s of
// training, and raw-link numbers would make transfers invisible.
func XeonPhi5110P() *Arch {
	return &Arch{
		Name:                "Xeon Phi 5110P",
		Cores:               60,
		ThreadsPerCore:      4,
		ClockHz:             1.053e9,
		VectorDoubles:       8,
		FMAFactor:           2,
		ScalarFPC:           2.0,
		MinThreadsFullIssue: 2,
		MemBW:               320e9,
		PerCoreMemBW:        16e9,
		GemmEffVector:       0.78,
		GemmWorkHalf:        1.5e9,
		SyncBase:            4.5e-3,
		SyncPerThread:       1e-6,
		PCIeBW:              1.3e9,
		PCIeLatency:         50e-6,
		GlobalMemBytes:      8 << 30,
	}
}

// XeonE5620Core returns a single core of the host's Xeon E5620 (Westmere,
// 2.4 GHz, 128-bit SSE so 2 doubles/op with separate add and multiply
// ports). This is the "single CPU core" of Figs. 7–9.
func XeonE5620Core() *Arch {
	return &Arch{
		Name:                "Xeon E5620 (1 core)",
		Cores:               1,
		ThreadsPerCore:      1,
		ClockHz:             2.4e9,
		VectorDoubles:       2,
		FMAFactor:           2,
		ScalarFPC:           1.4,
		MinThreadsFullIssue: 1,
		MemBW:               25.6e9,
		PerCoreMemBW:        8e9,
		GemmEffVector:       0.72,
		GemmWorkHalf:        2e7,
		SyncBase:            2e-6,
		SyncPerThread:       1e-6,
		GlobalMemBytes:      48 << 30,
	}
}

// XeonE5620Full returns the whole four-core host chip with Hyper-Threading;
// the comparator behind the abstract's "7 to 10 times faster than the Intel
// Xeon CPU".
func XeonE5620Full() *Arch {
	a := XeonE5620Core()
	a.Name = "Xeon E5620 (4 cores)"
	a.Cores = 4
	a.ThreadsPerCore = 2
	a.MemBW = 25.6e9
	a.SyncBase = 4e-6
	return a
}

// XeonE5620Dual returns a dual-socket E5620 host (8 cores, 16 threads) —
// the typical server configuration for this CPU, and the comparator under
// which the abstract's "7 to 10 times faster than the Intel Xeon CPU"
// holds: the Phi's effective GEMM rate over this host's lands in that band.
func XeonE5620Dual() *Arch {
	a := XeonE5620Full()
	a.Name = "2x Xeon E5620 (8 cores)"
	a.Cores = 8
	a.MemBW = 51.2e9
	a.SyncBase = 8e-6
	return a
}

// TeslaK20X returns a 2013-era GPU comparator (the platform the paper
// positions the Phi against: "GPU has also shown great potential in
// training modest-sized neural network", §III). 14 SMX units at 732 MHz
// with 64 DP lanes and FMA give the card's 1.31 TFLOP/s DP peak; cuBLAS
// DGEMM reaches ≈85% of it. Kernel launches cost ~15 µs — two orders of
// magnitude below the Phi's offload parallel-region overhead, which is the
// GPU's real advantage on small batches.
func TeslaK20X() *Arch {
	return &Arch{
		Name:                "Tesla K20X (GPU model)",
		Cores:               14, // SMX units
		ThreadsPerCore:      1,
		ClockHz:             0.732e9,
		VectorDoubles:       64, // DP lanes per SMX
		FMAFactor:           2,
		ScalarFPC:           2,
		MinThreadsFullIssue: 1,
		MemBW:               250e9,
		PerCoreMemBW:        25e9,
		GemmEffVector:       0.85,
		GemmWorkHalf:        1.0e9,
		SyncBase:            15e-6,
		PCIeBW:              1.3e9,
		PCIeLatency:         50e-6,
		GlobalMemBytes:      6 << 30,
	}
}

// MatlabR2012a returns the Fig. 10 baseline: Matlab's optimized BLAS on the
// full host chip, with a fixed per-operation interpreter/dispatch overhead.
// Matlab's matrix ops are near vendor-BLAS speed, so only the overhead and
// a slightly lower GEMM efficiency separate it from XeonE5620Full.
func MatlabR2012a() *Arch {
	a := XeonE5620Full()
	a.Name = "Matlab R2012a (host CPU)"
	a.GemmEffVector = 0.62
	a.PerOpOverhead = 150e-6
	return a
}
