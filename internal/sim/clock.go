package sim

import "fmt"

// Clock is a simulated wall clock. Times are seconds from the start of the
// simulation.
type Clock struct {
	now float64
}

// Now returns the current simulated time.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. It panics on negative dt —
// simulated time is monotone by construction.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: Advance(%g): negative duration", dt))
	}
	c.now += dt
}

// AdvanceTo moves the clock to t if t is later than now (idle until t).
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero (between independent experiment runs).
func (c *Clock) Reset() { c.now = 0 }

// Timeline is the busy/idle schedule of one device engine (the compute
// cores, or the PCIe transfer engine). Work items are appended in issue
// order; each starts no earlier than both its ready time and the engine
// becoming free.
type Timeline struct {
	Name       string
	busyUntil  float64
	busyTotal  float64
	stallTotal float64
	stalls     int
	items      int
}

// Schedule books a work item of the given duration that becomes ready at
// readyAt, returning its start and end times.
func (t *Timeline) Schedule(readyAt, duration float64) (start, end float64) {
	if duration < 0 {
		panic(fmt.Sprintf("sim: Timeline %q: negative duration %g", t.Name, duration))
	}
	start = t.busyUntil
	if readyAt > start {
		start = readyAt
	}
	end = start + duration
	t.busyUntil = end
	t.busyTotal += duration
	t.items++
	return start, end
}

// ScheduleGroup books k work items that execute concurrently on the engine
// (the Fig. 6 dependency-graph branches). Every item starts at the later of
// the engine becoming free and its own ready time; the engine is then busy
// until the last item ends. Returns the group's end time.
func (t *Timeline) ScheduleGroup(readyAt, durations []float64) float64 {
	if len(readyAt) != len(durations) {
		panic(fmt.Sprintf("sim: Timeline %q: ScheduleGroup with %d ready times and %d durations", t.Name, len(readyAt), len(durations)))
	}
	free := t.busyUntil
	groupEnd := free
	for i, dur := range durations {
		if dur < 0 {
			panic(fmt.Sprintf("sim: Timeline %q: negative duration %g", t.Name, dur))
		}
		start := free
		if readyAt[i] > start {
			start = readyAt[i]
		}
		if end := start + dur; end > groupEnd {
			groupEnd = end
		}
		t.busyTotal += dur
		t.items++
	}
	t.busyUntil = groupEnd
	return groupEnd
}

// Stall blocks the engine for dt seconds of deliberately injected idle
// time — the retry backoff after a faulted transfer, a straggling cluster
// node's slowdown, or a crashed node's downtime. The engine's free time
// moves forward without accumulating busy time, so the next item scheduled
// starts no earlier than the end of the stall, and the injected wait is
// accounted separately in StallTotal/Stalls. This is how backoff delays
// and straggler time are charged to the simulated clock rather than
// silently absorbed.
func (t *Timeline) Stall(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: Timeline %q: negative stall %g", t.Name, dt))
	}
	t.busyUntil += dt
	t.stallTotal += dt
	t.stalls++
}

// BusyUntil returns the time the engine becomes free.
func (t *Timeline) BusyUntil() float64 { return t.busyUntil }

// BusyTotal returns the accumulated busy time (excludes idle gaps).
func (t *Timeline) BusyTotal() float64 { return t.busyTotal }

// StallTotal returns the accumulated deliberately injected idle time.
func (t *Timeline) StallTotal() float64 { return t.stallTotal }

// Stalls returns the number of injected stalls (Stall calls).
func (t *Timeline) Stalls() int { return t.stalls }

// Items returns the number of scheduled work items.
func (t *Timeline) Items() int { return t.items }

// Reset clears the timeline.
func (t *Timeline) Reset() {
	t.busyUntil = 0
	t.busyTotal = 0
	t.stallTotal = 0
	t.stalls = 0
	t.items = 0
}
