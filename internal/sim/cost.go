package sim

import (
	"fmt"

	"phideep/internal/kernels"
)

// OpKind classifies a kernel launch for costing purposes.
type OpKind int

const (
	// OpGemm is a dense matrix multiply, costed at 2·M·K·N flops.
	OpGemm OpKind = iota
	// OpElem is an elementwise map/update over Elems elements.
	OpElem
	// OpReduce is a reduction over Elems elements (column sums, losses).
	OpReduce
	// OpSample is Bernoulli sampling over Elems elements — an elementwise
	// op with RNG cost per element.
	OpSample
	// OpIm2col is the convolution-lowering gather: Elems patch-matrix
	// elements copied from NHWC images, charged per element like an
	// elementwise op (the flops are index arithmetic, the traffic is the
	// KH·KW-fold read amplification the caller encodes in BytesPerElem).
	// The conv GEMM the gather feeds is costed as a plain OpGemm with
	// M = batch·OutH·OutW, K = KH·KW·C, N = F.
	OpIm2col
	// OpCol2im is the adjoint scatter of OpIm2col (backward through the
	// lowering), with read-modify-write traffic on the image gradient.
	OpCol2im
	// OpPool is max pooling (or its argmax-routed backward scatter):
	// Elems output elements, each comparing a Size² window, encoded by the
	// caller in FlopsPerElem/BytesPerElem.
	OpPool
)

func (k OpKind) String() string {
	switch k {
	case OpGemm:
		return "gemm"
	case OpElem:
		return "elem"
	case OpReduce:
		return "reduce"
	case OpSample:
		return "sample"
	case OpIm2col:
		return "im2col"
	case OpCol2im:
		return "col2im"
	case OpPool:
		return "pool"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op describes one kernel launch to the cost model.
type Op struct {
	Kind OpKind
	// GEMM dimensions (op(A): M×K, op(B): K×N).
	M, K, N int
	// Elementwise size and per-element costs.
	Elems        int
	FlopsPerElem float64
	BytesPerElem float64
	// Execution configuration.
	Level          kernels.Level
	Cores          int  // physical cores used (0 ⇒ all for parallel levels, 1 otherwise)
	ThreadsPerCore int  // software threads per core (0 ⇒ arch maximum)
	Vector         bool // whether the kernel is VPU-vectorized
	// Fused suppresses the per-region fork/join charge for all but the
	// first op of a fused parallel region — the "Improved OpenMP+MKL"
	// loop-combining optimization of Table I.
	Fused bool
}

// Flops returns the flop count the model charges for the op.
func (op Op) Flops() float64 {
	switch op.Kind {
	case OpGemm:
		return 2 * float64(op.M) * float64(op.K) * float64(op.N)
	default:
		f := op.FlopsPerElem
		if f == 0 {
			f = 1
		}
		return float64(op.Elems) * f
	}
}

// Bytes returns the main-memory traffic the model charges for the op at the
// level's reuse quality.
func (op Op) Bytes() float64 {
	switch op.Kind {
	case OpGemm:
		return op.Flops() * gemmBytesPerFlop(op.Level)
	default:
		b := op.BytesPerElem
		if b == 0 {
			b = 16 // one read + one write of a float64
		}
		return float64(op.Elems) * b
	}
}

// gemmBytesPerFlop models cache reuse per level: the naive loops restream
// operands, tiling cuts traffic, and the register-blocked vector kernel is
// near the compulsory minimum.
func gemmBytesPerFlop(lvl kernels.Level) float64 {
	switch lvl {
	case kernels.Naive, kernels.Parallel:
		// Unblocked loops restream the B panel from memory and achieve
		// poor row-buffer locality; 18.5 B/flop reproduces the paper's
		// Table I Baseline (≈16000 s) and OpenMP (≈890 s) rows.
		return 18.5
	case kernels.Blocked:
		return 2
	default: // ParallelBlocked
		return 0.35
	}
}

// resolveConfig fills the op's core/thread defaults for the arch.
func (a *Arch) resolveConfig(op Op) (cores, tpc int) {
	cores, tpc = op.Cores, op.ThreadsPerCore
	if tpc <= 0 || tpc > a.ThreadsPerCore {
		tpc = a.ThreadsPerCore
	}
	if cores <= 0 {
		if op.Level.IsParallel() {
			cores = a.Cores
		} else {
			cores = 1
		}
	}
	if cores > a.Cores {
		cores = a.Cores
	}
	if !op.Level.IsParallel() {
		cores, tpc = 1, 1
	}
	return cores, tpc
}

// ResolvedConfig reports the effective cores and threads-per-core that
// OpTime uses for op on a: defaults filled, bounds clamped, and serial
// levels pinned to a single thread. Exposed for performance models layered
// on the simulator (internal/tune's calibrated predictor classifies each
// observed op with the same rules the costing path applies).
func (a *Arch) ResolvedConfig(op Op) (cores, tpc int) { return a.resolveConfig(op) }

// OpTime returns the modeled execution time of op on a, in seconds,
// including fork/join synchronization (unless fused away) and any
// per-operation dispatch overhead.
func (a *Arch) OpTime(op Op) float64 {
	cores, tpc := a.resolveConfig(op)
	threads := cores * tpc

	var computeRate float64
	switch op.Kind {
	case OpGemm:
		if op.Vector {
			computeRate = a.VectorPeak(cores, tpc) * a.gemmEffRamp(op.Flops())
		} else {
			computeRate = a.ScalarPeak(cores, tpc)
		}
	default:
		if op.Vector {
			// Elementwise maps vectorize at half peak: they are not FMA
			// shaped and include lane shuffles / transcendentals.
			computeRate = a.VectorPeak(cores, tpc) * 0.5
		} else {
			computeRate = a.ScalarPeak(cores, tpc)
		}
	}
	memRate := a.bandwidth(cores)

	tCompute := op.Flops() / computeRate
	tMemory := op.Bytes() / memRate
	t := tCompute
	if tMemory > t {
		t = tMemory
	}
	if op.Level.IsParallel() && !op.Fused {
		t += a.SyncCost(threads)
	}
	t += a.PerOpOverhead
	return t
}

// gemmEffRamp is the size-dependent efficiency of the vectorized GEMM:
// GemmEffVector × w/(w+GemmWorkHalf). Small multiplies (small batches and
// small networks) cannot amortize packing and pipeline fill, which is why
// the Phi's advantage shrinks on small problems (Figs. 7 and 9).
func (a *Arch) gemmEffRamp(flops float64) float64 {
	if a.GemmWorkHalf <= 0 {
		return a.GemmEffVector
	}
	return a.GemmEffVector * flops / (flops + a.GemmWorkHalf)
}

// GemmRate reports the effective GEMM flop rate for a given configuration;
// used by the experiment harness to print achieved-GF columns.
func (a *Arch) GemmRate(op Op) float64 {
	t := a.OpTime(op)
	if t <= 0 {
		return 0
	}
	return op.Flops() / t
}
