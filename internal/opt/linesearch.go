package opt

import (
	"math"

	"phideep/internal/tensor"
)

// lineSearch finds a step along direction d from theta satisfying the
// strong Wolfe conditions (Nocedal & Wright, algorithms 3.5/3.6): sufficient
// decrease f(a) ≤ f0 + c1·a·slope and curvature |f'(a)| ≤ c2·|slope|.
// f0 and g0 are the cost and gradient at theta. It writes the accepted
// point into thetaOut and its gradient into gradOut, returning the accepted
// step and cost. A zero step is returned when no acceptable point was found
// (d not a descent direction, or the search stalled).
func lineSearch(obj *countingObjective, theta, d tensor.Vector, f0 float64, g0 tensor.Vector, step float64, thetaOut, gradOut tensor.Vector) (float64, float64) {
	const (
		c1      = 1e-4
		c2      = 0.9
		aMax    = 1e6
		maxIter = 25
		maxZoom = 40
	)
	slope0 := g0.Dot(d)
	if slope0 >= 0 || step <= 0 {
		return 0, f0
	}
	// phi evaluates f and f' along the ray, leaving the point and gradient
	// in thetaOut/gradOut.
	phi := func(a float64) (f, df float64) {
		for i := range theta {
			thetaOut[i] = theta[i] + a*d[i]
		}
		f = obj.eval(thetaOut, gradOut)
		return f, gradOut.Dot(d)
	}

	zoom := func(aLo, fLo, dLo, aHi, fHi float64) (float64, float64) {
		for i := 0; i < maxZoom; i++ {
			// Bisect (robust; quadratic interpolation gains little here).
			a := 0.5 * (aLo + aHi)
			f, df := phi(a)
			switch {
			case f > f0+c1*a*slope0 || f >= fLo:
				aHi, fHi = a, f
			case math.Abs(df) <= -c2*slope0:
				return a, f
			case df*(aHi-aLo) >= 0:
				aHi, fHi = aLo, fLo
				fallthrough
			default:
				aLo, fLo, dLo = a, f, df
			}
			if math.Abs(aHi-aLo) < 1e-16*(1+math.Abs(aLo)) {
				break
			}
		}
		_ = dLo
		if aLo > 0 {
			// Accept the best sufficient-decrease point found; re-evaluate
			// so thetaOut/gradOut hold it.
			f, _ := phi(aLo)
			return aLo, f
		}
		return 0, f0
	}

	aPrev, fPrev := 0.0, f0
	dPrev := slope0
	a := step
	for i := 0; i < maxIter; i++ {
		f, df := phi(a)
		if f > f0+c1*a*slope0 || (i > 0 && f >= fPrev) {
			return zoom(aPrev, fPrev, dPrev, a, f)
		}
		if math.Abs(df) <= -c2*slope0 {
			return a, f
		}
		if df >= 0 {
			return zoom(a, f, df, aPrev, fPrev)
		}
		aPrev, fPrev, dPrev = a, f, df
		a *= 2
		if a > aMax {
			break
		}
	}
	// Ran out of expansion budget with decrease still holding: accept the
	// last evaluated point if it decreased.
	if fPrev < f0 && aPrev > 0 {
		f, _ := phi(aPrev)
		return aPrev, f
	}
	return 0, f0
}

// norm2 returns the Euclidean norm of v.
func norm2(v tensor.Vector) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
