// Package opt implements the optimizers discussed in the paper: online
// minibatch SGD (with the momentum and learning-rate schedules of its §III
// related-work discussion) and the batch methods — Conjugate Gradient and
// limited-memory BFGS — that the paper cites as the easier-to-parallelize
// alternatives to inherently sequential SGD.
//
// The batch optimizers work on a host-side flat parameter vector through an
// Objective callback, which is how they compose with the reference
// implementations in internal/autoencoder and internal/rbm (and, through
// nn.ParamSet, with any model).
package opt

import (
	"fmt"
	"math"

	"phideep/internal/tensor"
)

// Objective evaluates the cost at theta and, when grad is non-nil, writes
// the gradient into it (same length as theta).
type Objective func(theta tensor.Vector, grad tensor.Vector) float64

// Result summarizes an optimizer run.
type Result struct {
	// Cost is the final objective value; Iterations the number of outer
	// iterations executed; Evaluations the number of Objective calls.
	Cost        float64
	Iterations  int
	Evaluations int
	// Converged reports whether the gradient-norm tolerance was met
	// before the iteration limit.
	Converged bool
	// History records the cost after every iteration.
	History []float64
}

// countingObjective wraps an Objective to count evaluations.
type countingObjective struct {
	f Objective
	n int
}

func (c *countingObjective) eval(theta, grad tensor.Vector) float64 {
	c.n++
	return c.f(theta, grad)
}

func checkTheta(theta tensor.Vector) {
	if len(theta) == 0 {
		panic("opt: empty parameter vector")
	}
	for _, v := range theta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("opt: non-finite parameter %g", v))
		}
	}
}
