package opt

import (
	"math"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// quadratic builds a convex quadratic f(x) = ½ Σ d_i x_i² − b·x with known
// minimum x* = b_i/d_i.
func quadratic(d, b tensor.Vector) Objective {
	return func(theta, grad tensor.Vector) float64 {
		f := 0.0
		for i := range theta {
			f += 0.5*d[i]*theta[i]*theta[i] - b[i]*theta[i]
			if grad != nil {
				grad[i] = d[i]*theta[i] - b[i]
			}
		}
		return f
	}
}

// rosenbrock is the classic ill-conditioned test function (min at (1, 1)).
func rosenbrock(theta, grad tensor.Vector) float64 {
	x, y := theta[0], theta[1]
	f := (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
	if grad != nil {
		grad[0] = -2*(1-x) - 400*x*(y-x*x)
		grad[1] = 200 * (y - x*x)
	}
	return f
}

func TestCGSolvesQuadratic(t *testing.T) {
	d := tensor.Vector{1, 10, 100, 3, 7}
	b := tensor.Vector{1, -2, 3, 0.5, -0.1}
	theta := tensor.NewVector(5).Randomize(rng.New(1), -2, 2)
	res := CG(quadratic(d, b), theta, CGConfig{MaxIter: 300, GradTol: 1e-5})
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range theta {
		if math.Abs(theta[i]-b[i]/d[i]) > 1e-4 {
			t.Fatalf("theta[%d] = %g, want %g", i, theta[i], b[i]/d[i])
		}
	}
}

func TestLBFGSSolvesQuadratic(t *testing.T) {
	d := tensor.Vector{1, 50, 2, 9}
	b := tensor.Vector{4, 1, -3, 0}
	theta := tensor.NewVector(4).Randomize(rng.New(2), -2, 2)
	res := LBFGS(quadratic(d, b), theta, LBFGSConfig{MaxIter: 200, GradTol: 1e-6})
	if !res.Converged {
		t.Fatalf("L-BFGS did not converge: %+v", res)
	}
	for i := range theta {
		if math.Abs(theta[i]-b[i]/d[i]) > 1e-4 {
			t.Fatalf("theta[%d] = %g, want %g", i, theta[i], b[i]/d[i])
		}
	}
}

func TestLBFGSBeatsSteepestDescentOnRosenbrock(t *testing.T) {
	theta := tensor.Vector{-1.2, 1}
	res := LBFGS(rosenbrock, theta, LBFGSConfig{MaxIter: 300, GradTol: 1e-8})
	if rosenbrock(theta, nil) > 1e-8 {
		t.Fatalf("L-BFGS stuck at f=%g after %d iters", res.Cost, res.Iterations)
	}
	if math.Abs(theta[0]-1) > 1e-3 || math.Abs(theta[1]-1) > 1e-3 {
		t.Fatalf("wrong minimum: %v", theta)
	}
}

func TestCGOnRosenbrockMakesProgress(t *testing.T) {
	theta := tensor.Vector{-1.2, 1}
	start := rosenbrock(theta, nil)
	res := CG(rosenbrock, theta, CGConfig{MaxIter: 500, GradTol: 1e-8})
	if !(res.Cost < start/100) {
		t.Fatalf("CG made little progress: %g → %g", start, res.Cost)
	}
}

func TestHistoryMonotoneNonIncreasing(t *testing.T) {
	d := tensor.Vector{3, 1}
	b := tensor.Vector{1, 1}
	theta := tensor.Vector{5, -5}
	for name, res := range map[string]Result{
		"CG":    CG(quadratic(d, b), theta.Clone(), CGConfig{}),
		"LBFGS": LBFGS(quadratic(d, b), theta.Clone(), LBFGSConfig{}),
	} {
		for i := 1; i < len(res.History); i++ {
			if res.History[i] > res.History[i-1]+1e-12 {
				t.Fatalf("%s cost increased at iter %d: %g → %g", name, i, res.History[i-1], res.History[i])
			}
		}
		if res.Evaluations == 0 {
			t.Fatalf("%s did not count evaluations", name)
		}
	}
}

func TestSGDMomentumOnQuadratic(t *testing.T) {
	d := tensor.Vector{1, 4}
	b := tensor.Vector{2, -1}
	theta := tensor.Vector{3, 3}
	res := SGD(quadratic(d, b), theta, SGDConfig{LR: 0.05, Momentum: 0.9, Steps: 500})
	if math.Abs(theta[0]-2) > 1e-3 || math.Abs(theta[1]+0.25) > 1e-3 {
		t.Fatalf("SGD did not reach minimum: %v (cost %g)", theta, res.Cost)
	}
}

func TestSchedules(t *testing.T) {
	if ConstantLR(0.3)(100) != 0.3 {
		t.Fatal("ConstantLR")
	}
	s := StepDecayLR(1, 10, 0.5)
	if s(0) != 1 || s(9) != 1 || s(10) != 0.5 || s(25) != 0.25 {
		t.Fatal("StepDecayLR")
	}
	inv := InverseTimeLR(1, 0.1)
	if inv(0) != 1 || math.Abs(inv(10)-0.5) > 1e-12 {
		t.Fatal("InverseTimeLR")
	}
	if inv(1) >= inv(0) {
		t.Fatal("InverseTimeLR not decreasing")
	}
}

func TestSGDScheduleUsed(t *testing.T) {
	d := tensor.Vector{1}
	b := tensor.Vector{0}
	theta := tensor.Vector{1}
	SGD(quadratic(d, b), theta, SGDConfig{LR: 99, Schedule: ConstantLR(0), Steps: 3})
	if theta[0] != 1 {
		t.Fatal("schedule not applied")
	}
}

func TestGuards(t *testing.T) {
	for _, f := range []func(){
		func() { CG(rosenbrock, tensor.Vector{}, CGConfig{}) },
		func() { CG(rosenbrock, tensor.Vector{math.NaN(), 0}, CGConfig{}) },
		func() { SGD(rosenbrock, tensor.Vector{0, 0}, SGDConfig{Steps: 0}) },
		func() { SGD(rosenbrock, tensor.Vector{0, 0}, SGDConfig{Steps: 1, Momentum: 1}) },
		func() { StepDecayLR(1, 0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestLBFGSTrainsAutoencoder ties the batch optimizer to the reference
// model, the combination the paper's §III describes as the parallel
// alternative to online SGD.
func TestLBFGSTrainsAutoencoder(t *testing.T) {
	cfg := autoencoder.Config{Visible: 16, Hidden: 6, Lambda: 1e-5}
	x := tensor.NewMatrix(30, cfg.Visible).Randomize(rng.New(5), 0, 1)
	// Make it compressible: rank-2 structure through a sigmoid.
	u := tensor.NewMatrix(30, 2).Randomize(rng.New(6), -2, 2)
	v := tensor.NewMatrix(2, cfg.Visible).Randomize(rng.New(7), -2, 2)
	for i := 0; i < 30; i++ {
		for j := 0; j < cfg.Visible; j++ {
			s := u.At(i, 0)*v.At(0, j) + u.At(i, 1)*v.At(1, j)
			x.Set(i, j, 1/(1+math.Exp(-s)))
		}
	}
	p := autoencoder.NewParams(cfg, 8)
	ps := p.ParamSet()
	theta := ps.Flatten(nil)
	grad := autoencoder.ZeroGrad(cfg)
	gs := grad.ParamSet()
	obj := func(th, g tensor.Vector) float64 {
		ps.Unflatten(th)
		if g == nil {
			return autoencoder.CostGrad(cfg, p, x, nil)
		}
		c := autoencoder.CostGrad(cfg, p, x, grad)
		gs.Flatten(g)
		return c
	}
	start := obj(theta, nil)
	res := LBFGS(obj, theta, LBFGSConfig{MaxIter: 60})
	if !(res.Cost < 0.5*start) {
		t.Fatalf("L-BFGS barely reduced the AE cost: %g → %g", start, res.Cost)
	}
}
