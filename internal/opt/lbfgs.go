package opt

import "phideep/internal/tensor"

// LBFGSConfig parameterizes limited-memory BFGS (Liu & Nocedal, the paper's
// reference [24]).
type LBFGSConfig struct {
	// Memory is the number of (s, y) correction pairs kept (default 10).
	Memory int
	// MaxIter bounds the outer iterations (default 100).
	MaxIter int
	// GradTol stops when ‖∇f‖ falls below it (default 1e-6).
	GradTol float64
}

func (c *LBFGSConfig) defaults() {
	if c.Memory == 0 {
		c.Memory = 10
	}
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-6
	}
}

// LBFGS minimizes obj starting from theta, updating theta in place.
func LBFGS(obj Objective, theta tensor.Vector, cfg LBFGSConfig) Result {
	checkTheta(theta)
	cfg.defaults()
	co := &countingObjective{f: obj}
	n := len(theta)

	g := tensor.NewVector(n)
	gNew := tensor.NewVector(n)
	d := tensor.NewVector(n)
	thetaNew := tensor.NewVector(n)

	var sHist, yHist []tensor.Vector
	var rhoHist []float64
	alpha := make([]float64, 0, cfg.Memory)

	f := co.eval(theta, g)
	res := Result{Cost: f}

	for it := 0; it < cfg.MaxIter; it++ {
		if norm2(g) < cfg.GradTol {
			res.Converged = true
			break
		}

		// Two-loop recursion: d = −H·g with the implicit inverse Hessian.
		copy(d, g)
		alpha = alpha[:0]
		for i := len(sHist) - 1; i >= 0; i-- {
			a := rhoHist[i] * sHist[i].Dot(d)
			alpha = append(alpha, a)
			for j := range d {
				d[j] -= a * yHist[i][j]
			}
		}
		if k := len(sHist); k > 0 {
			// Scale by the Barzilai–Borwein estimate sᵀy/yᵀy.
			sy := sHist[k-1].Dot(yHist[k-1])
			yy := yHist[k-1].Dot(yHist[k-1])
			if yy > 0 {
				scale := sy / yy
				for j := range d {
					d[j] *= scale
				}
			}
		}
		for i := range sHist {
			b := rhoHist[i] * yHist[i].Dot(d)
			a := alpha[len(sHist)-1-i]
			for j := range d {
				d[j] += (a - b) * sHist[i][j]
			}
		}
		for j := range d {
			d[j] = -d[j]
		}

		a, fNew := lineSearch(co, theta, d, f, g, 1, thetaNew, gNew)
		if a == 0 {
			// Drop the memory and retry with steepest descent.
			sHist, yHist, rhoHist = nil, nil, nil
			for j := range d {
				d[j] = -g[j]
			}
			a, fNew = lineSearch(co, theta, d, f, g, 1, thetaNew, gNew)
			if a == 0 {
				break
			}
		}

		// Curvature pair.
		s := tensor.NewVector(n)
		y := tensor.NewVector(n)
		for j := range s {
			s[j] = thetaNew[j] - theta[j]
			y[j] = gNew[j] - g[j]
		}
		if sy := s.Dot(y); sy > 1e-12 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > cfg.Memory {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}

		copy(theta, thetaNew)
		copy(g, gNew)
		f = fNew
		res.Iterations++
		res.History = append(res.History, f)
	}
	res.Cost = f
	res.Evaluations = co.n
	return res
}
