package opt

import (
	"fmt"
	"math"

	"phideep/internal/tensor"
)

// Schedule maps an update-step index to a learning rate. The paper's §III
// surveys adaptive schedules as the first category of deep-learning
// speedups; these constructors cover the standard shapes.
type Schedule func(step int) float64

// ConstantLR returns a flat schedule.
func ConstantLR(lr float64) Schedule {
	return func(int) float64 { return lr }
}

// StepDecayLR halves (×factor) the rate every interval steps.
func StepDecayLR(lr float64, interval int, factor float64) Schedule {
	if interval <= 0 {
		panic(fmt.Sprintf("opt: StepDecayLR interval %d", interval))
	}
	return func(step int) float64 {
		return lr * math.Pow(factor, float64(step/interval))
	}
}

// InverseTimeLR returns lr/(1+decay·step), the classic Robbins–Monro-style
// 1/t decay.
func InverseTimeLR(lr, decay float64) Schedule {
	return func(step int) float64 { return lr / (1 + decay*float64(step)) }
}

// SGDConfig parameterizes host-side minibatch SGD over a flat objective.
type SGDConfig struct {
	LR       float64
	Momentum float64
	Steps    int
	Schedule Schedule // overrides LR when non-nil
}

// SGD runs cfg.Steps gradient steps of obj from theta (updated in place).
// Unlike the device training engine this evaluates the full objective each
// step; it exists to compare optimizer trajectories on the reference
// implementations.
func SGD(obj Objective, theta tensor.Vector, cfg SGDConfig) Result {
	checkTheta(theta)
	if cfg.Steps <= 0 {
		panic(fmt.Sprintf("opt: SGD steps %d", cfg.Steps))
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		panic(fmt.Sprintf("opt: SGD momentum %g outside [0,1)", cfg.Momentum))
	}
	co := &countingObjective{f: obj}
	g := tensor.NewVector(len(theta))
	vel := tensor.NewVector(len(theta))
	var f float64
	res := Result{}
	for step := 0; step < cfg.Steps; step++ {
		f = co.eval(theta, g)
		lr := cfg.LR
		if cfg.Schedule != nil {
			lr = cfg.Schedule(step)
		}
		for i := range theta {
			vel[i] = cfg.Momentum*vel[i] - lr*g[i]
			theta[i] += vel[i]
		}
		res.Iterations++
		res.History = append(res.History, f)
	}
	res.Cost = co.eval(theta, nil)
	res.Evaluations = co.n
	return res
}
