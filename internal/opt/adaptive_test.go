package opt

import "testing"

func TestBoldDriverBehaviour(t *testing.T) {
	b := NewBoldDriver(0.1)
	if b.LR() != 0.1 {
		t.Fatal("initial rate")
	}
	b.Observe(1.0) // first observation: baseline only
	if b.LR() != 0.1 {
		t.Fatal("first observation must not change the rate")
	}
	b.Observe(0.9) // improvement → grow
	if b.LR() <= 0.1 {
		t.Fatalf("rate did not grow: %g", b.LR())
	}
	grown := b.LR()
	b.Observe(1.5) // worsening → shrink sharply
	if b.LR() >= grown*0.6 {
		t.Fatalf("rate did not shrink: %g", b.LR())
	}
}

func TestBoldDriverClamps(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Min, b.Max = 0.05, 0.2
	b.Observe(1)
	for i := 0; i < 100; i++ {
		b.Observe(float64(2 + i)) // strictly worse each step
	}
	if b.LR() != 0.05 {
		t.Fatalf("min clamp failed: %g", b.LR())
	}
	for i := 0; i < 100; i++ {
		b.Observe(-float64(i)) // always better
	}
	if b.LR() != 0.2 {
		t.Fatalf("max clamp failed: %g", b.LR())
	}
}

func TestBoldDriverGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	NewBoldDriver(0)
}

func TestBoldDriverOnQuadratic(t *testing.T) {
	// The driver must converge a simple quadratic from a too-small rate by
	// growing it, without diverging.
	const d = 3.0
	theta := 5.0
	b := NewBoldDriver(0.001)
	for i := 0; i < 400; i++ {
		loss := 0.5 * d * theta * theta
		lr := b.LR()
		theta -= lr * d * theta
		b.Observe(loss)
	}
	if theta > 0.05 || theta < -0.05 {
		t.Fatalf("did not converge: theta=%g lr=%g", theta, b.LR())
	}
}
