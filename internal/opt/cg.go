package opt

import "phideep/internal/tensor"

// CGConfig parameterizes nonlinear Conjugate Gradient minimization
// (Polak–Ribière with automatic restarts), the batch method of the paper's
// reference [23] (Hestenes & Stiefel).
type CGConfig struct {
	// MaxIter bounds the outer iterations (default 100).
	MaxIter int
	// GradTol stops when ‖∇f‖ falls below it (default 1e-6).
	GradTol float64
	// InitialStep seeds the first line search (default 1).
	InitialStep float64
}

func (c *CGConfig) defaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-6
	}
	if c.InitialStep == 0 {
		c.InitialStep = 1
	}
}

// CG minimizes obj starting from theta, updating theta in place.
func CG(obj Objective, theta tensor.Vector, cfg CGConfig) Result {
	checkTheta(theta)
	cfg.defaults()
	co := &countingObjective{f: obj}
	n := len(theta)

	g := tensor.NewVector(n)
	gNew := tensor.NewVector(n)
	d := tensor.NewVector(n)
	thetaNew := tensor.NewVector(n)

	f := co.eval(theta, g)
	for i := range d {
		d[i] = -g[i]
	}
	res := Result{Cost: f}
	step := cfg.InitialStep

	for it := 0; it < cfg.MaxIter; it++ {
		if norm2(g) < cfg.GradTol {
			res.Converged = true
			break
		}
		a, fNew := lineSearch(co, theta, d, f, g, step, thetaNew, gNew)
		if a == 0 {
			// Stalled along the conjugate direction: restart steepest
			// descent once, then give up if still stuck.
			for i := range d {
				d[i] = -g[i]
			}
			a, fNew = lineSearch(co, theta, d, f, g, step, thetaNew, gNew)
			if a == 0 {
				break
			}
		}
		// Polak–Ribière β with restart on negative values.
		num, den := 0.0, 0.0
		for i := range g {
			num += gNew[i] * (gNew[i] - g[i])
			den += g[i] * g[i]
		}
		beta := 0.0
		if den > 0 {
			beta = num / den
		}
		if beta < 0 {
			beta = 0
		}
		for i := range d {
			d[i] = -gNew[i] + beta*d[i]
		}
		copy(theta, thetaNew)
		copy(g, gNew)
		f = fNew
		step = a // warm-start the next search at the accepted step
		res.Iterations++
		res.History = append(res.History, f)
	}
	res.Cost = f
	res.Evaluations = co.n
	return res
}
