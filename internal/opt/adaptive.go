package opt

import "fmt"

// AdaptiveLR is a learning-rate controller driven by observed training
// loss — the first category of deep-learning speedups the paper's §III
// surveys ("adaptive strategies for the learning rate to make it faster to
// converge"). LR returns the rate for the next update; Observe feeds back
// the loss that update produced.
type AdaptiveLR interface {
	LR() float64
	Observe(loss float64)
}

// BoldDriver is the classic adaptive heuristic: grow the rate slightly
// after every improvement, cut it sharply after any worsening.
type BoldDriver struct {
	// Grow multiplies the rate after an improving step (default 1.05);
	// Shrink after a worsening one (default 0.5). Min/Max clamp the rate
	// (defaults 1e-6 / 1e3).
	Grow, Shrink float64
	Min, Max     float64

	lr   float64
	prev float64
	seen bool
}

// NewBoldDriver returns a driver starting at lr with the conventional
// 1.05×/0.5× factors.
func NewBoldDriver(lr float64) *BoldDriver {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: NewBoldDriver(%g): non-positive rate", lr))
	}
	return &BoldDriver{Grow: 1.05, Shrink: 0.5, Min: 1e-6, Max: 1e3, lr: lr}
}

// LR implements AdaptiveLR.
func (b *BoldDriver) LR() float64 { return b.lr }

// Observe implements AdaptiveLR.
func (b *BoldDriver) Observe(loss float64) {
	if !b.seen {
		b.prev, b.seen = loss, true
		return
	}
	if loss <= b.prev {
		b.lr *= b.Grow
	} else {
		b.lr *= b.Shrink
	}
	if b.lr < b.Min {
		b.lr = b.Min
	}
	if b.lr > b.Max {
		b.lr = b.Max
	}
	b.prev = loss
}
