package nn

import (
	"fmt"

	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Conv2D holds one convolutional layer's parameters in im2col form: W is
// the ColK×F filter matrix whose row (ky·KW + kx)·C + c carries input tap
// (ky, kx, c), matching the column order kernels.Im2col emits, and B is
// the per-filter bias. The same parameters drive both the device model
// (cols·W through the packed GEMM) and the scalar host reference here.
type Conv2D struct {
	Shape kernels.ConvShape
	W     *tensor.Matrix
	B     tensor.Vector
}

// NewConv2D allocates a layer with Glorot-uniform weights and zero biases.
func NewConv2D(s kernels.ConvShape, r *rng.RNG) *Conv2D {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	l := &Conv2D{
		Shape: s,
		W:     tensor.NewMatrix(s.ColK(), s.F),
		B:     tensor.NewVector(s.F),
	}
	InitMatrix(l.W, r)
	return l
}

// Register adds the layer's parameters to ps under prefix.
func (l *Conv2D) Register(ps *ParamSet, prefix string) {
	ps.AddMatrix(prefix+".W", l.W)
	ps.AddVector(prefix+".b", l.B)
}

// Clone returns a deep copy.
func (l *Conv2D) Clone() *Conv2D {
	return &Conv2D{Shape: l.Shape, W: l.W.Clone(), B: l.B.Clone()}
}

// Forward runs the direct (un-lowered) convolution of one NHWC image x
// (InDim elements) into y (OutDim elements) — the naive oracle the
// im2col-GEMM path is tested against, and the scalar reference used by
// degraded serving. Per output tap it accumulates products in (ky, kx, c)
// order starting from zero and adds the bias last, which is exactly the
// summation order of the Naive-level lowered GEMM followed by AddBiasRow —
// so at that level the two paths agree bitwise.
func (l *Conv2D) Forward(x, y []float64) {
	s := l.Shape
	if len(x) != s.InDim() || len(y) != s.OutDim() {
		panic(fmt.Sprintf("nn: Conv2D.Forward input %d output %d, want %d and %d", len(x), len(y), s.InDim(), s.OutDim()))
	}
	oh, ow := s.OutH(), s.OutW()
	o := 0
	for oy := 0; oy < oh; oy++ {
		iy0 := oy*s.Stride - s.Pad
		for ox := 0; ox < ow; ox++ {
			ix0 := ox*s.Stride - s.Pad
			for f := 0; f < s.F; f++ {
				acc := 0.0
				for ky := 0; ky < s.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= s.H {
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= s.W {
							continue
						}
						wr := ((ky*s.KW)+kx)*s.C + 0
						xi := (iy*s.W + ix) * s.C
						for c := 0; c < s.C; c++ {
							acc += x[xi+c] * l.W.At(wr+c, f)
						}
					}
				}
				y[o] = acc + l.B[f]
				o++
			}
		}
	}
}

// MaxPool2D is a parameter-free per-channel max-pooling layer; it exists
// as a layer type so host reference paths mirror the device pipeline
// shape-for-shape.
type MaxPool2D struct {
	Shape kernels.PoolShape
}

// Forward runs the pooling of one NHWC image x (InDim elements) into y
// (OutDim elements), first-winner tie-breaking like kernels.MaxPool.
func (l *MaxPool2D) Forward(x, y []float64) {
	s := l.Shape
	if len(x) != s.InDim() || len(y) != s.OutDim() {
		panic(fmt.Sprintf("nn: MaxPool2D.Forward input %d output %d, want %d and %d", len(x), len(y), s.InDim(), s.OutDim()))
	}
	oh, ow := s.OutH(), s.OutW()
	o := 0
	for oy := 0; oy < oh; oy++ {
		iy0 := oy * s.Stride
		for ox := 0; ox < ow; ox++ {
			ix0 := ox * s.Stride
			for c := 0; c < s.C; c++ {
				best := x[(iy0*s.W+ix0)*s.C+c]
				for ky := 0; ky < s.Size; ky++ {
					ri := ((iy0+ky)*s.W + ix0) * s.C
					for kx := 0; kx < s.Size; kx++ {
						if v := x[ri+kx*s.C+c]; v > best {
							best = v
						}
					}
				}
				y[o] = best
				o++
			}
		}
	}
}
