package nn

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

func sampleParamSet(seed uint64) (*ParamSet, *tensor.Matrix, tensor.Vector) {
	r := rng.New(seed)
	m := tensor.NewMatrix(4, 5).Randomize(r, -2, 2)
	v := tensor.NewVector(7).Randomize(r, -2, 2)
	ps := &ParamSet{}
	ps.AddMatrix("W", m)
	ps.AddVector("b", v)
	return ps, m, v
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ps, m, v := sampleParamSet(1)
	var buf bytes.Buffer
	if err := SaveParamSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	wantM, wantV := m.Clone(), v.Clone()
	m.Zero()
	v.Zero()
	if err := LoadParamSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(m, wantM) != 0 || !tensor.EqualVec(v, wantV, 0) {
		t.Fatal("round trip lost data")
	}
}

func TestSaveLoadQuick(t *testing.T) {
	f := func(seed uint64) bool {
		ps, m, _ := sampleParamSet(seed)
		var buf bytes.Buffer
		if SaveParamSet(&buf, ps) != nil {
			return false
		}
		want := m.Clone()
		m.Fill(9)
		if LoadParamSet(&buf, ps) != nil {
			return false
		}
		return tensor.MaxAbsDiff(m, want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	ps, m, _ := sampleParamSet(2)
	var buf bytes.Buffer
	if err := SaveParamSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a data byte: checksum must catch it and leave params untouched.
	before := m.Clone()
	corrupt := append([]byte(nil), data...)
	corrupt[20] ^= 0xff
	err := LoadParamSet(bytes.NewReader(corrupt), ps)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
	if tensor.MaxAbsDiff(m, before) != 0 {
		t.Fatal("failed load modified the parameters")
	}

	// Bad magic.
	bad := append([]byte("NOPE"), data[4:]...)
	if err := LoadParamSet(bytes.NewReader(bad), ps); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not detected: %v", err)
	}

	// Truncated stream.
	if err := LoadParamSet(bytes.NewReader(data[:10]), ps); err == nil {
		t.Fatal("truncation not detected")
	}

	// Wrong parameter count.
	other := &ParamSet{}
	other.AddVector("b", tensor.NewVector(3))
	if err := LoadParamSet(bytes.NewReader(data), other); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("size mismatch not detected: %v", err)
	}
}

func TestSaveDeterministic(t *testing.T) {
	ps, _, _ := sampleParamSet(3)
	var a, b bytes.Buffer
	if err := SaveParamSet(&a, ps); err != nil {
		t.Fatal(err)
	}
	if err := SaveParamSet(&b, ps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}
