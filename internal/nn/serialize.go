package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"phideep/internal/tensor"
)

// Parameter serialization: a small, versioned, deterministic binary format
// for checkpointing trained models. The shape lives in the model's Config;
// the file stores only the flat parameter data plus integrity metadata, and
// loading validates the element count against the destination ParamSet.
//
// Layout (little endian):
//
//	magic   [4]byte  "PHD1"
//	count   uint64   number of float64 parameters
//	data    count × float64
//	crc     uint64   CRC-64/ECMA of the data bytes

var paramMagic = [4]byte{'P', 'H', 'D', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// SaveParamSet writes the parameters of ps to w.
func SaveParamSet(w io.Writer, ps *ParamSet) error {
	if _, err := w.Write(paramMagic[:]); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	flat := ps.Flatten(nil)
	if err := binary.Write(w, binary.LittleEndian, uint64(len(flat))); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	buf := make([]byte, 8*len(flat))
	for i, v := range flat {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, crc64.Checksum(buf, crcTable)); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParamSet reads parameters from r into ps. The stored element count
// must match ps exactly, and the checksum must verify; on any error ps is
// left unmodified.
func LoadParamSet(r io.Reader, ps *ParamSet) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if magic != paramMagic {
		return fmt.Errorf("nn: load params: bad magic %q", magic[:])
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if int(count) != ps.Len() {
		return fmt.Errorf("nn: load params: file has %d parameters, model wants %d", count, ps.Len())
	}
	buf := make([]byte, 8*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	var crc uint64
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	if got := crc64.Checksum(buf, crcTable); got != crc {
		return fmt.Errorf("nn: load params: checksum mismatch (file corrupt)")
	}
	flat := tensor.NewVector(int(count))
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	ps.Unflatten(flat)
	return nil
}
