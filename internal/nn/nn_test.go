package nn

import (
	"math"
	"testing"
	"testing/quick"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

func TestSigmoidProperties(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("σ(0)")
	}
	if s := Sigmoid(100); s <= 0.999 || s > 1 {
		t.Fatalf("σ(100) = %g", s)
	}
	if s := Sigmoid(-100); s < 0 || s >= 0.001 {
		t.Fatalf("σ(−100) = %g", s)
	}
	// Symmetry: σ(−x) = 1 − σ(x).
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return math.Abs(Sigmoid(-x)-(1-Sigmoid(x))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidPrimeMatchesDerivative(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{-3, -1, 0, 0.5, 2} {
		numeric := (Sigmoid(x+h) - Sigmoid(x-h)) / (2 * h)
		analytic := SigmoidPrime(Sigmoid(x))
		if math.Abs(numeric-analytic) > 1e-8 {
			t.Fatalf("σ'(%g): numeric %g analytic %g", x, numeric, analytic)
		}
	}
}

func TestInitRangeAndMatrix(t *testing.T) {
	r := InitRange(100, 200)
	if math.Abs(r-math.Sqrt(6.0/300)) > 1e-15 {
		t.Fatalf("InitRange %g", r)
	}
	w := tensor.NewMatrix(40, 60)
	InitMatrix(w, rng.New(1))
	hw := InitRange(40, 60)
	for i := 0; i < w.Rows; i++ {
		for _, v := range w.RowView(i) {
			if v < -hw || v >= hw {
				t.Fatalf("weight %g outside ±%g", v, hw)
			}
		}
	}
	if w.Mean() > hw/5 || w.Mean() < -hw/5 {
		t.Fatalf("weights not centered: mean %g", w.Mean())
	}
}

func TestParamSetFlattenUnflattenRoundTrip(t *testing.T) {
	ps := &ParamSet{}
	m1 := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	v1 := tensor.Vector{5, 6, 7}
	m2 := tensor.FromRows([][]float64{{8}})
	ps.AddMatrix("W", m1)
	ps.AddVector("b", v1)
	ps.AddMatrix("U", m2)
	if ps.Len() != 8 {
		t.Fatalf("Len %d", ps.Len())
	}
	flat := ps.Flatten(nil)
	want := tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8}
	if !tensor.EqualVec(flat, want, 0) {
		t.Fatalf("Flatten %v", flat)
	}
	for i := range flat {
		flat[i] *= 10
	}
	ps.Unflatten(flat)
	if m1.At(1, 1) != 40 || v1[2] != 70 || m2.At(0, 0) != 80 {
		t.Fatal("Unflatten did not write back")
	}
	// Flatten into a provided destination.
	dst := tensor.NewVector(8)
	ps.Flatten(dst)
	if !tensor.EqualVec(dst, flat, 0) {
		t.Fatal("Flatten(dst) mismatch")
	}
	names := ps.Names()
	if len(names) != 3 || names[0] != "W" || names[1] != "b" {
		t.Fatalf("Names %v", names)
	}
}

func TestParamSetLengthGuards(t *testing.T) {
	ps := &ParamSet{}
	ps.AddVector("b", tensor.Vector{1, 2})
	for _, f := range []func(){
		func() { ps.Flatten(tensor.NewVector(3)) },
		func() { ps.Unflatten(tensor.NewVector(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestParamSetQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, r1, c1, n uint8) bool {
		rows, cols, vn := int(r1)%10+1, int(c1)%10+1, int(n)%10+1
		g := rng.New(seed)
		ps := &ParamSet{}
		m := tensor.NewMatrix(rows, cols).Randomize(g, -1, 1)
		v := tensor.NewVector(vn).Randomize(g, -1, 1)
		ps.AddMatrix("m", m)
		ps.AddVector("v", v)
		orig := ps.Flatten(nil)
		ps.Unflatten(orig)
		again := ps.Flatten(nil)
		return tensor.EqualVec(orig, again, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
