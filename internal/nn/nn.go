// Package nn holds the neural-network primitives shared by phideep's model
// packages: scalar activations, weight-initialization conventions, the
// flat parameter/gradient views used by the batch optimizers (CG, L-BFGS)
// that the paper discusses as the parallelism-friendly alternative to
// online SGD, and the Conv2D/MaxPool2D layer types of the convolutional
// workload family (im2col-form parameters plus their scalar direct
// references).
package nn

import (
	"fmt"
	"math"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Sigmoid is the logistic function 1/(1+e^(−x)).
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SigmoidPrime is σ'(x) expressed through y = σ(x): y·(1−y).
func SigmoidPrime(y float64) float64 { return y * (1 - y) }

// InitRange returns the symmetric uniform initialization half-width
// √(6/(fanIn+fanOut)) conventional for sigmoid autoencoders (Glorot &
// Bengio). Weights start in U(−r, r); biases at zero.
func InitRange(fanIn, fanOut int) float64 {
	return math.Sqrt(6 / float64(fanIn+fanOut))
}

// InitMatrix fills w with U(−r, r), r = InitRange(w.Rows, w.Cols).
func InitMatrix(w *tensor.Matrix, r *rng.RNG) {
	hw := InitRange(w.Rows, w.Cols)
	w.Randomize(r, -hw, hw)
}

// ParamSet is an ordered collection of named parameter tensors with a flat
// float64 view, the representation the batch optimizers work in.
type ParamSet struct {
	names    []string
	mats     []*tensor.Matrix
	vecs     []tensor.Vector
	isMatrix []bool
}

// AddMatrix registers a matrix parameter.
func (p *ParamSet) AddMatrix(name string, m *tensor.Matrix) {
	p.names = append(p.names, name)
	p.mats = append(p.mats, m)
	p.vecs = append(p.vecs, nil)
	p.isMatrix = append(p.isMatrix, true)
}

// AddVector registers a vector parameter.
func (p *ParamSet) AddVector(name string, v tensor.Vector) {
	p.names = append(p.names, name)
	p.mats = append(p.mats, nil)
	p.vecs = append(p.vecs, v)
	p.isMatrix = append(p.isMatrix, false)
}

// Len returns the total number of scalar parameters.
func (p *ParamSet) Len() int {
	n := 0
	for i := range p.names {
		if p.isMatrix[i] {
			n += p.mats[i].Rows * p.mats[i].Cols
		} else {
			n += len(p.vecs[i])
		}
	}
	return n
}

// Flatten copies all parameters into dst (allocated when nil) in
// registration order and returns it.
func (p *ParamSet) Flatten(dst tensor.Vector) tensor.Vector {
	if dst == nil {
		dst = tensor.NewVector(p.Len())
	}
	if len(dst) != p.Len() {
		panic(fmt.Sprintf("nn: Flatten into length %d, want %d", len(dst), p.Len()))
	}
	k := 0
	for i := range p.names {
		if p.isMatrix[i] {
			m := p.mats[i]
			for r := 0; r < m.Rows; r++ {
				k += copy(dst[k:], m.RowView(r))
			}
		} else {
			k += copy(dst[k:], p.vecs[i])
		}
	}
	return dst
}

// Unflatten copies src back into the registered parameter tensors.
func (p *ParamSet) Unflatten(src tensor.Vector) {
	if len(src) != p.Len() {
		panic(fmt.Sprintf("nn: Unflatten from length %d, want %d", len(src), p.Len()))
	}
	k := 0
	for i := range p.names {
		if p.isMatrix[i] {
			m := p.mats[i]
			for r := 0; r < m.Rows; r++ {
				k += copy(m.RowView(r), src[k:k+m.Cols])
			}
		} else {
			k += copy(p.vecs[i], src[k:k+len(p.vecs[i])])
		}
	}
}

// Names returns the registered parameter names in order.
func (p *ParamSet) Names() []string { return append([]string(nil), p.names...) }
