package core

import (
	"testing"

	"phideep/internal/device"
	"phideep/internal/opt"
	"phideep/internal/sim"
)

// recordingLR captures the rates the trainer requests.
type recordingLR struct {
	rates  []float64
	losses []float64
	lr     float64
}

func (r *recordingLR) LR() float64 {
	r.rates = append(r.rates, r.lr)
	return r.lr
}

func (r *recordingLR) Observe(loss float64) {
	r.losses = append(r.losses, loss)
	r.lr *= 0.5
}

func TestAdaptiveLRDrivesTheTrainer(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	rec := &recordingLR{lr: 0.4}
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 5, Adaptive: rec}}
	if _, err := tr.Run(m, digitSource(100)); err != nil {
		t.Fatal(err)
	}
	if len(rec.rates) != 5 || len(rec.losses) != 5 {
		t.Fatalf("controller called %d/%d times", len(rec.rates), len(rec.losses))
	}
	// The trainer must use the controller's current rate each step.
	if rec.rates[0] != 0.4 || rec.rates[1] != 0.2 || rec.rates[4] != 0.025 {
		t.Fatalf("rates not threaded through: %v", rec.rates)
	}
}

func TestAdaptiveIgnoredOnTimingOnlyDevices(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	m := newAE(t, dev, Improved, 10)
	rec := &recordingLR{lr: 0.4}
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 3, LR: 0.1, Adaptive: rec}}
	if _, err := tr.Run(m, digitSource(100)); err != nil {
		t.Fatal(err)
	}
	if len(rec.rates) != 0 || len(rec.losses) != 0 {
		t.Fatal("adaptive controller must not run without a loss signal")
	}
}

func TestBoldDriverTrainsAutoencoder(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{
		Epochs: 20, Adaptive: opt.NewBoldDriver(0.05), ChunkExamples: 50, Prefetch: true,
	}}
	res, err := tr.Run(m, digitSource(100))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalLoss < res.FirstLoss) {
		t.Fatalf("bold-driver training did not learn: %g → %g", res.FirstLoss, res.FinalLoss)
	}
}
