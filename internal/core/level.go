// Package core is the paper's primary contribution: the parallel
// unsupervised-training engine for the Intel Xeon Phi. It implements
// Algorithm 1 — stream the training set to the device in large chunks,
// split each chunk into minibatches, compute the gradient (back-propagation
// for the Sparse Autoencoder, Contrastive Divergence for the RBM) and
// update the parameters — with the Fig. 5 loading-thread pipeline that
// prefetches the next chunk over PCIe while the cores train on the current
// one.
//
// The engine is model-agnostic: anything implementing Trainable (the
// autoencoder and rbm Models) trains under any OptLevel of the Table I
// ladder on any simulated platform.
package core

import (
	"fmt"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
)

// OptLevel is one step of the paper's Table I optimization ladder.
type OptLevel int

const (
	// Baseline is the un-optimized sequential algorithm: scalar loops on a
	// single thread.
	Baseline OptLevel = iota
	// OpenMP parallelizes all loops across the cores, still scalar and
	// unblocked.
	OpenMP
	// OpenMPMKL additionally routes matrix operations through the
	// MKL-grade blocked, vectorized GEMM.
	OpenMPMKL
	// Improved is OpenMPMKL plus loop fusion (fewer, coarser parallel
	// regions) and the Fig. 6 concurrent scheduling of independent ops.
	Improved
)

// OptLevels lists the ladder in order, for sweeps.
var OptLevels = []OptLevel{Baseline, OpenMP, OpenMPMKL, Improved}

func (l OptLevel) String() string {
	switch l {
	case Baseline:
		return "Baseline"
	case OpenMP:
		return "OpenMP"
	case OpenMPMKL:
		return "OpenMP+MKL"
	case Improved:
		return "Improved OpenMP+MKL"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(l))
	}
}

// KernelLevel maps the ladder step to its kernel implementation.
func (l OptLevel) KernelLevel() kernels.Level {
	switch l {
	case Baseline:
		return kernels.Naive
	case OpenMP:
		return kernels.Parallel
	default:
		return kernels.ParallelBlocked
	}
}

// NewContext builds a blas context configured for the ladder step on the
// given device: kernel level, VPU vectorization, loop fusion and Fig. 6
// concurrency are all switched together, exactly as the paper's
// optimization steps stack. cores limits the physical cores (0 = all; 30
// reproduces Table I's right column).
func NewContext(dev *device.Device, lvl OptLevel, cores int, seed uint64) *blas.Context {
	ctx := blas.NewContext(dev, lvl.KernelLevel(), seed)
	ctx.Cores = cores
	ctx.AutoFuse = lvl == Improved
	ctx.AutoConcurrent = lvl == Improved
	return ctx
}
