package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Checkpointer is implemented by Trainables that can serialize their full
// resumable training state (parameters plus the sampling-RNG stream). The
// autoencoder and rbm Models implement it; TrainConfig's checkpoint and
// resume options require it.
type Checkpointer interface {
	SaveState(w io.Writer) error
	RestoreState(r io.Reader) error
}

// Checkpoint is one crash-consistent snapshot of a training run: the run
// cursor (enough to re-enter Algorithm 1's chunk loop at the exact point
// the snapshot was taken) plus the model's opaque state blob.
//
// On-disk layout (little endian):
//
//	magic   [4]byte  "PHCK"
//	version uint32   1
//	step, chunk, examples, skipped  uint64
//	firstLoss, epochLossSum         float64
//	epochLossN                      uint64
//	epochLoss  uint64 count + count × float64
//	model      uint64 length + blob (Checkpointer.SaveState output)
//	crc     uint64   CRC-64/ECMA of everything after the magic
type Checkpoint struct {
	Step     int
	Chunk    int
	Examples int
	Skipped  int

	FirstLoss    float64
	EpochLossSum float64
	EpochLossN   int
	EpochLoss    []float64

	Model []byte
}

var ckptMagic = [4]byte{'P', 'H', 'C', 'K'}

const ckptVersion = 1

var ckptCRC = crc64.MakeTable(crc64.ECMA)

// encode renders the checkpoint to its on-disk byte form.
func (c *Checkpoint) encode() []byte {
	var body bytes.Buffer
	le := binary.LittleEndian
	w64 := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		body.Write(b[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	var ver [4]byte
	le.PutUint32(ver[:], ckptVersion)
	body.Write(ver[:])
	w64(uint64(c.Step))
	w64(uint64(c.Chunk))
	w64(uint64(c.Examples))
	w64(uint64(c.Skipped))
	wf(c.FirstLoss)
	wf(c.EpochLossSum)
	w64(uint64(c.EpochLossN))
	w64(uint64(len(c.EpochLoss)))
	for _, v := range c.EpochLoss {
		wf(v)
	}
	w64(uint64(len(c.Model)))
	body.Write(c.Model)

	out := make([]byte, 0, 4+body.Len()+8)
	out = append(out, ckptMagic[:]...)
	out = append(out, body.Bytes()...)
	var crc [8]byte
	le.PutUint64(crc[:], crc64.Checksum(body.Bytes(), ckptCRC))
	return append(out, crc[:]...)
}

// decodeCheckpoint parses and verifies an encoded checkpoint.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 4+4+8 || !bytes.Equal(data[:4], ckptMagic[:]) {
		return nil, fmt.Errorf("core: checkpoint: bad magic or truncated file")
	}
	body, crcBytes := data[4:len(data)-8], data[len(data)-8:]
	le := binary.LittleEndian
	if crc64.Checksum(body, ckptCRC) != le.Uint64(crcBytes) {
		return nil, fmt.Errorf("core: checkpoint: checksum mismatch (file corrupt)")
	}
	if v := le.Uint32(body[:4]); v != ckptVersion {
		return nil, fmt.Errorf("core: checkpoint: version %d, want %d", v, ckptVersion)
	}
	body = body[4:]
	r64 := func() (uint64, error) {
		if len(body) < 8 {
			return 0, fmt.Errorf("core: checkpoint: truncated body")
		}
		v := le.Uint64(body[:8])
		body = body[8:]
		return v, nil
	}
	c := &Checkpoint{}
	for _, dst := range []*int{&c.Step, &c.Chunk, &c.Examples, &c.Skipped} {
		v, err := r64()
		if err != nil {
			return nil, err
		}
		*dst = int(v)
	}
	for _, dst := range []*float64{&c.FirstLoss, &c.EpochLossSum} {
		v, err := r64()
		if err != nil {
			return nil, err
		}
		*dst = math.Float64frombits(v)
	}
	n, err := r64()
	if err != nil {
		return nil, err
	}
	c.EpochLossN = int(n)
	count, err := r64()
	if err != nil {
		return nil, err
	}
	if uint64(len(body)) < count*8 {
		return nil, fmt.Errorf("core: checkpoint: truncated epoch losses")
	}
	c.EpochLoss = make([]float64, count)
	for i := range c.EpochLoss {
		v, _ := r64()
		c.EpochLoss[i] = math.Float64frombits(v)
	}
	blobLen, err := r64()
	if err != nil {
		return nil, err
	}
	if uint64(len(body)) != blobLen {
		return nil, fmt.Errorf("core: checkpoint: model blob is %d bytes, header says %d", len(body), blobLen)
	}
	c.Model = append([]byte(nil), body...)
	return c, nil
}

// EncodeCheckpoint renders c to its on-disk PHCK byte form (magic, body,
// CRC-64) without touching the filesystem. It is the in-memory handoff
// format internal/cluster uses to ship the lead replica's state to a
// rejoining node: the same framing and checksum as a checkpoint file, so a
// corrupted handoff is detected exactly like a corrupted file.
func EncodeCheckpoint(c *Checkpoint) []byte { return c.encode() }

// DecodeCheckpoint parses and verifies bytes produced by EncodeCheckpoint
// (or read from a checkpoint file).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return decodeCheckpoint(data) }

// WriteCheckpoint atomically persists c to path: the bytes are written to a
// temporary file in the same directory, synced to stable storage, and
// renamed over the destination, so a crash at any point leaves either the
// previous checkpoint or the new one — never a torn file.
func WriteCheckpoint(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(c.encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads and verifies a checkpoint written by
// WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	return decodeCheckpoint(data)
}
