package core

import (
	"encoding/json"
	"testing"

	"phideep/internal/device"
	"phideep/internal/metrics"
	"phideep/internal/parallel"
	"phideep/internal/sim"
)

// TestRunReportObservability is the end-to-end check of the wall-clock
// observability layer: a real numeric training run, with collection
// enabled, must yield (a) non-zero epoch wall timings and throughput in the
// Result and (b) a registry snapshot whose kernel, parallel, device and
// trainer counters all moved — the exact content phitrain -metrics exports.
func TestRunReportObservability(t *testing.T) {
	metrics.Default().Reset()
	metrics.SetEnabled(true)
	defer func() {
		metrics.SetEnabled(false)
		metrics.Default().Reset()
	}()

	pool := parallel.NewPool(2)
	defer pool.Close()
	dev := device.New(sim.XeonPhi5110P(), true, pool)
	m := newAE(t, dev, Improved, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 3, LR: 0.5, ChunkExamples: 50, BufferDepth: 2, Prefetch: true}}
	res, err := tr.Run(m, digitSource(100))
	if err != nil {
		t.Fatal(err)
	}

	// Result-side wall clock.
	if res.WallSeconds <= 0 {
		t.Fatalf("WallSeconds = %g, want > 0", res.WallSeconds)
	}
	if res.ExamplesPerSec <= 0 {
		t.Fatalf("ExamplesPerSec = %g, want > 0", res.ExamplesPerSec)
	}
	if len(res.EpochWallSeconds) != 3 {
		t.Fatalf("EpochWallSeconds has %d entries, want 3", len(res.EpochWallSeconds))
	}
	for i, sec := range res.EpochWallSeconds {
		if sec <= 0 {
			t.Fatalf("epoch %d wall time %g, want > 0", i, sec)
		}
	}

	// Registry-side counters.
	s := metrics.Default().Snapshot()
	for _, name := range []string{
		"kernels.gemm.calls",
		"device.kernel.launches",
		"device.transfers",
		"parallel.regions",
		"trainer.steps",
		"trainer.examples",
	} {
		if s.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, s.Counters[name])
		}
	}
	// Exactly one micro-kernel path serves the blocked levels on a given
	// host; between them, asm and the Go fallback must account for every
	// blocked GEMM, and something must have run blocked under Improved.
	blocked := s.Counters["kernels.gemm.path.asm"] + s.Counters["kernels.gemm.path.go"]
	if blocked <= 0 {
		t.Errorf("no blocked-path GEMM recorded (asm=%d go=%d)",
			s.Counters["kernels.gemm.path.asm"], s.Counters["kernels.gemm.path.go"])
	}
	if s.Floats["kernels.gemm.flops"] <= 0 {
		t.Errorf("kernels.gemm.flops = %g, want > 0", s.Floats["kernels.gemm.flops"])
	}
	if s.Floats["device.wall.compute_seconds"] <= 0 {
		t.Errorf("device.wall.compute_seconds = %g, want > 0", s.Floats["device.wall.compute_seconds"])
	}
	if s.Floats["device.sim.compute_seconds"] <= 0 {
		t.Errorf("device.sim.compute_seconds = %g, want > 0", s.Floats["device.sim.compute_seconds"])
	}
	if h := s.Histograms["trainer.epoch.seconds"]; h.Count != 3 || h.Sum <= 0 {
		t.Errorf("trainer.epoch.seconds count=%d sum=%g, want 3 epochs with positive time", h.Count, h.Sum)
	}
	if h := s.Histograms["kernels.gemm.seconds"]; h.Count != s.Counters["kernels.gemm.calls"] {
		t.Errorf("gemm duration observations %d != gemm calls %d", h.Count, s.Counters["kernels.gemm.calls"])
	}

	// The snapshot is what -metrics serializes: it must marshal cleanly.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

// TestWallClockWithoutMetrics: Result wall-clock fields are filled even
// when global collection is off (they cost two clock reads per epoch), and
// the registry stays untouched.
func TestWallClockWithoutMetrics(t *testing.T) {
	metrics.Default().Reset()
	if metrics.Enabled() {
		t.Fatal("metrics unexpectedly enabled at test start")
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, OpenMPMKL, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 2, LR: 0.5, ChunkExamples: 50}}
	res, err := tr.Run(m, digitSource(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.WallSeconds <= 0 || len(res.EpochWallSeconds) != 2 {
		t.Fatalf("wall clock not recorded with metrics off: %g, %v", res.WallSeconds, res.EpochWallSeconds)
	}
	if got := metrics.Default().Snapshot().Counters["trainer.steps"]; got != 0 {
		t.Fatalf("registry moved while disabled: trainer.steps = %d", got)
	}
}
