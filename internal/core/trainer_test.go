package core

import (
	"math"
	"strings"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func digitSource(n int) data.Source { return data.NewDigits(8, n, 3, 0.02) }

func newAE(t *testing.T, dev *device.Device, lvl OptLevel, batch int) *autoencoder.Model {
	t.Helper()
	ctx := NewContext(dev, lvl, 0, 1)
	m, err := autoencoder.New(ctx, autoencoder.Config{Visible: 64, Hidden: 16, Lambda: 1e-5}, batch, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunEpochsNumericTrains(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 30, LR: 0.8, ChunkExamples: 50, BufferDepth: 2, Prefetch: true}}
	res, err := tr.Run(m, digitSource(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 30*10 {
		t.Fatalf("steps %d", res.Steps)
	}
	if res.Examples != 30*100 {
		t.Fatalf("examples %d", res.Examples)
	}
	if len(res.EpochLoss) != 30 {
		t.Fatalf("epoch losses %d", len(res.EpochLoss))
	}
	if !(res.EpochLoss[29] < res.EpochLoss[0]) {
		t.Fatalf("loss did not fall: %g → %g", res.EpochLoss[0], res.EpochLoss[29])
	}
	if !(res.FinalLoss < res.FirstLoss) {
		t.Fatalf("chunk losses did not fall: %g → %g", res.FirstLoss, res.FinalLoss)
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	if res.Chunks != 60 { // 2 chunks per epoch × 30
		t.Fatalf("chunks %d", res.Chunks)
	}
}

func TestRunIterationsMode(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	m := newAE(t, dev, OpenMPMKL, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 37, LR: 0.1, ChunkExamples: 50}}
	res, err := tr.Run(m, data.Null{D: 64, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 37 {
		t.Fatalf("steps %d", res.Steps)
	}
	if len(res.EpochLoss) != 0 {
		t.Fatal("iteration mode must not record epoch losses")
	}
	if !math.IsNaN(res.FinalLoss) {
		t.Fatal("model-only loss must be NaN")
	}
	// 37 steps of batch 10 → 370 examples → ceil(370/50) = 8 chunks.
	if res.Chunks != 8 {
		t.Fatalf("chunks %d", res.Chunks)
	}
}

func TestPrefetchOverlapsTransfers(t *testing.T) {
	run := func(prefetch bool, depth int) float64 {
		dev := device.New(sim.XeonPhi5110P(), false, nil)
		m := newAE(t, dev, OpenMPMKL, 100)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{
			Iterations: 100, LR: 0.1, ChunkExamples: 1000,
			BufferDepth: depth, Prefetch: prefetch,
		}}
		res, err := tr.Run(m, data.Null{D: 64, N: 10000})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimSeconds
	}
	sync := run(false, 2)
	pipelined := run(true, 2)
	if !(pipelined < sync) {
		t.Fatalf("prefetch did not help: %g vs %g", pipelined, sync)
	}
	single := run(true, 1)
	if !(pipelined < single) {
		t.Fatalf("double buffering no better than single: %g vs %g", pipelined, single)
	}
}

func TestLRScheduleIsApplied(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	before := m.Download().W1.Clone()
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{
		Iterations: 5, Schedule: func(step int) float64 { return 0 }, LR: 1,
	}}
	if _, err := tr.Run(m, digitSource(100)); err != nil {
		t.Fatal(err)
	}
	after := m.Download().W1
	if tensor.MaxAbsDiff(before, after) != 0 {
		t.Fatal("zero-LR schedule still changed weights")
	}
}

func TestRunValidation(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	m := newAE(t, dev, OpenMPMKL, 10)
	cases := []struct {
		name string
		cfg  TrainConfig
		src  data.Source
		want string
	}{
		{"no duration", TrainConfig{LR: 1}, data.Null{D: 64, N: 100}, "neither"},
		{"both durations", TrainConfig{Epochs: 1, Iterations: 1, LR: 1}, data.Null{D: 64, N: 100}, "mutually exclusive"},
		{"bad chunk", TrainConfig{Epochs: 1, LR: 1, ChunkExamples: 15}, data.Null{D: 64, N: 100}, "multiple"},
		{"dim mismatch", TrainConfig{Epochs: 1, LR: 1}, data.Null{D: 32, N: 100}, "dim"},
		{"tiny source", TrainConfig{Epochs: 1, LR: 1}, data.Null{D: 64, N: 5}, "smaller than one batch"},
		{"zero lr", TrainConfig{Epochs: 1}, data.Null{D: 64, N: 100}, "learning rate"},
	}
	for _, c := range cases {
		tr := &Trainer{Dev: dev, Cfg: c.cfg}
		_, err := tr.Run(m, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestChunkRingFreedAfterRun(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	m := newAE(t, dev, OpenMPMKL, 10)
	before := dev.Allocated()
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 3, LR: 0.1}}
	if _, err := tr.Run(m, data.Null{D: 64, N: 100}); err != nil {
		t.Fatal(err)
	}
	if dev.Allocated() != before {
		t.Fatalf("chunk ring leaked: %d → %d", before, dev.Allocated())
	}
}

func TestOptLevelMapping(t *testing.T) {
	if Baseline.KernelLevel().IsParallel() {
		t.Fatal("baseline must be sequential")
	}
	if !OpenMP.KernelLevel().IsParallel() || OpenMP.KernelLevel().IsBlocked() {
		t.Fatal("OpenMP must be parallel scalar")
	}
	if !OpenMPMKL.KernelLevel().IsBlocked() {
		t.Fatal("MKL must be blocked")
	}
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	for _, lvl := range OptLevels {
		if lvl.String() == "" {
			t.Fatal("empty level name")
		}
		ctx := NewContext(dev, lvl, 30, 1)
		if ctx.Cores != 30 {
			t.Fatal("core limit dropped")
		}
		if (lvl == Improved) != ctx.AutoFuse || (lvl == Improved) != ctx.AutoConcurrent {
			t.Fatalf("level %v fusion flags wrong", lvl)
		}
	}
	if OptLevel(9).String() != "OptLevel(9)" {
		t.Fatal("unknown level formatting")
	}
}

func TestLadderTimesMonotone(t *testing.T) {
	// The whole point of Table I: each optimization step must make the
	// same training run faster on the simulated Phi — at Table I's
	// workload scale (batch 10000, 1024-wide layers). At much smaller
	// sizes the MKL step can legitimately fail to pay off (Fig. 7's
	// small-network regime), so this test uses the paper's geometry.
	times := make([]float64, 0, len(OptLevels))
	for _, lvl := range OptLevels {
		dev := device.New(sim.XeonPhi5110P(), false, nil)
		ctx := NewContext(dev, lvl, 0, 1)
		m, err := autoencoder.New(ctx, autoencoder.Config{Visible: 1024, Hidden: 512}, 10000, 2)
		if err != nil {
			t.Fatal(err)
		}
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 10, LR: 0.1, ChunkExamples: 10000, Prefetch: true}}
		res, err := tr.Run(m, data.Null{D: 1024, N: 100000})
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.SimSeconds)
	}
	for i := 1; i < len(times); i++ {
		if !(times[i] < times[i-1]) {
			t.Fatalf("ladder not monotone at %v: %v", OptLevels[i], times)
		}
	}
	if times[0]/times[len(times)-1] < 20 {
		t.Fatalf("full ladder speedup only %g", times[0]/times[len(times)-1])
	}
}

func TestDeterministicSimTimes(t *testing.T) {
	run := func() float64 {
		dev := device.New(sim.XeonPhi5110P(), false, nil)
		m := newAE(t, dev, Improved, 10)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 20, LR: 0.1, Prefetch: true}}
		res, err := tr.Run(m, data.Null{D: 64, N: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimSeconds
	}
	if run() != run() {
		t.Fatal("simulated time not reproducible")
	}
	_ = rng.New(0) // keep the import for clarity of intent
}
