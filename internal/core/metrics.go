package core

import "phideep/internal/metrics"

// Wall-clock observability handles (DESIGN.md §"Observability"). The
// Trainer always fills the wall-clock fields of Result (two time.Now reads
// per epoch cost nothing against a training epoch); the registry metrics
// below additionally aggregate across runs in one process and are recorded
// only while metrics.Enabled() holds.
var (
	mRuns     = metrics.Default().Counter("trainer.runs")
	mSteps    = metrics.Default().Counter("trainer.steps")
	mExamples = metrics.Default().Counter("trainer.examples")
	mChunks   = metrics.Default().Counter("trainer.chunks")

	// mEpochSeconds is real host seconds per completed epoch (exponential
	// buckets, 1 ms – ~4.5 h); mExamplesPerSec is the last finished run's
	// end-to-end throughput.
	mEpochSeconds   = metrics.Default().Histogram("trainer.epoch.seconds", metrics.ExpBuckets(1e-3, 4, 12)...)
	mExamplesPerSec = metrics.Default().Gauge("trainer.examples_per_sec")

	// Fault-tolerance counters: chunk transfers abandoned by the fault
	// model (trained on stale data instead), checkpoints persisted, and
	// runs restored from a checkpoint.
	mSkippedChunks = metrics.Default().Counter("trainer.chunks_skipped")
	mCheckpoints   = metrics.Default().Counter("trainer.checkpoints")
	mResumes       = metrics.Default().Counter("trainer.resumes")
)
