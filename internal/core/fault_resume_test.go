package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/rbm"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func newRBM(t *testing.T, dev *device.Device, batch int) *rbm.Model {
	t.Helper()
	ctx := NewContext(dev, Improved, 0, 1)
	m, err := rbm.New(ctx, rbm.Config{Visible: 64, Hidden: 16, SampleHidden: true}, batch, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFaultInjectedRunBitIdenticalAndSlower is the tentpole acceptance
// criterion: with transient faults whose retries all succeed, the numeric
// result is bit-identical to the clean run while the simulated clock shows
// the real cost of the flaky link.
func TestFaultInjectedRunBitIdenticalAndSlower(t *testing.T) {
	train := func(faulty bool) (*Result, *rbm.Params, device.Stats) {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		if faulty {
			if err := dev.EnableFaults(device.FaultConfig{Rate: 0.4, Seed: 11, MaxRetries: 200}); err != nil {
				t.Fatal(err)
			}
		}
		m := newRBM(t, dev, 10)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 3, LR: 0.2, ChunkExamples: 50, Prefetch: true}}
		res, err := tr.Run(m, digitSource(100))
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Download(), dev.Stats()
	}
	clean, cleanParams, _ := train(false)
	faulty, faultyParams, st := train(true)
	if st.FaultsTransient == 0 || st.Retries == 0 {
		t.Fatalf("fault model did not fire: %+v", st)
	}
	if st.FailedTransfers != 0 {
		t.Fatalf("retries did not all succeed: %+v", st)
	}
	if tensor.MaxAbsDiff(cleanParams.W, faultyParams.W) != 0 ||
		tensor.MaxAbsDiff(cleanParams.B.AsRow(), faultyParams.B.AsRow()) != 0 ||
		tensor.MaxAbsDiff(cleanParams.C.AsRow(), faultyParams.C.AsRow()) != 0 {
		t.Fatal("fault-injected run changed the numerics")
	}
	if faulty.FinalLoss != clean.FinalLoss {
		t.Fatalf("final loss diverged: %g vs %g", faulty.FinalLoss, clean.FinalLoss)
	}
	if !(faulty.SimSeconds > clean.SimSeconds) {
		t.Fatalf("faulty run not slower: %g vs clean %g", faulty.SimSeconds, clean.SimSeconds)
	}
	if st.BackoffSeconds <= 0 {
		t.Fatal("no backoff charged to the simulated clock")
	}
}

// TestKillAndResumeMatchesUninterrupted is the second acceptance criterion:
// a run killed at step k and resumed from its checkpoint reaches exactly
// the same final loss and parameters as the uninterrupted run. The RBM
// samples its hidden units, so this also proves the RNG stream is restored.
func TestKillAndResumeMatchesUninterrupted(t *testing.T) {
	src := digitSource(100)
	const totalSteps = 40 // batch 10, chunk 50 → 8 chunks of 5 steps

	full := func() (*Result, *rbm.Params) {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m := newRBM(t, dev, 10)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: totalSteps, LR: 0.2, ChunkExamples: 50, Prefetch: true}}
		res, err := tr.Run(m, src)
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Download()
	}
	wantRes, wantParams := full()

	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	// "Kill" at step 15: train only 15 steps, checkpointing every chunk.
	{
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m := newRBM(t, dev, 10)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{
			Iterations: 15, LR: 0.2, ChunkExamples: 50, Prefetch: true,
			CheckpointPath: ckpt,
		}}
		res, err := tr.Run(m, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Checkpoints == 0 {
			t.Fatal("no checkpoints written")
		}
	}
	// Resume in a fresh process (fresh device, fresh model) and run to the
	// original target.
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newRBM(t, dev, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{
		Iterations: totalSteps, LR: 0.2, ChunkExamples: 50, Prefetch: true,
		ResumePath: ckpt,
	}}
	res, err := tr.Run(m, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("run not marked resumed")
	}
	if res.Steps != wantRes.Steps || res.Examples != wantRes.Examples {
		t.Fatalf("cursor mismatch: steps %d/%d examples %d/%d",
			res.Steps, wantRes.Steps, res.Examples, wantRes.Examples)
	}
	if res.FinalLoss != wantRes.FinalLoss {
		t.Fatalf("final loss %g, uninterrupted %g", res.FinalLoss, wantRes.FinalLoss)
	}
	if res.FirstLoss != wantRes.FirstLoss {
		t.Fatalf("first loss %g, uninterrupted %g", res.FirstLoss, wantRes.FirstLoss)
	}
	got := m.Download()
	if tensor.MaxAbsDiff(wantParams.W, got.W) != 0 ||
		tensor.MaxAbsDiff(wantParams.B.AsRow(), got.B.AsRow()) != 0 ||
		tensor.MaxAbsDiff(wantParams.C.AsRow(), got.C.AsRow()) != 0 {
		t.Fatal("resumed run diverged from the uninterrupted one")
	}
}

func TestResumeRestoresEpochAccounting(t *testing.T) {
	// Epoch-mode resume: the restored epoch-loss accumulators must yield
	// the same EpochLoss history as the uninterrupted run. Both phases use
	// epoch mode; the kill point is the end of epoch 2 of 5.
	src := digitSource(100)
	run := func(epochs int, ckptPath, resumePath string) *Result {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m := newAE(t, dev, Improved, 10)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{
			Epochs: epochs, LR: 0.5, ChunkExamples: 50, Prefetch: true,
			CheckpointPath: ckptPath, ResumePath: resumePath,
		}}
		res, err := tr.Run(m, src)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(5, "", "")
	ckpt := filepath.Join(t.TempDir(), "epoch.ckpt")
	run(2, ckpt, "")
	got := run(5, "", ckpt)
	if len(got.EpochLoss) != len(want.EpochLoss) {
		t.Fatalf("epoch losses %d, want %d", len(got.EpochLoss), len(want.EpochLoss))
	}
	for i := range want.EpochLoss {
		if got.EpochLoss[i] != want.EpochLoss[i] {
			t.Fatalf("epoch %d loss %g, want %g", i, got.EpochLoss[i], want.EpochLoss[i])
		}
	}
}

func TestGracefulDegradationSkipsChunks(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	// Every transfer faults transiently and the budget is tiny, so every
	// chunk transfer is abandoned; the run must still complete, training
	// on stale (initially zero) chunk data, and account the skips. Faults
	// go live only after the model upload so construction succeeds.
	if err := dev.EnableFaults(device.FaultConfig{Rate: 0.999999, MaxRetries: 1, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 20, LR: 0.5, ChunkExamples: 50, Prefetch: true}}
	res, err := tr.Run(m, digitSource(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 20 {
		t.Fatalf("steps %d", res.Steps)
	}
	if res.SkippedChunks != res.Chunks || res.SkippedChunks == 0 {
		t.Fatalf("skipped %d of %d chunks", res.SkippedChunks, res.Chunks)
	}
	if res.Device.FailedTransfers == 0 {
		t.Fatal("device did not record failed transfers")
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("no loss computed")
	}
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	c := &Checkpoint{
		Step: 7, Chunk: 2, Examples: 70, Skipped: 1,
		FirstLoss: 0.5, EpochLossSum: 1.25, EpochLossN: 3,
		EpochLoss: []float64{0.9, 0.7}, Model: []byte("model-blob"),
	}
	if err := WriteCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != c.Step || got.Chunk != c.Chunk || got.Examples != c.Examples ||
		got.Skipped != c.Skipped || got.FirstLoss != c.FirstLoss ||
		got.EpochLossSum != c.EpochLossSum || got.EpochLossN != c.EpochLossN ||
		len(got.EpochLoss) != 2 || got.EpochLoss[1] != 0.7 || string(got.Model) != "model-blob" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// No temp litter after a successful atomic rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
	// A flipped byte must be detected.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	// Truncation must be detected, not panic.
	if err := os.WriteFile(path, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointValidation(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	// Missing resume file.
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 5, LR: 0.1, ResumePath: "/nonexistent/x.ckpt"}}
	if _, err := tr.Run(m, digitSource(100)); err == nil {
		t.Fatal("missing resume file accepted")
	}
	// Negative cadence.
	tr = &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 5, LR: 0.1, CheckpointPath: "x", CheckpointEvery: -1}}
	if _, err := tr.Run(m, digitSource(100)); err == nil {
		t.Fatal("negative cadence accepted")
	}
	// A checkpoint whose cursor is past the requested run must be refused.
	ckpt := filepath.Join(t.TempDir(), "far.ckpt")
	{
		d2 := device.New(sim.XeonPhi5110P(), true, nil)
		m2 := newAE(t, d2, Improved, 10)
		tr2 := &Trainer{Dev: d2, Cfg: TrainConfig{Iterations: 30, LR: 0.1, ChunkExamples: 50, CheckpointPath: ckpt}}
		if _, err := tr2.Run(m2, digitSource(100)); err != nil {
			t.Fatal(err)
		}
	}
	tr = &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 5, LR: 0.1, ChunkExamples: 50, ResumePath: ckpt}}
	if _, err := tr.Run(m, digitSource(100)); err == nil {
		t.Fatal("overshooting checkpoint accepted")
	}
}

// TestEpochChunkAccountingWithWraparound covers the satellite: when
// src.Len() is not a multiple of ChunkExamples, chunk windows wrap across
// epoch boundaries; the step, example and epoch-loss accounting must stay
// exact.
func TestEpochChunkAccountingWithWraparound(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	// 130 examples, chunks of 40: chunk starts 0,40,80,120→wrap,30,70,…
	src := data.NewDigits(8, 130, 3, 0.02)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 4, LR: 0.5, ChunkExamples: 40, Prefetch: true}}
	res, err := tr.Run(m, src)
	if err != nil {
		t.Fatal(err)
	}
	stepsPerEpoch := 13 // 130 / batch 10
	if res.Steps != 4*stepsPerEpoch {
		t.Fatalf("steps %d, want %d", res.Steps, 4*stepsPerEpoch)
	}
	if res.Examples != 4*stepsPerEpoch*10 {
		t.Fatalf("examples %d, want %d", res.Examples, 4*stepsPerEpoch*10)
	}
	if len(res.EpochLoss) != 4 {
		t.Fatalf("epoch losses %d, want 4", len(res.EpochLoss))
	}
	if len(res.EpochWallSeconds) != 4 {
		t.Fatalf("epoch wall seconds %d, want 4", len(res.EpochWallSeconds))
	}
	// 52 steps of 10 examples = 520 examples → ceil(520/40) = 13 chunks.
	if res.Chunks != 13 {
		t.Fatalf("chunks %d, want 13", res.Chunks)
	}
	for i, l := range res.EpochLoss {
		if math.IsNaN(l) {
			t.Fatalf("epoch %d loss NaN", i)
		}
	}
}
