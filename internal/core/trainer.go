package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"time"

	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/feed"
	"phideep/internal/metrics"
	"phideep/internal/opt"
	"phideep/internal/tensor"
)

// Trainable is a model the engine can drive: one gradient-and-update step
// per minibatch resident on the device.
type Trainable interface {
	// Step consumes one Batch×InputDim device buffer and returns a
	// progress metric (reconstruction error; 0 on model-only devices).
	Step(x *device.Buffer, lr float64) float64
	// BatchSize returns the fixed minibatch size the model was built for.
	BatchSize() int
	// InputDim returns the example dimensionality.
	InputDim() int
}

// TrainConfig parameterizes one training run of Algorithm 1.
type TrainConfig struct {
	// Epochs is the number of passes over the source. Mutually exclusive
	// with Iterations.
	Epochs int
	// Iterations, when non-zero, trains for exactly this many minibatch
	// updates (streaming through the source with wraparound) instead of
	// whole epochs — the "200 iterations per layer" protocol of Table I.
	Iterations int
	// LR is the learning rate; Schedule, when non-nil, overrides it per
	// update step.
	LR       float64
	Schedule func(step int) float64
	// Adaptive, when non-nil, overrides both with a loss-driven controller
	// (the §III adaptive-learning-rate strategy, e.g. opt.NewBoldDriver).
	// Effective only on numeric devices — timing-only runs have no loss
	// signal and fall back to Schedule/LR.
	Adaptive opt.AdaptiveLR
	// ChunkExamples is the number of examples per device chunk (Fig. 5's
	// "large chunk"). It must be a positive multiple of the model's batch
	// size. Zero defaults to min(srcLen, 32×batch) rounded to a batch
	// multiple.
	ChunkExamples int
	// BufferDepth is the number of staging chunk buffers in device global
	// memory; 2 gives the paper's double buffering. Minimum 1.
	BufferDepth int
	// Prefetch enables the loading thread: the transfer of chunk i+1
	// proceeds while chunk i trains. With Prefetch false every transfer
	// waits for the compute engine to drain first (the configuration the
	// paper measured at "about 17% of the total time ... spent on
	// transferring").
	Prefetch bool
	// CheckpointPath, when non-empty, enables crash-consistent periodic
	// checkpointing: every CheckpointEvery chunks the trainer atomically
	// persists the model state (parameters + RNG stream) and the run
	// cursor via WriteCheckpoint. The model must implement Checkpointer.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in chunks; zero defaults
	// to 1 (after every chunk).
	CheckpointEvery int
	// ResumePath, when non-empty, restores a checkpoint written by a
	// previous run before training starts: the model state is re-uploaded
	// and the run re-enters the chunk loop at the saved cursor. For models
	// whose only mutable state is parameters and the RNG stream, the
	// resumed run is bit-identical to the uninterrupted one.
	ResumePath string
	// Feed, when non-nil, streams chunks through the data plane's
	// lease/commit protocol (DESIGN.md §15) instead of ad-hoc index
	// arithmetic over the source: every chunk is leased before its
	// transfer and committed — at the simulated time compute drained
	// it — when its ring slot is reused. The feed's ChunkPlan supplies
	// the chunk geometry (ChunkExamples, if also set, must agree), its
	// lease window must cover BufferDepth, and a resumed run re-seeks the
	// consumer to the checkpointed chunk. For a single consumer the leased
	// chunk walk is exactly the classic path's, so results are
	// bit-identical at a fixed seed.
	Feed *feed.Consumer
}

// Result summarizes a training run.
type Result struct {
	// SimSeconds is the simulated makespan of all device work.
	SimSeconds float64
	// Steps is the number of minibatch updates executed.
	Steps int
	// Examples is the number of training examples consumed.
	Examples int
	// Chunks is the number of chunk transfers issued.
	Chunks int
	// FinalLoss and FirstLoss are the progress metric averaged over the
	// last and first chunk respectively (NaN on model-only devices).
	FirstLoss, FinalLoss float64
	// EpochLoss is the average progress metric per epoch (empty when
	// Iterations mode is used; NaN entries on model-only devices).
	EpochLoss []float64
	// WallSeconds is the real (host) execution time of the run — the
	// measured counterpart of the simulated SimSeconds.
	WallSeconds float64
	// ExamplesPerSec is Examples / WallSeconds: the run's real end-to-end
	// training throughput.
	ExamplesPerSec float64
	// EpochWallSeconds is the real host time per completed epoch, parallel
	// to EpochLoss (empty in Iterations mode).
	EpochWallSeconds []float64
	// SkippedChunks counts chunk transfers abandoned by the device fault
	// model after exhausting their retry budget; for each, the trainer
	// trained on the slot's last good contents instead (graceful
	// degradation) and recorded the skip here.
	SkippedChunks int
	// Checkpoints is the number of checkpoints written during the run.
	Checkpoints int
	// Resumed reports that the run was restored from TrainConfig.ResumePath.
	Resumed bool
	// Device is the device activity snapshot at the end of the run.
	Device device.Stats
}

// LabeledTrainable is a model the engine can drive supervised: one
// gradient-and-update step per (minibatch, one-hot target) pair resident on
// the device. The convnet classifier implements it.
type LabeledTrainable interface {
	// StepLabeled consumes a Batch×InputDim input buffer and a
	// Batch×OutputDim one-hot target buffer and returns a progress metric
	// (batch-mean cross-entropy; 0 on model-only devices).
	StepLabeled(x, y *device.Buffer, lr float64) float64
	// BatchSize returns the fixed minibatch size the model was built for.
	BatchSize() int
	// InputDim returns the example dimensionality.
	InputDim() int
	// OutputDim returns the number of classes.
	OutputDim() int
}

// LabeledSource is a data source whose examples carry integer class labels.
//
// Deprecated: the interface moved to the data package as [data.Labeled];
// this alias remains for source compatibility.
type LabeledSource = data.Labeled

// Trainer runs Algorithm 1 on one device.
type Trainer struct {
	Dev *device.Device
	Cfg TrainConfig
}

// Run trains model on src and returns the run summary. The device's
// simulated timelines are *not* reset, so successive runs accumulate (use
// ResetTime between independent measurements).
func (t *Trainer) Run(model Trainable, src data.Source) (*Result, error) {
	return t.run(model, nil, src, nil)
}

// RunLabeled trains a supervised model: alongside each example chunk the
// trainer stages the matching one-hot label chunk over the same simulated
// PCIe link, then drives StepLabeled per minibatch. Everything else —
// double buffering, graceful degradation, checkpoint/resume — behaves
// exactly as in Run.
func (t *Trainer) RunLabeled(model LabeledTrainable, src data.Labeled) (*Result, error) {
	if model.OutputDim() <= 0 {
		return nil, fmt.Errorf("core: labeled model has non-positive output dim %d", model.OutputDim())
	}
	return t.run(nil, model, src, src)
}

// run is the shared chunk loop. Exactly one of um and lm is non-nil; lsrc
// is non-nil iff lm is.
func (t *Trainer) run(um Trainable, lm LabeledTrainable, src data.Source, lsrc data.Labeled) (*Result, error) {
	var model interface {
		BatchSize() int
		InputDim() int
	} = um
	if lm != nil {
		model = lm
	}
	batch := model.BatchSize()
	dim := model.InputDim()
	if src.Dim() != dim {
		return nil, fmt.Errorf("core: source dim %d, model wants %d", src.Dim(), dim)
	}
	if src.Len() < batch {
		return nil, fmt.Errorf("core: source has %d examples, smaller than one batch of %d", src.Len(), batch)
	}
	cfg := t.Cfg
	if cfg.Epochs <= 0 && cfg.Iterations <= 0 {
		return nil, fmt.Errorf("core: neither Epochs nor Iterations set")
	}
	if cfg.Epochs > 0 && cfg.Iterations > 0 {
		return nil, fmt.Errorf("core: Epochs and Iterations are mutually exclusive")
	}
	if cfg.BufferDepth <= 0 {
		cfg.BufferDepth = 2
	}
	fc := cfg.Feed
	if fc != nil {
		// The data plane supplies the chunk geometry: adopt the feed's
		// validated plan and refuse a conflicting local override.
		fp := fc.Plan()
		if fp.SourceLen != src.Len() {
			return nil, fmt.Errorf("core: feed plan covers %d examples, source has %d", fp.SourceLen, src.Len())
		}
		if fp.Batch != batch {
			return nil, fmt.Errorf("core: feed plan batch %d, model wants %d", fp.Batch, batch)
		}
		if cfg.ChunkExamples != 0 && cfg.ChunkExamples != fp.ChunkExamples {
			return nil, fmt.Errorf("core: ChunkExamples %d conflicts with feed plan's %d", cfg.ChunkExamples, fp.ChunkExamples)
		}
		cfg.ChunkExamples = fp.ChunkExamples
	}
	perDim := dim
	if lm != nil {
		perDim += lm.OutputDim() // the one-hot label ring stages too
	}
	// PlanChunks validates an explicit chunk size, or auto-sizes one that
	// fits what is left of device global memory next to the model — the
	// 8 GB constraint that shapes the paper's chunking in the first place.
	plan, err := data.PlanChunks(data.PlanRequest{
		SourceLen: src.Len(), Batch: batch, ChunkExamples: cfg.ChunkExamples,
		BufferDepth: cfg.BufferDepth, ExampleDoubles: perDim,
		FreeBytes: t.Dev.Arch.GlobalMemBytes - t.Dev.Allocated(),
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg.ChunkExamples = plan.ChunkExamples
	if cfg.LR == 0 && cfg.Schedule == nil && cfg.Adaptive == nil {
		return nil, fmt.Errorf("core: zero learning rate")
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("core: negative checkpoint cadence %d", cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1
	}
	var ckpt Checkpointer
	if cfg.CheckpointPath != "" || cfg.ResumePath != "" {
		c, ok := model.(Checkpointer)
		if !ok {
			return nil, fmt.Errorf("core: model %T cannot checkpoint (no SaveState/RestoreState)", model)
		}
		ckpt = c
	}

	// Total update steps.
	stepsPerEpoch := src.Len() / batch
	totalSteps := cfg.Iterations
	if totalSteps == 0 {
		totalSteps = cfg.Epochs * stepsPerEpoch
	}
	batchesPerChunk := cfg.ChunkExamples / batch
	totalChunks := (totalSteps + batchesPerChunk - 1) / batchesPerChunk

	// Staging ring in device global memory (Fig. 5); supervised runs stage
	// a parallel one-hot label ring through the same link.
	ring := make([]*device.Buffer, cfg.BufferDepth)
	hostStage := make([]*tensor.Matrix, cfg.BufferDepth)
	var labelRing []*device.Buffer
	var hostLabels []*tensor.Matrix
	classes := 0
	if lm != nil {
		classes = lm.OutputDim()
		labelRing = make([]*device.Buffer, cfg.BufferDepth)
		hostLabels = make([]*tensor.Matrix, cfg.BufferDepth)
	}
	freeRings := func() {
		for _, b := range ring {
			if b != nil {
				t.Dev.Free(b)
			}
		}
		for _, b := range labelRing {
			if b != nil {
				t.Dev.Free(b)
			}
		}
	}
	for i := range ring {
		b, err := t.Dev.Alloc(cfg.ChunkExamples, dim)
		if err != nil {
			freeRings()
			return nil, fmt.Errorf("core: allocating chunk ring: %w", err)
		}
		ring[i] = b
		if t.Dev.Numeric {
			hostStage[i] = tensor.NewMatrix(cfg.ChunkExamples, dim)
		}
		if lm != nil {
			yb, err := t.Dev.Alloc(cfg.ChunkExamples, classes)
			if err != nil {
				freeRings()
				return nil, fmt.Errorf("core: allocating label ring: %w", err)
			}
			labelRing[i] = yb
			if t.Dev.Numeric {
				hostLabels[i] = tensor.NewMatrix(cfg.ChunkExamples, classes)
			}
		}
	}
	defer freeRings()

	// slotFree[i] is the simulated time at which ring slot i may be
	// overwritten (its previous chunk fully consumed by compute).
	slotFree := make([]float64, cfg.BufferDepth)

	// Under a feed, each ring slot holds the lease of the chunk it stages;
	// the lease commits — at the simulated time compute drained the
	// slot — when the slot is reused or the run ends, so the feed's window
	// occupancy mirrors the double-buffer occupancy exactly.
	var slotLease []feed.Lease
	var slotLeased, slotSkipped []bool
	if fc != nil {
		slotLease = make([]feed.Lease, cfg.BufferDepth)
		slotLeased = make([]bool, cfg.BufferDepth)
		slotSkipped = make([]bool, cfg.BufferDepth)
	}
	commitSlot := func(slot int) error {
		if !slotLeased[slot] {
			return nil
		}
		slotLeased[slot] = false
		if err := fc.Commit(slotLease[slot], slotFree[slot], slotSkipped[slot]); err != nil {
			return fmt.Errorf("core: feed commit: %w", err)
		}
		return nil
	}

	res := &Result{FirstLoss: math.NaN(), FinalLoss: math.NaN()}
	step := 0
	startChunk := 0
	epochLossSum, epochLossN := 0.0, 0
	if cfg.ResumePath != "" {
		c, err := ReadCheckpoint(cfg.ResumePath)
		if err != nil {
			return nil, err
		}
		if err := ckpt.RestoreState(bytes.NewReader(c.Model)); err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		if c.Step > totalSteps || c.Chunk > totalChunks {
			return nil, fmt.Errorf("core: resume: checkpoint cursor (step %d, chunk %d) past this run's end (step %d, chunk %d)",
				c.Step, c.Chunk, totalSteps, totalChunks)
		}
		step, startChunk = c.Step, c.Chunk
		res.Examples = c.Examples
		res.SkippedChunks = c.Skipped
		res.FirstLoss = c.FirstLoss
		res.EpochLoss = append(res.EpochLoss, c.EpochLoss...)
		epochLossSum, epochLossN = c.EpochLossSum, c.EpochLossN
		res.Resumed = true
		if metrics.Enabled() {
			mResumes.Inc()
		}
	}
	if fc != nil && fc.Pos() != startChunk {
		// Re-subscribe at the checkpointed position: the consumer's local
		// ordinal is exactly the trainer's chunk cursor.
		if err := fc.Seek(startChunk); err != nil {
			return nil, fmt.Errorf("core: feed seek to chunk %d: %w", startChunk, err)
		}
	}
	runStart := time.Now()
	epochStart := runStart

	for chunk := startChunk; chunk < totalChunks && step < totalSteps; chunk++ {
		slot := chunk % cfg.BufferDepth
		buf := ring[slot]

		var lease feed.Lease
		if fc != nil {
			// Commit the slot's previous occupant (compute drained it at
			// slotFree[slot]) before leasing its replacement, so the
			// consumer's window occupancy never exceeds the ring depth.
			if err := commitSlot(slot); err != nil {
				return nil, err
			}
			l, err := fc.Lease()
			if errors.Is(err, feed.ErrExhausted) {
				break // the data plane's horizon ends the run here
			}
			if err != nil {
				return nil, fmt.Errorf("core: feed lease: %w", err)
			}
			lease = l
			slotLease[slot] = l
			slotLeased[slot] = true
			slotSkipped[slot] = false
		}

		// The loading thread fills the slot as soon as the slot and the
		// PCIe link are free; without prefetch it additionally waits for
		// the compute engine to drain (synchronous transfers).
		earliest := slotFree[slot]
		if !cfg.Prefetch {
			if cb := t.Dev.ComputeBusyUntil(); cb > earliest {
				earliest = cb
			}
		}
		start := (chunk * cfg.ChunkExamples) % src.Len()
		if fc != nil {
			start = lease.Start // the lease names the chunk's example range
		}
		var copyErr error
		if t.Dev.Numeric {
			if fc != nil {
				if err := fc.Fill(lease, hostStage[slot]); err != nil {
					return nil, fmt.Errorf("core: %w", err)
				}
			} else {
				src.Chunk(start, cfg.ChunkExamples, hostStage[slot])
			}
			_, copyErr = t.Dev.TryCopyIn(buf, hostStage[slot], earliest)
		} else {
			_, copyErr = t.Dev.TryCopyIn(buf, nil, earliest)
		}
		if lm != nil {
			var labelErr error
			if t.Dev.Numeric {
				hy := hostLabels[slot]
				if fc != nil {
					if err := fc.FillLabels(lease, classes, hy); err != nil {
						return nil, fmt.Errorf("core: %w", err)
					}
				} else {
					hy.Zero()
					for i := 0; i < cfg.ChunkExamples; i++ {
						l := lsrc.Label((start + i) % src.Len())
						if l < 0 || l >= classes {
							return nil, fmt.Errorf("core: source label %d outside [0, %d)", l, classes)
						}
						hy.RowView(i)[l] = 1
					}
				}
				_, labelErr = t.Dev.TryCopyIn(labelRing[slot], hy, earliest)
			} else {
				_, labelErr = t.Dev.TryCopyIn(labelRing[slot], nil, earliest)
			}
			if copyErr == nil {
				copyErr = labelErr // degrade once per chunk, whichever half failed
			}
		}
		res.Chunks++
		if copyErr != nil {
			// Graceful degradation: the transfer engine abandoned this
			// chunk (permanent fault or retries exhausted). Its failed
			// attempts and backoffs are already on the simulated clock;
			// train this chunk's batches on the slot's last good contents
			// (zeros if the slot was never filled) and record the skip.
			res.SkippedChunks++
			if fc != nil {
				slotSkipped[slot] = true // the commit will carry the skip flag
			}
			if metrics.Enabled() {
				mSkippedChunks.Inc()
			}
		}

		chunkLossSum, chunkLossN := 0.0, 0
		for b := 0; b < batchesPerChunk && step < totalSteps; b++ {
			x := buf.Slice(b*batch, (b+1)*batch)
			lr := cfg.LR
			if cfg.Schedule != nil {
				lr = cfg.Schedule(step)
			}
			if cfg.Adaptive != nil && t.Dev.Numeric {
				lr = cfg.Adaptive.LR()
			}
			var loss float64
			if lm != nil {
				y := labelRing[slot].Slice(b*batch, (b+1)*batch)
				loss = lm.StepLabeled(x, y, lr)
			} else {
				loss = um.Step(x, lr)
			}
			if cfg.Adaptive != nil && t.Dev.Numeric {
				cfg.Adaptive.Observe(loss)
			}
			chunkLossSum += loss
			chunkLossN++
			step++
			res.Examples += batch

			if cfg.Epochs > 0 {
				epochLossSum += loss
				epochLossN++
				if step%stepsPerEpoch == 0 {
					res.EpochLoss = append(res.EpochLoss, avgOrNaN(t.Dev, epochLossSum, epochLossN))
					epochLossSum, epochLossN = 0, 0
					now := time.Now()
					sec := now.Sub(epochStart).Seconds()
					res.EpochWallSeconds = append(res.EpochWallSeconds, sec)
					epochStart = now
					if metrics.Enabled() {
						mEpochSeconds.Observe(sec)
					}
				}
			}
		}
		avg := avgOrNaN(t.Dev, chunkLossSum, chunkLossN)
		if chunk == 0 {
			res.FirstLoss = avg
		}
		res.FinalLoss = avg
		// The slot may be reused once the compute engine has consumed
		// everything issued so far (all batches of this chunk included).
		slotFree[slot] = t.Dev.ComputeBusyUntil()

		if cfg.CheckpointPath != "" && (chunk+1-startChunk)%cfg.CheckpointEvery == 0 {
			var blob bytes.Buffer
			if err := ckpt.SaveState(&blob); err != nil {
				return nil, fmt.Errorf("core: checkpoint: %w", err)
			}
			c := &Checkpoint{
				Step: step, Chunk: chunk + 1, Examples: res.Examples,
				Skipped: res.SkippedChunks, FirstLoss: res.FirstLoss,
				EpochLossSum: epochLossSum, EpochLossN: epochLossN,
				EpochLoss: res.EpochLoss, Model: blob.Bytes(),
			}
			if err := WriteCheckpoint(cfg.CheckpointPath, c); err != nil {
				return nil, err
			}
			res.Checkpoints++
			if metrics.Enabled() {
				mCheckpoints.Inc()
			}
		}
	}

	if fc != nil {
		// Drain the ring: commit the last occupants at the times compute
		// finished with them, oldest slot first for a stable ledger.
		for s := 0; s < cfg.BufferDepth; s++ {
			if err := commitSlot(s); err != nil {
				return nil, err
			}
		}
	}
	res.Steps = step
	res.SimSeconds = t.Dev.Now()
	res.Device = t.Dev.Stats()
	res.WallSeconds = time.Since(runStart).Seconds()
	if res.WallSeconds > 0 {
		res.ExamplesPerSec = float64(res.Examples) / res.WallSeconds
	}
	if metrics.Enabled() {
		mRuns.Inc()
		mSteps.Add(int64(res.Steps))
		mExamples.Add(int64(res.Examples))
		mChunks.Add(int64(res.Chunks))
		mExamplesPerSec.Set(res.ExamplesPerSec)
	}
	return res, nil
}

func avgOrNaN(dev *device.Device, sum float64, n int) float64 {
	if !dev.Numeric || n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
