package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"phideep/internal/convnet"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/feed"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// trainerFeed builds a single-consumer feed over src with the given
// geometry and an unbounded horizon.
func trainerFeed(t *testing.T, src data.Source, batch, chunk int) (*feed.Feed, *feed.Consumer) {
	t.Helper()
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: src.Len(), Batch: batch, ChunkExamples: chunk})
	if err != nil {
		t.Fatal(err)
	}
	var f *feed.Feed
	if l, ok := src.(data.Labeled); ok {
		f, err = feed.NewLabeled(l, feed.Config{Plan: p, Ledger: true})
	} else {
		f, err = feed.New(src, feed.Config{Plan: p, Ledger: true})
	}
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Subscribe("trainer")
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

func sameLoss(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// requireSameResult asserts the deterministic fields of two runs agree
// bit-for-bit (wall-clock fields excluded, obviously).
func requireSameResult(t *testing.T, plain, fed *Result) {
	t.Helper()
	if plain.SimSeconds != fed.SimSeconds {
		t.Fatalf("SimSeconds %v vs %v", plain.SimSeconds, fed.SimSeconds)
	}
	if plain.Steps != fed.Steps || plain.Examples != fed.Examples || plain.Chunks != fed.Chunks {
		t.Fatalf("counters: plain %d/%d/%d, fed %d/%d/%d",
			plain.Steps, plain.Examples, plain.Chunks, fed.Steps, fed.Examples, fed.Chunks)
	}
	if !sameLoss(plain.FirstLoss, fed.FirstLoss) || !sameLoss(plain.FinalLoss, fed.FinalLoss) {
		t.Fatalf("losses: plain %v→%v, fed %v→%v", plain.FirstLoss, plain.FinalLoss, fed.FirstLoss, fed.FinalLoss)
	}
	if len(plain.EpochLoss) != len(fed.EpochLoss) {
		t.Fatalf("epoch losses %d vs %d", len(plain.EpochLoss), len(fed.EpochLoss))
	}
	for i := range plain.EpochLoss {
		if !sameLoss(plain.EpochLoss[i], fed.EpochLoss[i]) {
			t.Fatalf("epoch %d loss %v vs %v", i, plain.EpochLoss[i], fed.EpochLoss[i])
		}
	}
	if plain.SkippedChunks != fed.SkippedChunks {
		t.Fatalf("skips %d vs %d", plain.SkippedChunks, fed.SkippedChunks)
	}
}

// TestFeedRunBitIdentical is the tentpole's acceptance gate for Run: the
// feed-backed trainer must reproduce the classic path bit-for-bit at a
// fixed seed — same simulated time, same losses, same final weights.
func TestFeedRunBitIdentical(t *testing.T) {
	src := digitSource(100)
	run := func(useFeed bool) (*Result, *tensor.Matrix, feed.Stats) {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m := newAE(t, dev, Improved, 10)
		cfg := TrainConfig{Epochs: 12, LR: 0.8, ChunkExamples: 30, BufferDepth: 2, Prefetch: true}
		var f *feed.Feed
		if useFeed {
			var c *feed.Consumer
			f, c = trainerFeed(t, src, 10, 30)
			cfg.Feed = c
			cfg.ChunkExamples = 0 // geometry comes from the plan
		}
		tr := &Trainer{Dev: dev, Cfg: cfg}
		res, err := tr.Run(m, src)
		if err != nil {
			t.Fatal(err)
		}
		var fs feed.Stats
		if f != nil {
			fs = f.Stats()
		}
		return res, m.Download().W1, fs
	}
	plain, wPlain, _ := run(false)
	fed, wFed, fs := run(true)
	requireSameResult(t, plain, fed)
	if tensor.MaxAbsDiff(wPlain, wFed) != 0 {
		t.Fatal("final weights diverge between plain and feed-backed runs")
	}
	// Every chunk was leased and committed; nothing left outstanding.
	if fs.Leases != fed.Chunks || fs.Commits != fed.Chunks || fs.Outstanding != 0 {
		t.Fatalf("feed stats %+v for %d chunks", fs, fed.Chunks)
	}
}

// TestFeedRunLabeledBitIdentical is the same gate for the supervised path,
// where one-hot label chunks ride the feed too.
func TestFeedRunLabeledBitIdentical(t *testing.T) {
	src := data.NewDigits(8, 120, 5, 0.02)
	ccfg := convnet.Config{
		Side: 8, Filters1: 3, Kernel1: 3, Filters2: 4, Kernel2: 3,
		Pool: 2, Classes: 10, Lambda: 1e-5, Batch: 12, Seed: 3,
	}
	run := func(useFeed bool) (*Result, *convnet.Params) {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m, err := convnet.Build(NewContext(dev, Improved, 0, 1), ccfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free()
		cfg := TrainConfig{Epochs: 4, LR: 0.5, ChunkExamples: 24, Prefetch: true}
		if useFeed {
			_, c := trainerFeed(t, src, 12, 24)
			cfg.Feed = c
			cfg.ChunkExamples = 0
		}
		tr := &Trainer{Dev: dev, Cfg: cfg}
		res, err := tr.RunLabeled(m, src)
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Download()
	}
	plain, pPlain := run(false)
	fed, pFed := run(true)
	requireSameResult(t, plain, fed)
	if tensor.MaxAbsDiff(pPlain.W3, pFed.W3) != 0 {
		t.Fatal("head weights diverge between plain and feed-backed runs")
	}
}

// TestFeedRunResume resumes a feed-backed run from a checkpoint: the
// consumer seeks to the checkpointed chunk and the stitched run matches
// the uninterrupted one bit-for-bit.
func TestFeedRunResume(t *testing.T) {
	src := digitSource(100)
	full := func() *tensor.Matrix {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m := newAE(t, dev, Improved, 10)
		_, c := trainerFeed(t, src, 10, 30)
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 30, LR: 0.8, Feed: c, Prefetch: true}}
		if _, err := tr.Run(m, src); err != nil {
			t.Fatal(err)
		}
		return m.Download().W1
	}()

	ckpt := filepath.Join(t.TempDir(), "feed.phck")
	{
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		m := newAE(t, dev, Improved, 10)
		_, c := trainerFeed(t, src, 10, 30)
		// 15 steps = 5 chunks of 3 batches: ends exactly at a chunk
		// boundary, so the last checkpoint covers everything trained.
		tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 15, LR: 0.8, Feed: c, Prefetch: true, CheckpointPath: ckpt}}
		if _, err := tr.Run(m, src); err != nil {
			t.Fatal(err)
		}
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	f, c := trainerFeed(t, src, 10, 30)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 30, LR: 0.8, Feed: c, Prefetch: true, ResumePath: ckpt}}
	res, err := tr.Run(m, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("run did not resume")
	}
	if tensor.MaxAbsDiff(full, m.Download().W1) != 0 {
		t.Fatal("resumed feed-backed run diverges from uninterrupted run")
	}
	// The fresh consumer was seeked to the checkpointed chunk cursor.
	if s := f.Stats(); s.Seeks != 1 {
		t.Fatalf("feed stats %+v, want one seek", s)
	}
}

// TestFeedRunHorizon: a feed whose TotalChunks horizon is shorter than the
// configured run ends it early instead of erroring.
func TestFeedRunHorizon(t *testing.T) {
	src := digitSource(100)
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: 100, Batch: 10, ChunkExamples: 30})
	if err != nil {
		t.Fatal(err)
	}
	f, err := feed.New(src, feed.Config{Plan: p, TotalChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.Subscribe("trainer")
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Iterations: 30, LR: 0.8, Feed: c}}
	res, err := tr.Run(m, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 4 || res.Steps != 12 {
		t.Fatalf("horizon run: %d chunks, %d steps", res.Chunks, res.Steps)
	}
}

func TestFeedRunValidation(t *testing.T) {
	src := digitSource(100)
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newAE(t, dev, Improved, 10)

	// Plan over a different source length.
	other := data.Null{D: 64, N: 60}
	_, c := trainerFeed(t, other, 10, 30)
	tr := &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 1, LR: 0.5, Feed: c}}
	if _, err := tr.Run(m, src); err == nil || !strings.Contains(err.Error(), "plan covers") {
		t.Fatalf("mismatched plan: %v", err)
	}
	// Plan batch disagrees with the model.
	_, c = trainerFeed(t, src, 20, 40)
	tr = &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 1, LR: 0.5, Feed: c}}
	if _, err := tr.Run(m, src); err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("mismatched batch: %v", err)
	}
	// Conflicting explicit ChunkExamples.
	_, c = trainerFeed(t, src, 10, 30)
	tr = &Trainer{Dev: dev, Cfg: TrainConfig{Epochs: 1, LR: 0.5, Feed: c, ChunkExamples: 50}}
	if _, err := tr.Run(m, src); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting chunk size: %v", err)
	}
}
