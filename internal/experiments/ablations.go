package experiments

import (
	"fmt"

	"phideep/internal/core"
	"phideep/internal/sim"
)

// ablationBase is the shared workload for the design-choice ablations: the
// Fig. 7 mid-size Autoencoder (1024×4096, batch 1000) over 100 k examples
// on the Phi.
func ablationBase() Job {
	arch, lvl := phiImproved()
	return Job{
		Arch: arch, Level: lvl,
		Model: AE, Visible: 1024, Hidden: 4096,
		Batch: 1000, DatasetExamples: 100000, Epochs: 1,
		Prefetch: true, Seed: 3,
	}
}

func boolPtr(b bool) *bool { return &b }

// AblationVectorization isolates the VPU: the Improved configuration with
// and without 512-bit vectorization of the kernels (Eqs. 14–18 and the
// GEMMs).
func AblationVectorization() *Table {
	t := &Table{
		Title:   "Ablation: VPU vectorization (Eqs. 14-18) on Xeon Phi",
		Note:    "AE 1024 x 4096, batch 1000, 100 k examples",
		Columns: []string{"configuration", "time", "slowdown vs vectorized"},
	}
	on := ablationBase()
	off := ablationBase()
	off.Vector = boolPtr(false)
	tOn := on.MustRun().SimSeconds
	tOff := off.MustRun().SimSeconds
	t.AddRow("512-bit VPU kernels", secs(tOn), ratio(1))
	t.AddRow("scalar kernels", secs(tOff), ratio(tOff/tOn))
	return t
}

// AblationLoopFusion isolates §IV.B.2's loop combining: Improved with and
// without fused parallel regions.
func AblationLoopFusion() *Table {
	t := &Table{
		Title:   "Ablation: loop fusion (parallel-region granularity, §IV.B.2)",
		Note:    "AE 1024 x 4096, batch 1000, 100 k examples",
		Columns: []string{"configuration", "time", "slowdown vs fused"},
	}
	fused := ablationBase()
	unfused := ablationBase()
	unfused.Fuse = boolPtr(false)
	tF := fused.MustRun().SimSeconds
	tU := unfused.MustRun().SimSeconds
	t.AddRow("fused regions", secs(tF), ratio(1))
	t.AddRow("one region per loop", secs(tU), ratio(tU/tF))
	return t
}

// AblationPrefetch isolates the Fig. 5 loading thread (same measurement as
// Fig5Overlap, reduced to the headline pair).
func AblationPrefetch() *Table {
	t := &Table{
		Title:   "Ablation: loading-thread prefetch (Fig. 5)",
		Note:    "AE 4096 x 1024, chunks of 10000, 100 k examples, batch 1000",
		Columns: []string{"configuration", "time", "slowdown vs prefetch"},
	}
	arch, lvl := phiImproved()
	base := Job{
		Arch: arch, Level: lvl,
		Model: AE, Visible: 4096, Hidden: 1024,
		Batch: 1000, DatasetExamples: 100000, Epochs: 1,
		ChunkExamples: 10000, Seed: 5,
	}
	pre := base
	pre.Prefetch = true
	pre.BufferDepth = 2
	sync := base
	sync.Prefetch = false
	sync.BufferDepth = 1
	tP := pre.MustRun().SimSeconds
	tS := sync.MustRun().SimSeconds
	t.AddRow("loading thread + double buffer", secs(tP), ratio(1))
	t.AddRow("synchronous transfers", secs(tS), ratio(tS/tP))
	return t
}

// AblationRBMDependencyGraph isolates the Fig. 6 concurrent scheduling of
// independent RBM gradient operations.
func AblationRBMDependencyGraph() *Table {
	t := &Table{
		Title:   "Ablation: Fig. 6 dependency-graph scheduling of the RBM gradient",
		Note:    "RBM 1024 x 4096, batch 200, 100 k examples",
		Columns: []string{"configuration", "time", "slowdown vs concurrent"},
	}
	arch, lvl := phiImproved()
	base := Job{
		Arch: arch, Level: lvl,
		Model: RBM, Visible: 1024, Hidden: 4096,
		Batch: 200, DatasetExamples: 100000, Epochs: 1,
		Prefetch: true, Seed: 6,
	}
	serial := base
	serial.Concurrent = boolPtr(false)
	tC := base.MustRun().SimSeconds
	tS := serial.MustRun().SimSeconds
	t.AddRow("concurrent independent ops", secs(tC), ratio(1))
	t.AddRow("strictly serial op order", secs(tS), ratio(tS/tC))
	return t
}

// AblationThreadsPerCore sweeps the hardware threads used per Phi core.
// The in-order cores need two threads to fill the pipeline (§II.C), while
// four threads add synchronization cost faster than issue benefit on this
// workload — the "balance between parallelism and synchronization" of the
// paper's future work.
func AblationThreadsPerCore() *Table {
	t := &Table{
		Title:   "Ablation: hardware threads per Xeon Phi core",
		Note:    "AE 1024 x 4096, batch 1000, 100 k examples, 60 cores",
		Columns: []string{"threads/core", "software threads", "time"},
	}
	for _, tpc := range []int{1, 2, 3, 4} {
		j := ablationBase()
		j.ThreadsPerCore = tpc
		res := j.MustRun()
		t.AddRow(fmt.Sprintf("%d", tpc), fmt.Sprintf("%d", 60*tpc), secs(res.SimSeconds))
	}
	return t
}

// AblationCoreCount sweeps the physical cores at the Improved level,
// extending Table I's 60-vs-30 column pair into a scaling curve.
func AblationCoreCount() *Table {
	t := &Table{
		Title:   "Ablation: core-count scaling at the fully-optimized level",
		Note:    "AE 1024 x 4096, batch 1000, 100 k examples",
		Columns: []string{"cores", "time", "speedup vs 1 core"},
	}
	var t1 float64
	for _, cores := range []int{1, 8, 15, 30, 45, 60} {
		j := ablationBase()
		j.Cores = cores
		res := j.MustRun()
		if cores == 1 {
			t1 = res.SimSeconds
		}
		t.AddRow(fmt.Sprintf("%d", cores), secs(res.SimSeconds), ratio(t1/res.SimSeconds))
	}
	return t
}

// AblationHostComparison situates the Phi against every host model in one
// table: the abstract's "7 to 10 times faster than the Intel Xeon CPU" is
// the full-chip row; Fig. 10's ≈16× is the Matlab row.
func AblationHostComparison() *Table {
	t := &Table{
		Title:   "Platform comparison at the fully-optimized level",
		Note:    "AE 1024 x 4096, batch 10000, 1 M examples",
		Columns: []string{"platform", "time", "Phi speedup"},
	}
	base := Job{
		Model: AE, Visible: 1024, Hidden: 4096,
		Batch: 10000, DatasetExamples: 1000000, Epochs: 1,
		Prefetch: true, Seed: 4,
	}
	phiArch, phiLvl := phiImproved()
	phi := base
	phi.Arch, phi.Level = phiArch, phiLvl
	tPhi := phi.MustRun().SimSeconds

	rows := []struct {
		name string
		arch *sim.Arch
	}{
		{"Xeon E5620, 1 core (sequential optimized)", sim.XeonE5620Core()},
		{"Xeon E5620, 4 cores + vendor BLAS", sim.XeonE5620Full()},
		{"2x Xeon E5620, 8 cores + vendor BLAS", sim.XeonE5620Dual()},
		{"Matlab R2012a on host", sim.MatlabR2012a()},
		{"Tesla K20X (GPU model, cuBLAS-grade)", sim.TeslaK20X()},
	}
	for _, r := range rows {
		j := base
		j.Arch, j.Level = r.arch, core.OpenMPMKL
		tj := j.MustRun().SimSeconds
		t.AddRow(r.name, secs(tj), ratio(tj/tPhi))
	}
	t.AddRow("Xeon Phi 5110P (fully optimized)", secs(tPhi), ratio(1))
	return t
}
