package experiments

import (
	"fmt"

	"phideep/internal/core"
	"phideep/internal/sim"
)

// NetworkSize is one visible×hidden geometry of the Fig. 7 sweep.
type NetworkSize struct{ Visible, Hidden int }

func (n NetworkSize) String() string { return fmt.Sprintf("%d x %d", n.Visible, n.Hidden) }

// Fig7Networks are the four geometries of the paper's network-size sweep
// ("from 576*1024 to 4096*16384").
var Fig7Networks = []NetworkSize{
	{576, 1024},
	{1024, 4096},
	{2048, 8192},
	{4096, 16384},
}

// Fig7 reproduces the network-size sweep of Fig. 7: the fully optimized
// algorithm on one host CPU core versus the Xeon Phi, for growing network
// sizes. kind selects Fig. 7(a) (AE: 1 M examples, batch 1000) or
// Fig. 7(b) (RBM: 100 k examples, batch 200).
func Fig7(kind ModelKind) *Table {
	batch, dataset := 1000, 1000000
	if kind == RBM {
		batch, dataset = 200, 100000
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig. 7 (%s): impact of network size — single CPU core vs Xeon Phi", kind),
		Note:    fmt.Sprintf("one pass over %d examples, batch %d; simulated time", dataset, batch),
		Columns: []string{"network (v x h)", "CPU 1-core", "Xeon Phi", "speedup"},
	}
	for _, n := range Fig7Networks {
		cpuArch, cpuLvl := hostCore()
		phiArch, phiLvl := phiImproved()
		base := Job{
			Model: kind, Visible: n.Visible, Hidden: n.Hidden,
			Batch: batch, DatasetExamples: dataset, Epochs: 1,
			Prefetch: true, Seed: 7,
		}
		cpu := base
		cpu.Arch, cpu.Level = cpuArch, cpuLvl
		phi := base
		phi.Arch, phi.Level = phiArch, phiLvl
		tc := cpu.MustRun().SimSeconds
		tp := phi.MustRun().SimSeconds
		t.AddRow(n.String(), secs(tc), secs(tp), ratio(tc/tp))
	}
	return t
}

// Fig8Datasets is the dataset-size sweep of Fig. 8 (the paper's axis labels
// were not machine-readable; 100 k → 1 M spans its regime).
var Fig8Datasets = []int{100000, 250000, 500000, 750000, 1000000}

// Fig8 reproduces the dataset-size sweep of Fig. 8: network fixed at
// 1024×4096, batch 1000, dataset size growing.
func Fig8(kind ModelKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8 (%s): impact of dataset size — single CPU core vs Xeon Phi", kind),
		Note:    "network 1024 x 4096, batch 1000; simulated time",
		Columns: []string{"examples", "CPU 1-core", "Xeon Phi", "speedup"},
	}
	for _, n := range Fig8Datasets {
		cpuArch, cpuLvl := hostCore()
		phiArch, phiLvl := phiImproved()
		base := Job{
			Model: kind, Visible: 1024, Hidden: 4096,
			Batch: 1000, DatasetExamples: n, Epochs: 1,
			Prefetch: true, Seed: 8,
		}
		cpu := base
		cpu.Arch, cpu.Level = cpuArch, cpuLvl
		phi := base
		phi.Arch, phi.Level = phiArch, phiLvl
		tc := cpu.MustRun().SimSeconds
		tp := phi.MustRun().SimSeconds
		t.AddRow(fmt.Sprintf("%d", n), secs(tc), secs(tp), ratio(tc/tp))
	}
	return t
}

// Fig9Batches is the batch-size sweep of Fig. 9 ("from 200 to 10000").
var Fig9Batches = []int{200, 500, 1000, 2000, 5000, 10000}

// Fig9 reproduces the batch-size sweep of Fig. 9: network 1024×4096,
// dataset 100 k examples, batch size growing. Larger batches need fewer
// updates for the fixed dataset and amortize per-launch overheads, so the
// Phi time falls by roughly two thirds from 200 to 10 000.
func Fig9(kind ModelKind) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 9 (%s): impact of batch size — single CPU core vs Xeon Phi", kind),
		Note:    "network 1024 x 4096, dataset 100000 examples (one pass); simulated time",
		Columns: []string{"batch", "CPU 1-core", "Xeon Phi", "speedup"},
	}
	for _, b := range Fig9Batches {
		cpuArch, cpuLvl := hostCore()
		phiArch, phiLvl := phiImproved()
		base := Job{
			Model: kind, Visible: 1024, Hidden: 4096,
			Batch: b, DatasetExamples: 100000, Epochs: 1,
			Prefetch: true, Seed: 9,
		}
		cpu := base
		cpu.Arch, cpu.Level = cpuArch, cpuLvl
		phi := base
		phi.Arch, phi.Level = phiArch, phiLvl
		tc := cpu.MustRun().SimSeconds
		tp := phi.MustRun().SimSeconds
		t.AddRow(fmt.Sprintf("%d", b), secs(tc), secs(tp), ratio(tc/tp))
	}
	return t
}

// Fig10 reproduces the Matlab comparison: the Autoencoder on the host's
// Matlab (vendor-BLAS matrix ops, all four CPU cores, per-operation
// interpreter overhead) versus the fully optimized Xeon Phi code, on 1 M
// examples with minibatches of 10 000. The paper reports ≈16×.
func Fig10() *Table {
	t := &Table{
		Title:   "Fig. 10: Matlab (host CPU) vs Xeon Phi — Sparse Autoencoder",
		Note:    "1 M examples, batch 10000; simulated time",
		Columns: []string{"network (v x h)", "Matlab", "Xeon Phi", "speedup"},
	}
	for _, n := range Fig7Networks {
		base := Job{
			Model: AE, Visible: n.Visible, Hidden: n.Hidden,
			Batch: 10000, DatasetExamples: 1000000, Epochs: 1,
			Prefetch: true, Seed: 10,
		}
		matlab := base
		matlab.Arch, matlab.Level = sim.MatlabR2012a(), core.OpenMPMKL
		phiArch, phiLvl := phiImproved()
		phi := base
		phi.Arch, phi.Level = phiArch, phiLvl
		tm := matlab.MustRun().SimSeconds
		tp := phi.MustRun().SimSeconds
		t.AddRow(n.String(), secs(tm), secs(tp), ratio(tm/tp))
	}
	return t
}

// Fig5Overlap quantifies the loading-thread claim of §IV.A: without the
// prefetching loading thread the PCIe transfers serialize with training
// ("about 17% of the total time is spent on transferring training data");
// with it they hide behind compute.
func Fig5Overlap() *Table {
	t := &Table{
		Title:   "Fig. 5 / §IV.A: transfer overlap from the loading thread",
		Note:    "AE 4096 x 1024, chunks of 10000 examples, 100 k examples, batch 1000",
		Columns: []string{"configuration", "total", "transfer busy", "transfer share"},
	}
	phiArch, phiLvl := phiImproved()
	base := Job{
		Arch: phiArch, Level: phiLvl,
		Model: AE, Visible: 4096, Hidden: 1024,
		Batch: 1000, DatasetExamples: 100000, Epochs: 1,
		ChunkExamples: 10000, Seed: 5,
	}
	for _, cfg := range []struct {
		name     string
		prefetch bool
		depth    int
	}{
		{"synchronous transfers", false, 1},
		{"loading thread + double buffer", true, 2},
		{"loading thread + 4 buffers", true, 4},
	} {
		j := base
		j.Prefetch = cfg.prefetch
		j.BufferDepth = cfg.depth
		res := j.MustRun()
		share := res.Device.TransferBusy / res.SimSeconds
		t.AddRow(cfg.name, secs(res.SimSeconds), secs(res.Device.TransferBusy), fmt.Sprintf("%.0f%%", 100*share))
	}
	return t
}
