package experiments

import (
	"fmt"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/opt"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// BatchMethods reproduces the paper's §III trade-off between online SGD and
// the batch methods (L-BFGS, CG): "these methods make it easier to
// parallelize the deep learning algorithms. However, these methods are
// slower to converge since one update of parameters involves much more
// computations than SGD." Both optimizers run numerically on the simulated
// Phi over the same dataset; the table reports the full-dataset objective
// reached per simulated second.
func BatchMethods() *Table {
	const (
		visible, hidden = 64, 24
		examples        = 800
		batch           = 100
		seed            = 21
	)
	cfg := autoencoder.Config{Visible: visible, Hidden: hidden, Lambda: 1e-4}
	src := data.NewDigits(8, examples, 5, 0.03)
	full := data.Materialize(src)

	t := &Table{
		Title:   "§III study: online SGD vs batch methods on the simulated Xeon Phi",
		Note:    fmt.Sprintf("AE %dx%d, %d examples, batch %d; full-dataset objective; simulated time", visible, hidden, examples, batch),
		Columns: []string{"method", "parameter updates", "dataset passes", "final objective", "simulated time"},
	}

	evalCost := func(p *autoencoder.Params) float64 {
		return autoencoder.CostGrad(cfg, p, full, nil)
	}

	// --- Online minibatch SGD (the paper's method).
	{
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := core.NewContext(dev, core.Improved, 0, seed)
		m, err := autoencoder.New(ctx, cfg, batch, seed)
		if err != nil {
			panic(err)
		}
		tr := &core.Trainer{Dev: dev, Cfg: core.TrainConfig{Epochs: 6, LR: 0.8, Prefetch: true}}
		res, err := tr.Run(m, src)
		if err != nil {
			panic(err)
		}
		t.AddRow("online SGD", fmt.Sprintf("%d", res.Steps), "6",
			fmt.Sprintf("%.4f", evalCost(m.Download())), secs(res.SimSeconds))
	}

	// --- Batch methods: every gradient evaluation streams the dataset
	// through the device.
	for _, method := range []string{"L-BFGS", "CG"} {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := core.NewContext(dev, core.Improved, 0, seed)
		m, err := autoencoder.New(ctx, cfg, batch, seed)
		if err != nil {
			panic(err)
		}
		obj, theta, err := autoencoder.NewBatchObjective(m, data.InMemory{X: full})
		if err != nil {
			panic(err)
		}
		wrapped := func(th, g tensor.Vector) float64 { return obj.Eval(th, g) }
		var res opt.Result
		if method == "L-BFGS" {
			res = opt.LBFGS(wrapped, theta, opt.LBFGSConfig{MaxIter: 6})
		} else {
			res = opt.CG(wrapped, theta, opt.CGConfig{MaxIter: 6})
		}
		t.AddRow(method, fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%d", res.Evaluations),
			fmt.Sprintf("%.4f", res.Cost), secs(dev.Now()))
		obj.Free()
	}
	return t
}
