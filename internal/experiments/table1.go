package experiments

import (
	"fmt"

	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/sim"
	"phideep/internal/stack"
)

// Table1Workload is the paper's Table I protocol: a four-layer stacked
// Autoencoder (1024-512-256-128) pre-trained greedily, batch 10 000, 200
// iterations per layer.
type Table1Workload struct {
	Sizes              []int
	Batch              int
	IterationsPerLayer int
	ChunkExamples      int
	DatasetExamples    int
}

// DefaultTable1Workload returns the paper's configuration.
func DefaultTable1Workload() Table1Workload {
	return Table1Workload{
		Sizes:              []int{1024, 512, 256, 128},
		Batch:              10000,
		IterationsPerLayer: 200,
		ChunkExamples:      100000,
		DatasetExamples:    2000000,
	}
}

// RunTable1Cell pre-trains the Table I stack at one optimization level and
// core count, returning the simulated seconds.
func RunTable1Cell(w Table1Workload, lvl core.OptLevel, cores int) float64 {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := core.NewContext(dev, lvl, cores, 1)
	cfg := stack.Config{Sizes: w.Sizes, Lambda: 1e-4, Beta: 0.1, Rho: 0.05, Batch: w.Batch, LR: 0.1}
	tc := core.TrainConfig{
		Iterations:    w.IterationsPerLayer,
		LR:            0.1,
		ChunkExamples: w.ChunkExamples,
		BufferDepth:   2,
		Prefetch:      true,
	}
	res, err := stack.PretrainAutoencoders(ctx, tc, cfg, data.Null{D: w.Sizes[0], N: w.DatasetExamples}, 1)
	if err != nil {
		panic(err)
	}
	return res.SimSeconds
}

// Table1 reproduces the paper's Table I: the time of the full pre-training
// after each optimization step, with 60 and with 30 Phi cores, plus the
// fully-optimized-over-baseline speedup row. Paper values (60 / 30 cores):
// Baseline ≈16042 s / 15960 s, OpenMP ≈892 s, OpenMP+MKL ≈97 s, Improved
// ≈53 s / 81 s, speedup ≈302× / ≈197×.
func Table1() *Table {
	w := DefaultTable1Workload()
	t := &Table{
		Title:   "Table I: performance after each optimization step on Xeon Phi",
		Note:    "4-layer stacked AE 1024-512-256-128, batch 10000, 200 iterations/layer; simulated time",
		Columns: []string{"optimization step", "60 cores", "30 cores"},
	}
	var times [4][2]float64
	for i, lvl := range core.OptLevels {
		for c, cores := range []int{60, 30} {
			times[i][c] = RunTable1Cell(w, lvl, cores)
		}
		t.AddRow(lvl.String(), secs(times[i][0]), secs(times[i][1]))
	}
	t.AddRow("Speedup (fully-optimized vs baseline)",
		fmt.Sprintf("%.0fx", times[0][0]/times[3][0]),
		fmt.Sprintf("%.0fx", times[0][1]/times[3][1]))
	return t
}
