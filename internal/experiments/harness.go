package experiments

import (
	"fmt"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/rbm"
	"phideep/internal/sim"
)

// ModelKind selects the unsupervised building block under test.
type ModelKind string

const (
	// AE is the Sparse Autoencoder trained with back-propagation.
	AE ModelKind = "autoencoder"
	// RBM is the Restricted Boltzmann Machine trained with CD-1.
	RBM ModelKind = "rbm"
)

// Job describes one timed training run on one simulated platform. Every
// figure/table runner is a sweep over Jobs.
type Job struct {
	Arch  *sim.Arch
	Level core.OptLevel
	// Cores limits the physical cores (0 = all; Table I's right column
	// uses 30).
	Cores int
	// Vector force-overrides VPU vectorization when non-nil (ablations).
	Vector *bool
	// Fuse/Concurrent force-override the Improved-level flags when
	// non-nil (ablations).
	Fuse, Concurrent *bool
	// ThreadsPerCore limits hardware threads per core (0 = arch max).
	ThreadsPerCore int

	Model           ModelKind
	Visible, Hidden int
	Batch           int
	DatasetExamples int
	Epochs          int // mutually exclusive with Iterations
	Iterations      int
	ChunkExamples   int
	BufferDepth     int
	Prefetch        bool
	DisableSampling bool // RBM mean-field mode
	Seed            uint64
}

// Run executes the job on a fresh model-only device and returns the
// training result (simulated seconds et al.).
func (j Job) Run() (*core.Result, error) {
	dev := device.New(j.Arch, false, nil)
	ctx := core.NewContext(dev, j.Level, j.Cores, j.Seed+1)
	if j.Vector != nil {
		ctx.Vector = *j.Vector
	}
	if j.Fuse != nil {
		ctx.AutoFuse = *j.Fuse
	}
	if j.Concurrent != nil {
		ctx.AutoConcurrent = *j.Concurrent
	}
	if j.ThreadsPerCore > 0 {
		ctx.ThreadsPerCore = j.ThreadsPerCore
	}

	var model core.Trainable
	switch j.Model {
	case AE:
		m, err := autoencoder.New(ctx, autoencoder.Config{
			Visible: j.Visible, Hidden: j.Hidden,
			Lambda: 1e-4, Beta: 0.1, Rho: 0.05,
		}, j.Batch, j.Seed)
		if err != nil {
			return nil, err
		}
		defer m.Free()
		model = m
	case RBM:
		m, err := rbm.New(ctx, rbm.Config{
			Visible: j.Visible, Hidden: j.Hidden,
			SampleHidden: !j.DisableSampling,
		}, j.Batch, j.Seed)
		if err != nil {
			return nil, err
		}
		defer m.Free()
		model = m
	default:
		return nil, fmt.Errorf("experiments: unknown model kind %q", j.Model)
	}

	depth := j.BufferDepth
	if depth == 0 {
		depth = 2
	}
	tr := &core.Trainer{Dev: dev, Cfg: core.TrainConfig{
		Epochs: j.Epochs, Iterations: j.Iterations,
		LR:            0.1,
		ChunkExamples: j.ChunkExamples,
		BufferDepth:   depth,
		Prefetch:      j.Prefetch,
	}}
	return tr.Run(model, data.Null{D: j.Visible, N: j.DatasetExamples})
}

// MustRun is Run for sweep code where any failure is a programming error.
func (j Job) MustRun() *core.Result {
	res, err := j.Run()
	if err != nil {
		panic(err)
	}
	return res
}

// phiImproved returns the fully-optimized coprocessor configuration used
// for every "Intel Xeon Phi" series in Figs. 7–10.
func phiImproved() (*sim.Arch, core.OptLevel) {
	return sim.XeonPhi5110P(), core.Improved
}

// hostCore returns the "single CPU core on host" comparator of Figs. 7–9:
// the same fully optimized algorithm (blocked, vectorized kernels) on one
// Xeon E5620 core.
func hostCore() (*sim.Arch, core.OptLevel) {
	return sim.XeonE5620Core(), core.OpenMPMKL
}
