package experiments

import (
	"fmt"
	"math"
	"sort"

	"phideep/internal/autoencoder"
	"phideep/internal/cluster"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/hybrid"
	"phideep/internal/sim"
	"phideep/internal/tune"
)

// HybridCrossover quantifies the paper's §VI caveat on host+Phi
// cooperative execution: the per-step PCIe gradient exchange "can be
// intolerable when the model becomes large", and on small models the Phi
// shard's fixed launch overhead caps the gain near zero — a measured
// negative result for data-parallel SGD on this platform pair.
func HybridCrossover() *Table {
	t := &Table{
		Title:   "Future work (§VI): hybrid Xeon + Xeon Phi data-parallel training",
		Note:    "AE, batch 1000, 20 iterations; host = 2x E5620 with vendor BLAS; gradient exchange over PCIe each step; gain <= 1 quantifies the paper's caveat",
		Columns: []string{"network (v x h)", "Phi only", "hybrid", "hybrid gain", "Phi shard"},
	}
	for _, n := range []NetworkSize{{64, 256}, {256, 1024}, {1024, 4096}, {2048, 8192}} {
		const batch, iters = 1000, 20
		model := autoencoder.Config{Visible: n.Visible, Hidden: n.Hidden}

		// Phi-only baseline.
		soloDev := device.New(sim.XeonPhi5110P(), false, nil)
		soloCtx := core.NewContext(soloDev, core.Improved, 0, 1)
		m, err := autoencoder.New(soloCtx, model, batch, 1)
		if err != nil {
			panic(err)
		}
		tr := &core.Trainer{Dev: soloDev, Cfg: core.TrainConfig{Iterations: iters, LR: 0.1, Prefetch: true}}
		solo, err := tr.Run(m, data.Null{D: n.Visible, N: batch * iters})
		if err != nil {
			panic(err)
		}

		// Hybrid pair.
		phiCtx := core.NewContext(device.New(sim.XeonPhi5110P(), false, nil), core.Improved, 0, 1)
		hostCtx := core.NewContext(device.New(sim.XeonE5620Dual(), false, nil), core.OpenMPMKL, 0, 2)
		cfg := hybrid.AEConfig{Model: model, Batch: batch}
		h, err := hybrid.NewAE(phiCtx, hostCtx, cfg, 1)
		if err != nil {
			panic(err)
		}
		share := fmt.Sprintf("%d/%d", h.PhiBatch(), batch)
		h.Free()
		ht, _, err := hybrid.Run(phiCtx, hostCtx, cfg, data.Null{D: n.Visible, N: batch * iters}, iters, 0.1, 1)
		if err != nil {
			panic(err)
		}
		t.AddRow(n.String(), secs(solo.SimSeconds), secs(ht), ratio(solo.SimSeconds/ht), share)
	}
	return t
}

// AutoTune reproduces the paper's §VI thread-balance future work: for each
// workload regime the tuner searches cores × threads/core × fusion against
// the cost model and reports its choice next to the hand-picked default
// (all cores, all threads, fused).
func AutoTune() *Table {
	t := &Table{
		Title:   "Future work (§VI): automatic parallelism/synchronization balance",
		Note:    "grid search over cores x threads/core x fusion on the cost model; default = 60 cores x 4 threads, fused",
		Columns: []string{"workload", "default", "tuned", "tuned config", "gain"},
	}
	workloads := []struct {
		name string
		w    tune.AEWorkload
	}{
		{"AE 1024x4096, batch 1000", tune.AEWorkload{
			Arch: sim.XeonPhi5110P(), Model: autoencoder.Config{Visible: 1024, Hidden: 4096},
			Batch: 1000, Iterations: 20, DatasetExamples: 100000}},
		{"AE 1024x4096, batch 200 (launch-bound)", tune.AEWorkload{
			Arch: sim.XeonPhi5110P(), Model: autoencoder.Config{Visible: 1024, Hidden: 4096},
			Batch: 200, Iterations: 100, DatasetExamples: 100000}},
		{"AE 256x512, batch 200 (small model)", tune.AEWorkload{
			Arch: sim.XeonPhi5110P(), Model: autoencoder.Config{Visible: 256, Hidden: 512},
			Batch: 200, Iterations: 100, DatasetExamples: 100000}},
	}
	for _, wl := range workloads {
		res, err := wl.w.Tune()
		if err != nil {
			panic(err)
		}
		def, err := wl.w.Objective()(tune.Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 4, Fuse: true})
		if err != nil {
			panic(err)
		}
		t.AddRow(wl.name, secs(def), secs(res.Best.SimSeconds), res.Best.Candidate.String(), ratio(def/res.Best.SimSeconds))
	}
	return t
}

// AutoTunePredictor validates the calibrated performance predictor
// (ROADMAP item 2, after arXiv:1906.01992): a handful of short probe runs
// fit the analytical GEMM/elementwise/sync/transfer terms, the whole
// default grid is ranked by prediction, and the table shows predicted vs
// fully simulated epoch time for the predicted top candidates, plus each
// one's prediction error. The note reports the probe budget and the worst
// error across the entire grid — the headline accuracy claim.
func AutoTunePredictor() *Table {
	w := tune.AEWorkload{
		Arch: sim.XeonPhi5110P(), Model: autoencoder.Config{Visible: 256, Hidden: 1024},
		Batch: 250, Iterations: 100, DatasetExamples: 2000,
	}
	cands := tune.DefaultCandidates(w.Arch)
	p, err := tune.Calibrate(w, cands)
	if err != nil {
		panic(err)
	}
	type row struct {
		c               tune.Candidate
		pred, sim, relE float64
	}
	rows := make([]row, 0, len(cands))
	worst := 0.0
	for _, c := range cands {
		pred, err := p.Predict(c)
		if err != nil {
			panic(err)
		}
		r, err := w.Evaluate(c, tune.EffectiveIters(w, c), nil)
		if err != nil {
			panic(err)
		}
		relE := (pred - r.SimSeconds) / r.SimSeconds
		if e := math.Abs(relE); e > worst {
			worst = e
		}
		rows = append(rows, row{c: c, pred: pred, sim: r.SimSeconds, relE: relE})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pred < rows[j].pred })

	t := &Table{
		Title: "Future work (§VI): calibrated performance predictor vs full simulation",
		Note: fmt.Sprintf(
			"AE 256x1024, batch 250, 100 iterations; %d-candidate grid calibrated with %d probe runs (%d fit equations); worst |error| across the grid %.1f%%; predicted top 8 shown",
			len(cands), p.CalibrationRuns, p.CalibrationEquations, 100*worst),
		Columns: []string{"candidate (predicted rank)", "predicted", "simulated", "error"},
	}
	for _, r := range rows[:8] {
		t.AddRow(r.c.String(), secs(r.pred), secs(r.sim), fmt.Sprintf("%+.1f%%", 100*r.relE))
	}
	return t
}

// ClusterVsPhi answers the paper's framing question (§I/§III): how much
// commodity cluster does one coprocessor replace? N dual-socket Xeon nodes
// train data-parallel with parameter averaging over Gigabit Ethernet; the
// coprocessor row is the single Phi at the Improved level. On a fat model
// the synchronous cluster hits the communication wall the paper's pitch
// rests on.
func ClusterVsPhi() *Table {
	t := &Table{
		Title:   "Positioning: one Xeon Phi vs a commodity cluster (parameter averaging)",
		Note:    "AE 1024 x 4096, global batch 1000, 20 steps; nodes = 2x E5620 over 1 GbE; simulated time",
		Columns: []string{"configuration", "time", "vs one node", "sync rounds"},
	}
	model := autoencoder.Config{Visible: 1024, Hidden: 4096}
	runCluster := func(nodes, syncEvery int) (float64, int) {
		cfg := cluster.Config{
			Model: model, Nodes: nodes, GlobalBatch: nodes * (1000 / nodes),
			SyncEvery: syncEvery, Net: cluster.GigabitEthernet(),
		}
		cl, err := cluster.New(sim.XeonE5620Dual(), core.OpenMPMKL, cfg, false, 1)
		if err != nil {
			panic(err)
		}
		defer cl.Free()
		for i := 0; i < 20; i++ {
			cl.Step(nil, 0.1)
		}
		return cl.SimSeconds(), cl.Syncs()
	}
	oneNode, _ := runCluster(1, 1)
	t.AddRow("1 node", secs(oneNode), ratio(1), "0")
	for _, cse := range []struct {
		nodes, sync int
		label       string
	}{
		{4, 1, "4 nodes, sync every step"},
		{4, 10, "4 nodes, sync every 10 steps"},
		{16, 10, "16 nodes, sync every 10 steps"},
	} {
		tm, syncs := runCluster(cse.nodes, cse.sync)
		t.AddRow(cse.label, secs(tm), ratio(oneNode/tm), fmt.Sprintf("%d", syncs))
	}

	// The single coprocessor.
	arch, lvl := phiImproved()
	phi := Job{
		Arch: arch, Level: lvl, Model: AE,
		Visible: model.Visible, Hidden: model.Hidden,
		Batch: 1000, DatasetExamples: 20000, Iterations: 20,
		Prefetch: true, Seed: 1,
	}.MustRun().SimSeconds
	t.AddRow("1 Xeon Phi 5110P", secs(phi), ratio(oneNode/phi), "0")
	return t
}
