// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V): the network-size, dataset-size and batch-size
// sweeps of Figs. 7–9, the Matlab comparison of Fig. 10, the optimization
// ladder of Table I, the transfer-overlap claim of §IV.A (Fig. 5), and the
// ablations DESIGN.md calls out. Each runner returns a Table that prints
// the same rows/series the paper reports; cmd/phibench and the root
// bench_test.go are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, and rows
// of formatted cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Fprint writes an aligned text rendering of the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i, width := range widths {
		seps[i] = strings.Repeat("-", width)
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV writes the table as CSV (title and note as comment lines).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "# %s\n", t.Note)
	}
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// secs formats a simulated duration the way the paper's tables do.
func secs(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.1f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f µs", s*1e6)
	}
}

// ratio formats a speedup factor.
func ratio(r float64) string { return fmt.Sprintf("%.1fx", r) }
