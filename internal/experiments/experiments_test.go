package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"phideep/internal/core"
)

// cell parses a formatted table cell ("97.5 s", "55.9 ms", "16.4x") into a
// float in base units.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSpace(tab.Rows[row][col])
	mult := 1.0
	switch {
	case strings.HasSuffix(s, " ms"):
		s, mult = strings.TrimSuffix(s, " ms"), 1e-3
	case strings.HasSuffix(s, " µs"):
		s, mult = strings.TrimSuffix(s, " µs"), 1e-6
	case strings.HasSuffix(s, " s"):
		s = strings.TrimSuffix(s, " s")
	case strings.HasSuffix(s, "x"):
		s = strings.TrimSuffix(s, "x")
	case strings.HasSuffix(s, "%"):
		s = strings.TrimSuffix(s, "%")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q at (%d, %d) of %q", tab.Rows[row][col], row, col, tab.Title)
	}
	return v * mult
}

// within asserts got ∈ [lo, hi].
func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %g, want within [%g, %g]", name, got, lo, hi)
	}
}

// TestTable1MatchesPaper asserts the central result: the Table I ladder
// lands near the paper's measurements — 16042/892/97/53 s at 60 cores,
// ≈302× and ≈197× speedups — within ±20%.
func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	paper60 := []float64{16042, 892, 97, 53}
	for i, want := range paper60 {
		got := cell(t, tab, i, 1)
		within(t, tab.Rows[i][0]+" (60 cores)", got, 0.8*want, 1.2*want)
	}
	within(t, "speedup 60 cores", cell(t, tab, 4, 1), 0.8*302, 1.2*302)
	within(t, "speedup 30 cores", cell(t, tab, 4, 2), 0.8*197, 1.2*197)
	// Improved at 30 cores: paper 81 s.
	within(t, "Improved (30 cores)", cell(t, tab, 3, 2), 0.8*81, 1.2*81)
	// Ladder monotone at 60 cores.
	for i := 1; i < 4; i++ {
		if !(cell(t, tab, i, 1) < cell(t, tab, i-1, 1)) {
			t.Errorf("60-core ladder not monotone at row %d", i)
		}
	}
}

// TestFig7Shape asserts the network-size findings: CPU time grows steeply
// (≈ linearly in the weight count), Phi time grows mildly, and the gap is
// small for small networks and large for large ones.
func TestFig7Shape(t *testing.T) {
	for _, kind := range []ModelKind{AE, RBM} {
		tab := Fig7(kind)
		cpuSmall, cpuLarge := cell(t, tab, 0, 1), cell(t, tab, 3, 1)
		phiSmall, phiLarge := cell(t, tab, 0, 2), cell(t, tab, 3, 2)
		spSmall, spLarge := cell(t, tab, 0, 3), cell(t, tab, 3, 3)

		// Weight count grows 576*1024 → 4096*16384 ≈ 114×; CPU time should
		// grow within a factor of ~2 of linearly, Phi much less.
		weightRatio := float64(4096*16384) / float64(576*1024)
		cpuGrowth := cpuLarge / cpuSmall
		phiGrowth := phiLarge / phiSmall
		within(t, string(kind)+" CPU growth vs weights", cpuGrowth/weightRatio, 0.5, 2)
		if !(phiGrowth < cpuGrowth/3) {
			t.Errorf("%s: Phi growth %g not mild vs CPU growth %g", kind, phiGrowth, cpuGrowth)
		}
		if !(spSmall < spLarge/4) {
			t.Errorf("%s: speedup gap small→large %gx→%gx lacks the paper's spread", kind, spSmall, spLarge)
		}
		if spSmall < 1 {
			t.Errorf("%s: Phi slower than one CPU core even at the smallest network (%gx)", kind, spSmall)
		}
	}
}

// TestFig8Shape asserts the dataset-size findings: CPU time grows linearly
// with the dataset while the Phi's absolute increase stays small on the
// same scale ("the time cost by Intel Xeon Phi does not change much").
func TestFig8Shape(t *testing.T) {
	for _, kind := range []ModelKind{AE, RBM} {
		tab := Fig8(kind)
		cpu1, cpu5 := cell(t, tab, 0, 1), cell(t, tab, 4, 1)
		phi1, phi5 := cell(t, tab, 0, 2), cell(t, tab, 4, 2)
		within(t, string(kind)+" CPU linearity", (cpu5/cpu1)/10, 0.8, 1.2)
		// The Phi increase is invisible on the CPU chart's scale: less
		// than 5% of the CPU increase.
		if !(phi5-phi1 < 0.05*(cpu5-cpu1)) {
			t.Errorf("%s: Phi grew %g s vs CPU %g s — not flat on the paper's scale", kind, phi5-phi1, cpu5-cpu1)
		}
	}
}

// TestFig9Shape asserts the batch-size findings: on the Phi the time drops
// by roughly two thirds from batch 200 to 10000 (the paper's words for the
// AE), while the single CPU core barely moves.
func TestFig9Shape(t *testing.T) {
	for _, kind := range []ModelKind{AE, RBM} {
		tab := Fig9(kind)
		cpu200, cpu10k := cell(t, tab, 0, 1), cell(t, tab, 5, 1)
		phi200, phi10k := cell(t, tab, 0, 2), cell(t, tab, 5, 2)
		drop := 1 - phi10k/phi200
		within(t, string(kind)+" Phi drop 200→10000", drop, 0.5, 0.95)
		cpuDrop := 1 - cpu10k/cpu200
		if !(cpuDrop < 0.2) {
			t.Errorf("%s: CPU drop %g should be small", kind, cpuDrop)
		}
		// Phi time must fall monotonically with batch size.
		for i := 1; i < len(Fig9Batches); i++ {
			if !(cell(t, tab, i, 2) < cell(t, tab, i-1, 2)) {
				t.Errorf("%s: Phi time not monotone at batch %d", kind, Fig9Batches[i])
			}
		}
	}
}

// TestFig10Shape asserts the Matlab comparison: ≈16× at the paper-scale
// network (±30%), and the Phi wins at every geometry.
func TestFig10Shape(t *testing.T) {
	tab := Fig10()
	within(t, "Matlab speedup at 576x1024", cell(t, tab, 0, 3), 16*0.7, 16*1.3)
	for i := range tab.Rows {
		if sp := cell(t, tab, i, 3); sp < 10 {
			t.Errorf("row %d: Phi only %gx over Matlab", i, sp)
		}
	}
}

// TestFig5OverlapShape asserts the §IV.A claim: without the loading thread
// transfers cost ≈17% of the total (we accept 10–25%), and the double
// buffer recovers most of it.
func TestFig5OverlapShape(t *testing.T) {
	tab := Fig5Overlap()
	sync := cell(t, tab, 0, 1)
	double := cell(t, tab, 1, 1)
	share := cell(t, tab, 0, 3)
	within(t, "transfer share without overlap", share, 10, 25)
	saved := (sync - double) / sync * 100
	within(t, "time recovered by the loading thread (%)", saved, 8, 25)
	quad := cell(t, tab, 2, 1)
	if quad > double+1e-9 {
		t.Errorf("4 buffers (%g) slower than 2 (%g)", quad, double)
	}
}

// TestAblationShapes sanity-checks every ablation's direction and rough
// magnitude.
func TestAblationShapes(t *testing.T) {
	if v := cell(t, AblationVectorization(), 1, 2); v < 2 || v > 16 {
		t.Errorf("vectorization slowdown %gx implausible", v)
	}
	if v := cell(t, AblationLoopFusion(), 1, 2); v < 1.1 || v > 4 {
		t.Errorf("fusion slowdown %gx implausible", v)
	}
	if v := cell(t, AblationPrefetch(), 1, 2); v < 1.05 || v > 2 {
		t.Errorf("prefetch slowdown %gx implausible", v)
	}
	if v := cell(t, AblationRBMDependencyGraph(), 1, 2); v < 1.05 || v > 3 {
		t.Errorf("Fig. 6 slowdown %gx implausible", v)
	}
	tpc := AblationThreadsPerCore()
	if !(cell(t, tpc, 0, 2) > cell(t, tpc, 1, 2)) {
		t.Error("one thread per core should be slower than two (in-order issue)")
	}
	cores := AblationCoreCount()
	if sp := cell(t, cores, 5, 2); sp < 10 || sp > 60 {
		t.Errorf("60-core scaling %gx outside sublinear band", sp)
	}
	hosts := AblationHostComparison()
	within(t, "Phi vs dual-socket Xeon", cell(t, hosts, 2, 2), 7, 13)
	within(t, "Phi vs Matlab", cell(t, hosts, 3, 2), 12, 30)
	// The GPU comparator lands in the same class as the Phi (the paper's
	// positioning: comparable speed, Phi more general-purpose).
	within(t, "Phi vs GPU", cell(t, hosts, 4, 2), 0.5, 2)
}

// TestJobValidation covers the harness error paths.
func TestJobValidation(t *testing.T) {
	arch, lvl := phiImproved()
	if _, err := (Job{Arch: arch, Level: lvl, Model: "bogus", Visible: 8, Hidden: 8, Batch: 2, DatasetExamples: 10, Epochs: 1}).Run(); err == nil {
		t.Error("unknown model kind must fail")
	}
	if _, err := (Job{Arch: arch, Level: lvl, Model: AE, Visible: 0, Hidden: 8, Batch: 2, DatasetExamples: 10, Epochs: 1}).Run(); err == nil {
		t.Error("invalid geometry must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRun must panic on failure")
		}
	}()
	Job{Arch: arch, Level: lvl, Model: "bogus", Visible: 8, Hidden: 8, Batch: 2, DatasetExamples: 10, Epochs: 1}.MustRun()
}

// TestJobDeterminism: identical jobs give identical simulated times.
func TestJobDeterminism(t *testing.T) {
	arch, lvl := phiImproved()
	j := Job{Arch: arch, Level: lvl, Model: RBM, Visible: 64, Hidden: 32, Batch: 8, DatasetExamples: 64, Epochs: 2, Prefetch: true, Seed: 5}
	a := j.MustRun().SimSeconds
	b := j.MustRun().SimSeconds
	if a != b {
		t.Fatalf("job not deterministic: %g vs %g", a, b)
	}
}

// TestTableRendering covers the table writer against golden fragments.
func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Note:    "n",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333") // short row padded
	s := tab.String()
	for _, want := range []string{"T\n", "(n)", "a", "bb", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
	var csv strings.Builder
	tab.WriteCSV(&csv)
	if !strings.Contains(csv.String(), "a,bb") || !strings.Contains(csv.String(), "# T") {
		t.Errorf("CSV malformed:\n%s", csv.String())
	}
	// CSV escaping.
	tab2 := &Table{Title: "x", Columns: []string{`he,llo`, `qu"ote`}}
	tab2.AddRow("v1", "v2")
	var csv2 strings.Builder
	tab2.WriteCSV(&csv2)
	if !strings.Contains(csv2.String(), `"he,llo"`) || !strings.Contains(csv2.String(), `"qu""ote"`) {
		t.Errorf("CSV escaping wrong:\n%s", csv2.String())
	}
}

func TestSecsFormatting(t *testing.T) {
	cases := map[float64]string{
		1234:    "1234 s",
		12.34:   "12.3 s",
		0.01234: "12.3 ms",
		1.2e-5:  "12.0 µs",
	}
	for in, want := range cases {
		if got := secs(in); got != want {
			t.Errorf("secs(%g) = %q, want %q", in, got, want)
		}
	}
	if ratio(2.5) != "2.5x" {
		t.Error("ratio formatting")
	}
}

// TestRunTable1CellAgainstJobPath cross-checks the Table1 stacked-run path
// against three equivalent single-layer jobs: the stacked total must exceed
// any single layer and be below their padded sum.
func TestRunTable1CellAgainstJobPath(t *testing.T) {
	w := DefaultTable1Workload()
	w.IterationsPerLayer = 20 // keep the test fast
	total := RunTable1Cell(w, core.Improved, 60)
	if total <= 0 || math.IsNaN(total) {
		t.Fatalf("bad total %g", total)
	}
	// First layer alone, same protocol.
	arch, _ := phiImproved()
	first := Job{
		Arch: arch, Level: core.Improved, Model: AE,
		Visible: 1024, Hidden: 512, Batch: w.Batch,
		DatasetExamples: w.DatasetExamples, Iterations: w.IterationsPerLayer,
		ChunkExamples: w.ChunkExamples, Prefetch: true, Seed: 1,
	}.MustRun().SimSeconds
	if !(total > first) {
		t.Errorf("stack total %g not larger than first layer %g", total, first)
	}
	if !(total < 3*first) {
		t.Errorf("stack total %g implausibly large vs first layer %g (later layers are smaller)", total, first)
	}
}

// TestBatchMethodsShape reproduces §III: batch methods (L-BFGS, CG) make
// far fewer parameter updates per dataset pass, and online SGD reaches at
// least as good an objective in no more simulated time.
func TestBatchMethodsShape(t *testing.T) {
	tab := BatchMethods()
	sgdUpdates := cell(t, tab, 0, 1)
	lbfgsUpdates := cell(t, tab, 1, 1)
	if !(lbfgsUpdates < sgdUpdates/4) {
		t.Errorf("batch method made %g updates vs SGD's %g — not 'much more computation per update'", lbfgsUpdates, sgdUpdates)
	}
	sgdCost, sgdTime := cell(t, tab, 0, 3), cell(t, tab, 0, 4)
	for i := 1; i < len(tab.Rows); i++ {
		cost, time := cell(t, tab, i, 3), cell(t, tab, i, 4)
		if cost < sgdCost*0.95 && time < sgdTime {
			t.Errorf("%s beat SGD on both axes — §III trade-off not reproduced", tab.Rows[i][0])
		}
	}
}

// TestClusterVsPhiShape asserts the positioning result: per-step averaging
// over 1 GbE loses to a single node on the fat model; relaxed-sync clusters
// scale but one Phi still beats the 16-node configuration.
func TestClusterVsPhiShape(t *testing.T) {
	tab := ClusterVsPhi()
	one := cell(t, tab, 0, 1)
	syncEvery := cell(t, tab, 1, 1)
	relaxed16 := cell(t, tab, 3, 1)
	phi := cell(t, tab, 4, 1)
	if !(syncEvery > one) {
		t.Errorf("per-step sync cluster (%g) should lose to one node (%g)", syncEvery, one)
	}
	if !(relaxed16 < one) {
		t.Errorf("16-node relaxed cluster (%g) should beat one node (%g)", relaxed16, one)
	}
	if !(phi < relaxed16) {
		t.Errorf("one Phi (%g) should beat the 16-node GbE cluster (%g)", phi, relaxed16)
	}
}
