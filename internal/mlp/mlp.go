// Package mlp implements the supervised fine-tuning stage that follows the
// paper's unsupervised pre-training: a deep feed-forward network with
// sigmoid hidden layers and a softmax output, trained with cross-entropy
// back-propagation on the device. Its hidden layers are initialized from a
// pre-trained stack (stacked Autoencoders or a DBN), which is the whole
// point of the pre-training pipeline of Fig. 1 — and the classic result
// that pre-trained initialization beats random initialization is
// demonstrated in examples/finetune and asserted in this package's tests.
package mlp

import (
	"fmt"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/stack"
	"phideep/internal/tensor"
)

// Config describes the network: Sizes[0] inputs, sigmoid hidden layers,
// Sizes[len-1] softmax classes.
type Config struct {
	Sizes  []int
	Lambda float64 // L2 penalty on all weights
	// Momentum, when non-zero, applies classical momentum to every layer.
	Momentum float64
	// Batch is the minibatch size the device-resident model is built for.
	// Build requires it; the deprecated four-argument constructor fills it
	// from its positional batch argument.
	Batch int
	// Seed initializes the parameters. Zero is a valid seed.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Sizes) < 2 {
		return fmt.Errorf("mlp: need at least input and output sizes, got %d", len(c.Sizes))
	}
	for i, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("mlp: layer %d has non-positive size %d", i, s)
		}
	}
	if c.Lambda < 0 {
		return fmt.Errorf("mlp: negative lambda %g", c.Lambda)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("mlp: momentum %g outside [0,1)", c.Momentum)
	}
	if c.Batch < 0 {
		return fmt.Errorf("mlp: negative batch size %d", c.Batch)
	}
	return nil
}

// Layers returns the number of weight layers.
func (c Config) Layers() int { return len(c.Sizes) - 1 }

// Model is a deep classifier resident on a device.
type Model struct {
	Cfg   Config
	Ctx   *blas.Context
	Batch int

	W, B   []*device.Buffer // W[l]: Sizes[l]×Sizes[l+1]; B[l]: 1×Sizes[l+1]
	GW, GB []*device.Buffer
	vW, vB []*device.Buffer // momentum velocities (nil entries when off)

	act   []*device.Buffer // act[l]: Batch×Sizes[l+1] (post-activation)
	delta []*device.Buffer // delta[l]: Batch×Sizes[l+1]
	dA    []*device.Buffer // sigmoid-derivative scratch per hidden layer

	// inferOnly marks a forward-only model built by NewInference.
	inferOnly bool
}

// New allocates a model with random initialization.
//
// Deprecated: use Build with Config.Batch and Config.Seed set.
func New(ctx *blas.Context, cfg Config, batch int, seed uint64) (*Model, error) {
	cfg.Batch = batch
	cfg.Seed = seed
	return Build(ctx, cfg)
}

// Build allocates a model for cfg.Batch examples with the random
// initialization drawn from cfg.Seed.
func Build(ctx *blas.Context, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batch := cfg.Batch
	if batch <= 0 {
		return nil, fmt.Errorf("mlp: non-positive batch %d", batch)
	}
	m := &Model{Cfg: cfg, Ctx: ctx, Batch: batch}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}
	L := cfg.Layers()
	m.W, m.B = make([]*device.Buffer, L), make([]*device.Buffer, L)
	m.GW, m.GB = make([]*device.Buffer, L), make([]*device.Buffer, L)
	m.vW, m.vB = make([]*device.Buffer, L), make([]*device.Buffer, L)
	m.act, m.delta = make([]*device.Buffer, L), make([]*device.Buffer, L)
	m.dA = make([]*device.Buffer, L)
	for l := 0; l < L; l++ {
		in, out := cfg.Sizes[l], cfg.Sizes[l+1]
		m.W[l], m.B[l] = alloc(in, out), alloc(1, out)
		m.GW[l], m.GB[l] = alloc(in, out), alloc(1, out)
		if cfg.Momentum > 0 {
			m.vW[l], m.vB[l] = alloc(in, out), alloc(1, out)
		}
		m.act[l], m.delta[l] = alloc(batch, out), alloc(batch, out)
		if l < L-1 {
			m.dA[l] = alloc(batch, out)
		}
	}
	if err != nil {
		m.Free() // release the buffers allocated before the failure
		return nil, err
	}
	m.Upload(NewParams(cfg, cfg.Seed))
	return m, nil
}

// NewInference allocates a forward-only model for up to batch examples:
// weights, biases and activations only — no gradient, velocity or delta
// workspace. p, when non-nil, provides the weights; nil initializes from
// cfg.Seed. Only Infer, Forward, Upload and Download work on an inference
// model — the training entry points panic.
func NewInference(ctx *blas.Context, cfg Config, batch int, p *Params) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("mlp: non-positive batch %d", batch)
	}
	m := &Model{Cfg: cfg, Ctx: ctx, Batch: batch, inferOnly: true}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}
	L := cfg.Layers()
	m.W, m.B = make([]*device.Buffer, L), make([]*device.Buffer, L)
	m.act = make([]*device.Buffer, L)
	for l := 0; l < L; l++ {
		in, out := cfg.Sizes[l], cfg.Sizes[l+1]
		m.W[l], m.B[l] = alloc(in, out), alloc(1, out)
		m.act[l] = alloc(batch, out)
	}
	if err != nil {
		m.Free() // release the buffers allocated before the failure
		return nil, err
	}
	if p == nil {
		p = NewParams(cfg, cfg.Seed)
	}
	m.Upload(p)
	return m, nil
}

// Free releases every device buffer.
func (m *Model) Free() {
	dev := m.Ctx.Dev
	free := func(bs []*device.Buffer) {
		for _, b := range bs {
			if b != nil {
				dev.Free(b)
			}
		}
	}
	free(m.W)
	free(m.B)
	free(m.GW)
	free(m.GB)
	free(m.vW)
	free(m.vB)
	free(m.act)
	free(m.delta)
	free(m.dA)
}

// Upload transfers host parameters onto the device.
func (m *Model) Upload(p *Params) {
	dev := m.Ctx.Dev
	for l := range m.W {
		dev.CopyIn(m.W[l], hostOrNil(dev, p.W[l]), 0)
		dev.CopyIn(m.B[l], hostOrNil(dev, p.B[l].AsRow()), 0)
	}
}

// Download copies the device parameters back to the host.
func (m *Model) Download() *Params {
	p := zeroParams(m.Cfg)
	dev := m.Ctx.Dev
	for l := range m.W {
		dev.CopyOut(m.W[l], hostOrNil(dev, p.W[l]))
		dev.CopyOut(m.B[l], hostOrNil(dev, p.B[l].AsRow()))
	}
	return p
}

func hostOrNil(dev *device.Device, m *tensor.Matrix) *tensor.Matrix {
	if dev.Numeric {
		return m
	}
	return nil
}

// InitFromStack copies a pre-trained stack's encoder weights into the
// hidden layers (the Fig. 1 hand-off into supervised fine-tuning). The
// stack must cover a prefix of the hidden layers: stack layer l provides
// W[l], B[l]. The remaining layers (at least the softmax head) keep their
// random initialization.
func (m *Model) InitFromStack(res *stack.Result) error {
	if len(res.Layers) > m.Cfg.Layers()-1 {
		return fmt.Errorf("mlp: stack has %d layers but the network has only %d hidden layers", len(res.Layers), m.Cfg.Layers()-1)
	}
	dev := m.Ctx.Dev
	for l, layer := range res.Layers {
		if layer.Visible != m.Cfg.Sizes[l] || layer.Hidden != m.Cfg.Sizes[l+1] {
			return fmt.Errorf("mlp: stack layer %d is %d→%d, network layer wants %d→%d",
				l, layer.Visible, layer.Hidden, m.Cfg.Sizes[l], m.Cfg.Sizes[l+1])
		}
		switch {
		case layer.AE != nil:
			dev.CopyIn(m.W[l], hostOrNil(dev, layer.AE.W1), 0)
			dev.CopyIn(m.B[l], hostOrNil(dev, layer.AE.B1.AsRow()), 0)
		case layer.RBM != nil:
			dev.CopyIn(m.W[l], hostOrNil(dev, layer.RBM.W), 0)
			dev.CopyIn(m.B[l], hostOrNil(dev, layer.RBM.C.AsRow()), 0)
		default:
			return fmt.Errorf("mlp: stack layer %d has no parameters", l)
		}
	}
	return nil
}

// Forward runs the batched forward pass; act[L-1] holds the softmax
// probabilities afterwards.
func (m *Model) Forward(x *device.Buffer) {
	m.checkInput(x)
	ctx := m.Ctx
	in := x
	L := m.Cfg.Layers()
	for l := 0; l < L; l++ {
		layerIn, layer := in, l
		ctx.MaybeFused(func() {
			ctx.Gemm(false, false, 1, layerIn, m.W[layer], 0, m.act[layer])
			ctx.AddBiasRow(m.act[layer], m.B[layer])
			if layer < L-1 {
				ctx.Sigmoid(m.act[layer], m.act[layer])
			} else {
				ctx.SoftmaxRows(m.act[layer], m.act[layer])
			}
		})
		in = m.act[l]
	}
}

// Infer runs the batched forward pass for 1..Batch examples (one per row
// of x) and returns a view of the softmax probabilities, x.Rows×Classes.
// The returned buffer is owned by the model and overwritten by the next
// call; CopyOut it (or read it) before inferring again. Unlike Forward it
// accepts partial batches, computing on row views of the activation
// workspace, and allocates nothing.
func (m *Model) Infer(x *device.Buffer) *device.Buffer {
	n := m.checkInfer(x)
	ctx := m.Ctx
	in := x
	L := m.Cfg.Layers()
	var out *device.Buffer
	for l := 0; l < L; l++ {
		layerIn, layer := in, l
		out = sliceTo(m.act[l], n)
		act := out
		ctx.MaybeFused(func() {
			ctx.Gemm(false, false, 1, layerIn, m.W[layer], 0, act)
			ctx.AddBiasRow(act, m.B[layer])
			if layer < L-1 {
				ctx.Sigmoid(act, act)
			} else {
				ctx.SoftmaxRows(act, act)
			}
		})
		in = out
	}
	return out
}

// checkInfer validates a forward-only input and returns its row count.
func (m *Model) checkInfer(x *device.Buffer) int {
	if x.Rows < 1 || x.Rows > m.Batch || x.Cols != m.Cfg.Sizes[0] {
		panic(fmt.Sprintf("mlp: inference input %dx%d, want 1..%d×%d", x.Rows, x.Cols, m.Batch, m.Cfg.Sizes[0]))
	}
	return x.Rows
}

// sliceTo returns b itself for a full-height batch and the [0,n) row view
// otherwise, so partial batches reuse the same workspace.
func sliceTo(b *device.Buffer, n int) *device.Buffer {
	if n == b.Rows {
		return b
	}
	return b.Slice(0, n)
}

// mustTrain panics when a training entry point is hit on a forward-only
// model, whose gradient workspace was never allocated.
func (m *Model) mustTrain(op string) {
	if m.inferOnly {
		panic("mlp: " + op + " on an inference-only model (built by NewInference)")
	}
}

// Backward computes the cross-entropy gradient for the batch (x, one-hot
// y), averaged over the batch with the λ term included. Forward must have
// run on the same x.
func (m *Model) Backward(x, y *device.Buffer) {
	m.mustTrain("Backward")
	m.checkInput(x)
	L := m.Cfg.Layers()
	if y.Rows != m.Batch || y.Cols != m.Cfg.Sizes[L] {
		panic(fmt.Sprintf("mlp: targets %dx%d, want %dx%d", y.Rows, y.Cols, m.Batch, m.Cfg.Sizes[L]))
	}
	ctx := m.Ctx
	invM := 1 / float64(m.Batch)

	// Softmax+cross-entropy delta: (p − y)/batch.
	ctx.MaybeFused(func() {
		ctx.Sub(m.delta[L-1], m.act[L-1], y)
		ctx.Scale(invM, m.delta[L-1])
	})

	for l := L - 1; l >= 0; l-- {
		in := x
		if l > 0 {
			in = m.act[l-1]
		}
		ctx.MaybeConcurrent(func() {
			ctx.Gemm(true, false, 1, in, m.delta[l], 0, m.GW[l])
			ctx.ColSums(m.delta[l], m.GB[l])
		})
		if m.Cfg.Lambda != 0 {
			ctx.Axpy(m.Cfg.Lambda, m.W[l], m.GW[l])
		}
		if l > 0 {
			l := l
			ctx.MaybeFused(func() {
				ctx.Gemm(false, true, 1, m.delta[l], m.W[l], 0, m.delta[l-1])
				ctx.SigmoidPrimeFromY(m.dA[l-1], m.act[l-1])
				ctx.MulElem(m.delta[l-1], m.delta[l-1], m.dA[l-1])
			})
		}
	}
}

// ApplyUpdate applies SGD or momentum to every layer.
func (m *Model) ApplyUpdate(lr float64) {
	m.mustTrain("ApplyUpdate")
	ctx := m.Ctx
	mu := m.Cfg.Momentum
	ctx.MaybeFused(func() {
		for l := range m.W {
			if mu == 0 {
				ctx.Axpy(-lr, m.GW[l], m.W[l])
				ctx.Axpy(-lr, m.GB[l], m.B[l])
				continue
			}
			ctx.Scale(mu, m.vW[l])
			ctx.Axpy(-lr, m.GW[l], m.vW[l])
			ctx.Axpy(1, m.vW[l], m.W[l])
			ctx.Scale(mu, m.vB[l])
			ctx.Axpy(-lr, m.GB[l], m.vB[l])
			ctx.Axpy(1, m.vB[l], m.B[l])
		}
	})
}

// StepLabeled runs one supervised update on (x, one-hot y) and returns the
// batch-mean cross-entropy (0 on model-only devices).
// BatchSize implements core.LabeledTrainable.
func (m *Model) BatchSize() int { return m.Batch }

// InputDim implements core.LabeledTrainable.
func (m *Model) InputDim() int { return m.Cfg.Sizes[0] }

// OutputDim implements core.LabeledTrainable.
func (m *Model) OutputDim() int { return m.Cfg.Sizes[len(m.Cfg.Sizes)-1] }

func (m *Model) StepLabeled(x, y *device.Buffer, lr float64) float64 {
	m.Forward(x)
	loss := m.Ctx.CrossEntropyOneHot(m.Probs(), y) / float64(m.Batch)
	m.Backward(x, y)
	m.ApplyUpdate(lr)
	return loss
}

// Accuracy runs Forward on x and returns the fraction of rows whose argmax
// matches the one-hot y (0 on model-only devices).
func (m *Model) Accuracy(x, y *device.Buffer) float64 {
	m.Forward(x)
	return float64(m.Ctx.CountArgmaxMatches(m.Probs(), y)) / float64(m.Batch)
}

// Probs exposes the softmax output buffer of the last Forward.
func (m *Model) Probs() *device.Buffer { return m.act[m.Cfg.Layers()-1] }

func (m *Model) checkInput(x *device.Buffer) {
	if x.Rows != m.Batch || x.Cols != m.Cfg.Sizes[0] {
		panic(fmt.Sprintf("mlp: input %dx%d, want %dx%d", x.Rows, x.Cols, m.Batch, m.Cfg.Sizes[0]))
	}
}
