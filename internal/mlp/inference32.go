package mlp

import (
	"fmt"

	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Params32 is a float32 snapshot of trained classifier parameters, built
// once per served model by To32 and shared read-only by the reduced-
// precision inference replicas. Training never sees these.
type Params32 struct {
	W []*tensor.Matrix32
	B []tensor.Vector32
}

// To32 rounds every layer to float32.
func (p *Params) To32() *Params32 {
	c := &Params32{W: make([]*tensor.Matrix32, len(p.W)), B: make([]tensor.Vector32, len(p.B))}
	for l := range p.W {
		c.W[l] = p.W[l].To32()
		c.B[l] = p.B[l].To32()
	}
	return c
}

// Inference32 is a forward-only float32 replica of the deep classifier
// running host-side on the packed f32 kernels: sigmoid hidden layers,
// softmax output. Weights are shared read-only; each replica owns a private
// per-layer activation workspace sized for maxBatch. Not safe for concurrent
// use of a single replica.
type Inference32 struct {
	cfg  Config
	p    *Params32
	pool *parallel.Pool
	lvl  kernels.Level

	acts []*tensor.Matrix32 // acts[l]: maxBatch×Sizes[l+1]
}

// NewInference32 builds a replica over the shared snapshot p. pool may be
// nil for sequential execution; lvl picks the kernel ladder rung.
func NewInference32(pool *parallel.Pool, lvl kernels.Level, cfg Config, maxBatch int, p *Params32) *Inference32 {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("mlp: NewInference32 maxBatch %d", maxBatch))
	}
	m := &Inference32{cfg: cfg, p: p, pool: pool, lvl: lvl, acts: make([]*tensor.Matrix32, cfg.Layers())}
	for l := range m.acts {
		m.acts[l] = tensor.NewMatrix32(maxBatch, cfg.Sizes[l+1])
	}
	return m
}

// Infer runs the forward pass on the batch x (one example per row) and
// returns the softmax class probabilities as a workspace view valid until
// the next call.
func (m *Inference32) Infer(x *tensor.Matrix32) *tensor.Matrix32 {
	if x.Cols != m.cfg.Sizes[0] || x.Rows > m.acts[0].Rows {
		panic(fmt.Sprintf("mlp: Infer32 input %dx%d, want ≤%dx%d", x.Rows, x.Cols, m.acts[0].Rows, m.cfg.Sizes[0]))
	}
	L := m.cfg.Layers()
	in := x
	for l := 0; l < L; l++ {
		out := m.acts[l].RowsView(0, x.Rows)
		kernels.Gemm32(m.pool, m.lvl, false, false, 1, in, m.p.W[l], 0, out)
		kernels.AddBiasRow32(m.pool, m.lvl, out, m.p.B[l])
		if l < L-1 {
			kernels.Sigmoid32(m.pool, m.lvl, out, out)
		} else {
			kernels.SoftmaxRows32(m.pool, m.lvl, out, out)
		}
		in = out
	}
	return in
}
