package mlp

import (
	"fmt"
	"io"
	"math"

	"phideep/internal/nn"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Params is the host-side parameter set of the deep classifier.
type Params struct {
	W []*tensor.Matrix
	B []tensor.Vector
}

// NewParams returns randomly initialized parameters (symmetric uniform
// weights, zero biases).
func NewParams(cfg Config, seed uint64) *Params {
	r := rng.New(seed)
	p := zeroParams(cfg)
	for l := range p.W {
		nn.InitMatrix(p.W[l], r)
	}
	return p
}

func zeroParams(cfg Config) *Params {
	L := cfg.Layers()
	p := &Params{W: make([]*tensor.Matrix, L), B: make([]tensor.Vector, L)}
	for l := 0; l < L; l++ {
		p.W[l] = tensor.NewMatrix(cfg.Sizes[l], cfg.Sizes[l+1])
		p.B[l] = tensor.NewVector(cfg.Sizes[l+1])
	}
	return p
}

// ParamSet registers every layer for the flat-vector optimizers.
func (p *Params) ParamSet() *nn.ParamSet {
	ps := &nn.ParamSet{}
	for l := range p.W {
		ps.AddMatrix(fmt.Sprintf("W%d", l), p.W[l])
		ps.AddVector(fmt.Sprintf("b%d", l), p.B[l])
	}
	return ps
}

// CostGrad evaluates the batch-mean cross-entropy with L2 penalty on x with
// one-hot targets y, accumulating the exact gradient into grad when
// non-nil. Plain sequential loops: the oracle for finite differences and
// the device implementation.
func CostGrad(cfg Config, p *Params, x, y *tensor.Matrix, grad *Params) float64 {
	if x.Cols != cfg.Sizes[0] {
		panic(fmt.Sprintf("mlp: CostGrad input width %d, want %d", x.Cols, cfg.Sizes[0]))
	}
	L := cfg.Layers()
	if y.Rows != x.Rows || y.Cols != cfg.Sizes[L] {
		panic(fmt.Sprintf("mlp: CostGrad targets %dx%d, want %dx%d", y.Rows, y.Cols, x.Rows, cfg.Sizes[L]))
	}
	m := x.Rows
	if m == 0 {
		panic("mlp: CostGrad on empty batch")
	}
	invM := 1 / float64(m)

	// Forward, keeping every activation.
	acts := make([]*tensor.Matrix, L)
	in := x
	for l := 0; l < L; l++ {
		out := tensor.NewMatrix(m, cfg.Sizes[l+1])
		for i := 0; i < m; i++ {
			xi, oi := in.RowView(i), out.RowView(i)
			for j := range oi {
				s := p.B[l][j]
				for k, xv := range xi {
					s += xv * p.W[l].At(k, j)
				}
				oi[j] = s
			}
			if l < L-1 {
				for j := range oi {
					oi[j] = nn.Sigmoid(oi[j])
				}
			} else {
				softmaxRow(oi)
			}
		}
		acts[l] = out
		in = out
	}

	// Cross-entropy + L2.
	const eps = 1e-12
	cost := 0.0
	probs := acts[L-1]
	for i := 0; i < m; i++ {
		pi, yi := probs.RowView(i), y.RowView(i)
		for j, yv := range yi {
			if yv != 0 {
				cost -= yv * math.Log(math.Max(pi[j], eps))
			}
		}
	}
	cost *= invM
	for l := 0; l < L; l++ {
		cost += cfg.Lambda / 2 * p.W[l].SumSquares()
	}
	if grad == nil {
		return cost
	}

	// Backward.
	for l := 0; l < L; l++ {
		grad.W[l].Zero()
		grad.B[l].Zero()
	}
	delta := tensor.NewMatrix(m, cfg.Sizes[L])
	for i := 0; i < m; i++ {
		pi, yi, di := probs.RowView(i), y.RowView(i), delta.RowView(i)
		for j := range di {
			di[j] = (pi[j] - yi[j]) * invM
		}
	}
	for l := L - 1; l >= 0; l-- {
		in := x
		if l > 0 {
			in = acts[l-1]
		}
		for i := 0; i < m; i++ {
			xi, di := in.RowView(i), delta.RowView(i)
			for k, xv := range xi {
				if xv == 0 {
					continue
				}
				gw := grad.W[l].RowView(k)
				for j, dv := range di {
					gw[j] += xv * dv
				}
			}
			for j, dv := range di {
				grad.B[l][j] += dv
			}
		}
		if cfg.Lambda != 0 {
			for k := 0; k < p.W[l].Rows; k++ {
				w, g := p.W[l].RowView(k), grad.W[l].RowView(k)
				for j := range w {
					g[j] += cfg.Lambda * w[j]
				}
			}
		}
		if l > 0 {
			next := tensor.NewMatrix(m, cfg.Sizes[l])
			for i := 0; i < m; i++ {
				di, ni, ai := delta.RowView(i), next.RowView(i), acts[l-1].RowView(i)
				for k := range ni {
					s := 0.0
					wr := p.W[l].RowView(k)
					for j, dv := range di {
						s += dv * wr[j]
					}
					ni[k] = s * nn.SigmoidPrime(ai[k])
				}
			}
			delta = next
		}
	}
	return cost
}

func softmaxRow(row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for j, v := range row {
		e := math.Exp(v - maxV)
		row[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range row {
		row[j] *= inv
	}
}

// PredictProbs runs the forward pass on one example and returns the softmax
// class probabilities (length Sizes[last]). It is the scalar host reference
// the serving layer degrades to under overload and verifies the device path
// against.
func (p *Params) PredictProbs(cfg Config, x []float64) []float64 {
	L := cfg.Layers()
	in := append([]float64(nil), x...)
	for l := 0; l < L; l++ {
		out := make([]float64, cfg.Sizes[l+1])
		for j := range out {
			s := p.B[l][j]
			for k, xv := range in {
				s += xv * p.W[l].At(k, j)
			}
			out[j] = s
		}
		if l < L-1 {
			for j := range out {
				out[j] = nn.Sigmoid(out[j])
			}
		} else {
			softmaxRow(out)
		}
		in = out
	}
	return in
}

// Predict returns the class argmax for one example.
func (p *Params) Predict(cfg Config, x []float64) int {
	probs := p.PredictProbs(cfg, x)
	best, bestV := 0, math.Inf(-1)
	for j, v := range probs {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

// Save writes the parameters to w in the phideep checkpoint format.
func (p *Params) Save(w io.Writer) error { return nn.SaveParamSet(w, p.ParamSet()) }

// Load reads parameters from r into p, validating size and checksum.
func (p *Params) Load(r io.Reader) error { return nn.LoadParamSet(r, p.ParamSet()) }
