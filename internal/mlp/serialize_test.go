package mlp

import (
	"bytes"
	"testing"

	"phideep/internal/tensor"
)

func TestParamsSaveLoad(t *testing.T) {
	cfg := Config{Sizes: []int{6, 4, 3}}
	p := NewParams(cfg, 1)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewParams(cfg, 42)
	if err := q.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for l := range p.W {
		if tensor.MaxAbsDiff(p.W[l], q.W[l]) != 0 || !tensor.EqualVec(p.B[l], q.B[l], 0) {
			t.Fatalf("layer %d not restored", l)
		}
	}
}
