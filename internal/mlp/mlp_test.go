package mlp

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/stack"
	"phideep/internal/tensor"
)

func testCfg() Config {
	return Config{Sizes: []int{10, 7, 5, 3}, Lambda: 1e-3}
}

func labeledBatch(r *rng.RNG, n, dim, classes int) (*tensor.Matrix, *tensor.Matrix, []int) {
	x := tensor.NewMatrix(n, dim).Randomize(r, 0, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	y := tensor.NewMatrix(n, classes)
	kernels.OneHot(labels, y)
	return x, y, labels
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	cfg := testCfg()
	p := NewParams(cfg, 1)
	x, y, _ := labeledBatch(rng.New(2), 6, 10, 3)
	grad := zeroParams(cfg)
	CostGrad(cfg, p, x, y, grad)
	ps := p.ParamSet()
	theta := ps.Flatten(nil)
	analytic := grad.ParamSet().Flatten(nil)
	const h = 1e-6
	maxRel := 0.0
	for i := 0; i < len(theta); i += 5 {
		orig := theta[i]
		theta[i] = orig + h
		ps.Unflatten(theta)
		cp := CostGrad(cfg, p, x, y, nil)
		theta[i] = orig - h
		ps.Unflatten(theta)
		cm := CostGrad(cfg, p, x, y, nil)
		theta[i] = orig
		ps.Unflatten(theta)
		numeric := (cp - cm) / (2 * h)
		denom := math.Max(1e-8, math.Abs(numeric)+math.Abs(analytic[i]))
		if rel := math.Abs(numeric-analytic[i]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-5 {
		t.Fatalf("max relative gradient error %g", maxRel)
	}
}

func TestDeviceMatchesReference(t *testing.T) {
	cfg := testCfg()
	batch := 6
	x, y, _ := labeledBatch(rng.New(3), batch, 10, 3)
	p := NewParams(cfg, 4)
	refGrad := zeroParams(cfg)
	refCost := CostGrad(cfg, p, x, y, refGrad)

	for _, lvl := range kernels.Levels {
		for _, improved := range []bool{false, true} {
			dev := device.New(sim.XeonPhi5110P(), true, nil)
			ctx := blas.NewContext(dev, lvl, 1)
			ctx.AutoFuse = improved
			ctx.AutoConcurrent = improved
			m, err := New(ctx, cfg, batch, 4)
			if err != nil {
				t.Fatal(err)
			}
			m.Upload(p)
			dx, dy := dev.MustAlloc(batch, 10), dev.MustAlloc(batch, 3)
			dev.CopyIn(dx, x, 0)
			dev.CopyIn(dy, y, 0)
			m.Forward(dx)
			loss := ctx.CrossEntropyOneHot(m.Probs(), dy) / float64(batch)
			// Reference cost includes the λ term; the step loss does not.
			l2 := 0.0
			for l := range p.W {
				l2 += cfg.Lambda / 2 * p.W[l].SumSquares()
			}
			if math.Abs(loss+l2-refCost) > 1e-10 {
				t.Errorf("level %v improved=%v: loss %g vs reference %g", lvl, improved, loss+l2, refCost)
			}
			m.Backward(dx, dy)
			for l := range m.GW {
				if d := tensor.MaxAbsDiff(m.GW[l].Mat, refGrad.W[l]); d > 1e-10 {
					t.Errorf("level %v improved=%v: GW[%d] diff %g", lvl, improved, l, d)
				}
				if d := tensor.MaxAbsDiff(m.GB[l].Mat, refGrad.B[l].AsRow()); d > 1e-10 {
					t.Errorf("level %v improved=%v: GB[%d] diff %g", lvl, improved, l, d)
				}
			}
		}
	}
}

// separableBatch builds a linearly separable 3-class problem with cluster
// centers on coordinate axes.
func separableBatch(r *rng.RNG, n, dim, classes int) (*tensor.Matrix, *tensor.Matrix, []int) {
	x := tensor.NewMatrix(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(classes)
		labels[i] = c
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.2*r.Float64() + 0.1
		}
		for j := c; j < dim; j += classes {
			row[j] += 0.6
		}
	}
	y := tensor.NewMatrix(n, classes)
	kernels.OneHot(labels, y)
	return x, y, labels
}

func TestTrainingLearnsSeparableProblem(t *testing.T) {
	cfg := Config{Sizes: []int{12, 8, 3}, Lambda: 1e-5, Momentum: 0.5}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 5)
	batch := 60
	m, err := New(ctx, cfg, batch, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, y, _ := separableBatch(rng.New(7), batch, 12, 3)
	dx, dy := dev.MustAlloc(batch, 12), dev.MustAlloc(batch, 3)
	dev.CopyIn(dx, x, 0)
	dev.CopyIn(dy, y, 0)
	first := m.StepLabeled(dx, dy, 0.5)
	var last float64
	for i := 0; i < 300; i++ {
		last = m.StepLabeled(dx, dy, 0.5)
	}
	if !(last < 0.3*first) {
		t.Fatalf("cross-entropy did not fall: %g → %g", first, last)
	}
	if acc := m.Accuracy(dx, dy); acc < 0.95 {
		t.Fatalf("training accuracy %g on a separable problem", acc)
	}
}

func TestInitFromStackWiring(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := core.NewContext(dev, core.Improved, 0, 8)
	scfg := stack.Config{Sizes: []int{16, 8, 4}, Batch: 10, LR: 0.5, Lambda: 1e-5}
	tc := core.TrainConfig{Iterations: 5, LR: 0.5, Prefetch: true}
	src := data.InMemory{X: tensor.NewMatrix(40, 16).Randomize(rng.New(30), 0.1, 0.9)}
	res, err := stack.PretrainAutoencoders(ctx, tc, scfg, src, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Sizes: []int{16, 8, 4, 3}, Lambda: 1e-5}
	// Wrong geometry must be rejected.
	badCfg := Config{Sizes: []int{16, 9, 4, 3}}
	bad, err := New(blas.NewContext(dev, kernels.Naive, 1), badCfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.InitFromStack(res); err == nil {
		t.Error("geometry mismatch must fail")
	}
	bad.Free()

	m, err := New(blas.NewContext(dev, kernels.Naive, 1), cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitFromStack(res); err != nil {
		t.Fatal(err)
	}
	got := m.Download()
	if d := tensor.MaxAbsDiff(got.W[0], res.Layers[0].AE.W1); d != 0 {
		t.Errorf("layer 0 weights not copied: diff %g", d)
	}
	if d := tensor.MaxAbsDiff(got.W[1], res.Layers[1].AE.W1); d != 0 {
		t.Errorf("layer 1 weights not copied: diff %g", d)
	}
	// Too-deep stacks rejected.
	deep := &stack.Result{Layers: append(append([]stack.LayerResult{}, res.Layers...), res.Layers...)}
	if err := m.InitFromStack(deep); err == nil {
		t.Error("stack deeper than hidden layers must fail")
	}
	m.Free()
}

func TestPredictMatchesDeviceForward(t *testing.T) {
	cfg := testCfg()
	p := NewParams(cfg, 11)
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	batch := 4
	m, err := New(ctx, cfg, batch, 11)
	if err != nil {
		t.Fatal(err)
	}
	m.Upload(p)
	x, _, _ := labeledBatch(rng.New(12), batch, 10, 3)
	dx := dev.MustAlloc(batch, 10)
	dev.CopyIn(dx, x, 0)
	m.Forward(dx)
	for i := 0; i < batch; i++ {
		want := p.Predict(cfg, x.RowView(i))
		row := m.Probs().Mat.RowView(i)
		best, bestV := 0, math.Inf(-1)
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best != want {
			t.Fatalf("row %d: device argmax %d, reference %d", i, best, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Sizes: []int{5}},
		{Sizes: []int{5, 0, 3}},
		{Sizes: []int{5, 3}, Lambda: -1},
		{Sizes: []int{5, 3}, Momentum: 1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	if _, err := New(ctx, Config{Sizes: []int{4, 2}}, 0, 1); err == nil {
		t.Error("zero batch must fail")
	}
}

func TestFreeReleasesAll(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, Config{Sizes: []int{6, 4, 2}, Momentum: 0.9}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestModelOnlyChargesTime(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, Config{Sizes: []int{1024, 512, 10}}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := dev.MustAlloc(1000, 1024), dev.MustAlloc(1000, 10)
	dev.CopyIn(dx, nil, 0)
	dev.CopyIn(dy, nil, 0)
	if loss := m.StepLabeled(dx, dy, 0.1); loss != 0 {
		t.Fatalf("model-only loss %g", loss)
	}
	if dev.Now() <= 0 {
		t.Fatal("no simulated time charged")
	}
}
