package metrics_test

import (
	"fmt"
	"os"

	"phideep/internal/metrics"
)

// ExampleRegistry shows the get-or-create lookup pattern: resolve handles
// once, record against the handles.
func ExampleRegistry() {
	r := metrics.NewRegistry()
	calls := r.Counter("gemm.calls")
	flops := r.FloatCounter("gemm.flops")
	for i := 0; i < 3; i++ {
		calls.Inc()
		flops.Add(2 * 512 * 512 * 512)
	}
	fmt.Printf("%d calls, %.0f flops\n", calls.Value(), flops.Value())
	// Output: 3 calls, 805306368 flops
}

// ExampleRegistry_Snapshot exports a registry as an aligned text table —
// the end-of-run summary the CLIs print.
func ExampleRegistry_Snapshot() {
	r := metrics.NewRegistry()
	r.Counter("kernels.gemm.calls").Add(128)
	r.Gauge("trainer.examples_per_sec").Set(2048)
	s := r.Snapshot()
	s.WriteText(os.Stdout)
	// Output:
	// counter  kernels.gemm.calls        128
	// gauge    trainer.examples_per_sec  2048
}

// ExampleHistogram records durations into exponential buckets and reads the
// aggregates back.
func ExampleHistogram() {
	r := metrics.NewRegistry()
	h := r.Histogram("epoch.seconds", metrics.ExpBuckets(0.001, 10, 4)...)
	for _, sec := range []float64{0.0004, 0.02, 0.03, 2.5} {
		h.Observe(sec)
	}
	s := r.Snapshot().Histograms["epoch.seconds"]
	fmt.Printf("count=%d min=%g max=%g\n", s.Count, s.Min, s.Max)
	fmt.Println("bounds:", s.Bounds)
	fmt.Println("counts:", s.Counts)
	// Output:
	// count=4 min=0.0004 max=2.5
	// bounds: [0.001 0.01 0.1 1]
	// counts: [1 0 2 0 1]
}

// ExampleSetEnabled shows the global gate instrumented packages consult
// before recording.
func ExampleSetEnabled() {
	defer metrics.SetEnabled(false)
	metrics.SetEnabled(true)
	if metrics.Enabled() {
		metrics.Default().Counter("example.hits").Inc()
	}
	fmt.Println(metrics.Enabled())
	// Output: true
}

// ExampleSnapshot_WriteJSON exports a run report as JSON, the format behind
// phitrain's -metrics flag.
func ExampleSnapshot_WriteJSON() {
	r := metrics.NewRegistry()
	r.Counter("trainer.steps").Add(200)
	r.Snapshot().WriteJSON(os.Stdout)
	// Output:
	// {
	//   "counters": {
	//     "trainer.steps": 200
	//   }
	// }
}
