package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// A Histogram counts observations into a bounded set of buckets with fixed
// upper bounds, and tracks count, sum, min and max. Observations are
// lock-free: one atomic add on the bucket, plus atomic updates of the
// aggregates. Bucket bounds are fixed at construction, so a histogram's
// memory is bounded no matter how many values it observes.
type Histogram struct {
	bounds []float64      // strictly increasing finite upper bounds
	counts []atomic.Int64 // len(bounds)+1; the last counts v > bounds[last]
	count  atomic.Int64
	sum    FloatCounter
	min    atomic.Uint64 // float64 bits, CAS-updated; +Inf when empty
	max    atomic.Uint64 // float64 bits, CAS-updated; -Inf when empty
}

func newHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: histogram bound %d is %v; bounds must be finite", i, b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("metrics: histogram bounds must be strictly increasing, got %v then %v", bounds[i-1], b))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. A value v lands in the first bucket whose
// upper bound satisfies v <= bound; values above every bound land in the
// overflow bucket.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.reset()
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
}

// snapshot copies the histogram state. Buckets are read without a global
// lock, so a snapshot taken during concurrent observation is a consistent
// *per-bucket* view (totals may trail individual buckets by in-flight
// observations).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
	}
	return s
}

// ExpBuckets returns n strictly increasing upper bounds starting at start
// and growing by factor: start, start·factor, start·factor², …. It is the
// conventional shape for latency histograms (e.g. ExpBuckets(1e-6, 4, 12)
// spans a microsecond to several seconds).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d): need start > 0, factor > 1, n > 0", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n strictly increasing upper bounds start,
// start+width, start+2·width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("metrics: LinearBuckets(%v, %v, %d): need width > 0, n > 0", start, width, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}
