package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run under
// -race this also proves the increment path is race-free.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Counter = %d, want %d", got, goroutines*perG)
	}
}

// TestFloatCounterConcurrent checks the CAS accumulation loop under
// contention: integer-valued increments must sum exactly.
func TestFloatCounterConcurrent(t *testing.T) {
	const goroutines, perG = 8, 5000
	var c FloatCounter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("FloatCounter = %g, want %d", got, goroutines*perG)
	}
}

// TestHistogramConcurrent observes from many goroutines and checks the
// total lands in the right buckets.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g % 4)) // 0,1,2,3 round-robin across goroutines
			}
		}(g)
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != 8000 {
		t.Fatalf("count %d", s.Count)
	}
	// g%4==0 and g%4==1 both land in bucket 0 (v <= 1): 4000 observations.
	if s.Counts[0] != 4000 || s.Counts[1] != 2000 || s.Counts[2] != 2000 || s.Counts[3] != 0 {
		t.Fatalf("bucket counts %v", s.Counts)
	}
	if s.Min != 0 || s.Max != 3 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
}

// TestHistogramBucketBoundaries pins the v <= bound ("le") semantics:
// a value equal to a bound belongs to that bound's bucket, epsilon above
// falls through to the next, and values above every bound overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 10.5, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.snapshot()
	// <=1: {0.5, 1}; <=10: {1.0000001, 10}; <=100: {10.5, 100};
	// overflow: {101, 1e9}.
	want := []int64{2, 2, 2, 2}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("bucket counts %v, want %v", s.Counts, want)
	}
	if s.Min != 0.5 || s.Max != 1e9 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
}

// TestHistogramEmpty: an empty histogram snapshots with zero aggregates —
// never ±Inf, which would not survive JSON.
func TestHistogramEmpty(t *testing.T) {
	h := newHistogram([]float64{1})
	s := h.snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean %g", s.Mean())
	}
	if data, err := json.Marshal(s); err != nil {
		t.Fatalf("empty histogram does not marshal: %v (%s)", err, data)
	}
}

func TestHistogramValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"non-increasing": {1, 1},
		"descending":     {2, 1},
		"nan":            {math.NaN()},
		"inf":            {math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds %v did not panic", name, bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-18 {
			t.Fatalf("ExpBuckets %v", exp)
		}
	}
	lin := LinearBuckets(0, 2.5, 3)
	if !reflect.DeepEqual(lin, []float64{0, 2.5, 5}) {
		t.Fatalf("LinearBuckets %v", lin)
	}
	// Helpers must produce bounds a histogram accepts.
	newHistogram(ExpBuckets(1e-6, 4, 12))
}

// TestRegistryGetOrCreate: one name, one handle; a second lookup returns the
// same pointer so package-level handles and ad-hoc lookups agree.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.FloatCounter("f") != r.FloatCounter("f") {
		t.Fatal("FloatCounter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h", 1, 2) != r.Histogram("h") {
		t.Fatal("Histogram not idempotent")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("name")
}

// TestRegistryConcurrentLookup races get-or-create from many goroutines;
// all must converge on one handle and the final count must be exact.
func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("lat", 1, 2, 3).Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter %d", got)
	}
	if got := r.Histogram("lat").Count(); got != 8000 {
		t.Fatalf("histogram count %d", got)
	}
}

// TestSnapshotJSONRoundTrip marshals a populated snapshot and unmarshals it
// back; every field must survive.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("calls").Add(42)
	r.FloatCounter("flops").Add(1.5e9)
	r.Gauge("throughput").Set(123.25)
	h := r.Histogram("seconds", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)

	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
	if back.Counters["calls"] != 42 || back.Histograms["seconds"].Count != 3 {
		t.Fatalf("unexpected values after round trip: %+v", back)
	}
}

// TestSnapshotDetached: a snapshot must not change when recording continues.
func TestSnapshotDetached(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	s := r.Snapshot()
	c.Add(100)
	if s.Counters["c"] != 5 {
		t.Fatalf("snapshot moved with the live counter: %d", s.Counters["c"])
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	f := r.FloatCounter("f")
	g := r.Gauge("g")
	h := r.Histogram("h", 1)
	c.Add(3)
	f.Add(1.5)
	g.Set(9)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || f.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset left values behind")
	}
	// Handles stay live after Reset.
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("handle dead after Reset")
	}
	if s := h.snapshot(); s.Min != 0 || s.Max != 0 {
		t.Fatalf("histogram min/max not rearmed: %+v", s)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.calls").Add(2)
	r.Counter("a.calls").Add(1)
	r.Gauge("rate").Set(3.5)
	r.Histogram("lat", 1, 2).Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.calls") || !strings.Contains(out, "rate") || !strings.Contains(out, "count=1") {
		t.Fatalf("text summary missing entries:\n%s", out)
	}
	// Alphabetical within a kind.
	if strings.Index(out, "a.calls") > strings.Index(out, "b.calls") {
		t.Fatalf("text summary not sorted:\n%s", out)
	}
}

func TestEnabledGate(t *testing.T) {
	defer SetEnabled(Enabled())
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("not Enabled after SetEnabled(true)")
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry not a singleton")
	}
}
