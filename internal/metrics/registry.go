package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
)

// A Registry is a named collection of metrics. Lookup methods get-or-create
// under a mutex — callers are expected to resolve handles once (typically
// in a package var block) and record against the handles, so the lock never
// sits on a hot path. A name identifies exactly one metric of one kind;
// reusing a name with a different kind panics, catching wiring bugs at
// init time.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		floats:   map[string]*FloatCounter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// std is the process-wide default registry that the instrumented packages
// (kernels, parallel, device, core) register into.
var std = NewRegistry()

// Default returns the process-wide registry used by phideep's built-in
// instrumentation.
func Default() *Registry { return std }

// checkKind panics if name is already registered under a different kind.
// Caller holds r.mu.
func (r *Registry) checkKind(name, kind string) {
	kinds := map[string]bool{
		"counter":   r.counters[name] != nil,
		"float":     r.floats[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.hists[name] != nil,
	}
	for k, present := range kinds {
		if present && k != kind {
			panic(fmt.Sprintf("metrics: %q already registered as a %s, requested as a %s", name, k, kind))
		}
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkKind(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// FloatCounter returns the float counter registered under name, creating it
// on first use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.floats[name]; c != nil {
		return c
	}
	r.checkKind(name, "float")
	c := &FloatCounter{}
	r.floats[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkKind(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use. Later calls return the
// existing histogram; their bounds argument is ignored, so all registrants
// of one name should agree on the shape.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	r.checkKind(name, "histogram")
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Reset zeroes every registered metric in place. Handles held by
// instrumented packages stay valid — only the values rewind — so Reset
// gives per-run numbers to processes that execute several runs (and
// isolation to tests).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, c := range r.floats {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot copies the current value of every registered metric. The copy is
// detached: it never changes after the call and is safe to marshal or
// inspect while recording continues.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Floats:     make(map[string]float64, len(r.floats)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, c := range r.floats {
		s.Floats[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, keyed by metric name.
// It round-trips through encoding/json (histogram min/max are reported as 0
// while empty, so no non-finite values reach the encoder).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Floats     map[string]float64           `json:"floats,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the copied state of one histogram. Counts has
// len(Bounds)+1 entries: Counts[i] observations satisfied v <= Bounds[i]
// (and exceeded Bounds[i-1]); the final entry is the overflow bucket.
// Min and Max are 0 while Count is 0.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as an aligned, alphabetically sorted text
// table — the end-of-run summary the CLIs print.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "counter\t%s\t%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Floats) {
		fmt.Fprintf(tw, "float\t%s\t%g\n", name, s.Floats[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "gauge\t%s\t%g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(tw, "histogram\t%s\tcount=%d sum=%g min=%g max=%g mean=%g\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.Mean())
	}
	return tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
