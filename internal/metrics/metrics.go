// Package metrics is phideep's wall-clock observability layer: a
// zero-dependency registry of counters, gauges and bounded histograms that
// measure the *real* Go execution of the numeric stack — GEMM calls and
// FLOPs, micro-kernel path selection, parallel-region durations, trainer
// epoch times — alongside the *simulated* timelines that internal/sim and
// internal/device keep for the paper's timing reproduction. One snapshot
// therefore shows both clocks side by side, which is how EXPERIMENTS.md
// relates modeled Xeon Phi seconds to measured host seconds.
//
// # Hot-path cost
//
// Every metric type records through a single atomic operation (or a short
// CAS loop for float accumulation), so recording is lock-free and safe from
// any number of goroutines. Collection is globally gated by Enabled: the
// instrumented packages guard each record site with one atomic bool load
// and a predictable branch, so with metrics disabled (the default) the
// instrumentation costs one load per *kernel call* — not per element — and
// the packed GEMM's allocation-free fork/join stays allocation-free.
// DESIGN.md §"Observability" documents the overhead argument and the
// acceptance bound (< 2% on the 512³ GEMM benchmark).
//
// # Usage
//
// Instrumented packages obtain handles once at init from the Default
// registry and record against the handles:
//
//	var calls = metrics.Default().Counter("kernels.gemm.calls")
//
//	func Gemm(...) {
//		if metrics.Enabled() {
//			calls.Inc()
//		}
//		...
//	}
//
// Front-ends call SetEnabled(true), run the workload, and export
// Default().Snapshot() as JSON (phitrain -metrics out.json) or as an
// aligned text table (the end-of-run summary).
package metrics

import (
	"math"
	"sync/atomic"
)

// enabled is the global collection gate. Handles still record if called
// while disabled; the gate exists so instrumentation sites can skip their
// record calls (and the time.Now reads around them) with one atomic load.
var enabled atomic.Bool

// Enabled reports whether metrics collection is globally enabled.
// Instrumentation sites use it to guard record calls.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns global metrics collection on or off. The default is off:
// a process that never opts in pays only the per-call-site guard load.
func SetEnabled(v bool) { enabled.Store(v) }

// A Counter is a monotonically increasing integer metric (calls, items,
// cache hits). All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. Negative n is permitted but makes the value
// no longer monotone; prefer a Gauge for values that go down.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// reset zeroes the counter in place, preserving handles held by callers.
func (c *Counter) reset() { c.v.Store(0) }

// A FloatCounter accumulates a float64 total (seconds, FLOPs, bytes as a
// float). Add runs a compare-and-swap loop on the raw bits, so it is
// lock-free and safe for concurrent use.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v into the counter.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *FloatCounter) reset() { c.bits.Store(0) }

// A Gauge is a float64 value that can move in both directions (last
// observed throughput, configured worker count). Set and Value are single
// atomic operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }
