//go:build amd64 && !noasm

#include "textflag.h"

// func sgemmKernel8x16(kc int, ap, bp, out *float32)
//
// 8×16 float32 C tile — double the rows and columns of the f64 kernel in
// the same sixteen-YMM budget, because each register packs eight float32
// lanes. The tile runs as two 4-row sweeps over the k loop (16 accumulators
// would exhaust the register file in one pass): each sweep holds a 4×16
// sub-tile in eight YMM accumulators — Y(2i) row i columns 0..7, Y(2i+1)
// columns 8..15 — and per k step issues two packed loads of the shared B
// lane, four broadcasts of its A rows and eight VFMADD231PS. The B panel is
// re-read by the second sweep but is L1-resident (kc×16 floats ≤ 16 KiB).
// The k-loop is 2-way unrolled; an odd kc runs one scalar tail step.
TEXT ·sgemmKernel8x16(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), R11
	MOVQ ap+8(FP), R9
	MOVQ bp+16(FP), R10
	MOVQ out+24(FP), DX
	MOVQ $2, R8

sweep:
	MOVQ R11, CX
	MOVQ R9, SI
	MOVQ R10, DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	SUBQ $2, CX
	JLT  tail

loop:
	// k step 0: B lane at DI, this sweep's four A rows at SI.
	VMOVUPS      (DI), Y8
	VMOVUPS      32(DI), Y9
	VBROADCASTSS (SI), Y10
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 8(SI), Y12
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 12(SI), Y13
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7

	// k step 1: ap advances 8 floats (32 bytes) and bp 16 floats (64
	// bytes) per k.
	VMOVUPS      64(DI), Y8
	VMOVUPS      96(DI), Y9
	VBROADCASTSS 32(SI), Y10
	VBROADCASTSS 36(SI), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 40(SI), Y12
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 44(SI), Y13
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7

	ADDQ $64, SI
	ADDQ $128, DI
	SUBQ $2, CX
	JGE  loop

tail:
	ADDQ $2, CX
	JZ   store

	VMOVUPS      (DI), Y8
	VMOVUPS      32(DI), Y9
	VBROADCASTSS (SI), Y10
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 8(SI), Y12
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 12(SI), Y13
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7

store:
	// Four 16-float rows of the sub-tile; out row stride is 64 bytes.
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)

	// Second sweep: rows 4..7 — A lanes shift by four floats within each
	// packed k step, the output window by four rows.
	ADDQ $16, R9
	ADDQ $256, DX
	DECQ R8
	JNZ  sweep

	VZEROUPPER
	RET
