package kernels

import (
	"fmt"
	"math"

	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Float32 variants of the forward-pass elementwise kernels, used by the
// reduced-precision inference replicas. Only the forward ops exist —
// sigmoid, bias add, softmax — because training (and its gradients) stays
// float64. Transcendentals evaluate in float64 and round once on store, so
// the only f32-specific error is representation, not algorithm.

func checkSameShape32(op string, a, b *tensor.Matrix32) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("kernels: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Sigmoid32 computes dst = 1/(1+exp(-src)) elementwise. dst and src may be
// the same matrix.
func Sigmoid32(pool *parallel.Pool, lvl Level, dst, src *tensor.Matrix32) {
	checkSameShape32("Sigmoid32", dst, src)
	forRows(pool, lvl, src.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d := src.RowView(i), dst.RowView(i)
			for j, v := range s {
				d[j] = float32(1 / (1 + math.Exp(-float64(v))))
			}
		}
	})
}

// AddBiasRow32 adds the bias vector b to every row of m in place.
func AddBiasRow32(pool *parallel.Pool, lvl Level, m *tensor.Matrix32, b tensor.Vector32) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("kernels: AddBiasRow32 bias length %d, want %d", len(b), m.Cols))
	}
	forRows(pool, lvl, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.RowView(i)
			for j := range row {
				row[j] += b[j]
			}
		}
	})
}

// SoftmaxRows32 computes a numerically stable row-wise softmax in float32,
// accumulating the exponential sum in float64 so wide rows lose no more
// precision than the final rounding.
func SoftmaxRows32(pool *parallel.Pool, lvl Level, dst, src *tensor.Matrix32) {
	checkSameShape32("SoftmaxRows32", dst, src)
	forRows(pool, lvl, src.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d := src.RowView(i), dst.RowView(i)
			maxV := math.Inf(-1)
			for _, v := range s {
				if float64(v) > maxV {
					maxV = float64(v)
				}
			}
			sum := 0.0
			for j, v := range s {
				e := math.Exp(float64(v) - maxV)
				d[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range d {
				d[j] *= inv
			}
		}
	})
}
