package kernels

import (
	"math"
	"testing"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// convCase is one conv geometry exercised by the oracle suites: square and
// ragged inputs, multi-channel, strided, padded and unpadded.
var convCases = []ConvShape{
	{C: 1, H: 8, W: 8, F: 3, KH: 3, KW: 3, Stride: 1, Pad: 1},
	{C: 1, H: 12, W: 12, F: 5, KH: 5, KW: 5, Stride: 1, Pad: 2},
	{C: 3, H: 9, W: 7, F: 4, KH: 3, KW: 3, Stride: 2, Pad: 1},
	{C: 2, H: 10, W: 10, F: 6, KH: 3, KW: 5, Stride: 1, Pad: 0},
	{C: 4, H: 6, W: 6, F: 8, KH: 1, KW: 1, Stride: 1, Pad: 0},
}

// naiveConvForward runs the direct (un-lowered) convolution of one NHWC
// image: y[(oy·oW+ox)·F+f] = b[f] + Σ_taps x·w, taps in (ky, kx, c) order.
func naiveConvForward(s ConvShape, x []float64, w *tensor.Matrix, b []float64, y []float64) {
	oh, ow := s.OutH(), s.OutW()
	o := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < s.F; f++ {
				acc := 0.0
				for ky := 0; ky < s.KH; ky++ {
					iy := oy*s.Stride - s.Pad + ky
					if iy < 0 || iy >= s.H {
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ox*s.Stride - s.Pad + kx
						if ix < 0 || ix >= s.W {
							continue
						}
						for c := 0; c < s.C; c++ {
							acc += x[(iy*s.W+ix)*s.C+c] * w.At((ky*s.KW+kx)*s.C+c, f)
						}
					}
				}
				y[o] = acc + b[f]
				o++
			}
		}
	}
}

// naiveConvGrads computes the direct weight, bias and input gradients of
// one image given the output gradient dy ((oH·oW)·F flat).
func naiveConvGrads(s ConvShape, x, dy []float64, w, dw *tensor.Matrix, db, dx []float64) {
	oh, ow := s.OutH(), s.OutW()
	o := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < s.F; f++ {
				g := dy[o]
				o++
				db[f] += g
				for ky := 0; ky < s.KH; ky++ {
					iy := oy*s.Stride - s.Pad + ky
					if iy < 0 || iy >= s.H {
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ox*s.Stride - s.Pad + kx
						if ix < 0 || ix >= s.W {
							continue
						}
						for c := 0; c < s.C; c++ {
							wi := (ky*s.KW+kx)*s.C + c
							xi := (iy*s.W+ix)*s.C + c
							dw.Set(wi, f, dw.At(wi, f)+x[xi]*g)
							dx[xi] += w.At(wi, f) * g
						}
					}
				}
			}
		}
	}
}

func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// TestIm2colGemmMatchesDirectConv checks the lowered forward — Im2col then
// Gemm then bias — against the naive direct convolution at every kernel
// level, for every geometry.
func TestIm2colGemmMatchesDirectConv(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	const batch = 3
	for _, s := range convCases {
		r := rng.New(0xc0f_fee)
		x := tensor.NewMatrix(batch, s.InDim())
		x.Randomize(r, -1, 1)
		w := tensor.NewMatrix(s.ColK(), s.F)
		w.Randomize(r, -0.5, 0.5)
		b := tensor.NewVector(s.F).Randomize(r, -0.1, 0.1)

		want := tensor.NewMatrix(batch, s.OutDim())
		for i := 0; i < batch; i++ {
			naiveConvForward(s, x.RowView(i), w, b, want.RowView(i))
		}

		oHW := s.OutH() * s.OutW()
		for _, lvl := range Levels {
			cols := tensor.NewMatrix(batch*oHW, s.ColK())
			out := tensor.NewMatrix(batch*oHW, s.F)
			Im2col(pool, lvl, s, batch, x, cols)
			Gemm(pool, lvl, false, false, 1, cols, w, 0, out)
			AddBiasRow(pool, lvl, out, b)
			if d := maxAbsDiff(out.Data, want.Data); d > 1e-12 {
				t.Errorf("shape %+v level %v: lowered forward deviates from direct conv by %g", s, lvl, d)
			}
		}
	}
}

// TestIm2colGemmBackwardMatchesDirectConv checks the lowered backward —
// dW = colsᵀ·dY, db = ConvBiasGrad(dY), dX = Col2im(dY·Wᵀ) — against
// direct-loop gradients at every kernel level.
func TestIm2colGemmBackwardMatchesDirectConv(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	const batch = 3
	for _, s := range convCases {
		r := rng.New(0xbad_5eed)
		x := tensor.NewMatrix(batch, s.InDim())
		x.Randomize(r, -1, 1)
		w := tensor.NewMatrix(s.ColK(), s.F)
		w.Randomize(r, -0.5, 0.5)
		oHW := s.OutH() * s.OutW()
		dy := tensor.NewMatrix(batch*oHW, s.F)
		dy.Randomize(r, -1, 1)

		wantDW := tensor.NewMatrix(s.ColK(), s.F)
		wantDB := tensor.NewVector(s.F)
		wantDX := tensor.NewMatrix(batch, s.InDim())
		for i := 0; i < batch; i++ {
			naiveConvGrads(s, x.RowView(i), dy.Data[i*oHW*s.F:(i+1)*oHW*s.F], w, wantDW, wantDB, wantDX.RowView(i))
		}

		for _, lvl := range Levels {
			cols := tensor.NewMatrix(batch*oHW, s.ColK())
			Im2col(pool, lvl, s, batch, x, cols)
			dw := tensor.NewMatrix(s.ColK(), s.F)
			Gemm(pool, lvl, true, false, 1, cols, dy, 0, dw)
			db := tensor.NewMatrix(1, s.F)
			ConvBiasGrad(pool, lvl, dy, db)
			dcols := tensor.NewMatrix(batch*oHW, s.ColK())
			Gemm(pool, lvl, false, true, 1, dy, w, 0, dcols)
			dx := tensor.NewMatrix(batch, s.InDim())
			Col2im(pool, lvl, s, batch, dcols, dx)

			if d := maxAbsDiff(dw.Data, wantDW.Data); d > 1e-11 {
				t.Errorf("shape %+v level %v: dW deviates by %g", s, lvl, d)
			}
			if d := maxAbsDiff(db.RowView(0), wantDB); d > 1e-11 {
				t.Errorf("shape %+v level %v: db deviates by %g", s, lvl, d)
			}
			if d := maxAbsDiff(dx.Data, wantDX.Data); d > 1e-11 {
				t.Errorf("shape %+v level %v: dX deviates by %g", s, lvl, d)
			}
		}
	}
}

// TestCol2imIsAdjointOfIm2col checks the defining adjoint identity
// <Im2col(x), y> = <x, Col2im(y)> on random operands — the property that
// makes Col2im the correct backward of the lowering.
func TestCol2imIsAdjointOfIm2col(t *testing.T) {
	const batch = 2
	for _, s := range convCases {
		r := rng.New(42)
		oHW := s.OutH() * s.OutW()
		x := tensor.NewMatrix(batch, s.InDim())
		x.Randomize(r, -1, 1)
		y := tensor.NewMatrix(batch*oHW, s.ColK())
		y.Randomize(r, -1, 1)

		cols := tensor.NewMatrix(batch*oHW, s.ColK())
		Im2col(nil, Naive, s, batch, x, cols)
		back := tensor.NewMatrix(batch, s.InDim())
		Col2im(nil, Naive, s, batch, y, back)

		lhs, rhs := 0.0, 0.0
		for i := range cols.Data {
			lhs += cols.Data[i] * y.Data[i]
		}
		for i := range x.Data {
			rhs += x.Data[i] * back.Data[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Errorf("shape %+v: <Im2col(x),y>=%g but <x,Col2im(y)>=%g", s, lhs, rhs)
		}
	}
}

// TestMaxPoolMatchesNaive checks pooled maxima and argmax routing against
// direct window scans, then checks the backward scatter.
func TestMaxPoolMatchesNaive(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	shapes := []PoolShape{
		{C: 1, H: 8, W: 8, Size: 2, Stride: 2},
		{C: 3, H: 12, W: 8, Size: 2, Stride: 2},
		{C: 2, H: 9, W: 9, Size: 3, Stride: 3},
		{C: 2, H: 7, W: 7, Size: 3, Stride: 2}, // overlapping windows
	}
	const batch = 3
	for _, s := range shapes {
		r := rng.New(7)
		x := tensor.NewMatrix(batch, s.InDim())
		x.Randomize(r, -1, 1)
		dy := tensor.NewMatrix(batch, s.OutDim())
		dy.Randomize(r, -1, 1)

		for _, lvl := range Levels {
			y := tensor.NewMatrix(batch, s.OutDim())
			arg := tensor.NewMatrix(batch, s.OutDim())
			MaxPool(pool, lvl, s, batch, x, y, arg)
			dx := tensor.NewMatrix(batch, s.InDim())
			MaxPoolBackward(pool, lvl, s, batch, dy, arg, dx)

			wantDX := tensor.NewMatrix(batch, s.InDim())
			oh, ow := s.OutH(), s.OutW()
			for img := 0; img < batch; img++ {
				xr := x.RowView(img)
				o := 0
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						for c := 0; c < s.C; c++ {
							bi := (oy*s.Stride*s.W + ox*s.Stride) * s.C
							best, bestIdx := xr[bi+c], bi+c
							for ky := 0; ky < s.Size; ky++ {
								for kx := 0; kx < s.Size; kx++ {
									idx := ((oy*s.Stride+ky)*s.W + ox*s.Stride + kx) * s.C
									if v := xr[idx+c]; v > best {
										best, bestIdx = v, idx+c
									}
								}
							}
							if got := y.RowView(img)[o]; got != best {
								t.Fatalf("shape %+v level %v img %d out %d: max %g, want %g", s, lvl, img, o, got, best)
							}
							if got := int(arg.RowView(img)[o]); got != bestIdx {
								t.Fatalf("shape %+v level %v img %d out %d: argmax %d, want %d", s, lvl, img, o, got, bestIdx)
							}
							wantDX.RowView(img)[bestIdx] += dy.RowView(img)[o]
							o++
						}
					}
				}
			}
			if d := maxAbsDiff(dx.Data, wantDX.Data); d > 0 {
				t.Errorf("shape %+v level %v: pool backward deviates by %g", s, lvl, d)
			}
		}
	}
}

// TestConvKernelsDeterministicAcrossWorkers checks that every conv kernel
// is bit-identical for worker counts 1, 2, 3 and 7 at the parallel levels —
// the property the data-parallel image split and the filter-block bias
// reduction are designed around.
func TestConvKernelsDeterministicAcrossWorkers(t *testing.T) {
	s := ConvShape{C: 3, H: 11, W: 9, F: 7, KH: 3, KW: 3, Stride: 1, Pad: 1}
	ps := PoolShape{C: 7, H: 11, W: 9, Size: 2, Stride: 2}
	// Pool geometry must tile: 11 does not divide by 2, so trim via valid
	// extents (10 and 8).
	ps.H, ps.W = 10, 8
	const batch = 5
	r := rng.New(99)
	x := tensor.NewMatrix(batch, s.InDim())
	x.Randomize(r, -1, 1)
	px := tensor.NewMatrix(batch, ps.InDim())
	px.Randomize(r, -1, 1)
	pdy := tensor.NewMatrix(batch, ps.OutDim())
	pdy.Randomize(r, -1, 1)
	oHW := s.OutH() * s.OutW()
	dy := tensor.NewMatrix(batch*oHW, s.F)
	dy.Randomize(r, -1, 1)
	dcols := tensor.NewMatrix(batch*oHW, s.ColK())
	dcols.Randomize(r, -1, 1)

	type snapshot struct {
		cols, dx, y, arg, pdx, db []float64
	}
	run := func(workers int, lvl Level) snapshot {
		pool := parallel.NewPool(workers)
		defer pool.Close()
		cols := tensor.NewMatrix(batch*oHW, s.ColK())
		Im2col(pool, lvl, s, batch, x, cols)
		dx := tensor.NewMatrix(batch, s.InDim())
		Col2im(pool, lvl, s, batch, dcols, dx)
		y := tensor.NewMatrix(batch, ps.OutDim())
		arg := tensor.NewMatrix(batch, ps.OutDim())
		MaxPool(pool, lvl, ps, batch, px, y, arg)
		pdx := tensor.NewMatrix(batch, ps.InDim())
		MaxPoolBackward(pool, lvl, ps, batch, pdy, arg, pdx)
		db := tensor.NewMatrix(1, s.F)
		ConvBiasGrad(pool, lvl, dy, db)
		return snapshot{cols.Data, dx.Data, y.Data, arg.Data, pdx.Data, db.Data}
	}

	for _, lvl := range []Level{Parallel, ParallelBlocked} {
		ref := run(1, lvl)
		for _, workers := range []int{2, 3, 7} {
			got := run(workers, lvl)
			check := func(name string, a, b []float64) {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("level %v workers %d: %s[%d] = %g, want %g (not bit-deterministic)", lvl, workers, name, i, b[i], a[i])
					}
				}
			}
			check("cols", ref.cols, got.cols)
			check("dx", ref.dx, got.dx)
			check("pool.y", ref.y, got.y)
			check("pool.arg", ref.arg, got.arg)
			check("pool.dx", ref.pdx, got.pdx)
			check("biasgrad", ref.db, got.db)
		}
	}
}

// TestConvKernels32MatchF64 checks the float32 forward gather and pool
// against the float64 kernels on rounded inputs: the gather is a copy and
// rounding is monotone, so both must agree exactly.
func TestConvKernels32MatchF64(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	s := ConvShape{C: 2, H: 10, W: 8, F: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	ps := PoolShape{C: 5, H: 10, W: 8, Size: 2, Stride: 2}
	const batch = 4
	r := rng.New(1234)
	x := tensor.NewMatrix(batch, s.InDim())
	x.Randomize(r, -1, 1)
	px := tensor.NewMatrix(batch, ps.InDim())
	px.Randomize(r, -1, 1)
	x32 := x.To32()
	px32 := px.To32()

	oHW := s.OutH() * s.OutW()
	for _, lvl := range Levels {
		cols := tensor.NewMatrix(batch*oHW, s.ColK())
		Im2col(pool, lvl, s, batch, x, cols)
		cols32 := tensor.NewMatrix32(batch*oHW, s.ColK())
		Im2col32(pool, lvl, s, batch, x32, cols32)
		for i := range cols32.Data {
			if cols32.Data[i] != float32(cols.Data[i]) {
				t.Fatalf("level %v: im2col32[%d] = %g, want %g", lvl, i, cols32.Data[i], float32(cols.Data[i]))
			}
		}

		y := tensor.NewMatrix(batch, ps.OutDim())
		arg := tensor.NewMatrix(batch, ps.OutDim())
		MaxPool(pool, lvl, ps, batch, px, y, arg)
		y32 := tensor.NewMatrix32(batch, ps.OutDim())
		MaxPool32(pool, lvl, ps, batch, px32, y32)
		for i := range y32.Data {
			if y32.Data[i] != float32(y.Data[i]) {
				t.Fatalf("level %v: maxpool32[%d] = %g, want %g", lvl, i, y32.Data[i], float32(y.Data[i]))
			}
		}
	}
}

// TestConvShapeValidate exercises the geometry validators.
func TestConvShapeValidate(t *testing.T) {
	good := ConvShape{C: 1, H: 8, W: 8, F: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	bad := []ConvShape{
		{C: 0, H: 8, W: 8, F: 2, KH: 3, KW: 3, Stride: 1},
		{C: 1, H: 8, W: 8, F: 2, KH: 0, KW: 3, Stride: 1},
		{C: 1, H: 8, W: 8, F: 2, KH: 3, KW: 3, Stride: 0},
		{C: 1, H: 2, W: 8, F: 2, KH: 6, KW: 3, Stride: 1, Pad: 1},
		{C: 1, H: 8, W: 8, F: 2, KH: 3, KW: 3, Stride: 1, Pad: 3},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad conv shape %d (%+v) accepted", i, s)
		}
	}
	if err := (PoolShape{C: 1, H: 8, W: 8, Size: 2, Stride: 2}).Validate(); err != nil {
		t.Fatalf("valid pool shape rejected: %v", err)
	}
	badPool := []PoolShape{
		{C: 1, H: 9, W: 8, Size: 2, Stride: 2}, // does not tile
		{C: 1, H: 8, W: 8, Size: 0, Stride: 2},
		{C: 0, H: 8, W: 8, Size: 2, Stride: 2},
	}
	for i, s := range badPool {
		if err := s.Validate(); err == nil {
			t.Errorf("bad pool shape %d (%+v) accepted", i, s)
		}
	}
}
