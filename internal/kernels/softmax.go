package kernels

import (
	"fmt"
	"math"

	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// SoftmaxRows computes a numerically stable row-wise softmax:
// dst[i,j] = exp(src[i,j] − max_i) / Σ_j exp(src[i,j] − max_i). dst and src
// may be the same matrix. Used by the supervised fine-tuning head.
func SoftmaxRows(pool *parallel.Pool, lvl Level, dst, src *tensor.Matrix) {
	checkSameShape("SoftmaxRows", dst, src)
	forRows(pool, lvl, src.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d := src.RowView(i), dst.RowView(i)
			maxV := math.Inf(-1)
			for _, v := range s {
				if v > maxV {
					maxV = v
				}
			}
			sum := 0.0
			for j, v := range s {
				e := math.Exp(v - maxV)
				d[j] = e
				sum += e
			}
			inv := 1 / sum
			for j := range d {
				d[j] *= inv
			}
		}
	})
}

// CrossEntropyOneHot returns −Σ_ij y[i,j]·log(p[i,j]) for one-hot targets y
// and predicted probabilities p, with probabilities clamped away from zero.
func CrossEntropyOneHot(pool *parallel.Pool, lvl Level, p, y *tensor.Matrix) float64 {
	checkSameShape("CrossEntropyOneHot", p, y)
	const eps = 1e-12
	body := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			pr, yr := p.RowView(i), y.RowView(i)
			for j, yv := range yr {
				if yv != 0 {
					s -= yv * math.Log(math.Max(pr[j], eps))
				}
			}
		}
		return s
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		return pool.ReduceSum(p.Rows, body)
	}
	return body(0, p.Rows)
}

// CountArgmaxMatches returns the number of rows whose argmax in p equals
// the argmax in y (classification accuracy numerator for one-hot targets).
// Ties resolve to the lowest index in both operands.
func CountArgmaxMatches(pool *parallel.Pool, lvl Level, p, y *tensor.Matrix) int {
	checkSameShape("CountArgmaxMatches", p, y)
	argmax := func(row []float64) int {
		best, bestV := 0, math.Inf(-1)
		for j, v := range row {
			if v > bestV {
				best, bestV = j, v
			}
		}
		return best
	}
	body := func(lo, hi int) float64 {
		n := 0
		for i := lo; i < hi; i++ {
			if argmax(p.RowView(i)) == argmax(y.RowView(i)) {
				n++
			}
		}
		return float64(n)
	}
	var total float64
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		total = pool.ReduceSum(p.Rows, body)
	} else {
		total = body(0, p.Rows)
	}
	return int(total)
}

// OneHot fills dst (n×classes) with one-hot rows for the given labels.
func OneHot(labels []int, dst *tensor.Matrix) {
	if len(labels) != dst.Rows {
		panic(fmt.Sprintf("kernels: OneHot with %d labels into %d rows", len(labels), dst.Rows))
	}
	dst.Zero()
	for i, l := range labels {
		if l < 0 || l >= dst.Cols {
			panic(fmt.Sprintf("kernels: OneHot label %d outside %d classes", l, dst.Cols))
		}
		dst.Set(i, l, 1)
	}
}
