// Package kernels implements phideep's numerical compute kernels at the four
// optimization levels of the paper's Table I ladder:
//
//   - Naive: scalar triple loops, single threaded — the "Baseline" row.
//   - Blocked: cache-tiled loops, single threaded.
//   - Parallel: row-parallel scalar loops over a worker pool — the
//     "OpenMP" row.
//   - ParallelBlocked: cache-tiled loops parallelized over row blocks — the
//     "OpenMP + MKL" rows (our pure-Go stand-in for MKL GEMM).
//
// Every kernel at every level computes exactly the same result (up to
// floating-point association order); the equivalence is enforced by
// property tests. Simulated timing differences between the levels are
// charged by internal/device from the cost model in internal/sim — the
// kernels themselves are timing-free.
package kernels

import "fmt"

// Level selects the kernel implementation, mirroring the optimization steps
// of Table I.
type Level int

const (
	// Naive is the un-optimized sequential implementation.
	Naive Level = iota
	// Blocked adds cache tiling but stays single threaded.
	Blocked
	// Parallel distributes scalar loops across the worker pool (OpenMP).
	Parallel
	// ParallelBlocked combines tiling and the worker pool (OpenMP + MKL).
	ParallelBlocked
)

// Levels lists all kernel levels in ladder order, for tests and sweeps.
var Levels = []Level{Naive, Blocked, Parallel, ParallelBlocked}

func (l Level) String() string {
	switch l {
	case Naive:
		return "naive"
	case Blocked:
		return "blocked"
	case Parallel:
		return "parallel"
	case ParallelBlocked:
		return "parallel+blocked"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// IsParallel reports whether the level uses the worker pool.
func (l Level) IsParallel() bool { return l == Parallel || l == ParallelBlocked }

// IsBlocked reports whether the level uses cache tiling.
func (l Level) IsBlocked() bool { return l == Blocked || l == ParallelBlocked }
