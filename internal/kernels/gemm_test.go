package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// refGemm is an independent, index-by-index oracle for
// C = alpha·op(A)·op(B) + beta·C.
func refGemm(transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	opAt := func(m *tensor.Matrix, trans bool, i, j int) float64 {
		if trans {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	mr, k := a.Rows, a.Cols
	if transA {
		mr, k = a.Cols, a.Rows
	}
	n := b.Cols
	if transB {
		n = b.Rows
	}
	for i := 0; i < mr; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += opAt(a, transA, i, l) * opAt(b, transB, l, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func randMatrix(r *rng.RNG, rows, cols int) *tensor.Matrix {
	return tensor.NewMatrix(rows, cols).Randomize(r, -1, 1)
}

func TestGemmAllLevelsMatchReference(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	r := rng.New(1)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 65, 17}, {70, 129, 257}, {64, 256, 64},
	}
	for _, sh := range shapes {
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				ar, ac := sh.m, sh.k
				if transA {
					ar, ac = sh.k, sh.m
				}
				br, bc := sh.k, sh.n
				if transB {
					br, bc = sh.n, sh.k
				}
				a := randMatrix(r, ar, ac)
				b := randMatrix(r, br, bc)
				c0 := randMatrix(r, sh.m, sh.n)
				want := c0.Clone()
				refGemm(transA, transB, 1.5, a, b, 0.5, want)
				for _, lvl := range Levels {
					got := c0.Clone()
					Gemm(pool, lvl, transA, transB, 1.5, a, b, 0.5, got)
					if d := tensor.MaxAbsDiff(want, got); d > 1e-10*float64(sh.k) {
						t.Errorf("Gemm %v transA=%v transB=%v shape %dx%dx%d: max diff %g", lvl, transA, transB, sh.m, sh.k, sh.n, d)
					}
				}
			}
		}
	}
}

func TestGemmAlphaBetaSpecialCases(t *testing.T) {
	pool := parallel.NewPool(2)
	defer pool.Close()
	r := rng.New(2)
	a := randMatrix(r, 6, 5)
	b := randMatrix(r, 5, 7)
	c0 := randMatrix(r, 6, 7)
	cases := []struct{ alpha, beta float64 }{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {-2, 3}, {0.25, -0.5},
	}
	for _, cse := range cases {
		want := c0.Clone()
		refGemm(false, false, cse.alpha, a, b, cse.beta, want)
		for _, lvl := range Levels {
			got := c0.Clone()
			Gemm(pool, lvl, false, false, cse.alpha, a, b, cse.beta, got)
			if d := tensor.MaxAbsDiff(want, got); d > 1e-12 {
				t.Errorf("alpha=%g beta=%g level %v: max diff %g", cse.alpha, cse.beta, lvl, d)
			}
		}
	}
}

func TestGemmZeroDimensions(t *testing.T) {
	pool := parallel.NewPool(2)
	defer pool.Close()
	// m=0 and n=0: nothing to do, must not panic.
	a := tensor.NewMatrix(0, 3)
	b := tensor.NewMatrix(3, 4)
	c := tensor.NewMatrix(0, 4)
	Gemm(pool, ParallelBlocked, false, false, 1, a, b, 0, c)
	// k=0: C scaled by beta only.
	a = tensor.NewMatrix(2, 0)
	b = tensor.NewMatrix(0, 4)
	c = tensor.NewMatrix(2, 4)
	c.Fill(3)
	Gemm(pool, Naive, false, false, 1, a, b, 0.5, c)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			if c.At(i, j) != 1.5 {
				t.Fatalf("k=0 case: got %g want 1.5", c.At(i, j))
			}
		}
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	a := tensor.NewMatrix(2, 3)
	b := tensor.NewMatrix(4, 5)
	c := tensor.NewMatrix(2, 5)
	Gemm(nil, Naive, false, false, 1, a, b, 0, c)
}

// TestGemmQuickEquivalence property-tests ParallelBlocked against Naive on
// random shapes and contents.
func TestGemmQuickEquivalence(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	f := func(seed uint64, mRaw, kRaw, nRaw uint8, transA, transB bool) bool {
		m := int(mRaw)%24 + 1
		k := int(kRaw)%24 + 1
		n := int(nRaw)%24 + 1
		r := rng.New(seed)
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		a := randMatrix(r, ar, ac)
		b := randMatrix(r, br, bc)
		want := tensor.NewMatrix(m, n)
		got := tensor.NewMatrix(m, n)
		Gemm(nil, Naive, transA, transB, 1, a, b, 0, want)
		Gemm(pool, ParallelBlocked, transA, transB, 1, a, b, 0, got)
		return tensor.MaxAbsDiff(want, got) <= 1e-11*float64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGemvMatchesGemm(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	r := rng.New(3)
	for _, trans := range []bool{false, true} {
		a := randMatrix(r, 9, 6)
		rows, cols := 9, 6
		if trans {
			rows, cols = 6, 9
		}
		x := tensor.NewVector(cols).Randomize(r, -1, 1)
		y := tensor.NewVector(rows).Randomize(r, -1, 1)
		want := y.Clone()
		// Oracle through Gemm with x as a column.
		xm := x.AsCol()
		wm := tensor.NewMatrix(rows, 1)
		refGemm(trans, false, 2, a, xm, 0, wm)
		for i := range want {
			want[i] = 2*0 + 0.5*want[i] + wm.At(i, 0)
		}
		for _, lvl := range Levels {
			got := y.Clone()
			Gemv(pool, lvl, trans, 2, a, x, 0.5, got)
			// want currently holds 0.5*y + 2*op(A)x computed above.
			if !tensor.EqualVec(want, got, 1e-11) {
				t.Errorf("Gemv trans=%v level %v mismatch", trans, lvl)
			}
		}
	}
}

func TestGemvShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Gemv shape mismatch")
		}
	}()
	a := tensor.NewMatrix(3, 4)
	Gemv(nil, Naive, false, 1, a, tensor.NewVector(5), 0, tensor.NewVector(3))
}

func TestGemmTransposeConsistency(t *testing.T) {
	// (AᵀBᵀ) must equal (BA)ᵀ.
	pool := parallel.NewPool(2)
	defer pool.Close()
	r := rng.New(4)
	a := randMatrix(r, 5, 8) // op(A)=Aᵀ: 8x5
	b := randMatrix(r, 9, 5) // op(B)=Bᵀ: 5x9
	c := tensor.NewMatrix(8, 9)
	Gemm(pool, ParallelBlocked, true, true, 1, a, b, 0, c)
	ba := tensor.NewMatrix(9, 8)
	Gemm(pool, Naive, false, false, 1, b, a, 0, ba)
	if d := tensor.MaxAbsDiff(c, ba.T()); d > 1e-11 {
		t.Fatalf("TT inconsistency: %g", d)
	}
}

func TestGemmNumericalStabilityLargeK(t *testing.T) {
	// Accumulation over a long k must stay within a sane error bound for
	// all levels (they associate differently).
	pool := parallel.NewPool(4)
	defer pool.Close()
	r := rng.New(5)
	a := randMatrix(r, 2, 4096)
	b := randMatrix(r, 4096, 2)
	want := tensor.NewMatrix(2, 2)
	refGemm(false, false, 1, a, b, 0, want)
	for _, lvl := range Levels {
		got := tensor.NewMatrix(2, 2)
		Gemm(pool, lvl, false, false, 1, a, b, 0, got)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-9 {
			t.Errorf("level %v large-k diff %g", lvl, d)
		}
		if math.IsNaN(got.At(0, 0)) {
			t.Errorf("level %v produced NaN", lvl)
		}
	}
}
