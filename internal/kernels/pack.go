package kernels

import (
	"sync"

	"phideep/internal/metrics"
	"phideep/internal/tensor"
)

// Cache-blocking parameters of the packed GEMM path. op(B) panels of
// kcBlock×ncBlock are packed once per GEMM and shared read-only by all
// workers; each worker packs mr-row slivers of op(A) into an L1-resident
// scratch it reuses across the whole n-extent of the panel. mr and nr are
// the register-tile extents of the micro-kernel; changing any of these
// constants affects speed only, never results.
const (
	mr      = 4   // micro-kernel rows of C held in accumulators
	nr      = 8   // micro-kernel cols of C held in accumulators
	kcBlock = 256 // k-extent of a packed panel (A sliver: mr×kc = 8 KiB)
	ncBlock = 512 // n-extent of a packed B panel (kc×nc = 1 MiB ceiling)
)

// arena is a reusable float64 scratch buffer. Arenas are pooled so packing
// allocates nothing in steady state; the pooled object is a pointer, so
// Get/Put do not allocate either.
type arena struct {
	buf []float64
}

// ensure returns a slice of exactly n elements backed by the arena,
// growing the backing store if needed. Contents are unspecified. When
// metrics are enabled each call is classified as a pool reuse (capacity
// sufficed) or a grow (reallocation) — the observable form of the
// steady-state zero-alloc claim.
func (ar *arena) ensure(n int) []float64 {
	if cap(ar.buf) < n {
		if metrics.Enabled() {
			mArenaGrow.Inc()
		}
		ar.buf = make([]float64, n)
	} else if metrics.Enabled() {
		mArenaReuse.Inc()
	}
	return ar.buf[:n]
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// packB packs op(B)[pc:pc+kc, jc:jc+nc] into bp as a sequence of nr-wide
// micro-panels, each laid out k-major: element (l, jj) of micro-panel jp
// lands at bp[jp*kc*nr + l*nr + jj]. Ragged right edges are zero-padded to
// nr so the micro-kernel always reads full lanes. b may be strided; the
// packed panel is always unit-stride.
func packB(bp []float64, b *tensor.Matrix, transB bool, pc, kc, jc, nc int) {
	for jp := 0; jp*nr < nc; jp++ {
		j0 := jc + jp*nr
		w := nr
		if rem := jc + nc - j0; rem < w {
			w = rem
		}
		panel := bp[jp*kc*nr : (jp+1)*kc*nr]
		if transB {
			// op(B)[l][j] = B[j][l]: read row j of B along l (unit
			// stride), scatter into the nr-strided lane jj.
			for jj := 0; jj < w; jj++ {
				brow := b.RowView(j0 + jj)[pc : pc+kc]
				for l, v := range brow {
					panel[l*nr+jj] = v
				}
			}
		} else {
			for l := 0; l < kc; l++ {
				brow := b.RowView(pc + l)[j0 : j0+w]
				dst := panel[l*nr : l*nr+w]
				copy(dst, brow)
			}
		}
		if w < nr {
			for l := 0; l < kc; l++ {
				lane := panel[l*nr : (l+1)*nr]
				for jj := w; jj < nr; jj++ {
					lane[jj] = 0
				}
			}
		}
	}
}

// packA packs the mr-row sliver op(A)[i0:i0+h, pc:pc+kc] into ap, k-major:
// element (ii, l) lands at ap[l*mr+ii]. Rows past h are zero-padded so edge
// tiles run the same full micro-kernel.
func packA(ap []float64, a *tensor.Matrix, transA bool, i0, h, pc, kc int) {
	if transA {
		// op(A)[i][l] = A[l][i]: row pc+l of A holds lane l for all ii.
		for l := 0; l < kc; l++ {
			arow := a.RowView(pc + l)[i0 : i0+h]
			lane := ap[l*mr : l*mr+mr]
			for ii, v := range arow {
				lane[ii] = v
			}
			for ii := h; ii < mr; ii++ {
				lane[ii] = 0
			}
		}
		return
	}
	for ii := 0; ii < h; ii++ {
		arow := a.RowView(i0 + ii)[pc : pc+kc]
		for l, v := range arow {
			ap[l*mr+ii] = v
		}
	}
	for ii := h; ii < mr; ii++ {
		for l := 0; l < kc; l++ {
			ap[l*mr+ii] = 0
		}
	}
}

// kernelTile computes the full mr×nr register tile
//
//	out[ii*nr+jj] = Σ_l ap[l*mr+ii] · bp[l*nr+jj]
//
// over one packed A sliver and one packed B micro-panel (both zero-padded
// to full lanes). On amd64 with AVX2+FMA the tile runs in the assembly
// micro-kernel: the 32 accumulators live in eight YMM registers with
// independent dependency chains, each k step issues two packed loads of B,
// four broadcasts of A and eight fused multiply-adds, and both operands
// stream unit-stride from the packed buffers. Everywhere else a pure-Go
// kernel computes the same tile as four 4×2 register sub-tiles (eight
// scalar accumulators + six operand temporaries fit amd64's sixteen FP
// registers, so the fallback loop also runs spill-free).
func kernelTile(kc int, ap, bp []float64, out *[mr * nr]float64) {
	if useAsmKernel {
		dgemmKernel4x8(kc, &ap[0], &bp[0], &out[0])
		return
	}
	kernelTileGo(kc, ap, bp, out)
}

func kernelTileGo(kc int, ap, bp []float64, out *[mr * nr]float64) {
	_ = ap[:kc*mr]
	_ = bp[:kc*nr]
	for half := 0; half < nr/2; half++ {
		var s00, s01 float64
		var s10, s11 float64
		var s20, s21 float64
		var s30, s31 float64
		aoff, boff := 0, half*2
		for l := 0; l < kc; l++ {
			a0, a1, a2, a3 := ap[aoff], ap[aoff+1], ap[aoff+2], ap[aoff+3]
			b0, b1 := bp[boff], bp[boff+1]
			s00 += a0 * b0
			s01 += a0 * b1
			s10 += a1 * b0
			s11 += a1 * b1
			s20 += a2 * b0
			s21 += a2 * b1
			s30 += a3 * b0
			s31 += a3 * b1
			aoff += mr
			boff += nr
		}
		j := half * 2
		out[0*nr+j], out[0*nr+j+1] = s00, s01
		out[1*nr+j], out[1*nr+j+1] = s10, s11
		out[2*nr+j], out[2*nr+j+1] = s20, s21
		out[3*nr+j], out[3*nr+j+1] = s30, s31
	}
}

// foldTile folds the computed register tile into C:
//
//	C = beta·C + alpha·acc    (beta == 1 for every k-panel after the first)
//
// h×w (≤ mr×nr) is the valid extent of the tile in C; the zero-padded
// lanes outside it are discarded.
func foldTile(out *[mr * nr]float64, alpha, beta float64, c *tensor.Matrix, i0, j0, h, w int) {
	for ii := 0; ii < h; ii++ {
		crow := c.Data[(i0+ii)*c.Stride+j0:][:w]
		acc := out[ii*nr : ii*nr+w]
		switch beta {
		case 1:
			for jj, v := range acc {
				crow[jj] += alpha * v
			}
		case 0:
			// Assign rather than blend so stale C contents (even NaN)
			// are discarded, matching BLAS beta==0 semantics.
			for jj, v := range acc {
				crow[jj] = alpha * v
			}
		default:
			for jj, v := range acc {
				crow[jj] = beta*crow[jj] + alpha*v
			}
		}
	}
}
