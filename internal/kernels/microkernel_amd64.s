//go:build amd64 && !noasm

#include "textflag.h"

// func cpuSupportsAVX2FMA() bool
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	// CPUID leaf 0: highest supported leaf must reach 7.
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT none

	// Leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<12 | 1<<27 | 1<<28), CX
	CMPL CX, $(1<<12 | 1<<27 | 1<<28)
	JNE  none

	// XCR0: the OS must preserve XMM (bit 1) and YMM (bit 2) state.
	MOVL   $0, CX
	XGETBV
	ANDL   $6, AX
	CMPL   AX, $6
	JNE    none

	// Leaf 7 subleaf 0 EBX: AVX2 (bit 5).
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   none

	MOVB $1, ret+0(FP)
	RET

none:
	MOVB $0, ret+0(FP)
	RET

// func dgemmKernel4x8(kc int, ap, bp, out *float64)
//
// 4×8 C tile in eight YMM accumulators: Y(2i) holds row i columns 0..3,
// Y(2i+1) row i columns 4..7. Each k step loads one 8-wide B lane (two
// packed loads), broadcasts the four A values and issues eight
// VFMADD231PD, all streaming unit-stride from the packed buffers. The
// k-loop is 2-way unrolled; an odd kc runs one scalar tail step.
TEXT ·dgemmKernel4x8(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ out+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	SUBQ $2, CX
	JLT  tail

loop:
	// k step 0
	VMOVUPD      (DI), Y8
	VMOVUPD      32(DI), Y9
	VBROADCASTSD (SI), Y10
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 16(SI), Y12
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 24(SI), Y13
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

	// k step 1
	VMOVUPD      64(DI), Y8
	VMOVUPD      96(DI), Y9
	VBROADCASTSD 32(SI), Y10
	VBROADCASTSD 40(SI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 48(SI), Y12
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 56(SI), Y13
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

	ADDQ $64, SI
	ADDQ $128, DI
	SUBQ $2, CX
	JGE  loop

tail:
	ADDQ $2, CX
	JZ   store

	VMOVUPD      (DI), Y8
	VMOVUPD      32(DI), Y9
	VBROADCASTSD (SI), Y10
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 16(SI), Y12
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 24(SI), Y13
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

store:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET
