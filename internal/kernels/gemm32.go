package kernels

import (
	"fmt"
	"time"

	"phideep/internal/metrics"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Gemm32 computes C = alpha*op(A)*op(B) + beta*C in float32 at the given
// optimization level — the reduced-precision twin of Gemm for the
// forward-only serving path. Halving the element width doubles the SIMD
// lanes per fused multiply-add and halves memory traffic, the vector-width
// lever the paper's Phi speedups rest on; training math stays float64.
//
// The Blocked and ParallelBlocked levels run the packed, register-blocked
// 8x16 micro-kernel (gemm32_packed.go); Naive and Parallel run scalar row
// loops. All levels compute the same result up to float32 rounding and
// association order, and each is bit-deterministic for a fixed worker
// count.
//
// When metrics collection is enabled every call records into the
// precision-labeled kernels.gemm32.* family (calls, flops, seconds and the
// asm/go/scalar path taken), keeping the f64 kernels.gemm.* series clean
// for A/B comparison.
func Gemm32(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float32, a, b *tensor.Matrix32, beta float32, c *tensor.Matrix32) {
	if !metrics.Enabled() {
		gemm32Dispatch(pool, lvl, transA, transB, alpha, a, b, beta, c)
		return
	}
	start := time.Now()
	gemm32Dispatch(pool, lvl, transA, transB, alpha, a, b, beta, c)
	mGemm32Seconds.Observe(time.Since(start).Seconds())
	mGemm32Calls.Inc()
	m, k := opShape32(a, transA)
	_, n := opShape32(b, transB)
	mGemm32Flops.Add(2 * float64(m) * float64(k) * float64(n))
	switch {
	case lvl.IsBlocked() && useAsmKernel:
		mGemm32PathAsm.Inc()
	case lvl.IsBlocked():
		mGemm32PathGo.Inc()
	default:
		mGemm32PathScalar.Inc()
	}
}

// gemm32Dispatch is the uninstrumented Gemm32 body: validate, then route to
// the packed micro-kernel or the scalar row loops.
func gemm32Dispatch(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float32, a, b *tensor.Matrix32, beta float32, c *tensor.Matrix32) {
	m, ka := opShape32(a, transA)
	kb, n := opShape32(b, transB)
	if ka != kb {
		panic(fmt.Sprintf("kernels: Gemm32 inner dimension mismatch: %d vs %d", ka, kb))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("kernels: Gemm32 output shape %dx%d, want %dx%d", c.Rows, c.Cols, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	if ka == 0 || alpha == 0 {
		scaleC32(pool, lvl, beta, c)
		return
	}
	if lvl.IsBlocked() {
		gemmPacked32(pool, lvl, transA, transB, alpha, a, b, beta, c, m, ka, n)
		return
	}
	scaleC32(pool, lvl, beta, c)

	// Both transposed: rewrite through a packed transpose of A so the
	// scalar kernels only handle three layouts, as in the f64 path.
	if transA && transB {
		gemm32Dispatch(pool, lvl, false, true, alpha, a.T(), b, 1, c)
		return
	}

	rowRange := func(lo, hi int) {
		switch {
		case !transA && !transB:
			gemmNN32(alpha, a, b, c, lo, hi)
		case !transA && transB:
			gemmNT32(alpha, a, b, c, lo, hi)
		default: // transA && !transB
			gemmTN32(alpha, a, b, c, lo, hi)
		}
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(m, parallel.Static, 0, rowRange)
	} else {
		rowRange(0, m)
	}
}

func opShape32(x *tensor.Matrix32, trans bool) (rows, cols int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

func scaleC32(pool *parallel.Pool, lvl Level, beta float32, c *tensor.Matrix32) {
	if beta == 1 {
		return
	}
	scale := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c.RowView(i)
			if beta == 0 {
				clear(row)
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(c.Rows, parallel.Static, 0, scale)
	} else {
		scale(0, c.Rows)
	}
}

// gemmNN32 accumulates C[lo:hi,:] += alpha * A[lo:hi,:] * B with the scalar
// "ikj" loop.
func gemmNN32(alpha float32, a, b, c *tensor.Matrix32, lo, hi int) {
	k, n := a.Cols, c.Cols
	for i := lo; i < hi; i++ {
		arow, crow := a.RowView(i), c.RowView(i)
		for l := 0; l < k; l++ {
			av := alpha * arow[l]
			if av == 0 {
				continue
			}
			brow := b.RowView(l)
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmNT32 accumulates C[lo:hi,:] += alpha * A[lo:hi,:] * Bᵀ with a dot-
// product inner kernel.
func gemmNT32(alpha float32, a, b, c *tensor.Matrix32, lo, hi int) {
	k, n := a.Cols, c.Cols
	for i := lo; i < hi; i++ {
		arow, crow := a.RowView(i), c.RowView(i)
		for j := 0; j < n; j++ {
			brow := b.RowView(j)
			var s float32
			for l := 0; l < k; l++ {
				s += arow[l] * brow[l]
			}
			crow[j] += alpha * s
		}
	}
}

// gemmTN32 accumulates C[lo:hi,:] += alpha * Aᵀ[lo:hi,:] * B.
func gemmTN32(alpha float32, a, b, c *tensor.Matrix32, lo, hi int) {
	k, n := a.Rows, c.Cols // op(A) is (a.Cols)×(a.Rows)
	for l := 0; l < k; l++ {
		arow, brow := a.RowView(l), b.RowView(l)
		for i := lo; i < hi; i++ {
			av := alpha * arow[i]
			if av == 0 {
				continue
			}
			crow := c.RowView(i)
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}
