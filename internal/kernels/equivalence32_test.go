package kernels

import (
	"fmt"
	"math"
	"testing"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Cross-precision equivalence suite: the float32 kernels must match the
// float64 Naive oracle within a tolerance that scales with the reduction
// length (each of the k accumulation steps can contribute half an ulp of
// float32), over odd shapes, strided views, all four trans combinations,
// alpha/beta cycling and every optimization level — and be bit-identical
// across repeated runs and worker counts at a fixed seed. This is the
// contract DESIGN.md §11 documents for the reduced-precision serving path.

const sentinel32 = float32(-12345.5)

// stridedRand32 builds a rows×cols float32 matrix with Stride = cols+pad
// whose padding lanes hold the sentinel, filled with uniforms in [-1, 1).
func stridedRand32(r *rng.RNG, rows, cols, pad int) *tensor.Matrix32 {
	m := &tensor.Matrix32{Rows: rows, Cols: cols, Stride: cols + pad, Data: make([]float32, rows*(cols+pad))}
	for i := range m.Data {
		m.Data[i] = sentinel32
	}
	for i := 0; i < rows; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = float32(r.Uniform(-1, 1))
		}
	}
	return m
}

func checkPadding32(t *testing.T, ctx string, m *tensor.Matrix32) {
	t.Helper()
	if m.Stride == m.Cols {
		return
	}
	for i := 0; i < m.Rows; i++ {
		lane := m.Data[i*m.Stride+m.Cols : (i+1)*m.Stride]
		for j, v := range lane {
			if v != sentinel32 {
				t.Fatalf("%s: padding lane (%d,+%d) overwritten: %v", ctx, i, j, v)
			}
		}
	}
}

// to64 widens a possibly-strided Matrix32 to a packed f64 matrix, reading
// only the valid lanes.
func to64(m *tensor.Matrix32) *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.RowView(i), out.RowView(i)
		for j, v := range src {
			dst[j] = float64(v)
		}
	}
	return out
}

// gemm32Tol bounds |f32 result − f64 oracle| for a length-k reduction of
// [-1,1) operands: k accumulation steps and the final store each round to
// float32 (ulp ≈ 1.19e-7 at 1.0, partial sums can reach k in magnitude),
// plus slack for the alpha/beta fold.
func gemm32Tol(k int) float64 {
	return 1.2e-7 * (4*float64(k) + 16)
}

func compareToOracle32(t *testing.T, ctx string, got *tensor.Matrix32, want *tensor.Matrix, tol float64) {
	t.Helper()
	for i := 0; i < want.Rows; i++ {
		gr, wr := got.RowView(i), want.RowView(i)
		for j := range wr {
			if d := math.Abs(float64(gr[j]) - wr[j]); d > tol {
				t.Fatalf("%s: C[%d,%d] = %v, f64 oracle %v (diff %g > tol %g)", ctx, i, j, gr[j], wr[j], d, tol)
			}
		}
	}
}

func runGemm32Case(t *testing.T, pool *parallel.Pool, r *rng.RNG, m, k, n int, transA, transB bool, alpha, beta float32, pad int) {
	t.Helper()
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	a := stridedRand32(r, ar, ac, pad)
	b := stridedRand32(r, br, bc, (pad+1)%4)
	c0 := stridedRand32(r, m, n, pad)

	// The oracle is the f64 Naive kernel on exactly-widened operands: the
	// difference to it is pure float32 rounding, which gemm32Tol bounds.
	want := to64(c0)
	Gemm(nil, Naive, transA, transB, float64(alpha), to64(a), to64(b), float64(beta), want)
	tol := gemm32Tol(k)

	for _, lvl := range Levels {
		c := &tensor.Matrix32{Rows: c0.Rows, Cols: c0.Cols, Stride: c0.Stride, Data: append([]float32(nil), c0.Data...)}
		Gemm32(pool, lvl, transA, transB, alpha, a, b, beta, c)
		tn := map[bool]string{false: "N", true: "T"}
		ctx := fmt.Sprintf("%s/%s%s/%dx%dx%d/alpha=%v,beta=%v", lvl, tn[transA], tn[transB], m, k, n, alpha, beta)
		compareToOracle32(t, ctx, c, want, tol)
		checkPadding32(t, ctx, c)
	}
	checkPadding32(t, "input A", a)
	checkPadding32(t, "input B", b)
}

// TestGemm32MatchesF64Oracle sweeps odd m,k,n triples (crossing the mr32=8
// and nr32=16 tile edges and the kcBlock32/ncBlock32 panel edges), cycling
// trans combos, alpha/beta and view padding per case.
func TestGemm32MatchesF64Oracle(t *testing.T) {
	dims := []int{1, 3, 17, 64, 65, 257}
	transCombos := [4][2]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	coeffs := []float32{0, 1, -0.5}
	pool := parallel.NewPool(4)
	defer pool.Close()
	r := rng.New(23)
	idx := 0
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				tc := transCombos[idx%4]
				alpha := coeffs[idx%3]
				beta := coeffs[(idx/3)%3]
				pad := idx % 4
				idx++
				runGemm32Case(t, pool, r, m, k, n, tc[0], tc[1], alpha, beta, pad)
			}
		}
	}
}

// TestGemm32TransAlphaBetaExhaustive crosses all trans combinations with
// every alpha/beta pair on one odd, strided shape.
func TestGemm32TransAlphaBetaExhaustive(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	r := rng.New(29)
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			for _, alpha := range []float32{0, 1, -0.5} {
				for _, beta := range []float32{0, 1, -0.5} {
					runGemm32Case(t, pool, r, 17, 65, 33, transA, transB, alpha, beta, 3)
				}
			}
		}
	}
}

// TestGemm32Deterministic pins the serving-path determinism claim: at a
// fixed seed the packed f32 GEMM produces bit-identical floats across
// repeated runs and across worker counts (every C tile is written by one
// worker, k-panels accumulate in a fixed order).
func TestGemm32Deterministic(t *testing.T) {
	r := rng.New(31)
	a := stridedRand32(r, 65, 257, 2)
	b := stridedRand32(r, 257, 33, 1)
	ref := tensor.NewMatrix32(65, 33)
	Gemm32(nil, Blocked, false, false, 1.25, a, b, 0.5, ref)
	for _, workers := range []int{1, 2, 3, 7} {
		pool := parallel.NewPool(workers)
		for rep := 0; rep < 2; rep++ {
			c := tensor.NewMatrix32(65, 33)
			Gemm32(pool, ParallelBlocked, false, false, 1.25, a, b, 0.5, c)
			for i := 0; i < c.Rows; i++ {
				for j := 0; j < c.Cols; j++ {
					if c.At(i, j) != ref.At(i, j) {
						t.Fatalf("workers=%d rep=%d: C[%d,%d] = %v, want bit-identical %v", workers, rep, i, j, c.At(i, j), ref.At(i, j))
					}
				}
			}
		}
		pool.Close()
	}
}

// TestSoftmax32MatchesF64 bounds the row-softmax against the f64 kernel:
// probabilities live in [0,1], so the bound is a few float32 ulps plus the
// exp evaluation error.
func TestSoftmax32MatchesF64(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	r := rng.New(37)
	for _, shape := range [][2]int{{1, 1}, {3, 10}, {17, 65}, {64, 7}} {
		rows, cols := shape[0], shape[1]
		src := stridedRand32(r, rows, cols, 2)
		want := tensor.NewMatrix(rows, cols)
		SoftmaxRows(nil, Naive, want, to64(src))
		for _, lvl := range Levels {
			dst := tensor.NewMatrix32(rows, cols)
			SoftmaxRows32(pool, lvl, dst, src)
			if d := tensor.MaxAbsDiff32(dst, want); d > 1e-6 {
				t.Fatalf("%s %dx%d: softmax diff %g", lvl, rows, cols, d)
			}
			// Rows must still sum to 1 within float32 rounding.
			for i := 0; i < rows; i++ {
				var sum float64
				for _, v := range dst.RowView(i) {
					sum += float64(v)
				}
				if math.Abs(sum-1) > 1e-5 {
					t.Fatalf("%s row %d sums to %v", lvl, i, sum)
				}
			}
		}
		checkPadding32(t, "softmax input", src)
	}
}

// TestSigmoid32AndBias32MatchF64 bounds the fused-forward building blocks
// (bias add then sigmoid, the y = σ(xW+b) epilogue) against their f64
// twins.
func TestSigmoid32AndBias32MatchF64(t *testing.T) {
	pool := parallel.NewPool(2)
	defer pool.Close()
	r := rng.New(41)
	rows, cols := 19, 33
	src := stridedRand32(r, rows, cols, 1)
	bias := make(tensor.Vector32, cols)
	for j := range bias {
		bias[j] = float32(r.Uniform(-1, 1))
	}

	want := to64(src)
	AddBiasRow(nil, Naive, want, bias.To64())
	Sigmoid(nil, Naive, want, want)

	for _, lvl := range Levels {
		got := src.Clone()
		AddBiasRow32(pool, lvl, got, bias)
		Sigmoid32(pool, lvl, got, got)
		if d := tensor.MaxAbsDiff32(got, want); d > 1e-6 {
			t.Fatalf("%s: bias+sigmoid diff %g", lvl, d)
		}
	}
}
