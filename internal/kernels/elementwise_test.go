package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// forAllLevels runs body once per level with a shared pool.
func forAllLevels(t *testing.T, body func(t *testing.T, pool *parallel.Pool, lvl Level)) {
	t.Helper()
	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, lvl := range Levels {
		t.Run(lvl.String(), func(t *testing.T) { body(t, pool, lvl) })
	}
}

func TestSigmoidValues(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		src := tensor.FromRows([][]float64{{0, 1, -1}, {30, -30, 0.5}})
		dst := tensor.NewMatrix(2, 3)
		Sigmoid(pool, lvl, dst, src)
		want := [][]float64{
			{0.5, 1 / (1 + math.Exp(-1)), 1 / (1 + math.Exp(1))},
			{1 / (1 + math.Exp(-30)), 1 / (1 + math.Exp(30)), 1 / (1 + math.Exp(-0.5))},
		}
		for i := range want {
			for j := range want[i] {
				if math.Abs(dst.At(i, j)-want[i][j]) > 1e-15 {
					t.Errorf("sigmoid(%g) = %g, want %g", src.At(i, j), dst.At(i, j), want[i][j])
				}
			}
		}
	})
}

func TestSigmoidInPlace(t *testing.T) {
	r := rng.New(7)
	m := tensor.NewMatrix(13, 9).Randomize(r, -4, 4)
	want := m.Clone().Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	Sigmoid(nil, Naive, m, m)
	if d := tensor.MaxAbsDiff(want, m); d > 0 {
		t.Fatalf("in-place sigmoid diff %g", d)
	}
}

func TestSigmoidPrimeFromY(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		r := rng.New(8)
		y := tensor.NewMatrix(5, 6).Randomize(r, 0, 1)
		d := tensor.NewMatrix(5, 6)
		SigmoidPrimeFromY(pool, lvl, d, y)
		for i := 0; i < 5; i++ {
			for j := 0; j < 6; j++ {
				want := y.At(i, j) * (1 - y.At(i, j))
				if math.Abs(d.At(i, j)-want) > 1e-15 {
					t.Fatalf("(%d,%d): got %g want %g", i, j, d.At(i, j), want)
				}
			}
		}
	})
}

func TestAddBiasRow(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		m := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
		AddBiasRow(pool, lvl, m, tensor.Vector{10, 20})
		want := tensor.FromRows([][]float64{{11, 22}, {13, 24}, {15, 26}})
		if !tensor.Equal(want, m, 0) {
			t.Fatalf("got %v", m)
		}
	})
}

func TestAxpyScaleSubMul(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		r := rng.New(uint64(9))
		x := tensor.NewMatrix(7, 11).Randomize(r, -1, 1)
		y := tensor.NewMatrix(7, 11).Randomize(r, -1, 1)
		yc := y.Clone()
		Axpy(pool, lvl, 2.5, x, y)
		for i := 0; i < 7; i++ {
			for j := 0; j < 11; j++ {
				want := yc.At(i, j) + 2.5*x.At(i, j)
				if math.Abs(y.At(i, j)-want) > 1e-15 {
					t.Fatalf("Axpy (%d,%d): got %g want %g", i, j, y.At(i, j), want)
				}
			}
		}
		Scale(pool, lvl, -0.5, y)
		diff := tensor.NewMatrix(7, 11)
		Sub(pool, lvl, diff, y, x)
		prod := tensor.NewMatrix(7, 11)
		MulElem(pool, lvl, prod, diff, x)
		for i := 0; i < 7; i++ {
			for j := 0; j < 11; j++ {
				yv := -0.5 * (yc.At(i, j) + 2.5*x.At(i, j))
				wantD := yv - x.At(i, j)
				if math.Abs(diff.At(i, j)-wantD) > 1e-14 {
					t.Fatalf("Sub (%d,%d)", i, j)
				}
				if math.Abs(prod.At(i, j)-wantD*x.At(i, j)) > 1e-14 {
					t.Fatalf("MulElem (%d,%d)", i, j)
				}
			}
		}
	})
}

func TestColSumsDeterministicAcrossLevels(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	r := rng.New(10)
	m := tensor.NewMatrix(101, 17).Randomize(r, -1, 1)
	want := tensor.NewVector(17)
	ColSums(nil, Naive, m, want)
	// Oracle.
	oracle := m.ColMeans()
	for j := range oracle {
		oracle[j] *= float64(m.Rows)
	}
	if !tensor.EqualVec(want, oracle, 1e-12) {
		t.Fatal("naive ColSums disagrees with ColMeans oracle")
	}
	for _, lvl := range Levels {
		got := tensor.NewVector(17)
		ColSums(pool, lvl, m, got)
		if !tensor.EqualVec(want, got, 1e-12) {
			t.Errorf("ColSums level %v disagrees", lvl)
		}
	}
}

func TestSumSquaredDiff(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		a := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
		b := tensor.FromRows([][]float64{{0, 2}, {5, 1}})
		got := SumSquaredDiff(pool, lvl, a, b)
		want := 1.0 + 0 + 4 + 9
		if math.Abs(got-want) > 1e-14 {
			t.Fatalf("got %g want %g", got, want)
		}
	})
}

func TestSampleBernoulliDeterministicAcrossSchedules(t *testing.T) {
	// Same RNG seed must give identical samples regardless of level and
	// worker count — the property making numeric results reproducible.
	p := tensor.NewMatrix(40, 10).Randomize(rng.New(11), 0, 1)
	want := tensor.NewMatrix(40, 10)
	SampleBernoulli(nil, Naive, want, p, rng.New(42))
	for _, workers := range []int{1, 2, 5} {
		pool := parallel.NewPool(workers)
		for _, lvl := range Levels {
			got := tensor.NewMatrix(40, 10)
			SampleBernoulli(pool, lvl, got, p, rng.New(42))
			if !tensor.Equal(want, got, 0) {
				t.Errorf("sampling not deterministic: level %v workers %d", lvl, workers)
			}
		}
		pool.Close()
	}
}

func TestSampleBernoulliStatistics(t *testing.T) {
	// Empirical frequency must approach p, and extremes must be exact.
	p := tensor.NewMatrix(2000, 3)
	for i := 0; i < p.Rows; i++ {
		p.Set(i, 0, 0)
		p.Set(i, 1, 0.3)
		p.Set(i, 2, 1)
	}
	s := tensor.NewMatrix(2000, 3)
	SampleBernoulli(nil, Naive, s, p, rng.New(13))
	sums := tensor.NewVector(3)
	ColSums(nil, Naive, s, sums)
	if sums[0] != 0 {
		t.Fatalf("p=0 produced %g ones", sums[0])
	}
	if sums[2] != 2000 {
		t.Fatalf("p=1 produced %g ones", sums[2])
	}
	if freq := sums[1] / 2000; math.Abs(freq-0.3) > 0.05 {
		t.Fatalf("p=0.3 empirical frequency %g", freq)
	}
	// Values are exactly 0 or 1.
	for i := 0; i < s.Rows; i++ {
		for _, v := range s.RowView(i) {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary sample %g", v)
			}
		}
	}
}

func TestSampleBernoulliAdvancesStream(t *testing.T) {
	// Two consecutive calls with the same generator must differ (the
	// generator advances once per launch).
	p := tensor.NewMatrix(30, 30)
	p.Fill(0.5)
	r := rng.New(77)
	a := tensor.NewMatrix(30, 30)
	b := tensor.NewMatrix(30, 30)
	SampleBernoulli(nil, Naive, a, p, r)
	SampleBernoulli(nil, Naive, b, p, r)
	if tensor.Equal(a, b, 0) {
		t.Fatal("consecutive sampling launches produced identical draws")
	}
}

func TestAddKLSparsityDelta(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		delta := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
		dY := tensor.FromRows([][]float64{{0.5, 0.25}, {1, 2}})
		coeff := tensor.Vector{10, 100}
		AddKLSparsityDelta(pool, lvl, delta, coeff, dY)
		want := tensor.FromRows([][]float64{{(1 + 10) * 0.5, (2 + 100) * 0.25}, {(3 + 10) * 1, (4 + 100) * 2}})
		if !tensor.Equal(want, delta, 1e-15) {
			t.Fatalf("got %v want %v", delta, want)
		}
	})
}

func TestAddKLSparsityDeltaNilDY(t *testing.T) {
	delta := tensor.FromRows([][]float64{{1, 2}})
	AddKLSparsityDelta(nil, Naive, delta, tensor.Vector{5, 6}, nil)
	want := tensor.FromRows([][]float64{{6, 8}})
	if !tensor.Equal(want, delta, 0) {
		t.Fatalf("got %v", delta)
	}
}

func TestElementwiseQuickParallelMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	f := func(seed uint64, rowsRaw, colsRaw uint8) bool {
		rows := int(rowsRaw)%40 + 1
		cols := int(colsRaw)%40 + 1
		r := rng.New(seed)
		src := tensor.NewMatrix(rows, cols).Randomize(r, -3, 3)
		a := tensor.NewMatrix(rows, cols)
		b := tensor.NewMatrix(rows, cols)
		Sigmoid(nil, Naive, a, src)
		Sigmoid(pool, ParallelBlocked, b, src)
		if tensor.MaxAbsDiff(a, b) != 0 {
			return false
		}
		sa := tensor.NewVector(cols)
		sb := tensor.NewVector(cols)
		ColSums(nil, Naive, src, sa)
		ColSums(pool, Parallel, src, sb)
		return tensor.EqualVec(sa, sb, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Sigmoid", func() { Sigmoid(nil, Naive, tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 3)) }},
		{"Axpy", func() { Axpy(nil, Naive, 1, tensor.NewMatrix(2, 2), tensor.NewMatrix(3, 2)) }},
		{"Sub", func() { Sub(nil, Naive, tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 3)) }},
		{"AddBiasRow", func() { AddBiasRow(nil, Naive, tensor.NewMatrix(2, 2), tensor.NewVector(3)) }},
		{"ColSums", func() { ColSums(nil, Naive, tensor.NewMatrix(2, 2), tensor.NewVector(3)) }},
		{"AxpyVec", func() { AxpyVec(1, tensor.NewVector(2), tensor.NewVector(3)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestAxpyVec(t *testing.T) {
	x := tensor.Vector{1, 2, 3}
	y := tensor.Vector{10, 20, 30}
	AxpyVec(2, x, y)
	if !tensor.EqualVec(y, tensor.Vector{12, 24, 36}, 0) {
		t.Fatalf("got %v", y)
	}
}

func TestLevelStringerAndPredicates(t *testing.T) {
	if Naive.IsParallel() || Blocked.IsParallel() || !Parallel.IsParallel() || !ParallelBlocked.IsParallel() {
		t.Fatal("IsParallel wrong")
	}
	if Naive.IsBlocked() || !Blocked.IsBlocked() || Parallel.IsBlocked() || !ParallelBlocked.IsBlocked() {
		t.Fatal("IsBlocked wrong")
	}
	for _, lvl := range Levels {
		if lvl.String() == "" {
			t.Fatal("empty level name")
		}
	}
	if Level(99).String() != "Level(99)" {
		t.Fatal("unknown level formatting")
	}
}
