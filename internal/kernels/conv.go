package kernels

import (
	"fmt"
	"time"

	"phideep/internal/metrics"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Convolution lowering à la CHAOS (Viebke et al., arXiv 1702.07908): conv
// layers are expressed as im2col gathers feeding the packed GEMM, so the
// one micro-kernel this repo already tunes carries the new workload family.
// Thread parallelization follows the same split as CHAOS: the gather and
// pooling kernels are data-parallel over the images of a batch (each worker
// owns a contiguous image range via a parallel.Ranger, writing disjoint
// output rows, so results are bit-identical for every worker count), while
// the filter dimension is walked model-parallel — by the GEMM's
// filter-column blocking inside each worker's row range, and explicitly by
// ConvBiasGrad's filter-block Ranger.

// ConvShape describes one convolution layer's geometry. Images are stored
// one per row in NHWC order: element (y, x, c) of an image lives at flat
// index (y·W + x)·C + c. Filters are stored as a ColK()×F matrix whose row
// (ky·KW + kx)·C + c holds the weights of input tap (ky, kx, c) — exactly
// the column order Im2col produces, so conv = cols · W.
type ConvShape struct {
	C, H, W int // input channels and spatial extent
	F       int // output filters (output channels)
	KH, KW  int // kernel extent
	Stride  int
	Pad     int // zero padding on every spatial edge
}

// Validate checks the geometry yields at least one output position.
func (s ConvShape) Validate() error {
	if s.C <= 0 || s.H <= 0 || s.W <= 0 || s.F <= 0 {
		return fmt.Errorf("kernels: conv shape %+v: non-positive extent", s)
	}
	if s.KH <= 0 || s.KW <= 0 || s.Stride <= 0 || s.Pad < 0 {
		return fmt.Errorf("kernels: conv shape %+v: bad kernel/stride/pad", s)
	}
	if s.KH > s.H+2*s.Pad || s.KW > s.W+2*s.Pad {
		return fmt.Errorf("kernels: conv shape %+v: kernel larger than padded input", s)
	}
	if s.Pad >= s.KH || s.Pad >= s.KW {
		return fmt.Errorf("kernels: conv shape %+v: padding swallows whole kernel rows", s)
	}
	return nil
}

// OutH returns the output height.
func (s ConvShape) OutH() int { return (s.H+2*s.Pad-s.KH)/s.Stride + 1 }

// OutW returns the output width.
func (s ConvShape) OutW() int { return (s.W+2*s.Pad-s.KW)/s.Stride + 1 }

// InDim returns the per-image input dimensionality H·W·C.
func (s ConvShape) InDim() int { return s.H * s.W * s.C }

// OutDim returns the per-image output dimensionality OutH·OutW·F.
func (s ConvShape) OutDim() int { return s.OutH() * s.OutW() * s.F }

// ColK returns the im2col row width KH·KW·C — the K dimension of the
// lowered GEMM.
func (s ConvShape) ColK() int { return s.KH * s.KW * s.C }

// PoolShape describes a max-pooling layer over NHWC images: a Size×Size
// window sliding by Stride, per channel.
type PoolShape struct {
	C, H, W int
	Size    int
	Stride  int
}

// Validate checks that windows tile the input exactly (no partial windows).
func (s PoolShape) Validate() error {
	if s.C <= 0 || s.H <= 0 || s.W <= 0 {
		return fmt.Errorf("kernels: pool shape %+v: non-positive extent", s)
	}
	if s.Size <= 0 || s.Stride <= 0 || s.Size > s.H || s.Size > s.W {
		return fmt.Errorf("kernels: pool shape %+v: bad window", s)
	}
	if (s.H-s.Size)%s.Stride != 0 || (s.W-s.Size)%s.Stride != 0 {
		return fmt.Errorf("kernels: pool shape %+v: window does not tile input", s)
	}
	return nil
}

// OutH returns the output height.
func (s PoolShape) OutH() int { return (s.H-s.Size)/s.Stride + 1 }

// OutW returns the output width.
func (s PoolShape) OutW() int { return (s.W-s.Size)/s.Stride + 1 }

// InDim returns the per-image input dimensionality H·W·C.
func (s PoolShape) InDim() int { return s.H * s.W * s.C }

// OutDim returns the per-image output dimensionality OutH·OutW·C.
func (s PoolShape) OutDim() int { return s.OutH() * s.OutW() * s.C }

// flat64 asserts m is densely packed and returns its storage as one flat
// slice of exactly want elements. Conv kernels address images through flat
// NHWC offsets, so a (batch·oHW)×F GEMM output doubles as a batch×(oHW·F)
// pooling input with no reshape or copy — the layout identity im2col
// lowering is built on.
func flat64(op string, m *tensor.Matrix, want int) []float64 {
	if m.Stride != m.Cols || len(m.Data) < m.Rows*m.Cols {
		panic(fmt.Sprintf("kernels: %s needs a contiguous matrix, got %dx%d stride %d", op, m.Rows, m.Cols, m.Stride))
	}
	if m.Rows*m.Cols != want {
		panic(fmt.Sprintf("kernels: %s size mismatch: %dx%d = %d elements, want %d", op, m.Rows, m.Cols, m.Rows*m.Cols, want))
	}
	return m.Data[:want]
}

func flat32(op string, m *tensor.Matrix32, want int) []float32 {
	if m.Stride != m.Cols || len(m.Data) < m.Rows*m.Cols {
		panic(fmt.Sprintf("kernels: %s needs a contiguous matrix, got %dx%d stride %d", op, m.Rows, m.Cols, m.Stride))
	}
	if m.Rows*m.Cols != want {
		panic(fmt.Sprintf("kernels: %s size mismatch: %dx%d = %d elements, want %d", op, m.Rows, m.Cols, m.Rows*m.Cols, want))
	}
	return m.Data[:want]
}

// forImages partitions batch images across the pool when the level allows,
// running body.Range over disjoint contiguous image ranges. The Ranger form
// keeps the hot path allocation-free (no per-call closure).
func forImages(pool *parallel.Pool, lvl Level, batch int, body parallel.Ranger) {
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.ForRanger(batch, parallel.Static, 0, body)
	} else {
		body.Range(0, batch)
	}
}

// Im2col lowers batch NHWC images (x, batch·InDim elements flat) into the
// patch matrix cols ((batch·OutH·OutW)×ColK): output row img·oHW + oy·oW + ox
// holds the receptive field of output position (oy, ox) of image img, taps
// ordered (ky, kx, c), out-of-bounds taps zero-filled. Images are
// data-parallel across workers; each image's rows are written by exactly
// one worker, so the result is bit-identical for every worker count.
func Im2col(pool *parallel.Pool, lvl Level, s ConvShape, batch int, x, cols *tensor.Matrix) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: Im2col non-positive batch %d", batch))
	}
	var start time.Time
	if metrics.Enabled() {
		start = time.Now()
	}
	r := im2colRanger{
		s: s, batch: batch,
		x:    flat64("Im2col", x, batch*s.InDim()),
		cols: cols,
	}
	if cols.Rows != batch*s.OutH()*s.OutW() || cols.Cols != s.ColK() {
		panic(fmt.Sprintf("kernels: Im2col cols %dx%d, want %dx%d", cols.Rows, cols.Cols, batch*s.OutH()*s.OutW(), s.ColK()))
	}
	forImages(pool, lvl, batch, &r)
	if metrics.Enabled() {
		mConvIm2colCalls.Inc()
		mConvIm2colElems.Add(float64(cols.Rows) * float64(cols.Cols))
		mConvIm2colSeconds.Observe(time.Since(start).Seconds())
	}
}

type im2colRanger struct {
	s     ConvShape
	batch int
	x     []float64
	cols  *tensor.Matrix
}

// Range implements parallel.Ranger over image indices [lo, hi).
func (r *im2colRanger) Range(lo, hi int) {
	s := r.s
	oh, ow := s.OutH(), s.OutW()
	rowC := s.KW * s.C
	for img := lo; img < hi; img++ {
		src := r.x[img*s.InDim() : (img+1)*s.InDim()]
		row := img * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*s.Stride - s.Pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*s.Stride - s.Pad
				dst := r.cols.RowView(row)
				row++
				di := 0
				for ky := 0; ky < s.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= s.H {
						clear(dst[di : di+rowC])
						di += rowC
						continue
					}
					base := iy * s.W * s.C
					// Contiguous fast path: the whole kernel row is in
					// bounds, one copy moves KW·C taps.
					if ix0 >= 0 && ix0+s.KW <= s.W {
						copy(dst[di:di+rowC], src[base+ix0*s.C:])
						di += rowC
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= s.W {
							clear(dst[di : di+s.C])
						} else {
							copy(dst[di:di+s.C], src[base+ix*s.C:base+(ix+1)*s.C])
						}
						di += s.C
					}
				}
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatters patch-matrix gradients
// dcols ((batch·OutH·OutW)×ColK) back into image gradients dx (batch·InDim
// flat), accumulating where receptive fields overlap. dx is zeroed first.
// Parallel over images with disjoint per-image outputs, so bit-determinism
// across worker counts holds here too.
func Col2im(pool *parallel.Pool, lvl Level, s ConvShape, batch int, dcols, dx *tensor.Matrix) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: Col2im non-positive batch %d", batch))
	}
	r := col2imRanger{
		s: s, batch: batch,
		dx:    flat64("Col2im", dx, batch*s.InDim()),
		dcols: dcols,
	}
	if dcols.Rows != batch*s.OutH()*s.OutW() || dcols.Cols != s.ColK() {
		panic(fmt.Sprintf("kernels: Col2im dcols %dx%d, want %dx%d", dcols.Rows, dcols.Cols, batch*s.OutH()*s.OutW(), s.ColK()))
	}
	forImages(pool, lvl, batch, &r)
	if metrics.Enabled() {
		mConvCol2imCalls.Inc()
	}
}

type col2imRanger struct {
	s     ConvShape
	batch int
	dx    []float64
	dcols *tensor.Matrix
}

// Range implements parallel.Ranger over image indices [lo, hi).
func (r *col2imRanger) Range(lo, hi int) {
	s := r.s
	oh, ow := s.OutH(), s.OutW()
	for img := lo; img < hi; img++ {
		dst := r.dx[img*s.InDim() : (img+1)*s.InDim()]
		clear(dst)
		row := img * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*s.Stride - s.Pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*s.Stride - s.Pad
				src := r.dcols.RowView(row)
				row++
				si := 0
				for ky := 0; ky < s.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= s.H {
						si += s.KW * s.C
						continue
					}
					base := iy * s.W * s.C
					for kx := 0; kx < s.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= s.W {
							si += s.C
							continue
						}
						di := base + ix*s.C
						for c := 0; c < s.C; c++ {
							dst[di+c] += src[si+c]
						}
						si += s.C
					}
				}
			}
		}
	}
}

// MaxPool computes per-channel window maxima of batch NHWC images: y gets
// the maxima (batch·OutDim flat) and arg the flat per-image input index of
// each winner (stored as float64 so it can live in a device buffer), which
// MaxPoolBackward uses to route gradients. Ties keep the first (lowest
// index) winner, making the argmax — and thus the backward pass —
// deterministic. Data-parallel over images.
func MaxPool(pool *parallel.Pool, lvl Level, s PoolShape, batch int, x, y, arg *tensor.Matrix) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: MaxPool non-positive batch %d", batch))
	}
	var start time.Time
	if metrics.Enabled() {
		start = time.Now()
	}
	r := maxPoolRanger{
		s: s, batch: batch,
		x:   flat64("MaxPool", x, batch*s.InDim()),
		y:   flat64("MaxPool", y, batch*s.OutDim()),
		arg: flat64("MaxPool", arg, batch*s.OutDim()),
	}
	forImages(pool, lvl, batch, &r)
	if metrics.Enabled() {
		mConvPoolCalls.Inc()
		mConvPoolElems.Add(float64(batch) * float64(s.OutDim()))
		mConvPoolSeconds.Observe(time.Since(start).Seconds())
	}
}

type maxPoolRanger struct {
	s         PoolShape
	batch     int
	x, y, arg []float64
}

// Range implements parallel.Ranger over image indices [lo, hi).
func (r *maxPoolRanger) Range(lo, hi int) {
	s := r.s
	oh, ow := s.OutH(), s.OutW()
	for img := lo; img < hi; img++ {
		xr := r.x[img*s.InDim() : (img+1)*s.InDim()]
		ob := img * s.OutDim()
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * s.Stride
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * s.Stride
				for c := 0; c < s.C; c++ {
					bi := (iy0*s.W+ix0)*s.C + c
					best, bestIdx := xr[bi], bi
					for ky := 0; ky < s.Size; ky++ {
						ri := ((iy0+ky)*s.W + ix0) * s.C
						for kx := 0; kx < s.Size; kx++ {
							idx := ri + kx*s.C + c
							if v := xr[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					r.y[ob] = best
					r.arg[ob] = float64(bestIdx)
					ob++
				}
			}
		}
	}
}

// MaxPoolBackward scatters output gradients dy back to dx through the
// argmax recorded by MaxPool, accumulating where windows overlap
// (Stride < Size). dx is zeroed first. Data-parallel over images.
func MaxPoolBackward(pool *parallel.Pool, lvl Level, s PoolShape, batch int, dy, arg, dx *tensor.Matrix) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: MaxPoolBackward non-positive batch %d", batch))
	}
	r := maxPoolBackRanger{
		s: s, batch: batch,
		dy:  flat64("MaxPoolBackward", dy, batch*s.OutDim()),
		arg: flat64("MaxPoolBackward", arg, batch*s.OutDim()),
		dx:  flat64("MaxPoolBackward", dx, batch*s.InDim()),
	}
	forImages(pool, lvl, batch, &r)
	if metrics.Enabled() {
		mConvPoolCalls.Inc()
	}
}

type maxPoolBackRanger struct {
	s           PoolShape
	batch       int
	dy, arg, dx []float64
}

// Range implements parallel.Ranger over image indices [lo, hi).
func (r *maxPoolBackRanger) Range(lo, hi int) {
	s := r.s
	for img := lo; img < hi; img++ {
		dst := r.dx[img*s.InDim() : (img+1)*s.InDim()]
		clear(dst)
		ob := img * s.OutDim()
		for o := 0; o < s.OutDim(); o++ {
			dst[int(r.arg[ob+o])] += r.dy[ob+o]
		}
	}
}

// convBiasBlock is the filter-block granularity of ConvBiasGrad: wide
// enough to amortize the row sweep, narrow enough that small filter counts
// still spread across workers.
const convBiasBlock = 8

// ConvBiasGrad reduces the lowered conv gradient dOut ((batch·oHW)×F) to
// the per-filter bias gradient db (1×F): db[f] = Σ_rows dOut[·,f]. This is
// the model-parallel half of the CHAOS split made explicit: filters are
// partitioned into blocks across workers via a Ranger, each worker summing
// its own columns over all rows in row order — so the result is
// bit-identical for every worker count, with no shared partials.
func ConvBiasGrad(pool *parallel.Pool, lvl Level, dOut, db *tensor.Matrix) {
	if db.Rows != 1 || db.Cols != dOut.Cols {
		panic(fmt.Sprintf("kernels: ConvBiasGrad db %dx%d for dOut %dx%d", db.Rows, db.Cols, dOut.Rows, dOut.Cols))
	}
	r := biasGradRanger{dOut: dOut, db: db.RowView(0)}
	blocks := (dOut.Cols + convBiasBlock - 1) / convBiasBlock
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 && blocks > 1 {
		pool.ForRanger(blocks, parallel.Static, 0, &r)
	} else {
		r.Range(0, blocks)
	}
	if metrics.Enabled() {
		mConvBiasGradCalls.Inc()
	}
}

type biasGradRanger struct {
	dOut *tensor.Matrix
	db   []float64
}

// Range implements parallel.Ranger over filter blocks [lo, hi).
func (r *biasGradRanger) Range(lo, hi int) {
	jlo := lo * convBiasBlock
	jhi := hi * convBiasBlock
	if jhi > r.dOut.Cols {
		jhi = r.dOut.Cols
	}
	clear(r.db[jlo:jhi])
	for i := 0; i < r.dOut.Rows; i++ {
		row := r.dOut.RowView(i)
		for j := jlo; j < jhi; j++ {
			r.db[j] += row[j]
		}
	}
}

// Im2col32 is the float32 forward-only Im2col used by reduced-precision
// serving replicas. Same layout, parallelization and determinism contract
// as Im2col.
func Im2col32(pool *parallel.Pool, lvl Level, s ConvShape, batch int, x, cols *tensor.Matrix32) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: Im2col32 non-positive batch %d", batch))
	}
	r := im2colRanger32{
		s: s, batch: batch,
		x:    flat32("Im2col32", x, batch*s.InDim()),
		cols: cols,
	}
	if cols.Rows != batch*s.OutH()*s.OutW() || cols.Cols != s.ColK() {
		panic(fmt.Sprintf("kernels: Im2col32 cols %dx%d, want %dx%d", cols.Rows, cols.Cols, batch*s.OutH()*s.OutW(), s.ColK()))
	}
	forImages(pool, lvl, batch, &r)
	if metrics.Enabled() {
		mConvIm2colCalls.Inc()
		mConvIm2colElems.Add(float64(cols.Rows) * float64(cols.Cols))
	}
}

type im2colRanger32 struct {
	s     ConvShape
	batch int
	x     []float32
	cols  *tensor.Matrix32
}

// Range implements parallel.Ranger over image indices [lo, hi).
func (r *im2colRanger32) Range(lo, hi int) {
	s := r.s
	oh, ow := s.OutH(), s.OutW()
	rowC := s.KW * s.C
	for img := lo; img < hi; img++ {
		src := r.x[img*s.InDim() : (img+1)*s.InDim()]
		row := img * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*s.Stride - s.Pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*s.Stride - s.Pad
				dst := r.cols.RowView(row)
				row++
				di := 0
				for ky := 0; ky < s.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= s.H {
						clear(dst[di : di+rowC])
						di += rowC
						continue
					}
					base := iy * s.W * s.C
					if ix0 >= 0 && ix0+s.KW <= s.W {
						copy(dst[di:di+rowC], src[base+ix0*s.C:])
						di += rowC
						continue
					}
					for kx := 0; kx < s.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= s.W {
							clear(dst[di : di+s.C])
						} else {
							copy(dst[di:di+s.C], src[base+ix*s.C:base+(ix+1)*s.C])
						}
						di += s.C
					}
				}
			}
		}
	}
}

// MaxPool32 is the float32 forward-only MaxPool (no argmax — inference
// replicas never run backward). Same parallelization and tie-breaking as
// MaxPool.
func MaxPool32(pool *parallel.Pool, lvl Level, s PoolShape, batch int, x, y *tensor.Matrix32) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: MaxPool32 non-positive batch %d", batch))
	}
	r := maxPoolRanger32{
		s: s, batch: batch,
		x: flat32("MaxPool32", x, batch*s.InDim()),
		y: flat32("MaxPool32", y, batch*s.OutDim()),
	}
	forImages(pool, lvl, batch, &r)
	if metrics.Enabled() {
		mConvPoolCalls.Inc()
		mConvPoolElems.Add(float64(batch) * float64(s.OutDim()))
	}
}

type maxPoolRanger32 struct {
	s     PoolShape
	batch int
	x, y  []float32
}

// Range implements parallel.Ranger over image indices [lo, hi).
func (r *maxPoolRanger32) Range(lo, hi int) {
	s := r.s
	oh, ow := s.OutH(), s.OutW()
	for img := lo; img < hi; img++ {
		xr := r.x[img*s.InDim() : (img+1)*s.InDim()]
		ob := img * s.OutDim()
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * s.Stride
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * s.Stride
				for c := 0; c < s.C; c++ {
					best := xr[(iy0*s.W+ix0)*s.C+c]
					for ky := 0; ky < s.Size; ky++ {
						ri := ((iy0+ky)*s.W + ix0) * s.C
						for kx := 0; kx < s.Size; kx++ {
							if v := xr[ri+kx*s.C+c]; v > best {
								best = v
							}
						}
					}
					r.y[ob] = best
					ob++
				}
			}
		}
	}
}
