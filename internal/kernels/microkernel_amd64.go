//go:build amd64 && !noasm

package kernels

// useAsmKernel gates the assembly micro-kernels on runtime CPU support.
// Checked once at package init; both paths compute the same tile, the
// assembly one with fused multiply-adds (single rounding per a·b+c). The
// noasm build tag forces the pure-Go fallbacks so CI can gate them on
// hardware that would otherwise always take the assembly path.
var useAsmKernel = cpuSupportsAVX2FMA()

// cpuSupportsAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// instructions used by dgemmKernel4x8 (CPUID feature bits plus XGETBV
// confirmation that the OS preserves YMM state).
func cpuSupportsAVX2FMA() bool

// dgemmKernel4x8 computes the 4×8 register tile
//
//	out[ii*8+jj] = Σ_{l<kc} ap[l*4+ii] · bp[l*8+jj]
//
// with AVX2 fused multiply-adds. ap is a packed A sliver (k-major, 4-wide),
// bp a packed B micro-panel (k-major, 8-wide), out a 32-element buffer.
// kc must be >= 1.
//
//go:noescape
func dgemmKernel4x8(kc int, ap, bp, out *float64)

// sgemmKernel8x16 computes the 8×16 float32 register tile
//
//	out[ii*16+jj] = Σ_{l<kc} ap[l*8+ii] · bp[l*16+jj]
//
// with AVX2 fused multiply-adds — twice the rows and columns of the f64
// tile, same register budget, because float32 packs eight lanes per YMM.
// ap is a packed A sliver (k-major, 8-wide), bp a packed B micro-panel
// (k-major, 16-wide), out a 128-element buffer. kc must be >= 1.
//
//go:noescape
func sgemmKernel8x16(kc int, ap, bp, out *float32)
