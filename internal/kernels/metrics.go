package kernels

import "phideep/internal/metrics"

// Wall-clock observability handles (DESIGN.md §"Observability"). Handles
// are resolved once here; every record site is guarded by metrics.Enabled,
// so with collection disabled the kernels pay one atomic load per call —
// never per element — and the packed path stays allocation-free.
var (
	// mGemmCalls / mGemmFlops / mGemmSeconds describe every Gemm call:
	// how many, how much arithmetic (2·m·k·n flops each), and the real
	// host seconds per call (exponential buckets, 1 µs – ~16 s).
	mGemmCalls   = metrics.Default().Counter("kernels.gemm.calls")
	mGemmFlops   = metrics.Default().FloatCounter("kernels.gemm.flops")
	mGemmSeconds = metrics.Default().Histogram("kernels.gemm.seconds", metrics.ExpBuckets(1e-6, 4, 12)...)

	// Micro-kernel path taken per Gemm call: the AVX2+FMA assembly tile,
	// the pure-Go register-tile fallback, or the scalar (unblocked) loops.
	mGemmPathAsm    = metrics.Default().Counter("kernels.gemm.path.asm")
	mGemmPathGo     = metrics.Default().Counter("kernels.gemm.path.go")
	mGemmPathScalar = metrics.Default().Counter("kernels.gemm.path.scalar")

	// The float32 inference GEMM records into its own precision-labeled
	// family so f32-vs-f64 throughput and path mix can be compared from one
	// /metrics snapshot.
	mGemm32Calls   = metrics.Default().Counter("kernels.gemm32.calls")
	mGemm32Flops   = metrics.Default().FloatCounter("kernels.gemm32.flops")
	mGemm32Seconds = metrics.Default().Histogram("kernels.gemm32.seconds", metrics.ExpBuckets(1e-6, 4, 12)...)

	mGemm32PathAsm    = metrics.Default().Counter("kernels.gemm32.path.asm")
	mGemm32PathGo     = metrics.Default().Counter("kernels.gemm32.path.go")
	mGemm32PathScalar = metrics.Default().Counter("kernels.gemm32.path.scalar")

	mGemvCalls = metrics.Default().Counter("kernels.gemv.calls")

	// Convolution lowering kernels (DESIGN.md §12): how many gathers and
	// pools ran, how many elements they moved, and the im2col wall time —
	// the overhead the lowering pays to reach the packed GEMM. The f32
	// serving variants record into the same family; the GEMM they feed is
	// already split by the gemm/gemm32 counters above.
	mConvIm2colCalls   = metrics.Default().Counter("kernels.conv.im2col.calls")
	mConvIm2colElems   = metrics.Default().FloatCounter("kernels.conv.im2col.elems")
	mConvIm2colSeconds = metrics.Default().Histogram("kernels.conv.im2col.seconds", metrics.ExpBuckets(1e-6, 4, 12)...)
	mConvCol2imCalls   = metrics.Default().Counter("kernels.conv.col2im.calls")
	mConvPoolCalls     = metrics.Default().Counter("kernels.conv.pool.calls")
	mConvPoolElems     = metrics.Default().FloatCounter("kernels.conv.pool.elems")
	mConvPoolSeconds   = metrics.Default().Histogram("kernels.conv.pool.seconds", metrics.ExpBuckets(1e-6, 4, 12)...)
	mConvBiasGradCalls = metrics.Default().Counter("kernels.conv.biasgrad.calls")

	// Pack-arena pool behaviour: reuse means a pooled scratch buffer was
	// large enough, grow means it had to reallocate. In steady state the
	// grow count stops moving — the zero-alloc claim, made observable.
	mArenaReuse = metrics.Default().Counter("kernels.pack.arena.reuse")
	mArenaGrow  = metrics.Default().Counter("kernels.pack.arena.grow")
)
