package kernels

import (
	"math"
	"testing"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

func TestSoftmaxRowsProperties(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		src := tensor.NewMatrix(11, 7).Randomize(rng.New(1), -5, 5)
		dst := tensor.NewMatrix(11, 7)
		SoftmaxRows(pool, lvl, dst, src)
		for i := 0; i < dst.Rows; i++ {
			sum := 0.0
			for _, v := range dst.RowView(i) {
				if v <= 0 || v >= 1 {
					t.Fatalf("probability %g out of (0,1)", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("row %d sums to %g", i, sum)
			}
		}
		// Order preserved: argmax of src == argmax of dst.
		for i := 0; i < src.Rows; i++ {
			s, d := src.RowView(i), dst.RowView(i)
			if argmax(s) != argmax(d) {
				t.Fatalf("row %d: softmax changed the argmax", i)
			}
		}
	})
}

func argmax(row []float64) int {
	best, bestV := 0, math.Inf(-1)
	for j, v := range row {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

func TestSoftmaxRowsNumericalStability(t *testing.T) {
	// Huge logits must not overflow.
	src := tensor.FromRows([][]float64{{1000, 1001, 999}})
	dst := tensor.NewMatrix(1, 3)
	SoftmaxRows(nil, Naive, dst, src)
	for _, v := range dst.RowView(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", dst.RowView(0))
		}
	}
	if dst.At(0, 1) < dst.At(0, 0) || dst.At(0, 1) < dst.At(0, 2) {
		t.Fatal("largest logit did not win")
	}
}

func TestSoftmaxInvariantToShift(t *testing.T) {
	src := tensor.NewMatrix(3, 5).Randomize(rng.New(2), -2, 2)
	shifted := src.Clone().Apply(func(v float64) float64 { return v + 123 })
	a, b := tensor.NewMatrix(3, 5), tensor.NewMatrix(3, 5)
	SoftmaxRows(nil, Naive, a, src)
	SoftmaxRows(nil, Naive, b, shifted)
	if d := tensor.MaxAbsDiff(a, b); d > 1e-12 {
		t.Fatalf("softmax not shift-invariant: %g", d)
	}
}

func TestCrossEntropyOneHot(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		p := tensor.FromRows([][]float64{{0.7, 0.2, 0.1}, {0.1, 0.1, 0.8}})
		y := tensor.NewMatrix(2, 3)
		OneHot([]int{0, 2}, y)
		got := CrossEntropyOneHot(pool, lvl, p, y)
		want := -math.Log(0.7) - math.Log(0.8)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("got %g want %g", got, want)
		}
	})
	// Zero probability is clamped, not infinite.
	p := tensor.FromRows([][]float64{{0, 1}})
	y := tensor.NewMatrix(1, 2)
	OneHot([]int{0}, y)
	if v := CrossEntropyOneHot(nil, Naive, p, y); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("unclamped cross-entropy: %g", v)
	}
}

func TestCountArgmaxMatches(t *testing.T) {
	forAllLevels(t, func(t *testing.T, pool *parallel.Pool, lvl Level) {
		p := tensor.FromRows([][]float64{
			{0.9, 0.1}, // predicts 0
			{0.3, 0.7}, // predicts 1
			{0.6, 0.4}, // predicts 0
		})
		y := tensor.NewMatrix(3, 2)
		OneHot([]int{0, 0, 0}, y)
		if got := CountArgmaxMatches(pool, lvl, p, y); got != 2 {
			t.Fatalf("got %d matches, want 2", got)
		}
	})
}

func TestOneHotValidation(t *testing.T) {
	y := tensor.NewMatrix(2, 3)
	OneHot([]int{1, 2}, y)
	if y.At(0, 1) != 1 || y.At(1, 2) != 1 || y.Sum() != 2 {
		t.Fatalf("one-hot wrong: %v", y)
	}
	for _, f := range []func(){
		func() { OneHot([]int{1}, y) },
		func() { OneHot([]int{1, 3}, y) },
		func() { OneHot([]int{1, -1}, y) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
