package kernels

import (
	"fmt"
	"math"
	"testing"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Cross-level equivalence suite: every GEMM/Gemv level — and the packed
// micro-kernel called directly — must match the Naive level within a
// 1e-12 relative tolerance, over odd shapes, strided views (Stride >
// Cols), all four trans combinations and alpha/beta in {0, 1, -0.5}.
// The blocked levels reorder the k summation (packed panels, register
// tiles, fused multiply-adds), so comparisons are toleranced rather than
// bitwise; determinism for a fixed level/worker count is covered by
// TestGemmDeterministicAcrossWorkerCounts.

// sentinel marks padding lanes of strided views; kernels must never read
// or write it.
const sentinel = -12345.5

// stridedRand builds a rows×cols matrix with Stride = cols+pad whose
// padding lanes hold the sentinel, filled with uniform values in [-1, 1).
func stridedRand(r *rng.RNG, rows, cols, pad int) *tensor.Matrix {
	m := &tensor.Matrix{Rows: rows, Cols: cols, Stride: cols + pad, Data: make([]float64, rows*(cols+pad))}
	for i := range m.Data {
		m.Data[i] = sentinel
	}
	for i := 0; i < rows; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = r.Uniform(-1, 1)
		}
	}
	return m
}

// checkPadding fails the test if any padding lane of m lost its sentinel.
func checkPadding(t *testing.T, ctx string, m *tensor.Matrix) {
	t.Helper()
	if m.Stride == m.Cols {
		return
	}
	for i := 0; i < m.Rows; i++ {
		lane := m.Data[i*m.Stride+m.Cols : (i+1)*m.Stride]
		for j, v := range lane {
			if v != sentinel {
				t.Fatalf("%s: padding lane (%d,+%d) overwritten: %v", ctx, i, j, v)
			}
		}
	}
}

// closeRel reports |got-want| <= 1e-12 relative to max(1, |want|).
func closeRel(got, want float64) bool {
	return math.Abs(got-want) <= 1e-12*math.Max(1, math.Abs(want))
}

func compareToOracle(t *testing.T, ctx string, got, want *tensor.Matrix) {
	t.Helper()
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			if g, w := got.At(i, j), want.At(i, j); !closeRel(g, w) {
				t.Fatalf("%s: C[%d,%d] = %v, oracle %v (diff %g)", ctx, i, j, g, w, g-w)
			}
		}
	}
}

// gemmRunner is one implementation under test.
type gemmRunner struct {
	name string
	run  func(pool *parallel.Pool, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix)
}

func gemmRunners() []gemmRunner {
	rs := []gemmRunner{}
	for _, lvl := range Levels {
		if lvl == Naive {
			continue // the oracle
		}
		lvl := lvl
		rs = append(rs, gemmRunner{lvl.String(), func(pool *parallel.Pool, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
			Gemm(pool, lvl, transA, transB, alpha, a, b, beta, c)
		}})
	}
	// The packed path invoked directly, bypassing the Gemm dispatch, so the
	// micro-kernel is exercised even if dispatch heuristics change.
	rs = append(rs, gemmRunner{"packed-direct", func(pool *parallel.Pool, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
		m, k := opShape(a, transA)
		_, n := opShape(b, transB)
		gemmPacked(pool, ParallelBlocked, transA, transB, alpha, a, b, beta, c, m, k, n)
	}})
	return rs
}

func runGemmCase(t *testing.T, pool *parallel.Pool, r *rng.RNG, m, k, n int, transA, transB bool, alpha, beta float64, pad int) {
	t.Helper()
	ar, ac := m, k
	if transA {
		ar, ac = k, m
	}
	br, bc := k, n
	if transB {
		br, bc = n, k
	}
	a := stridedRand(r, ar, ac, pad)
	b := stridedRand(r, br, bc, (pad+1)%4)
	c0 := stridedRand(r, m, n, pad)

	want := c0.Clone()
	Gemm(nil, Naive, transA, transB, alpha, a, b, beta, want)

	for _, runner := range gemmRunners() {
		c := &tensor.Matrix{Rows: c0.Rows, Cols: c0.Cols, Stride: c0.Stride, Data: append([]float64(nil), c0.Data...)}
		runner.run(pool, transA, transB, alpha, a, b, beta, c)
		ctx := caseName(runner.name, m, k, n, transA, transB, alpha, beta)
		compareToOracle(t, ctx, c, want)
		checkPadding(t, ctx, c)
	}
	checkPadding(t, "input A", a)
	checkPadding(t, "input B", b)
}

func caseName(runner string, m, k, n int, transA, transB bool, alpha, beta float64) string {
	tn := map[bool]string{false: "N", true: "T"}
	return fmt.Sprintf("%s/%s%s/%dx%dx%d/alpha=%v,beta=%v",
		runner, tn[transA], tn[transB], m, k, n, alpha, beta)
}

// TestGemmCrossLevelEquivalence sweeps all m,k,n triples from the odd-size
// set, cycling trans combos, alpha/beta and view padding per case so every
// axis value appears against many shapes.
func TestGemmCrossLevelEquivalence(t *testing.T) {
	dims := []int{1, 3, 17, 64, 65, 257}
	transCombos := [4][2]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	coeffs := []float64{0, 1, -0.5}
	pool := parallel.NewPool(4)
	defer pool.Close()
	r := rng.New(7)
	idx := 0
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				tc := transCombos[idx%4]
				alpha := coeffs[idx%3]
				beta := coeffs[(idx/3)%3]
				pad := idx % 4
				idx++
				runGemmCase(t, pool, r, m, k, n, tc[0], tc[1], alpha, beta, pad)
			}
		}
	}
}

// TestGemmTransAlphaBetaExhaustive crosses all four trans combinations
// with every alpha/beta pair on one odd, strided shape, so no combination
// escapes the cycling of the sweep above.
func TestGemmTransAlphaBetaExhaustive(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	r := rng.New(11)
	for _, transA := range []bool{false, true} {
		for _, transB := range []bool{false, true} {
			for _, alpha := range []float64{0, 1, -0.5} {
				for _, beta := range []float64{0, 1, -0.5} {
					runGemmCase(t, pool, r, 17, 65, 64, transA, transB, alpha, beta, 3)
				}
			}
		}
	}
}

// TestGemmDeterministicAcrossWorkerCounts checks the packed path's
// determinism claim: every C tile is written by one worker and k-panels
// accumulate in a fixed order, so Blocked, ParallelBlocked and any worker
// count produce bit-identical floats.
func TestGemmDeterministicAcrossWorkerCounts(t *testing.T) {
	r := rng.New(13)
	a := stridedRand(r, 65, 257, 2)
	b := stridedRand(r, 257, 33, 1)
	ref := tensor.NewMatrix(65, 33)
	Gemm(nil, Blocked, false, false, 1.25, a, b, 0.5, ref)
	for _, workers := range []int{1, 2, 3, 7} {
		pool := parallel.NewPool(workers)
		c := tensor.NewMatrix(65, 33)
		Gemm(pool, ParallelBlocked, false, false, 1.25, a, b, 0.5, c)
		pool.Close()
		for i := 0; i < c.Rows; i++ {
			for j := 0; j < c.Cols; j++ {
				if c.At(i, j) != ref.At(i, j) {
					t.Fatalf("workers=%d: C[%d,%d] = %v, want bit-identical %v", workers, i, j, c.At(i, j), ref.At(i, j))
				}
			}
		}
	}
}

// TestGemvCrossLevelEquivalence checks every Gemv level against Naive over
// odd shapes, both trans settings, strided A views and alpha/beta cycling
// — including shapes large enough to cross the parallel threshold of the
// transposed path.
func TestGemvCrossLevelEquivalence(t *testing.T) {
	dims := []int{1, 3, 17, 64, 65, 257}
	coeffs := []float64{0, 1, -0.5}
	pool := parallel.NewPool(4)
	defer pool.Close()
	r := rng.New(17)
	idx := 0
	for _, rows := range dims {
		for _, cols := range dims {
			for _, trans := range []bool{false, true} {
				alpha := coeffs[idx%3]
				beta := coeffs[(idx/3)%3]
				pad := idx % 3
				idx++
				a := stridedRand(r, rows, cols, pad)
				m, n := opShape(a, trans)
				x := tensor.NewVector(n).Randomize(r, -1, 1)
				y0 := tensor.NewVector(m).Randomize(r, -1, 1)

				want := y0.Clone()
				Gemv(nil, Naive, trans, alpha, a, x, beta, want)

				for _, lvl := range Levels {
					if lvl == Naive {
						continue
					}
					y := y0.Clone()
					Gemv(pool, lvl, trans, alpha, a, x, beta, y)
					for i := range want {
						if !closeRel(y[i], want[i]) {
							t.Fatalf("%s trans=%v %dx%d alpha=%v beta=%v: y[%d] = %v, oracle %v",
								lvl, trans, rows, cols, alpha, beta, i, y[i], want[i])
						}
					}
				}
				checkPadding(t, "gemv input A", a)
			}
		}
	}
}
