package kernels

import (
	"fmt"
	"time"

	"phideep/internal/metrics"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C, where op(X) is X or Xᵀ
// according to transA/transB, at the given optimization level. pool may be
// nil for non-parallel levels. Shapes: op(A) is m×k, op(B) is k×n, C is m×n.
//
// The Blocked and ParallelBlocked levels run the packed, register-blocked
// micro-kernel (gemm_packed.go); Naive and Parallel run scalar row loops.
// All levels compute the same result up to floating-point association
// order.
//
// When metrics collection is enabled (internal/metrics), every call records
// its count, flop volume, wall-clock duration and the micro-kernel path
// taken (assembly, Go fallback, or scalar); disabled, the instrumentation
// is one atomic load.
func Gemm(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	if !metrics.Enabled() {
		gemmDispatch(pool, lvl, transA, transB, alpha, a, b, beta, c)
		return
	}
	start := time.Now()
	gemmDispatch(pool, lvl, transA, transB, alpha, a, b, beta, c)
	mGemmSeconds.Observe(time.Since(start).Seconds())
	mGemmCalls.Inc()
	m, k := opShape(a, transA)
	_, n := opShape(b, transB)
	mGemmFlops.Add(2 * float64(m) * float64(k) * float64(n))
	switch {
	case lvl.IsBlocked() && useAsmKernel:
		mGemmPathAsm.Inc()
	case lvl.IsBlocked():
		mGemmPathGo.Inc()
	default:
		mGemmPathScalar.Inc()
	}
}

// gemmDispatch is the uninstrumented Gemm body: validate, then route to the
// packed micro-kernel or the scalar row loops.
func gemmDispatch(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb {
		panic(fmt.Sprintf("kernels: Gemm inner dimension mismatch: %d vs %d", ka, kb))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("kernels: Gemm output shape %dx%d, want %dx%d", c.Rows, c.Cols, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	if ka == 0 || alpha == 0 {
		scaleC(pool, lvl, beta, c)
		return
	}
	if lvl.IsBlocked() {
		// The packed path handles all four trans layouts natively (the
		// packing absorbs strides and transposes) and folds the beta
		// scaling into the first k-panel, so no separate scale pass runs.
		gemmPacked(pool, lvl, transA, transB, alpha, a, b, beta, c, m, ka, n)
		return
	}
	scaleC(pool, lvl, beta, c)

	// Both transposed: rewrite op(A)ᵀop(B)ᵀ using a packed transpose of A so
	// the scalar kernels below only handle three layouts. TT does not occur
	// in the training hot paths.
	if transA && transB {
		gemmDispatch(pool, lvl, false, true, alpha, a.T(), b, 1, c)
		return
	}

	rowRange := func(lo, hi int) {
		switch {
		case !transA && !transB:
			gemmNN(alpha, a, b, c, lo, hi)
		case !transA && transB:
			gemmNT(alpha, a, b, c, lo, hi)
		default: // transA && !transB
			gemmTN(alpha, a, b, c, lo, hi)
		}
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(m, parallel.Static, 0, rowRange)
	} else {
		rowRange(0, m)
	}
}

func opShape(x *tensor.Matrix, trans bool) (rows, cols int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

func scaleC(pool *parallel.Pool, lvl Level, beta float64, c *tensor.Matrix) {
	if beta == 1 {
		return
	}
	scale := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c.RowView(i)
			if beta == 0 {
				clear(row)
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(c.Rows, parallel.Static, 0, scale)
	} else {
		scale(0, c.Rows)
	}
}

// gemmNN accumulates C[lo:hi,:] += alpha * A[lo:hi,:] * B with the scalar
// "ikj" loop: streams B rows, accumulates into the C row.
func gemmNN(alpha float64, a, b, c *tensor.Matrix, lo, hi int) {
	k, n := a.Cols, c.Cols
	for i := lo; i < hi; i++ {
		arow, crow := a.RowView(i), c.RowView(i)
		for l := 0; l < k; l++ {
			av := alpha * arow[l]
			if av == 0 {
				continue
			}
			brow := b.RowView(l)
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmNT accumulates C[lo:hi,:] += alpha * A[lo:hi,:] * Bᵀ. Both operand
// rows are contiguous, so the inner kernel is a dot product.
func gemmNT(alpha float64, a, b, c *tensor.Matrix, lo, hi int) {
	k, n := a.Cols, c.Cols
	for i := lo; i < hi; i++ {
		arow, crow := a.RowView(i), c.RowView(i)
		for j := 0; j < n; j++ {
			brow := b.RowView(j)
			s := 0.0
			for l := 0; l < k; l++ {
				s += arow[l] * brow[l]
			}
			crow[j] += alpha * s
		}
	}
}

// gemmTN accumulates C[lo:hi,:] += alpha * Aᵀ[lo:hi,:] * B, i.e. row i of C
// gathers column i of A. Used for weight gradients (Δᵀ·X patterns).
func gemmTN(alpha float64, a, b, c *tensor.Matrix, lo, hi int) {
	k, n := a.Rows, c.Cols // op(A) is (a.Cols)×(a.Rows)
	for l := 0; l < k; l++ {
		arow, brow := a.RowView(l), b.RowView(l)
		for i := lo; i < hi; i++ {
			av := alpha * arow[i]
			if av == 0 {
				continue
			}
			crow := c.RowView(i)
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemvTransMinWork is the op(A) element count below which the transposed
// Gemv stays sequential: with less work than this the per-worker partial
// vectors cost more than they save.
const gemvTransMinWork = 4096

// Gemv computes y = alpha*op(A)*x + beta*y. Shapes: op(A) is m×n, x length
// n, y length m.
func Gemv(pool *parallel.Pool, lvl Level, transA bool, alpha float64, a *tensor.Matrix, x tensor.Vector, beta float64, y tensor.Vector) {
	if metrics.Enabled() {
		mGemvCalls.Inc()
	}
	m, n := opShape(a, transA)
	if len(x) != n || len(y) != m {
		panic(fmt.Sprintf("kernels: Gemv shape mismatch: op(A)=%dx%d, x=%d, y=%d", m, n, len(x), len(y)))
	}
	switch beta {
	case 1:
	case 0:
		clear(y)
	default:
		for i := range y {
			y[i] *= beta
		}
	}
	if alpha == 0 || n == 0 {
		return
	}
	if !transA {
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := a.RowView(i)
				s := 0.0
				for j, v := range row {
					s += v * x[j]
				}
				y[i] += alpha * s
			}
		}
		if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
			pool.For(m, parallel.Static, 0, body)
		} else {
			body(0, m)
		}
		return
	}
	// Transposed: y += alpha * Aᵀx, accumulated row by row of A. The output
	// vector is shared across rows, so the parallel path gives each block of
	// A rows its own partial vector and combines the partials in block order
	// — same scheme as parallel.Pool.ReduceSum, lifted to vectors, so the
	// result is deterministic for a fixed worker count.
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 && a.Rows*m >= gemvTransMinWork {
		gemvTransParallel(pool, alpha, a, x, y)
		return
	}
	gemvTransBlock(alpha, a, x, y, 0, a.Rows)
}

// gemvTransBlock accumulates y += alpha * A[lo:hi,:]ᵀ · x[lo:hi].
func gemvTransBlock(alpha float64, a *tensor.Matrix, x, y tensor.Vector, lo, hi int) {
	for l := lo; l < hi; l++ {
		row := a.RowView(l)
		xv := alpha * x[l]
		if xv == 0 {
			continue
		}
		for i, v := range row {
			y[i] += xv * v
		}
	}
}

// gemvTransParallel distributes blocks of A rows across the pool, each
// accumulating into a worker-private slice of a pooled scratch buffer, then
// reduces the partials into y in ascending block order.
func gemvTransParallel(pool *parallel.Pool, alpha float64, a *tensor.Matrix, x, y tensor.Vector) {
	blocks := pool.Workers()
	if blocks > a.Rows {
		blocks = a.Rows
	}
	per := (a.Rows + blocks - 1) / blocks
	blocks = (a.Rows + per - 1) / per
	ar := arenaPool.Get().(*arena)
	m := len(y)
	partials := ar.ensure(blocks * m)
	pool.For(blocks, parallel.Static, 0, func(blo, bhi int) {
		for blk := blo; blk < bhi; blk++ {
			lo := blk * per
			hi := lo + per
			if hi > a.Rows {
				hi = a.Rows
			}
			part := partials[blk*m : (blk+1)*m]
			clear(part)
			gemvTransBlock(alpha, a, x, part, lo, hi)
		}
	})
	for blk := 0; blk < blocks; blk++ {
		part := partials[blk*m : (blk+1)*m]
		for i, v := range part {
			y[i] += v
		}
	}
	arenaPool.Put(ar)
}
