package kernels

import (
	"fmt"

	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// blockK and blockJ are the cache-tile sizes used by the blocked kernels.
// 64×256 float64 tiles keep the streamed panel of B and the accumulator row
// of C inside L1/L2 on common cores; the exact values only affect speed,
// never results.
const (
	blockK = 64
	blockJ = 256
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C, where op(X) is X or Xᵀ
// according to transA/transB, at the given optimization level. pool may be
// nil for non-parallel levels. Shapes: op(A) is m×k, op(B) is k×n, C is m×n.
func Gemm(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	m, ka := opShape(a, transA)
	kb, n := opShape(b, transB)
	if ka != kb {
		panic(fmt.Sprintf("kernels: Gemm inner dimension mismatch: %d vs %d", ka, kb))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("kernels: Gemm output shape %dx%d, want %dx%d", c.Rows, c.Cols, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	scaleC(pool, lvl, beta, c)
	if ka == 0 || alpha == 0 {
		return
	}

	// Both transposed: rewrite op(A)ᵀop(B)ᵀ using a packed transpose of A so
	// the hot kernels below only handle three layouts. TT does not occur in
	// the training hot paths.
	if transA && transB {
		Gemm(pool, lvl, false, true, alpha, a.T(), b, 1, c)
		return
	}

	rowRange := func(lo, hi int) {
		switch {
		case !transA && !transB:
			gemmNN(lvl, alpha, a, b, c, lo, hi)
		case !transA && transB:
			gemmNT(lvl, alpha, a, b, c, lo, hi)
		default: // transA && !transB
			gemmTN(lvl, alpha, a, b, c, lo, hi)
		}
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(m, parallel.Static, 0, rowRange)
	} else {
		rowRange(0, m)
	}
}

func opShape(x *tensor.Matrix, trans bool) (rows, cols int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

func scaleC(pool *parallel.Pool, lvl Level, beta float64, c *tensor.Matrix) {
	if beta == 1 {
		return
	}
	scale := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c.RowView(i)
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(c.Rows, parallel.Static, 0, scale)
	} else {
		scale(0, c.Rows)
	}
}

// gemmNN accumulates C[lo:hi,:] += alpha * A[lo:hi,:] * B.
func gemmNN(lvl Level, alpha float64, a, b, c *tensor.Matrix, lo, hi int) {
	k, n := a.Cols, c.Cols
	if !lvl.IsBlocked() {
		// "ikj" scalar loop: streams B rows, accumulates into the C row.
		for i := lo; i < hi; i++ {
			arow, crow := a.RowView(i), c.RowView(i)
			for l := 0; l < k; l++ {
				av := alpha * arow[l]
				if av == 0 {
					continue
				}
				brow := b.RowView(l)
				for j := 0; j < n; j++ {
					crow[j] += av * brow[j]
				}
			}
		}
		return
	}
	// Tiled over (k, j): each (lb, jb) tile of B is reused across all rows
	// of the block before being evicted.
	for lb := 0; lb < k; lb += blockK {
		lend := min(lb+blockK, k)
		for jb := 0; jb < n; jb += blockJ {
			jend := min(jb+blockJ, n)
			for i := lo; i < hi; i++ {
				arow := a.RowView(i)
				crow := c.RowView(i)[jb:jend]
				for l := lb; l < lend; l++ {
					av := alpha * arow[l]
					if av == 0 {
						continue
					}
					brow := b.RowView(l)[jb:jend]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}

// gemmNT accumulates C[lo:hi,:] += alpha * A[lo:hi,:] * Bᵀ. Both operand
// rows are contiguous, so the inner kernel is a dot product.
func gemmNT(lvl Level, alpha float64, a, b, c *tensor.Matrix, lo, hi int) {
	k, n := a.Cols, c.Cols
	if !lvl.IsBlocked() {
		for i := lo; i < hi; i++ {
			arow, crow := a.RowView(i), c.RowView(i)
			for j := 0; j < n; j++ {
				brow := b.RowView(j)
				s := 0.0
				for l := 0; l < k; l++ {
					s += arow[l] * brow[l]
				}
				crow[j] += alpha * s
			}
		}
		return
	}
	// Tile the dot products over k so long rows of A and B stay cached.
	for lb := 0; lb < k; lb += blockK {
		lend := min(lb+blockK, k)
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)[lb:lend]
			crow := c.RowView(i)
			for j := 0; j < n; j++ {
				brow := b.RowView(j)[lb:lend]
				s := 0.0
				for l, av := range arow {
					s += av * brow[l]
				}
				crow[j] += alpha * s
			}
		}
	}
}

// gemmTN accumulates C[lo:hi,:] += alpha * Aᵀ[lo:hi,:] * B, i.e. row i of C
// gathers column i of A. Used for weight gradients (Δᵀ·X patterns).
func gemmTN(lvl Level, alpha float64, a, b, c *tensor.Matrix, lo, hi int) {
	k, n := a.Rows, c.Cols // op(A) is (a.Cols)×(a.Rows)
	if !lvl.IsBlocked() {
		for l := 0; l < k; l++ {
			arow, brow := a.RowView(l), b.RowView(l)
			for i := lo; i < hi; i++ {
				av := alpha * arow[i]
				if av == 0 {
					continue
				}
				crow := c.RowView(i)
				for j := 0; j < n; j++ {
					crow[j] += av * brow[j]
				}
			}
		}
		return
	}
	for lb := 0; lb < k; lb += blockK {
		lend := min(lb+blockK, k)
		for jb := 0; jb < n; jb += blockJ {
			jend := min(jb+blockJ, n)
			for l := lb; l < lend; l++ {
				arow := a.RowView(l)
				brow := b.RowView(l)[jb:jend]
				for i := lo; i < hi; i++ {
					av := alpha * arow[i]
					if av == 0 {
						continue
					}
					crow := c.RowView(i)[jb:jend]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	}
}

// Gemv computes y = alpha*op(A)*x + beta*y. Shapes: op(A) is m×n, x length
// n, y length m.
func Gemv(pool *parallel.Pool, lvl Level, transA bool, alpha float64, a *tensor.Matrix, x tensor.Vector, beta float64, y tensor.Vector) {
	m, n := opShape(a, transA)
	if len(x) != n || len(y) != m {
		panic(fmt.Sprintf("kernels: Gemv shape mismatch: op(A)=%dx%d, x=%d, y=%d", m, n, len(x), len(y)))
	}
	for i := range y {
		y[i] *= beta
	}
	if alpha == 0 || n == 0 {
		return
	}
	if !transA {
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := a.RowView(i)
				s := 0.0
				for j, v := range row {
					s += v * x[j]
				}
				y[i] += alpha * s
			}
		}
		if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
			pool.For(m, parallel.Static, 0, body)
		} else {
			body(0, m)
		}
		return
	}
	// Transposed: y += alpha * Aᵀx, accumulated row by row of A. Kept
	// sequential — the vector is shared across rows, and the paper's models
	// only hit this shape with small vectors.
	for l := 0; l < a.Rows; l++ {
		row := a.RowView(l)
		xv := alpha * x[l]
		if xv == 0 {
			continue
		}
		for i, v := range row {
			y[i] += xv * v
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
