package kernels

import (
	"fmt"
	"math"

	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// forRows runs body over row ranges of an n-row matrix, parallel when the
// level and pool allow it. All elementwise kernels funnel through here so
// the vectorizable loops of the paper (Eqs. 14–18) share one scheduling
// point.
func forRows(pool *parallel.Pool, lvl Level, n int, body func(lo, hi int)) {
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		pool.For(n, parallel.Static, 0, body)
	} else {
		body(0, n)
	}
}

func checkSameShape(op string, a, b *tensor.Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("kernels: %s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Sigmoid computes dst = 1/(1+exp(-src)) elementwise. dst and src may be
// the same matrix. This is the vectorized sampling map of Eqs. 14–15.
func Sigmoid(pool *parallel.Pool, lvl Level, dst, src *tensor.Matrix) {
	checkSameShape("Sigmoid", dst, src)
	forRows(pool, lvl, src.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d := src.RowView(i), dst.RowView(i)
			for j, v := range s {
				d[j] = 1 / (1 + math.Exp(-v))
			}
		}
	})
}

// SigmoidPrimeFromY computes dst = y·(1−y) elementwise, the derivative of
// the sigmoid expressed through its output. dst and y may be the same.
func SigmoidPrimeFromY(pool *parallel.Pool, lvl Level, dst, y *tensor.Matrix) {
	checkSameShape("SigmoidPrimeFromY", dst, y)
	forRows(pool, lvl, y.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d := y.RowView(i), dst.RowView(i)
			for j, v := range s {
				d[j] = v * (1 - v)
			}
		}
	})
}

// AddBiasRow adds the bias vector b to every row of m in place:
// m[i,:] += b. This realizes the "+ b" of y = s(Wx + b) in batched form.
func AddBiasRow(pool *parallel.Pool, lvl Level, m *tensor.Matrix, b tensor.Vector) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("kernels: AddBiasRow bias length %d, want %d", len(b), m.Cols))
	}
	forRows(pool, lvl, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.RowView(i)
			for j := range row {
				row[j] += b[j]
			}
		}
	})
}

// Axpy computes y += alpha*x elementwise over matrices (the vectorized
// parameter update of Eqs. 16–18).
func Axpy(pool *parallel.Pool, lvl Level, alpha float64, x, y *tensor.Matrix) {
	checkSameShape("Axpy", x, y)
	forRows(pool, lvl, x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr, yr := x.RowView(i), y.RowView(i)
			for j, v := range xr {
				yr[j] += alpha * v
			}
		}
	})
}

// AxpyVec computes y += alpha*x over vectors.
func AxpyVec(alpha float64, x, y tensor.Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("kernels: AxpyVec length mismatch: %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of m by alpha.
func Scale(pool *parallel.Pool, lvl Level, alpha float64, m *tensor.Matrix) {
	forRows(pool, lvl, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.RowView(i)
			for j := range row {
				row[j] *= alpha
			}
		}
	})
}

// Sub computes dst = a − b elementwise; dst may alias a or b.
func Sub(pool *parallel.Pool, lvl Level, dst, a, b *tensor.Matrix) {
	checkSameShape("Sub", a, b)
	checkSameShape("Sub", dst, a)
	forRows(pool, lvl, a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar, br, dr := a.RowView(i), b.RowView(i), dst.RowView(i)
			for j := range ar {
				dr[j] = ar[j] - br[j]
			}
		}
	})
}

// MulElem computes dst = a ⊙ b (Hadamard product); dst may alias a or b.
// Used to fold the activation derivative into the backpropagated delta.
func MulElem(pool *parallel.Pool, lvl Level, dst, a, b *tensor.Matrix) {
	checkSameShape("MulElem", a, b)
	checkSameShape("MulElem", dst, a)
	forRows(pool, lvl, a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar, br, dr := a.RowView(i), b.RowView(i), dst.RowView(i)
			for j := range ar {
				dr[j] = ar[j] * br[j]
			}
		}
	})
}

// ColSums accumulates the column sums of m into out (len m.Cols):
// out[j] = Σ_i m[i,j]. Bias gradients reduce through this kernel. The
// parallel levels reduce privately per block and combine in block order so
// the result is deterministic.
func ColSums(pool *parallel.Pool, lvl Level, m *tensor.Matrix, out tensor.Vector) {
	if len(out) != m.Cols {
		panic(fmt.Sprintf("kernels: ColSums output length %d, want %d", len(out), m.Cols))
	}
	out.Zero()
	if m.Rows == 0 {
		return
	}
	if !lvl.IsParallel() || pool == nil || pool.Workers() <= 1 {
		for i := 0; i < m.Rows; i++ {
			row := m.RowView(i)
			for j, v := range row {
				out[j] += v
			}
		}
		return
	}
	workers := pool.Workers()
	per := (m.Rows + workers - 1) / workers
	blocks := (m.Rows + per - 1) / per
	partials := make([][]float64, blocks)
	pool.For(m.Rows, parallel.Static, 0, func(lo, hi int) {
		p := make([]float64, m.Cols)
		for i := lo; i < hi; i++ {
			row := m.RowView(i)
			for j, v := range row {
				p[j] += v
			}
		}
		partials[lo/per] = p
	})
	for _, p := range partials {
		if p == nil {
			continue
		}
		for j, v := range p {
			out[j] += v
		}
	}
}

// SampleBernoulli fills dst[i,j] with 1 if u < p[i,j] else 0, where u are
// uniform variates from streams split off r. Each row block gets its own
// split stream keyed by block start, so results are deterministic for a
// fixed seed regardless of worker count or schedule — a property the tests
// rely on. This is the stochastic binary-unit sampling step of CD-k.
func SampleBernoulli(pool *parallel.Pool, lvl Level, dst, p *tensor.Matrix, r *rng.RNG) {
	checkSameShape("SampleBernoulli", dst, p)
	base := r.Uint64() // one draw: advances r so successive calls differ
	sampleRow := func(i int) {
		rr := rng.New(base ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
		pr, dr := p.RowView(i), dst.RowView(i)
		for j, pv := range pr {
			dr[j] = rr.Bernoulli(pv)
		}
	}
	forRows(pool, lvl, p.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sampleRow(i)
		}
	})
}

// SumSquaredDiff returns Σ (a−b)² over all elements, the unnormalized
// reconstruction error of Eq. 3.
func SumSquaredDiff(pool *parallel.Pool, lvl Level, a, b *tensor.Matrix) float64 {
	checkSameShape("SumSquaredDiff", a, b)
	body := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			ar, br := a.RowView(i), b.RowView(i)
			for j := range ar {
				d := ar[j] - br[j]
				s += d * d
			}
		}
		return s
	}
	if lvl.IsParallel() && pool != nil && pool.Workers() > 1 {
		return pool.ReduceSum(a.Rows, body)
	}
	return body(0, a.Rows)
}

// AddKLSparsityDelta adds the sparsity-penalty term of the hidden-layer
// delta in place (the β·(−ρ/ρ̂ + (1−ρ)/(1−ρ̂)) broadcast of Eq. 5's
// gradient): delta[i,j] += coeff[j], then multiplies the whole row by the
// activation derivative dY[i,j] when dY is non-nil.
func AddKLSparsityDelta(pool *parallel.Pool, lvl Level, delta *tensor.Matrix, coeff tensor.Vector, dY *tensor.Matrix) {
	if len(coeff) != delta.Cols {
		panic(fmt.Sprintf("kernels: AddKLSparsityDelta coeff length %d, want %d", len(coeff), delta.Cols))
	}
	if dY != nil {
		checkSameShape("AddKLSparsityDelta", delta, dY)
	}
	forRows(pool, lvl, delta.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dr := delta.RowView(i)
			if dY != nil {
				yr := dY.RowView(i)
				for j := range dr {
					dr[j] = (dr[j] + coeff[j]) * yr[j]
				}
			} else {
				for j := range dr {
					dr[j] += coeff[j]
				}
			}
		}
	})
}

// AddGaussianNoise fills dst[i,j] = mean[i,j] + sigma·N(0,1), with the same
// deterministic per-row stream splitting as SampleBernoulli, so results are
// independent of worker count and schedule. This is the visible-unit
// sampling step of a Gaussian–Bernoulli RBM.
func AddGaussianNoise(pool *parallel.Pool, lvl Level, dst, mean *tensor.Matrix, sigma float64, r *rng.RNG) {
	checkSameShape("AddGaussianNoise", dst, mean)
	base := r.Uint64()
	forRows(pool, lvl, mean.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rr := rng.New(base ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
			mr, dr := mean.RowView(i), dst.RowView(i)
			for j, mv := range mr {
				dr[j] = mv + sigma*rr.Norm()
			}
		}
	})
}
