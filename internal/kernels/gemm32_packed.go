package kernels

import (
	"sync"

	"phideep/internal/metrics"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Cache-blocking parameters of the float32 packed GEMM path. The register
// tile doubles in both extents relative to the f64 kernel (eight float32
// lanes per YMM instead of four float64), so an A sliver stays 8 KiB
// (mr32×kc×4 bytes) and a full B panel halves to 512 KiB. As with the f64
// constants, changing these affects speed only, never results.
const (
	mr32      = 8   // micro-kernel rows of C held in accumulators
	nr32      = 16  // micro-kernel cols of C held in accumulators
	kcBlock32 = 256 // k-extent of a packed panel (A sliver: mr32×kc = 8 KiB)
	ncBlock32 = 512 // n-extent of a packed B panel (kc×nc = 512 KiB ceiling)
)

// arena32 is the float32 twin of arena: a reusable scratch buffer pooled so
// packing allocates nothing in steady state. It shares the arena reuse/grow
// metrics — the counters describe pack-arena behaviour across precisions.
type arena32 struct {
	buf []float32
}

func (ar *arena32) ensure(n int) []float32 {
	if cap(ar.buf) < n {
		if metrics.Enabled() {
			mArenaGrow.Inc()
		}
		ar.buf = make([]float32, n)
	} else if metrics.Enabled() {
		mArenaReuse.Inc()
	}
	return ar.buf[:n]
}

var arena32Pool = sync.Pool{New: func() any { return new(arena32) }}

// packB32 packs op(B)[pc:pc+kc, jc:jc+nc] into bp as nr32-wide micro-panels,
// k-major, zero-padding ragged right edges — the float32 layout twin of
// packB.
func packB32(bp []float32, b *tensor.Matrix32, transB bool, pc, kc, jc, nc int) {
	for jp := 0; jp*nr32 < nc; jp++ {
		j0 := jc + jp*nr32
		w := nr32
		if rem := jc + nc - j0; rem < w {
			w = rem
		}
		panel := bp[jp*kc*nr32 : (jp+1)*kc*nr32]
		if transB {
			for jj := 0; jj < w; jj++ {
				brow := b.RowView(j0 + jj)[pc : pc+kc]
				for l, v := range brow {
					panel[l*nr32+jj] = v
				}
			}
		} else {
			for l := 0; l < kc; l++ {
				brow := b.RowView(pc + l)[j0 : j0+w]
				dst := panel[l*nr32 : l*nr32+w]
				copy(dst, brow)
			}
		}
		if w < nr32 {
			for l := 0; l < kc; l++ {
				lane := panel[l*nr32 : (l+1)*nr32]
				for jj := w; jj < nr32; jj++ {
					lane[jj] = 0
				}
			}
		}
	}
}

// packA32 packs the mr32-row sliver op(A)[i0:i0+h, pc:pc+kc] into ap,
// k-major, zero-padding rows past h.
func packA32(ap []float32, a *tensor.Matrix32, transA bool, i0, h, pc, kc int) {
	if transA {
		for l := 0; l < kc; l++ {
			arow := a.RowView(pc + l)[i0 : i0+h]
			lane := ap[l*mr32 : l*mr32+mr32]
			for ii, v := range arow {
				lane[ii] = v
			}
			for ii := h; ii < mr32; ii++ {
				lane[ii] = 0
			}
		}
		return
	}
	for ii := 0; ii < h; ii++ {
		arow := a.RowView(i0 + ii)[pc : pc+kc]
		for l, v := range arow {
			ap[l*mr32+ii] = v
		}
	}
	for ii := h; ii < mr32; ii++ {
		for l := 0; l < kc; l++ {
			ap[l*mr32+ii] = 0
		}
	}
}

// kernelTile32 computes the full mr32×nr32 register tile
//
//	out[ii*nr32+jj] = Σ_l ap[l*mr32+ii] · bp[l*nr32+jj]
//
// over one packed A sliver and one packed B micro-panel. On amd64 with
// AVX2+FMA the tile runs in sgemmKernel8x16; elsewhere (and under -tags
// noasm) the pure-Go fallback computes the same tile with one rounding per
// multiply and add instead of fused multiply-adds — the cross-path
// difference is bounded by the equivalence suite's f64-reference tolerance.
func kernelTile32(kc int, ap, bp []float32, out *[mr32 * nr32]float32) {
	if useAsmKernel {
		sgemmKernel8x16(kc, &ap[0], &bp[0], &out[0])
		return
	}
	kernelTile32Go(kc, ap, bp, out)
}

func kernelTile32Go(kc int, ap, bp []float32, out *[mr32 * nr32]float32) {
	for i := range out {
		out[i] = 0
	}
	_ = ap[:kc*mr32]
	_ = bp[:kc*nr32]
	for l := 0; l < kc; l++ {
		av := ap[l*mr32 : l*mr32+mr32]
		bv := bp[l*nr32 : l*nr32+nr32]
		for ii, a := range av {
			o := out[ii*nr32 : ii*nr32+nr32]
			for jj, b := range bv {
				o[jj] += a * b
			}
		}
	}
}

// foldTile32 folds the computed register tile into C with the same beta
// semantics as foldTile (beta==0 assigns, discarding stale contents).
func foldTile32(out *[mr32 * nr32]float32, alpha, beta float32, c *tensor.Matrix32, i0, j0, h, w int) {
	for ii := 0; ii < h; ii++ {
		crow := c.Data[(i0+ii)*c.Stride+j0:][:w]
		acc := out[ii*nr32 : ii*nr32+w]
		switch beta {
		case 1:
			for jj, v := range acc {
				crow[jj] += alpha * v
			}
		case 0:
			for jj, v := range acc {
				crow[jj] = alpha * v
			}
		default:
			for jj, v := range acc {
				crow[jj] = beta*crow[jj] + alpha*v
			}
		}
	}
}

// gemmState32 is the pooled loop descriptor of one float32 packed GEMM,
// mirroring gemmState: it implements parallel.Ranger so row-tile ranges are
// submitted without closure allocation, and the packed B panel is written
// once by the submitting goroutine and shared read-only by every worker.
type gemmState32 struct {
	a, c           *tensor.Matrix32
	transA, transB bool
	alpha, beta    float32
	m              int
	pc, kc, jc, nc int
	first          bool
	bArena         *arena32
	bp             []float32
}

var gemmState32Pool = sync.Pool{New: func() any { return new(gemmState32) }}

// Range processes row tiles [lo, hi) of the current panel; tile t covers C
// rows [t*mr32, t*mr32+mr32). Each worker packs its own A slivers into a
// worker-local arena and reuses them across the panel's micro-panels.
func (g *gemmState32) Range(lo, hi int) {
	ar := arena32Pool.Get().(*arena32)
	ap := ar.ensure(g.kc * mr32)
	beta := float32(1)
	if g.first {
		beta = g.beta
	}
	panels := (g.nc + nr32 - 1) / nr32
	var acc [mr32 * nr32]float32
	for t := lo; t < hi; t++ {
		i0 := t * mr32
		h := mr32
		if rem := g.m - i0; rem < h {
			h = rem
		}
		packA32(ap, g.a, g.transA, i0, h, g.pc, g.kc)
		for jp := 0; jp < panels; jp++ {
			j0 := g.jc + jp*nr32
			w := nr32
			if rem := g.jc + g.nc - j0; rem < w {
				w = rem
			}
			kernelTile32(g.kc, ap, g.bp[jp*g.kc*nr32:(jp+1)*g.kc*nr32], &acc)
			foldTile32(&acc, g.alpha, beta, g.c, i0, j0, h, w)
		}
	}
	arena32Pool.Put(ar)
}

// gemmPacked32 runs C = alpha·op(A)·op(B) + beta·C through the float32
// packed micro-kernel, parallelized over row tiles when the level and pool
// allow. The k summation order is fixed by the packing loop and every C
// tile is written by exactly one worker, so results are bit-identical for
// any worker count.
func gemmPacked32(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float32, a, b *tensor.Matrix32, beta float32, c *tensor.Matrix32, m, k, n int) {
	g := gemmState32Pool.Get().(*gemmState32)
	g.a, g.c = a, c
	g.transA, g.transB = transA, transB
	g.alpha, g.beta = alpha, beta
	g.m = m
	g.bArena = arena32Pool.Get().(*arena32)
	useDeviceParallel := lvl.IsParallel() && pool != nil && pool.Workers() > 1
	tiles := (m + mr32 - 1) / mr32
	for jc := 0; jc < n; jc += ncBlock32 {
		nc := ncBlock32
		if rem := n - jc; rem < nc {
			nc = rem
		}
		for pc := 0; pc < k; pc += kcBlock32 {
			kc := kcBlock32
			if rem := k - pc; rem < kc {
				kc = rem
			}
			g.pc, g.kc, g.jc, g.nc = pc, kc, jc, nc
			g.first = pc == 0
			g.bp = g.bArena.ensure(((nc + nr32 - 1) / nr32) * kc * nr32)
			packB32(g.bp, b, transB, pc, kc, jc, nc)
			if useDeviceParallel {
				pool.ForRanger(tiles, parallel.Static, 0, g)
			} else {
				g.Range(0, tiles)
			}
		}
	}
	arena32Pool.Put(g.bArena)
	*g = gemmState32{}
	gemmState32Pool.Put(g)
}
