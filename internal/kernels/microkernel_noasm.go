//go:build !amd64

package kernels

// Non-amd64 builds always take the pure-Go micro-kernel.
const useAsmKernel = false

func dgemmKernel4x8(kc int, ap, bp, out *float64) {
	panic("kernels: assembly micro-kernel not available on this architecture")
}
