//go:build !amd64 || noasm

package kernels

// Non-amd64 and -tags noasm builds always take the pure-Go micro-kernels.
const useAsmKernel = false

func dgemmKernel4x8(kc int, ap, bp, out *float64) {
	panic("kernels: assembly micro-kernel not available in this build")
}

func sgemmKernel8x16(kc int, ap, bp, out *float32) {
	panic("kernels: assembly micro-kernel not available in this build")
}
