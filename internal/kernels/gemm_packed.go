package kernels

import (
	"sync"

	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// gemmState is the loop descriptor of one packed GEMM. It implements
// parallel.Ranger so row-tile ranges can be submitted to the pool without
// allocating a closure, and it is pooled so steady-state packed GEMMs
// allocate nothing at all. The packed B panel inside it is written by the
// submitting goroutine and shared read-only by every worker: each panel is
// packed exactly once per GEMM, not once per worker.
type gemmState struct {
	a, c           *tensor.Matrix
	transA, transB bool
	alpha, beta    float64
	m              int
	// Current panel: op(B)[pc:pc+kc, jc:jc+nc] packed into bp.
	pc, kc, jc, nc int
	first          bool // first k-panel of this jc block: fold beta here
	bArena         *arena
	bp             []float64
}

var gemmStatePool = sync.Pool{New: func() any { return new(gemmState) }}

// Range processes row tiles [lo, hi) (tile t covers C rows
// [t*mr, t*mr+mr)) of the current panel. Each worker packs its own op(A)
// slivers into a worker-local arena (mr×kc ≈ 8 KiB, L1-resident) and reuses
// the sliver across every micro-panel of the shared packed B.
func (g *gemmState) Range(lo, hi int) {
	ar := arenaPool.Get().(*arena)
	ap := ar.ensure(g.kc * mr)
	beta := 1.0
	if g.first {
		beta = g.beta
	}
	panels := (g.nc + nr - 1) / nr
	var acc [mr * nr]float64
	for t := lo; t < hi; t++ {
		i0 := t * mr
		h := mr
		if rem := g.m - i0; rem < h {
			h = rem
		}
		packA(ap, g.a, g.transA, i0, h, g.pc, g.kc)
		for jp := 0; jp < panels; jp++ {
			j0 := g.jc + jp*nr
			w := nr
			if rem := g.jc + g.nc - j0; rem < w {
				w = rem
			}
			kernelTile(g.kc, ap, g.bp[jp*g.kc*nr:(jp+1)*g.kc*nr], &acc)
			foldTile(&acc, g.alpha, beta, g.c, i0, j0, h, w)
		}
	}
	arenaPool.Put(ar)
}

// gemmPacked runs C = alpha·op(A)·op(B) + beta·C through the packed
// micro-kernel, parallelized over row tiles when the level and pool allow.
// The summation order over k is fixed by the packing loop (k-panels in
// ascending order, ascending l within a panel) and every C tile is written
// by exactly one worker, so results are bit-identical for any worker count
// — Blocked and ParallelBlocked produce the same floats.
func gemmPacked(pool *parallel.Pool, lvl Level, transA, transB bool, alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix, m, k, n int) {
	g := gemmStatePool.Get().(*gemmState)
	g.a, g.c = a, c
	g.transA, g.transB = transA, transB
	g.alpha, g.beta = alpha, beta
	g.m = m
	g.bArena = arenaPool.Get().(*arena)
	useDeviceParallel := lvl.IsParallel() && pool != nil && pool.Workers() > 1
	tiles := (m + mr - 1) / mr
	for jc := 0; jc < n; jc += ncBlock {
		nc := ncBlock
		if rem := n - jc; rem < nc {
			nc = rem
		}
		for pc := 0; pc < k; pc += kcBlock {
			kc := kcBlock
			if rem := k - pc; rem < kc {
				kc = rem
			}
			g.pc, g.kc, g.jc, g.nc = pc, kc, jc, nc
			g.first = pc == 0
			g.bp = g.bArena.ensure(((nc + nr - 1) / nr) * kc * nr)
			packB(g.bp, b, transB, pc, kc, jc, nc)
			if useDeviceParallel {
				pool.ForRanger(tiles, parallel.Static, 0, g)
			} else {
				g.Range(0, tiles)
			}
		}
	}
	arenaPool.Put(g.bArena)
	*g = gemmState{}
	gemmStatePool.Put(g)
}
