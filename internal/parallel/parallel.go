// Package parallel is phideep's OpenMP substitute: a long-lived worker pool
// with parallel-for, reductions and a reusable barrier.
//
// The paper parallelizes loop nests with OpenMP and observes that the
// granularity of parallel regions matters — small loop bodies drown in
// synchronization cost (§IV.B.2). This package mirrors that programming
// model: a fixed pool of workers, static or dynamic iteration scheduling,
// and fork/join semantics per For call. The *simulated* fork/join cost that
// drives the paper's timing figures is charged separately by
// internal/device; this package provides the real concurrent execution used
// when kernels run numerically.
//
// The fork/join itself is allocation-free in steady state: the loop
// descriptor lives in preallocated per-pool slots, workers are woken through
// per-worker buffered channels, and one reusable sync.WaitGroup forms the
// join barrier. No closures are created and no per-block channel sends
// happen inside For/ReduceSum/Run — the real-execution analogue of the
// paper's granularity observation.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"phideep/internal/metrics"
)

// Observability handles (DESIGN.md §"Observability"). Regions, items and
// durations are recorded per fork/join submission — For, ForRanger,
// ReduceSum and Run each count as one region — and only when
// metrics.Enabled() holds, so the allocation-free steady state of the hot
// loop is untouched when collection is off.
var (
	mRegions       = metrics.Default().Counter("parallel.regions")
	mRegionItems   = metrics.Default().Counter("parallel.region.items")
	mRegionSeconds = metrics.Default().Histogram("parallel.region.seconds", metrics.ExpBuckets(1e-6, 4, 12)...)
	mPoolWorkers   = metrics.Default().Gauge("parallel.workers")
)

// Schedule selects how loop iterations are assigned to workers, mirroring
// OpenMP's schedule(static) and schedule(dynamic).
type Schedule int

const (
	// Static pre-partitions the iteration space into one contiguous block
	// per worker. Lowest overhead; best for uniform bodies.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter as workers
	// become free. Higher overhead; best for irregular bodies.
	Dynamic
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Ranger is an iteration body passed by reference. ForRanger callers that
// reuse a Ranger value (e.g. from a sync.Pool) submit loops with zero
// allocations, where a closure passed to For would be allocated at the call
// site on every invocation.
type Ranger interface {
	// Range processes iterations [lo, hi).
	Range(lo, hi int)
}

// loopMode tags the kind of parallel region stored in the pool's descriptor
// slots.
type loopMode int

const (
	modeNone loopMode = iota
	modeStatic
	modeDynamic
	modeReduce
	modeThunks
)

// Pool is a fixed set of workers executing parallel loops. The zero value
// is not usable; call NewPool. A Pool is safe for use from one goroutine at
// a time (nested For calls from loop bodies are not supported, matching the
// paper's single level of OpenMP parallelism).
type Pool struct {
	workers int
	wake    []chan struct{} // per-worker wake-up, buffered 1
	done    chan struct{}
	wg      sync.WaitGroup // reusable join barrier
	closed  atomic.Bool
	mu      sync.Mutex // serializes Close

	// Descriptor of the in-flight parallel region. Written by the
	// submitting goroutine before the wake sends, read by workers after
	// receiving them (the channel send establishes the happens-before
	// edge), cleared after the join so captured state can be collected.
	mode     loopMode
	fn       func(lo, hi int)
	ranger   Ranger
	red      func(lo, hi int) float64
	thunks   []func()
	n        int
	per      int // static block size: ceil(n/workers)
	chunk    int
	cursor   atomic.Int64 // dynamic-schedule / thunk work cursor
	partials []float64    // per-block reduction slots
}

// NewPool creates a pool with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:  workers,
		wake:     make([]chan struct{}, workers),
		done:     make(chan struct{}),
		partials: make([]float64, workers),
	}
	for i := 0; i < workers; i++ {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(i)
	}
	mPoolWorkers.Set(float64(workers))
	return p
}

// regionStart returns the region's start time when metrics are enabled, or
// the zero Time when disabled (one atomic load on the hot path).
func regionStart() time.Time {
	if metrics.Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// regionEnd records one fork/join region of n iterations. A zero start
// (metrics disabled at regionStart) records nothing.
func regionEnd(start time.Time, n int) {
	if start.IsZero() {
		return
	}
	mRegionSeconds.Observe(time.Since(start).Seconds())
	mRegions.Inc()
	mRegionItems.Add(int64(n))
}

func (p *Pool) worker(id int) {
	for {
		select {
		case <-p.wake[id]:
			p.run(id)
			p.wg.Done()
		case <-p.done:
			return
		}
	}
}

// run executes worker id's share of the current region.
func (p *Pool) run(id int) {
	switch p.mode {
	case modeStatic:
		lo := id * p.per
		if lo < p.n {
			hi := lo + p.per
			if hi > p.n {
				hi = p.n
			}
			p.call(lo, hi)
		}
	case modeDynamic:
		for {
			hi := int(p.cursor.Add(int64(p.chunk)))
			lo := hi - p.chunk
			if lo >= p.n {
				return
			}
			if hi > p.n {
				hi = p.n
			}
			p.call(lo, hi)
		}
	case modeReduce:
		lo := id * p.per
		if lo < p.n {
			hi := lo + p.per
			if hi > p.n {
				hi = p.n
			}
			p.partials[id] = p.red(lo, hi)
		}
	case modeThunks:
		for {
			i := int(p.cursor.Add(1)) - 1
			if i >= len(p.thunks) {
				return
			}
			p.thunks[i]()
		}
	}
}

func (p *Pool) call(lo, hi int) {
	if p.fn != nil {
		p.fn(lo, hi)
	} else {
		p.ranger.Range(lo, hi)
	}
}

// fork wakes every worker, waits for all of them to finish the region
// described in the pool's slots, then clears the descriptor. One channel
// send per worker, no allocations.
func (p *Pool) fork() {
	p.wg.Add(p.workers)
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.mode = modeNone
	p.fn = nil
	p.ranger = nil
	p.red = nil
	p.thunks = nil
}

func (p *Pool) checkOpen(op string) {
	if p.closed.Load() {
		panic("parallel: Pool." + op + " called after Close")
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers. For must not be called after Close (it panics
// rather than hanging on the stopped workers). Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.CompareAndSwap(false, true) {
		close(p.done)
	}
}

// For executes body(lo, hi) over a partition of [0, n) using the given
// schedule and returns when every iteration has completed (fork/join).
// chunk is the dynamic chunk size; it is ignored for Static and defaults to
// ceil(n/(8*workers)) when <= 0.
func (p *Pool) For(n int, s Schedule, chunk int, body func(lo, hi int)) {
	p.checkOpen("For")
	if n <= 0 {
		return
	}
	start := regionStart()
	if p.workers == 1 {
		body(0, n)
	} else {
		p.fn = body
		p.submit(n, s, chunk)
	}
	regionEnd(start, n)
}

// ForRanger is For with an interface body instead of a func. Passing a
// pointer-typed Ranger avoids the closure allocation of For, which keeps
// hot kernels (the packed GEMM) allocation-free.
func (p *Pool) ForRanger(n int, s Schedule, chunk int, body Ranger) {
	p.checkOpen("ForRanger")
	if n <= 0 {
		return
	}
	start := regionStart()
	if p.workers == 1 {
		body.Range(0, n)
	} else {
		p.ranger = body
		p.submit(n, s, chunk)
	}
	regionEnd(start, n)
}

func (p *Pool) submit(n int, s Schedule, chunk int) {
	p.n = n
	switch s {
	case Static:
		p.mode = modeStatic
		p.per = (n + p.workers - 1) / p.workers
	case Dynamic:
		if chunk <= 0 {
			chunk = (n + 8*p.workers - 1) / (8 * p.workers)
			if chunk < 1 {
				chunk = 1
			}
		}
		p.mode = modeDynamic
		p.chunk = chunk
		p.cursor.Store(0)
	default:
		p.fn, p.ranger = nil, nil
		panic(fmt.Sprintf("parallel: unknown schedule %d", int(s)))
	}
	p.fork()
}

// ReduceSum evaluates body over a static partition of [0, n), where body
// returns a partial sum for its block, and returns the total. Partials are
// combined in block order so the result is deterministic for a fixed n and
// worker count.
func (p *Pool) ReduceSum(n int, body func(lo, hi int) float64) float64 {
	p.checkOpen("ReduceSum")
	if n <= 0 {
		return 0
	}
	start := regionStart()
	if p.workers == 1 {
		total := body(0, n)
		regionEnd(start, n)
		return total
	}
	p.mode = modeReduce
	p.red = body
	p.n = n
	p.per = (n + p.workers - 1) / p.workers
	blocks := (n + p.per - 1) / p.per
	p.fork()
	total := 0.0
	for _, v := range p.partials[:blocks] {
		total += v
	}
	regionEnd(start, n)
	return total
}

// Run executes the given thunks concurrently and waits for all of them.
// It is the building block for the Fig. 6 dependency-graph schedule, where
// independent matrix operations of the RBM gradient run at the same time.
func (p *Pool) Run(thunks ...func()) {
	p.checkOpen("Run")
	if len(thunks) == 0 {
		return
	}
	start := regionStart()
	if len(thunks) == 1 || p.workers == 1 {
		for _, f := range thunks {
			f()
		}
	} else {
		p.mode = modeThunks
		p.thunks = thunks
		p.cursor.Store(0)
		p.fork()
	}
	regionEnd(start, len(thunks))
}
