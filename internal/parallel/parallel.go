// Package parallel is phideep's OpenMP substitute: a long-lived worker pool
// with parallel-for, reductions and a reusable barrier.
//
// The paper parallelizes loop nests with OpenMP and observes that the
// granularity of parallel regions matters — small loop bodies drown in
// synchronization cost (§IV.B.2). This package mirrors that programming
// model: a fixed pool of workers, static or dynamic iteration scheduling,
// and fork/join semantics per For call. The *simulated* fork/join cost that
// drives the paper's timing figures is charged separately by
// internal/device; this package provides the real concurrent execution used
// when kernels run numerically.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Schedule selects how loop iterations are assigned to workers, mirroring
// OpenMP's schedule(static) and schedule(dynamic).
type Schedule int

const (
	// Static pre-partitions the iteration space into one contiguous block
	// per worker. Lowest overhead; best for uniform bodies.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter as workers
	// become free. Higher overhead; best for irregular bodies.
	Dynamic
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Pool is a fixed set of workers executing parallel loops. The zero value
// is not usable; call NewPool. A Pool is safe for use from one goroutine at
// a time (nested For calls from loop bodies are not supported, matching the
// paper's single level of OpenMP parallelism).
type Pool struct {
	workers int
	tasks   chan func()
	done    chan struct{}
	closed  bool
	mu      sync.Mutex
}

// NewPool creates a pool with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), workers),
		done:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case f := <-p.tasks:
			f()
		case <-p.done:
			return
		}
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers. For must not be called after Close. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
}

// For executes body(lo, hi) over a partition of [0, n) using the given
// schedule and returns when every iteration has completed (fork/join).
// chunk is the dynamic chunk size; it is ignored for Static and defaults to
// ceil(n/(8*workers)) when <= 0.
func (p *Pool) For(n int, s Schedule, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		body(0, n)
		return
	}
	switch s {
	case Static:
		p.forStatic(n, body)
	case Dynamic:
		p.forDynamic(n, chunk, body)
	default:
		panic(fmt.Sprintf("parallel: unknown schedule %d", int(s)))
	}
}

func (p *Pool) forStatic(n int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	per := (n + p.workers - 1) / p.workers
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		p.tasks <- func() {
			defer wg.Done()
			body(lo, hi)
		}
	}
	wg.Wait()
}

func (p *Pool) forDynamic(n, chunk int, body func(lo, hi int)) {
	if chunk <= 0 {
		chunk = (n + 8*p.workers - 1) / (8 * p.workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	take := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo := next
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		p.tasks <- func() {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				body(lo, hi)
			}
		}
	}
	wg.Wait()
}

// ReduceSum evaluates body over a static partition of [0, n), where body
// returns a partial sum for its block, and returns the total. Partials are
// combined in block order so the result is deterministic for a fixed n and
// worker count.
func (p *Pool) ReduceSum(n int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if p.workers == 1 {
		return body(0, n)
	}
	per := (n + p.workers - 1) / p.workers
	blocks := (n + per - 1) / per
	partials := make([]float64, blocks)
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		lo := b * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		b, lo, hi := b, lo, hi
		p.tasks <- func() {
			defer wg.Done()
			partials[b] = body(lo, hi)
		}
	}
	wg.Wait()
	total := 0.0
	for _, v := range partials {
		total += v
	}
	return total
}

// Run executes the given thunks concurrently and waits for all of them.
// It is the building block for the Fig. 6 dependency-graph schedule, where
// independent matrix operations of the RBM gradient run at the same time.
func (p *Pool) Run(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	if len(thunks) == 1 || p.workers == 1 {
		for _, f := range thunks {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for _, f := range thunks {
		wg.Add(1)
		f := f
		p.tasks <- func() {
			defer wg.Done()
			f()
		}
	}
	wg.Wait()
}
