package parallel

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		pool := NewPool(workers)
		for _, sched := range []Schedule{Static, Dynamic} {
			for _, n := range []int{0, 1, 5, 100, 1001} {
				counts := make([]int32, n)
				pool.For(n, sched, 3, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d sched=%v n=%d: index %d visited %d times", workers, sched, n, i, c)
					}
				}
			}
		}
		pool.Close()
	}
}

func TestForQuick(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	f := func(nRaw uint16, dynamic bool, chunkRaw uint8) bool {
		n := int(nRaw) % 500
		sched := Static
		if dynamic {
			sched = Dynamic
		}
		var total int64
		pool.For(n, sched, int(chunkRaw)%20, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumDeterministic(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	body := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i) * 1e-3
		}
		return s
	}
	first := pool.ReduceSum(10007, body)
	for i := 0; i < 5; i++ {
		if got := pool.ReduceSum(10007, body); got != first {
			t.Fatalf("ReduceSum nondeterministic: %g vs %g", got, first)
		}
	}
	// Against the serial oracle (same block combination order makes this
	// exact for a single-worker pool; allow tiny fp slack vs multi-block).
	serial := body(0, 10007)
	if diff := first - serial; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ReduceSum %g vs serial %g", first, serial)
	}
	if pool.ReduceSum(0, body) != 0 {
		t.Fatal("empty ReduceSum must be 0")
	}
}

func TestRunExecutesAllThunks(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var mu sync.Mutex
	got := map[int]bool{}
	thunks := make([]func(), 9)
	for i := range thunks {
		i := i
		thunks[i] = func() {
			mu.Lock()
			got[i] = true
			mu.Unlock()
		}
	}
	pool.Run(thunks...)
	if len(got) != 9 {
		t.Fatalf("only %d thunks ran", len(got))
	}
	pool.Run() // no-op
	ran := false
	pool.Run(func() { ran = true })
	if !ran {
		t.Fatal("single thunk did not run")
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	n := 0
	pool.For(10, Static, 0, func(lo, hi int) { n += hi - lo })
	if n != 10 {
		t.Fatal("single-worker For")
	}
}

func TestWorkersAndDefaults(t *testing.T) {
	pool := NewPool(0)
	if pool.Workers() < 1 {
		t.Fatal("default pool empty")
	}
	pool.Close()
	pool.Close() // idempotent
	p3 := NewPool(3)
	defer p3.Close()
	if p3.Workers() != 3 {
		t.Fatal("explicit size ignored")
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("schedule names")
	}
	if Schedule(9).String() != "Schedule(9)" {
		t.Fatal("unknown schedule name")
	}
}

func TestUnknownSchedulePanics(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown schedule")
		}
	}()
	pool.For(5, Schedule(9), 0, func(lo, hi int) {})
}

func TestDynamicWithLargeChunk(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var total int64
	pool.For(10, Dynamic, 100, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
	if total != 10 {
		t.Fatal("chunk larger than n mishandled")
	}
}

// rangeCounter is a Ranger that tallies covered indices.
type rangeCounter struct {
	mu   sync.Mutex
	seen map[int]int
}

func (rc *rangeCounter) Range(lo, hi int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i := lo; i < hi; i++ {
		rc.seen[i]++
	}
}

func TestForRangerCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		pool := NewPool(workers)
		for _, s := range []Schedule{Static, Dynamic} {
			for _, n := range []int{0, 1, 7, 64, 101} {
				rc := &rangeCounter{seen: make(map[int]int)}
				pool.ForRanger(n, s, 3, rc)
				if len(rc.seen) != n {
					t.Fatalf("workers=%d %v n=%d: covered %d indices", workers, s, n, len(rc.seen))
				}
				for i, c := range rc.seen {
					if c != 1 || i < 0 || i >= n {
						t.Fatalf("workers=%d %v n=%d: index %d visited %d times", workers, s, n, i, c)
					}
				}
			}
		}
		pool.Close()
	}
}

// TestPoolUseAfterClosePanics checks the guarded-Close contract: every
// submission API must fail fast with a clear panic instead of hanging on
// the stopped workers.
func TestPoolUseAfterClosePanics(t *testing.T) {
	calls := []struct {
		name string
		call func(p *Pool)
	}{
		{"For", func(p *Pool) { p.For(4, Static, 0, func(lo, hi int) {}) }},
		{"ForRanger", func(p *Pool) { p.ForRanger(4, Static, 0, &rangeCounter{seen: map[int]int{}}) }},
		{"ReduceSum", func(p *Pool) { p.ReduceSum(4, func(lo, hi int) float64 { return 0 }) }},
		{"Run", func(p *Pool) { p.Run(func() {}, func() {}) }},
	}
	for _, tc := range calls {
		pool := NewPool(2)
		pool.Close()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s after Close did not panic", tc.name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "after Close") || !strings.Contains(msg, tc.name) {
					t.Fatalf("%s after Close: unexpected panic %v", tc.name, r)
				}
			}()
			tc.call(pool)
		}()
	}
}

// TestForkJoinDoesNotAllocate checks the allocation-free fork/join claim:
// steady-state ForRanger and ReduceSum submissions allocate nothing (the
// loop descriptor lives in the pool, workers are woken via preallocated
// channels, and the join barrier is reused).
func TestForkJoinDoesNotAllocate(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	rc := &rangeCounter{seen: make(map[int]int)}
	red := func(lo, hi int) float64 { return float64(hi - lo) }
	// Warm up once so lazily-grown state settles.
	pool.ForRanger(64, Static, 0, rc)
	pool.ReduceSum(64, red)
	if avg := testing.AllocsPerRun(50, func() {
		pool.ForRanger(64, Static, 0, rc)
	}); avg > 0.5 {
		t.Fatalf("ForRanger allocates %.1f objects per call", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		pool.ReduceSum(64, red)
	}); avg > 0.5 {
		t.Fatalf("ReduceSum allocates %.1f objects per call", avg)
	}
}
