// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout phideep.
//
// Experiments in the paper must be regenerated bit-for-bit across runs and
// platforms, so the library does not depend on math/rand's global state or
// on its version-dependent algorithms. The generator here is xoshiro256**
// seeded through SplitMix64, the combination recommended by the xoshiro
// authors. It is not cryptographically secure and must not be used for
// anything but workload generation and weight initialization.
package rng

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RNG is a deterministic xoshiro256** generator. The zero value is invalid;
// use New. RNG is not safe for concurrent use; give each goroutine its own
// stream via Split.
type RNG struct {
	s [4]uint64
	// spare caches the second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from the given seed. Any seed, including
// zero, yields a well-mixed state.
func New(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to spread the seed across the 256-bit state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, advancing r. Streams
// produced by successive Split calls are statistically independent for the
// purposes of workload generation.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box-Muller, with caching of the
// spare value so consecutive calls cost one transform per pair).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		mag := math.Sqrt(-2 * math.Log(u))
		r.spare = mag * math.Sin(2*math.Pi*v)
		r.hasSpare = true
		return mag * math.Cos(2*math.Pi*v)
	}
}

// Bernoulli returns 1 with probability p and 0 otherwise.
func (r *RNG) Bernoulli(p float64) float64 {
	if r.Float64() < p {
		return 1
	}
	return 0
}

// marshaledSize is the encoded size of the full generator state: four
// 64-bit state words, the Box-Muller spare, and the spare-valid flag.
const marshaledSize = 4*8 + 8 + 1

// MarshalBinary implements encoding.BinaryMarshaler. The encoding captures
// the complete generator state (including the cached Box-Muller spare), so
// a restored generator continues the exact same stream — the property
// checkpoint/resume training relies on.
func (r *RNG) MarshalBinary() ([]byte, error) {
	buf := make([]byte, marshaledSize)
	for i, s := range r.s {
		binary.LittleEndian.PutUint64(buf[8*i:], s)
	}
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(r.spare))
	if r.hasSpare {
		buf[40] = 1
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, restoring state
// written by MarshalBinary.
func (r *RNG) UnmarshalBinary(data []byte) error {
	if len(data) != marshaledSize {
		return fmt.Errorf("rng: state is %d bytes, want %d", len(data), marshaledSize)
	}
	if data[40] > 1 {
		return fmt.Errorf("rng: corrupt spare flag %d", data[40])
	}
	for i := range r.s {
		r.s[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	r.spare = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	r.hasSpare = data[40] == 1
	return nil
}

// MarshaledSize returns the fixed byte length of MarshalBinary's encoding,
// for readers that frame the state inside a larger checkpoint.
func MarshaledSize() int { return marshaledSize }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
