package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedWellMixed(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 0 {
		t.Fatalf("zero seed produced %d zero outputs", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(4)
	n := 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %g far from 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("variance %g far from 1/12", variance)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	n := 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %g", variance)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(6)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform(-2,3) = %g", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(8)
	if r.Bernoulli(0) != 0 {
		t.Fatal("Bernoulli(0) must be 0")
	}
	if r.Bernoulli(1) != 1 {
		t.Fatal("Bernoulli(1) must be 1")
	}
	ones := 0.0
	for i := 0; i < 10000; i++ {
		ones += r.Bernoulli(0.7)
	}
	if f := ones / 10000; math.Abs(f-0.7) > 0.02 {
		t.Fatalf("Bernoulli(0.7) frequency %g", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(9)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestMarshalRoundTripContinuesStream(t *testing.T) {
	r := New(42)
	r.Norm() // leave a cached Box-Muller spare in the state
	state, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != MarshaledSize() {
		t.Fatalf("state is %d bytes, want %d", len(state), MarshaledSize())
	}
	want := make([]float64, 10)
	for i := range want {
		want[i] = r.Norm()
	}
	restored := New(0)
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := restored.Norm(); got != want[i] {
			t.Fatalf("restored stream diverged at %d: %g vs %g", i, got, want[i])
		}
	}
}

func TestUnmarshalRejectsBadState(t *testing.T) {
	r := New(1)
	if err := r.UnmarshalBinary(make([]byte, 7)); err == nil {
		t.Fatal("short state accepted")
	}
	state, _ := New(2).MarshalBinary()
	state[40] = 9
	if err := r.UnmarshalBinary(state); err == nil {
		t.Fatal("corrupt spare flag accepted")
	}
}
