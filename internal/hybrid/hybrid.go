// Package hybrid implements the paper's second future-work item: "a
// further combination between Xeon and Intel Xeon Phi can bring us higher
// efficiency. Since the transferring speed between Xeon and Intel Xeon Phi
// is slow, the transferring cost can be intolerable when the model becomes
// large."
//
// Each minibatch is split between the host CPU and the coprocessor in
// proportion to their modeled throughput; both compute partial gradients on
// their shard, the shards are exchanged and averaged (the coprocessor pays
// PCIe both ways — gradients out, combined gradients in), and both replicas
// apply the same update. The simulated timelines of the two devices run
// concurrently; every step ends with a synchronization barrier at the later
// of the two finish times plus the exchange.
//
// The experiments quantify the paper's caveat as a negative result under
// this cost model: on small models the coprocessor's fixed parallel-region
// launch overhead does not shrink with its shard (so at best the hybrid
// matches the better single device), and on large models the per-step
// gradient exchange over PCIe is, exactly as the paper put it,
// "intolerable". The throughput-balancing splitter therefore pushes the
// shard toward whichever device wins outright, and the measured hybrid gain
// never exceeds a few percent.
package hybrid

import (
	"fmt"

	"math"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/tensor"
)

// AEConfig parameterizes a hybrid Sparse Autoencoder trainer.
type AEConfig struct {
	Model autoencoder.Config
	// Batch is the combined minibatch size, split between the devices.
	Batch int
	// PhiShare is the fraction of each batch sent to the coprocessor; 0
	// selects the throughput-proportional split from the cost model.
	PhiShare float64
	// Seed initializes both replicas identically. BuildAE uses it; the
	// deprecated NewAE fills it from its positional argument. Zero is a
	// valid seed.
	Seed uint64
}

// AE trains one Sparse Autoencoder data-parallel across a host context and
// a coprocessor context.
type AE struct {
	Cfg AEConfig

	phi, host           *autoencoder.Model
	phiBatch, hostBatch int

	// synchronized simulated time: both replicas have identical
	// parameters and may start their next step at this instant.
	syncedAt float64
	steps    int
}

// NewAE builds the pair of replicas with the models initialized
// identically from seed.
//
// Deprecated: use BuildAE with AEConfig.Seed set.
func NewAE(phiCtx, hostCtx *blas.Context, cfg AEConfig, seed uint64) (*AE, error) {
	cfg.Seed = seed
	return BuildAE(phiCtx, hostCtx, cfg)
}

// BuildAE builds the pair of replicas. phiCtx must be bound to a device
// with a PCIe link (the coprocessor); hostCtx to a host device. The models
// are initialized identically from cfg.Seed.
func BuildAE(phiCtx, hostCtx *blas.Context, cfg AEConfig) (*AE, error) {
	if cfg.Batch < 2 {
		return nil, fmt.Errorf("hybrid: combined batch %d too small to split", cfg.Batch)
	}
	if cfg.PhiShare < 0 || cfg.PhiShare >= 1 {
		return nil, fmt.Errorf("hybrid: phi share %g outside [0, 1)", cfg.PhiShare)
	}
	if phiCtx.Dev.Arch.PCIeBW <= 0 {
		return nil, fmt.Errorf("hybrid: phi context device %q has no PCIe link", phiCtx.Dev.Arch.Name)
	}
	share := cfg.PhiShare
	if share == 0 {
		share = throughputShare(phiCtx, hostCtx, cfg)
	}
	phiBatch := int(float64(cfg.Batch)*share + 0.5)
	if phiBatch < 1 {
		phiBatch = 1
	}
	if phiBatch >= cfg.Batch {
		phiBatch = cfg.Batch - 1
	}
	h := &AE{Cfg: cfg, phiBatch: phiBatch, hostBatch: cfg.Batch - phiBatch}

	var err error
	phiModel, hostModel := cfg.Model, cfg.Model
	phiModel.Batch, phiModel.Seed = h.phiBatch, cfg.Seed
	hostModel.Batch, hostModel.Seed = h.hostBatch, cfg.Seed
	h.phi, err = autoencoder.Build(phiCtx, phiModel)
	if err != nil {
		return nil, fmt.Errorf("hybrid: phi replica: %w", err)
	}
	h.host, err = autoencoder.Build(hostCtx, hostModel)
	if err != nil {
		h.phi.Free()
		return nil, fmt.Errorf("hybrid: host replica: %w", err)
	}
	return h, nil
}

// throughputShare estimates the coprocessor's share of a batch so both
// devices finish their shards together. Each device's per-step cost is
// probed at two shard sizes with timing-only replicas and fitted as
// t(b) = fixed + perExample·b — the fixed term matters, because the Phi's
// parallel-region launch overhead does not shrink with the shard.
func throughputShare(phiCtx, hostCtx *blas.Context, cfg AEConfig) float64 {
	aP, cP := probeStepCost(phiCtx, cfg.Model, cfg.Batch)
	aH, cH := probeStepCost(hostCtx, cfg.Model, cfg.Batch)
	// Equalize aP + cP·bP = aH + cH·(B − bP).
	b := float64(cfg.Batch)
	denom := cP + cH
	if denom <= 0 {
		return 0.5
	}
	bP := (aH - aP + cH*b) / denom
	share := bP / b
	if share < 1/b {
		share = 1 / b
	}
	if share > 1-1/b {
		share = 1 - 1/b
	}
	return share
}

// probeStepCost fits one device's per-step cost t(b) = fixed + perExample·b
// from timing-only runs at the full and half batch.
func probeStepCost(ctx *blas.Context, model autoencoder.Config, batch int) (fixed, perExample float64) {
	b1, b2 := batch, batch/2
	if b2 < 1 {
		b2 = 1
	}
	t1 := probeOneStep(ctx, model, b1)
	t2 := probeOneStep(ctx, model, b2)
	if b1 == b2 {
		return 0, t1 / float64(b1)
	}
	perExample = (t1 - t2) / float64(b1-b2)
	if perExample < 0 {
		perExample = 0
	}
	fixed = t1 - perExample*float64(b1)
	if fixed < 0 {
		fixed = 0
	}
	return fixed, perExample
}

// probeOneStep models one steady-state training step on a fresh
// timing-only device with the context's configuration: two steps are
// issued and the second one is timed, so one-time costs (the initial
// weight upload) do not contaminate the per-step estimate.
func probeOneStep(ctx *blas.Context, model autoencoder.Config, batch int) float64 {
	dev := device.New(ctx.Dev.Arch, false, nil)
	probe := *ctx
	probe.Dev = dev
	model.Batch, model.Seed = batch, 1
	m, err := autoencoder.Build(&probe, model)
	if err != nil {
		// Shard too large for the probe device: treat as very slow so the
		// split avoids it.
		return math.Inf(1)
	}
	defer m.Free()
	x := dev.MustAlloc(batch, model.Visible)
	dev.CopyIn(x, nil, 0)
	m.Step(x, 0.1)
	mid := dev.ComputeBusyUntil()
	m.Step(x, 0.1)
	return dev.ComputeBusyUntil() - mid
}

// Free releases both replicas.
func (h *AE) Free() {
	h.phi.Free()
	h.host.Free()
}

// PhiBatch and HostBatch report the per-device shard sizes.
func (h *AE) PhiBatch() int  { return h.phiBatch }
func (h *AE) HostBatch() int { return h.hostBatch }

// Step runs one combined update: shard gradients on both devices, exchange
// and average, apply. x must be Batch×Visible host data (may be nil for
// model-only devices). It returns the average reconstruction error across
// both shards (0 when the devices are model-only).
func (h *AE) Step(x *tensor.Matrix, lr float64) float64 {
	phiDev, hostDev := h.phi.Ctx.Dev, h.host.Ctx.Dev

	// Ship each shard to its device, starting no earlier than the last
	// synchronization point.
	xPhi := phiDev.MustAlloc(h.phiBatch, h.Cfg.Model.Visible)
	xHost := hostDev.MustAlloc(h.hostBatch, h.Cfg.Model.Visible)
	defer phiDev.Free(xPhi)
	defer hostDev.Free(xHost)
	if phiDev.Numeric {
		phiDev.CopyIn(xPhi, x.RowsView(0, h.phiBatch).Contiguous(), h.syncedAt)
		hostDev.CopyIn(xHost, x.RowsView(h.phiBatch, h.Cfg.Batch).Contiguous(), h.syncedAt)
	} else {
		phiDev.CopyIn(xPhi, nil, h.syncedAt)
		hostDev.CopyIn(xHost, nil, h.syncedAt)
	}

	// Shard gradients (concurrent timelines).
	h.phi.Forward(xPhi)
	reconPhi := h.phi.Ctx.SumSquaredDiff(h.phi.Output(), xPhi)
	h.phi.Backward(xPhi)
	h.host.Forward(xHost)
	reconHost := h.host.Ctx.SumSquaredDiff(h.host.Output(), xHost)
	h.host.Backward(xHost)

	// Exchange: the coprocessor ships its gradients to the host and
	// receives the combined ones; the host-side cost is negligible (no
	// PCIe on that arch). Numerically, average the gradients with shard
	// weights and write the result into both replicas.
	wPhi := float64(h.phiBatch) / float64(h.Cfg.Batch)
	wHost := 1 - wPhi
	outDone := h.exchangeOut()
	if phiDev.Numeric {
		h.combineGradients(wPhi, wHost)
	}
	inDone := h.exchangeIn(outDone)

	// Both replicas apply the identical averaged update.
	h.phi.ApplyUpdate(lr)
	h.host.ApplyUpdate(lr)

	// Synchronization barrier: next step starts when both devices and the
	// exchange are done.
	barrier := phiDev.Now()
	if t := hostDev.Now(); t > barrier {
		barrier = t
	}
	if inDone > barrier {
		barrier = inDone
	}
	h.syncedAt = barrier
	h.steps++

	if !phiDev.Numeric {
		return 0
	}
	return (reconPhi + reconHost) / (2 * float64(h.Cfg.Batch))
}

// exchangeOut charges the device→host gradient transfers on the Phi's PCIe
// engine and returns their completion time.
func (h *AE) exchangeOut() float64 {
	dev := h.phi.Ctx.Dev
	gw1, gb1, gw2, gb2 := h.phi.Gradients()
	end := 0.0
	for _, b := range []*device.Buffer{gw1, gb1, gw2, gb2} {
		if t := dev.CopyOut(b, hostMirror(dev, b)); t > end {
			end = t
		}
	}
	return end
}

// exchangeIn charges the host→device transfer of the combined gradients,
// starting no earlier than the outbound transfers and the host's compute.
func (h *AE) exchangeIn(earliest float64) float64 {
	dev := h.phi.Ctx.Dev
	if t := h.host.Ctx.Dev.Now(); t > earliest {
		earliest = t
	}
	gw1, gb1, gw2, gb2 := h.phi.Gradients()
	end := earliest
	for _, b := range []*device.Buffer{gw1, gb1, gw2, gb2} {
		if t := dev.CopyIn(b, hostMirror(dev, b), earliest); t > end {
			end = t
		}
	}
	return end
}

// hostMirror returns a host matrix sized like the buffer for numeric
// transfers (nil in model-only mode). For the outbound path the contents
// are the buffer's; for the inbound path CopyIn overwrites the device copy
// with the (already combined) values, so mirroring the current contents is
// correct.
func hostMirror(dev *device.Device, b *device.Buffer) *tensor.Matrix {
	if !dev.Numeric {
		return nil
	}
	return b.Mat.Clone()
}

// combineGradients averages the replica gradients in place (numeric mode):
// g ← wPhi·gPhi + wHost·gHost on both devices.
func (h *AE) combineGradients(wPhi, wHost float64) {
	pGw1, pGb1, pGw2, pGb2 := h.phi.Gradients()
	hGw1, hGb1, hGw2, hGb2 := h.host.Gradients()
	pairs := []struct{ p, hst *device.Buffer }{
		{pGw1, hGw1}, {pGb1, hGb1}, {pGw2, hGw2}, {pGb2, hGb2},
	}
	for _, pair := range pairs {
		combined := pair.p.Mat.Clone()
		for i := 0; i < combined.Rows; i++ {
			cr, hr := combined.RowView(i), pair.hst.Mat.RowView(i)
			for j := range cr {
				cr[j] = wPhi*cr[j] + wHost*hr[j]
			}
		}
		pair.p.Mat.CopyFrom(combined)
		pair.hst.Mat.CopyFrom(combined)
	}
}

// SimSeconds returns the synchronized simulated time of the hybrid run.
func (h *AE) SimSeconds() float64 { return h.syncedAt }

// Steps returns the number of combined updates executed.
func (h *AE) Steps() int { return h.steps }

// Download returns the (synchronized) parameters from the Phi replica.
func (h *AE) Download() *autoencoder.Params { return h.phi.Download() }

// Run trains the hybrid pair over a streaming source for the given number
// of iterations, splitting each batch, and returns the synchronized
// simulated time and final loss. It is the hybrid counterpart of the
// single-device core.Trainer for benchmarking.
func Run(phiCtx, hostCtx *blas.Context, cfg AEConfig, src data.Source, iterations int, lr float64, seed uint64) (simSeconds, finalLoss float64, err error) {
	cfg.Seed = seed
	h, err := BuildAE(phiCtx, hostCtx, cfg)
	if err != nil {
		return 0, 0, err
	}
	defer h.Free()
	var batch *tensor.Matrix
	if phiCtx.Dev.Numeric {
		batch = tensor.NewMatrix(cfg.Batch, cfg.Model.Visible)
	}
	loss := 0.0
	for step := 0; step < iterations; step++ {
		if batch != nil {
			src.Chunk(step*cfg.Batch, cfg.Batch, batch)
		}
		loss = h.Step(batch, lr)
	}
	return h.SimSeconds(), loss, nil
}
