package hybrid

import (
	"math"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func newPair(numeric bool) (phiCtx, hostCtx *blas.Context) {
	phiDev := device.New(sim.XeonPhi5110P(), numeric, nil)
	hostDev := device.New(sim.XeonE5620Dual(), numeric, nil)
	return core.NewContext(phiDev, core.Improved, 0, 1), core.NewContext(hostDev, core.OpenMPMKL, 0, 2)
}

// TestHybridMatchesSingleDeviceGradient: with the sparsity penalty off (its
// ρ̂ is a per-shard statistic), the weighted gradient exchange must make the
// hybrid pair follow exactly the trajectory of a single device training on
// the full batch.
func TestHybridMatchesSingleDeviceGradient(t *testing.T) {
	cfg := AEConfig{
		Model: autoencoder.Config{Visible: 12, Hidden: 7, Lambda: 1e-3},
		Batch: 10, PhiShare: 0.6,
	}
	phiCtx, hostCtx := newPair(true)
	h, err := NewAE(phiCtx, hostCtx, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Free()

	// Single-device oracle with identical initialization.
	soloDev := device.New(sim.XeonPhi5110P(), true, nil)
	soloCtx := core.NewContext(soloDev, core.Improved, 0, 3)
	solo, err := autoencoder.New(soloCtx, cfg.Model, cfg.Batch, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(cfg.Batch, 12).Randomize(rng.New(4), 0.1, 0.9)
	dx := soloDev.MustAlloc(cfg.Batch, 12)
	soloDev.CopyIn(dx, x, 0)

	for step := 0; step < 3; step++ {
		h.Step(x, 0.4)
		solo.Step(dx, 0.4)
		hp, sp := h.Download(), solo.Download()
		if d := tensor.MaxAbsDiff(hp.W1, sp.W1); d > 1e-12 {
			t.Fatalf("step %d: hybrid W1 diverged from single device by %g", step, d)
		}
		if d := tensor.MaxAbsDiff(hp.W2, sp.W2); d > 1e-12 {
			t.Fatalf("step %d: hybrid W2 diverged by %g", step, d)
		}
		if !tensor.EqualVec(hp.B1, sp.B1, 1e-12) || !tensor.EqualVec(hp.B2, sp.B2, 1e-12) {
			t.Fatalf("step %d: hybrid biases diverged", step)
		}
	}
}

// TestHybridReplicasStayInSync: both replicas hold identical parameters
// after every step.
func TestHybridReplicasStayInSync(t *testing.T) {
	cfg := AEConfig{
		Model: autoencoder.Config{Visible: 9, Hidden: 5, Beta: 0.2, Rho: 0.1},
		Batch: 8,
	}
	phiCtx, hostCtx := newPair(true)
	h, err := NewAE(phiCtx, hostCtx, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Free()
	x := tensor.NewMatrix(cfg.Batch, 9).Randomize(rng.New(5), 0.1, 0.9)
	for step := 0; step < 3; step++ {
		h.Step(x, 0.3)
		p := h.phi.Download()
		q := h.host.Download()
		if d := tensor.MaxAbsDiff(p.W1, q.W1); d > 1e-12 {
			t.Fatalf("step %d: replicas out of sync by %g", step, d)
		}
	}
}

// TestHybridLearns: the hybrid pair reduces reconstruction error.
func TestHybridLearns(t *testing.T) {
	cfg := AEConfig{
		Model: autoencoder.Config{Visible: 16, Hidden: 8, Lambda: 1e-6},
		Batch: 20,
	}
	phiCtx, hostCtx := newPair(true)
	h, err := NewAE(phiCtx, hostCtx, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Free()
	// Compressible rank-2 data.
	u := tensor.NewMatrix(20, 2).Randomize(rng.New(6), -2, 2)
	v := tensor.NewMatrix(2, 16).Randomize(rng.New(7), -2, 2)
	x := tensor.NewMatrix(20, 16)
	for i := 0; i < 20; i++ {
		for j := 0; j < 16; j++ {
			s := u.At(i, 0)*v.At(0, j) + u.At(i, 1)*v.At(1, j)
			x.Set(i, j, 1/(1+math.Exp(-s)))
		}
	}
	first := h.Step(x, 1.0)
	var last float64
	for i := 0; i < 400; i++ {
		last = h.Step(x, 1.0)
	}
	if !(last < 0.5*first) {
		t.Fatalf("hybrid training did not learn: %g → %g", first, last)
	}
}

// TestHybridCrossover quantifies the paper's §VI caveat: on small models
// the hybrid can at best match the Phi (the launch overhead of the Phi
// shard does not shrink), and on large models the gradient exchange makes
// it clearly lose.
func TestHybridCrossover(t *testing.T) {
	hybridVsPhi := func(visible, hidden, batch, iters int) (hybridT, phiT float64) {
		phiCtx, hostCtx := newPair(false)
		cfg := AEConfig{Model: autoencoder.Config{Visible: visible, Hidden: hidden}, Batch: batch}
		ht, _, err := Run(phiCtx, hostCtx, cfg, data.Null{D: visible, N: batch * iters}, iters, 0.1, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Phi-only baseline, same combined batch.
		soloDev := device.New(sim.XeonPhi5110P(), false, nil)
		soloCtx := core.NewContext(soloDev, core.Improved, 0, 1)
		m, err := autoencoder.New(soloCtx, cfg.Model, batch, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr := &core.Trainer{Dev: soloDev, Cfg: core.TrainConfig{Iterations: iters, LR: 0.1, Prefetch: true}}
		res, err := tr.Run(m, data.Null{D: visible, N: batch * iters})
		if err != nil {
			t.Fatal(err)
		}
		return ht, res.SimSeconds
	}

	smallH, smallP := hybridVsPhi(64, 256, 1000, 20)
	largeH, largeP := hybridVsPhi(2048, 8192, 1000, 20)

	// Small model: the hybrid must be within a few percent of the Phi
	// (the splitter parks nearly the whole batch on the better device).
	if !(smallH < 1.1*smallP) {
		t.Errorf("hybrid far worse than Phi on the small model: hybrid %g vs phi %g", smallH, smallP)
	}
	// Large model: the exchange dominates — hybrid clearly loses.
	if !(largeH > 1.5*largeP) {
		t.Errorf("gradient exchange should make hybrid clearly lose on the large model: hybrid %g vs phi %g", largeH, largeP)
	}
}

func TestHybridValidation(t *testing.T) {
	phiCtx, hostCtx := newPair(false)
	base := AEConfig{Model: autoencoder.Config{Visible: 8, Hidden: 4}, Batch: 4}
	bad := base
	bad.Batch = 1
	if _, err := NewAE(phiCtx, hostCtx, bad, 1); err == nil {
		t.Error("unsplittable batch must fail")
	}
	bad = base
	bad.PhiShare = 1.5
	if _, err := NewAE(phiCtx, hostCtx, bad, 1); err == nil {
		t.Error("invalid share must fail")
	}
	// Swapped contexts: the "phi" side has no PCIe link.
	if _, err := NewAE(hostCtx, phiCtx, base, 1); err == nil {
		t.Error("host device on the phi side must fail")
	}
	bad = base
	bad.Model.Visible = 0
	if _, err := NewAE(phiCtx, hostCtx, bad, 1); err == nil {
		t.Error("invalid model config must fail")
	}
}

func TestThroughputShareFavorsTheFasterDevice(t *testing.T) {
	phiCtx, hostCtx := newPair(false)
	cfg := AEConfig{Model: autoencoder.Config{Visible: 1024, Hidden: 4096}, Batch: 1000}
	share := throughputShare(phiCtx, hostCtx, cfg)
	if !(share > 0.7 && share < 1) {
		t.Fatalf("share %g should strongly favor the Phi on a large model", share)
	}
	h, err := NewAE(phiCtx, hostCtx, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Free()
	if h.PhiBatch()+h.HostBatch() != cfg.Batch {
		t.Fatal("shards do not partition the batch")
	}
	if h.PhiBatch() <= h.HostBatch() {
		t.Fatal("Phi should take the larger shard")
	}
}
