package tensor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"phideep/internal/rng"
)

func TestNewMatrixAndAccess(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("bad geometry: %+v", m)
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.Data[11] != 7 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { m.At(-1, 0) },
		func() { m.Set(0, -1, 1) },
		func() { m.RowView(2) },
		func() { m.RowsView(1, 3) },
		func() { NewMatrix(-1, 2) },
		func() { FromSlice(2, 2, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRowsViewSharesStorage(t *testing.T) {
	m := NewMatrix(5, 3)
	v := m.RowsView(1, 4)
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatalf("view geometry %dx%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, 42)
	if m.At(1, 0) != 42 {
		t.Fatal("view does not alias parent")
	}
	if !v.IsView() {
		t.Fatal("RowsView not detected as view")
	}
	if m.IsView() {
		t.Fatal("owner misdetected as view")
	}
	c := v.Contiguous()
	if c == v {
		t.Fatal("Contiguous must copy a view over a larger backing slice")
	}
	if !Equal(c, v.Clone(), 0) {
		t.Fatal("Contiguous copy differs")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases source")
	}
	if FromRows(nil).Rows != 0 {
		t.Fatal("empty FromRows")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestCopyFromAndZeroFill(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrix(2, 2)
	b.CopyFrom(a)
	if !Equal(a, b, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Fill(5)
	if b.Sum() != 20 {
		t.Fatal("Fill wrong")
	}
	b.Zero()
	if b.Sum() != 0 {
		t.Fatal("Zero wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom shape mismatch should panic")
		}
	}()
	b.CopyFrom(NewMatrix(1, 2))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64, rRaw, cRaw uint8) bool {
		r := int(rRaw)%20 + 1
		c := int(cRaw)%20 + 1
		m := NewMatrix(r, c).Randomize(rng.New(seed), -1, 1)
		tt := m.T().T()
		return Equal(m, tt, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeElements(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestReductions(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, 4}})
	if m.Sum() != 6 {
		t.Fatalf("Sum %g", m.Sum())
	}
	if m.SumSquares() != 1+4+9+16 {
		t.Fatalf("SumSquares %g", m.SumSquares())
	}
	if math.Abs(m.FrobeniusNorm()-math.Sqrt(30)) > 1e-15 {
		t.Fatal("FrobeniusNorm")
	}
	if m.Mean() != 1.5 {
		t.Fatalf("Mean %g", m.Mean())
	}
	if NewMatrix(0, 0).Mean() != 0 {
		t.Fatal("empty Mean")
	}
	cm := m.ColMeans()
	if cm[0] != 2 || cm[1] != 1 {
		t.Fatalf("ColMeans %v", cm)
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.5}})
	if Equal(a, b, 0.4) {
		t.Fatal("should differ at tol 0.4")
	}
	if !Equal(a, b, 0.6) {
		t.Fatal("should match at tol 0.6")
	}
	if Equal(a, NewMatrix(2, 1), 10) {
		t.Fatal("shape mismatch must be unequal")
	}
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff %g", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAbsDiff shape mismatch should panic")
		}
	}()
	MaxAbsDiff(a, NewMatrix(2, 1))
}

func TestRandomizeRanges(t *testing.T) {
	r := rng.New(20)
	m := NewMatrix(30, 30).Randomize(r, -2, 5)
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.RowView(i) {
			if v < -2 || v >= 5 {
				t.Fatalf("Randomize out of range: %g", v)
			}
		}
	}
	g := NewMatrix(100, 100).RandomizeNorm(r, 2)
	mean := g.Mean()
	if math.Abs(mean) > 0.1 {
		t.Fatalf("RandomizeNorm mean %g", mean)
	}
	variance := g.SumSquares()/10000 - mean*mean
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("RandomizeNorm variance %g", variance)
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{1, 4}, {9, 16}})
	m.Apply(math.Sqrt)
	if !Equal(m, FromRows([][]float64{{1, 2}, {3, 4}}), 1e-15) {
		t.Fatal("Apply failed")
	}
}

func TestStringForms(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if s := small.String(); !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Fatalf("small String: %q", s)
	}
	big := NewMatrix(20, 20)
	if s := big.String(); !strings.Contains(s, "20x20") {
		t.Fatalf("big String: %q", s)
	}
}
