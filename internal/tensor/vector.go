package tensor

import (
	"fmt"
	"math"

	"phideep/internal/rng"
)

// Vector is a dense float64 vector with convenience helpers. It is a named
// slice type, so ordinary slice operations (len, indexing, range, append)
// work directly.
type Vector []float64

// NewVector allocates a zeroed length-n vector.
func NewVector(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("tensor: NewVector(%d): negative length", n))
	}
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element to 0.
func (v Vector) Zero() {
	clear(v)
}

// Fill sets every element to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Apply sets each element to f(element) in place and returns v.
func (v Vector) Apply(f func(float64) float64) Vector {
	for i, x := range v {
		v[i] = f(x)
	}
	return v
}

// Randomize fills v with uniform values in [lo, hi).
func (v Vector) Randomize(r *rng.RNG, lo, hi float64) Vector {
	for i := range v {
		v[i] = r.Uniform(lo, hi)
	}
	return v
}

// Sum returns the sum of the elements.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Dot returns the inner product of v and w; lengths must match.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch: %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element, or 0 for an empty vector.
func (v Vector) MaxAbs() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AsRow wraps v as a 1×n matrix sharing storage.
func (v Vector) AsRow() *Matrix { return FromSlice(1, len(v), v) }

// AsCol wraps v as an n×1 matrix sharing storage.
func (v Vector) AsCol() *Matrix { return FromSlice(len(v), 1, v) }

// EqualVec reports whether a and b have the same length and elements
// within tol.
func EqualVec(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
