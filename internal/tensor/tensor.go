// Package tensor implements the dense float64 matrices and vectors that all
// phideep model math is written against.
//
// Matrices are row-major with an explicit stride, so a Matrix can be either
// an owner of its backing slice or a rectangular view into another matrix
// (used by the minibatch loop to walk a data chunk without copying).
// The package deliberately contains no compute kernels beyond trivial
// element access; GEMM and friends live in internal/kernels so that the
// optimization levels of the paper (naive, blocked, parallel, "MKL") stay
// in one place.
package tensor

import (
	"fmt"
	"math"

	"phideep/internal/rng"
)

// Matrix is a dense row-major matrix. Element (i, j) lives at
// Data[i*Stride+j]. Rows*Cols may be smaller than len(Data) when the matrix
// is a view. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix(%d, %d): negative dimension", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (row-major, length r*c) as an r×c matrix without
// copying. The caller must not alias the slice elsewhere with a different
// shape in mind.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice(%d, %d): need %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: data}
}

// FromRows builds a matrix from a slice of equally long rows, copying.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("tensor: FromRows: row %d has %d elements, want %d", i, len(row), c))
		}
		copy(m.RowView(i), row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.Data[i*m.Stride+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// RowView returns row i as a slice sharing the matrix's storage.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// RowsView returns rows [i, j) as a matrix view sharing storage with m.
func (m *Matrix) RowsView(i, j int) *Matrix {
	if i < 0 || j < i || j > m.Rows {
		panic(fmt.Sprintf("tensor: rows [%d, %d) out of range %d", i, j, m.Rows))
	}
	return &Matrix{Rows: j - i, Cols: m.Cols, Stride: m.Stride, Data: m.Data[i*m.Stride:]}
}

// IsView reports whether m shares storage laid out with gaps (stride larger
// than cols) or is a window over a larger backing slice.
func (m *Matrix) IsView() bool {
	return m.Stride != m.Cols || len(m.Data) != m.Rows*m.Cols
}

// Contiguous returns m if its rows are densely packed, or a packed copy.
func (m *Matrix) Contiguous() *Matrix {
	if m.Stride == m.Cols && len(m.Data) == m.Rows*m.Cols {
		return m
	}
	return m.Clone()
}

// Clone returns a packed deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.RowView(i), m.RowView(i))
	}
	return out
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch: %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.RowView(i), src.RowView(i))
	}
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		clear(m.RowView(i))
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Apply sets each element to f(element), in place, and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			row[j] = f(v)
		}
	}
	return m
}

// Randomize fills m with uniform values in [lo, hi).
func (m *Matrix) Randomize(r *rng.RNG, lo, hi float64) *Matrix {
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = r.Uniform(lo, hi)
		}
	}
	return m
}

// RandomizeNorm fills m with N(0, sigma²) values.
func (m *Matrix) RandomizeNorm(r *rng.RNG, sigma float64) *Matrix {
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = sigma * r.Norm()
		}
	}
	return m
}

// T returns a packed transpose copy of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether a and b have the same shape and elements within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.RowView(i), b.RowView(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b. It panics on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	max := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.RowView(i), b.RowView(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > max {
				max = d
			}
		}
	}
	return max
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.RowView(i) {
			s += v
		}
	}
	return s
}

// SumSquares returns the sum of squared elements (squared Frobenius norm).
func (m *Matrix) SumSquares() float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.RowView(i) {
			s += v * v
		}
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 { return math.Sqrt(m.SumSquares()) }

// Mean returns the arithmetic mean of all elements; 0 for an empty matrix.
func (m *Matrix) Mean() float64 {
	n := m.Rows * m.Cols
	if n == 0 {
		return 0
	}
	return m.Sum() / float64(n)
}

// ColMeans returns the per-column mean of m as a length-Cols vector:
// out[j] = mean_i m[i,j]. Used for the average hidden activation ρ̂ of the
// sparse autoencoder.
func (m *Matrix) ColMeans() []float64 {
	out := make([]float64, m.Cols)
	if m.Rows == 0 {
		return out
	}
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			out[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// String renders small matrices for debugging; large matrices are
// abbreviated to their shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		row := m.RowView(i)
		for j, v := range row {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", v)
		}
	}
	return s + "]"
}
