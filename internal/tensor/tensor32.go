package tensor

import (
	"fmt"
	"math"
)

// Matrix32 is the float32 counterpart of Matrix: dense, row-major, with an
// explicit stride so views work the same way. It exists for the reduced-
// precision inference path — halving the element width doubles the SIMD
// lanes per FMA and halves memory traffic — and deliberately mirrors only
// the subset of the Matrix API the forward-only kernels need. Training math
// stays float64.
type Matrix32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewMatrix32 allocates a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: NewMatrix32(%d, %d): negative dimension", r, c))
	}
	return &Matrix32{Rows: r, Cols: c, Stride: c, Data: make([]float32, r*c)}
}

// FromSlice32 wraps data (row-major, length r*c) as an r×c matrix without
// copying.
func FromSlice32(r, c int, data []float32) *Matrix32 {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice32(%d, %d): need %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Matrix32{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Stride+j] = v
}

// RowView returns row i as a slice sharing the matrix's storage.
func (m *Matrix32) RowView(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// RowsView returns rows [i, j) as a matrix view sharing storage with m.
func (m *Matrix32) RowsView(i, j int) *Matrix32 {
	if i < 0 || j < i || j > m.Rows {
		panic(fmt.Sprintf("tensor: rows [%d, %d) out of range %d", i, j, m.Rows))
	}
	return &Matrix32{Rows: j - i, Cols: m.Cols, Stride: m.Stride, Data: m.Data[i*m.Stride:]}
}

// Clone returns a packed deep copy of m.
func (m *Matrix32) Clone() *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.RowView(i), m.RowView(i))
	}
	return out
}

// Zero sets every element to 0.
func (m *Matrix32) Zero() {
	for i := 0; i < m.Rows; i++ {
		clear(m.RowView(i))
	}
}

// T returns a packed transpose copy of m.
func (m *Matrix32) T() *Matrix32 {
	out := NewMatrix32(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// To64 widens m to a float64 Matrix (exact: every float32 is representable).
func (m *Matrix32) To64() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.RowView(i), out.RowView(i)
		for j, v := range src {
			dst[j] = float64(v)
		}
	}
	return out
}

// To32 narrows m to a float32 Matrix32, rounding each element to nearest.
// This is the copy-on-load conversion of the reduced-precision serving path.
func (m *Matrix) To32() *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.RowView(i), out.RowView(i)
		for j, v := range src {
			dst[j] = float32(v)
		}
	}
	return out
}

// Vector32 is a dense float32 vector; the float32 counterpart of Vector.
type Vector32 []float32

// NewVector32 allocates a zeroed length-n vector.
func NewVector32(n int) Vector32 {
	if n < 0 {
		panic(fmt.Sprintf("tensor: NewVector32(%d): negative length", n))
	}
	return make(Vector32, n)
}

// Clone returns a deep copy of v.
func (v Vector32) Clone() Vector32 {
	out := make(Vector32, len(v))
	copy(out, v)
	return out
}

// Zero sets every element to 0.
func (v Vector32) Zero() { clear(v) }

// To64 widens v to a float64 Vector.
func (v Vector32) To64() Vector {
	out := NewVector(len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// To32 narrows v to a float32 Vector32, rounding each element to nearest.
func (v Vector) To32() Vector32 {
	out := NewVector32(len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Round32 narrows every element of a float64 row to float32 in place of
// dst: dst[j] = float32(src[j]). Lengths must match. This is the staging
// boundary conversion of the serving path.
func Round32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Round32 length mismatch: %d vs %d", len(dst), len(src)))
	}
	for j, v := range src {
		dst[j] = float32(v)
	}
}

// Widen64 widens a float32 row into a float64 slice: dst[j] = float64(src[j]).
func Widen64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Widen64 length mismatch: %d vs %d", len(dst), len(src)))
	}
	for j, v := range src {
		dst[j] = float64(v)
	}
}

// MaxAbsDiff32 returns the largest absolute elementwise difference between
// the float32 matrix a and the float64 matrix b, computed in float64 — the
// measure the cross-precision equivalence tests bound.
func MaxAbsDiff32(a *Matrix32, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MaxAbsDiff32 shape mismatch: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	max := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.RowView(i), b.RowView(i)
		for j := range ra {
			if d := math.Abs(float64(ra[j]) - rb[j]); d > max {
				max = d
			}
		}
	}
	return max
}
