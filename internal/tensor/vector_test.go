package tensor

import (
	"math"
	"testing"

	"phideep/internal/rng"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if len(v) != 3 {
		t.Fatal("length")
	}
	v.Fill(2)
	if v.Sum() != 6 {
		t.Fatal("Fill/Sum")
	}
	c := v.Clone()
	c[0] = 9
	if v[0] != 2 {
		t.Fatal("Clone aliases")
	}
	v.Zero()
	if v.Sum() != 0 {
		t.Fatal("Zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewVector(-1) should panic")
		}
	}()
	NewVector(-1)
}

func TestVectorMath(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, -5, 6}
	if a.Dot(b) != 4-10+18 {
		t.Fatalf("Dot %g", a.Dot(b))
	}
	if math.Abs(a.Norm2()-math.Sqrt(14)) > 1e-15 {
		t.Fatal("Norm2")
	}
	if b.MaxAbs() != 6 {
		t.Fatal("MaxAbs")
	}
	if (Vector{}).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs")
	}
	a.Apply(func(x float64) float64 { return -x })
	if !EqualVec(a, Vector{-1, -2, -3}, 0) {
		t.Fatal("Apply")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch should panic")
		}
	}()
	a.Dot(Vector{1})
}

func TestVectorMatrixViews(t *testing.T) {
	v := Vector{1, 2, 3}
	row := v.AsRow()
	if row.Rows != 1 || row.Cols != 3 || row.At(0, 2) != 3 {
		t.Fatal("AsRow")
	}
	row.Set(0, 0, 10)
	if v[0] != 10 {
		t.Fatal("AsRow does not share storage")
	}
	col := v.AsCol()
	if col.Rows != 3 || col.Cols != 1 || col.At(2, 0) != 3 {
		t.Fatal("AsCol")
	}
}

func TestVectorRandomizeAndEqual(t *testing.T) {
	v := NewVector(100).Randomize(rng.New(1), 0, 1)
	for _, x := range v {
		if x < 0 || x >= 1 {
			t.Fatalf("out of range %g", x)
		}
	}
	if EqualVec(Vector{1}, Vector{1, 2}, 1) {
		t.Fatal("length mismatch must be unequal")
	}
	if !EqualVec(Vector{1, 2}, Vector{1.05, 2}, 0.1) {
		t.Fatal("tolerance ignored")
	}
}
