// Package data provides the training datasets of the paper's evaluation —
// "a large [set] of handwritten digit images and natural images [from which]
// we obtain the training examples by randomly extracting patches of required
// sizes" — as deterministic synthetic generators.
//
// The original corpora (MNIST-style digits, the Olshausen natural-image
// set) are not available offline, so the generators synthesize images with
// the same relevant structure: digits are stroke-rendered glyphs with random
// geometry and noise; natural images are multi-octave smoothed noise with a
// 1/f-like spectrum, the statistics sparse coding and autoencoders are
// classically trained on. Example i is a pure function of (seed, i), so
// datasets of any size stream without being materialized, and every
// experiment is reproducible bit-for-bit.
package data

import (
	"fmt"

	"phideep/internal/tensor"
)

// Source yields training examples by index range. Implementations must be
// safe for concurrent Chunk calls (the loading thread of Fig. 5 prefetches
// while the trainer reads).
type Source interface {
	// Dim returns the dimensionality of one example.
	Dim() int
	// Len returns the total number of examples.
	Len() int
	// Chunk fills dst, which must be n×Dim(), with examples
	// [start, start+n). Indices wrap modulo Len(), so multi-epoch
	// training can stream past the end.
	Chunk(start, n int, dst *tensor.Matrix)
}

// Labeled is a Source whose examples carry integer class labels (*Digits
// satisfies it). Labels must be stable: Label(idx) is a pure function of
// the source and idx, safe for concurrent calls like Chunk.
type Labeled interface {
	Source
	// Label returns the class of example idx.
	Label(idx int) int
}

// checkChunk validates a Chunk request against the source geometry.
func checkChunk(s Source, start, n int, dst *tensor.Matrix) {
	if start < 0 || n < 0 {
		panic(fmt.Sprintf("data: Chunk(start=%d, n=%d): negative argument", start, n))
	}
	if dst.Rows != n || dst.Cols != s.Dim() {
		panic(fmt.Sprintf("data: Chunk destination %dx%d, want %dx%d", dst.Rows, dst.Cols, n, s.Dim()))
	}
	if s.Len() == 0 && n > 0 {
		panic("data: Chunk from empty source")
	}
}

// Null is a Source that reports a geometry but generates nothing: the
// companion of model-only devices, where the floats are never read. Chunk
// leaves dst untouched.
type Null struct {
	D, N int
}

// Dim implements Source.
func (s Null) Dim() int { return s.D }

// Len implements Source.
func (s Null) Len() int { return s.N }

// Chunk implements Source as a no-op.
func (s Null) Chunk(start, n int, dst *tensor.Matrix) { checkChunk(s, start, n, dst) }

// NullLabeled is Null with a deterministic label stream: example i carries
// label i mod Classes. It satisfies Labeled, so timing-only tuning runs can
// drive the supervised trainers (MLP, convnet) on model-only devices
// without generating any floats.
type NullLabeled struct {
	Null
	Classes int
}

// Label implements the labeled-source contract.
func (s NullLabeled) Label(idx int) int {
	if s.Classes <= 0 {
		return 0
	}
	return idx % s.Classes
}

// InMemory serves examples from a concrete matrix (one example per row).
// Used by tests and by the batch optimizers that need the whole set.
type InMemory struct {
	X *tensor.Matrix
}

// Dim implements Source.
func (s InMemory) Dim() int { return s.X.Cols }

// Len implements Source.
func (s InMemory) Len() int { return s.X.Rows }

// Chunk implements Source.
func (s InMemory) Chunk(start, n int, dst *tensor.Matrix) {
	checkChunk(s, start, n, dst)
	for i := 0; i < n; i++ {
		copy(dst.RowView(i), s.X.RowView((start+i)%s.X.Rows))
	}
}

// Materialize reads all of src into one matrix.
func Materialize(src Source) *tensor.Matrix {
	out := tensor.NewMatrix(src.Len(), src.Dim())
	src.Chunk(0, src.Len(), out)
	return out
}

// Rescale maps m's elements affinely from [min, max] (computed over m) to
// [lo, hi]; constant matrices map to the midpoint. The UFLDL convention for
// sigmoid autoencoders is [0.1, 0.9].
func Rescale(m *tensor.Matrix, lo, hi float64) {
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	minV, maxV := m.At(0, 0), m.At(0, 0)
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.RowView(i) {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	span := maxV - minV
	if span == 0 {
		mid := (lo + hi) / 2
		m.Fill(mid)
		return
	}
	scale := (hi - lo) / span
	m.Apply(func(v float64) float64 { return lo + (v-minV)*scale })
}
