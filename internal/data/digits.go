package data

import (
	"fmt"
	"math"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Digits is a Source of stroke-rendered handwritten-digit-like images. Each
// example is a side×side grayscale image in [0, 1] flattened row-major, with
// a glyph for a pseudo-randomly chosen digit drawn with random center,
// scale, slant and pen width, plus additive noise — the structural
// ingredients autoencoders extract stroke features from.
type Digits struct {
	Side  int    // image side length; Dim() = Side²
	N     int    // dataset size
	Seed  uint64 // generator seed
	Noise float64
}

// NewDigits returns a digit source with dim = side² pixels. noise is the
// additive uniform noise amplitude (0.05 is a good default).
func NewDigits(side, n int, seed uint64, noise float64) *Digits {
	if side < 8 {
		panic(fmt.Sprintf("data: NewDigits side %d too small to render strokes", side))
	}
	return &Digits{Side: side, N: n, Seed: seed, Noise: noise}
}

// Dim implements Source.
func (d *Digits) Dim() int { return d.Side * d.Side }

// Len implements Source.
func (d *Digits) Len() int { return d.N }

// Chunk implements Source.
func (d *Digits) Chunk(start, n int, dst *tensor.Matrix) {
	checkChunk(d, start, n, dst)
	for i := 0; i < n; i++ {
		idx := (start + i) % d.N
		d.render(idx, dst.RowView(i))
	}
}

// Label returns the digit class (0–9) that example idx renders; useful for
// downstream classification examples.
func (d *Digits) Label(idx int) int {
	r := rng.New(d.Seed ^ (0xa0761d6478bd642f * uint64(idx%d.N+1)))
	return r.Intn(10)
}

// segment is a pen stroke in glyph coordinates ([0,1]²; origin top-left).
type segment struct{ x0, y0, x1, y1 float64 }

// glyphs holds simplified stroke skeletons for the ten digits on the
// seven-segment-like layout used by stroke fonts, with a few diagonals to
// break symmetry.
var glyphs = [10][]segment{
	0: {{0.2, 0.1, 0.8, 0.1}, {0.8, 0.1, 0.8, 0.9}, {0.8, 0.9, 0.2, 0.9}, {0.2, 0.9, 0.2, 0.1}},
	1: {{0.5, 0.1, 0.5, 0.9}, {0.35, 0.25, 0.5, 0.1}},
	2: {{0.2, 0.2, 0.8, 0.1}, {0.8, 0.1, 0.8, 0.5}, {0.8, 0.5, 0.2, 0.9}, {0.2, 0.9, 0.8, 0.9}},
	3: {{0.2, 0.1, 0.8, 0.1}, {0.8, 0.1, 0.45, 0.5}, {0.45, 0.5, 0.8, 0.65}, {0.8, 0.65, 0.65, 0.9}, {0.65, 0.9, 0.2, 0.85}},
	4: {{0.7, 0.9, 0.7, 0.1}, {0.7, 0.1, 0.2, 0.6}, {0.2, 0.6, 0.85, 0.6}},
	5: {{0.8, 0.1, 0.2, 0.1}, {0.2, 0.1, 0.2, 0.5}, {0.2, 0.5, 0.7, 0.5}, {0.7, 0.5, 0.75, 0.75}, {0.75, 0.75, 0.2, 0.9}},
	6: {{0.75, 0.1, 0.3, 0.4}, {0.3, 0.4, 0.2, 0.7}, {0.2, 0.7, 0.5, 0.9}, {0.5, 0.9, 0.8, 0.7}, {0.8, 0.7, 0.25, 0.55}},
	7: {{0.2, 0.1, 0.8, 0.1}, {0.8, 0.1, 0.4, 0.9}, {0.35, 0.5, 0.7, 0.5}},
	8: {{0.5, 0.1, 0.75, 0.3}, {0.75, 0.3, 0.25, 0.65}, {0.25, 0.65, 0.5, 0.9}, {0.5, 0.9, 0.75, 0.65}, {0.75, 0.65, 0.25, 0.3}, {0.25, 0.3, 0.5, 0.1}},
	9: {{0.75, 0.45, 0.3, 0.55}, {0.3, 0.55, 0.25, 0.25}, {0.25, 0.25, 0.6, 0.1}, {0.6, 0.1, 0.75, 0.45}, {0.75, 0.45, 0.6, 0.9}},
}

// render draws example idx into out (length Side²).
func (d *Digits) render(idx int, out []float64) {
	r := rng.New(d.Seed ^ (0xa0761d6478bd642f * uint64(idx%d.N+1)))
	digit := r.Intn(10)

	side := float64(d.Side)
	// Random geometry: glyph occupies a scaled, shifted, slanted box.
	scale := side * r.Uniform(0.55, 0.85)
	cx := side*0.5 + side*r.Uniform(-0.08, 0.08)
	cy := side*0.5 + side*r.Uniform(-0.08, 0.08)
	slant := r.Uniform(-0.2, 0.2)
	pen := math.Max(0.9, side*r.Uniform(0.04, 0.08))

	for p := range out {
		out[p] = 0
	}
	for _, s := range glyphs[digit] {
		x0 := cx + scale*(s.x0-0.5+slant*(0.5-s.y0))
		y0 := cy + scale*(s.y0-0.5)
		x1 := cx + scale*(s.x1-0.5+slant*(0.5-s.y1))
		y1 := cy + scale*(s.y1-0.5)
		drawSegment(out, d.Side, x0, y0, x1, y1, pen)
	}
	if d.Noise > 0 {
		for p := range out {
			v := out[p] + r.Uniform(-d.Noise, d.Noise)
			out[p] = math.Min(1, math.Max(0, v))
		}
	}
}

// drawSegment rasterizes an anti-aliased stroke of half-width pen from
// (x0,y0) to (x1,y1) into the side×side image img, taking the max with the
// existing intensity.
func drawSegment(img []float64, side int, x0, y0, x1, y1, pen float64) {
	dx, dy := x1-x0, y1-y0
	len2 := dx*dx + dy*dy
	// Bounding box padded by the pen width.
	minX := int(math.Floor(math.Min(x0, x1) - pen - 1))
	maxX := int(math.Ceil(math.Max(x0, x1) + pen + 1))
	minY := int(math.Floor(math.Min(y0, y1) - pen - 1))
	maxY := int(math.Ceil(math.Max(y0, y1) + pen + 1))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= side {
		maxX = side - 1
	}
	if maxY >= side {
		maxY = side - 1
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			// Distance from pixel center to the segment.
			t := 0.0
			if len2 > 0 {
				t = ((px-x0)*dx + (py-y0)*dy) / len2
				t = math.Min(1, math.Max(0, t))
			}
			qx, qy := x0+t*dx, y0+t*dy
			dist := math.Hypot(px-qx, py-qy)
			// Soft falloff over one pixel at the stroke edge.
			v := 1 - (dist - pen + 0.5)
			if v <= 0 {
				continue
			}
			if v > 1 {
				v = 1
			}
			if p := y*side + x; v > img[p] {
				img[p] = v
			}
		}
	}
}
