package data

import (
	"sync"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Shuffled wraps a Source with a deterministic per-epoch permutation:
// pass e over the data visits it in the order Perm_e, with a fresh
// permutation drawn for every epoch (index / Len). Online SGD converges
// noticeably better with reshuffling than with a fixed visit order, which
// is why production loaders shuffle between epochs.
//
// Shuffled is safe for concurrent Chunk calls (the prefetching loading
// thread), and example (epoch, position) pairs are pure functions of the
// seed, so runs remain reproducible.
type Shuffled struct {
	Base Source
	Seed uint64

	mu    sync.Mutex
	epoch int
	perm  []int
}

// NewShuffled returns a shuffling wrapper around base.
func NewShuffled(base Source, seed uint64) *Shuffled {
	return &Shuffled{Base: base, Seed: seed, epoch: -1}
}

// Dim implements Source.
func (s *Shuffled) Dim() int { return s.Base.Dim() }

// Len implements Source.
func (s *Shuffled) Len() int { return s.Base.Len() }

// Chunk implements Source: position i maps to Perm_{i/Len}[i mod Len] of
// the base source. A chunk spanning an epoch boundary uses both
// permutations, exactly as a streaming pass would.
func (s *Shuffled) Chunk(start, n int, dst *tensor.Matrix) {
	checkChunk(s, start, n, dst)
	row := tensor.NewMatrix(1, s.Dim())
	for i := 0; i < n; i++ {
		idx := start + i
		epoch := idx / s.Len()
		pos := idx % s.Len()
		base := s.permAt(epoch)[pos]
		s.Base.Chunk(base, 1, row)
		copy(dst.RowView(i), row.RowView(0))
	}
}

// permAt returns the permutation for the given epoch, caching the most
// recent one (training visits epochs in order, so the cache almost always
// hits; misses regenerate deterministically).
func (s *Shuffled) permAt(epoch int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		s.perm = rng.New(s.Seed ^ (0x9e3779b97f4a7c15 * uint64(epoch+1))).Perm(s.Len())
		s.epoch = epoch
	}
	return s.perm
}
