package data

import (
	"fmt"
	"math"
	"sync"

	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// NaturalPatches is a Source of patches randomly extracted from synthetic
// "natural" images, standing in for the Olshausen natural-image set of the
// paper. Base images are sums of box-smoothed white noise over several
// octaves, which yields the approximately 1/f spatial spectrum and local
// smoothness of natural scenes. Patches are rescaled into [0.1, 0.9], the
// conventional range for sigmoid autoencoder targets.
type NaturalPatches struct {
	PatchSide int // patch side length; Dim() = PatchSide²
	N         int
	Seed      uint64

	ImageSide int // side of the base images
	NumImages int // number of base images

	once   sync.Once
	images []*tensor.Matrix
}

// NewNaturalPatches returns a patch source with dim = patchSide² pixels
// drawn from 8 base images of 256×256.
func NewNaturalPatches(patchSide, n int, seed uint64) *NaturalPatches {
	if patchSide < 2 {
		panic(fmt.Sprintf("data: NewNaturalPatches patch side %d too small", patchSide))
	}
	imgSide := 256
	for imgSide < 2*patchSide {
		imgSide *= 2
	}
	return &NaturalPatches{PatchSide: patchSide, N: n, Seed: seed, ImageSide: imgSide, NumImages: 8}
}

// Dim implements Source.
func (s *NaturalPatches) Dim() int { return s.PatchSide * s.PatchSide }

// Len implements Source.
func (s *NaturalPatches) Len() int { return s.N }

// Chunk implements Source.
func (s *NaturalPatches) Chunk(start, n int, dst *tensor.Matrix) {
	checkChunk(s, start, n, dst)
	s.once.Do(s.buildImages)
	for i := 0; i < n; i++ {
		idx := (start + i) % s.N
		s.extract(idx, dst.RowView(i))
	}
}

// buildImages synthesizes the base images once, lazily.
func (s *NaturalPatches) buildImages() {
	s.images = make([]*tensor.Matrix, s.NumImages)
	for k := range s.images {
		s.images[k] = synthNaturalImage(s.ImageSide, rng.New(s.Seed^(0xe7037ed1a0b428db*uint64(k+1))))
	}
}

// extract copies patch idx into out and rescales it to [0.1, 0.9].
func (s *NaturalPatches) extract(idx int, out []float64) {
	r := rng.New(s.Seed ^ (0x8ebc6af09c88c6e3 * uint64(idx%s.N+1)))
	img := s.images[r.Intn(len(s.images))]
	maxOff := s.ImageSide - s.PatchSide
	ox := r.Intn(maxOff + 1)
	oy := r.Intn(maxOff + 1)
	k := 0
	minV, maxV := math.Inf(1), math.Inf(-1)
	for y := 0; y < s.PatchSide; y++ {
		row := img.RowView(oy + y)
		for x := 0; x < s.PatchSide; x++ {
			v := row[ox+x]
			out[k] = v
			k++
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	span := maxV - minV
	if span == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return
	}
	scale := 0.8 / span
	for i := range out {
		out[i] = 0.1 + (out[i]-minV)*scale
	}
}

// synthNaturalImage builds one side×side image as a sum of box-blurred
// white-noise octaves: octave o contributes noise smoothed over a window of
// ~2^o pixels with amplitude ∝ 2^o, approximating a 1/f amplitude spectrum.
func synthNaturalImage(side int, r *rng.RNG) *tensor.Matrix {
	img := tensor.NewMatrix(side, side)
	noise := tensor.NewMatrix(side, side)
	octaves := 0
	for w := 2; w < side/4; w *= 2 {
		octaves++
	}
	amp := 1.0
	for o := 0; o < octaves; o++ {
		noise.RandomizeNorm(r, 1)
		// Start at a 2-pixel window: a raw white-noise octave would put
		// half the patch energy at the pixel scale, which natural images
		// do not have.
		window := 2 << o
		boxBlurSeparable(noise, window)
		for i := 0; i < side; i++ {
			dst, src := img.RowView(i), noise.RowView(i)
			for j := range dst {
				dst[j] += amp * src[j]
			}
		}
		amp *= 2
	}
	return img
}

// boxBlurSeparable smooths m in place with a horizontal then vertical
// running-mean of the given window (clamped at borders).
func boxBlurSeparable(m *tensor.Matrix, window int) {
	side := m.Rows
	tmp := make([]float64, side)
	half := window / 2
	// Horizontal pass.
	for i := 0; i < side; i++ {
		row := m.RowView(i)
		runningMean(row, tmp, half)
		copy(row, tmp)
	}
	// Vertical pass via a gathered column buffer.
	col := make([]float64, side)
	for j := 0; j < side; j++ {
		for i := 0; i < side; i++ {
			col[i] = m.At(i, j)
		}
		runningMean(col, tmp, half)
		for i := 0; i < side; i++ {
			m.Set(i, j, tmp[i])
		}
	}
}

// runningMean writes into dst the mean of src over [i-half, i+half],
// clamped to the slice bounds, using a prefix-sum for O(n).
func runningMean(src, dst []float64, half int) {
	n := len(src)
	prefix := make([]float64, n+1)
	for i, v := range src {
		prefix[i+1] = prefix[i] + v
	}
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > n {
			hi = n
		}
		dst[i] = (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}
}
