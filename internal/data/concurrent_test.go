package data

import (
	"sync"
	"testing"

	"phideep/internal/tensor"
)

// chunkConcurrently hammers src with parallel overlapping Chunk reads — the
// Source contract promises safety for concurrent Chunk calls (the Fig. 5
// loading thread prefetches while consumers read) — and verifies every
// worker sees exactly the single-threaded answer, including wrapped ranges.
func chunkConcurrently(t *testing.T, src Source) {
	t.Helper()
	const workers = 8
	const rounds = 4
	n := src.Len() / 2
	want := make([]*tensor.Matrix, workers)
	for w := 0; w < workers; w++ {
		// Distinct overlapping windows; the later ones wrap past Len().
		start := w * src.Len() / 4
		want[w] = tensor.NewMatrix(n, src.Dim())
		src.Chunk(start, n, want[w])
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := w * src.Len() / 4
			got := tensor.NewMatrix(n, src.Dim())
			for r := 0; r < rounds; r++ {
				got.Zero()
				src.Chunk(start, n, got)
				if tensor.MaxAbsDiff(want[w], got) != 0 {
					errs <- "concurrent Chunk diverged from single-threaded read"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestDigitsConcurrentChunk(t *testing.T) {
	chunkConcurrently(t, NewDigits(16, 64, 7, 0.05))
}

func TestNaturalPatchesConcurrentChunk(t *testing.T) {
	// NaturalPatches renders its base images lazily behind a sync.Once;
	// racing first touch is the interesting case.
	chunkConcurrently(t, NewNaturalPatches(12, 64, 11))
}

func TestDigitsConcurrentLabels(t *testing.T) {
	d := NewDigits(16, 64, 9, 0)
	want := make([]int, d.Len())
	for i := range want {
		want[i] = d.Label(i)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < d.Len(); i++ {
				if d.Label(i) != want[i] {
					errs <- "concurrent Label diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestNaturalPatchesWraparound(t *testing.T) {
	s := NewNaturalPatches(12, 20, 3)
	a := tensor.NewMatrix(1, s.Dim())
	b := tensor.NewMatrix(1, s.Dim())
	s.Chunk(7, 1, a)
	s.Chunk(27, 1, b) // 27 mod 20 = 7
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("index wraparound broken")
	}
	// A chunk spanning the end equals its two halves read separately.
	span := tensor.NewMatrix(6, s.Dim())
	s.Chunk(17, 6, span) // rows 17,18,19,0,1,2
	head := tensor.NewMatrix(3, s.Dim())
	tail := tensor.NewMatrix(3, s.Dim())
	s.Chunk(17, 3, head)
	s.Chunk(0, 3, tail)
	for i := 0; i < 3; i++ {
		if !tensor.EqualVec(tensor.Vector(span.RowView(i)), tensor.Vector(head.RowView(i)), 0) ||
			!tensor.EqualVec(tensor.Vector(span.RowView(i+3)), tensor.Vector(tail.RowView(i)), 0) {
			t.Fatal("spanning chunk disagrees with split reads")
		}
	}
}
