package data

import (
	"testing"

	"phideep/internal/tensor"
)

func rowsOf(src Source, start, n int) []float64 {
	m := tensor.NewMatrix(n, src.Dim())
	src.Chunk(start, n, m)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.At(i, 0)
	}
	return out
}

// identitySource serves example i as the single value i.
func identitySource(n int) InMemory {
	x := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
	}
	return InMemory{X: x}
}

func TestShuffledIsAPermutationPerEpoch(t *testing.T) {
	const n = 32
	s := NewShuffled(identitySource(n), 7)
	if s.Dim() != 1 || s.Len() != n {
		t.Fatal("geometry")
	}
	for epoch := 0; epoch < 3; epoch++ {
		vals := rowsOf(s, epoch*n, n)
		seen := map[float64]bool{}
		for _, v := range vals {
			if v < 0 || v >= n || v != float64(int(v)) || seen[v] {
				t.Fatalf("epoch %d: not a permutation: %v", epoch, vals)
			}
			seen[v] = true
		}
	}
}

func TestShuffledEpochsDiffer(t *testing.T) {
	const n = 64
	s := NewShuffled(identitySource(n), 3)
	e0 := rowsOf(s, 0, n)
	e1 := rowsOf(s, n, n)
	same := 0
	for i := range e0 {
		if e0[i] == e1[i] {
			same++
		}
	}
	if same > n/4 {
		t.Fatalf("epochs look identical: %d/%d fixed points", same, n)
	}
	// And the first epoch is not the identity order.
	identity := 0
	for i, v := range e0 {
		if v == float64(i) {
			identity++
		}
	}
	if identity > n/4 {
		t.Fatalf("first epoch barely shuffled: %d fixed points", identity)
	}
}

func TestShuffledDeterministicAndSeedSensitive(t *testing.T) {
	const n = 20
	a := rowsOf(NewShuffled(identitySource(n), 5), 0, n)
	b := rowsOf(NewShuffled(identitySource(n), 5), 0, n)
	c := rowsOf(NewShuffled(identitySource(n), 6), 0, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different orders")
		}
	}
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < n/2 {
		t.Fatal("different seeds gave near-identical orders")
	}
}

func TestShuffledChunkSpanningEpochBoundary(t *testing.T) {
	const n = 10
	s := NewShuffled(identitySource(n), 9)
	// Read a window straddling the boundary, then re-read each side and
	// compare (regenerating the earlier epoch's permutation on demand).
	window := rowsOf(s, 5, 10) // positions 5..14: 5 from epoch 0, 5 from epoch 1
	left := rowsOf(s, 5, 5)
	right := rowsOf(s, 10, 5)
	for i := 0; i < 5; i++ {
		if window[i] != left[i] || window[5+i] != right[i] {
			t.Fatalf("boundary chunk inconsistent: %v vs %v + %v", window, left, right)
		}
	}
}

func TestShuffledTrainsThroughTrainerShape(t *testing.T) {
	// Just the Source contract under a wrapped generator.
	s := NewShuffled(NewDigits(8, 30, 2, 0.01), 4)
	m := tensor.NewMatrix(12, 64)
	s.Chunk(25, 12, m) // spans the wraparound
	if m.FrobeniusNorm() == 0 {
		t.Fatal("no data produced")
	}
}
