package data

import (
	"math"
	"testing"
	"testing/quick"

	"phideep/internal/tensor"
)

func TestDigitsDeterministicAndRanged(t *testing.T) {
	d := NewDigits(16, 100, 7, 0.05)
	if d.Dim() != 256 || d.Len() != 100 {
		t.Fatal("geometry")
	}
	a := tensor.NewMatrix(10, 256)
	b := tensor.NewMatrix(10, 256)
	d.Chunk(5, 10, a)
	d.Chunk(5, 10, b)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("digit generation not deterministic")
	}
	for i := 0; i < a.Rows; i++ {
		for _, v := range a.RowView(i) {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of range: %g", v)
			}
		}
	}
	// Strokes must light up a plausible fraction of the canvas.
	mean := a.Mean()
	if mean < 0.02 || mean > 0.6 {
		t.Fatalf("digit ink fraction %g implausible", mean)
	}
}

func TestDigitsDistinctExamples(t *testing.T) {
	d := NewDigits(16, 50, 1, 0)
	m := tensor.NewMatrix(50, 256)
	d.Chunk(0, 50, m)
	same := 0
	for i := 1; i < 50; i++ {
		if tensor.EqualVec(tensor.Vector(m.RowView(0)), tensor.Vector(m.RowView(i)), 1e-9) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d duplicate digit images", same)
	}
}

func TestDigitsWraparound(t *testing.T) {
	d := NewDigits(16, 10, 3, 0.01)
	a := tensor.NewMatrix(1, 256)
	b := tensor.NewMatrix(1, 256)
	d.Chunk(3, 1, a)
	d.Chunk(13, 1, b) // 13 mod 10 = 3
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("index wraparound broken")
	}
}

func TestDigitsLabelsStable(t *testing.T) {
	d := NewDigits(16, 30, 9, 0)
	counts := map[int]int{}
	for i := 0; i < 30; i++ {
		l := d.Label(i)
		if l < 0 || l > 9 {
			t.Fatalf("label %d", l)
		}
		if d.Label(i) != l {
			t.Fatal("labels not stable")
		}
		counts[l]++
	}
	if len(counts) < 5 {
		t.Fatalf("only %d distinct digit classes in 30 draws", len(counts))
	}
}

func TestNaturalPatchesProperties(t *testing.T) {
	s := NewNaturalPatches(12, 200, 11)
	if s.Dim() != 144 || s.Len() != 200 {
		t.Fatal("geometry")
	}
	a := tensor.NewMatrix(50, 144)
	s.Chunk(0, 50, a)
	b := tensor.NewMatrix(50, 144)
	s.Chunk(0, 50, b)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("patch extraction not deterministic")
	}
	for i := 0; i < a.Rows; i++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range a.RowView(i) {
			if v < 0.1-1e-9 || v > 0.9+1e-9 {
				t.Fatalf("patch value %g outside [0.1, 0.9]", v)
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		// Rescaling hits both ends of the range.
		if hi-lo < 0.79 {
			t.Fatalf("patch %d not spanning the target range: [%g, %g]", i, lo, hi)
		}
	}
}

func TestNaturalPatchesSpatialSmoothness(t *testing.T) {
	// 1/f-like images: neighboring pixels correlate much more than
	// far-apart pixels, unlike white noise.
	s := NewNaturalPatches(16, 100, 5)
	m := tensor.NewMatrix(100, 256)
	s.Chunk(0, 100, m)
	adjacent, far := 0.0, 0.0
	n := 0
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for y := 0; y < 16; y++ {
			for x := 0; x+8 < 16; x++ {
				p := row[y*16+x]
				adjacent += math.Abs(p - row[y*16+x+1])
				far += math.Abs(p - row[y*16+x+8])
				n++
			}
		}
	}
	if !(adjacent/float64(n) < 0.5*far/float64(n)) {
		t.Fatalf("patches not smooth: adjacent diff %g vs far diff %g", adjacent/float64(n), far/float64(n))
	}
}

func TestInMemorySourceAndMaterialize(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := InMemory{X: x}
	if s.Dim() != 2 || s.Len() != 3 {
		t.Fatal("geometry")
	}
	dst := tensor.NewMatrix(4, 2)
	s.Chunk(1, 4, dst) // wraps: rows 1, 2, 0, 1
	want := tensor.FromRows([][]float64{{3, 4}, {5, 6}, {1, 2}, {3, 4}})
	if !tensor.Equal(want, dst, 0) {
		t.Fatalf("wraparound chunk wrong: %v", dst)
	}
	m := Materialize(s)
	if !tensor.Equal(m, x, 0) {
		t.Fatal("Materialize")
	}
}

func TestNullSource(t *testing.T) {
	s := Null{D: 5, N: 10}
	dst := tensor.NewMatrix(3, 5)
	dst.Fill(7)
	s.Chunk(0, 3, dst)
	if dst.At(0, 0) != 7 {
		t.Fatal("Null must not touch the destination")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad chunk shape should panic")
		}
	}()
	s.Chunk(0, 3, tensor.NewMatrix(3, 4))
}

func TestChunkValidation(t *testing.T) {
	s := Null{D: 2, N: 4}
	for _, f := range []func(){
		func() { s.Chunk(-1, 1, tensor.NewMatrix(1, 2)) },
		func() { s.Chunk(0, -1, tensor.NewMatrix(0, 2)) },
		func() { Null{D: 2, N: 0}.Chunk(0, 1, tensor.NewMatrix(1, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRescale(t *testing.T) {
	m := tensor.FromRows([][]float64{{-2, 0}, {2, 1}})
	Rescale(m, 0.1, 0.9)
	if math.Abs(m.At(0, 0)-0.1) > 1e-15 || math.Abs(m.At(1, 0)-0.9) > 1e-15 {
		t.Fatalf("rescale endpoints: %v", m)
	}
	flat := tensor.FromRows([][]float64{{3, 3}})
	Rescale(flat, 0, 1)
	if flat.At(0, 0) != 0.5 {
		t.Fatal("constant matrix must map to midpoint")
	}
	Rescale(tensor.NewMatrix(0, 0), 0, 1) // no panic on empty
}

func TestRescaleQuick(t *testing.T) {
	f := func(seed int64, lo8, span8 uint8) bool {
		lo := float64(lo8)/255 - 0.5
		hi := lo + float64(span8)/255 + 0.01
		m := tensor.NewMatrix(5, 5)
		for i := range m.Data {
			m.Data[i] = float64((seed>>uint(i%32))&0xff) / 10
		}
		Rescale(m, lo, hi)
		for _, v := range m.Data {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDigitsTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDigits(4, 10, 1, 0)
}
