package data

import (
	"strings"
	"testing"
)

func TestPlanChunksExplicit(t *testing.T) {
	p, err := PlanChunks(PlanRequest{SourceLen: 1000, Batch: 10, ChunkExamples: 40})
	if err != nil {
		t.Fatal(err)
	}
	if p.Batch != 10 || p.ChunkExamples != 40 || p.SourceLen != 1000 {
		t.Fatalf("plan %+v", p)
	}
	if p.BatchesPerChunk() != 4 {
		t.Fatal("batches per chunk")
	}
	if p.Chunks(9) != 3 || p.Chunks(8) != 2 {
		t.Fatal("chunk count")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanChunksAutoSize(t *testing.T) {
	// Unconstrained memory: min(srcLen, 32×batch) rounded to a batch multiple.
	p, err := PlanChunks(PlanRequest{SourceLen: 1000, Batch: 10, ExampleDoubles: 4, FreeBytes: NoMemLimit})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChunkExamples != 320 {
		t.Fatalf("default chunk %d, want 320", p.ChunkExamples)
	}
	// Short source: clamp to srcLen/batch*batch.
	p, err = PlanChunks(PlanRequest{SourceLen: 57, Batch: 10, ExampleDoubles: 4, FreeBytes: NoMemLimit})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChunkExamples != 50 {
		t.Fatalf("clamped chunk %d, want 50", p.ChunkExamples)
	}
}

func TestPlanChunksMemoryClamp(t *testing.T) {
	// perExample = 4 doubles × 8 B × depth 2 = 64 B. 2000 B of staging →
	// 31 examples → rounded down to 30 (batch 10).
	p, err := PlanChunks(PlanRequest{SourceLen: 1000, Batch: 10, ExampleDoubles: 4, BufferDepth: 2, FreeBytes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChunkExamples != 30 {
		t.Fatalf("memory-clamped chunk %d, want 30", p.ChunkExamples)
	}
	// Not even one batch fits.
	if _, err := PlanChunks(PlanRequest{SourceLen: 1000, Batch: 10, ExampleDoubles: 4, BufferDepth: 2, FreeBytes: 500}); err == nil {
		t.Fatal("want error when staging memory cannot hold one batch")
	}
}

func TestPlanChunksErrors(t *testing.T) {
	cases := []struct {
		req  PlanRequest
		want string
	}{
		{PlanRequest{SourceLen: 100, Batch: 0}, "positive"},
		{PlanRequest{SourceLen: 5, Batch: 10}, "smaller than one batch"},
		{PlanRequest{SourceLen: 100, Batch: 10, ChunkExamples: 45}, "multiple"},
		{PlanRequest{SourceLen: 100, Batch: 10, ChunkExamples: -10}, "multiple"},
		{PlanRequest{SourceLen: 100, Batch: 10, FreeBytes: NoMemLimit}, "per-example width"},
	}
	for _, c := range cases {
		_, err := PlanChunks(c.req)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("PlanChunks(%+v) = %v, want error containing %q", c.req, err, c.want)
		}
	}
}

func TestPlanChunkStartWraps(t *testing.T) {
	p := ChunkPlan{Batch: 10, ChunkExamples: 30, SourceLen: 100}
	// Chunk starts advance by ChunkExamples modulo SourceLen — the same
	// arithmetic the trainer's chunk loop used inline.
	want := []int{0, 30, 60, 90, 20, 50}
	for seq, w := range want {
		if got := p.ChunkStart(seq); got != w {
			t.Fatalf("ChunkStart(%d) = %d, want %d", seq, got, w)
		}
	}
}
