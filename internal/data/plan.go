package data

import (
	"fmt"
	"math"
)

// NoMemLimit marks a PlanRequest that is not constrained by device staging
// memory (callers that stage on the host, or validate an explicit chunk
// size).
const NoMemLimit = int64(math.MaxInt64)

// ChunkPlan is the validated chunk geometry of the Fig. 5 streaming
// pipeline: how a source of SourceLen examples is cut into device-sized
// chunks of ChunkExamples, each an exact number of Batch-sized minibatches.
// One plan is shared by every layer that walks the stream — the trainer's
// prefetch ring, the cluster's per-node shards and the feed's lease
// protocol — so chunk/batch divisibility rules cannot drift between them.
type ChunkPlan struct {
	// Batch is the minibatch size; ChunkExamples is a positive multiple
	// of it.
	Batch         int
	ChunkExamples int
	// SourceLen is the length of the source the plan was validated
	// against; chunk starts wrap modulo it.
	SourceLen int
}

// PlanRequest is the geometry PlanChunks validates and defaults.
type PlanRequest struct {
	// SourceLen is the number of examples in the source; it must hold at
	// least one Batch.
	SourceLen int
	// Batch is the model minibatch size.
	Batch int
	// ChunkExamples is the requested chunk size; it must be a positive
	// multiple of Batch, or zero to auto-size (min(SourceLen, 32×Batch)
	// rounded down to a batch multiple, then shrunk to fit FreeBytes).
	ChunkExamples int
	// BufferDepth is the number of staging buffers the consumer keeps in
	// flight (2 = double buffering); it scales the memory the auto-sizer
	// budgets. Zero defaults to 2.
	BufferDepth int
	// ExampleDoubles is the number of float64 values staged per example
	// (the input dimensionality, plus the class count when one-hot label
	// chunks ride along).
	ExampleDoubles int
	// FreeBytes is the staging memory available to the auto-sizer —
	// typically what is left of device global memory next to the model.
	// Pass NoMemLimit when staging is not memory-constrained.
	FreeBytes int64
}

// PlanChunks validates req and returns the resulting plan. It is the one
// place the chunk/batch arithmetic of the paper's "large chunk" streaming
// lives; trainer, cluster and feed all build their geometry here.
func PlanChunks(req PlanRequest) (ChunkPlan, error) {
	if req.Batch <= 0 {
		return ChunkPlan{}, fmt.Errorf("data: plan batch %d is not positive", req.Batch)
	}
	if req.SourceLen < req.Batch {
		return ChunkPlan{}, fmt.Errorf("data: source has %d examples, smaller than one batch of %d", req.SourceLen, req.Batch)
	}
	if req.BufferDepth <= 0 {
		req.BufferDepth = 2
	}
	chunk := req.ChunkExamples
	if chunk == 0 {
		chunk = 32 * req.Batch
		if max := req.SourceLen / req.Batch * req.Batch; chunk > max {
			chunk = max
		}
		// Shrink the default so the staging ring fits the budgeted memory —
		// the 8 GB device constraint that shapes the paper's chunking in
		// the first place.
		if req.ExampleDoubles <= 0 {
			return ChunkPlan{}, fmt.Errorf("data: plan needs the per-example width to auto-size chunks, got %d", req.ExampleDoubles)
		}
		perExample := int64(req.ExampleDoubles) * 8 * int64(req.BufferDepth)
		if maxExamples := req.FreeBytes / perExample; int64(chunk) > maxExamples {
			chunk = int(maxExamples) / req.Batch * req.Batch
		}
		if chunk < req.Batch {
			return ChunkPlan{}, fmt.Errorf("data: %d B of staging memory cannot hold even one %d-example batch of %d doubles",
				req.FreeBytes, req.Batch, req.ExampleDoubles)
		}
	}
	if chunk <= 0 || chunk%req.Batch != 0 {
		return ChunkPlan{}, fmt.Errorf("data: chunk of %d examples is not a positive multiple of batch %d", chunk, req.Batch)
	}
	return ChunkPlan{Batch: req.Batch, ChunkExamples: chunk, SourceLen: req.SourceLen}, nil
}

// Validate re-checks an assembled plan (one received over a config struct
// rather than built by PlanChunks).
func (p ChunkPlan) Validate() error {
	_, err := PlanChunks(PlanRequest{SourceLen: p.SourceLen, Batch: p.Batch, ChunkExamples: p.ChunkExamples})
	return err
}

// BatchesPerChunk returns the number of minibatches one chunk holds.
func (p ChunkPlan) BatchesPerChunk() int { return p.ChunkExamples / p.Batch }

// ChunkStart returns the first example index of global chunk seq; chunks
// wrap modulo SourceLen so multi-epoch streams never run off the end.
func (p ChunkPlan) ChunkStart(seq int) int { return (seq * p.ChunkExamples) % p.SourceLen }

// Chunks returns the number of chunks needed to issue steps minibatch
// updates.
func (p ChunkPlan) Chunks(steps int) int {
	bpc := p.BatchesPerChunk()
	return (steps + bpc - 1) / bpc
}
