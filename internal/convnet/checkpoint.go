package convnet

import (
	"fmt"
	"io"

	"phideep/internal/rng"
)

// SaveState writes the model's resumable training state to w: the
// device-resident parameters (downloaded over the simulated PCIe link, so
// checkpointing has a visible transfer cost) followed by the context's
// RNG state. Momentum velocity is not captured; exact resume holds for
// the velocity-free configuration.
func (m *Model) SaveState(w io.Writer) error {
	if err := m.Download().Save(w); err != nil {
		return err
	}
	state, err := m.Ctx.RNG.MarshalBinary()
	if err != nil {
		return err
	}
	if _, err := w.Write(state); err != nil {
		return fmt.Errorf("convnet: save state: %w", err)
	}
	return nil
}

// RestoreState reads state written by SaveState, uploads the parameters to
// the device and restores the RNG stream.
func (m *Model) RestoreState(r io.Reader) error {
	p := zeroParams(m.Cfg)
	if err := p.Load(r); err != nil {
		return err
	}
	state := make([]byte, rng.MarshaledSize())
	if _, err := io.ReadFull(r, state); err != nil {
		return fmt.Errorf("convnet: restore state: %w", err)
	}
	if err := m.Ctx.RNG.UnmarshalBinary(state); err != nil {
		return err
	}
	m.Upload(p)
	return nil
}
