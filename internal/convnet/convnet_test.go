package convnet

import (
	"bytes"
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func testCfg() Config {
	return Config{
		Side: 8, Filters1: 3, Kernel1: 3, Filters2: 4, Kernel2: 3,
		Pool: 2, Classes: 3, Lambda: 1e-3, Batch: 4, Seed: 1,
	}
}

func labeledImages(cfg Config, r *rng.RNG, n int) (*tensor.Matrix, *tensor.Matrix, []int) {
	x := tensor.NewMatrix(n, cfg.InputDim()).Randomize(r, 0, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = r.Intn(cfg.Classes)
	}
	y := tensor.NewMatrix(n, cfg.Classes)
	kernels.OneHot(labels, y)
	return x, y, labels
}

func newModel(t *testing.T, ctx *blas.Context, cfg Config) *Model {
	t.Helper()
	m, err := Build(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDeviceForwardMatchesReference drives the lowered device pipeline at
// every ladder level against the scalar direct-convolution reference. At
// Naive level the lowered GEMM sums taps in the same (ky, kx, c) order the
// reference does and every elementwise op is order-identical, so agreement
// is bitwise; blocked levels regroup the K loop and get a tolerance.
func TestDeviceForwardMatchesReference(t *testing.T) {
	cfg := testCfg()
	p := NewParams(cfg, 5)
	x, _, _ := labeledImages(cfg, rng.New(6), cfg.Batch)

	for _, lvl := range kernels.Levels {
		for _, improved := range []bool{false, true} {
			dev := device.New(sim.XeonPhi5110P(), true, nil)
			ctx := blas.NewContext(dev, lvl, 1)
			ctx.AutoFuse = improved
			ctx.AutoConcurrent = improved
			m := newModel(t, ctx, cfg)
			m.Upload(p)
			dx := dev.MustAlloc(cfg.Batch, cfg.InputDim())
			dev.CopyIn(dx, x, 0)
			m.Forward(dx)
			for i := 0; i < cfg.Batch; i++ {
				want := p.PredictProbs(cfg, x.RowView(i))
				got := m.Probs().Mat.RowView(i)
				for j := range want {
					diff := math.Abs(got[j] - want[j])
					if lvl == kernels.Naive && diff != 0 {
						t.Fatalf("level %v improved=%v row %d class %d: %g vs %g not bitwise", lvl, improved, i, j, got[j], want[j])
					}
					if diff > 1e-12 {
						t.Fatalf("level %v improved=%v row %d class %d: |%g-%g| = %g", lvl, improved, i, j, got[j], want[j], diff)
					}
				}
			}
			m.Free()
		}
	}
}

// TestGradientMatchesFiniteDifferences checks the device backward pass
// against central finite differences of the full objective (batch-mean
// cross-entropy plus the λ/2·Σ‖W‖² penalty) through the flat parameter
// view.
func TestGradientMatchesFiniteDifferences(t *testing.T) {
	cfg := testCfg()
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 2)
	m := newModel(t, ctx, cfg)
	defer m.Free()

	p := NewParams(cfg, 7)
	x, y, _ := labeledImages(cfg, rng.New(8), cfg.Batch)
	dx := dev.MustAlloc(cfg.Batch, cfg.InputDim())
	dy := dev.MustAlloc(cfg.Batch, cfg.Classes)
	dev.CopyIn(dx, x, 0)
	dev.CopyIn(dy, y, 0)

	objective := func() float64 {
		m.Upload(p)
		m.Forward(dx)
		loss := ctx.CrossEntropyOneHot(m.Probs(), dy) / float64(cfg.Batch)
		for _, w := range []*tensor.Matrix{p.Conv1.W, p.Conv2.W, p.W3} {
			loss += cfg.Lambda / 2 * w.SumSquares()
		}
		return loss
	}

	m.Upload(p)
	m.Forward(dx)
	m.Backward(dx, dy)
	analytic := make([]float64, 0)
	for _, g := range []*device.Buffer{m.GW[0], m.GB[0], m.GW[1], m.GB[1], m.GW[2], m.GB[2]} {
		analytic = append(analytic, g.Mat.Data...)
	}

	ps := p.ParamSet()
	theta := ps.Flatten(nil)
	if len(theta) != len(analytic) {
		t.Fatalf("flat views disagree: %d params, %d gradients", len(theta), len(analytic))
	}
	const h = 1e-6
	maxRel := 0.0
	for i := 0; i < len(theta); i += 7 {
		orig := theta[i]
		theta[i] = orig + h
		ps.Unflatten(theta)
		cp := objective()
		theta[i] = orig - h
		ps.Unflatten(theta)
		cm := objective()
		theta[i] = orig
		ps.Unflatten(theta)
		numeric := (cp - cm) / (2 * h)
		denom := math.Max(1e-8, math.Abs(numeric)+math.Abs(analytic[i]))
		if rel := math.Abs(numeric-analytic[i]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-5 {
		t.Fatalf("max relative gradient error %g", maxRel)
	}
}

// The ParamSet flat order must match the device gradient buffer order the
// finite-difference test concatenates: conv1.W, conv1.b, conv2.W, conv2.b,
// W3, b3.
func TestParamSetOrder(t *testing.T) {
	names := NewParams(testCfg(), 1).ParamSet().Names()
	want := []string{"conv1.W", "conv1.b", "conv2.W", "conv2.b", "W3", "b3"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v, want %v", names, want)
		}
	}
}

// TestTrainingLearnsDigits runs the supervised loop end-to-end through
// core.Trainer.RunLabeled on the synthetic digits and requires the
// cross-entropy to fall.
func TestTrainingLearnsDigits(t *testing.T) {
	cfg := Config{
		Side: 8, Filters1: 4, Kernel1: 3, Filters2: 6, Kernel2: 3,
		Pool: 2, Classes: 10, Lambda: 1e-5, Momentum: 0.5, Batch: 16, Seed: 2,
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 3)
	ctx.AutoFuse = true
	ctx.AutoConcurrent = true
	m := newModel(t, ctx, cfg)
	defer m.Free()

	src := data.NewDigits(cfg.Side, 256, 11, 0.05)
	tr := &core.Trainer{Dev: dev, Cfg: core.TrainConfig{Epochs: 30, LR: 0.7, Prefetch: true}}
	res, err := tr.RunLabeled(m, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Examples != 30*256 {
		t.Fatalf("consumed %d examples", res.Examples)
	}
	if !(res.FinalLoss < 0.7*res.FirstLoss) {
		t.Fatalf("cross-entropy did not fall: %g → %g", res.FirstLoss, res.FinalLoss)
	}
}

// TestStepDeterministicAcrossWorkers asserts the CHAOS split's determinism
// claim at model level: one full supervised step produces bitwise-identical
// parameters however many host workers execute the kernels.
func TestStepDeterministicAcrossWorkers(t *testing.T) {
	cfg := testCfg()
	cfg.Momentum = 0.5
	x, y, _ := labeledImages(cfg, rng.New(9), cfg.Batch)

	step := func(workers int) *Params {
		dev := device.New(sim.XeonPhi5110P(), true, parallel.NewPool(workers))
		ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
		m := newModel(t, ctx, cfg)
		defer m.Free()
		dx := dev.MustAlloc(cfg.Batch, cfg.InputDim())
		dy := dev.MustAlloc(cfg.Batch, cfg.Classes)
		dev.CopyIn(dx, x, 0)
		dev.CopyIn(dy, y, 0)
		for i := 0; i < 3; i++ {
			m.StepLabeled(dx, dy, 0.3)
		}
		return m.Download()
	}

	ref := step(1)
	for _, workers := range []int{2, 5} {
		got := step(workers)
		for _, pair := range [][2]*tensor.Matrix{
			{got.Conv1.W, ref.Conv1.W}, {got.Conv2.W, ref.Conv2.W}, {got.W3, ref.W3},
		} {
			if d := tensor.MaxAbsDiff(pair[0], pair[1]); d != 0 {
				t.Fatalf("workers=%d: weights differ by %g", workers, d)
			}
		}
	}
}

// TestCheckpointResume trains, snapshots mid-run, and requires the restored
// model to continue to bitwise-identical parameters.
func TestCheckpointResume(t *testing.T) {
	cfg := testCfg()
	x, y, _ := labeledImages(cfg, rng.New(13), cfg.Batch)

	run := func(m *Model, dev *device.Device, steps int) {
		dx := dev.MustAlloc(cfg.Batch, cfg.InputDim())
		dy := dev.MustAlloc(cfg.Batch, cfg.Classes)
		dev.CopyIn(dx, x, 0)
		dev.CopyIn(dy, y, 0)
		for i := 0; i < steps; i++ {
			m.StepLabeled(dx, dy, 0.4)
		}
	}

	devA := device.New(sim.XeonPhi5110P(), true, nil)
	mA := newModel(t, blas.NewContext(devA, kernels.ParallelBlocked, 3), cfg)
	run(mA, devA, 3)
	var snap bytes.Buffer
	if err := mA.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	run(mA, devA, 4)
	want := mA.Download()

	devB := device.New(sim.XeonPhi5110P(), true, nil)
	mB := newModel(t, blas.NewContext(devB, kernels.ParallelBlocked, 99), cfg)
	if err := mB.RestoreState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	run(mB, devB, 4)
	got := mB.Download()

	if d := tensor.MaxAbsDiff(got.Conv1.W, want.Conv1.W); d != 0 {
		t.Fatalf("conv1 weights diverged by %g after resume", d)
	}
	if d := tensor.MaxAbsDiff(got.W3, want.W3); d != 0 {
		t.Fatalf("head weights diverged by %g after resume", d)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	cfg := testCfg()
	p := NewParams(cfg, 21)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := zeroParams(cfg)
	if err := q.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(p.Conv1.W, q.Conv1.W); d != 0 {
		t.Fatalf("conv1 diff %g", d)
	}
	if d := tensor.MaxAbsDiff(p.W3, q.W3); d != 0 {
		t.Fatalf("W3 diff %g", d)
	}
	// A checkpoint for different geometry must be rejected.
	other := cfg
	other.Filters1 = 5
	if err := zeroParams(other).Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("geometry mismatch must fail to load")
	}
}

// TestInference32MatchesReference bounds the float32 serving path against
// the float64 scalar reference: per-class probability error within the
// reduced-precision budget at every ladder level, and argmax agreement.
func TestInference32MatchesReference(t *testing.T) {
	cfg := testCfg()
	p := NewParams(cfg, 31)
	p32 := p.To32()
	n := 5
	x, _, _ := labeledImages(cfg, rng.New(32), n)
	x32 := x.To32()

	for _, lvl := range kernels.Levels {
		inf := NewInference32(nil, lvl, cfg, n, p32)
		probs := inf.Infer(x32)
		for i := 0; i < n; i++ {
			want := p.PredictProbs(cfg, x.RowView(i))
			got := probs.RowView(i)
			for j := range want {
				if d := math.Abs(float64(got[j]) - want[j]); d > 1e-4 {
					t.Fatalf("level %v row %d class %d: f32 %g vs f64 %g", lvl, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestInferPartialBatch checks that sliced-workspace inference on fewer
// rows than the model batch matches per-example reference outputs, for
// both precisions.
func TestInferPartialBatch(t *testing.T) {
	cfg := testCfg()
	p := NewParams(cfg, 41)
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := NewInference(ctx, cfg, cfg.Batch, p)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()

	n := cfg.Batch - 1
	x, _, _ := labeledImages(cfg, rng.New(42), n)
	dx := dev.MustAlloc(n, cfg.InputDim())
	dev.CopyIn(dx, x, 0)
	out := m.Infer(dx)
	if out.Rows != n || out.Cols != cfg.Classes {
		t.Fatalf("inference output %dx%d", out.Rows, out.Cols)
	}
	for i := 0; i < n; i++ {
		want := p.PredictProbs(cfg, x.RowView(i))
		got := out.Mat.RowView(i)
		for j := range want {
			if d := math.Abs(got[j] - want[j]); d > 1e-12 {
				t.Fatalf("row %d class %d: %g vs %g", i, j, got[j], want[j])
			}
		}
	}

	inf32 := NewInference32(nil, kernels.ParallelBlocked, cfg, cfg.Batch, p.To32())
	out32 := inf32.Infer(x.To32())
	if out32.Rows != n {
		t.Fatalf("f32 inference rows %d", out32.Rows)
	}
}

func TestInferenceModelRejectsTraining(t *testing.T) {
	cfg := testCfg()
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m, err := NewInference(blas.NewContext(dev, kernels.Naive, 1), cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyUpdate on an inference model must panic")
		}
	}()
	m.ApplyUpdate(0.1)
}

func TestConfigValidation(t *testing.T) {
	base := testCfg()
	mutate := func(f func(*Config)) Config {
		c := base
		f(&c)
		return c
	}
	for _, bad := range []Config{
		mutate(func(c *Config) { c.Side = 3 }),
		mutate(func(c *Config) { c.Filters1 = 0 }),
		mutate(func(c *Config) { c.Kernel1 = 4 }),
		mutate(func(c *Config) { c.Kernel2 = 0 }),
		mutate(func(c *Config) { c.Pool = 1 }),
		mutate(func(c *Config) { c.Pool = 3 }),              // 8 % 3 != 0
		mutate(func(c *Config) { c.Side = 12; c.Pool = 4 }), // 12/4=3 not divisible by 4
		mutate(func(c *Config) { c.Classes = 1 }),
		mutate(func(c *Config) { c.Lambda = -1 }),
		mutate(func(c *Config) { c.Momentum = 1 }),
		mutate(func(c *Config) { c.Batch = -1 }),
		mutate(func(c *Config) { c.Kernel2 = 5 }), // larger than 8/2=4 input
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should fail validation", bad)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	zero := base
	zero.Batch = 0
	if _, err := Build(blas.NewContext(dev, kernels.Naive, 1), zero); err == nil {
		t.Error("zero batch must fail")
	}
}

func TestFreeReleasesAll(t *testing.T) {
	cfg := testCfg()
	cfg.Momentum = 0.9
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	m := newModel(t, blas.NewContext(dev, kernels.Naive, 1), cfg)
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestModelOnlyChargesTime(t *testing.T) {
	cfg := Config{
		Side: 16, Filters1: 8, Kernel1: 5, Filters2: 16, Kernel2: 3,
		Pool: 2, Classes: 10, Batch: 64, Seed: 1,
	}
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m := newModel(t, ctx, cfg)
	defer m.Free()
	dx := dev.MustAlloc(cfg.Batch, cfg.InputDim())
	dy := dev.MustAlloc(cfg.Batch, cfg.Classes)
	dev.CopyIn(dx, nil, 0)
	dev.CopyIn(dy, nil, 0)
	if loss := m.StepLabeled(dx, dy, 0.1); loss != 0 {
		t.Fatalf("model-only loss %g", loss)
	}
	if dev.Now() <= 0 {
		t.Fatal("no simulated time charged")
	}
}
