// Package convnet implements the convolutional workload family opened by
// ROADMAP item 1: a LeNet-style classifier — conv → pool → conv → pool →
// softmax — trained and served on the simulated coprocessor. Convolutions
// are lowered CHAOS-style (Viebke et al., arXiv 1702.07908) through
// kernels.Im2col into the packed GEMM micro-kernel, so the same Table I
// optimization ladder that drives the dense models drives this one; thread
// parallelization splits the batch's images across workers and filter
// blocks within them (DESIGN.md §12). Training runs supervised on the
// synthetic digits through core.Trainer.RunLabeled with full PHCK
// checkpoint/resume; forward-only float64 and float32 replicas plug into
// internal/serve.
package convnet

import (
	"fmt"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/tensor"
)

// Config describes the LeNet-style network. The input is a Side×Side
// single-channel image (one data.Digits row); both conv layers use
// "same" padding (odd kernels, stride 1) and sigmoid activations; both
// pooling layers are non-overlapping Pool×Pool maxima; the head is a
// dense softmax over Classes.
type Config struct {
	Side     int // input image side; InputDim = Side²
	Filters1 int // conv1 output channels
	Kernel1  int // conv1 kernel side (odd)
	Filters2 int // conv2 output channels
	Kernel2  int // conv2 kernel side (odd)
	Pool     int // pooling window and stride (applied twice)
	Classes  int
	Lambda   float64 // L2 penalty on all weights
	// Momentum, when non-zero, applies classical momentum to every layer.
	Momentum float64
	// Batch is the minibatch size the device-resident model is built for.
	Batch int
	// Seed initializes the parameters. Zero is a valid seed.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Side < 4 {
		return fmt.Errorf("convnet: side %d too small", c.Side)
	}
	if c.Filters1 <= 0 || c.Filters2 <= 0 {
		return fmt.Errorf("convnet: non-positive filter counts %d, %d", c.Filters1, c.Filters2)
	}
	if c.Kernel1 <= 0 || c.Kernel1%2 == 0 || c.Kernel2 <= 0 || c.Kernel2%2 == 0 {
		return fmt.Errorf("convnet: kernels %d, %d must be positive and odd (same padding)", c.Kernel1, c.Kernel2)
	}
	if c.Pool <= 1 {
		return fmt.Errorf("convnet: pool %d must be at least 2", c.Pool)
	}
	if c.Side%c.Pool != 0 || (c.Side/c.Pool)%c.Pool != 0 {
		return fmt.Errorf("convnet: side %d not divisible by pool %d twice", c.Side, c.Pool)
	}
	if c.Classes < 2 {
		return fmt.Errorf("convnet: need at least 2 classes, got %d", c.Classes)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("convnet: negative lambda %g", c.Lambda)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("convnet: momentum %g outside [0,1)", c.Momentum)
	}
	if c.Batch < 0 {
		return fmt.Errorf("convnet: negative batch size %d", c.Batch)
	}
	if c.Kernel1 > c.Side || c.Kernel2 > c.Side/c.Pool {
		return fmt.Errorf("convnet: kernel larger than its layer input")
	}
	return nil
}

// InputDim returns the example dimensionality Side².
func (c Config) InputDim() int { return c.Side * c.Side }

// Conv1Shape returns the first conv layer geometry.
func (c Config) Conv1Shape() kernels.ConvShape {
	return kernels.ConvShape{
		C: 1, H: c.Side, W: c.Side, F: c.Filters1,
		KH: c.Kernel1, KW: c.Kernel1, Stride: 1, Pad: (c.Kernel1 - 1) / 2,
	}
}

// Pool1Shape returns the first pooling geometry.
func (c Config) Pool1Shape() kernels.PoolShape {
	return kernels.PoolShape{C: c.Filters1, H: c.Side, W: c.Side, Size: c.Pool, Stride: c.Pool}
}

// Conv2Shape returns the second conv layer geometry.
func (c Config) Conv2Shape() kernels.ConvShape {
	s := c.Side / c.Pool
	return kernels.ConvShape{
		C: c.Filters1, H: s, W: s, F: c.Filters2,
		KH: c.Kernel2, KW: c.Kernel2, Stride: 1, Pad: (c.Kernel2 - 1) / 2,
	}
}

// Pool2Shape returns the second pooling geometry.
func (c Config) Pool2Shape() kernels.PoolShape {
	s := c.Side / c.Pool
	return kernels.PoolShape{C: c.Filters2, H: s, W: s, Size: c.Pool, Stride: c.Pool}
}

// FCInputDim returns the flattened dimensionality feeding the softmax head.
func (c Config) FCInputDim() int { return c.Pool2Shape().OutDim() }

// Model is the device-resident convnet. Parameter, gradient and velocity
// buffers are indexed 0 = conv1, 1 = conv2, 2 = softmax head.
type Model struct {
	Cfg   Config
	Ctx   *blas.Context
	Batch int

	c1, c2 kernels.ConvShape
	p1, p2 kernels.PoolShape

	W, B   []*device.Buffer // W[0]: ColK1×F1, W[1]: ColK2×F2, W[2]: fcIn×Classes
	GW, GB []*device.Buffer
	vW, vB []*device.Buffer // momentum velocities (nil entries when off)

	// Forward workspace. Conv activations live in the GEMM's
	// (batch·oHW)×F geometry; pooling reads the same storage as
	// batch×(oHW·F) NHWC rows — the layout identity of the lowering.
	cols1, a1, pl1, arg1 *device.Buffer
	cols2, a2, pl2, arg2 *device.Buffer
	out                  *device.Buffer // batch×Classes softmax probabilities

	// Backward workspace (training models only). a1/a2 are destroyed by
	// Backward (their sigmoid derivative overwrites them).
	d3, dpl2, da2, dcols2, dpl1, da1 *device.Buffer

	// inferOnly marks a forward-only model built by NewInference.
	inferOnly bool
}

// Build allocates a training model for cfg.Batch examples with the random
// initialization drawn from cfg.Seed.
func Build(ctx *blas.Context, cfg Config) (*Model, error) {
	m, err := build(ctx, cfg, cfg.Batch, false)
	if err != nil {
		return nil, err
	}
	m.Upload(NewParams(cfg, cfg.Seed))
	return m, nil
}

// NewInference allocates a forward-only model for up to batch examples:
// weights, biases and forward workspace only. p, when non-nil, provides
// the weights; nil initializes from cfg.Seed. Only Infer, Forward, Upload
// and Download work on an inference model — the training entry points
// panic.
func NewInference(ctx *blas.Context, cfg Config, batch int, p *Params) (*Model, error) {
	m, err := build(ctx, cfg, batch, true)
	if err != nil {
		return nil, err
	}
	if p == nil {
		p = NewParams(cfg, cfg.Seed)
	}
	m.Upload(p)
	return m, nil
}

func build(ctx *blas.Context, cfg Config, batch int, inferOnly bool) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("convnet: non-positive batch %d", batch)
	}
	m := &Model{
		Cfg: cfg, Ctx: ctx, Batch: batch, inferOnly: inferOnly,
		c1: cfg.Conv1Shape(), c2: cfg.Conv2Shape(),
		p1: cfg.Pool1Shape(), p2: cfg.Pool2Shape(),
	}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}

	fcIn := cfg.FCInputDim()
	wShapes := [3][2]int{
		{m.c1.ColK(), m.c1.F},
		{m.c2.ColK(), m.c2.F},
		{fcIn, cfg.Classes},
	}
	m.W, m.B = make([]*device.Buffer, 3), make([]*device.Buffer, 3)
	for l, s := range wShapes {
		m.W[l], m.B[l] = alloc(s[0], s[1]), alloc(1, s[1])
	}

	o1HW := m.c1.OutH() * m.c1.OutW()
	o2HW := m.c2.OutH() * m.c2.OutW()
	m.cols1 = alloc(batch*o1HW, m.c1.ColK())
	m.a1 = alloc(batch*o1HW, m.c1.F)
	m.pl1 = alloc(batch, m.p1.OutDim())
	m.arg1 = alloc(batch, m.p1.OutDim())
	m.cols2 = alloc(batch*o2HW, m.c2.ColK())
	m.a2 = alloc(batch*o2HW, m.c2.F)
	m.pl2 = alloc(batch, m.p2.OutDim())
	m.arg2 = alloc(batch, m.p2.OutDim())
	m.out = alloc(batch, cfg.Classes)

	if !inferOnly {
		m.GW, m.GB = make([]*device.Buffer, 3), make([]*device.Buffer, 3)
		m.vW, m.vB = make([]*device.Buffer, 3), make([]*device.Buffer, 3)
		for l, s := range wShapes {
			m.GW[l], m.GB[l] = alloc(s[0], s[1]), alloc(1, s[1])
			if cfg.Momentum > 0 {
				m.vW[l], m.vB[l] = alloc(s[0], s[1]), alloc(1, s[1])
			}
		}
		m.d3 = alloc(batch, cfg.Classes)
		m.dpl2 = alloc(batch, fcIn)
		m.da2 = alloc(batch*o2HW, m.c2.F)
		m.dcols2 = alloc(batch*o2HW, m.c2.ColK())
		m.dpl1 = alloc(batch, m.p1.OutDim())
		m.da1 = alloc(batch*o1HW, m.c1.F)
	}
	if err != nil {
		m.Free()
		return nil, err
	}
	return m, nil
}

// Free releases every device buffer.
func (m *Model) Free() {
	dev := m.Ctx.Dev
	free := func(bs ...*device.Buffer) {
		for _, b := range bs {
			if b != nil {
				dev.Free(b)
			}
		}
	}
	free(m.W...)
	free(m.B...)
	free(m.GW...)
	free(m.GB...)
	free(m.vW...)
	free(m.vB...)
	free(m.cols1, m.a1, m.pl1, m.arg1, m.cols2, m.a2, m.pl2, m.arg2, m.out)
	free(m.d3, m.dpl2, m.da2, m.dcols2, m.dpl1, m.da1)
}

func hostOrNil(dev *device.Device, m *tensor.Matrix) *tensor.Matrix {
	if dev.Numeric {
		return m
	}
	return nil
}

// Upload transfers host parameters onto the device.
func (m *Model) Upload(p *Params) {
	dev := m.Ctx.Dev
	dev.CopyIn(m.W[0], hostOrNil(dev, p.Conv1.W), 0)
	dev.CopyIn(m.B[0], hostOrNil(dev, p.Conv1.B.AsRow()), 0)
	dev.CopyIn(m.W[1], hostOrNil(dev, p.Conv2.W), 0)
	dev.CopyIn(m.B[1], hostOrNil(dev, p.Conv2.B.AsRow()), 0)
	dev.CopyIn(m.W[2], hostOrNil(dev, p.W3), 0)
	dev.CopyIn(m.B[2], hostOrNil(dev, p.B3.AsRow()), 0)
}

// Download copies the device parameters back to the host.
func (m *Model) Download() *Params {
	p := zeroParams(m.Cfg)
	dev := m.Ctx.Dev
	dev.CopyOut(m.W[0], hostOrNil(dev, p.Conv1.W))
	dev.CopyOut(m.B[0], hostOrNil(dev, p.Conv1.B.AsRow()))
	dev.CopyOut(m.W[1], hostOrNil(dev, p.Conv2.W))
	dev.CopyOut(m.B[1], hostOrNil(dev, p.Conv2.B.AsRow()))
	dev.CopyOut(m.W[2], hostOrNil(dev, p.W3))
	dev.CopyOut(m.B[2], hostOrNil(dev, p.B3.AsRow()))
	return p
}

// forward runs the pipeline on the first n examples of the workspace.
func (m *Model) forward(x *device.Buffer, n int) *device.Buffer {
	ctx := m.Ctx
	o1HW := m.c1.OutH() * m.c1.OutW()
	o2HW := m.c2.OutH() * m.c2.OutW()
	cols1, a1 := sliceTo(m.cols1, n*o1HW), sliceTo(m.a1, n*o1HW)
	pl1, arg1 := sliceTo(m.pl1, n), sliceTo(m.arg1, n)
	cols2, a2 := sliceTo(m.cols2, n*o2HW), sliceTo(m.a2, n*o2HW)
	pl2, arg2 := sliceTo(m.pl2, n), sliceTo(m.arg2, n)
	out := sliceTo(m.out, n)

	ctx.Im2col(m.c1, n, x, cols1)
	ctx.MaybeFused(func() {
		ctx.Gemm(false, false, 1, cols1, m.W[0], 0, a1)
		ctx.AddBiasRow(a1, m.B[0])
		ctx.Sigmoid(a1, a1)
	})
	ctx.MaxPool(m.p1, n, a1, pl1, arg1)
	ctx.Im2col(m.c2, n, pl1, cols2)
	ctx.MaybeFused(func() {
		ctx.Gemm(false, false, 1, cols2, m.W[1], 0, a2)
		ctx.AddBiasRow(a2, m.B[1])
		ctx.Sigmoid(a2, a2)
	})
	ctx.MaxPool(m.p2, n, a2, pl2, arg2)
	ctx.MaybeFused(func() {
		ctx.Gemm(false, false, 1, pl2, m.W[2], 0, out)
		ctx.AddBiasRow(out, m.B[2])
		ctx.SoftmaxRows(out, out)
	})
	return out
}

// Forward runs the batched forward pass; Probs() holds the softmax output
// afterwards.
func (m *Model) Forward(x *device.Buffer) {
	m.checkInput(x)
	m.forward(x, m.Batch)
}

// Infer runs the forward pass for 1..Batch examples (one image per row of
// x) and returns a view of the softmax probabilities, x.Rows×Classes. The
// returned buffer is owned by the model and overwritten by the next call.
func (m *Model) Infer(x *device.Buffer) *device.Buffer {
	if x.Rows < 1 || x.Rows > m.Batch || x.Cols != m.Cfg.InputDim() {
		panic(fmt.Sprintf("convnet: inference input %dx%d, want 1..%d×%d", x.Rows, x.Cols, m.Batch, m.Cfg.InputDim()))
	}
	return m.forward(x, x.Rows)
}

// Probs exposes the softmax output buffer of the last Forward.
func (m *Model) Probs() *device.Buffer { return m.out }

// Backward computes the cross-entropy gradient for the batch (x, one-hot
// y), averaged over the batch with the λ term included. Forward must have
// run on the same x; the sigmoid activations a1/a2 are consumed (their
// derivative overwrites them), so Backward cannot run twice per Forward.
func (m *Model) Backward(x, y *device.Buffer) {
	m.mustTrain("Backward")
	m.checkInput(x)
	if y.Rows != m.Batch || y.Cols != m.Cfg.Classes {
		panic(fmt.Sprintf("convnet: targets %dx%d, want %dx%d", y.Rows, y.Cols, m.Batch, m.Cfg.Classes))
	}
	ctx := m.Ctx
	invM := 1 / float64(m.Batch)

	// Softmax+cross-entropy delta: (p − y)/batch.
	ctx.MaybeFused(func() {
		ctx.Sub(m.d3, m.out, y)
		ctx.Scale(invM, m.d3)
	})

	// Softmax head.
	ctx.MaybeConcurrent(func() {
		ctx.Gemm(true, false, 1, m.pl2, m.d3, 0, m.GW[2])
		ctx.ColSums(m.d3, m.GB[2])
	})
	if m.Cfg.Lambda != 0 {
		ctx.Axpy(m.Cfg.Lambda, m.W[2], m.GW[2])
	}
	ctx.Gemm(false, true, 1, m.d3, m.W[2], 0, m.dpl2)

	// Conv2 block: route through pool2, undo the sigmoid, then the
	// lowered weight gradient (cols2ᵀ·δ) and filter-block bias reduction.
	ctx.MaxPoolBackward(m.p2, m.Batch, m.dpl2, m.arg2, m.da2)
	ctx.MaybeFused(func() {
		ctx.SigmoidPrimeFromY(m.a2, m.a2)
		ctx.MulElem(m.da2, m.da2, m.a2)
	})
	ctx.MaybeConcurrent(func() {
		ctx.Gemm(true, false, 1, m.cols2, m.da2, 0, m.GW[1])
		ctx.ConvBiasGrad(m.da2, m.GB[1])
	})
	if m.Cfg.Lambda != 0 {
		ctx.Axpy(m.Cfg.Lambda, m.W[1], m.GW[1])
	}
	ctx.Gemm(false, true, 1, m.da2, m.W[1], 0, m.dcols2)
	ctx.Col2im(m.c2, m.Batch, m.dcols2, m.dpl1)

	// Conv1 block (no input gradient needed below the first layer).
	ctx.MaxPoolBackward(m.p1, m.Batch, m.dpl1, m.arg1, m.da1)
	ctx.MaybeFused(func() {
		ctx.SigmoidPrimeFromY(m.a1, m.a1)
		ctx.MulElem(m.da1, m.da1, m.a1)
	})
	ctx.MaybeConcurrent(func() {
		ctx.Gemm(true, false, 1, m.cols1, m.da1, 0, m.GW[0])
		ctx.ConvBiasGrad(m.da1, m.GB[0])
	})
	if m.Cfg.Lambda != 0 {
		ctx.Axpy(m.Cfg.Lambda, m.W[0], m.GW[0])
	}
}

// ApplyUpdate applies SGD or momentum to every layer.
func (m *Model) ApplyUpdate(lr float64) {
	m.mustTrain("ApplyUpdate")
	ctx := m.Ctx
	mu := m.Cfg.Momentum
	ctx.MaybeFused(func() {
		for l := range m.W {
			if mu == 0 {
				ctx.Axpy(-lr, m.GW[l], m.W[l])
				ctx.Axpy(-lr, m.GB[l], m.B[l])
				continue
			}
			ctx.Scale(mu, m.vW[l])
			ctx.Axpy(-lr, m.GW[l], m.vW[l])
			ctx.Axpy(1, m.vW[l], m.W[l])
			ctx.Scale(mu, m.vB[l])
			ctx.Axpy(-lr, m.GB[l], m.vB[l])
			ctx.Axpy(1, m.vB[l], m.B[l])
		}
	})
}

// StepLabeled runs one supervised update on (x, one-hot y) and returns the
// batch-mean cross-entropy (0 on model-only devices). It implements
// core.LabeledTrainable.
func (m *Model) StepLabeled(x, y *device.Buffer, lr float64) float64 {
	m.Forward(x)
	loss := m.Ctx.CrossEntropyOneHot(m.out, y) / float64(m.Batch)
	m.Backward(x, y)
	m.ApplyUpdate(lr)
	return loss
}

// Accuracy runs Forward on x and returns the fraction of rows whose argmax
// matches the one-hot y (0 on model-only devices).
func (m *Model) Accuracy(x, y *device.Buffer) float64 {
	m.Forward(x)
	return float64(m.Ctx.CountArgmaxMatches(m.out, y)) / float64(m.Batch)
}

// BatchSize implements core.LabeledTrainable.
func (m *Model) BatchSize() int { return m.Batch }

// InputDim implements core.LabeledTrainable.
func (m *Model) InputDim() int { return m.Cfg.InputDim() }

// OutputDim implements core.LabeledTrainable.
func (m *Model) OutputDim() int { return m.Cfg.Classes }

func (m *Model) checkInput(x *device.Buffer) {
	if x.Rows != m.Batch || x.Cols != m.Cfg.InputDim() {
		panic(fmt.Sprintf("convnet: input %dx%d, want %dx%d", x.Rows, x.Cols, m.Batch, m.Cfg.InputDim()))
	}
}

// mustTrain panics when a training entry point is hit on a forward-only
// model, whose gradient workspace was never allocated.
func (m *Model) mustTrain(op string) {
	if m.inferOnly {
		panic("convnet: " + op + " on an inference-only model (built by NewInference)")
	}
}

// sliceTo returns b itself for a full-height use and the [0,n) row view
// otherwise, so partial batches reuse the same workspace.
func sliceTo(b *device.Buffer, n int) *device.Buffer {
	if n == b.Rows {
		return b
	}
	return b.Slice(0, n)
}
