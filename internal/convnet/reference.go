package convnet

import (
	"io"
	"math"

	"phideep/internal/nn"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Params is the host-side parameter set of the convnet: two im2col-form
// conv layers and the softmax head.
type Params struct {
	Conv1 *nn.Conv2D
	Conv2 *nn.Conv2D
	W3    *tensor.Matrix // FCInputDim×Classes
	B3    tensor.Vector
}

// NewParams returns randomly initialized parameters (Glorot-uniform
// weights, zero biases), drawn from one stream so layer draws are stable.
func NewParams(cfg Config, seed uint64) *Params {
	r := rng.New(seed)
	p := zeroParams(cfg)
	nn.InitMatrix(p.Conv1.W, r)
	nn.InitMatrix(p.Conv2.W, r)
	nn.InitMatrix(p.W3, r)
	return p
}

func zeroParams(cfg Config) *Params {
	c1, c2 := cfg.Conv1Shape(), cfg.Conv2Shape()
	return &Params{
		Conv1: &nn.Conv2D{Shape: c1, W: tensor.NewMatrix(c1.ColK(), c1.F), B: tensor.NewVector(c1.F)},
		Conv2: &nn.Conv2D{Shape: c2, W: tensor.NewMatrix(c2.ColK(), c2.F), B: tensor.NewVector(c2.F)},
		W3:    tensor.NewMatrix(cfg.FCInputDim(), cfg.Classes),
		B3:    tensor.NewVector(cfg.Classes),
	}
}

// Clone returns a deep copy.
func (p *Params) Clone() *Params {
	return &Params{Conv1: p.Conv1.Clone(), Conv2: p.Conv2.Clone(), W3: p.W3.Clone(), B3: p.B3.Clone()}
}

// ParamSet registers every layer for checkpointing and the flat-vector
// optimizers.
func (p *Params) ParamSet() *nn.ParamSet {
	ps := &nn.ParamSet{}
	p.Conv1.Register(ps, "conv1")
	p.Conv2.Register(ps, "conv2")
	ps.AddMatrix("W3", p.W3)
	ps.AddVector("b3", p.B3)
	return ps
}

// PredictProbs runs the scalar forward pass on one example (a Side² NHWC
// image) and returns the softmax class probabilities. It is the host
// reference the serving layer degrades to under overload and the oracle
// the device path is verified against: each layer accumulates from zero
// and adds its bias last, the summation order of the Naive-level lowered
// GEMM followed by AddBiasRow.
func (p *Params) PredictProbs(cfg Config, x []float64) []float64 {
	pool1 := nn.MaxPool2D{Shape: cfg.Pool1Shape()}
	pool2 := nn.MaxPool2D{Shape: cfg.Pool2Shape()}

	a1 := make([]float64, p.Conv1.Shape.OutDim())
	p.Conv1.Forward(x, a1)
	for i, v := range a1 {
		a1[i] = nn.Sigmoid(v)
	}
	h1 := make([]float64, pool1.Shape.OutDim())
	pool1.Forward(a1, h1)

	a2 := make([]float64, p.Conv2.Shape.OutDim())
	p.Conv2.Forward(h1, a2)
	for i, v := range a2 {
		a2[i] = nn.Sigmoid(v)
	}
	h2 := make([]float64, pool2.Shape.OutDim())
	pool2.Forward(a2, h2)

	out := make([]float64, cfg.Classes)
	for j := range out {
		acc := 0.0
		for k, xv := range h2 {
			acc += xv * p.W3.At(k, j)
		}
		out[j] = acc + p.B3[j]
	}
	softmaxRow(out)
	return out
}

// Predict returns the class argmax for one example.
func (p *Params) Predict(cfg Config, x []float64) int {
	probs := p.PredictProbs(cfg, x)
	best, bestV := 0, math.Inf(-1)
	for j, v := range probs {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

// softmaxRow normalizes in place with the max-subtracted exponential and a
// single 1/sum multiply — the same operation order as kernels.SoftmaxRows,
// so Baseline-level device outputs match this reference bitwise.
func softmaxRow(row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for j, v := range row {
		e := math.Exp(v - maxV)
		row[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range row {
		row[j] *= inv
	}
}

// Save writes the parameters to w in the phideep checkpoint format.
func (p *Params) Save(w io.Writer) error { return nn.SaveParamSet(w, p.ParamSet()) }

// Load reads parameters from r into p, validating size and checksum.
func (p *Params) Load(r io.Reader) error { return nn.LoadParamSet(r, p.ParamSet()) }
