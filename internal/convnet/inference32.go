package convnet

import (
	"fmt"

	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Params32 is a float32 snapshot of trained convnet parameters, built once
// per served model by To32 and shared read-only by the reduced-precision
// inference replicas. Training never sees these.
type Params32 struct {
	W1 *tensor.Matrix32
	B1 tensor.Vector32
	W2 *tensor.Matrix32
	B2 tensor.Vector32
	W3 *tensor.Matrix32
	B3 tensor.Vector32
}

// To32 rounds every layer to float32.
func (p *Params) To32() *Params32 {
	return &Params32{
		W1: p.Conv1.W.To32(), B1: p.Conv1.B.To32(),
		W2: p.Conv2.W.To32(), B2: p.Conv2.B.To32(),
		W3: p.W3.To32(), B3: p.B3.To32(),
	}
}

// Inference32 is a forward-only float32 replica of the convnet running
// host-side on the packed f32 kernels: the same im2col lowering as the
// training model, with float32 gathers feeding Gemm32. Weights are shared
// read-only; each replica owns a private workspace sized for maxBatch.
// Not safe for concurrent use of a single replica.
type Inference32 struct {
	cfg  Config
	p    *Params32
	pool *parallel.Pool
	lvl  kernels.Level

	c1, c2 kernels.ConvShape
	p1, p2 kernels.PoolShape

	cols1, a1, pl1 *tensor.Matrix32
	cols2, a2, pl2 *tensor.Matrix32
	out            *tensor.Matrix32
}

// NewInference32 builds a replica over the shared snapshot p. pool may be
// nil for sequential execution; lvl picks the kernel ladder rung.
func NewInference32(pool *parallel.Pool, lvl kernels.Level, cfg Config, maxBatch int, p *Params32) *Inference32 {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("convnet: NewInference32 maxBatch %d", maxBatch))
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Inference32{
		cfg: cfg, p: p, pool: pool, lvl: lvl,
		c1: cfg.Conv1Shape(), c2: cfg.Conv2Shape(),
		p1: cfg.Pool1Shape(), p2: cfg.Pool2Shape(),
	}
	o1HW := m.c1.OutH() * m.c1.OutW()
	o2HW := m.c2.OutH() * m.c2.OutW()
	m.cols1 = tensor.NewMatrix32(maxBatch*o1HW, m.c1.ColK())
	m.a1 = tensor.NewMatrix32(maxBatch*o1HW, m.c1.F)
	m.pl1 = tensor.NewMatrix32(maxBatch, m.p1.OutDim())
	m.cols2 = tensor.NewMatrix32(maxBatch*o2HW, m.c2.ColK())
	m.a2 = tensor.NewMatrix32(maxBatch*o2HW, m.c2.F)
	m.pl2 = tensor.NewMatrix32(maxBatch, m.p2.OutDim())
	m.out = tensor.NewMatrix32(maxBatch, cfg.Classes)
	return m
}

// Infer runs the forward pass on the batch x (one image per row) and
// returns the softmax class probabilities as a workspace view valid until
// the next call.
func (m *Inference32) Infer(x *tensor.Matrix32) *tensor.Matrix32 {
	if x.Cols != m.cfg.InputDim() || x.Rows < 1 || x.Rows > m.out.Rows {
		panic(fmt.Sprintf("convnet: Infer32 input %dx%d, want 1..%dx%d", x.Rows, x.Cols, m.out.Rows, m.cfg.InputDim()))
	}
	n := x.Rows
	o1HW := m.c1.OutH() * m.c1.OutW()
	o2HW := m.c2.OutH() * m.c2.OutW()
	cols1, a1 := m.cols1.RowsView(0, n*o1HW), m.a1.RowsView(0, n*o1HW)
	pl1 := m.pl1.RowsView(0, n)
	cols2, a2 := m.cols2.RowsView(0, n*o2HW), m.a2.RowsView(0, n*o2HW)
	pl2 := m.pl2.RowsView(0, n)
	out := m.out.RowsView(0, n)

	kernels.Im2col32(m.pool, m.lvl, m.c1, n, x, cols1)
	kernels.Gemm32(m.pool, m.lvl, false, false, 1, cols1, m.p.W1, 0, a1)
	kernels.AddBiasRow32(m.pool, m.lvl, a1, m.p.B1)
	kernels.Sigmoid32(m.pool, m.lvl, a1, a1)
	kernels.MaxPool32(m.pool, m.lvl, m.p1, n, a1, pl1)

	kernels.Im2col32(m.pool, m.lvl, m.c2, n, pl1, cols2)
	kernels.Gemm32(m.pool, m.lvl, false, false, 1, cols2, m.p.W2, 0, a2)
	kernels.AddBiasRow32(m.pool, m.lvl, a2, m.p.B2)
	kernels.Sigmoid32(m.pool, m.lvl, a2, a2)
	kernels.MaxPool32(m.pool, m.lvl, m.p2, n, a2, pl2)

	kernels.Gemm32(m.pool, m.lvl, false, false, 1, pl2, m.p.W3, 0, out)
	kernels.AddBiasRow32(m.pool, m.lvl, out, m.p.B3)
	kernels.SoftmaxRows32(m.pool, m.lvl, out, out)
	return out
}
