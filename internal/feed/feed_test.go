package feed

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"phideep/internal/data"
	"phideep/internal/tensor"
)

func plan(t *testing.T, srcLen, batch, chunk int) data.ChunkPlan {
	t.Helper()
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: srcLen, Batch: batch, ChunkExamples: chunk})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFeedSingleConsumerReproducesChunkWalk(t *testing.T) {
	// One consumer: lease k must be exactly the trainer's historical chunk
	// walk — Start = (k*ChunkExamples) mod srcLen.
	src := data.Null{D: 4, N: 100}
	f, err := New(src, Config{Plan: plan(t, 100, 10, 30), TotalChunks: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Subscribe("trainer")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 7; k++ {
		l, err := c.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if l.Seq != k || l.Ordinal != k || l.Shard != 0 || l.N != 30 || l.Start != (k*30)%100 {
			t.Fatalf("lease %d = %+v", k, l)
		}
		if err := c.Commit(l, float64(k), false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Lease(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("past horizon: %v", err)
	}
	s := f.Stats()
	if s.Leases != 7 || s.Commits != 7 || s.Stalls != 0 || s.Outstanding != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFeedShardAssignment(t *testing.T) {
	src := data.Null{D: 4, N: 120}
	f, err := New(src, Config{Plan: plan(t, 120, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	var cs []*Consumer
	for i := 0; i < 3; i++ {
		c, err := f.Subscribe("node")
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	// Consumer i's k-th lease is global seq k*S + i.
	for k := 0; k < 4; k++ {
		for i, c := range cs {
			l, err := c.Lease()
			if err != nil {
				t.Fatal(err)
			}
			if l.Seq != k*3+i || l.Shard != i || l.Ordinal != k {
				t.Fatalf("consumer %d lease %d = %+v", i, k, l)
			}
			if err := c.Commit(l, 0, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.Shards() != 3 {
		t.Fatal("shard count")
	}
	// Sealed: no new subscribers.
	if _, err := f.Subscribe("late"); !errors.Is(err, ErrSealed) {
		t.Fatalf("late subscribe: %v", err)
	}
}

func TestFeedWindowHardBound(t *testing.T) {
	src := data.Null{D: 4, N: 100}
	f, err := New(src, Config{Plan: plan(t, 100, 10, 10), Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.Subscribe("x")
	l0, _ := c.Lease()
	l1, _ := c.Lease()
	if _, err := c.Lease(); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("third lease: %v", err)
	}
	if err := c.Commit(l0, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lease(); err != nil {
		t.Fatalf("lease after commit: %v", err)
	}
	// Double commit rejected.
	if err := c.Commit(l0, 0, false); err == nil {
		t.Fatal("double commit must fail")
	}
	_ = l1
}

func TestFeedBackpressureStalls(t *testing.T) {
	// Two consumers; one never advances. The feed keeps granting (soft
	// window) but ledgers every lease past IngestAhead as a stall.
	src := data.Null{D: 4, N: 200}
	f, err := New(src, Config{Plan: plan(t, 200, 10, 10), Window: 1, IngestAhead: 4, Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	fast, _ := f.Subscribe("fast")
	slow, _ := f.Subscribe("slow")
	_ = slow // never leases: its position pins the low watermark at seq 1
	for k := 0; k < 6; k++ {
		l, err := fast.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if err := fast.Commit(l, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// fast's leases are seqs 0,2,4,...,10; low watermark is slow's 1.
	// Stalls at seq-1 >= 4, i.e. seqs 6, 8, 10.
	if s := f.Stats(); s.Stalls != 3 {
		t.Fatalf("stalls %d, want 3 (stats %+v)", s.Stalls, s)
	}
	// Closing the laggard releases the pressure.
	slow.Close()
	before := f.Stats().Stalls
	l, _ := fast.Lease()
	fast.Commit(l, 0, false)
	if f.Stats().Stalls != before {
		t.Fatal("stall recorded after laggard closed")
	}
}

func TestFeedFillAndLabels(t *testing.T) {
	d := data.NewDigits(16, 60, 3, 0.01)
	f, err := NewLabeled(d, Config{Plan: plan(t, 60, 10, 20)})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.Subscribe("t")
	l, err := c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.NewMatrix(20, d.Dim())
	if err := f.Fill(l, got); err != nil {
		t.Fatal(err)
	}
	want := tensor.NewMatrix(20, d.Dim())
	d.Chunk(l.Start, 20, want)
	if tensor.MaxAbsDiff(want, got) != 0 {
		t.Fatal("Fill diverges from direct Chunk")
	}
	oneHot := tensor.NewMatrix(20, 10)
	if err := f.FillLabels(l, 10, oneHot); err != nil {
		t.Fatal(err)
	}
	labels, err := f.Labels(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		wantL := d.Label((l.Start + i) % 60)
		if labels[i] != wantL || oneHot.RowView(i)[wantL] != 1 {
			t.Fatalf("row %d label mismatch", i)
		}
	}
	// A committed lease no longer grants data access.
	if err := c.Commit(l, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Fill(l, got); err == nil {
		t.Fatal("Fill of committed lease must fail")
	}
	// Unlabeled feeds reject label access.
	uf, _ := New(data.Null{D: 2, N: 60}, Config{Plan: plan(t, 60, 10, 20)})
	uc, _ := uf.Subscribe("u")
	ul, _ := uc.Lease()
	if err := uf.FillLabels(ul, 10, oneHot); err == nil {
		t.Fatal("FillLabels on unlabeled feed must fail")
	}
}

func TestFeedSeekAbortsAndRepositions(t *testing.T) {
	src := data.Null{D: 4, N: 100}
	f, err := New(src, Config{Plan: plan(t, 100, 10, 10), Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.Subscribe("t")
	l0, _ := c.Lease()
	if err := c.Seek(5); err != nil {
		t.Fatal(err)
	}
	if c.Pos() != 5 {
		t.Fatal("pos after seek")
	}
	// The aborted lease is dead: no data, no commit.
	if err := f.Fill(l0, tensor.NewMatrix(10, 4)); err == nil {
		t.Fatal("Fill of aborted lease must fail")
	}
	if err := c.Commit(l0, 0, false); err == nil {
		t.Fatal("commit of aborted lease must fail")
	}
	l, err := c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if l.Ordinal != 5 || l.Seq != 5 {
		t.Fatalf("post-seek lease %+v", l)
	}
	s := f.Stats()
	if s.Seeks != 1 || s.Aborts != 1 {
		t.Fatalf("stats %+v", s)
	}
	if err := c.Seek(-1); err == nil {
		t.Fatal("negative seek must fail")
	}
}

func TestFeedClosedConsumer(t *testing.T) {
	src := data.Null{D: 4, N: 100}
	f, _ := New(src, Config{Plan: plan(t, 100, 10, 10)})
	c, _ := f.Subscribe("t")
	l, _ := c.Lease()
	c.Close()
	c.Close() // idempotent
	if _, err := c.Lease(); !errors.Is(err, ErrClosed) {
		t.Fatal("lease on closed consumer")
	}
	if err := c.Commit(l, 0, false); !errors.Is(err, ErrClosed) {
		t.Fatal("commit on closed consumer")
	}
	if err := c.Seek(0); !errors.Is(err, ErrClosed) {
		t.Fatal("seek on closed consumer")
	}
	if s := f.Stats(); s.Consumers != 0 || s.Outstanding != 0 || s.Aborts != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFeedConfigValidation(t *testing.T) {
	src := data.Null{D: 4, N: 100}
	if _, err := New(src, Config{Plan: data.ChunkPlan{Batch: 10, ChunkExamples: 25, SourceLen: 100}}); err == nil {
		t.Fatal("invalid plan must fail")
	}
	if _, err := New(src, Config{Plan: plan(t, 50, 10, 10)}); err == nil {
		t.Fatal("plan/source length mismatch must fail")
	}
	if _, err := New(src, Config{Plan: plan(t, 100, 10, 10), Window: -1}); err == nil {
		t.Fatal("negative window must fail")
	}
}

// ledgerRun drives a fixed two-consumer schedule and returns the ledger.
func ledgerRun(t *testing.T) []Event {
	t.Helper()
	src := data.NewDigits(16, 120, 5, 0.02)
	f, err := NewLabeled(src, Config{Plan: plan(t, 120, 10, 20), TotalChunks: 10, IngestAhead: 2, Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Subscribe("a")
	b, _ := f.Subscribe("b")
	clock := 0.0
	for k := 0; ; k++ {
		la, errA := a.Lease()
		lb, errB := b.Lease()
		if errors.Is(errA, ErrExhausted) && errors.Is(errB, ErrExhausted) {
			break
		}
		clock += 0.5
		if errA == nil {
			if err := a.Commit(la, clock, k%3 == 2); err != nil {
				t.Fatal(err)
			}
		}
		if errB == nil {
			// b lags: commits one step later, and seeks back once.
			if k == 2 {
				if err := b.Seek(1); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := b.Commit(lb, clock+0.25, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.Close()
	return f.Events()
}

func TestFeedLedgerDeterministic(t *testing.T) {
	// Two identical runs, bit-identical ledgers — the property the
	// cluster's fault-injected determinism test leans on.
	e1 := ledgerRun(t)
	e2 := ledgerRun(t)
	if len(e1) == 0 {
		t.Fatal("empty ledger")
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("ledgers diverge:\n%v\nvs\n%v", e1, e2)
	}
	// The schedule above skips every third commit of consumer a and
	// includes a seek; make sure the interesting kinds are all present.
	kinds := map[EventKind]int{}
	for _, e := range e1 {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{EvSubscribe, EvLease, EvCommit, EvSeek, EvAbort, EvClose, EvStall} {
		if kinds[k] == 0 {
			t.Fatalf("ledger has no %q events: %v", k, kinds)
		}
	}
}

func TestFeedConcurrentConsumers(t *testing.T) {
	// Hammer the protocol from parallel goroutines (race detector food);
	// every consumer must see its own deterministic shard walk.
	src := data.NewNaturalPatches(8, 160, 9)
	const S = 4
	f, err := New(src, Config{Plan: plan(t, 160, 8, 16), TotalChunks: 40})
	if err != nil {
		t.Fatal(err)
	}
	var cs [S]*Consumer
	for i := range cs {
		cs[i], _ = f.Subscribe("w")
	}
	var wg sync.WaitGroup
	errs := make(chan error, S)
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cs[i]
			dst := tensor.NewMatrix(16, src.Dim())
			for k := 0; ; k++ {
				l, err := c.Lease()
				if errors.Is(err, ErrExhausted) {
					return
				}
				if err != nil {
					errs <- err
					return
				}
				if l.Seq != k*S+i {
					errs <- errors.New("shard walk broken")
					return
				}
				if err := f.Fill(l, dst); err != nil {
					errs <- err
					return
				}
				if err := c.Commit(l, float64(k), false); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Leases != 40 || s.Commits != 40 {
		t.Fatalf("stats %+v", s)
	}
}
