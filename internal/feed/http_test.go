package feed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"phideep/internal/data"
	"phideep/internal/tensor"
)

func post(t *testing.T, srv *httptest.Server, path string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func get(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHandlerLeaseProtocol(t *testing.T) {
	d := data.NewDigits(16, 60, 3, 0.01)
	f, err := NewLabeled(d, Config{
		Plan:        mustPlan(t, 60, 10, 20),
		TotalChunks: 4, Window: 1, Ledger: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()

	var sub struct {
		Shard int `json:"shard"`
	}
	if resp := post(t, srv, "/subscribe", map[string]string{"name": "ext"}, &sub); resp.StatusCode != 200 {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}

	var l Lease
	if resp := post(t, srv, "/lease", map[string]int{"shard": sub.Shard}, &l); resp.StatusCode != 200 {
		t.Fatalf("lease status %d", resp.StatusCode)
	}
	if l.Seq != 0 || l.N != 20 || l.Start != 0 {
		t.Fatalf("lease %+v", l)
	}

	// Window 1: a second lease before commit is refused with 409.
	if resp := post(t, srv, "/lease", map[string]int{"shard": sub.Shard}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("window-full status %d", resp.StatusCode)
	}

	// The data channel serves the outstanding lease, with labels.
	var chunk struct {
		Seq    int         `json:"seq"`
		Start  int         `json:"start"`
		Rows   [][]float64 `json:"rows"`
		Labels []int       `json:"labels"`
	}
	if resp := get(t, srv, fmt.Sprintf("/chunk?shard=%d&seq=%d", l.Shard, l.Seq), &chunk); resp.StatusCode != 200 {
		t.Fatalf("chunk status %d", resp.StatusCode)
	}
	if len(chunk.Rows) != 20 || len(chunk.Labels) != 20 {
		t.Fatalf("chunk geometry: %d rows, %d labels", len(chunk.Rows), len(chunk.Labels))
	}
	want := tensor.NewMatrix(20, d.Dim())
	d.Chunk(l.Start, 20, want)
	for i, row := range chunk.Rows {
		if !tensor.EqualVec(tensor.Vector(row), tensor.Vector(want.RowView(i)), 0) {
			t.Fatalf("row %d differs from direct Chunk", i)
		}
		if chunk.Labels[i] != d.Label((l.Start+i)%60) {
			t.Fatalf("label %d differs", i)
		}
	}

	if resp := post(t, srv, "/commit", map[string]any{"shard": sub.Shard, "seq": l.Seq, "at": 1.5}, nil); resp.StatusCode != 200 {
		t.Fatalf("commit status %d", resp.StatusCode)
	}
	// Committed lease no longer serves data.
	if resp := get(t, srv, fmt.Sprintf("/chunk?shard=%d&seq=%d", l.Shard, l.Seq), nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("chunk after commit status %d", resp.StatusCode)
	}

	// Seek then drain to the horizon: 410 Gone.
	if resp := post(t, srv, "/seek", map[string]int{"shard": sub.Shard, "ordinal": 3}, nil); resp.StatusCode != 200 {
		t.Fatalf("seek status %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/lease", map[string]int{"shard": sub.Shard}, &l); resp.StatusCode != 200 {
		t.Fatalf("post-seek lease status %d", resp.StatusCode)
	}
	if l.Seq != 3 {
		t.Fatalf("post-seek lease %+v", l)
	}
	post(t, srv, "/commit", map[string]any{"shard": sub.Shard, "seq": l.Seq}, nil)
	if resp := post(t, srv, "/lease", map[string]int{"shard": sub.Shard}, nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("exhausted status %d", resp.StatusCode)
	}

	var stats Stats
	if resp := get(t, srv, "/stats", &stats); resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if stats.Leases != 2 || stats.Commits != 2 || stats.Seeks != 1 {
		t.Fatalf("stats %+v", stats)
	}
	var ledger []Event
	if resp := get(t, srv, "/ledger", &ledger); resp.StatusCode != 200 {
		t.Fatalf("ledger status %d", resp.StatusCode)
	}
	if len(ledger) == 0 {
		t.Fatal("empty ledger")
	}

	if resp := post(t, srv, "/close", map[string]int{"shard": sub.Shard}, nil); resp.StatusCode != 200 {
		t.Fatalf("close status %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/lease", map[string]int{"shard": sub.Shard}, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("lease on closed consumer status %d", resp.StatusCode)
	}
}

func TestHandlerErrors(t *testing.T) {
	f, err := New(data.Null{D: 2, N: 40}, Config{Plan: mustPlan(t, 40, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()

	// Unknown shard.
	if resp := post(t, srv, "/lease", map[string]int{"shard": 9}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown shard status %d", resp.StatusCode)
	}
	// Malformed body.
	resp, err := srv.Client().Post(srv.URL+"/lease", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
	// Bad chunk query.
	if resp := get(t, srv, "/chunk?shard=x&seq=0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status %d", resp.StatusCode)
	}
}

func mustPlan(t *testing.T, srcLen, batch, chunk int) data.ChunkPlan {
	t.Helper()
	p, err := data.PlanChunks(data.PlanRequest{SourceLen: srcLen, Batch: batch, ChunkExamples: chunk})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
