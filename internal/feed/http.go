package feed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"phideep/internal/tensor"
)

// Handler exposes a feed over HTTP with the same lease protocol the
// in-process consumers speak — `datagen -serve` mounts it so external
// tools can subscribe, stream chunks, and inspect the ledger.
//
//	POST /subscribe {"name": "node0"}        → {"shard": 0}
//	POST /lease     {"shard": 0}             → Lease (409 window full, 410 exhausted)
//	POST /commit    {"shard", "seq", "at", "skipped"} → {"ok": true}
//	POST /seek      {"shard", "ordinal"}     → {"ok": true}
//	POST /close     {"shard"}                → {"ok": true}
//	GET  /chunk?shard=S&seq=Q                → {"rows": [[...]...], "labels": [...]}
//	GET  /stats                              → Stats
//	GET  /ledger                             → []Event
func Handler(f *Feed) http.Handler {
	h := &server{f: f, byShard: map[int]*Consumer{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /subscribe", h.subscribe)
	mux.HandleFunc("POST /lease", h.lease)
	mux.HandleFunc("POST /commit", h.commit)
	mux.HandleFunc("POST /seek", h.seek)
	mux.HandleFunc("POST /close", h.close)
	mux.HandleFunc("GET /chunk", h.chunk)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /ledger", h.ledger)
	return mux
}

type server struct {
	f  *Feed
	mu sync.Mutex
	// byShard resolves wire shard indices back to in-process consumers.
	byShard map[int]*Consumer
}

type wireReq struct {
	Name    string  `json:"name"`
	Shard   int     `json:"shard"`
	Seq     int     `json:"seq"`
	Ordinal int     `json:"ordinal"`
	At      float64 `json:"at"`
	Skipped bool    `json:"skipped"`
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, req *wireReq) bool {
	req.Shard = -1
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("feed: bad request body: %w", err))
		return false
	}
	return true
}

// consumer resolves a wire shard to its consumer.
func (s *server) consumer(shard int) (*Consumer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byShard[shard]
	if !ok {
		return nil, fmt.Errorf("feed: shard %d not subscribed over this handler", shard)
	}
	return c, nil
}

func (s *server) subscribe(w http.ResponseWriter, r *http.Request) {
	var req wireReq
	if !s.decode(w, r, &req) {
		return
	}
	c, err := s.f.Subscribe(req.Name)
	if err != nil {
		httpErr(w, http.StatusConflict, err)
		return
	}
	s.mu.Lock()
	s.byShard[c.Shard()] = c
	s.mu.Unlock()
	writeJSON(w, map[string]int{"shard": c.Shard()})
}

func (s *server) lease(w http.ResponseWriter, r *http.Request) {
	var req wireReq
	if !s.decode(w, r, &req) {
		return
	}
	c, err := s.consumer(req.Shard)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	l, err := c.Lease()
	switch {
	case errors.Is(err, ErrWindowFull):
		httpErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrExhausted):
		httpErr(w, http.StatusGone, err)
	case err != nil:
		httpErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, l)
	}
}

func (s *server) commit(w http.ResponseWriter, r *http.Request) {
	var req wireReq
	if !s.decode(w, r, &req) {
		return
	}
	c, err := s.consumer(req.Shard)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	if err := c.Commit(Lease{Seq: req.Seq, Shard: req.Shard}, req.At, req.Skipped); err != nil {
		httpErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *server) seek(w http.ResponseWriter, r *http.Request) {
	var req wireReq
	if !s.decode(w, r, &req) {
		return
	}
	c, err := s.consumer(req.Shard)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	if err := c.Seek(req.Ordinal); err != nil {
		httpErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *server) close(w http.ResponseWriter, r *http.Request) {
	var req wireReq
	if !s.decode(w, r, &req) {
		return
	}
	c, err := s.consumer(req.Shard)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	c.Close()
	writeJSON(w, map[string]bool{"ok": true})
}

// chunk streams the payload of an outstanding lease: the protocol's data
// channel, gated on the lease the same way in-process Fill is.
func (s *server) chunk(w http.ResponseWriter, r *http.Request) {
	shard, err1 := strconv.Atoi(r.URL.Query().Get("shard"))
	seq, err2 := strconv.Atoi(r.URL.Query().Get("seq"))
	if err1 != nil || err2 != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("feed: chunk wants integer shard and seq"))
		return
	}
	c, err := s.consumer(shard)
	if err != nil {
		httpErr(w, http.StatusNotFound, err)
		return
	}
	plan := c.Plan()
	l := Lease{
		Seq: seq, Shard: shard, Ordinal: seq / max(s.f.Shards(), 1),
		Start: plan.ChunkStart(seq), N: plan.ChunkExamples,
	}
	m := tensor.NewMatrix(l.N, s.f.Dim())
	if err := s.f.Fill(l, m); err != nil {
		httpErr(w, http.StatusConflict, err)
		return
	}
	resp := struct {
		Seq    int         `json:"seq"`
		Start  int         `json:"start"`
		Rows   [][]float64 `json:"rows"`
		Labels []int       `json:"labels,omitempty"`
	}{Seq: seq, Start: l.Start, Rows: make([][]float64, l.N)}
	for i := 0; i < l.N; i++ {
		resp.Rows[i] = m.RowView(i)
	}
	if s.f.Labeled() {
		// The wire carries class indices; one-hot expansion is the
		// consumer's business.
		labels, err := s.f.Labels(l)
		if err != nil {
			httpErr(w, http.StatusConflict, err)
			return
		}
		resp.Labels = labels
	}
	writeJSON(w, resp)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) { writeJSON(w, s.f.Stats()) }

func (s *server) ledger(w http.ResponseWriter, r *http.Request) {
	ev := s.f.Events()
	if ev == nil {
		ev = []Event{}
	}
	writeJSON(w, ev)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the client sees a truncated body.
		return
	}
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
