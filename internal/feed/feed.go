// Package feed is the streaming data plane (DESIGN.md §15): a dataset
// server that replaces ahead-of-time chunk index arithmetic with a
// lease/commit protocol, so one data.Source can drive N training nodes and
// M serve replicas concurrently.
//
// A Feed wraps a Source behind a validated data.ChunkPlan. Consumers
// subscribe before streaming starts; at the first lease the feed seals and
// the subscriber count becomes the shard count S. Consumer i's k-th lease
// is global chunk seq = k·S + i — deterministic shard assignment, so for a
// single consumer the lease stream reproduces the trainer's historical
// chunk walk bit-for-bit, and for S cluster nodes it reproduces the
// per-node index math the cluster used to do ad hoc.
//
// Leases are bounded two ways. Each consumer holds at most Window
// uncommitted leases (hard: Lease returns ErrWindowFull) — the double
// buffering of Fig. 5 expressed as protocol. Across consumers the feed
// tracks a low watermark (the oldest position any live consumer still
// holds or has yet to reach); a lease issued more than IngestAhead chunks
// past it records a backpressure stall. The stall window is soft — the
// lease is still granted, so deterministic lockstep simulations cannot
// deadlock — but the ledger and feed.stalls metric expose exactly how hard
// a stalled or crashed consumer (§8 fault model) is holding back
// ingestion.
//
// With Config.Ledger the feed records every protocol event. Two runs at
// the same seed produce bit-identical ledgers, which is how the cluster's
// fault-injected determinism test pins the protocol down.
package feed

import (
	"errors"
	"fmt"
	"sync"

	"phideep/internal/data"
	"phideep/internal/metrics"
	"phideep/internal/tensor"
)

// Sentinel errors of the lease protocol.
var (
	// ErrExhausted reports that the consumer's next chunk is past the
	// feed's TotalChunks horizon.
	ErrExhausted = errors.New("feed: stream exhausted")
	// ErrWindowFull reports that the consumer already holds Window
	// uncommitted leases; commit one first.
	ErrWindowFull = errors.New("feed: lease window full")
	// ErrClosed reports an operation on a closed consumer.
	ErrClosed = errors.New("feed: consumer closed")
	// ErrSealed reports a Subscribe after streaming started.
	ErrSealed = errors.New("feed: already streaming, cannot subscribe")
)

// Config parameterizes a Feed.
type Config struct {
	// Plan is the chunk geometry every consumer streams under; it must
	// validate against the wrapped source.
	Plan data.ChunkPlan
	// TotalChunks bounds the stream: global chunk sequence numbers run in
	// [0, TotalChunks) and a consumer whose next seq falls past the end
	// gets ErrExhausted. Zero streams forever (serving).
	TotalChunks int
	// Window is the per-consumer bound on uncommitted leases; zero
	// defaults to 2 (double buffering).
	Window int
	// IngestAhead is the soft global bound, in chunks, on how far past
	// the low watermark a lease may run before it counts as a
	// backpressure stall. Zero defaults to Window × shards at seal time.
	IngestAhead int
	// Ledger enables event recording for determinism audits; off, the
	// feed only keeps counters.
	Ledger bool
}

// Lease names one chunk granted to one consumer.
type Lease struct {
	// Seq is the global chunk sequence number, Ordinal×shards+Shard.
	Seq int `json:"seq"`
	// Shard is the consumer's shard index; Ordinal is the consumer-local
	// chunk position.
	Shard   int `json:"shard"`
	Ordinal int `json:"ordinal"`
	// Start and N are the example range [Start, Start+N) the chunk covers
	// (wrapping modulo the source length).
	Start int `json:"start"`
	N     int `json:"n"`
}

// EventKind classifies ledger events.
type EventKind string

// The protocol events a ledger records.
const (
	EvSubscribe EventKind = "subscribe"
	EvLease     EventKind = "lease"
	EvCommit    EventKind = "commit"
	EvStall     EventKind = "stall"
	EvSeek      EventKind = "seek"
	EvAbort     EventKind = "abort"
	EvClose     EventKind = "close"
)

// Event is one ledger entry. At is the consumer-reported clock — simulated
// seconds for trainer and cluster consumers, so ledgers are deterministic —
// and is only meaningful on commit events.
type Event struct {
	Kind    EventKind `json:"kind"`
	Shard   int       `json:"shard"`
	Seq     int       `json:"seq"`
	Start   int       `json:"start,omitempty"`
	N       int       `json:"n,omitempty"`
	At      float64   `json:"at,omitempty"`
	Skipped bool      `json:"skipped,omitempty"`
	Reason  string    `json:"reason,omitempty"`
}

// Stats are the feed's protocol counters.
type Stats struct {
	// Shards is the sealed consumer count (0 before streaming starts).
	Shards int `json:"shards"`
	// Consumers is the number of currently open consumers.
	Consumers int `json:"consumers"`
	// Leases, Commits and Skips count granted leases, committed chunks,
	// and commits flagged as skipped by the consumer's fault handling.
	Leases  int `json:"leases"`
	Commits int `json:"commits"`
	Skips   int `json:"skips"`
	// Stalls counts leases granted beyond the IngestAhead window — the
	// backpressure a slow or dead consumer puts on ingestion.
	Stalls int `json:"stalls"`
	// Seeks and Aborts count repositionings and the outstanding leases
	// they (or Close) threw away.
	Seeks  int `json:"seeks"`
	Aborts int `json:"aborts"`
	// Outstanding is the current number of uncommitted leases across all
	// consumers; MaxOutstanding its high-water mark.
	Outstanding    int `json:"outstanding"`
	MaxOutstanding int `json:"max_outstanding"`
}

// Feed is the dataset server. All methods are safe for concurrent use.
type Feed struct {
	mu   sync.Mutex
	src  data.Source
	lsrc data.Labeled // nil for unlabeled feeds
	cfg  Config

	sealed      bool
	shards      int
	window      int
	ingestAhead int

	consumers []*Consumer
	events    []Event
	stats     Stats
}

// New builds a feed over src. cfg.Plan must validate and match the
// source's length.
func New(src data.Source, cfg Config) (*Feed, error) {
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Plan.SourceLen != src.Len() {
		return nil, fmt.Errorf("feed: plan covers %d examples, source has %d", cfg.Plan.SourceLen, src.Len())
	}
	if cfg.TotalChunks < 0 || cfg.Window < 0 || cfg.IngestAhead < 0 {
		return nil, fmt.Errorf("feed: negative bound in config %+v", cfg)
	}
	if cfg.Window == 0 {
		cfg.Window = 2
	}
	return &Feed{src: src, cfg: cfg, window: cfg.Window}, nil
}

// NewLabeled builds a feed whose chunks carry labels (FillLabels works).
func NewLabeled(src data.Labeled, cfg Config) (*Feed, error) {
	f, err := New(src, cfg)
	if err != nil {
		return nil, err
	}
	f.lsrc = src
	return f, nil
}

// Plan returns the feed's chunk geometry.
func (f *Feed) Plan() data.ChunkPlan { return f.cfg.Plan }

// Dim returns the example dimensionality of the wrapped source.
func (f *Feed) Dim() int { return f.src.Dim() }

// Len returns the example count of the wrapped source.
func (f *Feed) Len() int { return f.src.Len() }

// Labeled reports whether FillLabels is available.
func (f *Feed) Labeled() bool { return f.lsrc != nil }

// Shards returns the sealed shard count (0 before streaming starts).
func (f *Feed) Shards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards
}

// Subscribe registers a consumer. All consumers must subscribe before the
// first lease seals the feed; the subscription order fixes shard indices.
func (f *Feed) Subscribe(name string) (*Consumer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return nil, ErrSealed
	}
	c := &Consumer{f: f, name: name, shard: len(f.consumers)}
	f.consumers = append(f.consumers, c)
	f.stats.Consumers++
	f.record(Event{Kind: EvSubscribe, Shard: c.shard})
	if metrics.Enabled() {
		mConsumers.Set(float64(f.stats.Consumers))
	}
	return c, nil
}

// Stats returns a snapshot of the protocol counters.
func (f *Feed) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Shards = f.shards
	return s
}

// Events returns a copy of the ledger (nil unless Config.Ledger).
func (f *Feed) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.events == nil {
		return nil
	}
	out := make([]Event, len(f.events))
	copy(out, f.events)
	return out
}

// Fill streams the leased chunk into dst (l.N × Dim). The lease must be
// outstanding — the protocol's guard against reading data that was never
// granted or already committed.
func (f *Feed) Fill(l Lease, dst *tensor.Matrix) error {
	if err := f.checkOutstanding(l); err != nil {
		return err
	}
	f.src.Chunk(l.Start, l.N, dst)
	return nil
}

// FillLabels streams the leased chunk's one-hot labels into dst
// (l.N × classes). The feed must be labeled and the lease outstanding.
func (f *Feed) FillLabels(l Lease, classes int, dst *tensor.Matrix) error {
	if f.lsrc == nil {
		return fmt.Errorf("feed: source is not labeled")
	}
	if err := f.checkOutstanding(l); err != nil {
		return err
	}
	if dst.Rows != l.N || dst.Cols != classes {
		return fmt.Errorf("feed: label destination %dx%d, want %dx%d", dst.Rows, dst.Cols, l.N, classes)
	}
	dst.Zero()
	n := f.src.Len()
	for i := 0; i < l.N; i++ {
		lab := f.lsrc.Label((l.Start + i) % n)
		if lab < 0 || lab >= classes {
			return fmt.Errorf("feed: source label %d outside [0, %d)", lab, classes)
		}
		dst.RowView(i)[lab] = 1
	}
	return nil
}

// Labels returns the class indices of the leased chunk's examples — the
// wire-format counterpart of FillLabels. The feed must be labeled and the
// lease outstanding.
func (f *Feed) Labels(l Lease) ([]int, error) {
	if f.lsrc == nil {
		return nil, fmt.Errorf("feed: source is not labeled")
	}
	if err := f.checkOutstanding(l); err != nil {
		return nil, err
	}
	out := make([]int, l.N)
	n := f.src.Len()
	for i := range out {
		out[i] = f.lsrc.Label((l.Start + i) % n)
	}
	return out, nil
}

func (f *Feed) checkOutstanding(l Lease) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if l.Shard < 0 || l.Shard >= len(f.consumers) {
		return fmt.Errorf("feed: lease for unknown shard %d", l.Shard)
	}
	c := f.consumers[l.Shard]
	for _, o := range c.outstanding {
		if o.Seq == l.Seq {
			return nil
		}
	}
	return fmt.Errorf("feed: chunk %d is not leased by shard %d", l.Seq, l.Shard)
}

// record appends e to the ledger when enabled. Callers hold f.mu.
func (f *Feed) record(e Event) {
	if f.cfg.Ledger {
		f.events = append(f.events, e)
	}
}

// seal fixes the shard count at the first lease. Callers hold f.mu.
func (f *Feed) seal() {
	if f.sealed {
		return
	}
	f.sealed = true
	f.shards = len(f.consumers)
	f.ingestAhead = f.cfg.IngestAhead
	if f.ingestAhead == 0 {
		f.ingestAhead = f.window * f.shards
	}
}

// lowWatermark is the oldest global position any open consumer still holds
// (its oldest outstanding lease) or has yet to reach (its next seq).
// Callers hold f.mu.
func (f *Feed) lowWatermark() int {
	low := -1
	for _, c := range f.consumers {
		if c.closed {
			continue
		}
		p := c.pos*f.shards + c.shard
		if len(c.outstanding) > 0 {
			p = c.outstanding[0].Seq
		}
		if low < 0 || p < low {
			low = p
		}
	}
	return low
}

// Consumer is one subscriber's cursor into the feed. A Consumer's methods
// are safe to call concurrently with other consumers' — but a single
// Consumer is a single logical stream and must not be shared without
// external ordering.
type Consumer struct {
	f           *Feed
	name        string
	shard       int
	pos         int // next consumer-local ordinal
	outstanding []Lease
	closed      bool
}

// Name returns the subscription name; Shard the shard index.
func (c *Consumer) Name() string { return c.name }

// Shard returns the consumer's shard index.
func (c *Consumer) Shard() int { return c.shard }

// Plan returns the feed's chunk geometry.
func (c *Consumer) Plan() data.ChunkPlan { return c.f.cfg.Plan }

// Dim returns the feed's example width; Labeled whether it serves labels.
func (c *Consumer) Dim() int { return c.f.Dim() }

// Labeled reports whether the feed serves labels.
func (c *Consumer) Labeled() bool { return c.f.Labeled() }

// Pos returns the next consumer-local ordinal Lease would grant.
func (c *Consumer) Pos() int {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.pos
}

// Fill streams the leased chunk into dst — shorthand for [Feed.Fill].
func (c *Consumer) Fill(l Lease, dst *tensor.Matrix) error { return c.f.Fill(l, dst) }

// FillLabels streams the leased chunk's one-hot labels into dst —
// shorthand for [Feed.FillLabels].
func (c *Consumer) FillLabels(l Lease, classes int, dst *tensor.Matrix) error {
	return c.f.FillLabels(l, classes, dst)
}

// Labels returns the leased chunk's class indices — shorthand for
// [Feed.Labels].
func (c *Consumer) Labels(l Lease) ([]int, error) { return c.f.Labels(l) }

// Lease grants the consumer's next chunk. The first Lease on any consumer
// seals the feed. Returns ErrWindowFull when the consumer holds Window
// uncommitted leases, ErrExhausted past the TotalChunks horizon.
func (c *Consumer) Lease() (Lease, error) {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.closed {
		return Lease{}, ErrClosed
	}
	f.seal()
	if len(c.outstanding) >= f.window {
		return Lease{}, ErrWindowFull
	}
	seq := c.pos*f.shards + c.shard
	if f.cfg.TotalChunks > 0 && seq >= f.cfg.TotalChunks {
		return Lease{}, ErrExhausted
	}
	l := Lease{
		Seq: seq, Shard: c.shard, Ordinal: c.pos,
		Start: f.cfg.Plan.ChunkStart(seq), N: f.cfg.Plan.ChunkExamples,
	}
	c.pos++
	c.outstanding = append(c.outstanding, l)
	f.stats.Leases++
	f.stats.Outstanding++
	if f.stats.Outstanding > f.stats.MaxOutstanding {
		f.stats.MaxOutstanding = f.stats.Outstanding
	}
	f.record(Event{Kind: EvLease, Shard: c.shard, Seq: seq, Start: l.Start, N: l.N})
	if low := f.lowWatermark(); seq-low >= f.ingestAhead {
		// Backpressure: some consumer is holding the stream back more
		// than the ingest window. Soft by design — granting anyway keeps
		// lockstep simulations deadlock-free — but every such lease is
		// ledgered and counted.
		f.stats.Stalls++
		f.record(Event{Kind: EvStall, Shard: c.shard, Seq: seq,
			Reason: fmt.Sprintf("lag %d >= ahead %d", seq-low, f.ingestAhead)})
		if metrics.Enabled() {
			mStalls.Inc()
		}
	}
	if metrics.Enabled() {
		mLeases.Inc()
		mOccupancy.Set(float64(f.stats.Outstanding))
	}
	return l, nil
}

// Commit returns a leased chunk to the feed once the consumer has drained
// it. at is the consumer's clock (simulated seconds for trainer/cluster
// consumers); skipped flags a chunk the consumer abandoned under the fault
// model (trained on stale data instead).
func (c *Consumer) Commit(l Lease, at float64, skipped bool) error {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	for i, o := range c.outstanding {
		if o.Seq == l.Seq {
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			f.stats.Commits++
			f.stats.Outstanding--
			if skipped {
				f.stats.Skips++
				if metrics.Enabled() {
					mSkips.Inc()
				}
			}
			f.record(Event{Kind: EvCommit, Shard: c.shard, Seq: l.Seq, At: at, Skipped: skipped})
			if metrics.Enabled() {
				mCommits.Inc()
				mOccupancy.Set(float64(f.stats.Outstanding))
			}
			return nil
		}
	}
	return fmt.Errorf("feed: commit of chunk %d not leased by shard %d", l.Seq, c.shard)
}

// Seek aborts the consumer's outstanding leases and repositions its cursor
// at the consumer-local ordinal — how a rejoining cluster node or a
// resumed trainer re-subscribes at its checkpointed position.
func (c *Consumer) Seek(ordinal int) error {
	if ordinal < 0 {
		return fmt.Errorf("feed: seek to negative ordinal %d", ordinal)
	}
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.abort()
	c.pos = ordinal
	f.stats.Seeks++
	f.record(Event{Kind: EvSeek, Shard: c.shard, Seq: ordinal*max(f.shards, 1) + c.shard})
	if metrics.Enabled() {
		mSeeks.Inc()
		mOccupancy.Set(float64(f.stats.Outstanding))
	}
	return nil
}

// Close aborts the consumer's outstanding leases and removes it from the
// low-watermark set, so a permanently lost node stops backpressuring the
// feed. Closing twice is a no-op.
func (c *Consumer) Close() {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.closed {
		return
	}
	c.abort()
	c.closed = true
	f.stats.Consumers--
	f.record(Event{Kind: EvClose, Shard: c.shard})
	if metrics.Enabled() {
		mConsumers.Set(float64(f.stats.Consumers))
		mOccupancy.Set(float64(f.stats.Outstanding))
	}
}

// abort drops the consumer's outstanding leases. Callers hold f.mu.
func (c *Consumer) abort() {
	for _, o := range c.outstanding {
		c.f.stats.Aborts++
		c.f.stats.Outstanding--
		c.f.record(Event{Kind: EvAbort, Shard: c.shard, Seq: o.Seq})
	}
	c.outstanding = c.outstanding[:0]
}
