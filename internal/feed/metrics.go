package feed

import "phideep/internal/metrics"

// Data-plane observability handles (DESIGN.md §"Observability"): protocol
// counters for the lease/commit stream and gauges for its live occupancy.
// Recorded only while metrics.Enabled() holds; the per-Feed Stats snapshot
// is always maintained regardless.
var (
	mLeases  = metrics.Default().Counter("feed.leases")
	mCommits = metrics.Default().Counter("feed.commits")
	mSkips   = metrics.Default().Counter("feed.skips")
	mStalls  = metrics.Default().Counter("feed.stalls")
	mSeeks   = metrics.Default().Counter("feed.seeks")

	// mOccupancy is the current number of uncommitted leases across all
	// consumers of all feeds in the process; mConsumers the open
	// subscriber count.
	mOccupancy = metrics.Default().Gauge("feed.window.occupancy")
	mConsumers = metrics.Default().Gauge("feed.consumers")
)
