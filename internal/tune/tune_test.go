package tune

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/sim"
)

func testWorkload() AEWorkload {
	return AEWorkload{
		Arch:            sim.XeonPhi5110P(),
		Model:           autoencoder.Config{Visible: 1024, Hidden: 4096},
		Batch:           1000,
		Iterations:      10,
		DatasetExamples: 100000,
	}
}

func TestGridSearchRanksCandidates(t *testing.T) {
	res, err := testWorkload().Tune()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != len(DefaultCandidates(sim.XeonPhi5110P())) {
		t.Fatalf("evaluated %d candidates", len(res.All))
	}
	for i := 1; i < len(res.All); i++ {
		if res.All[i].SimSeconds < res.All[i-1].SimSeconds {
			t.Fatal("ranking not sorted")
		}
	}
	if res.Best.SimSeconds != res.All[0].SimSeconds {
		t.Fatal("best is not the fastest")
	}
}

// TestTunerFindsTheKnownOptimum: the cost model makes 2+ threads/core with
// fusion and all cores the right choice at this workload; the tuner must
// find a configuration at least as good as the hand-picked default
// (60 cores × 4 threads, fused) and must never pick one hardware thread per
// core (the in-order pipeline stalls at half issue).
func TestTunerFindsTheKnownOptimum(t *testing.T) {
	w := testWorkload()
	res, err := w.Tune()
	if err != nil {
		t.Fatal(err)
	}
	obj := w.Objective()
	defaultT, err := obj(Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.SimSeconds > defaultT*(1+1e-12) {
		t.Fatalf("tuned %v (%g s) worse than the default (%g s)", res.Best.Candidate, res.Best.SimSeconds, defaultT)
	}
	if res.Best.ThreadsPerCore == 1 {
		t.Fatalf("tuner picked 1 thread/core: %v", res.Best.Candidate)
	}
	if !res.Best.Fuse {
		t.Fatalf("tuner rejected loop fusion: %v", res.Best.Candidate)
	}
	if res.Best.Cores < 45 {
		t.Fatalf("tuner gave up most cores on a compute-heavy workload: %v", res.Best.Candidate)
	}
}

// TestTunerPrefersFewerThreadsWhenSyncBound: with two hardware threads the
// Phi pipeline is already full, and fork/join fan-out is halved — so for
// any workload the model should rank 2 threads/core at least as fast as 4.
func TestTunerPrefersFewerThreadsWhenSyncBound(t *testing.T) {
	w := testWorkload()
	w.Batch, w.Iterations = 200, 50 // launch-overhead-bound regime
	obj := w.Objective()
	t2, err := obj(Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 2, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	t4, err := obj(Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if t2 > t4*(1+1e-12) {
		t.Fatalf("2 threads/core (%g) slower than 4 (%g)", t2, t4)
	}
}

func TestDefaultCandidatesCoverGrid(t *testing.T) {
	cands := DefaultCandidates(sim.XeonPhi5110P())
	// 2 levels × 4 core options × 4 tpc × 2 fusion = 64.
	if len(cands) != 64 {
		t.Fatalf("got %d candidates", len(cands))
	}
	seen := map[Candidate]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
		if c.Cores < 1 || c.Cores > 60 || c.ThreadsPerCore < 1 || c.ThreadsPerCore > 4 {
			t.Fatalf("candidate out of range: %v", c)
		}
	}
	// Single-core arch collapses the core axis: 2 levels × 2 fusion.
	if n := len(DefaultCandidates(sim.XeonE5620Core())); n != 4 {
		t.Fatalf("1-core arch yielded %d candidates", n)
	}
}

func TestGridSearchErrors(t *testing.T) {
	if _, err := GridSearch(func(Candidate) (float64, error) { return 0, nil }, nil); err == nil {
		t.Error("empty grid must fail")
	}
	grid := []Candidate{
		{Cores: 1, ThreadsPerCore: 1},
		{Cores: 2, ThreadsPerCore: 1},
		{Cores: 3, ThreadsPerCore: 1},
	}
	boom := errors.New("boom")
	res, err := GridSearch(func(Candidate) (float64, error) { return 0, boom }, grid)
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("all-failing grid: err %v", err)
	}
	// Every candidate's failure must be reported, not just the first: the
	// aggregate error and Result.Failed both carry the full breakdown.
	if len(res.Failed) != len(grid) {
		t.Fatalf("recorded %d failures, want %d", len(res.Failed), len(grid))
	}
	for i, f := range res.Failed {
		if f.Candidate != grid[i] {
			t.Fatalf("failure %d is for %v, want %v", i, f.Candidate, grid[i])
		}
		if !errors.Is(f.Err, boom) {
			t.Fatalf("failure %d lost its cause: %v", i, f.Err)
		}
		if !strings.Contains(err.Error(), f.Candidate.String()) {
			t.Fatalf("aggregate error omits candidate %v: %v", f.Candidate, err)
		}
	}
}

// TestGridSearchRecordsPartialFailures: a grid where some candidates fail
// must still rank the survivors and keep every failure on Result.Failed.
// (The original implementation kept only the first error and dropped the
// rest.)
func TestGridSearchRecordsPartialFailures(t *testing.T) {
	grid := []Candidate{
		{Cores: 1, ThreadsPerCore: 1},
		{Cores: 2, ThreadsPerCore: 1},
		{Cores: 3, ThreadsPerCore: 1},
		{Cores: 4, ThreadsPerCore: 1},
	}
	boom := errors.New("boom")
	res, err := GridSearch(func(c Candidate) (float64, error) {
		if c.Cores%2 == 1 {
			return 0, fmt.Errorf("cores=%d: %w", c.Cores, boom)
		}
		return float64(10 - c.Cores), nil
	}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 2 || len(res.Failed) != 2 {
		t.Fatalf("got %d ranked, %d failed; want 2 and 2", len(res.All), len(res.Failed))
	}
	if res.Best.Cores != 4 {
		t.Fatalf("best %v, want the 4-core survivor", res.Best.Candidate)
	}
	if res.Failed[0].Candidate.Cores != 1 || res.Failed[1].Candidate.Cores != 3 {
		t.Fatalf("failures out of order: %v", res.Failed)
	}
	for _, f := range res.Failed {
		if !errors.Is(f, boom) {
			t.Fatalf("CandidateError does not unwrap to its cause: %v", f)
		}
	}
}

func TestCandidateString(t *testing.T) {
	s := Candidate{Cores: 30, ThreadsPerCore: 2, Fuse: true}.String()
	if !strings.Contains(s, "30") || !strings.Contains(s, "fused") {
		t.Fatalf("bad string %q", s)
	}
}
