package tune

import (
	"errors"
	"strings"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/sim"
)

func testWorkload() AEWorkload {
	return AEWorkload{
		Arch:            sim.XeonPhi5110P(),
		Model:           autoencoder.Config{Visible: 1024, Hidden: 4096},
		Batch:           1000,
		Iterations:      10,
		DatasetExamples: 100000,
	}
}

func TestGridSearchRanksCandidates(t *testing.T) {
	res, err := testWorkload().Tune()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != len(DefaultCandidates(sim.XeonPhi5110P())) {
		t.Fatalf("evaluated %d candidates", len(res.All))
	}
	for i := 1; i < len(res.All); i++ {
		if res.All[i].SimSeconds < res.All[i-1].SimSeconds {
			t.Fatal("ranking not sorted")
		}
	}
	if res.Best.SimSeconds != res.All[0].SimSeconds {
		t.Fatal("best is not the fastest")
	}
}

// TestTunerFindsTheKnownOptimum: the cost model makes 2+ threads/core with
// fusion and all cores the right choice at this workload; the tuner must
// find a configuration at least as good as the hand-picked default
// (60 cores × 4 threads, fused) and must never pick one hardware thread per
// core (the in-order pipeline stalls at half issue).
func TestTunerFindsTheKnownOptimum(t *testing.T) {
	w := testWorkload()
	res, err := w.Tune()
	if err != nil {
		t.Fatal(err)
	}
	obj := w.Objective()
	defaultT, err := obj(Candidate{Cores: 60, ThreadsPerCore: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.SimSeconds > defaultT*(1+1e-12) {
		t.Fatalf("tuned %v (%g s) worse than the default (%g s)", res.Best.Candidate, res.Best.SimSeconds, defaultT)
	}
	if res.Best.ThreadsPerCore == 1 {
		t.Fatalf("tuner picked 1 thread/core: %v", res.Best.Candidate)
	}
	if !res.Best.Fuse {
		t.Fatalf("tuner rejected loop fusion: %v", res.Best.Candidate)
	}
	if res.Best.Cores < 45 {
		t.Fatalf("tuner gave up most cores on a compute-heavy workload: %v", res.Best.Candidate)
	}
}

// TestTunerPrefersFewerThreadsWhenSyncBound: with two hardware threads the
// Phi pipeline is already full, and fork/join fan-out is halved — so for
// any workload the model should rank 2 threads/core at least as fast as 4.
func TestTunerPrefersFewerThreadsWhenSyncBound(t *testing.T) {
	w := testWorkload()
	w.Batch, w.Iterations = 200, 50 // launch-overhead-bound regime
	obj := w.Objective()
	t2, err := obj(Candidate{Cores: 60, ThreadsPerCore: 2, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	t4, err := obj(Candidate{Cores: 60, ThreadsPerCore: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if t2 > t4*(1+1e-12) {
		t.Fatalf("2 threads/core (%g) slower than 4 (%g)", t2, t4)
	}
}

func TestDefaultCandidatesCoverGrid(t *testing.T) {
	cands := DefaultCandidates(sim.XeonPhi5110P())
	// 4 core options × 4 tpc × 2 fusion = 32.
	if len(cands) != 32 {
		t.Fatalf("got %d candidates", len(cands))
	}
	seen := map[Candidate]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
		if c.Cores < 1 || c.Cores > 60 || c.ThreadsPerCore < 1 || c.ThreadsPerCore > 4 {
			t.Fatalf("candidate out of range: %v", c)
		}
	}
	// Single-core arch collapses the core axis.
	if n := len(DefaultCandidates(sim.XeonE5620Core())); n != 2 {
		t.Fatalf("1-core arch yielded %d candidates", n)
	}
}

func TestGridSearchErrors(t *testing.T) {
	if _, err := GridSearch(func(Candidate) (float64, error) { return 0, nil }, nil); err == nil {
		t.Error("empty grid must fail")
	}
	boom := errors.New("boom")
	if _, err := GridSearch(func(Candidate) (float64, error) { return 0, boom }, []Candidate{{1, 1, false}}); err == nil || !errors.Is(err, boom) {
		t.Errorf("all-failing grid: err %v", err)
	}
	// Partial failures are tolerated.
	calls := 0
	res, err := GridSearch(func(c Candidate) (float64, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return float64(calls), nil
	}, []Candidate{{1, 1, false}, {2, 1, false}})
	if err != nil || len(res.All) != 1 {
		t.Fatalf("partial failure handling wrong: %v %v", res, err)
	}
}

func TestCandidateString(t *testing.T) {
	s := Candidate{Cores: 30, ThreadsPerCore: 2, Fuse: true}.String()
	if !strings.Contains(s, "30") || !strings.Contains(s, "fused") {
		t.Fatalf("bad string %q", s)
	}
}
