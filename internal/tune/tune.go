// Package tune automates the paper's first future-work item: "a balance
// should be found between parallelism and synchronization. For now, we need
// to adjust the number of threads manually in our implementation."
//
// The tuner searches execution configurations — optimization level,
// physical cores, hardware threads per core, loop fusion, minibatch size —
// against the simulated cost model, which evaluates a whole training run in
// microseconds. Two search strategies are provided:
//
//   - GridSearch evaluates every candidate with a full simulated run
//     (exhaustive, the original strategy).
//   - PrunedSearch first calibrates an analytical performance model from a
//     handful of short probe runs (see Calibrate and Predictor), ranks the
//     whole grid by predicted epoch time, and spends full evaluations only
//     on the predicted top k — the approach of "Performance Modelling of
//     Deep Learning on Intel Many Integrated Core Architectures"
//     (arXiv:1906.01992) applied to this simulator.
//
// The returned configuration is what a manual tuner on real silicon would
// converge to: e.g. two hardware threads per Phi core saturate the in-order
// pipeline while halving the fork/join fan-out, so the tuner prefers them
// over four for synchronization-bound workloads.
package tune

import (
	"errors"
	"fmt"
	"sort"

	"phideep/internal/core"
	"phideep/internal/sim"
)

// Candidate is one execution configuration under consideration.
type Candidate struct {
	// Level is the optimization-ladder step the run executes at. Note that
	// Fuse is the explicit fusion/concurrency knob: a Candidate at
	// core.OpenMPMKL with Fuse set is exactly the paper's "Improved
	// OpenMP+MKL" configuration, and a core.Improved candidate with Fuse
	// unset degenerates to plain OpenMP+MKL.
	Level          core.OptLevel
	Cores          int
	ThreadsPerCore int
	// Fuse enables loop fusion and the Fig. 6 concurrent scheduling.
	Fuse bool
	// Batch overrides the workload's minibatch size when non-zero. Runs
	// with a different batch are compared over the same number of training
	// examples (iterations scale inversely), so the objective stays fair.
	Batch int
}

func (c Candidate) String() string {
	fuse := "unfused"
	if c.Fuse {
		fuse = "fused"
	}
	s := fmt.Sprintf("%s, %d cores x %d threads, %s", c.Level, c.Cores, c.ThreadsPerCore, fuse)
	if c.Batch > 0 {
		s += fmt.Sprintf(", batch %d", c.Batch)
	}
	return s
}

// validate rejects configurations no device could run.
func (c Candidate) validate() error {
	if c.Cores < 1 || c.ThreadsPerCore < 1 {
		return fmt.Errorf("invalid candidate %+v", c)
	}
	if c.Batch < 0 {
		return fmt.Errorf("negative batch in candidate %+v", c)
	}
	switch c.Level {
	case core.Baseline, core.OpenMP, core.OpenMPMKL, core.Improved:
	default:
		return fmt.Errorf("unknown level in candidate %+v", c)
	}
	return nil
}

// Scored is a candidate with its evaluated and/or predicted simulated time.
type Scored struct {
	Candidate
	// SimSeconds is the fully simulated time (0 when only predicted).
	SimSeconds float64
	// Predicted is the calibrated model's estimate (0 under plain
	// GridSearch, which never predicts).
	Predicted float64
}

// CandidateError records one candidate whose evaluation failed.
type CandidateError struct {
	Candidate Candidate
	Err       error
}

func (e CandidateError) Error() string {
	return fmt.Sprintf("tune: candidate %v: %v", e.Candidate, e.Err)
}

// Unwrap exposes the underlying evaluation error to errors.Is/As.
func (e CandidateError) Unwrap() error { return e.Err }

// Result is the outcome of a search.
type Result struct {
	Best Scored
	// All holds every fully evaluated candidate, fastest first.
	All []Scored
	// Failed holds every candidate whose evaluation failed, in grid order.
	// A search succeeds as long as at least one candidate evaluates; the
	// failures are recorded here rather than dropped.
	Failed []CandidateError
	// Predicted holds the calibrated model's ranking of the entire grid
	// (fastest predicted first); set only by PrunedSearch.
	Predicted []Scored
	// Pruned counts the grid candidates PrunedSearch skipped on the
	// predictor's advice (never fully evaluated).
	Pruned int
}

// Objective evaluates a candidate, returning the simulated seconds of the
// workload under that configuration (lower is better).
type Objective func(c Candidate) (float64, error)

// GridSearch evaluates every candidate and returns the ranking. Failed
// candidates are recorded on Result.Failed; when every candidate fails the
// returned error aggregates all of them (and the Result still carries the
// per-candidate breakdown).
func GridSearch(obj Objective, candidates []Candidate) (*Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tune: no candidates")
	}
	res := &Result{}
	for _, c := range candidates {
		t, err := obj(c)
		if err != nil {
			res.Failed = append(res.Failed, CandidateError{Candidate: c, Err: err})
			continue
		}
		res.All = append(res.All, Scored{Candidate: c, SimSeconds: t})
	}
	if len(res.All) == 0 {
		errs := make([]error, len(res.Failed))
		for i, f := range res.Failed {
			errs[i] = f
		}
		return res, fmt.Errorf("tune: all %d candidates failed: %w", len(res.Failed), errors.Join(errs...))
	}
	sort.Slice(res.All, func(i, j int) bool { return res.All[i].SimSeconds < res.All[j].SimSeconds })
	res.Best = res.All[0]
	return res, nil
}

// DefaultCandidates enumerates the standard grid for an architecture:
// level ∈ {OpenMP, OpenMP+MKL} (fusion is the separate Fuse axis, so
// OpenMP+MKL with Fuse set covers the paper's Improved row without
// duplicates), cores ∈ {¼, ½, ¾, all}, threads/core ∈ {1..max}, fusion on
// and off. Batch is left at the workload default.
func DefaultCandidates(arch *sim.Arch) []Candidate {
	var coreOpts []int
	for _, f := range []float64{0.25, 0.5, 0.75, 1} {
		c := int(float64(arch.Cores) * f)
		if c < 1 {
			c = 1
		}
		if len(coreOpts) == 0 || coreOpts[len(coreOpts)-1] != c {
			coreOpts = append(coreOpts, c)
		}
	}
	var out []Candidate
	for _, lvl := range []core.OptLevel{core.OpenMP, core.OpenMPMKL} {
		for _, cores := range coreOpts {
			for tpc := 1; tpc <= arch.ThreadsPerCore; tpc++ {
				for _, fuse := range []bool{false, true} {
					out = append(out, Candidate{Level: lvl, Cores: cores, ThreadsPerCore: tpc, Fuse: fuse})
				}
			}
		}
	}
	return out
}

// CrossBatches expands a candidate list with minibatch-size options: every
// candidate is replicated once per batch value, making batch a searchable
// axis next to level, cores, threads and fusion.
func CrossBatches(cands []Candidate, batches []int) []Candidate {
	if len(batches) == 0 {
		return cands
	}
	out := make([]Candidate, 0, len(cands)*len(batches))
	for _, b := range batches {
		for _, c := range cands {
			c.Batch = b
			out = append(out, c)
		}
	}
	return out
}
