// Package tune automates the paper's first future-work item: "a balance
// should be found between parallelism and synchronization. For now, we need
// to adjust the number of threads manually in our implementation."
//
// The tuner searches execution configurations — physical cores, hardware
// threads per core, loop fusion — against the simulated cost model, which
// evaluates a whole training run in microseconds. The returned
// configuration is what a manual tuner on real silicon would converge to:
// e.g. two hardware threads per Phi core saturate the in-order pipeline
// while halving the fork/join fan-out, so the tuner prefers them over four
// for synchronization-bound workloads.
package tune

import (
	"fmt"
	"sort"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/sim"
)

// Candidate is one execution configuration under consideration.
type Candidate struct {
	Cores          int
	ThreadsPerCore int
	Fuse           bool
}

func (c Candidate) String() string {
	fuse := "unfused"
	if c.Fuse {
		fuse = "fused"
	}
	return fmt.Sprintf("%d cores x %d threads, %s", c.Cores, c.ThreadsPerCore, fuse)
}

// Scored is a candidate with its evaluated simulated time.
type Scored struct {
	Candidate
	SimSeconds float64
}

// Result is the outcome of a search.
type Result struct {
	Best Scored
	// All holds every evaluated candidate, fastest first.
	All []Scored
}

// Objective evaluates a candidate, returning the simulated seconds of the
// workload under that configuration (lower is better).
type Objective func(c Candidate) (float64, error)

// GridSearch evaluates every candidate and returns the ranking. It fails if
// no candidate evaluates successfully.
func GridSearch(obj Objective, candidates []Candidate) (*Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tune: no candidates")
	}
	res := &Result{}
	var firstErr error
	for _, c := range candidates {
		t, err := obj(c)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("tune: candidate %v: %w", c, err)
			}
			continue
		}
		res.All = append(res.All, Scored{Candidate: c, SimSeconds: t})
	}
	if len(res.All) == 0 {
		return nil, firstErr
	}
	sort.Slice(res.All, func(i, j int) bool { return res.All[i].SimSeconds < res.All[j].SimSeconds })
	res.Best = res.All[0]
	return res, nil
}

// DefaultCandidates enumerates the standard grid for an architecture:
// cores ∈ {¼, ½, ¾, all}, threads/core ∈ {1..max}, fusion on and off.
func DefaultCandidates(arch *sim.Arch) []Candidate {
	var coreOpts []int
	for _, f := range []float64{0.25, 0.5, 0.75, 1} {
		c := int(float64(arch.Cores) * f)
		if c < 1 {
			c = 1
		}
		if len(coreOpts) == 0 || coreOpts[len(coreOpts)-1] != c {
			coreOpts = append(coreOpts, c)
		}
	}
	var out []Candidate
	for _, cores := range coreOpts {
		for tpc := 1; tpc <= arch.ThreadsPerCore; tpc++ {
			for _, fuse := range []bool{false, true} {
				out = append(out, Candidate{Cores: cores, ThreadsPerCore: tpc, Fuse: fuse})
			}
		}
	}
	return out
}

// AEWorkload describes a Sparse Autoencoder training run to tune for.
type AEWorkload struct {
	Arch            *sim.Arch
	Model           autoencoder.Config
	Batch           int
	Iterations      int
	DatasetExamples int
}

// Objective returns the tuning objective for the workload: each candidate
// is evaluated by a timing-only run on a fresh device.
func (w AEWorkload) Objective() Objective {
	return func(c Candidate) (float64, error) {
		if c.Cores < 1 || c.ThreadsPerCore < 1 {
			return 0, fmt.Errorf("invalid candidate %+v", c)
		}
		dev := device.New(w.Arch, false, nil)
		ctx := core.NewContext(dev, core.Improved, c.Cores, 1)
		ctx.ThreadsPerCore = c.ThreadsPerCore
		ctx.AutoFuse = c.Fuse
		ctx.AutoConcurrent = c.Fuse
		m, err := autoencoder.New(ctx, w.Model, w.Batch, 1)
		if err != nil {
			return 0, err
		}
		defer m.Free()
		tr := &core.Trainer{Dev: dev, Cfg: core.TrainConfig{
			Iterations: w.Iterations, LR: 0.1, Prefetch: true,
		}}
		res, err := tr.Run(m, data.Null{D: w.Model.Visible, N: w.DatasetExamples})
		if err != nil {
			return 0, err
		}
		return res.SimSeconds, nil
	}
}

// Tune searches the default grid for the workload.
func (w AEWorkload) Tune() (*Result, error) {
	return GridSearch(w.Objective(), DefaultCandidates(w.Arch))
}
