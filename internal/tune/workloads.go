package tune

import (
	"errors"
	"fmt"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/convnet"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/mlp"
	"phideep/internal/sim"
)

// Workload is a training run the tuner can evaluate under different
// execution configurations. All evaluation is timing-only: candidates run
// on fresh model-only devices, so a whole grid costs milliseconds of host
// time regardless of the simulated hours it covers.
type Workload interface {
	// Platform returns the architecture the workload targets.
	Platform() *sim.Arch
	// FullIterations returns the minibatch updates of the full run (at the
	// default batch size; candidates overriding Batch are scaled to the
	// same example count, see EffectiveIters).
	FullIterations() int
	// DefaultBatch returns the workload's minibatch size.
	DefaultBatch() int
	// StepsPerChunk returns the minibatch updates per streamed data chunk
	// at the given batch size — the granularity of the Fig. 5 pipeline,
	// which the calibrated predictor uses to size its probe runs.
	StepsPerChunk(batch int) int
	// Evaluate runs the workload under candidate c for iters minibatch
	// updates on a fresh model-only device. When obs is non-nil the
	// device's kernel launches and transfers are captured into it.
	// Evaluation must be leak-free: all device allocations are released on
	// every path, success and error alike.
	Evaluate(c Candidate, iters int, obs *Trace) (EvalResult, error)
}

// EvalResult reports one candidate evaluation.
type EvalResult struct {
	// SimSeconds is the simulated makespan (the objective value).
	SimSeconds float64
	// ComputeSeconds and TransferSeconds are the completion times of the
	// two device engines; the calibration fit targets the compute engine
	// and handles transfers analytically.
	ComputeSeconds  float64
	TransferSeconds float64
}

// EffectiveIters returns the iteration count candidate c should run for so
// that every candidate trains on the same number of examples: candidates
// overriding Batch get proportionally fewer (or more) updates.
func EffectiveIters(w Workload, c Candidate) int {
	iters := w.FullIterations()
	if c.Batch > 0 && c.Batch != w.DefaultBatch() && w.DefaultBatch() > 0 {
		iters = (iters*w.DefaultBatch() + c.Batch - 1) / c.Batch
	}
	if iters < 1 {
		iters = 1
	}
	return iters
}

// WorkloadObjective adapts a Workload to the Objective signature: each
// candidate is evaluated with a full-length simulated run.
func WorkloadObjective(w Workload) Objective {
	return func(c Candidate) (float64, error) {
		r, err := w.Evaluate(c, EffectiveIters(w, c), nil)
		if err != nil {
			return 0, err
		}
		return r.SimSeconds, nil
	}
}

// Tune exhaustively searches the default grid for the workload.
func Tune(w Workload) (*Result, error) {
	return GridSearch(WorkloadObjective(w), DefaultCandidates(w.Platform()))
}

// evalContext builds the per-candidate model-only device and blas context:
// the candidate's ladder level selects the kernels, and its Fuse flag — not
// the level — controls loop fusion and Fig. 6 concurrency, so the fusion
// axis is searchable at every level.
func evalContext(arch *sim.Arch, c Candidate, seed uint64, obs *Trace) (*device.Device, *blas.Context) {
	dev := device.New(arch, false, nil)
	if obs != nil {
		dev.Observe = obs.observeOp
		dev.ObserveGroup = obs.observeGroup
		dev.ObserveTransfer = obs.observeTransfer
	}
	ctx := core.NewContext(dev, c.Level, c.Cores, seed)
	ctx.ThreadsPerCore = c.ThreadsPerCore
	ctx.AutoFuse = c.Fuse
	ctx.AutoConcurrent = c.Fuse
	return dev, ctx
}

// trainerFor builds the timing-only trainer for one evaluation. The chunk
// size is pinned explicitly so probe runs and full runs stream identically.
func trainerFor(dev *device.Device, iters, chunkExamples int) *core.Trainer {
	return &core.Trainer{Dev: dev, Cfg: core.TrainConfig{
		Iterations: iters, LR: 0.1, Prefetch: true,
		ChunkExamples: chunkExamples,
	}}
}

// leakCheck audits a finished evaluation: every device allocation must have
// been released, on error paths included. A non-zero residue is reported as
// an error (joined with the evaluation's own error, if any) rather than
// silently dropped — the regression that motivated this audit leaked the
// per-candidate model allocations whenever a build or run failed.
func leakCheck(dev *device.Device, err error) error {
	if leaked := dev.Allocated(); leaked != 0 {
		leakErr := fmt.Errorf("tune: candidate evaluation leaked %d device bytes", leaked)
		if err != nil {
			return errors.Join(err, leakErr)
		}
		return leakErr
	}
	return err
}

// stepsPerChunk mirrors core.Trainer's default chunk sizing (32 batches per
// chunk, capped by the dataset) without the device-memory cap, which the
// tuner's workloads never hit.
func stepsPerChunk(datasetExamples, batch int) int {
	if batch <= 0 {
		return 1
	}
	n := 32 * batch
	if max := datasetExamples / batch * batch; n > max {
		n = max
	}
	if n < batch {
		n = batch
	}
	return n / batch
}

func evalResult(dev *device.Device, sim float64) EvalResult {
	return EvalResult{
		SimSeconds:      sim,
		ComputeSeconds:  dev.ComputeBusyUntil(),
		TransferSeconds: dev.TransferBusyUntil(),
	}
}

// AEWorkload describes a Sparse Autoencoder training run to tune for.
type AEWorkload struct {
	Arch            *sim.Arch
	Model           autoencoder.Config
	Batch           int
	Iterations      int
	DatasetExamples int
	// Seed drives the model's (and context's) RNG stream; zero selects 1,
	// the value earlier versions hard-coded.
	Seed uint64
}

func (w AEWorkload) seed() uint64 {
	if w.Seed == 0 {
		return 1
	}
	return w.Seed
}

// Platform implements Workload.
func (w AEWorkload) Platform() *sim.Arch { return w.Arch }

// FullIterations implements Workload.
func (w AEWorkload) FullIterations() int { return w.Iterations }

// DefaultBatch implements Workload.
func (w AEWorkload) DefaultBatch() int { return w.Batch }

// StepsPerChunk implements Workload.
func (w AEWorkload) StepsPerChunk(batch int) int {
	return stepsPerChunk(w.DatasetExamples, batch)
}

// Evaluate implements Workload.
func (w AEWorkload) Evaluate(c Candidate, iters int, obs *Trace) (EvalResult, error) {
	if err := c.validate(); err != nil {
		return EvalResult{}, err
	}
	batch := c.Batch
	if batch == 0 {
		batch = w.Batch
	}
	dev, ctx := evalContext(w.Arch, c, w.seed(), obs)
	mcfg := w.Model
	mcfg.Batch = batch
	mcfg.Seed = w.seed()
	m, err := autoencoder.Build(ctx, mcfg)
	if err != nil {
		return EvalResult{}, leakCheck(dev, err)
	}
	tr := trainerFor(dev, iters, w.StepsPerChunk(batch)*batch)
	res, err := tr.Run(m, data.Null{D: w.Model.Visible, N: w.DatasetExamples})
	m.Free()
	if err = leakCheck(dev, err); err != nil {
		return EvalResult{}, err
	}
	return evalResult(dev, res.SimSeconds), nil
}

// Objective returns the tuning objective for the workload: each candidate
// is evaluated by a timing-only run on a fresh device.
func (w AEWorkload) Objective() Objective { return WorkloadObjective(w) }

// Tune exhaustively searches the default grid for the workload.
func (w AEWorkload) Tune() (*Result, error) { return Tune(w) }

// MLPWorkload describes a supervised multi-layer-perceptron training run to
// tune for (labels stream next to the examples, as in Trainer.RunLabeled).
type MLPWorkload struct {
	Arch            *sim.Arch
	Model           mlp.Config
	Batch           int
	Iterations      int
	DatasetExamples int
	// Seed drives the model's RNG stream; zero selects 1.
	Seed uint64
}

func (w MLPWorkload) seed() uint64 {
	if w.Seed == 0 {
		return 1
	}
	return w.Seed
}

// Platform implements Workload.
func (w MLPWorkload) Platform() *sim.Arch { return w.Arch }

// FullIterations implements Workload.
func (w MLPWorkload) FullIterations() int { return w.Iterations }

// DefaultBatch implements Workload.
func (w MLPWorkload) DefaultBatch() int { return w.Batch }

// StepsPerChunk implements Workload.
func (w MLPWorkload) StepsPerChunk(batch int) int {
	return stepsPerChunk(w.DatasetExamples, batch)
}

// Evaluate implements Workload.
func (w MLPWorkload) Evaluate(c Candidate, iters int, obs *Trace) (EvalResult, error) {
	if err := c.validate(); err != nil {
		return EvalResult{}, err
	}
	batch := c.Batch
	if batch == 0 {
		batch = w.Batch
	}
	dev, ctx := evalContext(w.Arch, c, w.seed(), obs)
	mcfg := w.Model
	mcfg.Batch = batch
	mcfg.Seed = w.seed()
	m, err := mlp.Build(ctx, mcfg)
	if err != nil {
		return EvalResult{}, leakCheck(dev, err)
	}
	tr := trainerFor(dev, iters, w.StepsPerChunk(batch)*batch)
	src := data.NullLabeled{
		Null:    data.Null{D: m.InputDim(), N: w.DatasetExamples},
		Classes: m.OutputDim(),
	}
	res, err := tr.RunLabeled(m, src)
	m.Free()
	if err = leakCheck(dev, err); err != nil {
		return EvalResult{}, err
	}
	return evalResult(dev, res.SimSeconds), nil
}

// Objective returns the tuning objective for the workload.
func (w MLPWorkload) Objective() Objective { return WorkloadObjective(w) }

// Tune exhaustively searches the default grid for the workload.
func (w MLPWorkload) Tune() (*Result, error) { return Tune(w) }

// ConvWorkload describes a supervised convolutional-network training run to
// tune for.
type ConvWorkload struct {
	Arch            *sim.Arch
	Model           convnet.Config
	Batch           int
	Iterations      int
	DatasetExamples int
	// Seed drives the model's RNG stream; zero selects 1.
	Seed uint64
}

func (w ConvWorkload) seed() uint64 {
	if w.Seed == 0 {
		return 1
	}
	return w.Seed
}

// Platform implements Workload.
func (w ConvWorkload) Platform() *sim.Arch { return w.Arch }

// FullIterations implements Workload.
func (w ConvWorkload) FullIterations() int { return w.Iterations }

// DefaultBatch implements Workload.
func (w ConvWorkload) DefaultBatch() int { return w.Batch }

// StepsPerChunk implements Workload.
func (w ConvWorkload) StepsPerChunk(batch int) int {
	return stepsPerChunk(w.DatasetExamples, batch)
}

// Evaluate implements Workload.
func (w ConvWorkload) Evaluate(c Candidate, iters int, obs *Trace) (EvalResult, error) {
	if err := c.validate(); err != nil {
		return EvalResult{}, err
	}
	batch := c.Batch
	if batch == 0 {
		batch = w.Batch
	}
	dev, ctx := evalContext(w.Arch, c, w.seed(), obs)
	mcfg := w.Model
	mcfg.Batch = batch
	mcfg.Seed = w.seed()
	m, err := convnet.Build(ctx, mcfg)
	if err != nil {
		return EvalResult{}, leakCheck(dev, err)
	}
	tr := trainerFor(dev, iters, w.StepsPerChunk(batch)*batch)
	src := data.NullLabeled{
		Null:    data.Null{D: m.InputDim(), N: w.DatasetExamples},
		Classes: m.OutputDim(),
	}
	res, err := tr.RunLabeled(m, src)
	m.Free()
	if err = leakCheck(dev, err); err != nil {
		return EvalResult{}, err
	}
	return evalResult(dev, res.SimSeconds), nil
}

// Objective returns the tuning objective for the workload.
func (w ConvWorkload) Objective() Objective { return WorkloadObjective(w) }

// Tune exhaustively searches the default grid for the workload.
func (w ConvWorkload) Tune() (*Result, error) { return Tune(w) }
