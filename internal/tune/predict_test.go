package tune

import (
	"strings"
	"testing"

	"phideep/internal/autoencoder"
	"phideep/internal/core"
	"phideep/internal/sim"
)

// predictWorkload is sized so probe runs (one and three chunks) are an
// order of magnitude shorter than the full run the predictor extrapolates
// to.
func predictWorkload(arch *sim.Arch) AEWorkload {
	return AEWorkload{
		Arch:            arch,
		Model:           autoencoder.Config{Visible: 256, Hidden: 1024},
		Batch:           250,
		Iterations:      100,
		DatasetExamples: 2000,
	}
}

// TestPredictorAccuracy is the headline acceptance check: after calibrating
// on short probe runs, the predicted epoch time of every candidate in the
// default grid must land within 15% of its fully simulated time — on both
// stock platform profiles.
func TestPredictorAccuracy(t *testing.T) {
	for _, arch := range []*sim.Arch{sim.XeonPhi5110P(), sim.XeonE5620Dual()} {
		t.Run(arch.Name, func(t *testing.T) {
			w := predictWorkload(arch)
			cands := DefaultCandidates(arch)
			p, err := Calibrate(w, cands)
			if err != nil {
				t.Fatal(err)
			}
			if p.CalibrationRuns >= len(cands) {
				t.Fatalf("calibration ran %d probes for a %d-candidate grid — not cheaper than exhaustive",
					p.CalibrationRuns, len(cands))
			}
			worst := 0.0
			var worstC Candidate
			for _, c := range cands {
				pred, err := p.Predict(c)
				if err != nil {
					t.Fatal(err)
				}
				r, err := w.Evaluate(c, EffectiveIters(w, c), nil)
				if err != nil {
					t.Fatal(err)
				}
				rel := abs(pred-r.SimSeconds) / r.SimSeconds
				if rel > worst {
					worst, worstC = rel, c
				}
			}
			t.Logf("worst relative error %.1f%% at %v", 100*worst, worstC)
			if worst > 0.15 {
				t.Fatalf("prediction off by %.1f%% at %v (tolerance 15%%)", 100*worst, worstC)
			}
		})
	}
}

// TestPrunedSearchFindsExhaustiveBest: the predictor-pruned search must pick
// the same best configuration as the exhaustive grid while fully evaluating
// only the predicted top k.
func TestPrunedSearchFindsExhaustiveBest(t *testing.T) {
	w := predictWorkload(sim.XeonPhi5110P())
	cands := DefaultCandidates(w.Arch)
	exhaustive, err := GridSearch(WorkloadObjective(w), cands)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 8
	pruned, p, err := PrunedSearch(w, cands, topK)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Best.Candidate != exhaustive.Best.Candidate {
		t.Fatalf("pruned search picked %v (%g s), exhaustive picked %v (%g s)",
			pruned.Best.Candidate, pruned.Best.SimSeconds,
			exhaustive.Best.Candidate, exhaustive.Best.SimSeconds)
	}
	if len(pruned.All) != topK {
		t.Fatalf("fully evaluated %d candidates, want %d", len(pruned.All), topK)
	}
	if pruned.Pruned != len(cands)-topK {
		t.Fatalf("Pruned = %d, want %d", pruned.Pruned, len(cands)-topK)
	}
	if len(pruned.Predicted) != len(cands) {
		t.Fatalf("predicted ranking covers %d of %d candidates", len(pruned.Predicted), len(cands))
	}
	if pruned.Best.Predicted == 0 {
		t.Fatal("best candidate lost its predicted time")
	}
	if p.CalibrationEquations == 0 {
		t.Fatal("no probe entered the calibration fit")
	}
	for i, v := range p.Coefficients() {
		if v < 0 {
			t.Fatalf("negative coefficient %s = %g", FeatureNames[i], v)
		}
	}
}

// TestCandidateLevelRespected: the evaluation must honor Candidate.Level
// rather than hard-coding the Improved ladder step (the original bug), and
// OpenMP+MKL with Fuse set must be exactly the Improved configuration.
func TestCandidateLevelRespected(t *testing.T) {
	w := predictWorkload(sim.XeonPhi5110P())
	w.Iterations = 10
	eval := func(c Candidate) float64 {
		r, err := w.Evaluate(c, w.Iterations, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.SimSeconds
	}
	base := eval(Candidate{Level: core.Baseline, Cores: 60, ThreadsPerCore: 4})
	omp := eval(Candidate{Level: core.OpenMP, Cores: 60, ThreadsPerCore: 4})
	mkl := eval(Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 4, Fuse: true})
	imp := eval(Candidate{Level: core.Improved, Cores: 60, ThreadsPerCore: 4, Fuse: true})
	if !(base > omp && omp > mkl) {
		t.Fatalf("ladder does not improve: baseline %g, openmp %g, mkl+fused %g", base, omp, mkl)
	}
	if mkl != imp {
		t.Fatalf("OpenMP+MKL fused (%g) differs from Improved fused (%g)", mkl, imp)
	}
}

// TestWorkloadSeedAndDeterminism: the workload's Seed field reaches the
// evaluation (zero defaults to the historical seed 1) and evaluation is
// fully deterministic.
func TestWorkloadSeedAndDeterminism(t *testing.T) {
	c := Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 2, Fuse: true}
	w := predictWorkload(sim.XeonPhi5110P())
	w.Iterations = 10
	a, err := w.Evaluate(c, w.Iterations, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Evaluate(c, w.Iterations, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	w.Seed = 7
	if _, err := w.Evaluate(c, w.Iterations, nil); err != nil {
		t.Fatalf("seeded evaluation failed: %v", err)
	}
}

// TestEvaluateLeakFree: when a candidate evaluation fails mid-build (here:
// device memory exhausted after some buffers were already allocated), every
// allocation must still be released. leakCheck folds any residue into the
// returned error, so an error mentioning a leak is the regression.
func TestEvaluateLeakFree(t *testing.T) {
	arch := *sim.XeonPhi5110P()
	arch.GlobalMemBytes = 12 << 20 // first weight matrix fits, the rest do not
	w := predictWorkload(&arch)
	_, err := w.Evaluate(Candidate{Level: core.OpenMPMKL, Cores: 60, ThreadsPerCore: 4, Fuse: true}, 10, nil)
	if err == nil {
		t.Fatal("expected an out-of-memory failure")
	}
	if strings.Contains(err.Error(), "leaked") {
		t.Fatalf("failed evaluation leaked device memory: %v", err)
	}
}
