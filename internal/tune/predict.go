package tune

import (
	"fmt"
	"sort"

	"phideep/internal/kernels"
	"phideep/internal/sim"
)

// This file implements the calibrated performance predictor: an analytical
// cost model whose terms — GEMM, elementwise, scalar, memory, fork/join,
// dispatch, transfer — are fit against a handful of short probe runs, then
// used to predict full-run epoch time for every candidate in a grid without
// simulating it.
//
// The mechanism rests on one structural fact: a training run's kernel
// stream is identical for every candidate that shares (kernel level, fuse,
// batch) — only the core/thread stamps on each op differ. So the predictor
// captures the op stream once per such group at two short iteration counts
// (one chunk and three chunks of the Fig. 5 pipeline), re-stamps it with
// any candidate's cores and threads, extrapolates the per-term feature
// totals linearly in iterations, and prices the result with the calibrated
// coefficients. Concurrent groups (Fig. 6) are captured with their branch
// structure and re-priced by replaying the device's core-sharing split, so
// fused candidates predict as faithfully as unfused ones.

// Feature indices of the linear model. Every feature is a nominal-seconds
// total, so a perfectly calibrated coefficient is ≈1 and the fit learns
// corrections (scheduling gaps, share rounding, overlap) rather than raw
// hardware rates.
const (
	fConst    = iota // per-run constant: pipeline fill, first-chunk stall
	fGemmVec         // vectorized GEMM compute time
	fElemVec         // vectorized elementwise compute time
	fScalar          // scalar compute time (non-vector kernels)
	fMem             // memory-bound kernel time
	fSync            // fork/join synchronization time
	fDispatch        // per-op dispatch overhead (Matlab-style platforms)
	nFeat
)

// FeatureNames labels the predictor's coefficients, index-aligned with
// Predictor.Coefficients.
var FeatureNames = [nFeat]string{
	"const", "gemm-vec", "elem-vec", "scalar", "memory", "sync", "dispatch",
}

// Trace is a captured device activity stream: sequential kernel launches,
// concurrent branch groups, and PCIe transfer sizes.
type Trace struct {
	Ops       []sim.Op
	Groups    [][]sim.Op
	Transfers []int64
}

func (t *Trace) observeOp(op sim.Op) { t.Ops = append(t.Ops, op) }

func (t *Trace) observeGroup(ops []sim.Op) {
	g := make([]sim.Op, len(ops))
	copy(g, ops)
	t.Groups = append(t.Groups, g)
}

func (t *Trace) observeTransfer(bytes int64) { t.Transfers = append(t.Transfers, bytes) }

// restamp returns op carrying candidate c's execution configuration.
func restamp(op sim.Op, c Candidate) sim.Op {
	op.Cores = c.Cores
	op.ThreadsPerCore = c.ThreadsPerCore
	return op
}

// opFeatures adds one op's nominal time components to f, classifying the
// op's binding side (compute vs memory) with the same roofline rules the
// simulator's costing path applies.
func opFeatures(a *sim.Arch, op sim.Op, f *[nFeat]float64) {
	cores, tpc := a.ResolvedConfig(op)
	flops, bytes := op.Flops(), op.Bytes()
	var tc float64
	idx := fScalar
	switch {
	case op.Kind == sim.OpGemm && op.Vector:
		eff := a.GemmEffVector
		if a.GemmWorkHalf > 0 {
			eff = eff * flops / (flops + a.GemmWorkHalf)
		}
		tc = flops / (a.VectorPeak(cores, tpc) * eff)
		idx = fGemmVec
	case op.Vector:
		tc = flops / (a.VectorPeak(cores, tpc) * 0.5)
		idx = fElemVec
	default:
		tc = flops / a.ScalarPeak(cores, tpc)
	}
	if tm := bytes / a.Bandwidth(cores); tm > tc {
		f[fMem] += tm
	} else {
		f[idx] += tc
	}
	if op.Level.IsParallel() && !op.Fused {
		f[fSync] += a.SyncCost(cores * tpc)
	}
	f[fDispatch] += a.PerOpOverhead
}

// groupFeatures adds one concurrent group's contribution: it replays the
// device's proportional core split over the re-stamped branches and
// attributes the group's makespan — the slowest branch at its share — to
// that branch's feature components.
func groupFeatures(a *sim.Arch, ops []sim.Op, c Candidate, f *[nFeat]float64) {
	k := len(ops)
	if k == 1 {
		opFeatures(a, restamp(ops[0], c), f)
		return
	}
	full := make([]float64, k)
	totalFull := 0.0
	for i, op := range ops {
		op = restamp(op, c)
		op.Fused = true
		full[i] = a.OpTime(op)
		totalFull += full[i]
	}
	var slowest sim.Op
	slowestDur := -1.0
	for i, op := range ops {
		op = restamp(op, c)
		cores := op.Cores
		if cores <= 0 {
			if op.Level.IsParallel() {
				cores = a.Cores
			} else {
				cores = 1
			}
		}
		if op.Level.IsParallel() && totalFull > 0 {
			share := int(float64(cores) * full[i] / totalFull)
			if share < 1 {
				share = 1
			}
			if share > cores {
				share = cores
			}
			op.Cores = share
		}
		op.Fused = i > 0
		if dur := a.OpTime(op); dur > slowestDur {
			slowestDur = dur
			slowest = op
		}
	}
	opFeatures(a, slowest, f)
}

// traceFeatures prices a whole trace for candidate c.
func traceFeatures(a *sim.Arch, tr *Trace, c Candidate) [nFeat]float64 {
	var f [nFeat]float64
	f[fConst] = 1
	for _, op := range tr.Ops {
		opFeatures(a, restamp(op, c), &f)
	}
	for _, g := range tr.Groups {
		groupFeatures(a, g, c, &f)
	}
	return f
}

// transferSeconds totals the pure PCIe link occupancy of a trace.
func transferSeconds(a *sim.Arch, tr *Trace) float64 {
	t := 0.0
	for _, b := range tr.Transfers {
		t += a.TransferTime(b)
	}
	return t
}

// groupKey identifies candidates whose runs issue the identical kernel
// stream (modulo core/thread stamps): same kernel implementation, same
// fusion state, same minibatch size. core.OpenMPMKL and core.Improved map
// to the same kernels, so they share a group.
type groupKey struct {
	level kernels.Level
	fuse  bool
	batch int
}

// groupTraces holds the two probe traces of one group, captured at i1 and
// i2 iterations; feature totals extrapolate linearly between (and beyond)
// them.
type groupTraces struct {
	i1, i2 int
	t1, t2 *Trace
}

// Predictor is the calibrated performance model for one workload. Build it
// with Calibrate; it is not safe for concurrent use.
type Predictor struct {
	w      Workload
	arch   *sim.Arch
	coef   [nFeat]float64
	groups map[groupKey]*groupTraces

	// CalibrationRuns counts the short probe evaluations executed and
	// CalibrationEquations how many of them entered the least-squares fit
	// (transfer-bound probes are excluded: their compute timeline is paced
	// by the link, not by the kernels being fit).
	CalibrationRuns      int
	CalibrationEquations int
}

// Coefficients returns the fitted per-term correction factors,
// index-aligned with FeatureNames. A value near 1 means the analytical
// term matched the simulator; deviations absorb scheduling effects the
// closed form does not model.
func (p *Predictor) Coefficients() [nFeat]float64 { return p.coef }

func (p *Predictor) keyOf(c Candidate) groupKey {
	batch := c.Batch
	if batch == 0 {
		batch = p.w.DefaultBatch()
	}
	return groupKey{level: c.Level.KernelLevel(), fuse: c.Fuse, batch: batch}
}

// Calibrate builds a predictor for the workload by probing each behavior
// group of the candidate grid with short runs: the group's widest
// configuration runs at one and three chunks (giving the per-iteration
// trace slope), and up to two more core/thread corners run at one chunk to
// pin the fit across the configuration space. The per-term coefficients
// are then fit by ridge-regularized non-negative least squares against the
// probes' compute-engine times.
func Calibrate(w Workload, cands []Candidate) (*Predictor, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("tune: no candidates to calibrate for")
	}
	p := &Predictor{w: w, arch: w.Platform(), groups: make(map[groupKey]*groupTraces)}
	for _, c := range cands {
		if err := c.validate(); err != nil {
			return nil, fmt.Errorf("tune: %w", err)
		}
	}

	// Group the grid by kernel-stream shape, preserving first-appearance
	// order so calibration is deterministic.
	var keys []groupKey
	members := make(map[groupKey][]Candidate)
	for _, c := range cands {
		k := p.keyOf(c)
		if _, ok := members[k]; !ok {
			keys = append(keys, k)
		}
		members[k] = append(members[k], c)
	}

	var eqX [][nFeat]float64
	var eqY []float64
	probe := func(c Candidate, iters int) (*Trace, bool, error) {
		tr := &Trace{}
		r, err := w.Evaluate(c, iters, tr)
		p.CalibrationRuns++
		if err != nil {
			return nil, false, err
		}
		// Transfer-bound probes make poor fit targets: the compute engine
		// idles on the link, so its completion time does not reflect the
		// kernel terms being calibrated.
		if transferSeconds(p.arch, tr) <= 0.8*r.ComputeSeconds {
			eqX = append(eqX, traceFeatures(p.arch, tr, c))
			eqY = append(eqY, r.ComputeSeconds)
			p.CalibrationEquations++
			return tr, true, nil
		}
		return tr, false, nil
	}

	for _, key := range keys {
		ms := probeCorners(members[key])
		rep := ms[len(ms)-1] // widest configuration: most cores × threads
		spc := w.StepsPerChunk(key.batch)
		if spc < 1 {
			spc = 1
		}
		i1, i2 := spc, 3*spc
		g := &groupTraces{i1: i1, i2: i2}
		var err error
		if g.t1, _, err = probe(rep, i1); err != nil {
			return nil, fmt.Errorf("tune: calibrating %v at %d iterations: %w", rep, i1, err)
		}
		if g.t2, _, err = probe(rep, i2); err != nil {
			return nil, fmt.Errorf("tune: calibrating %v at %d iterations: %w", rep, i2, err)
		}
		p.groups[key] = g
		// Corner probes only add fit equations; a failure there loses an
		// equation, not the group.
		for _, c := range ms[:len(ms)-1] {
			if _, _, err := probe(c, i1); err != nil {
				return nil, fmt.Errorf("tune: calibrating %v at %d iterations: %w", c, i1, err)
			}
		}
	}
	p.coef = fitNonNegRidge(eqX, eqY)
	return p, nil
}

// probeCorners picks up to three probe configurations from a group:
// narrowest, a middle point, and widest by (cores, threads), after
// deduplicating the core/thread stamps. The widest is always last — it is
// the trace representative.
func probeCorners(ms []Candidate) []Candidate {
	type ct struct{ cores, tpc int }
	seen := make(map[ct]bool)
	uniq := make([]Candidate, 0, len(ms))
	for _, c := range ms {
		k := ct{c.Cores, c.ThreadsPerCore}
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].Cores != uniq[j].Cores {
			return uniq[i].Cores < uniq[j].Cores
		}
		return uniq[i].ThreadsPerCore < uniq[j].ThreadsPerCore
	})
	if len(uniq) <= 3 {
		return uniq
	}
	return []Candidate{uniq[0], uniq[len(uniq)/2], uniq[len(uniq)-1]}
}

// Predict estimates the full-run simulated seconds for candidate c: the
// group's trace features are re-stamped with c's configuration,
// extrapolated to c's iteration count, priced by the calibrated
// coefficients, and combined with the analytical transfer time under the
// double-buffering overlap rule (whichever engine binds, the other's final
// chunk tails out).
func (p *Predictor) Predict(c Candidate) (float64, error) {
	if err := c.validate(); err != nil {
		return 0, fmt.Errorf("tune: %w", err)
	}
	key := p.keyOf(c)
	g, ok := p.groups[key]
	if !ok {
		return 0, fmt.Errorf("tune: candidate %v outside the calibrated grid", c)
	}
	iters := EffectiveIters(p.w, c)
	scale := float64(iters-g.i1) / float64(g.i2-g.i1)
	f1 := traceFeatures(p.arch, g.t1, c)
	f2 := traceFeatures(p.arch, g.t2, c)
	compute := 0.0
	for i := 0; i < nFeat; i++ {
		compute += p.coef[i] * (f1[i] + (f2[i]-f1[i])*scale)
	}
	tx1 := transferSeconds(p.arch, g.t1)
	tx2 := transferSeconds(p.arch, g.t2)
	tx := tx1 + (tx2-tx1)*scale
	spc := p.w.StepsPerChunk(key.batch)
	if spc < 1 {
		spc = 1
	}
	chunks := (iters + spc - 1) / spc
	if chunks < 1 {
		chunks = 1
	}
	pred := compute
	if alt := tx + compute/float64(chunks); alt > pred {
		pred = alt
	}
	return pred, nil
}

// Rank predicts every candidate and returns them fastest-predicted first,
// along with any candidates the predictor could not price.
func (p *Predictor) Rank(cands []Candidate) ([]Scored, []CandidateError) {
	var ranked []Scored
	var failed []CandidateError
	for _, c := range cands {
		t, err := p.Predict(c)
		if err != nil {
			failed = append(failed, CandidateError{Candidate: c, Err: err})
			continue
		}
		ranked = append(ranked, Scored{Candidate: c, Predicted: t})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].Predicted < ranked[j].Predicted })
	return ranked, failed
}

// PrunedSearch is the predictor-guided search: calibrate on short probes,
// rank the whole grid by predicted time, then spend full simulated
// evaluations only on the predicted top k. The returned Result carries both
// the full evaluations (All, with Predicted filled in) and the complete
// predicted ranking (Predicted); Pruned counts the candidates never fully
// evaluated.
func PrunedSearch(w Workload, cands []Candidate, topK int) (*Result, *Predictor, error) {
	p, err := Calibrate(w, cands)
	if err != nil {
		return nil, nil, err
	}
	ranked, rankFailed := p.Rank(cands)
	if len(ranked) == 0 {
		return nil, p, fmt.Errorf("tune: no candidate could be predicted")
	}
	k := topK
	if k < 1 {
		k = 1
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make([]Candidate, k)
	predicted := make(map[Candidate]float64, len(ranked))
	for i, s := range ranked {
		predicted[s.Candidate] = s.Predicted
		if i < k {
			top[i] = s.Candidate
		}
	}
	res, err := GridSearch(WorkloadObjective(w), top)
	if res != nil {
		res.Predicted = ranked
		res.Pruned = len(ranked) - k
		res.Failed = append(res.Failed, rankFailed...)
		for i := range res.All {
			res.All[i].Predicted = predicted[res.All[i].Candidate]
		}
		if len(res.All) > 0 {
			res.Best = res.All[0]
		}
	}
	return res, p, err
}

// fitNonNegRidge solves min‖Xθ−y‖² + λ‖θ‖² subject to θ ≥ 0 by iterated
// active-set clamping on the ridge normal equations. With no usable
// equations it returns the nominal model (all coefficients 1).
func fitNonNegRidge(x [][nFeat]float64, y []float64) [nFeat]float64 {
	var coef [nFeat]float64
	if len(x) == 0 {
		for i := range coef {
			coef[i] = 1
		}
		return coef
	}
	var xtx [nFeat][nFeat]float64
	var xty [nFeat]float64
	for r := range x {
		for i := 0; i < nFeat; i++ {
			xty[i] += x[r][i] * y[r]
			for j := 0; j < nFeat; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	trace := 0.0
	for i := 0; i < nFeat; i++ {
		trace += xtx[i][i]
	}
	lambda := 1e-8 * (trace/nFeat + 1e-300)

	active := make([]int, 0, nFeat)
	for i := 0; i < nFeat; i++ {
		active = append(active, i)
	}
	for iter := 0; iter <= nFeat; iter++ {
		n := len(active)
		if n == 0 {
			break
		}
		a := make([][]float64, n)
		b := make([]float64, n)
		for i, fi := range active {
			a[i] = make([]float64, n)
			for j, fj := range active {
				a[i][j] = xtx[fi][fj]
			}
			a[i][i] += lambda
			b[i] = xty[fi]
		}
		sol, ok := solve(a, b)
		if !ok {
			break
		}
		next := active[:0:cap(active)]
		clamped := false
		for i, fi := range active {
			if sol[i] < 0 {
				coef[fi] = 0
				clamped = true
			} else {
				coef[fi] = sol[i]
				next = append(next, fi)
			}
		}
		if !clamped {
			return coef
		}
		active = next
	}
	return coef
}

// solve performs Gaussian elimination with partial pivoting on the n×n
// system a·x = b, in place.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) == 0 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			m := a[r][col] / a[col][col]
			if m == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= m * a[col][k]
			}
			b[r] -= m * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= a[r][k] * x[k]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
