// Package stack implements the greedy layer-wise unsupervised pre-training
// of deep networks shown in the paper's Fig. 1: a four-layer network
// decomposes into a sequence of Sparse Autoencoders (or RBMs, yielding a
// Deep Belief Network), each trained on the hidden-layer outputs of the
// previous one.
//
// Layer outputs for the next stage are produced by the streaming loading
// pipeline on the host (an EncodedSource wrapping the previous source), so
// the device only ever sees ready-made training chunks — matching the
// paper's protocol where "the training examples of higher layer come from
// the output of the previous layer".
package stack

import (
	"fmt"

	"phideep/internal/autoencoder"
	"phideep/internal/blas"
	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/rbm"
	"phideep/internal/tensor"
)

// Config describes a deep stack to pre-train.
type Config struct {
	// Sizes lists the layer widths, input first — Table I uses
	// {1024, 512, 256, 128}, i.e. three unsupervised trainings.
	Sizes []int
	// Autoencoder hyperparameters applied at every layer (ignored for
	// DBNs).
	Lambda, Beta, Rho float64
	// Momentum, Corruption and Tied pass through to every autoencoder
	// layer (classical momentum, denoising corruption, tied decoder
	// weights). Momentum also applies to DBN layers.
	Momentum, Corruption float64
	Tied                 bool
	// RBM options applied at every layer (ignored for autoencoder stacks).
	RBM rbm.Config
	// Batch is the minibatch size; LR the learning rate.
	Batch int
	LR    float64
}

// Validate checks the stack configuration.
func (c *Config) Validate() error {
	if len(c.Sizes) < 2 {
		return fmt.Errorf("stack: need at least two layer sizes, got %d", len(c.Sizes))
	}
	for i, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("stack: layer %d has non-positive size %d", i, s)
		}
	}
	if c.Batch <= 0 {
		return fmt.Errorf("stack: non-positive batch %d", c.Batch)
	}
	return nil
}

// LayerResult records one trained layer.
type LayerResult struct {
	Visible, Hidden int
	Train           *core.Result
	// AE holds the trained autoencoder parameters (nil for DBN layers);
	// RBM the trained RBM parameters (nil for autoencoder layers). On
	// model-only devices these are the initializations.
	AE  *autoencoder.Params
	RBM *rbm.Params
	// Restored marks a layer that was not trained in this run: its
	// parameters were loaded from a previous run's <base>.layerN.done
	// file (see the layer-wise checkpoint hand-off in checkpoint.go).
	// Train is then an empty Result with Resumed set.
	Restored bool
}

// Result records a full pre-training run.
type Result struct {
	Layers []LayerResult
	// SimSeconds is the simulated time of the whole pre-training (the sum
	// over layers, as the device accumulates).
	SimSeconds float64
}

// PretrainAutoencoders greedily trains one Sparse Autoencoder per adjacent
// size pair on ctx's device and returns the per-layer parameters and the
// accumulated simulated time. trainCfg applies to every layer; when its
// CheckpointPath is set it is treated as the base of per-layer checkpoint
// files (see checkpoint.go) and completed layers of a previous run with
// the same base are restored instead of retrained.
func PretrainAutoencoders(ctx *blas.Context, trainCfg core.TrainConfig, cfg Config, src data.Source, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.Dim() != cfg.Sizes[0] {
		return nil, fmt.Errorf("stack: source dim %d, first layer wants %d", src.Dim(), cfg.Sizes[0])
	}
	res := &Result{}
	cur := src
	for i := 0; i+1 < len(cfg.Sizes); i++ {
		aeCfg := autoencoder.Config{
			Visible: cfg.Sizes[i], Hidden: cfg.Sizes[i+1],
			Lambda: cfg.Lambda, Beta: cfg.Beta, Rho: cfg.Rho,
			Momentum: cfg.Momentum, Corruption: cfg.Corruption, Tied: cfg.Tied,
		}
		ckptPath, donePath := layerPaths(trainCfg.CheckpointPath, i)
		if fileExists(donePath) {
			params := autoencoder.NewParams(aeCfg, 0)
			if err := loadParams(donePath, params.Load); err != nil {
				return nil, fmt.Errorf("stack: layer %d: %w", i, err)
			}
			res.Layers = append(res.Layers, LayerResult{
				Visible: aeCfg.Visible, Hidden: aeCfg.Hidden,
				Train: &core.Result{Resumed: true}, AE: params, Restored: true,
			})
			cur = encodedSource(ctx, cur, aeCfg.Hidden, params.Encode)
			continue
		}
		model, err := autoencoder.New(ctx, aeCfg, cfg.Batch, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("stack: layer %d: %w", i, err)
		}
		layerCfg := trainCfg
		layerCfg.CheckpointPath = ckptPath
		layerCfg.ResumePath = ""
		if fileExists(ckptPath) {
			layerCfg.ResumePath = ckptPath
		}
		trainer := &core.Trainer{Dev: ctx.Dev, Cfg: layerCfg}
		tr, err := trainer.Run(model, cur)
		if err != nil {
			model.Free()
			return nil, fmt.Errorf("stack: layer %d: %w", i, err)
		}
		params := model.Download()
		model.Free()
		if err := finishLayer(ckptPath, donePath, params.Save); err != nil {
			return nil, fmt.Errorf("stack: layer %d: %w", i, err)
		}
		res.Layers = append(res.Layers, LayerResult{
			Visible: aeCfg.Visible, Hidden: aeCfg.Hidden, Train: tr, AE: params,
		})
		cur = encodedSource(ctx, cur, aeCfg.Hidden, params.Encode)
	}
	res.SimSeconds = ctx.Dev.Now()
	return res, nil
}

// PretrainDBN greedily trains one RBM per adjacent size pair (the Deep
// Belief Network construction of Hinton et al. that the paper describes).
// Layer-wise checkpointing via trainCfg.CheckpointPath works exactly as
// in PretrainAutoencoders.
func PretrainDBN(ctx *blas.Context, trainCfg core.TrainConfig, cfg Config, src data.Source, seed uint64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src.Dim() != cfg.Sizes[0] {
		return nil, fmt.Errorf("stack: source dim %d, first layer wants %d", src.Dim(), cfg.Sizes[0])
	}
	res := &Result{}
	cur := src
	for i := 0; i+1 < len(cfg.Sizes); i++ {
		rCfg := cfg.RBM
		rCfg.Visible, rCfg.Hidden = cfg.Sizes[i], cfg.Sizes[i+1]
		if rCfg.Momentum == 0 {
			rCfg.Momentum = cfg.Momentum
		}
		ckptPath, donePath := layerPaths(trainCfg.CheckpointPath, i)
		if fileExists(donePath) {
			params := rbm.NewParams(rCfg, 0)
			if err := loadParams(donePath, params.Load); err != nil {
				return nil, fmt.Errorf("stack: layer %d: %w", i, err)
			}
			res.Layers = append(res.Layers, LayerResult{
				Visible: rCfg.Visible, Hidden: rCfg.Hidden,
				Train: &core.Result{Resumed: true}, RBM: params, Restored: true,
			})
			cur = encodedSource(ctx, cur, rCfg.Hidden, params.Encode)
			continue
		}
		model, err := rbm.New(ctx, rCfg, cfg.Batch, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("stack: layer %d: %w", i, err)
		}
		layerCfg := trainCfg
		layerCfg.CheckpointPath = ckptPath
		layerCfg.ResumePath = ""
		if fileExists(ckptPath) {
			layerCfg.ResumePath = ckptPath
		}
		trainer := &core.Trainer{Dev: ctx.Dev, Cfg: layerCfg}
		tr, err := trainer.Run(model, cur)
		if err != nil {
			model.Free()
			return nil, fmt.Errorf("stack: layer %d: %w", i, err)
		}
		params := model.Download()
		model.Free()
		if err := finishLayer(ckptPath, donePath, params.Save); err != nil {
			return nil, fmt.Errorf("stack: layer %d: %w", i, err)
		}
		res.Layers = append(res.Layers, LayerResult{
			Visible: rCfg.Visible, Hidden: rCfg.Hidden, Train: tr, RBM: params,
		})
		cur = encodedSource(ctx, cur, rCfg.Hidden, params.Encode)
	}
	res.SimSeconds = ctx.Dev.Now()
	return res, nil
}

// encodedSource wraps base with a per-example encoder on numeric devices;
// on model-only devices only the geometry matters, so a Null source of the
// right shape is returned.
func encodedSource(ctx *blas.Context, base data.Source, hidden int, encode func(x, y []float64)) data.Source {
	if !ctx.Dev.Numeric {
		return data.Null{D: hidden, N: base.Len()}
	}
	return &Encoded{Base: base, Hidden: hidden, Encode: encode}
}

// Encoded is a data.Source that feeds each base example through a trained
// encoder — the Fig. 1 hand-off between stacked layers, executed by the
// host loading pipeline while streaming.
type Encoded struct {
	Base   data.Source
	Hidden int
	// Encode maps one base example x (len Base.Dim()) to its code y (len
	// Hidden). It must be safe for concurrent use.
	Encode func(x, y []float64)
}

// Dim implements data.Source.
func (e *Encoded) Dim() int { return e.Hidden }

// Len implements data.Source.
func (e *Encoded) Len() int { return e.Base.Len() }

// Chunk implements data.Source.
func (e *Encoded) Chunk(start, n int, dst *tensor.Matrix) {
	if dst.Rows != n || dst.Cols != e.Hidden {
		panic(fmt.Sprintf("stack: Encoded chunk destination %dx%d, want %dx%d", dst.Rows, dst.Cols, n, e.Hidden))
	}
	scratch := tensor.NewMatrix(n, e.Base.Dim())
	e.Base.Chunk(start, n, scratch)
	for i := 0; i < n; i++ {
		e.Encode(scratch.RowView(i), dst.RowView(i))
	}
}
