package stack

import (
	"os"
	"path/filepath"
	"testing"

	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// TestStackLayerCheckpointHandoff trains a two-layer stack with a
// checkpoint base path, then reruns it: both layers must be restored from
// their .done files with bit-identical parameters and no retraining. A
// third run with layer 1's .done file deleted retrains only that layer —
// and, because layer 0's restored encoder reproduces the same encoded
// source and the layer seed is derived from the layer index, it converges
// to the same parameters.
func TestStackLayerCheckpointHandoff(t *testing.T) {
	base := filepath.Join(t.TempDir(), "stack.ckpt")
	cfg := Config{Sizes: []int{64, 24, 8}, Lambda: 1e-5, Batch: 10, LR: 0.5}
	src := data.NewDigits(8, 80, 5, 0.02)
	run := func() *Result {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := core.NewContext(dev, core.Improved, 0, 1)
		tc := trainCfg()
		tc.CheckpointPath = base
		res, err := PretrainAutoencoders(ctx, tc, cfg, src, 7)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run()
	if first.Layers[0].Restored || first.Layers[1].Restored {
		t.Fatal("fresh run claims restored layers")
	}
	for i := range first.Layers {
		if _, err := os.Stat(layerDone(base, i)); err != nil {
			t.Fatalf("layer %d .done file missing: %v", i, err)
		}
		if _, err := os.Stat(layerCkptPath(base, i)); err == nil {
			t.Fatalf("layer %d in-progress checkpoint not cleaned up", i)
		}
	}

	second := run()
	for i, l := range second.Layers {
		if !l.Restored || !l.Train.Resumed {
			t.Fatalf("layer %d not restored on rerun", i)
		}
		if l.Train.Steps != 0 {
			t.Fatalf("layer %d retrained %d steps", i, l.Train.Steps)
		}
		if tensor.MaxAbsDiff(first.Layers[i].AE.W1, l.AE.W1) != 0 {
			t.Fatalf("layer %d restored parameters differ", i)
		}
	}

	// Partial completion: only layer 1 must retrain, to the same result.
	if err := os.Remove(layerDone(base, 1)); err != nil {
		t.Fatal(err)
	}
	third := run()
	if !third.Layers[0].Restored || third.Layers[1].Restored {
		t.Fatal("wrong layers restored after deleting layer 1's .done file")
	}
	if third.Layers[1].Train.Steps == 0 {
		t.Fatal("layer 1 did not retrain")
	}
	if tensor.MaxAbsDiff(first.Layers[1].AE.W1, third.Layers[1].AE.W1) != 0 {
		t.Fatal("retrained layer 1 diverged from the original")
	}
}

// TestStackDBNCheckpointHandoff exercises the same hand-off on the RBM
// path.
func TestStackDBNCheckpointHandoff(t *testing.T) {
	base := filepath.Join(t.TempDir(), "dbn.ckpt")
	cfg := Config{Sizes: []int{64, 16}, Batch: 10, LR: 0.3}
	src := data.NewDigits(8, 80, 5, 0.02)
	run := func() *Result {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := core.NewContext(dev, core.Improved, 0, 1)
		tc := trainCfg()
		tc.CheckpointPath = base
		res, err := PretrainDBN(ctx, tc, cfg, src, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	second := run()
	if !second.Layers[0].Restored {
		t.Fatal("DBN layer not restored on rerun")
	}
	if tensor.MaxAbsDiff(first.Layers[0].RBM.W, second.Layers[0].RBM.W) != 0 {
		t.Fatal("DBN restored parameters differ")
	}
}

func layerCkptPath(base string, i int) string {
	p, _ := layerPaths(base, i)
	return p
}

func layerDone(base string, i int) string {
	_, d := layerPaths(base, i)
	return d
}
