package stack

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Layer-wise checkpoint hand-off.
//
// When trainCfg.CheckpointPath is set, the stack treats it as a *base*
// path and derives one pair of files per layer:
//
//	<base>.layer<i>       — the in-progress training checkpoint for layer
//	                        i (written periodically by core.Trainer)
//	<base>.layer<i>.done  — layer i's final parameters (nn ParamSet
//	                        format), written atomically when the layer
//	                        finishes
//
// A rerun with the same base path skips every layer whose .done file
// exists (loading the stored parameters instead of retraining, so the
// encoded hand-off to the next layer is bit-identical), and resumes the
// first unfinished layer from its in-progress checkpoint if one is
// present. The caller's ResumePath is ignored by the stack — resumption
// is derived entirely from the files next to the base path. The rerun
// must use the same stack and training configuration as the original run;
// the files carry no geometry of their own.

// layerPaths derives the per-layer checkpoint file names from the base
// CheckpointPath ("" base → no checkpointing).
func layerPaths(base string, layer int) (ckpt, done string) {
	if base == "" {
		return "", ""
	}
	ckpt = fmt.Sprintf("%s.layer%d", base, layer)
	return ckpt, ckpt + ".done"
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	if path == "" {
		return false
	}
	_, err := os.Stat(path)
	return err == nil
}

// writeFileAtomic streams save's output into path via a same-directory
// temporary file, fsync and rename — the same crash-consistency contract
// as core.WriteCheckpoint.
func writeFileAtomic(path string, save func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("stack: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("stack: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stack: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stack: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stack: checkpoint: %w", err)
	}
	return nil
}

// loadParams reads a .done parameter file into dst via its Load method.
func loadParams(path string, load func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("stack: checkpoint: %w", err)
	}
	defer f.Close()
	if err := load(f); err != nil {
		return fmt.Errorf("stack: checkpoint %s: %w", path, err)
	}
	return nil
}

// finishLayer persists a completed layer's parameters to done and removes
// the now-redundant in-progress checkpoint.
func finishLayer(ckpt, done string, save func(io.Writer) error) error {
	if done == "" {
		return nil
	}
	if err := writeFileAtomic(done, save); err != nil {
		return err
	}
	os.Remove(ckpt) // best-effort; the .done file is authoritative
	return nil
}
