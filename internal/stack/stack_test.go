package stack

import (
	"strings"
	"testing"

	"phideep/internal/core"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/rbm"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func trainCfg() core.TrainConfig {
	return core.TrainConfig{Iterations: 20, LR: 0.5, ChunkExamples: 40, Prefetch: true}
}

func TestPretrainAutoencodersNumeric(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := core.NewContext(dev, core.Improved, 0, 1)
	cfg := Config{Sizes: []int{64, 24, 8}, Lambda: 1e-5, Batch: 10, LR: 0.5}
	src := data.NewDigits(8, 80, 5, 0.02)
	res, err := PretrainAutoencoders(ctx, trainCfg(), cfg, src, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 2 {
		t.Fatalf("layers %d", len(res.Layers))
	}
	l0, l1 := res.Layers[0], res.Layers[1]
	if l0.Visible != 64 || l0.Hidden != 24 || l1.Visible != 24 || l1.Hidden != 8 {
		t.Fatal("layer geometry wrong")
	}
	if l0.AE == nil || l1.AE == nil || l0.RBM != nil {
		t.Fatal("parameter kinds wrong")
	}
	if l0.AE.W1.Rows != 64 || l0.AE.W1.Cols != 24 {
		t.Fatal("layer 0 weights shape")
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	// Layer-1 training time accumulates after layer 0.
	if !(l1.Train.SimSeconds > l0.Train.SimSeconds) {
		t.Fatal("simulated time did not accumulate across layers")
	}
	// Each layer's training must make progress.
	if !(l0.Train.FinalLoss < l0.Train.FirstLoss) {
		t.Fatalf("layer 0 did not learn: %g → %g", l0.Train.FirstLoss, l0.Train.FinalLoss)
	}
	// The model buffers must have been freed (only no residual leak —
	// ring buffers and models are released after each layer).
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestPretrainDBNNumeric(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := core.NewContext(dev, core.OpenMPMKL, 0, 2)
	cfg := Config{Sizes: []int{32, 12, 6}, Batch: 10, LR: 0.3, RBM: rbm.Config{SampleHidden: true}}
	bits := tensor.NewMatrix(60, 32)
	for i := 0; i < 60; i++ {
		for j := 0; j < 32; j++ {
			if (i+j)%3 == 0 {
				bits.Set(i, j, 1)
			}
		}
	}
	res, err := PretrainDBN(ctx, trainCfg(), cfg, data.InMemory{X: bits}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 2 {
		t.Fatalf("layers %d", len(res.Layers))
	}
	if res.Layers[0].RBM == nil || res.Layers[0].AE != nil {
		t.Fatal("parameter kinds wrong")
	}
	if res.Layers[0].RBM.W.Rows != 32 || res.Layers[0].RBM.W.Cols != 12 {
		t.Fatal("RBM weight shape")
	}
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestPretrainModelOnly(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := core.NewContext(dev, core.Improved, 0, 3)
	cfg := Config{Sizes: []int{1024, 512, 256, 128}, Batch: 100, LR: 0.1}
	tc := core.TrainConfig{Iterations: 5, LR: 0.1, ChunkExamples: 500, Prefetch: true}
	res, err := PretrainAutoencoders(ctx, tc, cfg, data.Null{D: 1024, N: 10000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 3 {
		t.Fatalf("layers %d", len(res.Layers))
	}
	if res.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	// Later layers are smaller, so per-layer increments must shrink.
	d01 := res.Layers[1].Train.SimSeconds - res.Layers[0].Train.SimSeconds
	if !(d01 < res.Layers[0].Train.SimSeconds) {
		t.Fatal("layer 1 (smaller) not cheaper than layer 0")
	}
}

func TestEncodedSourceAppliesEncoder(t *testing.T) {
	base := data.InMemory{X: tensor.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})}
	enc := &Encoded{Base: base, Hidden: 1, Encode: func(x, y []float64) { y[0] = x[0] + x[1] }}
	if enc.Dim() != 1 || enc.Len() != 3 {
		t.Fatal("geometry")
	}
	dst := tensor.NewMatrix(2, 1)
	enc.Chunk(1, 2, dst)
	if dst.At(0, 0) != 7 || dst.At(1, 0) != 11 {
		t.Fatalf("encode wrong: %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad destination should panic")
		}
	}()
	enc.Chunk(0, 2, tensor.NewMatrix(2, 3))
}

func TestConfigValidation(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := core.NewContext(dev, core.Improved, 0, 1)
	cases := []struct {
		cfg  Config
		src  data.Source
		want string
	}{
		{Config{Sizes: []int{5}, Batch: 2}, data.Null{D: 5, N: 10}, "two layer sizes"},
		{Config{Sizes: []int{5, 0}, Batch: 2}, data.Null{D: 5, N: 10}, "non-positive size"},
		{Config{Sizes: []int{5, 3}, Batch: 0}, data.Null{D: 5, N: 10}, "batch"},
		{Config{Sizes: []int{5, 3}, Batch: 2}, data.Null{D: 9, N: 10}, "source dim"},
	}
	tc := core.TrainConfig{Iterations: 1, LR: 0.1}
	for _, c := range cases {
		if _, err := PretrainAutoencoders(ctx, tc, c.cfg, c.src, 1); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("cfg %+v: err %v, want %q", c.cfg, err, c.want)
		}
		if _, err := PretrainDBN(ctx, tc, c.cfg, c.src, 1); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("DBN cfg %+v: err %v, want %q", c.cfg, err, c.want)
		}
	}
}
