package device

import (
	"fmt"
	"math"

	"phideep/internal/rng"
)

// FaultConfig parameterizes the injectable PCIe fault model. Faults are
// drawn per transfer *attempt* from a dedicated seeded generator, so a
// given (config, transfer sequence) pair always produces the same fault
// pattern — fault-injected runs are as reproducible as clean ones.
type FaultConfig struct {
	// Rate is the per-attempt failure probability in [0, 1).
	Rate float64
	// PermanentFrac is the fraction of faults that are permanent (the
	// transfer fails immediately with no retry, modeling a wedged link or
	// a poisoned DMA descriptor). The remainder are transient and retried.
	PermanentFrac float64
	// Seed seeds the fault stream.
	Seed uint64
	// MaxRetries bounds the retries after the first attempt of a transfer
	// (so a transfer is attempted at most MaxRetries+1 times). Zero
	// defaults to 4.
	MaxRetries int
	// BackoffBase is the simulated backoff before the first retry; each
	// further retry doubles it up to BackoffCap (capped exponential
	// backoff). Zeros default to 1 ms and 100 ms.
	BackoffBase float64
	// BackoffCap caps the per-retry backoff.
	BackoffCap float64
}

// Validate checks the fault parameters without filling defaults, so
// command-line front ends can reject a bad -fault-rate or -fault-retries at
// startup with a clear error instead of misbehaving deep inside a run. The
// same ranges are enforced again by EnableFaults and NewFaultStream.
func (c FaultConfig) Validate() error {
	if c.Rate < 0 || c.Rate >= 1 {
		return fmt.Errorf("device: fault rate %g outside [0, 1)", c.Rate)
	}
	if c.PermanentFrac < 0 || c.PermanentFrac > 1 {
		return fmt.Errorf("device: permanent fraction %g outside [0, 1]", c.PermanentFrac)
	}
	if c.MaxRetries < 0 || c.BackoffBase < 0 || c.BackoffCap < 0 {
		return fmt.Errorf("device: negative retry/backoff parameter")
	}
	return nil
}

// withDefaults validates cfg and fills the documented defaults.
func (c FaultConfig) withDefaults() (FaultConfig, error) {
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 1e-3
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 100e-3
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = c.BackoffBase
	}
	return c, nil
}

// backoff returns the capped exponential delay before retry number
// retry (0-based).
func (c FaultConfig) backoff(retry int) float64 {
	d := c.BackoffBase * math.Pow(2, float64(retry))
	if d > c.BackoffCap || math.IsInf(d, 1) {
		d = c.BackoffCap
	}
	return d
}

// FaultStream is the exported seam of the fault model: a seeded, validated
// source of deterministic fault decisions that other layers reuse for their
// own failure injection (internal/cluster draws per-node crash and
// straggler events from one stream per node). A given (config, draw
// sequence) pair always produces the same decisions.
type FaultStream struct {
	cfg FaultConfig
	rng *rng.RNG
}

// NewFaultStream validates cfg, fills its defaults and returns the armed
// deterministic stream.
func NewFaultStream(cfg FaultConfig) (*FaultStream, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &FaultStream{cfg: cfg, rng: rng.New(cfg.Seed)}, nil
}

// Draw decides the fate of one attempt: whether it faults, and whether the
// fault is of the permanent class (drawn with probability PermanentFrac).
// A zero Rate never faults and consumes nothing from the stream.
func (s *FaultStream) Draw() (fault, permanent bool) {
	if s == nil || s.cfg.Rate == 0 {
		return false, false
	}
	if s.rng.Float64() >= s.cfg.Rate {
		return false, false
	}
	return true, s.rng.Float64() < s.cfg.PermanentFrac
}

// Float64 exposes the stream's next uniform variate in [0, 1), for callers
// that layer further deterministic classifications on top of Draw (e.g.
// deciding whether a crash fault is a permanent node loss).
func (s *FaultStream) Float64() float64 { return s.rng.Float64() }

// Config returns the validated configuration the stream was built with
// (defaults filled).
func (s *FaultStream) Config() FaultConfig { return s.cfg }

// WithSeed returns a copy of the config re-seeded for a derived stream —
// the hook layers above use to give each replica (a serving worker, a
// cluster node) its own deterministic fault sequence from one base
// configuration, so a fleet-wide chaos run replays exactly.
func (c FaultConfig) WithSeed(seed uint64) FaultConfig {
	c.Seed = seed
	return c
}

// FaultsArmed reports whether the injectable fault model is live on the
// device (EnableFaults was called with a non-zero rate and DisableFaults
// has not since disarmed it).
func (d *Device) FaultsArmed() bool {
	return d.faults != nil && d.faults.stream.cfg.Rate > 0
}

// faultState is the device-side fault injector: the deterministic fault
// stream and the accumulated counters.
type faultState struct {
	stream *FaultStream

	transient int
	permanent int
	retries   int
	failed    int
}

// draw decides the fate of one transfer attempt.
func (f *faultState) draw() (fault, permanent bool) {
	if f == nil {
		return false, false
	}
	return f.stream.Draw()
}

// cfg returns the stream's validated configuration.
func (f *faultState) config() FaultConfig { return f.stream.cfg }

// EnableFaults arms the fault model for every subsequent transfer on the
// device. Enabling resets the fault stream and counters, so two runs armed
// with the same config see the same faults.
func (d *Device) EnableFaults(cfg FaultConfig) error {
	stream, err := NewFaultStream(cfg)
	if err != nil {
		return err
	}
	d.faults = &faultState{stream: stream}
	return nil
}

// DisableFaults disarms the fault model; transfers succeed unconditionally
// again. Accumulated fault counters in Stats are kept.
func (d *Device) DisableFaults() {
	if d.faults != nil {
		d.faults.stream.cfg.Rate = 0
	}
}

// TransferError reports a transfer abandoned by the fault model: either a
// permanent fault, or a transient-fault run that exhausted the retry
// budget. The simulated time of every failed attempt and backoff has
// already been charged to the transfer engine when the error is returned.
type TransferError struct {
	// Op is "copy-in" or "copy-out".
	Op string
	// Bytes is the size of the abandoned transfer.
	Bytes int64
	// Attempts is the number of attempts made (1 + retries).
	Attempts int
	// Permanent distinguishes a permanent fault from retry exhaustion.
	Permanent bool
}

// Error implements error.
func (e *TransferError) Error() string {
	cause := "transient faults exhausted retries"
	if e.Permanent {
		cause = "permanent fault"
	}
	return fmt.Sprintf("device: %s of %d B failed after %d attempt(s): %s", e.Op, e.Bytes, e.Attempts, cause)
}
