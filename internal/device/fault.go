package device

import (
	"fmt"
	"math"

	"phideep/internal/rng"
)

// FaultConfig parameterizes the injectable PCIe fault model. Faults are
// drawn per transfer *attempt* from a dedicated seeded generator, so a
// given (config, transfer sequence) pair always produces the same fault
// pattern — fault-injected runs are as reproducible as clean ones.
type FaultConfig struct {
	// Rate is the per-attempt failure probability in [0, 1).
	Rate float64
	// PermanentFrac is the fraction of faults that are permanent (the
	// transfer fails immediately with no retry, modeling a wedged link or
	// a poisoned DMA descriptor). The remainder are transient and retried.
	PermanentFrac float64
	// Seed seeds the fault stream.
	Seed uint64
	// MaxRetries bounds the retries after the first attempt of a transfer
	// (so a transfer is attempted at most MaxRetries+1 times). Zero
	// defaults to 4.
	MaxRetries int
	// BackoffBase is the simulated backoff before the first retry; each
	// further retry doubles it up to BackoffCap (capped exponential
	// backoff). Zeros default to 1 ms and 100 ms.
	BackoffBase float64
	// BackoffCap caps the per-retry backoff.
	BackoffCap float64
}

// withDefaults validates cfg and fills the documented defaults.
func (c FaultConfig) withDefaults() (FaultConfig, error) {
	if c.Rate < 0 || c.Rate >= 1 {
		return c, fmt.Errorf("device: fault rate %g outside [0, 1)", c.Rate)
	}
	if c.PermanentFrac < 0 || c.PermanentFrac > 1 {
		return c, fmt.Errorf("device: permanent fraction %g outside [0, 1]", c.PermanentFrac)
	}
	if c.MaxRetries < 0 || c.BackoffBase < 0 || c.BackoffCap < 0 {
		return c, fmt.Errorf("device: negative retry/backoff parameter")
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 1e-3
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 100e-3
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = c.BackoffBase
	}
	return c, nil
}

// backoff returns the capped exponential delay before retry number
// retry (0-based).
func (c FaultConfig) backoff(retry int) float64 {
	d := c.BackoffBase * math.Pow(2, float64(retry))
	if d > c.BackoffCap || math.IsInf(d, 1) {
		d = c.BackoffCap
	}
	return d
}

// faultState is the device-side fault injector: configuration, the
// deterministic fault stream, and the accumulated counters.
type faultState struct {
	cfg FaultConfig
	rng *rng.RNG

	transient int
	permanent int
	retries   int
	failed    int
}

// draw decides the fate of one transfer attempt.
func (f *faultState) draw() (fault, permanent bool) {
	if f == nil || f.cfg.Rate == 0 {
		return false, false
	}
	if f.rng.Float64() >= f.cfg.Rate {
		return false, false
	}
	return true, f.rng.Float64() < f.cfg.PermanentFrac
}

// EnableFaults arms the fault model for every subsequent transfer on the
// device. Enabling resets the fault stream and counters, so two runs armed
// with the same config see the same faults.
func (d *Device) EnableFaults(cfg FaultConfig) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	d.faults = &faultState{cfg: cfg, rng: rng.New(cfg.Seed)}
	return nil
}

// DisableFaults disarms the fault model; transfers succeed unconditionally
// again. Accumulated fault counters in Stats are kept.
func (d *Device) DisableFaults() {
	if d.faults != nil {
		d.faults.cfg.Rate = 0
	}
}

// TransferError reports a transfer abandoned by the fault model: either a
// permanent fault, or a transient-fault run that exhausted the retry
// budget. The simulated time of every failed attempt and backoff has
// already been charged to the transfer engine when the error is returned.
type TransferError struct {
	// Op is "copy-in" or "copy-out".
	Op string
	// Bytes is the size of the abandoned transfer.
	Bytes int64
	// Attempts is the number of attempts made (1 + retries).
	Attempts int
	// Permanent distinguishes a permanent fault from retry exhaustion.
	Permanent bool
}

// Error implements error.
func (e *TransferError) Error() string {
	cause := "transient faults exhausted retries"
	if e.Permanent {
		cause = "permanent fault"
	}
	return fmt.Sprintf("device: %s of %d B failed after %d attempt(s): %s", e.Op, e.Bytes, e.Attempts, cause)
}
