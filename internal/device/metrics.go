package device

import "phideep/internal/metrics"

// Wall-clock observability handles (DESIGN.md §"Observability"). The
// device already keeps *simulated* timelines for the paper's timing
// reproduction; these metrics add the *real* host clock next to them —
// device.sim.* accumulates modeled seconds as charged by the cost model,
// device.wall.* accumulates measured Go execution seconds of the same
// work — so one snapshot compares the two. Recording happens per kernel
// launch / transfer and only while metrics.Enabled() holds.
var (
	mLaunches   = metrics.Default().Counter("device.kernel.launches")
	mTransfers  = metrics.Default().Counter("device.transfers")
	mBytesMoved = metrics.Default().Counter("device.bytes_moved")

	mSimCompute  = metrics.Default().FloatCounter("device.sim.compute_seconds")
	mSimTransfer = metrics.Default().FloatCounter("device.sim.transfer_seconds")

	mWallCompute  = metrics.Default().FloatCounter("device.wall.compute_seconds")
	mWallTransfer = metrics.Default().FloatCounter("device.wall.transfer_seconds")

	// Fault-model counters: injected faults, retry attempts, transfers
	// abandoned after exhausting their budget, and the simulated backoff
	// stalled onto the transfer engine while waiting to retry.
	mFaults          = metrics.Default().Counter("device.transfer.faults")
	mRetries         = metrics.Default().Counter("device.transfer.retries")
	mFailedTransfers = metrics.Default().Counter("device.transfer.failed")
	mSimBackoff      = metrics.Default().FloatCounter("device.sim.backoff_seconds")
)
