package device

import (
	"errors"
	"strings"
	"testing"

	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func TestSliceViewReadyAtDelegatesToParent(t *testing.T) {
	// Regression: ReadyAt on a view returned the view's zero readyAt
	// instead of delegating to the parent like the internal ready() does.
	d := newNumericPhi()
	b := d.MustAlloc(10, 4)
	end := d.CopyIn(b, tensor.NewMatrix(10, 4), 0)
	v := b.Slice(2, 5)
	if v.ReadyAt() != end {
		t.Fatalf("view ReadyAt %g, parent ready at %g", v.ReadyAt(), end)
	}
	if v.ReadyAt() != b.ReadyAt() {
		t.Fatal("view and parent ReadyAt disagree")
	}
}

func TestCopyOutOfViewChargesViewBytes(t *testing.T) {
	// Regression: a view's bytes field was never set, so copying a view
	// out charged a zero-byte (zero-cost) transfer.
	d := newNumericPhi()
	b := d.MustAlloc(10, 4)
	d.CopyIn(b, tensor.NewMatrix(10, 4), 0)
	moved := d.Stats().BytesMoved
	v := b.Slice(2, 5)
	if v.Bytes() != 3*4*8 {
		t.Fatalf("view bytes %d, want %d", v.Bytes(), 3*4*8)
	}
	before := d.TransferBusyUntil()
	out := tensor.NewMatrix(3, 4)
	d.CopyOut(v, out)
	if d.TransferBusyUntil() <= before {
		t.Fatal("view copy-out charged no transfer time")
	}
	if got := d.Stats().BytesMoved - moved; got != 3*4*8 {
		t.Fatalf("view copy-out moved %d B, want %d", got, 3*4*8)
	}
}

func TestCopyOutShapeMismatchPanics(t *testing.T) {
	// Regression: CopyOut (unlike CopyIn) skipped the host shape check,
	// which a view copy-out silently exploited.
	d := newNumericPhi()
	b := d.MustAlloc(10, 4)
	v := b.Slice(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.CopyOut(v, tensor.NewMatrix(10, 4))
}

func TestFaultConfigValidationAndDefaults(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	for _, bad := range []FaultConfig{
		{Rate: -0.1}, {Rate: 1}, {Rate: 0.5, PermanentFrac: 2},
		{Rate: 0.5, MaxRetries: -1}, {Rate: 0.5, BackoffBase: -1},
	} {
		if err := d.EnableFaults(bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	cfg, err := FaultConfig{Rate: 0.5}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRetries != 4 || cfg.BackoffBase != 1e-3 || cfg.BackoffCap != 100e-3 {
		t.Fatalf("defaults %+v", cfg)
	}
	// Capped exponential: 1, 2, 4 ms ... never past the cap.
	if cfg.backoff(0) != 1e-3 || cfg.backoff(1) != 2e-3 {
		t.Fatal("backoff not exponential")
	}
	if cfg.backoff(50) != 100e-3 || cfg.backoff(10000) != 100e-3 {
		t.Fatal("backoff not capped")
	}
}

func TestTransientFaultsRetryAndChargeSimTime(t *testing.T) {
	clean := New(sim.XeonPhi5110P(), true, nil)
	faulty := New(sim.XeonPhi5110P(), true, nil)
	if err := faulty.EnableFaults(FaultConfig{Rate: 0.5, Seed: 7, MaxRetries: 100}); err != nil {
		t.Fatal(err)
	}
	host := tensor.NewMatrix(64, 64)
	for i := range host.Data {
		host.Data[i] = float64(i)
	}
	var cleanEnd, faultyEnd float64
	for i := 0; i < 20; i++ {
		cb, fb := clean.MustAlloc(64, 64), faulty.MustAlloc(64, 64)
		cleanEnd = clean.CopyIn(cb, host, 0)
		faultyEnd = faulty.CopyIn(fb, host, 0)
		if !tensor.Equal(fb.Mat, host, 0) {
			t.Fatal("faulty transfer corrupted data")
		}
		out := tensor.NewMatrix(64, 64)
		faulty.CopyOut(fb, out)
		if !tensor.Equal(out, host, 0) {
			t.Fatal("faulty copy-out corrupted data")
		}
	}
	st := faulty.Stats()
	if st.FaultsTransient == 0 || st.Retries == 0 {
		t.Fatalf("no faults injected at rate 0.5: %+v", st)
	}
	if st.FaultsPermanent != 0 || st.FailedTransfers != 0 {
		t.Fatalf("unexpected permanent/failed: %+v", st)
	}
	if st.BackoffSeconds <= 0 {
		t.Fatal("no backoff charged")
	}
	if faultyEnd <= cleanEnd {
		t.Fatalf("faulty run not slower: %g vs %g", faultyEnd, cleanEnd)
	}
	// Deterministic: the same seed reproduces the same fault pattern.
	replay := New(sim.XeonPhi5110P(), true, nil)
	if err := replay.EnableFaults(FaultConfig{Rate: 0.5, Seed: 7, MaxRetries: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rb := replay.MustAlloc(64, 64)
		replay.CopyIn(rb, host, 0)
		out := tensor.NewMatrix(64, 64)
		replay.CopyOut(rb, out)
	}
	rst := replay.Stats()
	if rst.FaultsTransient != st.FaultsTransient || rst.Retries != st.Retries ||
		rst.BackoffSeconds != st.BackoffSeconds || replay.Now() != faulty.Now() {
		t.Fatalf("fault pattern not deterministic: %+v vs %+v", rst, st)
	}
}

func TestRetryExhaustionReturnsTransferError(t *testing.T) {
	d := New(sim.XeonPhi5110P(), true, nil)
	// Rate just under 1: every attempt faults, transiently.
	if err := d.EnableFaults(FaultConfig{Rate: 0.999999, MaxRetries: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	b := d.MustAlloc(4, 4)
	host := tensor.NewMatrix(4, 4)
	host.Data[0] = 42
	_, err := d.TryCopyIn(b, host, 0)
	var te *TransferError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransferError", err)
	}
	if te.Permanent || te.Attempts != 4 { // 1 first try + 3 retries
		t.Fatalf("error %+v", te)
	}
	if b.Mat.Data[0] != 0 {
		t.Fatal("failed copy-in overwrote the buffer")
	}
	if b.ReadyAt() != 0 {
		t.Fatal("failed copy-in moved the ready time")
	}
	st := d.Stats()
	if st.FailedTransfers != 1 || st.Retries != 3 {
		t.Fatalf("stats %+v", st)
	}
	// The wrapper panics where Try returns an error.
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "failed after") {
			t.Fatalf("CopyIn recover = %v", r)
		}
	}()
	d.CopyIn(b, host, 0)
}

func TestPermanentFault(t *testing.T) {
	d := New(sim.XeonPhi5110P(), true, nil)
	if err := d.EnableFaults(FaultConfig{Rate: 0.999999, PermanentFrac: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	b := d.MustAlloc(4, 4)
	host := tensor.NewMatrix(4, 4)
	_, err := d.TryCopyOut(b, host)
	var te *TransferError
	if !errors.As(err, &te) || !te.Permanent || te.Attempts != 1 {
		t.Fatalf("err = %v", err)
	}
	st := d.Stats()
	if st.FaultsPermanent != 1 || st.Retries != 0 || st.FailedTransfers != 1 {
		t.Fatalf("stats %+v", st)
	}
	// DisableFaults restores unconditional success.
	d.DisableFaults()
	if _, err := d.TryCopyOut(b, host); err != nil {
		t.Fatalf("transfer failed after DisableFaults: %v", err)
	}
}
