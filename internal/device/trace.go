package device

import (
	"encoding/json"
	"fmt"
	"io"

	"phideep/internal/sim"
)

// TraceEvent is one recorded device activity: a kernel on the compute
// engine or a transfer on the PCIe engine, in simulated time.
type TraceEvent struct {
	// Name describes the activity ("gemm 1000x1024x4096 [parallel+blocked]",
	// "copy-in 32768000 B").
	Name string
	// Engine is "compute" or "transfer".
	Engine string
	// Start and End are simulated seconds.
	Start, End float64
}

// EnableTrace starts recording up to limit events (0 = unlimited). Tracing
// costs memory proportional to the event count; enable it for runs you
// intend to inspect.
func (d *Device) EnableTrace(limit int) {
	d.trace = &traceBuffer{limit: limit}
}

// Trace returns the recorded events in issue order (nil when tracing was
// never enabled). Dropped counts how many events exceeded the limit.
func (d *Device) Trace() (events []TraceEvent, dropped int) {
	if d.trace == nil {
		return nil, 0
	}
	return d.trace.events, d.trace.dropped
}

// WriteChromeTrace writes the recorded events in the Chrome trace-viewer
// JSON array format (load via chrome://tracing or https://ui.perfetto.dev);
// simulated seconds are mapped to microseconds. The two engines appear as
// two "threads".
func (d *Device) WriteChromeTrace(w io.Writer) error {
	events, _ := d.Trace()
	type chromeEvent struct {
		Name  string  `json:"name"`
		Cat   string  `json:"cat"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		PID   int     `json:"pid"`
		TID   int     `json:"tid"`
	}
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		tid := 1
		if e.Engine == "transfer" {
			tid = 2
		}
		out = append(out, chromeEvent{
			Name: e.Name, Cat: e.Engine, Phase: "X",
			TS: e.Start * 1e6, Dur: (e.End - e.Start) * 1e6,
			PID: 1, TID: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

type traceBuffer struct {
	events  []TraceEvent
	limit   int
	dropped int
}

func (t *traceBuffer) add(e TraceEvent) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// opName renders a cost-model op for the trace.
func opName(op sim.Op) string {
	switch op.Kind {
	case sim.OpGemm:
		return fmt.Sprintf("gemm %dx%dx%d [%s]", op.M, op.K, op.N, op.Level)
	case sim.OpIm2col, sim.OpCol2im:
		// blas encodes the lowering geometry as M=batch, K=ColK, N=oH·oW.
		return fmt.Sprintf("%s %d imgs %dx%d [%s]", op.Kind, op.M, op.N, op.K, op.Level)
	case sim.OpPool:
		return fmt.Sprintf("pool %d imgs %d elems [%s]", op.M, op.Elems, op.Level)
	default:
		return fmt.Sprintf("%s %d elems [%s]", op.Kind, op.Elems, op.Level)
	}
}
