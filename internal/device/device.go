// Package device implements phideep's offload runtime: a simulated
// coprocessor (or host CPU) that owns device memory, executes kernels on a
// compute engine, and moves data over a PCIe transfer engine.
//
// A Device runs in one of two modes. In Numeric mode every kernel really
// executes (via internal/kernels) *and* charges simulated time, so results
// are bit-real and timing is modeled — this is what tests, examples and
// small benchmarks use. In model-only mode kernels charge time without
// touching the floats, which makes the paper's large sweeps (up to
// 4096×16384 networks over a million examples) feasible on any host. Both
// modes share exactly one costing path, so reported times are identical.
//
// The compute engine and the transfer engine are independent timelines:
// a transfer for the next data chunk can proceed while the cores train on
// the current one, which is precisely the loading-thread double-buffering
// scheme of the paper's Fig. 5.
//
// When metrics collection is enabled (internal/metrics), the device
// additionally records the *real* host seconds spent in numeric kernels
// and host-side copies (device.wall.*) next to the simulated charges
// (device.sim.*), so a run report shows both clocks side by side. The
// relationship between them is documented in DESIGN.md's "Observability"
// section.
package device

import (
	"fmt"
	"time"

	"phideep/internal/metrics"
	"phideep/internal/parallel"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// Device is one simulated execution platform.
type Device struct {
	Arch *sim.Arch

	// Numeric selects whether kernels actually compute (true) or only
	// charge simulated time (false).
	Numeric bool

	// Pool executes parallel kernels when Numeric. May be nil, in which
	// case parallel levels run on the calling goroutine (still correct,
	// just not concurrent).
	Pool *parallel.Pool

	// Observe, when non-nil, is called once per sequential kernel launch
	// with the op exactly as submitted to Exec. Used by internal/tune's
	// calibrated predictor to capture workload traces.
	Observe func(op sim.Op)
	// ObserveGroup, when non-nil, is called once per concurrent group
	// (ExecConcurrent) with the branch ops at their pre-split core request
	// and Fused set on all but the first branch — the exact inputs to the
	// core-sharing split, so an observer can replay the split and the
	// group-makespan rule deterministically. When nil, Observe (if set)
	// receives the branches individually instead.
	ObserveGroup func(ops []sim.Op)
	// ObserveTransfer, when non-nil, is called once per logical PCIe
	// transfer with its byte count (retry attempts under the fault model
	// are not re-reported).
	ObserveTransfer func(bytes int64)

	compute  sim.Timeline
	transfer sim.Timeline

	allocated int64
	peakAlloc int64

	// Stats.
	ops       int
	transfers int
	flops     float64
	moved     int64

	// trace records per-activity events when enabled via EnableTrace.
	trace *traceBuffer

	// faults is the injectable PCIe fault model (nil = transfers never
	// fail); see EnableFaults.
	faults *faultState
}

// New creates a device for the given architecture. numeric selects numeric
// or model-only execution; pool may be nil.
func New(arch *sim.Arch, numeric bool, pool *parallel.Pool) *Device {
	return &Device{
		Arch:     arch,
		Numeric:  numeric,
		Pool:     pool,
		compute:  sim.Timeline{Name: "compute"},
		transfer: sim.Timeline{Name: "transfer"},
	}
}

// Buffer is a device-resident matrix. In model-only mode Mat is nil and
// only the shape and timing metadata are tracked.
type Buffer struct {
	Rows, Cols int
	Mat        *tensor.Matrix // nil unless the device is numeric

	dev     *Device
	bytes   int64
	readyAt float64 // simulated time at which the contents are valid
	freed   bool
	parent  *Buffer // non-nil for row-slice views
}

// Slice returns rows [i, j) of b as a view sharing b's storage and ready
// time. Views are not separately allocated or freed; they are meant as
// read-only kernel inputs (the minibatch windows into a data chunk of
// Algorithm 1). Writing through a view does not update the parent's ready
// time. A view carries the byte span of its own rows, so transferring one
// out charges the view's size, not the parent's (and never zero).
func (b *Buffer) Slice(i, j int) *Buffer {
	if b.parent != nil {
		panic("device: Slice of a slice")
	}
	if i < 0 || j < i || j > b.Rows {
		panic(fmt.Sprintf("device: Slice [%d, %d) out of %d rows", i, j, b.Rows))
	}
	v := &Buffer{Rows: j - i, Cols: b.Cols, dev: b.dev, parent: b,
		bytes: int64(j-i) * int64(b.Cols) * 8}
	if b.Mat != nil {
		v.Mat = b.Mat.RowsView(i, j)
	}
	return v
}

// isFreed reports whether the buffer (or, for views, its parent) has been
// freed.
func (b *Buffer) isFreed() bool {
	if b.parent != nil {
		return b.parent.freed
	}
	return b.freed
}

// ready returns the buffer's effective ready time (the parent's for views).
func (b *Buffer) ready() float64 {
	if b.parent != nil {
		return b.parent.readyAt
	}
	return b.readyAt
}

// Bytes returns the byte span of the buffer's rows: the device memory
// footprint for allocated buffers, the view's share of the parent for
// slice views.
func (b *Buffer) Bytes() int64 { return b.bytes }

// ReadyAt returns the simulated time at which the buffer's current contents
// became (or become) valid. For slice views this is the parent's ready
// time — a view is valid exactly when the storage it aliases is.
func (b *Buffer) ReadyAt() float64 { return b.ready() }

// Alloc reserves an r×c float64 buffer in device global memory. It fails
// when the device's memory capacity (8 GB on the 5110P) would be exceeded —
// the constraint that forces the paper's chunked streaming design.
func (d *Device) Alloc(r, c int) (*Buffer, error) {
	bytes := int64(r) * int64(c) * 8
	if d.allocated+bytes > d.Arch.GlobalMemBytes {
		return nil, fmt.Errorf("device: out of global memory on %s: %d B allocated, %d B requested, %d B capacity",
			d.Arch.Name, d.allocated, bytes, d.Arch.GlobalMemBytes)
	}
	d.allocated += bytes
	if d.allocated > d.peakAlloc {
		d.peakAlloc = d.allocated
	}
	b := &Buffer{Rows: r, Cols: c, dev: d, bytes: bytes}
	if d.Numeric {
		b.Mat = tensor.NewMatrix(r, c)
	}
	return b, nil
}

// MustAlloc is Alloc that panics on out-of-memory; for tests and examples
// with known-small footprints.
func (d *Device) MustAlloc(r, c int) *Buffer {
	b, err := d.Alloc(r, c)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer's device memory. Double frees panic.
func (d *Device) Free(b *Buffer) {
	if b.parent != nil {
		panic("device: Free of a slice view")
	}
	if b.freed {
		panic("device: double free")
	}
	b.freed = true
	d.allocated -= b.bytes
	b.Mat = nil
}

// scheduleTransfer books one logical transfer of the given byte count on
// the transfer engine, running it through the fault model when armed: a
// transient fault re-attempts the transfer after a capped exponential
// backoff stalled onto the engine (so flaky-link time shows up in the
// simulated makespan); a permanent fault or retry exhaustion abandons the
// transfer and returns a *TransferError. Every attempt — failed ones
// included — occupies the engine for the full transfer duration.
func (d *Device) scheduleTransfer(op string, bytes int64, earliest float64) (end float64, err error) {
	if d.ObserveTransfer != nil {
		d.ObserveTransfer(bytes)
	}
	dur := d.Arch.TransferTime(bytes)
	f := d.faults
	for attempt := 1; ; attempt++ {
		start, attemptEnd := d.transfer.Schedule(earliest, dur)
		end = attemptEnd
		if metrics.Enabled() {
			mSimTransfer.Add(dur)
		}
		fault, permanent := f.draw()
		if !fault {
			d.trace.add(TraceEvent{Name: fmt.Sprintf("%s %d B", op, bytes), Engine: "transfer", Start: start, End: end})
			return end, nil
		}
		d.trace.add(TraceEvent{Name: fmt.Sprintf("%s %d B (fault)", op, bytes), Engine: "transfer", Start: start, End: end})
		if metrics.Enabled() {
			mFaults.Inc()
		}
		if permanent {
			f.permanent++
			f.failed++
			if metrics.Enabled() {
				mFailedTransfers.Inc()
			}
			return end, &TransferError{Op: op, Bytes: bytes, Attempts: attempt, Permanent: true}
		}
		f.transient++
		if attempt > f.config().MaxRetries {
			f.failed++
			if metrics.Enabled() {
				mFailedTransfers.Inc()
			}
			return end, &TransferError{Op: op, Bytes: bytes, Attempts: attempt}
		}
		backoff := f.config().backoff(attempt - 1)
		d.transfer.Stall(backoff)
		f.retries++
		if metrics.Enabled() {
			mRetries.Inc()
			mSimBackoff.Add(backoff)
		}
		earliest = 0 // the stall already pushed the engine's free time out
	}
}

// CopyIn schedules a host→device transfer of host into b on the transfer
// engine, no earlier than simulated time earliest (0 for "as soon as the
// link is free" — the prefetching loading thread of Fig. 5). host may be
// nil in model-only mode. It returns the transfer's completion time, which
// also becomes the buffer's ready time. When the fault model abandons the
// transfer CopyIn panics; callers that degrade gracefully use TryCopyIn.
func (d *Device) CopyIn(b *Buffer, host *tensor.Matrix, earliest float64) float64 {
	end, err := d.TryCopyIn(b, host, earliest)
	if err != nil {
		panic(err.Error())
	}
	return end
}

// TryCopyIn is CopyIn that reports an abandoned transfer as a
// *TransferError instead of panicking. On failure the buffer keeps its
// previous contents and ready time — the simulated time of the failed
// attempts and backoffs has still been charged to the transfer engine.
func (d *Device) TryCopyIn(b *Buffer, host *tensor.Matrix, earliest float64) (float64, error) {
	if b.isFreed() {
		panic("device: CopyIn into freed buffer")
	}
	if b.parent != nil {
		panic("device: CopyIn into a slice view; transfer into the parent buffer")
	}
	if d.Numeric {
		if host == nil {
			panic("device: CopyIn with nil host matrix on a numeric device")
		}
		if host.Rows != b.Rows || host.Cols != b.Cols {
			panic(fmt.Sprintf("device: CopyIn shape mismatch: host %dx%d, buffer %dx%d", host.Rows, host.Cols, b.Rows, b.Cols))
		}
	}
	d.transfers++
	end, err := d.scheduleTransfer("copy-in", b.bytes, earliest)
	if err != nil {
		return end, err
	}
	if d.Numeric {
		if metrics.Enabled() {
			t0 := time.Now()
			b.Mat.CopyFrom(host)
			mWallTransfer.Add(time.Since(t0).Seconds())
		} else {
			b.Mat.CopyFrom(host)
		}
	}
	b.readyAt = end
	d.moved += b.bytes
	if metrics.Enabled() {
		mTransfers.Inc()
		mBytesMoved.Add(b.bytes)
	}
	return end, nil
}

// CopyOut schedules a device→host transfer of b into host (shapes must
// match; host may be nil in model-only mode) and returns its completion
// time. The transfer starts only after both the buffer's contents are ready
// and the compute engine has issued everything that produces them. Slice
// views copy out their own rows, charging the view's byte span. When the
// fault model abandons the transfer CopyOut panics; callers that degrade
// gracefully use TryCopyOut.
func (d *Device) CopyOut(b *Buffer, host *tensor.Matrix) float64 {
	end, err := d.TryCopyOut(b, host)
	if err != nil {
		panic(err.Error())
	}
	return end
}

// TryCopyOut is CopyOut that reports an abandoned transfer as a
// *TransferError instead of panicking. On failure host is left untouched.
func (d *Device) TryCopyOut(b *Buffer, host *tensor.Matrix) (float64, error) {
	if b.isFreed() {
		panic("device: CopyOut of freed buffer")
	}
	if d.Numeric {
		if host == nil {
			panic("device: CopyOut with nil host matrix on a numeric device")
		}
		if host.Rows != b.Rows || host.Cols != b.Cols {
			panic(fmt.Sprintf("device: CopyOut shape mismatch: host %dx%d, buffer %dx%d", host.Rows, host.Cols, b.Rows, b.Cols))
		}
	}
	ready := b.ready()
	if cb := d.compute.BusyUntil(); cb > ready {
		ready = cb
	}
	d.transfers++
	end, err := d.scheduleTransfer("copy-out", b.bytes, ready)
	if err != nil {
		return end, err
	}
	if d.Numeric {
		if metrics.Enabled() {
			t0 := time.Now()
			host.CopyFrom(b.Mat)
			mWallTransfer.Add(time.Since(t0).Seconds())
		} else {
			host.CopyFrom(b.Mat)
		}
	}
	d.moved += b.bytes
	if metrics.Enabled() {
		mTransfers.Inc()
		mBytesMoved.Add(b.bytes)
	}
	return end, nil
}

// Exec schedules the kernel described by op on the compute engine, waiting
// for every dependency buffer to be ready, and runs fn when the device is
// numeric. Buffers written by the kernel get the kernel's end time as their
// new ready time (pass them in deps too if the kernel also reads them).
func (d *Device) Exec(op sim.Op, deps []*Buffer, writes []*Buffer, fn func()) {
	ready := 0.0
	for _, b := range deps {
		if b == nil {
			continue
		}
		if b.isFreed() {
			panic("device: Exec depends on freed buffer")
		}
		if r := b.ready(); r > ready {
			ready = r
		}
	}
	if d.Observe != nil {
		d.Observe(op)
	}
	dur := d.Arch.OpTime(op)
	start, end := d.compute.Schedule(ready, dur)
	for _, b := range writes {
		if b == nil {
			continue
		}
		b.readyAt = end
	}
	d.ops++
	d.flops += op.Flops()
	if metrics.Enabled() {
		mLaunches.Inc()
		mSimCompute.Add(dur)
	}
	d.trace.add(TraceEvent{Name: opName(op), Engine: "compute", Start: start, End: end})
	if d.Numeric && fn != nil {
		if metrics.Enabled() {
			t0 := time.Now()
			fn()
			mWallCompute.Add(time.Since(t0).Seconds())
		} else {
			fn()
		}
	}
}

// Branch is one arm of a concurrent kernel group (a node set of the
// paper's Fig. 6 dependency graph whose members have no edges between
// them).
type Branch struct {
	Op     sim.Op
	Deps   []*Buffer
	Writes []*Buffer
	Fn     func()
}

// ExecConcurrent schedules the branches to run at the same time on the
// compute engine, splitting the physical cores evenly between them, and
// charges the fork/join synchronization once for the whole group. This
// models the paper's Fig. 6 optimization: independent matrix operations of
// the RBM gradient (e.g. Vb, Vc and Vw after H2) execute concurrently, so
// their launch overheads overlap. On a numeric device the branch functions
// run sequentially in issue order — they are independent by contract, so
// results are identical; only the simulated timing reflects concurrency.
func (d *Device) ExecConcurrent(branches []Branch) {
	if len(branches) == 0 {
		return
	}
	if len(branches) == 1 {
		b := branches[0]
		d.Exec(b.Op, b.Deps, b.Writes, b.Fn)
		return
	}
	k := len(branches)
	if d.ObserveGroup != nil || d.Observe != nil {
		obs := make([]sim.Op, k)
		for i := range branches {
			obs[i] = branches[i].Op
			obs[i].Fused = i > 0
		}
		if d.ObserveGroup != nil {
			d.ObserveGroup(obs)
		} else {
			for _, op := range obs {
				d.Observe(op)
			}
		}
	}
	ready := make([]float64, k)
	durs := make([]float64, k)
	// First pass: full-device durations, used to split the cores between
	// the branches in proportion to their work (a big GEMM paired with a
	// tiny reduction should keep nearly all the cores).
	full := make([]float64, k)
	totalFull := 0.0
	for i := range branches {
		op := branches[i].Op
		op.Fused = true // overhead handled below
		full[i] = d.Arch.OpTime(op)
		totalFull += full[i]
	}
	for i := range branches {
		b := &branches[i]
		for _, dep := range b.Deps {
			if dep == nil {
				continue
			}
			if dep.isFreed() {
				panic("device: ExecConcurrent depends on freed buffer")
			}
			if r := dep.ready(); r > ready[i] {
				ready[i] = r
			}
		}
		op := b.Op
		cores := op.Cores
		if cores <= 0 {
			if op.Level.IsParallel() {
				cores = d.Arch.Cores
			} else {
				cores = 1
			}
		}
		if op.Level.IsParallel() && totalFull > 0 && k > 1 {
			share := int(float64(cores) * full[i] / totalFull)
			if share < 1 {
				share = 1
			}
			if share > cores {
				share = cores
			}
			op.Cores = share
		}
		// One fork/join for the whole group.
		op.Fused = i > 0
		durs[i] = d.Arch.OpTime(op)
		d.ops++
		d.flops += op.Flops()
		if metrics.Enabled() {
			mLaunches.Inc()
			mSimCompute.Add(durs[i])
		}
	}
	groupStart := d.compute.BusyUntil()
	end := d.compute.ScheduleGroup(ready, durs)
	if d.trace != nil {
		// Each branch spans from its own start to the group's join: the
		// buffers it writes become ready only at the group end, and the
		// trace must not show a kernel finishing before its outputs exist.
		for i := range branches {
			start := groupStart
			if ready[i] > start {
				start = ready[i]
			}
			d.trace.add(TraceEvent{Name: opName(branches[i].Op) + " (concurrent)", Engine: "compute", Start: start, End: end})
		}
	}
	for i := range branches {
		for _, w := range branches[i].Writes {
			if w != nil {
				w.readyAt = end
			}
		}
	}
	if d.Numeric {
		for i := range branches {
			if branches[i].Fn == nil {
				continue
			}
			if metrics.Enabled() {
				t0 := time.Now()
				branches[i].Fn()
				mWallCompute.Add(time.Since(t0).Seconds())
			} else {
				branches[i].Fn()
			}
		}
	}
}

// StallCompute blocks the compute engine for dt seconds of deliberately
// injected idle time — the cluster layer's straggler slowdowns and crashed-
// node downtime, the compute-side analogue of the transfer engine's retry
// backoff. The stall is charged to the simulated clock (the next kernel
// starts no earlier than the end of the stall) and accounted separately in
// Stats.ComputeStallSeconds.
func (d *Device) StallCompute(dt float64) {
	d.compute.Stall(dt)
}

// Now returns the simulated time at which all issued work completes.
func (d *Device) Now() float64 {
	t := d.compute.BusyUntil()
	if tr := d.transfer.BusyUntil(); tr > t {
		t = tr
	}
	return t
}

// ComputeBusyUntil returns the completion time of the compute engine alone.
func (d *Device) ComputeBusyUntil() float64 { return d.compute.BusyUntil() }

// TransferBusyUntil returns the completion time of the transfer engine.
func (d *Device) TransferBusyUntil() float64 { return d.transfer.BusyUntil() }

// Stats summarizes device activity since creation or the last ResetTime.
type Stats struct {
	Ops           int     // kernel launches
	Transfers     int     // PCIe transfers issued (including abandoned ones)
	Flops         float64 // modeled flops executed
	BytesMoved    int64   // PCIe bytes moved by successful transfers
	ComputeBusy   float64 // seconds the compute engine was busy
	TransferBusy  float64 // seconds the transfer engine was busy
	Makespan      float64 // completion time of all work
	PeakAllocated int64   // high-water device memory

	// Fault-model accounting (all zero when EnableFaults was never called).
	FaultsTransient int     // transient transfer faults injected
	FaultsPermanent int     // permanent transfer faults injected
	Retries         int     // transfer re-attempts after transient faults
	FailedTransfers int     // transfers abandoned (permanent or retries out)
	BackoffSeconds  float64 // simulated retry backoff stalled onto the engine

	// Compute-engine stall accounting (non-zero only when a layer above
	// injects compute stalls via StallCompute — straggling cluster nodes,
	// crash downtime).
	ComputeStalls       int     // injected compute stalls
	ComputeStallSeconds float64 // simulated seconds the compute engine was stalled
}

// Stats returns a snapshot of the device's activity counters.
func (d *Device) Stats() Stats {
	s := Stats{
		Ops:            d.ops,
		Transfers:      d.transfers,
		Flops:          d.flops,
		BytesMoved:     d.moved,
		ComputeBusy:    d.compute.BusyTotal(),
		TransferBusy:   d.transfer.BusyTotal(),
		Makespan:       d.Now(),
		PeakAllocated:  d.peakAlloc,
		BackoffSeconds: d.transfer.StallTotal(),

		ComputeStalls:       d.compute.Stalls(),
		ComputeStallSeconds: d.compute.StallTotal(),
	}
	if f := d.faults; f != nil {
		s.FaultsTransient = f.transient
		s.FaultsPermanent = f.permanent
		s.Retries = f.retries
		s.FailedTransfers = f.failed
	}
	return s
}

// ResetTime rewinds both engines and the activity counters to zero while
// keeping allocations; buffers' ready times are stale afterwards, so only
// call this between independent runs that rewrite their inputs. The fault
// stream is *not* rewound — successive runs see fresh faults.
func (d *Device) ResetTime() {
	d.compute.Reset()
	d.transfer.Reset()
	d.ops, d.transfers = 0, 0
	d.flops, d.moved = 0, 0
	if f := d.faults; f != nil {
		f.transient, f.permanent, f.retries, f.failed = 0, 0, 0, 0
	}
}

// Allocated returns the current device memory in use.
func (d *Device) Allocated() int64 { return d.allocated }
