package device

import (
	"encoding/json"
	"strings"
	"testing"

	"phideep/internal/kernels"
	"phideep/internal/sim"
)

func TestTraceRecordsActivities(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	d.EnableTrace(0)
	b := d.MustAlloc(10, 10)
	d.CopyIn(b, nil, 0)
	d.Exec(sim.Op{Kind: sim.OpGemm, M: 10, K: 10, N: 10, Level: kernels.ParallelBlocked, Vector: true},
		[]*Buffer{b}, []*Buffer{b}, nil)
	d.CopyOut(b, nil)

	events, dropped := d.Trace()
	if dropped != 0 {
		t.Fatalf("dropped %d", dropped)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Engine != "transfer" || !strings.Contains(events[0].Name, "copy-in") {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[1].Engine != "compute" || !strings.Contains(events[1].Name, "gemm 10x10x10") {
		t.Fatalf("event 1: %+v", events[1])
	}
	if events[2].Engine != "transfer" || !strings.Contains(events[2].Name, "copy-out") {
		t.Fatalf("event 2: %+v", events[2])
	}
	// The kernel must start after its input transfer completes.
	if events[1].Start < events[0].End {
		t.Fatal("kernel started before its input was ready")
	}
	for _, e := range events {
		if e.End < e.Start {
			t.Fatalf("negative duration: %+v", e)
		}
	}
}

func TestTraceLimitAndDisabled(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	// Disabled: no events, no panic.
	d.Exec(sim.Op{Kind: sim.OpElem, Elems: 10, Level: kernels.Naive}, nil, nil, nil)
	if ev, _ := d.Trace(); ev != nil {
		t.Fatal("events recorded while disabled")
	}
	d.EnableTrace(2)
	for i := 0; i < 5; i++ {
		d.Exec(sim.Op{Kind: sim.OpElem, Elems: 10, Level: kernels.Naive}, nil, nil, nil)
	}
	ev, dropped := d.Trace()
	if len(ev) != 2 || dropped != 3 {
		t.Fatalf("limit handling: %d events, %d dropped", len(ev), dropped)
	}
}

func TestTraceConcurrentGroup(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	d.EnableTrace(0)
	a := d.MustAlloc(100, 100)
	c := d.MustAlloc(100, 100)
	op := sim.Op{Kind: sim.OpGemm, M: 100, K: 100, N: 100, Level: kernels.ParallelBlocked, Vector: true}
	d.ExecConcurrent([]Branch{
		{Op: op, Writes: []*Buffer{a}},
		{Op: op, Writes: []*Buffer{c}},
	})
	ev, _ := d.Trace()
	if len(ev) != 2 {
		t.Fatalf("got %d events", len(ev))
	}
	for _, e := range ev {
		if !strings.Contains(e.Name, "concurrent") {
			t.Fatalf("missing concurrent tag: %+v", e)
		}
	}
	// Concurrent branches share a start window.
	if ev[0].Start != ev[1].Start {
		t.Fatalf("branches not concurrent: %g vs %g", ev[0].Start, ev[1].Start)
	}
}

func TestTraceConcurrentEventsEndAtGroupJoin(t *testing.T) {
	// Regression: branch events used to end at start+dur while the buffers
	// they write become ready only at the group end, so Chrome traces
	// showed kernels finishing before their outputs existed. Two branches
	// of very different sizes expose the gap.
	d := New(sim.XeonPhi5110P(), false, nil)
	d.EnableTrace(0)
	big := d.MustAlloc(1000, 1000)
	small := d.MustAlloc(10, 10)
	d.ExecConcurrent([]Branch{
		{Op: sim.Op{Kind: sim.OpGemm, M: 1000, K: 1000, N: 1000, Level: kernels.ParallelBlocked, Vector: true}, Writes: []*Buffer{big}},
		{Op: sim.Op{Kind: sim.OpElem, Elems: 100, Level: kernels.Parallel}, Writes: []*Buffer{small}},
	})
	ev, _ := d.Trace()
	if len(ev) != 2 {
		t.Fatalf("got %d events", len(ev))
	}
	for i, e := range ev {
		if e.End != big.ReadyAt() || e.End != small.ReadyAt() {
			t.Fatalf("event %d ends at %g before its output is ready (%g / %g)",
				i, e.End, big.ReadyAt(), small.ReadyAt())
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	d.EnableTrace(0)
	b := d.MustAlloc(5, 5)
	d.CopyIn(b, nil, 0)
	d.Exec(sim.Op{Kind: sim.OpElem, Elems: 25, Level: kernels.Parallel}, []*Buffer{b}, nil, nil)

	var sb strings.Builder
	if err := d.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != 2 {
		t.Fatalf("got %d chrome events", len(parsed))
	}
	if parsed[0]["ph"] != "X" || parsed[0]["tid"].(float64) != 2 {
		t.Fatalf("transfer event malformed: %+v", parsed[0])
	}
	if parsed[1]["tid"].(float64) != 1 {
		t.Fatalf("compute event malformed: %+v", parsed[1])
	}
}
