package device

import (
	"math"
	"strings"
	"testing"

	"phideep/internal/kernels"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func newNumericPhi() *Device { return New(sim.XeonPhi5110P(), true, nil) }

func TestAllocAccountingAndOOM(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(100, 100)
	if d.Allocated() != 100*100*8 {
		t.Fatalf("allocated %d", d.Allocated())
	}
	if b.Bytes() != 80000 {
		t.Fatal("buffer bytes")
	}
	d.Free(b)
	if d.Allocated() != 0 {
		t.Fatal("free did not release")
	}
	// 8 GB capacity: a > 1G-element request must fail.
	if _, err := d.Alloc(40000, 40000); err == nil {
		t.Fatal("expected out-of-memory error")
	} else if !strings.Contains(err.Error(), "out of global memory") {
		t.Fatalf("unexpected error %v", err)
	}
	if d.Stats().PeakAllocated != 80000 {
		t.Fatalf("peak %d", d.Stats().PeakAllocated)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(1, 1)
	d.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Free(b)
}

func TestCopyInOutNumeric(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(2, 3)
	host := tensor.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	end := d.CopyIn(b, host, 0)
	if end <= 0 {
		t.Fatal("transfer takes no time")
	}
	if b.ReadyAt() != end {
		t.Fatal("readyAt not set")
	}
	if !tensor.Equal(b.Mat, host, 0) {
		t.Fatal("contents not copied")
	}
	out := tensor.NewMatrix(2, 3)
	d.CopyOut(b, out)
	if !tensor.Equal(out, host, 0) {
		t.Fatal("CopyOut mismatch")
	}
	st := d.Stats()
	if st.Transfers != 2 || st.BytesMoved != 2*2*3*8 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCopyInShapeMismatchPanics(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.CopyIn(b, tensor.NewMatrix(3, 2), 0)
}

func TestExecWaitsForTransfer(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(100, 100)
	host := tensor.NewMatrix(100, 100)
	end := d.CopyIn(b, host, 0)
	ran := false
	d.Exec(sim.Op{Kind: sim.OpElem, Elems: 100, Level: kernels.Naive}, []*Buffer{b}, []*Buffer{b}, func() { ran = true })
	if !ran {
		t.Fatal("numeric fn not run")
	}
	if d.ComputeBusyUntil() <= end {
		t.Fatal("compute did not wait for the input transfer")
	}
	if b.ReadyAt() != d.ComputeBusyUntil() {
		t.Fatal("write did not refresh readyAt")
	}
}

func TestTransferOverlapsCompute(t *testing.T) {
	// Issue a long kernel, then a transfer with earliest=0: the transfer
	// engine must run during the kernel (Fig. 5), so the makespan is close
	// to the kernel time, not the sum.
	d := New(sim.XeonPhi5110P(), false, nil)
	a := d.MustAlloc(4096, 4096)
	b := d.MustAlloc(4096, 4096)
	d.Exec(sim.Op{Kind: sim.OpGemm, M: 4096, K: 4096, N: 4096, Level: kernels.ParallelBlocked, Vector: true}, []*Buffer{a}, []*Buffer{a}, nil)
	kernelEnd := d.ComputeBusyUntil()
	transferEnd := d.CopyIn(b, nil, 0)
	if transferEnd >= kernelEnd {
		t.Fatalf("transfer (%g) did not overlap kernel (%g)", transferEnd, kernelEnd)
	}
	if d.Now() != kernelEnd {
		t.Fatalf("makespan %g, want %g", d.Now(), kernelEnd)
	}
}

func TestSequentialTransferWhenRequested(t *testing.T) {
	// With earliest = compute frontier, the transfer serializes after it.
	d := New(sim.XeonPhi5110P(), false, nil)
	a := d.MustAlloc(1024, 1024)
	d.Exec(sim.Op{Kind: sim.OpGemm, M: 1024, K: 1024, N: 1024, Level: kernels.ParallelBlocked, Vector: true}, nil, []*Buffer{a}, nil)
	frontier := d.ComputeBusyUntil()
	b := d.MustAlloc(1024, 1024)
	end := d.CopyIn(b, nil, frontier)
	if end <= frontier {
		t.Fatal("synchronous transfer did not wait")
	}
}

func TestSliceViews(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(10, 4)
	host := tensor.NewMatrix(10, 4)
	for i := 0; i < 10; i++ {
		for j := 0; j < 4; j++ {
			host.Set(i, j, float64(10*i+j))
		}
	}
	d.CopyIn(b, host, 0)
	v := b.Slice(2, 5)
	if v.Rows != 3 || v.Cols != 4 {
		t.Fatal("slice geometry")
	}
	if v.Mat.At(0, 0) != 20 {
		t.Fatal("slice storage wrong")
	}
	if v.ready() != b.ReadyAt() {
		t.Fatal("slice ready time")
	}
	// Slice of slice, free of slice, CopyIn into slice: all must panic.
	for _, f := range []func(){
		func() { v.Slice(0, 1) },
		func() { d.Free(v) },
		func() { d.CopyIn(v, tensor.NewMatrix(3, 4), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
	// Slice out of range.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Slice(5, 11)
}

func TestUseAfterFreePanics(t *testing.T) {
	d := newNumericPhi()
	b := d.MustAlloc(2, 2)
	v := b.Slice(0, 1)
	d.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exec over freed parent")
		}
	}()
	d.Exec(sim.Op{Kind: sim.OpElem, Elems: 2, Level: kernels.Naive}, []*Buffer{v}, nil, nil)
}

func TestExecConcurrentGroupSemantics(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	a := d.MustAlloc(1000, 1000)
	bOut := d.MustAlloc(1000, 1000)
	cOut := d.MustAlloc(1000, 1000)
	mk := func(w *Buffer) Branch {
		return Branch{
			Op:     sim.Op{Kind: sim.OpGemm, M: 1000, K: 1000, N: 1000, Level: kernels.ParallelBlocked, Vector: true},
			Deps:   []*Buffer{a},
			Writes: []*Buffer{w},
		}
	}
	// Serial baseline.
	serial := New(sim.XeonPhi5110P(), false, nil)
	sa := serial.MustAlloc(1000, 1000)
	sb := serial.MustAlloc(1000, 1000)
	sc := serial.MustAlloc(1000, 1000)
	serial.Exec(mk(sb).Op, []*Buffer{sa}, []*Buffer{sb}, nil)
	serial.Exec(mk(sc).Op, []*Buffer{sa}, []*Buffer{sc}, nil)
	serialTime := serial.ComputeBusyUntil()

	d.ExecConcurrent([]Branch{mk(bOut), mk(cOut)})
	groupTime := d.ComputeBusyUntil()
	// Two concurrent GEMMs on half the cores each ≈ the serial time for
	// compute-bound work, but never slower than ~1.3x (sync overlap may
	// make it faster; core-split ramp may make it slightly slower).
	if groupTime > 1.5*serialTime {
		t.Fatalf("concurrent group %g vs serial %g", groupTime, serialTime)
	}
	if bOut.ReadyAt() != groupTime || cOut.ReadyAt() != groupTime {
		t.Fatal("group writes not stamped with group end")
	}
	if d.Stats().Ops != 2 {
		t.Fatalf("group op count %d", d.Stats().Ops)
	}
}

func TestExecConcurrentSingleBranchFallsBack(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	a := d.MustAlloc(10, 10)
	ran := false
	d.ExecConcurrent([]Branch{{
		Op:     sim.Op{Kind: sim.OpElem, Elems: 100, Level: kernels.Naive},
		Writes: []*Buffer{a},
		Fn:     func() { ran = true },
	}})
	if ran {
		t.Fatal("model-only device must not run fn")
	}
	if d.Stats().Ops != 1 {
		t.Fatal("single-branch group op count")
	}
	d.ExecConcurrent(nil) // no-op
}

func TestExecConcurrentNumericRunsAllFns(t *testing.T) {
	d := newNumericPhi()
	a := d.MustAlloc(4, 4)
	count := 0
	branches := []Branch{
		{Op: sim.Op{Kind: sim.OpElem, Elems: 16, Level: kernels.Naive}, Writes: []*Buffer{a}, Fn: func() { count++ }},
		{Op: sim.Op{Kind: sim.OpElem, Elems: 16, Level: kernels.Naive}, Writes: []*Buffer{a}, Fn: func() { count++ }},
		{Op: sim.Op{Kind: sim.OpElem, Elems: 16, Level: kernels.Naive}, Writes: []*Buffer{a}, Fn: func() { count++ }},
	}
	d.ExecConcurrent(branches)
	if count != 3 {
		t.Fatalf("ran %d branch fns", count)
	}
}

func TestModelOnlyModeHasNoMatrices(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	b := d.MustAlloc(5, 5)
	if b.Mat != nil {
		t.Fatal("model-only buffer has storage")
	}
	d.CopyIn(b, nil, 0) // nil host is fine in model-only mode
	ran := false
	d.Exec(sim.Op{Kind: sim.OpElem, Elems: 25, Level: kernels.Naive}, []*Buffer{b}, nil, func() { ran = true })
	if ran {
		t.Fatal("model-only device ran the kernel body")
	}
	if d.Now() <= 0 {
		t.Fatal("no simulated time charged")
	}
}

func TestResetTime(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	b := d.MustAlloc(10, 10)
	d.CopyIn(b, nil, 0)
	d.Exec(sim.Op{Kind: sim.OpElem, Elems: 100, Level: kernels.Naive}, nil, nil, nil)
	if d.Now() == 0 {
		t.Fatal("expected nonzero time")
	}
	d.ResetTime()
	st := d.Stats()
	if d.Now() != 0 || st.Ops != 0 || st.Transfers != 0 || st.Flops != 0 {
		t.Fatalf("ResetTime left %+v", st)
	}
	if d.Allocated() == 0 {
		t.Fatal("ResetTime must keep allocations")
	}
}

func TestStatsFlopsAccumulate(t *testing.T) {
	d := New(sim.XeonPhi5110P(), false, nil)
	d.Exec(sim.Op{Kind: sim.OpGemm, M: 10, K: 10, N: 10, Level: kernels.Naive}, nil, nil, nil)
	if got, want := d.Stats().Flops, 2000.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("flops %g want %g", got, want)
	}
	if d.Stats().ComputeBusy <= 0 || d.Stats().Makespan <= 0 {
		t.Fatal("busy/makespan not tracked")
	}
}
