package autoencoder

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func testConfig() Config {
	return Config{Visible: 8, Hidden: 5, Lambda: 1e-3, Beta: 0.3, Rho: 0.2}
}

func randBatch(r *rng.RNG, n, dim int) *tensor.Matrix {
	return tensor.NewMatrix(n, dim).Randomize(r, 0.1, 0.9)
}

// TestReferenceGradientMatchesFiniteDifferences is the ground-truth check:
// the analytic CostGrad must match central finite differences of the cost
// for every parameter, with all penalty terms active.
func TestReferenceGradientMatchesFiniteDifferences(t *testing.T) {
	for _, cfg := range []Config{
		testConfig(),
		{Visible: 6, Hidden: 4},                                    // no penalties
		{Visible: 6, Hidden: 4, Lambda: 0.01},                      // L2 only
		{Visible: 6, Hidden: 4, Beta: 0.5, Rho: 0.1},               // sparsity only
		{Visible: 4, Hidden: 9, Beta: 0.2, Rho: 0.3, Lambda: 1e-4}, // overcomplete
	} {
		p := NewParams(cfg, 42)
		x := randBatch(rng.New(7), 5, cfg.Visible)
		grad := ZeroGrad(cfg)
		CostGrad(cfg, p, x, grad)

		ps := p.ParamSet()
		theta := ps.Flatten(nil)
		gs := grad.ParamSet()
		analytic := gs.Flatten(nil)

		const h = 1e-6
		maxRel := 0.0
		for i := 0; i < len(theta); i += 7 { // sample every 7th parameter
			orig := theta[i]
			theta[i] = orig + h
			ps.Unflatten(theta)
			cPlus := CostGrad(cfg, p, x, nil)
			theta[i] = orig - h
			ps.Unflatten(theta)
			cMinus := CostGrad(cfg, p, x, nil)
			theta[i] = orig
			ps.Unflatten(theta)
			numeric := (cPlus - cMinus) / (2 * h)
			denom := math.Max(1e-8, math.Abs(numeric)+math.Abs(analytic[i]))
			rel := math.Abs(numeric-analytic[i]) / denom
			if rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel > 1e-5 {
			t.Errorf("cfg %+v: max relative gradient error %g", cfg, maxRel)
		}
	}
}

// TestDeviceMatchesReference checks the device implementation against the
// reference at every optimization level: same cost, same gradient.
func TestDeviceMatchesReference(t *testing.T) {
	cfg := testConfig()
	batch := 6
	x := randBatch(rng.New(9), batch, cfg.Visible)
	p := NewParams(cfg, 5)
	refGrad := ZeroGrad(cfg)
	refCost := CostGrad(cfg, p, x, refGrad)

	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, lvl := range kernels.Levels {
		for _, fuse := range []bool{false, true} {
			dev := device.New(sim.XeonPhi5110P(), true, pool)
			ctx := blas.NewContext(dev, lvl, 1)
			ctx.AutoFuse = fuse
			ctx.AutoConcurrent = fuse
			m, err := New(ctx, cfg, batch, 5)
			if err != nil {
				t.Fatal(err)
			}
			m.Upload(p)
			dx := dev.MustAlloc(batch, cfg.Visible)
			dev.CopyIn(dx, x, 0)

			cost := m.Cost(dx)
			if math.Abs(cost-refCost) > 1e-10 {
				t.Errorf("level %v fuse=%v: cost %g vs reference %g", lvl, fuse, cost, refCost)
			}
			m.Forward(dx)
			m.Backward(dx)
			gw1, gb1, gw2, gb2 := m.Gradients()
			checks := []struct {
				name string
				dev  *device.Buffer
				ref  *tensor.Matrix
			}{
				{"GW1", gw1, refGrad.W1},
				{"GB1", gb1, refGrad.B1.AsRow()},
				{"GW2", gw2, refGrad.W2},
				{"GB2", gb2, refGrad.B2.AsRow()},
			}
			for _, c := range checks {
				if d := tensor.MaxAbsDiff(c.dev.Mat, c.ref); d > 1e-10 {
					t.Errorf("level %v fuse=%v: %s max diff %g", lvl, fuse, c.name, d)
				}
			}
		}
	}
}

// lowRankBatch builds compressible data: sigmoid of a rank-2 factorization,
// which an 8-hidden-unit autoencoder can genuinely learn to reconstruct.
func lowRankBatch(r *rng.RNG, n, dim int) *tensor.Matrix {
	u := tensor.NewMatrix(n, 2).Randomize(r, -2, 2)
	v := tensor.NewMatrix(2, dim).Randomize(r, -2, 2)
	x := tensor.NewMatrix(n, dim)
	kernels.Gemm(nil, kernels.Naive, false, false, 1, u, v, 0, x)
	return x.Apply(func(z float64) float64 { return 1 / (1 + math.Exp(-z)) })
}

func TestStepReducesReconstruction(t *testing.T) {
	cfg := Config{Visible: 16, Hidden: 8, Lambda: 1e-5}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 2)
	m, err := New(ctx, cfg, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := lowRankBatch(rng.New(12), 20, cfg.Visible)
	dx := dev.MustAlloc(20, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	first := m.Step(dx, 1.0)
	var last float64
	for i := 0; i < 500; i++ {
		last = m.Step(dx, 1.0)
	}
	if !(last < 0.5*first) {
		t.Fatalf("reconstruction error did not fall: first %g last %g", first, last)
	}
}

func TestSparsityPenaltyDrivesActivationsTowardRho(t *testing.T) {
	cfg := Config{Visible: 12, Hidden: 6, Beta: 3, Rho: 0.05}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 3)
	m, err := New(ctx, cfg, 16, 13)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rng.New(14), 16, cfg.Visible)
	dx := dev.MustAlloc(16, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	m.Forward(dx)
	before := m.Hidden().Mat.Mean()
	for i := 0; i < 300; i++ {
		m.Step(dx, 0.3)
	}
	m.Forward(dx)
	after := m.Hidden().Mat.Mean()
	if !(math.Abs(after-cfg.Rho) < math.Abs(before-cfg.Rho)) {
		t.Fatalf("mean activation did not approach rho: before %g after %g (rho %g)", before, after, cfg.Rho)
	}
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	cfg := testConfig()
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 4)
	m, err := New(ctx, cfg, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams(cfg, 99)
	m.Upload(p)
	q := m.Download()
	if tensor.MaxAbsDiff(p.W1, q.W1) != 0 || tensor.MaxAbsDiff(p.W2, q.W2) != 0 ||
		!tensor.EqualVec(p.B1, q.B1, 0) || !tensor.EqualVec(p.B2, q.B2, 0) {
		t.Fatal("upload/download roundtrip mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Visible: 0, Hidden: 3},
		{Visible: 3, Hidden: -1},
		{Visible: 3, Hidden: 3, Lambda: -1},
		{Visible: 3, Hidden: 3, Beta: 1, Rho: 0},
		{Visible: 3, Hidden: 3, Beta: 1, Rho: 1},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	if _, err := New(ctx, Config{Visible: 2, Hidden: 2}, 0, 1); err == nil {
		t.Error("zero batch should fail")
	}
	if _, err := New(ctx, Config{Visible: -2, Hidden: 2}, 4, 1); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestOutOfMemoryIsReported(t *testing.T) {
	arch := sim.XeonPhi5110P()
	arch.GlobalMemBytes = 1024 // absurdly small device
	dev := device.New(arch, false, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	if _, err := New(ctx, Config{Visible: 64, Hidden: 64}, 8, 1); err == nil {
		t.Fatal("expected out-of-memory error")
	}
}

func TestModelOnlyTrainingChargesTime(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 21)
	m, err := New(ctx, Config{Visible: 1024, Hidden: 4096, Beta: 0.1, Rho: 0.05}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	dx := dev.MustAlloc(1000, 1024)
	dev.CopyIn(dx, nil, 0)
	if loss := m.Step(dx, 0.1); loss != 0 {
		t.Fatalf("model-only loss %g", loss)
	}
	if dev.Now() <= 0 {
		t.Fatal("no simulated time charged")
	}
	if dev.Stats().Flops < 2*2*1000*1024*4096 {
		t.Fatalf("flops understated: %g", dev.Stats().Flops)
	}
}

func TestFreeReleasesAllBuffers(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, testConfig(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}

func TestBatchMismatchPanics(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, _ := New(ctx, testConfig(), 4, 1)
	dx := dev.MustAlloc(3, testConfig().Visible)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward(dx)
}

func TestTrainableInterface(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, _ := New(ctx, testConfig(), 4, 1)
	if m.BatchSize() != 4 || m.InputDim() != testConfig().Visible {
		t.Fatal("Trainable accessors wrong")
	}
}
