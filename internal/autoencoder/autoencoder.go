// Package autoencoder implements the paper's Sparse Autoencoder: a
// three-layer sigmoid network trained to reconstruct its input under an L2
// weight penalty and a KL-divergence sparsity penalty (Eqs. 1–6), with the
// exact back-propagation gradient.
//
// Model is the device-resident implementation that the paper's parallel
// training engine drives: every matrix operation goes through a
// blas.Context, so the same code replays at any Table I optimization level
// on any simulated platform. Params/CostGrad in reference.go is the
// host-only reference used for gradient checking and by the batch
// optimizers.
package autoencoder

import (
	"fmt"
	"math"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/tensor"
)

// Config holds the Sparse Autoencoder hyperparameters of Eqs. 4–5.
type Config struct {
	Visible int // input (and output) units
	Hidden  int // hidden units
	Lambda  float64
	Beta    float64
	Rho     float64
	// Batch is the minibatch size the device-resident model is built for.
	// Build requires it; the deprecated four-argument constructors fill it
	// from their positional batch argument.
	Batch int
	// Seed initializes the parameters (and, via the context, the sampling
	// streams). Zero is a valid seed.
	Seed uint64
	// Momentum, when non-zero, applies the classical-momentum update
	// v ← µ·v − lr·∇θ, θ ← θ + v (Hinton's practical guide, the paper's
	// [15]) instead of plain SGD. Velocity buffers are allocated lazily.
	Momentum float64
	// Corruption, when non-zero, trains a denoising autoencoder: each
	// input unit is zeroed independently with this probability before the
	// forward pass, while the reconstruction target stays clean.
	Corruption float64
	// Tied shares the decoder weights with the encoder (W2 = W1ᵀ), the
	// classic weight-tying variant: half the weight memory and a combined
	// encoder+decoder gradient on W1. Params.W2 is ignored when set.
	Tied bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Visible <= 0 || c.Hidden <= 0 {
		return fmt.Errorf("autoencoder: non-positive layer size %d×%d", c.Visible, c.Hidden)
	}
	if c.Lambda < 0 || c.Beta < 0 {
		return fmt.Errorf("autoencoder: negative penalty weight (lambda=%g beta=%g)", c.Lambda, c.Beta)
	}
	if c.Beta > 0 && (c.Rho <= 0 || c.Rho >= 1) {
		return fmt.Errorf("autoencoder: sparsity target rho=%g outside (0,1)", c.Rho)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("autoencoder: momentum %g outside [0,1)", c.Momentum)
	}
	if c.Corruption < 0 || c.Corruption >= 1 {
		return fmt.Errorf("autoencoder: corruption %g outside [0,1)", c.Corruption)
	}
	if c.Batch < 0 {
		return fmt.Errorf("autoencoder: negative batch size %d", c.Batch)
	}
	return nil
}

// Model is a Sparse Autoencoder resident on a device, with persistent
// parameter, gradient and workspace buffers — the paper keeps "all the
// parameters … in our global memory permanently [and] several temporary
// variables … to avoid unnecessary reallocation and release" (§IV.B).
type Model struct {
	Cfg   Config
	Ctx   *blas.Context
	Batch int

	// Parameters: y = σ(x·W1 + b1), z = σ(y·W2 + b2), batched over rows.
	W1 *device.Buffer // Visible×Hidden
	B1 *device.Buffer // 1×Hidden
	W2 *device.Buffer // Hidden×Visible
	B2 *device.Buffer // 1×Visible

	// Gradients, matching shapes.
	GW1, GB1, GW2, GB2 *device.Buffer

	// Workspace, sized Batch×…
	y, z, d3, d2, dY, dZ *device.Buffer
	rowH                 *device.Buffer // 1×Hidden reduction scratch

	// Velocity buffers (Momentum > 0 only).
	vW1, vB1, vW2, vB2 *device.Buffer
	// Denoising workspace (Corruption > 0 only): corrupted input and the
	// keep-mask probabilities.
	xc, mask, keepP *device.Buffer

	// inferOnly marks a forward-only model built by NewInference: no
	// gradient, velocity or corruption buffers exist, and the training
	// entry points panic.
	inferOnly bool
}

// New allocates a model for the given batch size on ctx's device and
// initializes its weights from the reference initializer with the given
// seed (uploaded over PCIe once).
//
// Deprecated: use Build with Config.Batch and Config.Seed set.
func New(ctx *blas.Context, cfg Config, batch int, seed uint64) (*Model, error) {
	cfg.Batch = batch
	cfg.Seed = seed
	return Build(ctx, cfg)
}

// Build allocates a model for cfg.Batch examples on ctx's device and
// initializes its weights from the reference initializer with cfg.Seed
// (uploaded over PCIe once).
func Build(ctx *blas.Context, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batch := cfg.Batch
	if batch <= 0 {
		return nil, fmt.Errorf("autoencoder: non-positive batch size %d", batch)
	}
	m := &Model{Cfg: cfg, Ctx: ctx, Batch: batch}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}
	v, h := cfg.Visible, cfg.Hidden
	m.W1, m.B1 = alloc(v, h), alloc(1, h)
	m.B2 = alloc(1, v)
	m.GW1, m.GB1 = alloc(v, h), alloc(1, h)
	m.GB2 = alloc(1, v)
	if !cfg.Tied {
		m.W2 = alloc(h, v)
		m.GW2 = alloc(h, v)
	}
	m.y, m.dY = alloc(batch, h), alloc(batch, h)
	m.d2 = alloc(batch, h)
	m.z, m.dZ = alloc(batch, v), alloc(batch, v)
	m.d3 = alloc(batch, v)
	m.rowH = alloc(1, h)
	if cfg.Momentum > 0 {
		m.vW1, m.vB1 = alloc(v, h), alloc(1, h)
		m.vB2 = alloc(1, v)
		if !cfg.Tied {
			m.vW2 = alloc(h, v)
		}
	}
	if cfg.Corruption > 0 {
		m.xc, m.mask = alloc(batch, v), alloc(batch, v)
		m.keepP = alloc(batch, v)
	}
	if err != nil {
		m.Free() // release the buffers allocated before the failure
		return nil, err
	}
	if cfg.Corruption > 0 && dev.Numeric {
		m.keepP.Mat.Fill(1 - cfg.Corruption)
	}
	m.Upload(NewParams(cfg, cfg.Seed))
	return m, nil
}

// NewInference allocates a forward-only model for up to batch examples:
// parameters and the two activation buffers, no gradient, velocity or
// corruption workspace (roughly a third of the training model's device
// memory). p, when non-nil, provides the weights; nil initializes from
// cfg.Seed. Only Encode, Reconstruct, Forward, Upload and Download work on
// an inference model — the training entry points panic.
func NewInference(ctx *blas.Context, cfg Config, batch int, p *Params) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("autoencoder: non-positive batch size %d", batch)
	}
	m := &Model{Cfg: cfg, Ctx: ctx, Batch: batch, inferOnly: true}
	dev := ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var b *device.Buffer
		b, err = dev.Alloc(r, c)
		return b
	}
	v, h := cfg.Visible, cfg.Hidden
	m.W1, m.B1 = alloc(v, h), alloc(1, h)
	m.B2 = alloc(1, v)
	if !cfg.Tied {
		m.W2 = alloc(h, v)
	}
	m.y, m.z = alloc(batch, h), alloc(batch, v)
	if err != nil {
		m.Free() // release the buffers allocated before the failure
		return nil, err
	}
	if p == nil {
		p = NewParams(cfg, cfg.Seed)
	}
	m.Upload(p)
	return m, nil
}

// Free releases every device buffer of the model.
func (m *Model) Free() {
	dev := m.Ctx.Dev
	for _, b := range []*device.Buffer{m.W1, m.B1, m.W2, m.B2, m.GW1, m.GB1, m.GW2, m.GB2, m.y, m.z, m.d3, m.d2, m.dY, m.dZ, m.rowH,
		m.vW1, m.vB1, m.vW2, m.vB2, m.xc, m.mask, m.keepP} {
		if b != nil {
			dev.Free(b)
		}
	}
}

// Upload transfers host parameters into the device buffers. With tied
// weights the decoder matrix p.W2 is ignored.
func (m *Model) Upload(p *Params) {
	dev := m.Ctx.Dev
	dev.CopyIn(m.W1, hostOrNil(dev, p.W1), 0)
	dev.CopyIn(m.B1, hostOrNil(dev, p.B1.AsRow()), 0)
	if !m.Cfg.Tied {
		dev.CopyIn(m.W2, hostOrNil(dev, p.W2), 0)
	}
	dev.CopyIn(m.B2, hostOrNil(dev, p.B2.AsRow()), 0)
}

// Download copies the device parameters back to the host. On a model-only
// device the returned parameters are the zero initialization.
func (m *Model) Download() *Params {
	p := &Params{
		W1: tensor.NewMatrix(m.Cfg.Visible, m.Cfg.Hidden),
		W2: tensor.NewMatrix(m.Cfg.Hidden, m.Cfg.Visible),
		B1: tensor.NewVector(m.Cfg.Hidden),
		B2: tensor.NewVector(m.Cfg.Visible),
	}
	dev := m.Ctx.Dev
	dev.CopyOut(m.W1, hostOrNil(dev, p.W1))
	dev.CopyOut(m.B1, hostOrNil(dev, p.B1.AsRow()))
	if m.Cfg.Tied {
		if dev.Numeric {
			p.W2 = p.W1.T()
		}
	} else {
		dev.CopyOut(m.W2, hostOrNil(dev, p.W2))
	}
	dev.CopyOut(m.B2, hostOrNil(dev, p.B2.AsRow()))
	return p
}

func hostOrNil(dev *device.Device, m *tensor.Matrix) *tensor.Matrix {
	if dev.Numeric {
		return m
	}
	return nil
}

// Forward runs the batched forward pass y = σ(x·W1+b1), z = σ(y·W2+b2).
// x must be Batch×Visible.
func (m *Model) Forward(x *device.Buffer) { m.forwardFrom(x) }

// checkInfer validates an inference input of 1..Batch rows.
func (m *Model) checkInfer(x *device.Buffer) int {
	if x.Rows < 1 || x.Rows > m.Batch || x.Cols != m.Cfg.Visible {
		panic(fmt.Sprintf("autoencoder: inference input %dx%d, want 1..%d rows of width %d",
			x.Rows, x.Cols, m.Batch, m.Cfg.Visible))
	}
	return x.Rows
}

// sliceTo returns the first n rows of a Batch-row workspace buffer (the
// buffer itself when n = Batch).
func sliceTo(b *device.Buffer, n int) *device.Buffer {
	if n == b.Rows {
		return b
	}
	return b.Slice(0, n)
}

// Encode runs the batched encoder y = σ(x·W1 + b1) for 1 ≤ x.Rows ≤ Batch
// examples and returns the hidden codes as a view of the model's activation
// buffer (valid until the next forward pass). It allocates nothing on the
// device, touches no gradient state, and matches Params.Encode row for row
// — the device-resident inference path the serving layer batches over.
func (m *Model) Encode(x *device.Buffer) *device.Buffer {
	n := m.checkInfer(x)
	ctx := m.Ctx
	y := sliceTo(m.y, n)
	ctx.MaybeFused(func() {
		ctx.Gemm(false, false, 1, x, m.W1, 0, y)
		ctx.AddBiasRow(y, m.B1)
		ctx.Sigmoid(y, y)
	})
	return y
}

// Reconstruct runs the full batched forward pass for 1 ≤ x.Rows ≤ Batch
// examples and returns the reconstructions z = σ(y·W2 + b2) as a view of
// the model's output buffer (valid until the next forward pass).
func (m *Model) Reconstruct(x *device.Buffer) *device.Buffer {
	n := m.checkInfer(x)
	y := m.Encode(x)
	ctx := m.Ctx
	z := sliceTo(m.z, n)
	ctx.MaybeFused(func() {
		if m.Cfg.Tied {
			ctx.Gemm(false, true, 1, y, m.W1, 0, z)
		} else {
			ctx.Gemm(false, false, 1, y, m.W2, 0, z)
		}
		ctx.AddBiasRow(z, m.B2)
		ctx.Sigmoid(z, z)
	})
	return z
}

// mustTrain panics when the model was built by NewInference.
func (m *Model) mustTrain(op string) {
	if m.inferOnly {
		panic("autoencoder: " + op + " on an inference-only model (built by NewInference)")
	}
}

func (m *Model) forwardFrom(x *device.Buffer) {
	m.checkInput(x)
	ctx := m.Ctx
	// At the Improved level each layer is one fused region: the GEMM with
	// its bias-add and sigmoid epilogue (the loop combining of §IV.B.2).
	ctx.MaybeFused(func() {
		ctx.Gemm(false, false, 1, x, m.W1, 0, m.y)
		ctx.AddBiasRow(m.y, m.B1)
		ctx.Sigmoid(m.y, m.y)
	})
	ctx.MaybeFused(func() {
		if m.Cfg.Tied {
			ctx.Gemm(false, true, 1, m.y, m.W1, 0, m.z)
		} else {
			ctx.Gemm(false, false, 1, m.y, m.W2, 0, m.z)
		}
		ctx.AddBiasRow(m.z, m.B2)
		ctx.Sigmoid(m.z, m.z)
	})
}

// Backward computes the full cost gradient for the batch in GW1/GB1/GW2/GB2
// (averaged over the batch, including the λ and β terms). Forward must have
// run on the same x.
func (m *Model) Backward(x *device.Buffer) { m.backwardFrom(x, x) }

// backwardFrom back-propagates with separate encoder input and
// reconstruction target — they differ only for the denoising variant.
func (m *Model) backwardFrom(input, target *device.Buffer) {
	m.mustTrain("Backward")
	m.checkInput(input)
	m.checkInput(target)
	ctx := m.Ctx
	invM := 1 / float64(m.Batch)

	// Output delta: d3 = (z − target) ⊙ z(1−z) / batch.
	ctx.MaybeFused(func() {
		ctx.Sub(m.d3, m.z, target)
		ctx.SigmoidPrimeFromY(m.dZ, m.z)
		ctx.MulElem(m.d3, m.d3, m.dZ)
		ctx.Scale(invM, m.d3)
	})

	// Decoder gradients. With tied weights the decoder contribution
	// d3ᵀ·y lands directly in GW1; otherwise GW2 and GB2 are independent
	// once d3 exists (Fig. 6-style concurrency).
	if m.Cfg.Tied {
		ctx.MaybeConcurrent(func() {
			ctx.Gemm(true, false, 1, m.d3, m.y, 0, m.GW1)
			ctx.ColSums(m.d3, m.GB2)
		})
	} else {
		ctx.MaybeConcurrent(func() {
			ctx.Gemm(true, false, 1, m.y, m.d3, 0, m.GW2)
			ctx.ColSums(m.d3, m.GB2)
		})
	}

	// Hidden delta with the sparsity penalty of Eq. 5:
	// d2 = (d3·W2ᵀ + β/batch · s) ⊙ y(1−y), s_j = −ρ/ρ̂_j + (1−ρ)/(1−ρ̂_j).
	// One fused region covers the weight-decay update of GW2, the delta
	// GEMM, the derivative map and the ρ̂ reduction.
	ctx.MaybeFused(func() {
		if m.Cfg.Tied {
			ctx.Gemm(false, false, 1, m.d3, m.W1, 0, m.d2)
		} else {
			if m.Cfg.Lambda != 0 {
				ctx.Axpy(m.Cfg.Lambda, m.W2, m.GW2)
			}
			ctx.Gemm(false, true, 1, m.d3, m.W2, 0, m.d2)
		}
		ctx.SigmoidPrimeFromY(m.dY, m.y)
		if m.Cfg.Beta != 0 {
			ctx.ColSums(m.y, m.rowH)
		}
	})
	coeff := m.sparsityCoeff()
	ctx.AddKLSparsityDelta(m.d2, coeff, m.dY)

	// Encoder gradients (accumulating onto the decoder term when tied).
	encBeta := 0.0
	if m.Cfg.Tied {
		encBeta = 1
	}
	ctx.MaybeConcurrent(func() {
		ctx.Gemm(true, false, 1, input, m.d2, encBeta, m.GW1)
		ctx.ColSums(m.d2, m.GB1)
	})
	if m.Cfg.Lambda != 0 {
		ctx.Axpy(m.Cfg.Lambda, m.W1, m.GW1)
	}
	// Bias gradients carry the 1/batch already folded into d3/d2; weight
	// gradients likewise. Nothing further to scale.
}

// sparsityCoeff computes β/batch · (−ρ/ρ̂ + (1−ρ)/(1−ρ̂)) on the host from
// the column sums of the hidden activations, which Backward leaves in
// rowH (a length-Hidden reduction — the only device→host word traffic in
// the step). With β = 0 it returns zeros and the delta kernel degenerates
// to the plain derivative product.
func (m *Model) sparsityCoeff() tensor.Vector {
	coeff := tensor.NewVector(m.Cfg.Hidden)
	if m.Cfg.Beta == 0 || !m.Ctx.Dev.Numeric {
		return coeff
	}
	const eps = 1e-12
	scale := m.Cfg.Beta / float64(m.Batch)
	invM := 1 / float64(m.Batch)
	for j, sum := range m.rowH.Mat.RowView(0) {
		r := sum * invM
		r = math.Min(math.Max(r, eps), 1-eps)
		coeff[j] = scale * (-m.Cfg.Rho/r + (1-m.Cfg.Rho)/(1-r))
	}
	return coeff
}

// ApplyUpdate performs the parameter update (Eqs. 16–18 vectorized; fused
// into one parallel region at the Improved level): plain SGD θ ← θ − lr·∇θ,
// or classical momentum when Cfg.Momentum > 0.
func (m *Model) ApplyUpdate(lr float64) {
	m.mustTrain("ApplyUpdate")
	ctx := m.Ctx
	if m.Cfg.Momentum == 0 {
		ctx.MaybeFused(func() {
			ctx.Axpy(-lr, m.GW1, m.W1)
			ctx.Axpy(-lr, m.GB1, m.B1)
			if !m.Cfg.Tied {
				ctx.Axpy(-lr, m.GW2, m.W2)
			}
			ctx.Axpy(-lr, m.GB2, m.B2)
		})
		return
	}
	mu := m.Cfg.Momentum
	pairs := []struct{ v, g, p *device.Buffer }{
		{m.vW1, m.GW1, m.W1}, {m.vB1, m.GB1, m.B1}, {m.vB2, m.GB2, m.B2},
	}
	if !m.Cfg.Tied {
		pairs = append(pairs, struct{ v, g, p *device.Buffer }{m.vW2, m.GW2, m.W2})
	}
	ctx.MaybeFused(func() {
		for _, pv := range pairs {
			ctx.Scale(mu, pv.v)
			ctx.Axpy(-lr, pv.g, pv.v)
			ctx.Axpy(1, pv.v, pv.p)
		}
	})
}

// Step runs one update on the batch x and returns the batch's average
// reconstruction error ½‖z−x‖²/batch (0 on model-only devices). With
// Corruption > 0 the forward pass and the encoder gradient see a masked
// copy of x while the reconstruction target stays clean (a denoising
// autoencoder).
func (m *Model) Step(x *device.Buffer, lr float64) float64 {
	m.mustTrain("Step")
	input := x
	if m.Cfg.Corruption > 0 {
		ctx := m.Ctx
		ctx.MaybeFused(func() {
			ctx.SampleBernoulli(m.mask, m.keepP)
			ctx.MulElem(m.xc, x, m.mask)
		})
		input = m.xc
	}
	m.forwardFrom(input)
	recon := m.Ctx.SumSquaredDiff(m.z, x) / (2 * float64(m.Batch))
	m.backwardFrom(input, x)
	m.ApplyUpdate(lr)
	return recon
}

// Cost returns the full objective of Eq. 5 on the batch x: reconstruction +
// L2 + sparsity terms. Forward state is overwritten. Returns 0 on
// model-only devices.
func (m *Model) Cost(x *device.Buffer) float64 {
	m.mustTrain("Cost")
	m.Forward(x)
	ctx := m.Ctx
	recon := ctx.SumSquaredDiff(m.z, x) / (2 * float64(m.Batch))
	reg := m.Cfg.Lambda / 2 * ctx.SumSquares(m.W1)
	if !m.Cfg.Tied {
		reg += m.Cfg.Lambda / 2 * ctx.SumSquares(m.W2)
	}
	sparse := 0.0
	if m.Cfg.Beta > 0 {
		rhoHat := ctx.MeanActivations(m.y, m.rowH)
		sparse = m.Cfg.Beta * blas.KLDivergence(m.Cfg.Rho, rhoHat)
	}
	return recon + reg + sparse
}

// Hidden exposes the hidden-activation buffer of the last Forward — the
// "code" a trained layer feeds to the next Autoencoder in a stack (Fig. 1).
func (m *Model) Hidden() *device.Buffer { return m.y }

// Output exposes the reconstruction buffer of the last Forward.
func (m *Model) Output() *device.Buffer { return m.z }

// Gradients exposes the gradient buffers, in W1, B1, W2, B2 order.
func (m *Model) Gradients() (gw1, gb1, gw2, gb2 *device.Buffer) {
	return m.GW1, m.GB1, m.GW2, m.GB2
}

func (m *Model) checkInput(x *device.Buffer) {
	if x.Rows != m.Batch || x.Cols != m.Cfg.Visible {
		panic(fmt.Sprintf("autoencoder: input %dx%d, want %dx%d", x.Rows, x.Cols, m.Batch, m.Cfg.Visible))
	}
}

// BatchSize implements the training engine's Trainable interface.
func (m *Model) BatchSize() int { return m.Batch }

// InputDim implements the training engine's Trainable interface.
func (m *Model) InputDim() int { return m.Cfg.Visible }
