package autoencoder

import (
	"fmt"

	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/tensor"
)

// BatchObjective evaluates the full-dataset Sparse Autoencoder objective on
// the device by streaming minibatches and accumulating gradients in device
// memory — the evaluation primitive behind the batch optimization methods
// (L-BFGS, CG) that the paper's §III discusses as the parallelism-friendly
// alternative to online SGD. Each Objective call uploads the current
// parameters over PCIe, streams the whole dataset through
// Forward/Backward, and downloads the averaged gradient, so the simulated
// clock charges exactly what a batch optimizer costs on the coprocessor.
//
// The KL sparsity statistic ρ̂ is computed per minibatch (as in minibatch
// training); with Beta = 0, or with a single batch spanning the dataset,
// the objective equals the reference CostGrad exactly.
type BatchObjective struct {
	model *Model
	src   data.Source

	hostParams *Params
	hostGrad   *Params
	ps, gs     flattener

	// Device accumulation buffers for the gradient sum.
	accGW1, accGB1, accGB2 *device.Buffer
	accGW2                 *device.Buffer // nil when tied

	x       *device.Buffer
	hostX   *tensor.Matrix
	batches int
}

// flattener is the subset of nn.ParamSet used here, kept as an interface to
// avoid exporting plumbing.
type flattener interface {
	Flatten(dst tensor.Vector) tensor.Vector
	Unflatten(src tensor.Vector)
	Len() int
}

// NewBatchObjective builds the evaluator on the model's device. src.Len()
// must be a positive multiple of the model's batch size (streamed exactly
// once per evaluation).
func NewBatchObjective(m *Model, src data.Source) (*BatchObjective, tensor.Vector, error) {
	if src.Dim() != m.Cfg.Visible {
		return nil, nil, fmt.Errorf("autoencoder: batch objective source dim %d, want %d", src.Dim(), m.Cfg.Visible)
	}
	if src.Len() == 0 || src.Len()%m.Batch != 0 {
		return nil, nil, fmt.Errorf("autoencoder: batch objective needs a dataset that is a positive multiple of batch %d, got %d", m.Batch, src.Len())
	}
	b := &BatchObjective{
		model:      m,
		src:        src,
		hostParams: m.Download(),
		hostGrad:   ZeroGrad(m.Cfg),
		batches:    src.Len() / m.Batch,
	}
	b.ps = b.hostParams.ParamSet()
	b.gs = b.hostGrad.ParamSet()
	dev := m.Ctx.Dev
	var err error
	alloc := func(r, c int) *device.Buffer {
		if err != nil {
			return nil
		}
		var buf *device.Buffer
		buf, err = dev.Alloc(r, c)
		return buf
	}
	v, h := m.Cfg.Visible, m.Cfg.Hidden
	b.accGW1, b.accGB1 = alloc(v, h), alloc(1, h)
	b.accGB2 = alloc(1, v)
	if !m.Cfg.Tied {
		b.accGW2 = alloc(h, v)
	}
	b.x = alloc(m.Batch, v)
	if err != nil {
		return nil, nil, err
	}
	if dev.Numeric {
		b.hostX = tensor.NewMatrix(m.Batch, v)
	}
	theta := b.ps.Flatten(nil)
	return b, theta, nil
}

// Free releases the evaluator's device buffers (not the model's).
func (b *BatchObjective) Free() {
	dev := b.model.Ctx.Dev
	for _, buf := range []*device.Buffer{b.accGW1, b.accGB1, b.accGB2, b.accGW2, b.x} {
		if buf != nil {
			dev.Free(buf)
		}
	}
}

// Eval implements the opt.Objective contract: it writes theta into the
// model, streams the dataset, and returns the mean cost (plus penalties),
// filling grad with the averaged gradient when non-nil. On timing-only
// devices the returned cost and gradient are zero — only the clock runs.
func (b *BatchObjective) Eval(theta, grad tensor.Vector) float64 {
	m := b.model
	ctx := m.Ctx
	dev := ctx.Dev

	// Upload the candidate parameters (a real PCIe cost per evaluation).
	b.ps.Unflatten(theta)
	m.Upload(b.hostParams)

	wantGrad := grad != nil
	if wantGrad {
		ctx.MaybeFused(func() {
			ctx.Scale(0, b.accGW1)
			ctx.Scale(0, b.accGB1)
			ctx.Scale(0, b.accGB2)
			if b.accGW2 != nil {
				ctx.Scale(0, b.accGW2)
			}
		})
	}

	costSum := 0.0
	for i := 0; i < b.batches; i++ {
		if dev.Numeric {
			b.src.Chunk(i*m.Batch, m.Batch, b.hostX)
			dev.CopyIn(b.x, b.hostX, 0)
		} else {
			dev.CopyIn(b.x, nil, 0)
		}
		costSum += m.Cost(b.x)
		if !wantGrad {
			continue
		}
		m.Backward(b.x)
		ctx.MaybeFused(func() {
			ctx.Axpy(1, m.GW1, b.accGW1)
			ctx.Axpy(1, m.GB1, b.accGB1)
			ctx.Axpy(1, m.GB2, b.accGB2)
			if b.accGW2 != nil {
				ctx.Axpy(1, m.GW2, b.accGW2)
			}
		})
	}
	cost := costSum / float64(b.batches)

	if wantGrad {
		inv := 1 / float64(b.batches)
		ctx.MaybeFused(func() {
			ctx.Scale(inv, b.accGW1)
			ctx.Scale(inv, b.accGB1)
			ctx.Scale(inv, b.accGB2)
			if b.accGW2 != nil {
				ctx.Scale(inv, b.accGW2)
			}
		})
		host := func(mx *tensor.Matrix) *tensor.Matrix {
			if dev.Numeric {
				return mx
			}
			return nil
		}
		dev.CopyOut(b.accGW1, host(b.hostGrad.W1))
		dev.CopyOut(b.accGB1, host(b.hostGrad.B1.AsRow()))
		dev.CopyOut(b.accGB2, host(b.hostGrad.B2.AsRow()))
		if b.accGW2 != nil {
			dev.CopyOut(b.accGW2, host(b.hostGrad.W2))
		} else {
			b.hostGrad.W2.Zero()
		}
		b.gs.Flatten(grad)
	}
	return cost
}
