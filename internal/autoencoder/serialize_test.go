package autoencoder

import (
	"bytes"
	"testing"

	"phideep/internal/tensor"
)

func TestParamsSaveLoad(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 4}
	p := NewParams(cfg, 1)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewParams(cfg, 99) // different init
	if err := q.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(p.W1, q.W1) != 0 || tensor.MaxAbsDiff(p.W2, q.W2) != 0 {
		t.Fatal("weights not restored")
	}
	if !tensor.EqualVec(p.B1, q.B1, 0) || !tensor.EqualVec(p.B2, q.B2, 0) {
		t.Fatal("biases not restored")
	}
	// Shape mismatch rejected.
	wrong := NewParams(Config{Visible: 5, Hidden: 4}, 1)
	var buf2 bytes.Buffer
	if err := p.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := wrong.Load(&buf2); err == nil {
		t.Fatal("shape mismatch not detected")
	}
}
