package autoencoder

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

func TestMomentumMatchesManualUpdate(t *testing.T) {
	cfg := Config{Visible: 6, Hidden: 4, Momentum: 0.9}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, cfg, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch(rng.New(4), 5, cfg.Visible)
	dx := dev.MustAlloc(5, cfg.Visible)
	dev.CopyIn(dx, x, 0)

	// Manual replica of the momentum recursion over two steps, using the
	// gradients the device computes.
	p0 := m.Download()
	velW1 := tensor.NewMatrix(cfg.Visible, cfg.Hidden)
	want := p0.Clone()
	refCfg := cfg // reference gradient has no momentum field effects
	const lr = 0.3
	for step := 0; step < 2; step++ {
		grad := ZeroGrad(refCfg)
		CostGrad(refCfg, want, x, grad)
		for i := 0; i < cfg.Visible; i++ {
			vRow, gRow, wRow := velW1.RowView(i), grad.W1.RowView(i), want.W1.RowView(i)
			for j := range vRow {
				vRow[j] = 0.9*vRow[j] - lr*gRow[j]
				wRow[j] += vRow[j]
			}
		}
		// Biases and W2 are not tracked here; W1 suffices for the check.
		// Keep the reference's other parameters in sync with the device.
		m.Step(dx, lr)
		got := m.Download()
		want.W2 = got.W2.Clone()
		want.B1 = got.B1.Clone()
		want.B2 = got.B2.Clone()
		if d := tensor.MaxAbsDiff(want.W1, got.W1); d > 1e-9 {
			t.Fatalf("step %d: W1 momentum update diverged by %g", step, d)
		}
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	run := func(momentum float64) float64 {
		cfg := Config{Visible: 16, Hidden: 8, Lambda: 1e-5, Momentum: momentum}
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := blas.NewContext(dev, kernels.ParallelBlocked, 2)
		m, err := New(ctx, cfg, 20, 11)
		if err != nil {
			t.Fatal(err)
		}
		x := lowRankBatch(rng.New(12), 20, cfg.Visible)
		dx := dev.MustAlloc(20, cfg.Visible)
		dev.CopyIn(dx, x, 0)
		last := 0.0
		for i := 0; i < 150; i++ {
			last = m.Step(dx, 0.3)
		}
		return last
	}
	plain := run(0)
	withMomentum := run(0.9)
	if !(withMomentum < plain) {
		t.Fatalf("momentum did not accelerate: plain %g vs momentum %g", plain, withMomentum)
	}
}

func TestDenoisingCorruptionMasksInput(t *testing.T) {
	cfg := Config{Visible: 30, Hidden: 10, Corruption: 0.5}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 7)
	m, err := New(ctx, cfg, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(40, 30)
	x.Fill(1)
	dx := dev.MustAlloc(40, 30)
	dev.CopyIn(dx, x, 0)
	m.Step(dx, 0.1)
	// The corrupted copy must contain zeros at roughly the corruption rate
	// while the original stays untouched.
	kept := m.xc.Mat.Mean()
	if math.Abs(kept-0.5) > 0.1 {
		t.Fatalf("keep fraction %g, want ≈0.5", kept)
	}
	if dx.Mat.Mean() != 1 {
		t.Fatal("clean input was modified")
	}
}

func TestDenoisingTrainsToReconstructCleanInput(t *testing.T) {
	cfg := Config{Visible: 16, Hidden: 12, Corruption: 0.3, Lambda: 1e-6}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 9)
	m, err := New(ctx, cfg, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	x := lowRankBatch(rng.New(7), 24, cfg.Visible)
	dx := dev.MustAlloc(24, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	first := m.Step(dx, 0.8)
	var last float64
	for i := 0; i < 600; i++ {
		last = m.Step(dx, 0.8)
	}
	if !(last < 0.7*first) {
		t.Fatalf("denoising AE did not learn: %g → %g", first, last)
	}
	// Denoising reconstruction from clean input must also be good.
	m.Forward(dx)
	clean := ctx.SumSquaredDiff(m.Output(), dx) / (2 * 24)
	if !(clean <= last*1.5) {
		t.Fatalf("clean-input reconstruction %g much worse than training loss %g", clean, last)
	}
}

func TestExtendedConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Visible: 4, Hidden: 2, Momentum: -0.1},
		{Visible: 4, Hidden: 2, Momentum: 1},
		{Visible: 4, Hidden: 2, Corruption: -0.1},
		{Visible: 4, Hidden: 2, Corruption: 1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
}

func TestExtendedBuffersFreed(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.Naive, 1)
	m, err := New(ctx, Config{Visible: 8, Hidden: 4, Momentum: 0.5, Corruption: 0.2}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Free()
	if dev.Allocated() != 0 {
		t.Fatalf("%d bytes leaked", dev.Allocated())
	}
}
