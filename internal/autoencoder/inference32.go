package autoencoder

import (
	"fmt"

	"phideep/internal/kernels"
	"phideep/internal/parallel"
	"phideep/internal/tensor"
)

// Params32 is a float32 snapshot of trained autoencoder parameters, built
// once per served model by To32 and shared read-only by every reduced-
// precision inference replica. Conversion rounds each weight to nearest —
// the copy-on-load boundary of the f32 serving path; training never sees
// these.
type Params32 struct {
	W1 *tensor.Matrix32 // Visible×Hidden
	W2 *tensor.Matrix32 // Hidden×Visible
	B1 tensor.Vector32  // Hidden
	B2 tensor.Vector32  // Visible
}

// To32 rounds the parameters to float32.
func (p *Params) To32() *Params32 {
	return &Params32{W1: p.W1.To32(), W2: p.W2.To32(), B1: p.B1.To32(), B2: p.B2.To32()}
}

// Inference32 is a forward-only float32 replica of a trained autoencoder.
// Unlike Model (the device-resident f64 replica), it runs host-side straight
// on the packed f32 kernels: weights are shared read-only across replicas
// while each replica owns private activation workspaces sized for maxBatch,
// so concurrent workers never alias scratch. Not safe for concurrent use of
// a single replica.
type Inference32 struct {
	cfg  Config
	p    *Params32
	pool *parallel.Pool
	lvl  kernels.Level

	y *tensor.Matrix32 // maxBatch×Hidden hidden activations
	z *tensor.Matrix32 // maxBatch×Visible reconstruction
}

// NewInference32 builds a replica over the shared snapshot p. pool may be
// nil for sequential execution; lvl picks the kernel ladder rung.
func NewInference32(pool *parallel.Pool, lvl kernels.Level, cfg Config, maxBatch int, p *Params32) *Inference32 {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("autoencoder: NewInference32 maxBatch %d", maxBatch))
	}
	return &Inference32{
		cfg: cfg, p: p, pool: pool, lvl: lvl,
		y: tensor.NewMatrix32(maxBatch, cfg.Hidden),
		z: tensor.NewMatrix32(maxBatch, cfg.Visible),
	}
}

// Encode computes y = σ(x·W1 + b1) for the batch x (one example per row)
// and returns a view of the replica's workspace valid until the next call.
func (m *Inference32) Encode(x *tensor.Matrix32) *tensor.Matrix32 {
	if x.Cols != m.cfg.Visible || x.Rows > m.y.Rows {
		panic(fmt.Sprintf("autoencoder: Encode32 input %dx%d, want ≤%dx%d", x.Rows, x.Cols, m.y.Rows, m.cfg.Visible))
	}
	y := m.y.RowsView(0, x.Rows)
	kernels.Gemm32(m.pool, m.lvl, false, false, 1, x, m.p.W1, 0, y)
	kernels.AddBiasRow32(m.pool, m.lvl, y, m.p.B1)
	kernels.Sigmoid32(m.pool, m.lvl, y, y)
	return y
}

// Reconstruct computes the round trip z = σ(σ(x·W1+b1)·dec + b2), where the
// decoder is W1ᵀ with tied weights (expressed through the kernel's transB so
// no transpose copy is made) and W2 otherwise.
func (m *Inference32) Reconstruct(x *tensor.Matrix32) *tensor.Matrix32 {
	y := m.Encode(x)
	z := m.z.RowsView(0, x.Rows)
	if m.cfg.Tied {
		kernels.Gemm32(m.pool, m.lvl, false, true, 1, y, m.p.W1, 0, z)
	} else {
		kernels.Gemm32(m.pool, m.lvl, false, false, 1, y, m.p.W2, 0, z)
	}
	kernels.AddBiasRow32(m.pool, m.lvl, z, m.p.B2)
	kernels.Sigmoid32(m.pool, m.lvl, z, z)
	return z
}
