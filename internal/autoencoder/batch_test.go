package autoencoder

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/data"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// TestBatchObjectiveMatchesReference: with β = 0 the streamed device
// objective must equal the host reference CostGrad on the whole dataset,
// for both multi-batch and single-batch streaming.
func TestBatchObjectiveMatchesReference(t *testing.T) {
	cfg := Config{Visible: 10, Hidden: 6, Lambda: 1e-3}
	x := randBatch(rng.New(3), 12, cfg.Visible)
	p := NewParams(cfg, 4)
	refGrad := ZeroGrad(cfg)
	refCost := CostGrad(cfg, p, x, refGrad)
	refFlat := refGrad.ParamSet().Flatten(nil)

	for _, batch := range []int{3, 12} {
		dev := device.New(sim.XeonPhi5110P(), true, nil)
		ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
		ctx.AutoFuse = true
		m, err := New(ctx, cfg, batch, 9)
		if err != nil {
			t.Fatal(err)
		}
		obj, theta, err := NewBatchObjective(m, data.InMemory{X: x})
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate at the reference parameters.
		p.ParamSet().Flatten(theta)
		grad := tensor.NewVector(len(theta))
		cost := obj.Eval(theta, grad)
		if math.Abs(cost-refCost) > 1e-10 {
			t.Errorf("batch %d: cost %g vs reference %g", batch, cost, refCost)
		}
		for i := range grad {
			if math.Abs(grad[i]-refFlat[i]) > 1e-10 {
				t.Errorf("batch %d: grad[%d] = %g vs %g", batch, i, grad[i], refFlat[i])
				break
			}
		}
		// Cost-only evaluation agrees and skips gradient work.
		if c := obj.Eval(theta, nil); math.Abs(c-cost) > 1e-12 {
			t.Errorf("batch %d: cost-only eval %g vs %g", batch, c, cost)
		}
		obj.Free()
	}
}

// TestBatchObjectiveSingleChunkSparsityExact: with the dataset in one batch,
// the per-batch ρ̂ is the dataset ρ̂ and the sparsity term is exact too.
func TestBatchObjectiveSingleChunkSparsityExact(t *testing.T) {
	cfg := Config{Visible: 8, Hidden: 5, Lambda: 1e-4, Beta: 0.4, Rho: 0.15}
	x := randBatch(rng.New(5), 9, cfg.Visible)
	p := NewParams(cfg, 6)
	refGrad := ZeroGrad(cfg)
	refCost := CostGrad(cfg, p, x, refGrad)

	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, cfg, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	obj, theta, err := NewBatchObjective(m, data.InMemory{X: x})
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Free()
	p.ParamSet().Flatten(theta)
	grad := tensor.NewVector(len(theta))
	if cost := obj.Eval(theta, grad); math.Abs(cost-refCost) > 1e-10 {
		t.Fatalf("cost %g vs %g", cost, refCost)
	}
	refFlat := refGrad.ParamSet().Flatten(nil)
	for i := range grad {
		if math.Abs(grad[i]-refFlat[i]) > 1e-10 {
			t.Fatalf("grad[%d] mismatch", i)
		}
	}
}

func TestBatchObjectiveChargesSimulatedTime(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, Config{Visible: 64, Hidden: 32}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	obj, theta, err := NewBatchObjective(m, data.Null{D: 64, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Free()
	before := dev.Now()
	grad := tensor.NewVector(len(theta))
	if c := obj.Eval(theta, grad); c != 0 {
		t.Fatalf("timing-only cost %g", c)
	}
	withGrad := dev.Now() - before
	if withGrad <= 0 {
		t.Fatal("no time charged")
	}
	before = dev.Now()
	obj.Eval(theta, nil)
	costOnly := dev.Now() - before
	if !(costOnly < withGrad) {
		t.Fatalf("cost-only eval (%g) not cheaper than gradient eval (%g)", costOnly, withGrad)
	}
}

func TestBatchObjectiveValidation(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, Config{Visible: 8, Hidden: 4}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewBatchObjective(m, data.Null{D: 9, N: 10}); err == nil {
		t.Error("dim mismatch must fail")
	}
	if _, _, err := NewBatchObjective(m, data.Null{D: 8, N: 7}); err == nil {
		t.Error("non-multiple dataset must fail")
	}
}

func TestBatchObjectiveBuffersFreed(t *testing.T) {
	dev := device.New(sim.XeonPhi5110P(), false, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 1)
	m, err := New(ctx, Config{Visible: 8, Hidden: 4, Tied: true}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := dev.Allocated()
	obj, _, err := NewBatchObjective(m, data.Null{D: 8, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	obj.Free()
	if dev.Allocated() != before {
		t.Fatalf("leak: %d vs %d", dev.Allocated(), before)
	}
}
