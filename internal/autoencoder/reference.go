package autoencoder

import (
	"fmt"
	"io"
	"math"

	"phideep/internal/nn"
	"phideep/internal/rng"
	"phideep/internal/tensor"
)

// Params is the host-side parameter set of a Sparse Autoencoder. It is the
// representation used for initialization, for the reference cost/gradient
// (gradient checks), and by the batch optimizers in internal/opt.
type Params struct {
	W1 *tensor.Matrix // Visible×Hidden
	W2 *tensor.Matrix // Hidden×Visible
	B1 tensor.Vector  // Hidden
	B2 tensor.Vector  // Visible
}

// NewParams returns parameters with the conventional symmetric-uniform
// weight initialization and zero biases.
func NewParams(cfg Config, seed uint64) *Params {
	r := rng.New(seed)
	p := &Params{
		W1: tensor.NewMatrix(cfg.Visible, cfg.Hidden),
		W2: tensor.NewMatrix(cfg.Hidden, cfg.Visible),
		B1: tensor.NewVector(cfg.Hidden),
		B2: tensor.NewVector(cfg.Visible),
	}
	nn.InitMatrix(p.W1, r)
	nn.InitMatrix(p.W2, r)
	return p
}

// Clone deep-copies the parameters.
func (p *Params) Clone() *Params {
	return &Params{W1: p.W1.Clone(), W2: p.W2.Clone(), B1: p.B1.Clone(), B2: p.B2.Clone()}
}

// ParamSet registers the parameters in canonical order (W1, B1, W2, B2)
// for the flat-vector optimizers.
func (p *Params) ParamSet() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.AddMatrix("W1", p.W1)
	ps.AddVector("b1", p.B1)
	ps.AddMatrix("W2", p.W2)
	ps.AddVector("b2", p.B2)
	return ps
}

// CostGrad evaluates the Eq. 5 objective on X (one example per row) and,
// when grad is non-nil, accumulates the exact gradient into it. This is the
// straightforward sequential implementation — the semantics the optimized
// device path must match, and the oracle for the finite-difference tests.
func CostGrad(cfg Config, p *Params, x *tensor.Matrix, grad *Params) float64 {
	if x.Cols != cfg.Visible {
		panic(fmt.Sprintf("autoencoder: CostGrad input width %d, want %d", x.Cols, cfg.Visible))
	}
	m := x.Rows
	if m == 0 {
		panic("autoencoder: CostGrad on empty batch")
	}
	v, h := cfg.Visible, cfg.Hidden
	invM := 1 / float64(m)

	// Forward. The decoder weight for visible j and hidden k is W2[k,j],
	// or W1[j,k] with tied weights.
	decode := func(j, k int) float64 {
		if cfg.Tied {
			return p.W1.At(j, k)
		}
		return p.W2.At(k, j)
	}
	y := tensor.NewMatrix(m, h)
	z := tensor.NewMatrix(m, v)
	for i := 0; i < m; i++ {
		xi, yi := x.RowView(i), y.RowView(i)
		for j := 0; j < h; j++ {
			s := p.B1[j]
			for k := 0; k < v; k++ {
				s += xi[k] * p.W1.At(k, j)
			}
			yi[j] = nn.Sigmoid(s)
		}
		zi := z.RowView(i)
		for j := 0; j < v; j++ {
			s := p.B2[j]
			for k := 0; k < h; k++ {
				s += yi[k] * decode(j, k)
			}
			zi[j] = nn.Sigmoid(s)
		}
	}

	// Cost terms.
	recon := 0.0
	for i := 0; i < m; i++ {
		xi, zi := x.RowView(i), z.RowView(i)
		for j := range zi {
			d := zi[j] - xi[j]
			recon += d * d
		}
	}
	recon *= invM / 2
	reg := cfg.Lambda / 2 * p.W1.SumSquares()
	if !cfg.Tied {
		reg += cfg.Lambda / 2 * p.W2.SumSquares()
	}

	rhoHat := y.ColMeans()
	sparse := 0.0
	const eps = 1e-12
	if cfg.Beta > 0 {
		for _, r := range rhoHat {
			r = math.Min(math.Max(r, eps), 1-eps)
			sparse += cfg.Rho*math.Log(cfg.Rho/r) + (1-cfg.Rho)*math.Log((1-cfg.Rho)/(1-r))
		}
		sparse *= cfg.Beta
	}
	cost := recon + reg + sparse
	if grad == nil {
		return cost
	}

	// Backward.
	grad.W1.Zero()
	grad.W2.Zero()
	grad.B1.Zero()
	grad.B2.Zero()
	coeff := tensor.NewVector(h)
	if cfg.Beta > 0 {
		for j, r := range rhoHat {
			r = math.Min(math.Max(r, eps), 1-eps)
			coeff[j] = cfg.Beta * invM * (-cfg.Rho/r + (1-cfg.Rho)/(1-r))
		}
	}
	d3 := tensor.NewVector(v)
	d2 := tensor.NewVector(h)
	for i := 0; i < m; i++ {
		xi, yi, zi := x.RowView(i), y.RowView(i), z.RowView(i)
		for j := 0; j < v; j++ {
			d3[j] = (zi[j] - xi[j]) * nn.SigmoidPrime(zi[j]) * invM
		}
		for k := 0; k < h; k++ {
			s := 0.0
			for j := 0; j < v; j++ {
				s += d3[j] * decode(j, k)
			}
			d2[k] = (s + coeff[k]) * nn.SigmoidPrime(yi[k])
		}
		if cfg.Tied {
			// Decoder contribution accumulates into W1.
			for j := 0; j < v; j++ {
				gw1 := grad.W1.RowView(j)
				dj := d3[j]
				for k := 0; k < h; k++ {
					gw1[k] += dj * yi[k]
				}
			}
		} else {
			for k := 0; k < h; k++ {
				gw2 := grad.W2.RowView(k)
				yk := yi[k]
				for j := 0; j < v; j++ {
					gw2[j] += yk * d3[j]
				}
			}
		}
		for j := 0; j < v; j++ {
			grad.B2[j] += d3[j]
		}
		for k := 0; k < v; k++ {
			gw1 := grad.W1.RowView(k)
			xk := xi[k]
			for j := 0; j < h; j++ {
				gw1[j] += xk * d2[j]
			}
		}
		for j := 0; j < h; j++ {
			grad.B1[j] += d2[j]
		}
	}
	if cfg.Lambda != 0 {
		for i := 0; i < v; i++ {
			w, g := p.W1.RowView(i), grad.W1.RowView(i)
			for j := range w {
				g[j] += cfg.Lambda * w[j]
			}
		}
		if !cfg.Tied {
			for i := 0; i < h; i++ {
				w, g := p.W2.RowView(i), grad.W2.RowView(i)
				for j := range w {
					g[j] += cfg.Lambda * w[j]
				}
			}
		}
	}
	return cost
}

// ZeroGrad returns a zeroed gradient holder shaped like cfg.
func ZeroGrad(cfg Config) *Params {
	return &Params{
		W1: tensor.NewMatrix(cfg.Visible, cfg.Hidden),
		W2: tensor.NewMatrix(cfg.Hidden, cfg.Visible),
		B1: tensor.NewVector(cfg.Hidden),
		B2: tensor.NewVector(cfg.Visible),
	}
}

// Encode maps one example x (length Visible) to its hidden code y (length
// Hidden) with the trained encoder: y = σ(x·W1 + b1). This is the Fig. 1
// hand-off a trained layer applies when feeding the next Autoencoder.
func (p *Params) Encode(x, y []float64) {
	for j := range y {
		s := p.B1[j]
		for k, xv := range x {
			s += xv * p.W1.At(k, j)
		}
		y[j] = nn.Sigmoid(s)
	}
}

// Reconstruct maps one example x (length Visible) through the full network
// to its reconstruction z (length Visible): z = σ(σ(x·W1+b1)·W2 + b2),
// honoring tied weights. It is the scalar host reference the serving layer
// degrades to under overload and verifies the device path against. tied
// selects the weight-tying variant (Config.Tied).
func (p *Params) Reconstruct(x, z []float64, tied bool) {
	y := make([]float64, p.W1.Cols)
	p.Encode(x, y)
	for j := range z {
		s := p.B2[j]
		for k, yv := range y {
			if tied {
				s += yv * p.W1.At(j, k)
			} else {
				s += yv * p.W2.At(k, j)
			}
		}
		z[j] = nn.Sigmoid(s)
	}
}

// Objective adapts the reference cost/gradient on the fixed dataset x to
// the flat-vector form the batch optimizers (CG, L-BFGS) consume. theta and
// the returned objective share p's storage: evaluating the objective writes
// theta back into p.
func Objective(cfg Config, p *Params, x *tensor.Matrix) (obj func(theta, grad tensor.Vector) float64, theta tensor.Vector) {
	ps := p.ParamSet()
	theta = ps.Flatten(nil)
	grad := ZeroGrad(cfg)
	gs := grad.ParamSet()
	obj = func(th, g tensor.Vector) float64 {
		ps.Unflatten(th)
		if g == nil {
			return CostGrad(cfg, p, x, nil)
		}
		c := CostGrad(cfg, p, x, grad)
		gs.Flatten(g)
		return c
	}
	return obj, theta
}

// Save writes the parameters to w in the phideep checkpoint format.
func (p *Params) Save(w io.Writer) error { return nn.SaveParamSet(w, p.ParamSet()) }

// Load reads parameters from r into p, validating size and checksum.
func (p *Params) Load(r io.Reader) error { return nn.LoadParamSet(r, p.ParamSet()) }
