package autoencoder

import (
	"math"
	"testing"

	"phideep/internal/blas"
	"phideep/internal/device"
	"phideep/internal/kernels"
	"phideep/internal/rng"
	"phideep/internal/sim"
	"phideep/internal/tensor"
)

// TestTiedReferenceGradientMatchesFiniteDifferences validates the combined
// encoder+decoder gradient on W1 (decoder perturbations flow through W1ᵀ).
func TestTiedReferenceGradientMatchesFiniteDifferences(t *testing.T) {
	cfg := Config{Visible: 7, Hidden: 5, Lambda: 1e-3, Beta: 0.2, Rho: 0.2, Tied: true}
	p := NewParams(cfg, 4)
	x := randBatch(rng.New(5), 6, cfg.Visible)
	grad := ZeroGrad(cfg)
	CostGrad(cfg, p, x, grad)

	const h = 1e-6
	maxRel := 0.0
	// Perturb W1 entries only: B1/B2 are covered by the untied test and W2
	// is unused when tied.
	for i := 0; i < cfg.Visible; i++ {
		for j := 0; j < cfg.Hidden; j += 2 {
			orig := p.W1.At(i, j)
			p.W1.Set(i, j, orig+h)
			cp := CostGrad(cfg, p, x, nil)
			p.W1.Set(i, j, orig-h)
			cm := CostGrad(cfg, p, x, nil)
			p.W1.Set(i, j, orig)
			numeric := (cp - cm) / (2 * h)
			analytic := grad.W1.At(i, j)
			denom := math.Max(1e-8, math.Abs(numeric)+math.Abs(analytic))
			if rel := math.Abs(numeric-analytic) / denom; rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel > 1e-5 {
		t.Fatalf("tied W1 gradient error %g", maxRel)
	}
	// W2 must be untouched by the tied gradient.
	if grad.W2.SumSquares() != 0 {
		t.Fatal("tied gradient wrote into W2")
	}
}

func TestTiedDeviceMatchesReference(t *testing.T) {
	cfg := Config{Visible: 8, Hidden: 5, Lambda: 1e-3, Beta: 0.3, Rho: 0.2, Tied: true}
	batch := 6
	x := randBatch(rng.New(9), batch, cfg.Visible)
	p := NewParams(cfg, 5)
	refGrad := ZeroGrad(cfg)
	refCost := CostGrad(cfg, p, x, refGrad)

	for _, lvl := range []kernels.Level{kernels.Naive, kernels.ParallelBlocked} {
		for _, improved := range []bool{false, true} {
			dev := device.New(sim.XeonPhi5110P(), true, nil)
			ctx := blas.NewContext(dev, lvl, 1)
			ctx.AutoFuse = improved
			ctx.AutoConcurrent = improved
			m, err := New(ctx, cfg, batch, 5)
			if err != nil {
				t.Fatal(err)
			}
			m.Upload(p)
			dx := dev.MustAlloc(batch, cfg.Visible)
			dev.CopyIn(dx, x, 0)
			if cost := m.Cost(dx); math.Abs(cost-refCost) > 1e-10 {
				t.Errorf("level %v improved=%v: cost %g vs %g", lvl, improved, cost, refCost)
			}
			m.Forward(dx)
			m.Backward(dx)
			if d := tensor.MaxAbsDiff(m.GW1.Mat, refGrad.W1); d > 1e-10 {
				t.Errorf("level %v improved=%v: GW1 diff %g", lvl, improved, d)
			}
			if d := tensor.MaxAbsDiff(m.GB1.Mat, refGrad.B1.AsRow()); d > 1e-10 {
				t.Errorf("level %v improved=%v: GB1 diff %g", lvl, improved, d)
			}
			if d := tensor.MaxAbsDiff(m.GB2.Mat, refGrad.B2.AsRow()); d > 1e-10 {
				t.Errorf("level %v improved=%v: GB2 diff %g", lvl, improved, d)
			}
		}
	}
}

func TestTiedTrainingAndMemoryFootprint(t *testing.T) {
	cfg := Config{Visible: 16, Hidden: 8, Lambda: 1e-6, Tied: true}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 2)
	m, err := New(ctx, cfg, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Tied model must allocate noticeably less than the untied one.
	tiedBytes := dev.Allocated()
	dev2 := device.New(sim.XeonPhi5110P(), true, nil)
	untied, err := New(blas.NewContext(dev2, kernels.ParallelBlocked, 2), Config{Visible: 16, Hidden: 8, Lambda: 1e-6}, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tiedBytes >= dev2.Allocated() {
		t.Fatalf("tied model not smaller: %d vs %d bytes", tiedBytes, dev2.Allocated())
	}
	untied.Free()

	x := lowRankBatch(rng.New(12), 20, cfg.Visible)
	dx := dev.MustAlloc(20, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	first := m.Step(dx, 1.0)
	var last float64
	for i := 0; i < 500; i++ {
		last = m.Step(dx, 1.0)
	}
	if !(last < 0.5*first) {
		t.Fatalf("tied AE did not learn: %g → %g", first, last)
	}
	// Download mirrors W1ᵀ into W2.
	got := m.Download()
	if d := tensor.MaxAbsDiff(got.W2, got.W1.T()); d != 0 {
		t.Fatalf("Download W2 != W1ᵀ: %g", d)
	}
	m.Free()
	if dev.Allocated() != 8*20*16 { // only the data buffer remains
		t.Fatalf("leak after Free: %d bytes", dev.Allocated())
	}
}

func TestTiedWithMomentumAndCorruption(t *testing.T) {
	cfg := Config{Visible: 12, Hidden: 6, Tied: true, Momentum: 0.8, Corruption: 0.2}
	dev := device.New(sim.XeonPhi5110P(), true, nil)
	ctx := blas.NewContext(dev, kernels.ParallelBlocked, 3)
	m, err := New(ctx, cfg, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := lowRankBatch(rng.New(8), 16, cfg.Visible)
	dx := dev.MustAlloc(16, cfg.Visible)
	dev.CopyIn(dx, x, 0)
	first := m.Step(dx, 0.5)
	var last float64
	for i := 0; i < 400; i++ {
		last = m.Step(dx, 0.5)
	}
	if !(last < first) {
		t.Fatalf("tied+momentum+denoising did not learn: %g → %g", first, last)
	}
	m.Free()
	if dev.Allocated() != 8*16*12 {
		t.Fatalf("leak after Free: %d bytes", dev.Allocated())
	}
}
