package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/device"
)

// This file is the deterministic chaos suite for the serving robustness
// layer (ISSUE 9): injected device faults, worker supervision, request
// deadlines and the health state machine. The TestChaos* tests are the
// CI determinism gate — ci.sh runs them twice under -race with fixed
// seeds and they must produce identical outcomes.

func bitwiseEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refAnswers computes the fault-free reference answer for every input on
// a pristine single-request server; the chaos runs must match it bitwise.
func refAnswers(t *testing.T, xs [][]float64) [][]float64 {
	t.Helper()
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxBatch: 1,
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	outs := make([][]float64, len(xs))
	for i, x := range xs {
		if outs[i], err = srv.Encode(x); err != nil {
			t.Fatalf("reference encode %d: %v", i, err)
		}
	}
	return outs
}

// classifyOutcome buckets a serving error into the typed classes the
// chaos contract allows.
func classifyOutcome(err error) string {
	var wfe *WorkerFaultError
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &wfe):
		return "worker-fault"
	case errors.Is(err, ErrDown):
		return "down"
	default:
		return "untyped: " + err.Error()
	}
}

// drawsToFault replays a fault stream and returns the 1-based draw index
// of its first fault (or cap+1 if none within cap). The chaos tests use
// it to select base seeds whose per-worker streams have known shapes, so
// lifecycle assertions hold deterministically instead of statistically.
func drawsToFault(t *testing.T, cfg device.FaultConfig, cap int) int {
	t.Helper()
	fs, err := device.NewFaultStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= cap; i++ {
		if fault, _ := fs.Draw(); fault {
			return i
		}
	}
	return cap + 1
}

type chaosRun struct {
	outs  [][]float64
	kinds []string
	stats BatcherStats
}

// runTransientChaos drives one deterministic transient-fault scenario:
// a single worker (sequential dispatch, so the fault stream consumption
// is scheduling-independent), batch size 1, a high fault rate with an
// effectively unlimited restart budget.
func runTransientChaos(t *testing.T, xs [][]float64) chaosRun {
	t.Helper()
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxBatch:    1,
		MaxWait:     time.Hour,
		MaxRestarts: 1 << 20,
		Faults:      device.FaultConfig{Rate: 0.7, Seed: 42, MaxRetries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := chaosRun{}
	for _, x := range xs {
		out, err := srv.Encode(x)
		run.outs = append(run.outs, out)
		run.kinds = append(run.kinds, classifyOutcome(err))
	}
	run.stats = srv.Stats()
	srv.Close()
	return run
}

// TestChaosTransientDeterministic is the core chaos contract: under
// injected transient faults at a fixed seed, every request completes with
// either an answer bitwise equal to the fault-free run or a typed
// *WorkerFaultError — no hangs, no escaped panics, no dropped admitted
// requests — and the entire faulted run (outcomes and counters) is
// identical across two executions.
func TestChaosTransientDeterministic(t *testing.T) {
	xs := randExamples(60, aeTestConfig().Visible, 3)
	ref := refAnswers(t, xs)

	a := runTransientChaos(t, xs)
	b := runTransientChaos(t, xs)

	if a.stats.FaultBatches == 0 || a.stats.Restarts == 0 {
		t.Fatalf("chaos never engaged: %+v", a.stats)
	}
	if a.stats.Redispatches == 0 {
		t.Fatalf("no faulted batch was re-dispatched: %+v", a.stats)
	}
	ok := 0
	for i, kind := range a.kinds {
		switch kind {
		case "ok":
			if !bitwiseEqual(a.outs[i], ref[i]) {
				t.Fatalf("request %d: faulted-run answer differs from fault-free run", i)
			}
			ok++
		case "worker-fault":
		default:
			t.Fatalf("request %d: outcome %q, want ok or worker-fault", i, kind)
		}
	}
	if ok == 0 {
		t.Fatal("no request survived the transient chaos")
	}
	if got, want := a.stats.Completed, int64(len(xs)); got != want {
		t.Fatalf("completed %d of %d admitted requests — some were dropped", got, want)
	}
	if a.stats.Retired != 0 || a.stats.Discarded != 0 {
		t.Fatalf("unexpected retirements/discards: %+v", a.stats)
	}

	for i := range a.kinds {
		if a.kinds[i] != b.kinds[i] {
			t.Fatalf("request %d: outcome %q vs %q across executions", i, a.kinds[i], b.kinds[i])
		}
		if !bitwiseEqual(a.outs[i], b.outs[i]) {
			t.Fatalf("request %d: answers differ across executions", i)
		}
	}
	type ledger struct{ req, comp, fb, fr, rd, rs int64 }
	la := ledger{a.stats.Requests, a.stats.Completed, a.stats.FaultBatches, a.stats.FaultRetries, a.stats.Redispatches, a.stats.Restarts}
	lb := ledger{b.stats.Requests, b.stats.Completed, b.stats.FaultBatches, b.stats.FaultRetries, b.stats.Redispatches, b.stats.Restarts}
	if la != lb {
		t.Fatalf("counters differ across executions:\n%+v\n%+v", la, lb)
	}
}

// TestChaosPermanentDegraded: with one worker permanently failed, the
// server keeps serving on the survivor and reports Degraded. Batch-to-
// worker assignment is scheduler-dependent (workers compete on one
// dispatch channel), so the test pins the outcome instead of the path:
// worker 0's stream is seeded (by replay) to fault within its first few
// draws, worker 1's injector is disarmed through the in-package device
// seam, and sustained concurrent load guarantees both workers serve.
// Worker 0 then dies at a fixed point of its own stream wherever its
// batches fall, its fatal batch is salvaged by re-dispatch, and every
// request of the run must succeed bitwise.
func TestChaosPermanentDegraded(t *testing.T) {
	base := device.FaultConfig{Rate: 0.5, PermanentFrac: 1}
	found := false
	for s := uint64(1); s < 10_000; s++ {
		base.Seed = s
		if drawsToFault(t, workerFaultConfig(base, 0, 0), 6) <= 6 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no suitable base seed found")
	}

	mcfg := aeTestConfig()
	xs := randExamples(8, mcfg.Visible, 5)
	ref := refAnswers(t, xs)
	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		Workers:     2,
		MaxBatch:    1,
		MaxWait:     time.Hour,
		MaxRestarts: -1, // retire on first fault
		Faults:      base,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Worker 1 is the designated survivor: disarm its injector so only
	// worker 0's seeded stream decides the lifecycle.
	srv.workers[1].ctx.Dev.DisableFaults()

	// Phase A: concurrent barrage. Worker 0 dies within its first three
	// batches; its fatal batch re-dispatches to the immortal survivor, so
	// every request must still succeed bitwise.
	const clients, perClient = 4, 60
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				j := (g*perClient + i) % len(xs)
				out, err := srv.Encode(xs[j])
				if err != nil {
					t.Errorf("client %d request %d: %v", g, i, err)
					return
				}
				if !bitwiseEqual(out, ref[j]) {
					t.Errorf("client %d request %d: answer differs from fault-free run", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if live := srv.Stats().WorkersLive; live != 1 {
		t.Fatalf("%d workers live after the barrage, want 1 (worker 0 retired)", live)
	}

	// Phase B: the degraded server keeps answering correctly.
	for i := 0; i < 5; i++ {
		out, err := srv.Encode(xs[i%len(xs)])
		if err != nil {
			t.Fatalf("degraded request %d: %v", i, err)
		}
		if !bitwiseEqual(out, ref[i%len(xs)]) {
			t.Fatalf("degraded request %d: wrong answer", i)
		}
	}
	st := srv.Stats()
	if st.Health != "degraded" || st.WorkersLive != 1 || st.WorkersConfigured != 2 {
		t.Fatalf("want degraded 1/2 live, got %+v", st)
	}
	if st.Retired != 1 || st.FaultBatches != 1 || st.Redispatches != 1 {
		t.Fatalf("want exactly one retire/fault/redispatch, got %+v", st)
	}
	if srv.Health() != Degraded {
		t.Fatalf("Health() = %v, want Degraded", srv.Health())
	}
}

// TestChaosDownFailFast: when the last worker retires, the in-flight
// request completes with a typed *WorkerFaultError (never a hang) and
// subsequent requests fail fast with ErrDown; the server reports Down.
func TestChaosDownFailFast(t *testing.T) {
	base := device.FaultConfig{Rate: 0.3, PermanentFrac: 1}
	found := false
	for s := uint64(1); s < 10_000; s++ {
		base.Seed = s
		if drawsToFault(t, workerFaultConfig(base, 0, 0), 30) <= 30 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no suitable base seed found")
	}

	mcfg := aeTestConfig()
	xs := randExamples(4, mcfg.Visible, 7)
	ref := refAnswers(t, xs)
	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		MaxBatch:    1,
		MaxWait:     time.Hour,
		MaxRestarts: -1,
		Faults:      base,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var ferr *WorkerFaultError
	faulted := false
	for i := 0; i < 40; i++ {
		out, err := srv.Encode(xs[i%len(xs)])
		if err == nil {
			if !bitwiseEqual(out, ref[i%len(xs)]) {
				t.Fatalf("request %d: wrong answer before fault", i)
			}
			continue
		}
		if !errors.As(err, &ferr) {
			t.Fatalf("request %d: error %v, want *WorkerFaultError", i, err)
		}
		faulted = true
		break
	}
	if !faulted {
		t.Fatal("worker never faulted within 40 requests")
	}
	if ferr.Worker != 0 {
		t.Fatalf("faulted worker %d, want 0", ferr.Worker)
	}
	var terr *device.TransferError
	if !errors.As(ferr, &terr) || !terr.Permanent {
		t.Fatalf("cause %v, want permanent *device.TransferError", ferr.Cause)
	}

	if _, err := srv.Encode(xs[0]); !errors.Is(err, ErrDown) {
		t.Fatalf("post-down request error %v, want ErrDown", err)
	}
	st := srv.Stats()
	if st.Health != "down" || st.WorkersLive != 0 || st.Retired != 1 {
		t.Fatalf("want down with 0 live and 1 retired, got %+v", st)
	}
}

// TestRequestDeadline: a request stranded in a never-filling batch fails
// with ErrDeadline at Config.RequestTimeout, and its late batch result is
// discarded safely at Close instead of completing a vanished caller.
func TestRequestDeadline(t *testing.T) {
	mcfg := aeTestConfig()
	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		MaxBatch:       16,
		MaxWait:        time.Hour,
		RequestTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := randExamples(1, mcfg.Visible, 9)[0]
	if _, err := srv.Encode(x); !errors.Is(err, ErrDeadline) {
		t.Fatalf("error %v, want ErrDeadline", err)
	}
	if st := srv.Stats(); st.DeadlineTimeouts != 1 || st.Completed != 0 {
		t.Fatalf("want 1 timeout and 0 completions, got %+v", st)
	}
	srv.Close() // flushes the abandoned request through a worker
	if st := srv.Stats(); st.Discarded != 1 {
		t.Fatalf("want the late result discarded, got %+v", st)
	}
}

// TestContextCancelAndDeadline covers the ctx call variants: cancellation
// abandons an in-flight request with context.Canceled, and a ctx deadline
// surfaces as ErrDeadline (same class as RequestTimeout).
func TestContextCancelAndDeadline(t *testing.T) {
	mcfg := aeTestConfig()
	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		MaxBatch: 16,
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	x := randExamples(1, mcfg.Visible, 11)[0]

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := srv.EncodeContext(ctx, x)
		errc <- err
	}()
	for srv.Stats().QueueDepth == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if _, err := srv.EncodeContext(dctx, x); !errors.Is(err, ErrDeadline) {
		t.Fatalf("error %v, want ErrDeadline", err)
	}
}

// TestInputCopiedAtAdmission is the regression test for the aliasing
// hazard: a caller that mutates its input slice right after submitting
// must not corrupt the in-flight request (the request owns a private copy
// taken at admission).
func TestInputCopiedAtAdmission(t *testing.T) {
	mcfg := aeTestConfig()
	xs := randExamples(2, mcfg.Visible, 13)
	ref := refAnswers(t, xs)

	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		MaxBatch: 2,
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x1 := append([]float64(nil), xs[0]...)
	var out1 []float64
	var err1 error
	done := make(chan struct{})
	go func() {
		defer close(done)
		out1, err1 = srv.Encode(x1)
	}()
	for srv.Stats().QueueDepth == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	for j := range x1 {
		x1[j] = -1e9 // caller reuses its buffer while the request is queued
	}
	if _, err := srv.Encode(xs[1]); err != nil { // completes the pair
		t.Fatal(err)
	}
	<-done
	if err1 != nil {
		t.Fatal(err1)
	}
	if !bitwiseEqual(out1, ref[0]) {
		t.Fatal("mutating the caller's slice after submit changed the in-flight answer")
	}
}

// TestFlushTimerChurn is the regression test for stale deadline timers:
// full flushes must Stop the armed MaxWait timer instead of leaving a
// generation-guarded timer pending per batch. After heavy churn with an
// hour-long MaxWait, no timers may remain armed and none may have fired.
func TestFlushTimerChurn(t *testing.T) {
	mcfg := aeTestConfig()
	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		MaxBatch: 2,
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	xs := randExamples(2, mcfg.Visible, 17)

	const rounds = 50
	for i := 0; i < rounds; i++ {
		var wg sync.WaitGroup
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(x []float64) {
				defer wg.Done()
				if _, err := srv.Encode(x); err != nil {
					t.Errorf("encode: %v", err)
				}
			}(xs[k])
		}
		wg.Wait()
	}

	srv.mu.Lock()
	armed := srv.timersArmed
	srv.mu.Unlock()
	if armed != 0 {
		t.Fatalf("%d flush timers still armed after churn, want 0", armed)
	}
	if st := srv.Stats(); st.Batches != rounds || st.FlushDeadline != 0 {
		t.Fatalf("want %d full flushes and no deadline flushes, got %+v", rounds, st)
	}
}

// TestDrainGraceful: Drain stops admission (ErrClosed, health draining),
// flushes the pending queues, and returns once every admitted request has
// completed.
func TestDrainGraceful(t *testing.T) {
	mcfg := aeTestConfig()
	srv, err := New(Autoencoder(mcfg, autoencoder.NewParams(mcfg, 1)), Config{
		MaxBatch: 4,
		MaxWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	xs := randExamples(2, mcfg.Visible, 19)

	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(x []float64) {
			defer wg.Done()
			if _, err := srv.Encode(x); err != nil {
				t.Errorf("encode during drain: %v", err)
			}
		}(xs[k])
	}
	for srv.Stats().QueueDepth < 2 {
		time.Sleep(100 * time.Microsecond)
	}
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	if st := srv.Stats(); st.Health != "draining" || st.Completed != 2 {
		t.Fatalf("want draining with both requests completed, got %+v", st)
	}
	if _, err := srv.Encode(xs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain error %v, want ErrClosed", err)
	}
}
