package serve

import (
	"time"

	"phideep/internal/device"
)

// This file is the worker supervisor: the recovery policy that runs when a
// batch faults out of a worker (a device transfer fault that survived the
// retry budgets, or a panic caught at the batch boundary by runSafe).
//
// The sequence per fault: count it, try to re-dispatch the batch once to a
// healthy replica (so one worker's fault stays invisible to callers when
// survivors exist), rebuild the faulted worker on a fresh device under a
// capped-restart circuit, and — when the budget is spent — retire the slot,
// moving the server's health state machine toward Degraded/Down. Whatever
// happens, every request of the batch completes: with the re-dispatched
// answer, or with a typed *WorkerFaultError. Nothing admitted ever hangs.

// workerFaultConfig derives worker slot's fault stream for its current
// incarnation. Each (slot, restart) pair gets its own seed offset — large
// odd primes keep the derived seeds distinct — so a chaos run is
// deterministic per worker and per rebuild, independent of scheduling.
func workerFaultConfig(base device.FaultConfig, slot, incarnation int) device.FaultConfig {
	return base.WithSeed(base.Seed + uint64(slot)*1_000_003 + uint64(incarnation)*7_919)
}

// handleFault is the supervisor entry point, called on the worker's own
// goroutine when runSafe returns an error for batch. It reports whether the
// worker should keep receiving batches: true after a successful rebuild (or
// for the channel drainer that must keep failing batches once the server is
// Down), false when the retired worker should exit and leave the channel to
// the survivors.
func (w *worker) handleFault(batch []*request, cause error) bool {
	s := w.s
	s.st.faultBatches.Add(1)
	recordFaultBatch()
	ferr := w.faultError(cause)
	alive := w.rebuild(cause)

	// Re-dispatch the batch once to a healthy replica. The check-and-send
	// runs under s.mu, which excludes Close's close(s.batches): closed is
	// set under the same lock before the channel closes. The send itself is
	// non-blocking — the channel has Workers slots of headroom beyond
	// QueueDepth precisely so one in-flight re-dispatch per worker fits, but
	// blocking under the lock is never acceptable.
	s.mu.Lock()
	if !s.closed && s.live > 0 && !batch[0].redispatched {
		for _, r := range batch {
			r.redispatched = true
		}
		select {
		case s.batches <- batch:
			s.st.redispatches.Add(1)
			recordRedispatch()
			batch = nil
		default:
		}
	}
	s.mu.Unlock()
	if batch != nil {
		s.failBatch(batch, ferr)
	}

	if alive {
		return true
	}
	// Retired. If no live worker remains, this goroutine stays behind as
	// the channel drainer so batches flushed after Down still complete
	// (with typed errors) instead of sitting in the channel forever.
	s.mu.Lock()
	last := s.live == 0
	s.mu.Unlock()
	return last
}

// rebuild tears the worker's device state down and constructs a fresh
// incarnation (new device, new replica, new fault stream), consuming the
// restart budget. It reports whether the worker came back; on budget
// exhaustion — including rebuilds that themselves fail — the slot retires.
func (w *worker) rebuild(cause error) bool {
	w.freeQuiet()
	for {
		if w.restarts >= w.s.cfg.maxRestarts() {
			w.retire(cause)
			return false
		}
		w.restarts++
		w.s.st.restarts.Add(1)
		recordRestart()
		err := w.build()
		if err == nil {
			return true
		}
		cause = err
		w.freeQuiet()
	}
}

// retire marks the worker permanently failed and updates the server's
// membership: live worker count drops, health moves to Degraded (or Down
// when this was the last slot), and — at Down — the pending queues flush so
// the drainer completes them with typed errors rather than stranding them.
func (w *worker) retire(cause error) {
	w.retired = true
	w.cause = cause
	s := w.s
	s.mu.Lock()
	s.live--
	s.st.retired.Add(1)
	if s.live == 0 {
		for op := 0; op < numOps; op++ {
			s.flushLocked(Op(op), false)
		}
	}
	s.notFull.Broadcast()
	h := s.healthLocked()
	s.mu.Unlock()
	recordRetire()
	recordHealth(h)
}

// faultError wraps cause with the worker's identity for callers.
func (w *worker) faultError(cause error) error {
	return &WorkerFaultError{Worker: w.slot, Restarts: w.restarts, Cause: cause}
}

// failBatch completes every request of batch with err.
func (s *Server) failBatch(batch []*request, err error) {
	now := time.Now()
	for _, r := range batch {
		s.finishRequest(r, nil, err, now)
	}
}

// finishRequest completes one admitted request exactly once. The CAS
// against the request's state decides the race with an abandoning caller
// (deadline/ctx expiry): the winner's outcome stands, a losing worker
// result is discarded safely, and the in-flight ledger that Drain watches
// is settled either way.
func (s *Server) finishRequest(r *request, out []float64, err error, now time.Time) {
	if r.state.CompareAndSwap(reqPending, reqDone) {
		r.out, r.err = out, err
		lat := now.Sub(r.enq)
		s.st.completed.Add(1)
		s.st.latencyNanos.Add(lat.Nanoseconds())
		recordLatency(lat)
	} else {
		s.st.discarded.Add(1)
		recordDiscarded()
	}
	close(r.done)
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}
