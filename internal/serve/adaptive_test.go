package serve

import (
	"sort"
	"sync"
	"testing"
	"time"

	"phideep/internal/autoencoder"
	"phideep/internal/metrics"
)

// tunerState snapshots the controller's observable configuration.
type tunerState struct {
	batch       int
	wait        time.Duration
	adjustments int64
}

func snapshot(a *autotuner) tunerState {
	return tunerState{batch: a.batch, wait: a.wait, adjustments: a.adjustments}
}

// flushEvent is one synthetic flush observation for driving the controller
// directly.
type flushEvent struct {
	full   bool
	size   int
	queued int
	sheds  int64
}

// TestAutotunerDeterminism: the controller is a pure function of its flush
// trace — two instances fed the identical trace must walk through the
// identical configuration sequence, step by step.
func TestAutotunerDeterminism(t *testing.T) {
	trace := make([]flushEvent, 0, 128)
	// A deliberately messy trace: deadline-dominated, then full-flushing
	// with backlog, then sheds, then deadline-dominated again.
	for i := 0; i < 32; i++ {
		trace = append(trace, flushEvent{full: i%8 == 0, size: 5 + i%3, queued: 6})
	}
	for i := 0; i < 32; i++ {
		trace = append(trace, flushEvent{full: true, size: 8, queued: 40})
	}
	for i := 0; i < 32; i++ {
		trace = append(trace, flushEvent{full: true, size: 16, queued: 60, sheds: int64(i)})
	}
	for i := 0; i < 32; i++ {
		trace = append(trace, flushEvent{full: false, size: 3, queued: 3, sheds: 32})
	}

	a := newAutotuner(16, 10*time.Millisecond)
	b := newAutotuner(16, 10*time.Millisecond)
	for i, ev := range trace {
		ca := a.observe(ev.full, ev.size, ev.queued, ev.sheds)
		cb := b.observe(ev.full, ev.size, ev.queued, ev.sheds)
		if ca != cb || snapshot(a) != snapshot(b) {
			t.Fatalf("diverged at event %d: %+v vs %+v", i, snapshot(a), snapshot(b))
		}
	}
	if a.adjustments == 0 {
		t.Fatal("trace produced no adjustments — the test exercised nothing")
	}
}

// TestAutotunerShrinksOnDeadlineDominance: a deadline-dominated flush
// stream at batch sizes below the limit must pull the flush size down to
// the observed mean — and hold there without oscillating back up.
func TestAutotunerShrinksOnDeadlineDominance(t *testing.T) {
	a := newAutotuner(16, 10*time.Millisecond)
	for i := 0; i < 2*tuneWindow; i++ {
		a.observe(false, 8, 8, 0)
	}
	if a.batch != 8 {
		t.Fatalf("batch %d after deadline-dominated windows, want 8", a.batch)
	}
	// Now the batcher full-flushes at the new size; the controller must not
	// grow the batch back (queue never reaches twice the flush size).
	for i := 0; i < 8*tuneWindow; i++ {
		a.observe(true, 8, 8, 0)
	}
	if a.batch != 8 {
		t.Fatalf("batch drifted to %d under steady full flushes, want 8", a.batch)
	}
	if a.wait != 10*time.Millisecond {
		t.Fatalf("wait drifted to %v with the timer idle at the ceiling", a.wait)
	}
}

// TestAutotunerRespondsToOverloadAndSparseTraffic: sheds grow the batch
// back toward the ceiling; sparse traffic that cannot even fill the
// shrunken batch cuts the deadline instead, bounded by the floor.
func TestAutotunerRespondsToOverloadAndSparseTraffic(t *testing.T) {
	a := newAutotuner(16, 10*time.Millisecond)
	for i := 0; i < 2*tuneWindow; i++ {
		a.observe(false, 4, 4, 0)
	}
	if a.batch != 4 {
		t.Fatalf("batch %d, want 4", a.batch)
	}
	// Overload: cumulative shed count rising. Each decision window doubles
	// the batch (with a cooldown window in between) until the ceiling.
	sheds := int64(0)
	for i := 0; i < 8*tuneWindow; i++ {
		sheds++
		a.observe(true, a.batch, 3*a.batch, sheds)
	}
	if a.batch != 16 {
		t.Fatalf("batch %d under sustained sheds, want back at the ceiling 16", a.batch)
	}
	// Sparse traffic: single-request deadline flushes with the batch
	// already at 1 can only shrink the wait, down to its floor.
	b := newAutotuner(16, 10*time.Millisecond)
	for i := 0; i < 20*tuneWindow; i++ {
		b.observe(false, 1, 1, 0)
	}
	if b.batch != 1 {
		t.Fatalf("batch %d under sparse traffic, want 1", b.batch)
	}
	if b.wait >= 10*time.Millisecond || b.wait < b.minWait {
		t.Fatalf("wait %v not cut toward the floor %v", b.wait, b.minWait)
	}
}

// runClosedLoop drives srv with `clients` closed-loop Encode clients for
// `dur` and returns the p99 latency over the samples completed after
// `warmup` (the controller needs a few windows to converge; the static
// servers just discard the same prefix for fairness).
func runClosedLoop(t *testing.T, srv *Server, clients int, dur, warmup time.Duration) time.Duration {
	t.Helper()
	dim := srv.Model().InputDim()
	start := time.Now()
	deadline := start.Add(dur)
	cutoff := start.Add(warmup)
	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := make([]float64, dim)
			x[i%dim] = 1
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := srv.Encode(x); err != nil {
					t.Errorf("Encode: %v", err)
					return
				}
				if done := time.Now(); done.After(cutoff) {
					lats[i] = append(lats[i], done.Sub(t0))
				}
			}
		}(i)
	}
	wg.Wait()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		t.Fatal("no samples after warmup")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	i := (len(all)*99 + 99) / 100
	if i < 1 {
		i = 1
	}
	return all[i-1]
}

// TestAdaptiveErasesDeadlineCliff is the loadgen regression for the
// EXPERIMENTS.md regime cliff: with client concurrency below MaxBatch a
// static batcher parks every batch on the MaxWait timer (p99 ≈ the
// deadline), while at concurrency == MaxBatch batches dispatch instantly.
// The adaptive controller must erase the slow side of the cliff: its p99
// under the misconfigured window must land within ~2× of the well-sized
// static config (plus timer-granularity slack), not at the deadline.
func TestAdaptiveErasesDeadlineCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second closed-loop load test")
	}
	const (
		clients  = 8
		maxBatch = 16 // cliff: clients < MaxBatch
		maxWait  = 20 * time.Millisecond
		dur      = 1500 * time.Millisecond
		warmup   = 500 * time.Millisecond
	)
	cfg := aeTestConfig()
	build := func(c Config) *Server {
		t.Helper()
		srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), c)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	static := build(Config{MaxBatch: maxBatch, MaxWait: maxWait, Workers: 2})
	staticP99 := runClosedLoop(t, static, clients, dur, warmup)
	static.Close()

	// Reference: the pre-cliff configuration a manual tuner would pick —
	// the same load with the window sized to the concurrency.
	ref := build(Config{MaxBatch: clients, MaxWait: maxWait, Workers: 2})
	refP99 := runClosedLoop(t, ref, clients, dur, warmup)
	ref.Close()

	adaptive := build(Config{MaxBatch: maxBatch, MaxWait: maxWait, Workers: 2, Adaptive: true})
	adaptiveP99 := runClosedLoop(t, adaptive, clients, dur, warmup)
	st := adaptive.Stats()
	adaptive.Close()

	t.Logf("p99: static=%v adaptive=%v reference=%v; controller: batch %d→%d, %d adjustments",
		staticP99, adaptiveP99, refP99, maxBatch, st.CurMaxBatch, st.Adjustments)

	if !st.Adaptive || st.Adjustments == 0 || st.CurMaxBatch >= maxBatch {
		t.Fatalf("controller never engaged: %+v", st)
	}
	// The static misconfiguration parks batches on the deadline timer.
	if staticP99 < maxWait {
		t.Fatalf("static p99 %v below the %v deadline — the cliff this test needs did not appear", staticP99, maxWait)
	}
	// Cliff erased: an order-of-magnitude better than the static config...
	if adaptiveP99 > staticP99/4 {
		t.Fatalf("adaptive p99 %v not clearly better than static %v", adaptiveP99, staticP99)
	}
	// ...and within ~2× of the hand-tuned pre-cliff config (2 ms of slack
	// absorbs OS timer granularity on the short side).
	if adaptiveP99 > 2*refP99+2*time.Millisecond {
		t.Fatalf("adaptive p99 %v not within ~2x of the hand-tuned %v", adaptiveP99, refP99)
	}
}

// TestAdaptiveStatsAndMetrics: the adaptive knobs are visible both in
// BatcherStats and as serve.tune.* metrics.
func TestAdaptiveStatsAndMetrics(t *testing.T) {
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)
	cfg := aeTestConfig()
	srv, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{
		MaxBatch: 4,
		MaxWait:  time.Millisecond,
		Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st := srv.Stats()
	if !st.Adaptive || st.CurMaxBatch != 4 || st.CurMaxWait != time.Millisecond {
		t.Fatalf("initial adaptive stats wrong: %+v", st)
	}
	if got := mTuneBatch.Value(); got != 4 {
		t.Fatalf("serve.tune.batch = %g, want 4", got)
	}
	if got := mTuneWait.Value(); got != time.Millisecond.Seconds() {
		t.Fatalf("serve.tune.wait.seconds = %g", got)
	}

	// A static server reports its fixed knobs with zero adjustments.
	stat, err := New(Autoencoder(cfg, autoencoder.NewParams(cfg, 1)), Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stat.Close()
	if st := stat.Stats(); st.Adaptive || st.CurMaxBatch != 8 || st.Adjustments != 0 {
		t.Fatalf("static server stats wrong: %+v", st)
	}
}
